// Fault injection end to end (docs/FAULT.md): the threaded runtime loses
// a live worker mid-iteration, the missed-heartbeat monitor detects the
// silence, and the survivors rendezvous on a checkpoint-coordinated
// restart — landing on bit-identical checksums to a fault-free run.  The
// simulated session then prices the same scenario: restart stall plus the
// work lost since the last periodic checkpoint, at two cadences.
//
//   ./build/examples/example_fault_recovery
#include <cstdio>

#include "model/layer.hpp"
#include "repack/elastic.hpp"
#include "runtime/session.hpp"
#include "runtime/threaded.hpp"

int main() {
  using namespace dynmo;

  // --- threaded: heartbeat-detected loss, prefix recovery ---------------
  runtime::ThreadedConfig tc;
  tc.workers = 3;
  tc.num_layers = 6;
  tc.hidden = 32;
  tc.batch_rows = 4;
  tc.microbatches = 4;
  tc.apply_weight_update = true;
  tc.heartbeat_timeout_s = 0.15;

  runtime::PlanPhase phase;
  phase.map = pipeline::StageMap::uniform(tc.num_layers, tc.workers);
  phase.iterations = 10;

  runtime::ThreadedPipeline clean(tc);
  const auto ref = clean.run({phase});
  std::printf("fault-free run   : %d iters, checksum %016llx\n",
              ref.iterations_run,
              static_cast<unsigned long long>(ref.output_checksum));

  tc.checkpoint_interval_iters = 4;           // cuts at iterations 4 and 8
  tc.fault.losses = {{.iter = 6, .worker = 2}};  // dies mid-iteration 6
  runtime::ThreadedPipeline faulty(tc);
  const auto rec = faulty.run({phase});
  std::printf("worker 2 lost    : detected by heartbeat, rolled back to "
              "the cut at 4,\n");
  std::printf("                   recovered on %d survivors, checksum "
              "%016llx\n",
              tc.workers - rec.worker_losses,
              static_cast<unsigned long long>(rec.output_checksum));
  const bool identical =
      rec.output_checksum == ref.output_checksum &&
      rec.weight_checksums == ref.weight_checksums;
  std::printf("checksums match  : %s (%llu checkpoint bytes broadcast)\n\n",
              identical ? "YES" : "NO",
              static_cast<unsigned long long>(rec.bytes_checkpoint));

  // --- session: the same loss, priced -----------------------------------
  const auto m = model::make_gpt({.num_blocks = 24,
                                  .include_embedding = false,
                                  .include_lm_head = false});
  const auto priced = [&](std::int64_t cadence) {
    runtime::SessionConfig cfg;
    cfg.pipeline_stages = 8;
    cfg.micro_batch = 2;
    cfg.num_microbatches = 16;
    cfg.iterations = 1000;
    cfg.sim_stride = 10;
    cfg.rebalance_interval = 100;
    cfg.mode = runtime::BalancingMode::DynMo;
    cfg.elastic.enabled = true;
    cfg.elastic.interval = 500;
    cfg.elastic.min_workers = 2;
    cfg.elastic.payoff_window_iters = 1e-3;
    cfg.elastic.restart_alpha_s = 0.5;
    cfg.elastic.checkpoint_bw = 2.0 * 1024 * 1024 * 1024;
    cfg.fault.losses = {{.iter = 450, .worker = 3}};
    cfg.checkpoint_interval_iters = cadence;
    repack::MockEckCluster eck(cfg.pipeline_stages);
    cfg.elastic.cluster = &eck;
    runtime::TrainingSession session(m, cfg, nullptr);
    return session.run();
  };
  std::printf("session pricing of a loss at iteration 450 (8 workers):\n");
  std::printf("%-22s %10s %12s %12s %8s\n", "cadence", "stall s",
              "lost-work s", "write-tax s", "ckpts");
  for (const std::int64_t cadence : {std::int64_t{0}, std::int64_t{100}}) {
    const auto r = priced(cadence);
    std::printf("%-22lld %10.2f %12.2f %12.2f %8d\n",
                static_cast<long long>(cadence), r.restart_stall_s,
                r.lost_work_s, r.checkpoint_write_s, r.checkpoints_written);
  }
  std::printf("\nthe tighter cadence bounds lost work at the price of the "
              "periodic write tax\n");
  return identical ? 0 : 1;
}
