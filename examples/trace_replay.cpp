// Trace replay walkthrough: record a session, query it, re-run it offline.
//
// 1. Record — run a continually-training MoE pipeline (DynMo/Diffusion on
//    two simulated DGX-H100 nodes) with SessionConfig::telemetry pointed
//    at a trace directory.
// 2. Discover — open the trace with telemetry::TraceReader and list what
//    the catalog declares (tools/query_trace.py does the same from the
//    shell).
// 3. Replay, same configuration — balance::replay() over the recorded
//    per-layer loads must reproduce the session's per-iteration bottleneck
//    sequence bit-for-bit (the exit code enforces it; CI runs this).
// 4. Replay, different configurations — the same captured history under
//    HierarchicalDiffusion and under a 10x payoff window, diffed against
//    the recording: what *would* have happened on this exact load history.
//
// Build & run:
//   cmake -B build -G Ninja -DDYNMO_BUILD_EXAMPLES=ON && cmake --build build
//   ./build/example_trace_replay [trace-dir]
#include <cstdio>
#include <string>

#include "balance/replay.hpp"
#include "dynmo/dynmo.hpp"
#include "telemetry/trace_reader.hpp"

using namespace dynmo;

namespace {

void print_arm(const char* name, const balance::ReplayResult& r) {
  std::printf("%-26s %14.3f %9d %9d %11.1f %11.1f\n", name,
              r.total_bottleneck_s, r.maps_accepted, r.maps_rejected_payoff,
              r.migration_bytes / 1e6, r.migration_bytes_avoided / 1e6);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dir =
      argc > 1 ? argv[1] : std::string("/tmp/dynmo_trace_replay");

  // --- 1. Record ----------------------------------------------------------
  const auto dep = cluster::Deployment::make_topology_aware(
      cluster::Topology::make_dgx_h100(2), /*num_stages=*/16);
  const auto model =
      model::make_moe(model::llama_moe_3_5b_config(), "llama-moe-3.5b");

  Options opt;
  opt.session.pipeline_stages = 16;
  opt.session.deployment = dep;
  opt.session.mode = runtime::BalancingMode::DynMo;
  opt.session.algorithm = balance::Algorithm::Diffusion;
  opt.session.rebalance_interval = 1;  // MoE: every-iteration cadence
  opt.session.payoff_window_iters = 20.0;
  opt.session.iterations = 200;
  opt.session.sim_stride = 2;
  opt.session.telemetry.dir = dir;  // <- the only telemetry knob
  opt.moe.tokens_per_microbatch = 512;

  Session session(model, UseCase::Moe, opt);
  const auto recorded = session.run();
  std::printf("recorded: %.0f tokens/s, %d rebalances, %d maps accepted\n",
              recorded.tokens_per_sec, recorded.rebalance_count,
              recorded.maps_accepted);
  std::printf("trace:    %s\n\n", dir.c_str());

  // --- 2. Discover --------------------------------------------------------
  telemetry::TraceReader reader(dir);
  std::printf("catalog (%s v%d):\n", reader.catalog().format.c_str(),
              reader.catalog().schema_version);
  for (const auto& t : reader.catalog().tables) {
    std::printf("  %-22s %6lld rows  (%s)\n", t.name.c_str(),
                static_cast<long long>(t.rows), t.file.c_str());
  }
  std::printf("\n");

  // --- 3. Replay, same configuration --------------------------------------
  const auto loads = reader.replayed_loads();
  const auto net = dep.make_cost_model();
  const auto base_cfg = reader.replay_config();
  const auto base = balance::replay(loads, base_cfg, net);

  const auto iterations = reader.iterations();
  int mismatches = 0;
  for (std::size_t i = 0; i < iterations.size(); ++i) {
    if (iterations[i].bottleneck_s != base.bottleneck_s[i]) ++mismatches;
  }
  std::printf("same-config replay: %zu frames, %d bottleneck mismatches "
              "(%s)\n\n",
              base.bottleneck_s.size(), mismatches,
              mismatches == 0 ? "bit-for-bit" : "NOT bit-for-bit");

  // --- 4. Replay, different configurations --------------------------------
  // HierarchicalDiffusion needs its deployment-bound decider re-injected
  // (the catalog records the algorithm, not the topology object); the cost
  // scaling mirrors what the session resolves.
  auto hier_cfg = base_cfg;
  hier_cfg.rebalance.algorithm = balance::Algorithm::HierarchicalDiffusion;
  cluster::HierConfig hc;
  hc.payoff_window_iters = base_cfg.rebalance.payoff_window_iters;
  hc.migration_cost_multiplier =
      reader.run().migration_cost_multiplier *
      reader.run().migration_exposed_fraction;
  hier_cfg.rebalance.hierarchical_decider =
      [&dep, hc](const balance::DiffusionRequest& req,
                 const pipeline::StageMap& current) {
        const auto ranks = dep.stage_to_rank().first(
            static_cast<std::size_t>(current.num_stages()));
        return cluster::HierarchicalBalancer(dep.topology(), hc)
            .balance(req, current, ranks)
            .map;
      };
  const auto hier = balance::replay(loads, hier_cfg, net);

  auto window_cfg = base_cfg;
  window_cfg.rebalance.payoff_window_iters *= 10.0;
  const auto long_window = balance::replay(loads, window_cfg, net);

  std::printf("%-26s %14s %9s %9s %11s %11s\n", "configuration",
              "bottleneck[s]", "accepted", "rej.pay", "moved[MB]",
              "avoided[MB]");
  print_arm("recorded (diffusion)", base);
  print_arm("hierarchical diffusion", hier);
  print_arm("10x payoff window", long_window);
  std::printf("\nhierarchical vs flat: %+.2f%% total bottleneck, "
              "%.1f MB less traffic\n",
              100.0 * (hier.total_bottleneck_s / base.total_bottleneck_s -
                       1.0),
              (base.migration_bytes - hier.migration_bytes) / 1e6);

  return mismatches == 0 ? 0 : 1;
}
