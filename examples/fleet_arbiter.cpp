// Three tenants, one 16-GPU pool (docs/FLEET.md): the fleet::Arbiter
// mediating elastic training jobs of different priority classes.
//
// A low-priority batch job arrives first and soaks the pool.  A normal
// job fits into what is left.  Then a high-priority job shows up wanting
// six GPUs from an exhausted pool — the arbiter prices a preemption with
// the payoff-window rule and forces the batch job down through the same
// checkpoint-coordinated shrink path a voluntary elastic transition
// takes, earmarking the freed GPUs for the newcomer.  Every verdict lands
// in the fleet_decisions log printed at the end.
//
//   ./build/example_fleet_arbiter
//
// Exits non-zero if no preemption happened — CI runs this as a smoke
// test of the whole admit/preempt/finish loop.
#include <cstdio>
#include <memory>

#include "fleet/arbiter.hpp"

namespace {

using namespace dynmo;

fleet::JobSpec make_job(const char* name, int priority, double weight,
                        int min_gpus, int max_gpus, double arrival_s,
                        std::int64_t iterations) {
  fleet::JobSpec spec;
  spec.name = name;
  spec.priority = priority;
  spec.weight = weight;
  spec.min_gpus = min_gpus;
  spec.max_gpus = max_gpus;
  spec.arrival_s = arrival_s;
  // The mutable capture parks the owning model handle in the closure; the
  // arbiter keeps the factory alive until the job's session is gone.
  spec.factory = [=, model = std::shared_ptr<model::ModelDesc>()](
                     int initial, repack::ControlPlane* cluster) mutable {
    model = std::make_shared<model::ModelDesc>(model::make_gpt(
        {.num_blocks = static_cast<std::size_t>(3 * max_gpus),
         .include_embedding = false,
         .include_lm_head = false}));
    runtime::SessionConfig cfg;
    cfg.pipeline_stages = max_gpus;
    cfg.micro_batch = 2;
    cfg.num_microbatches = 8;
    cfg.iterations = iterations;
    cfg.sim_stride = 10;
    cfg.rebalance_interval = 50;
    cfg.mode = runtime::BalancingMode::DynMo;
    cfg.algorithm = balance::Algorithm::Partition;
    cfg.initial_active_workers = initial;
    cfg.elastic.enabled = true;
    cfg.elastic.interval = 100;
    cfg.elastic.min_workers = min_gpus;
    cfg.elastic.cluster = cluster;
    cfg.elastic.pod = name;
    cfg.elastic.restart_alpha_s = 0.5;
    cfg.elastic.checkpoint_bw = 16.0 * 1024 * 1024 * 1024;
    return std::make_unique<runtime::TrainingSession>(*model, cfg, nullptr);
  };
  return spec;
}

}  // namespace

int main() {
  fleet::ArbiterConfig cfg;
  cfg.total_gpus = 16;
  cfg.payoff_window_iters = 600.0;
  fleet::Arbiter arbiter(cfg);

  arbiter.submit(make_job("low", /*priority=*/0, /*weight=*/1.0,
                          /*min=*/2, /*max=*/12, /*arrival=*/0.0,
                          /*iters=*/1000));
  arbiter.submit(make_job("normal", 1, 1.0, 4, 8, 2.0, 600));
  arbiter.submit(make_job("high", 5, 2.0, 6, 8, 5.0, 300));

  const auto r = arbiter.run();

  std::printf("%8s %-8s %-8s %-4s %9s %11s %14s %s\n", "t", "job", "kind",
              "ok", "gpus", "pool free", "gain/cost", "victim");
  for (const auto& d : r.decisions) {
    std::printf("%7.2fs %-8s %-8s %-4s %4lld->%-4lld %5lld->%-5lld ",
                d.time_s, d.job.c_str(), d.kind.c_str(),
                d.accepted ? "yes" : "no",
                static_cast<long long>(d.gpus_before),
                static_cast<long long>(d.gpus_after),
                static_cast<long long>(d.pool_free_before),
                static_cast<long long>(d.pool_free_after));
    if (d.kind == "preempt" || d.kind == "grant" || d.kind == "deny") {
      std::printf("%6.1f/%-7.1f", d.projected_gain_gpu_s,
                  d.exposed_cost_gpu_s);
    } else {
      std::printf("%14s", "-");
    }
    std::printf(" %s\n", d.victim.c_str());
  }

  std::printf("\n%-8s %4s %9s %9s %10s %9s\n", "job", "prio", "arrived",
              "admitted", "finished", "preempted");
  for (const auto& j : r.jobs) {
    std::printf("%-8s %4d %8.2fs %8.2fs %9.2fs %9d\n", j.name.c_str(),
                j.priority, j.arrival_s, j.admitted_s, j.finished_s,
                j.preemptions);
  }
  std::printf("\nfleet: makespan %.1fs, utilization %.1f%%, "
              "%.0f tokens/s aggregate, %d preemption(s)\n",
              r.makespan_s, 100.0 * r.utilization,
              r.aggregate_tokens_per_sec, r.preemptions);

  if (r.preemptions == 0) {
    std::fprintf(stderr, "FAIL: the high-priority arrival should have "
                         "preempted the batch job\n");
    return 1;
  }
  return 0;
}
