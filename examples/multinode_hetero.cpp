// Multi-node / heterogeneous cluster walkthrough.
//
// 1. Describe deployments declaratively: a Topology (DGX presets, a mixed
//    H100+A100 pod) bound to a stage→rank placement = cluster::Deployment.
// 2. Ask the deployment the questions every cost surface asks: per-stage
//    GPU, stage-boundary links, node-grouped collectives, capacities.
// 3. Balance a skewed load flat vs. hierarchically and count the
//    InfiniBand bytes each approach spends.
// 4. Run full training sessions on the deployment — flat Diffusion vs.
//    HierarchicalDiffusion — and compare the inter-node migration traffic
//    each mode generates end-to-end.
//
// Build & run:
//   cmake -B build -G Ninja -DDYNMO_BUILD_EXAMPLES=ON && cmake --build build
//   ./build/example_multinode_hetero
#include <cmath>
#include <cstdio>
#include <tuple>

#include "core/stats.hpp"
#include "dynmo/dynmo.hpp"

using namespace dynmo;

int main() {
  // --- 1. Deployments -----------------------------------------------------
  const auto pod = cluster::Deployment::make_topology_aware(
      cluster::Topology::make_dgx_h100(2), /*num_stages=*/16);
  std::printf("homogeneous pod: %s\n",
              pod.topology().to_string().c_str());

  cluster::NodeDesc h100_node;
  h100_node.gpus.assign(8, hw::GpuSpec::h100_sxm5());
  cluster::NodeDesc a100_node;
  a100_node.gpus.assign(8, hw::GpuSpec::a100_sxm4());
  a100_node.intra = cluster::LinkSpec{cluster::LinkType::NvLink, 250e9,
                                      2.5e-6};
  const auto hetero = cluster::Deployment::make_topology_aware(
      cluster::Topology::make_hetero(
          {h100_node, a100_node},
          cluster::default_link(cluster::LinkType::InfiniBand)),
      /*num_stages=*/16);
  std::printf("hetero pod:      %s\n\n",
              hetero.topology().to_string().c_str());

  // --- 2. What the cost surfaces ask a deployment -------------------------
  std::printf("stage-boundary links of the homogeneous pod (64 MiB):\n");
  for (const auto& [a, b, what] :
       {std::tuple{0, 1, "adjacent stages, same node"},
        {7, 8, "the one node-crossing boundary"}}) {
    const auto lp = pod.link(a, b);
    std::printf("  stage %2d -> %2d  %-32s %s\n", a, b, what,
                format_seconds(lp.alpha_s + (64u << 20) / lp.beta_bytes_s)
                    .c_str());
  }
  const auto caps = hetero.stage_capacities();
  std::printf("\nhetero per-stage hardware (capacity-weighted balancing):\n");
  std::printf("  stage 0 on %s (capacity %.2f), stage 15 on %s "
              "(capacity %.2f)\n",
              hetero.gpu(0).name.c_str(), caps[0],
              hetero.gpu(15).name.c_str(), caps[15]);
  const auto group = pod.stage_group();
  const auto net = pod.make_cost_model();
  std::printf("\ncollectives over all 16 stages (node-grouped %dx%d):\n",
              group.num_nodes(), group.max_node_size());
  std::printf("  allreduce 256 MiB   flat cross-node %s   hierarchical %s\n",
              format_seconds(net.allreduce_time(16, 256u << 20, true))
                  .c_str(),
              format_seconds(net.allreduce_time(group, 256u << 20)).c_str());

  // --- 3. Flat vs hierarchical balancing ---------------------------------
  // Skew that lives inside each node: heavy early layers per node half.
  const std::size_t layers = 96;
  balance::DiffusionRequest req;
  req.weights.resize(layers);
  for (std::size_t l = 0; l < layers; ++l) {
    req.weights[l] = 0.4 + 2.5 * std::exp(-0.3 * static_cast<double>(l % 48));
  }
  const auto start = pipeline::StageMap::uniform(layers, 16);
  const std::vector<double> state_bytes(layers, 1e9);

  const auto flat = balance::DiffusionBalancer{}.balance(req, start);
  const auto hier = cluster::HierarchicalBalancer(pod.topology())
                        .balance(req, start, pod.stage_to_rank());

  const auto report = [&](const char* name, const pipeline::StageMap& m) {
    const auto plan = balance::plan_migration(start, m, state_bytes);
    const auto split = cluster::classify_migration(plan, pod.topology(),
                                                   pod.stage_to_rank());
    std::printf("  %-6s imbalance %.3f, intra-node %s, inter-node %s\n",
                name, load_imbalance(m.stage_loads(req.weights)),
                format_bytes(split.intra_node_bytes).c_str(),
                format_bytes(split.inter_node_bytes).c_str());
  };
  std::printf("\nbalancing intra-node skew (96 layers, 16 stages):\n");
  report("flat", flat.map);
  report("hier", hier.map);
  std::printf("  (hier used inter-node level: %s)\n",
              hier.used_inter_node ? "yes" : "no");

  // --- 4. End-to-end sessions on a deployment ----------------------------
  // MoE continual training rebalances every iteration (routing skew moves
  // constantly), so layer migrations actually happen and the two balancing
  // algorithms differ in the fabric traffic they generate.  Small 2-GPU
  // nodes put a node boundary between most stage pairs — the regime where
  // topology-blind balancing leaks the most InfiniBand traffic.
  const auto rails = cluster::Deployment::make_topology_aware(
      cluster::Topology::make_homogeneous(
          8, 2, hw::GpuSpec::h100_sxm5(),
          cluster::default_link(cluster::LinkType::NvLink),
          cluster::default_link(cluster::LinkType::InfiniBand)),
      /*num_stages=*/16);
  const auto model =
      model::make_moe(model::llama_moe_3_5b_config(), "llama-moe");
  Options opt;
  opt.session.pipeline_stages = 16;
  opt.session.num_microbatches = 64;
  opt.session.iterations = 500;
  opt.session.sim_stride = 10;
  opt.session.deployment = rails;

  const auto run_algo = [&](balance::Algorithm algo) {
    Options o = opt;
    o.session.algorithm = algo;
    Session session(model, UseCase::Moe, o);
    return session.run();
  };
  const auto flat_run = run_algo(balance::Algorithm::Diffusion);
  const auto hier_run = run_algo(balance::Algorithm::HierarchicalDiffusion);

  std::printf("\nsession on 8x 2-GPU nodes (MoE continual, 16 stages):\n");
  for (const auto& [name, r] :
       {std::pair{"diffusion", &flat_run}, {"hier_diffusion", &hier_run}}) {
    std::printf("  %-14s tokens/sec %.0f, idleness %.3f, rebalances %d, "
                "migrations intra %s / inter %s\n",
                name, r->tokens_per_sec, r->avg_idleness,
                r->rebalance_count,
                format_bytes(r->intra_node_migration_bytes).c_str(),
                format_bytes(r->inter_node_migration_bytes).c_str());
  }
  std::printf("  hierarchical balancing saved %s of inter-node migration "
              "traffic\n",
              format_bytes(flat_run.inter_node_migration_bytes -
                           hier_run.inter_node_migration_bytes)
                  .c_str());
  return 0;
}
