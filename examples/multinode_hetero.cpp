// Multi-node / heterogeneous cluster walkthrough.
//
// 1. Describe clusters declaratively (DGX presets, a mixed H100+A100 pod).
// 2. Compare stage→rank placements by their boundary traffic cost.
// 3. Balance a skewed load flat vs. hierarchically and count the
//    InfiniBand bytes each approach spends.
// 4. Run a full training session with the topology attached, so layer
//    migrations are priced by the links they actually cross.
//
// Build & run:
//   cmake -B build -G Ninja -DDYNMO_BUILD_EXAMPLES=ON && cmake --build build
//   ./build/example_multinode_hetero
#include <cmath>
#include <cstdio>
#include <tuple>

#include "core/stats.hpp"
#include "dynmo/dynmo.hpp"

using namespace dynmo;

int main() {
  // --- 1. Topologies ------------------------------------------------------
  const auto pod = cluster::Topology::make_dgx_h100(2);
  std::printf("homogeneous pod: %s\n", pod.to_string().c_str());

  cluster::NodeDesc h100_node;
  h100_node.gpus.assign(8, hw::GpuSpec::h100_sxm5());
  cluster::NodeDesc a100_node;
  a100_node.gpus.assign(8, hw::GpuSpec::a100_sxm4());
  a100_node.intra = cluster::LinkSpec{cluster::LinkType::NvLink, 250e9,
                                      2.5e-6};
  const auto hetero = cluster::Topology::make_hetero(
      {h100_node, a100_node},
      cluster::default_link(cluster::LinkType::InfiniBand));
  std::printf("hetero pod:      %s\n\n", hetero.to_string().c_str());

  std::printf("link examples (64 MiB payload):\n");
  for (const auto& [a, b, what] :
       {std::tuple{0, 5, "intra-node NVLink"},
        {3, 11, "cross-node same rail"},
        {0, 13, "cross-node off-rail (NVLink + IB)"}}) {
    std::printf("  rank %2d -> %2d  %-34s %s\n", a, b, what,
                format_seconds(pod.p2p_time(a, b, 64u << 20)).c_str());
  }

  // --- 2. Placement -------------------------------------------------------
  std::printf("\nplacement cost (16 stages, per-boundary activations):\n");
  for (const auto& [name, p] :
       {std::pair{"linear", cluster::place_linear(pod, 16)},
        {"round-robin", cluster::place_round_robin(pod, 16)},
        {"topology-aware", cluster::place_topology_aware(pod, 16)}}) {
    std::printf("  %-15s %s per iteration of boundary traffic\n", name,
                format_seconds(p.boundary_time_s).c_str());
  }

  // --- 3. Flat vs hierarchical balancing ---------------------------------
  // Skew that lives inside each node: heavy early layers per node half.
  const std::size_t layers = 96;
  balance::DiffusionRequest req;
  req.weights.resize(layers);
  for (std::size_t l = 0; l < layers; ++l) {
    req.weights[l] = 0.4 + 2.5 * std::exp(-0.3 * static_cast<double>(l % 48));
  }
  const auto start = pipeline::StageMap::uniform(layers, 16);
  const std::vector<double> state_bytes(layers, 1e9);
  const auto placement = cluster::place_topology_aware(pod, 16);

  const auto flat = balance::DiffusionBalancer{}.balance(req, start);
  const auto hier =
      cluster::HierarchicalBalancer(pod).balance(req, start,
                                                 placement.stage_to_rank);

  const auto report = [&](const char* name, const pipeline::StageMap& m) {
    const auto plan = balance::plan_migration(start, m, state_bytes);
    const auto split =
        cluster::classify_migration(plan, pod, placement.stage_to_rank);
    std::printf("  %-6s imbalance %.3f, intra-node %s, inter-node %s\n",
                name, load_imbalance(m.stage_loads(req.weights)),
                format_bytes(split.intra_node_bytes).c_str(),
                format_bytes(split.inter_node_bytes).c_str());
  };
  std::printf("\nbalancing intra-node skew (96 layers, 16 stages):\n");
  report("flat", flat.map);
  report("hier", hier.map);
  std::printf("  (hier used inter-node level: %s)\n",
              hier.used_inter_node ? "yes" : "no");

  // --- 4. End-to-end session on the topology -----------------------------
  // MoE continual training rebalances every iteration (routing skew moves
  // constantly), so layer migrations actually happen and their cost shows
  // the topology pricing at work.
  const auto model =
      model::make_moe(model::llama_moe_3_5b_config(), "llama-moe");
  Options opt;
  opt.session.pipeline_stages = 16;
  opt.session.num_microbatches = 64;
  opt.session.iterations = 500;
  opt.session.sim_stride = 10;
  opt.session.topology = pod;

  Session session(model, UseCase::Moe, opt);
  const auto result = session.run();
  std::printf("\nsession on 2x DGX-H100 (MoE continual, 16 stages):\n");
  std::printf("  tokens/sec %.0f, idleness %.3f, rebalances %d, migrations "
              "%s (%.2f%% of run)\n",
              result.tokens_per_sec, result.avg_idleness,
              result.rebalance_count,
              format_seconds(result.overhead.migrate_s).c_str(),
              100.0 * result.overhead.migrate_s /
                  std::max(1e-9, result.total_time_s));
  return 0;
}
