// dynmo_sim — command-line driver for the DynMo simulator.
//
//   ./build/examples/dynmo_sim --case early_exit --layers 32 --stages 8 \
//       --mode dynmo --algo diffusion --iterations 5000 --repack \
//       --trace /tmp/pipeline.json
//
// Runs one training session and prints the result summary; with --trace it
// additionally writes a Chrome-trace (chrome://tracing, Perfetto) timeline
// of one steady-state iteration so the bubbles are visible.
#include <cstdio>
#include <cstring>
#include <string>

#include "core/config.hpp"
#include "dynmo/dynmo.hpp"
#include "pipeline/trace.hpp"

namespace {

using namespace dynmo;

struct CliArgs {
  UseCase use_case = UseCase::EarlyExit;
  std::size_t layers = 24;
  int stages = 8;
  int data_parallel = 1;
  std::int64_t iterations = 5000;
  std::int64_t stride = 50;
  std::int64_t interval = 100;
  runtime::BalancingMode mode = runtime::BalancingMode::DynMo;
  balance::Algorithm algo = balance::Algorithm::Diffusion;
  bool repack = false;
  std::string trace_path;
  bool help = false;
};

UseCase parse_case(const std::string& s) {
  for (UseCase c : {UseCase::Static, UseCase::Moe, UseCase::GradualPruning,
                    UseCase::LayerFreezing, UseCase::SparseAttention,
                    UseCase::EarlyExit, UseCase::MixtureOfDepths}) {
    if (s == to_string(c)) return c;
  }
  throw Error("unknown --case '" + s +
              "' (static|moe|gradual_pruning|layer_freezing|"
              "sparse_attention|early_exit|mixture_of_depths)");
}

runtime::BalancingMode parse_mode(const std::string& s) {
  if (s == "static" || s == "megatron") {
    return runtime::BalancingMode::StaticUniform;
  }
  if (s == "deepspeed") return runtime::BalancingMode::StaticParam;
  if (s == "egeria") return runtime::BalancingMode::Egeria;
  if (s == "tutel") return runtime::BalancingMode::Tutel;
  if (s == "dynmo") return runtime::BalancingMode::DynMo;
  throw Error("unknown --mode '" + s +
              "' (static|deepspeed|egeria|tutel|dynmo)");
}

void apply_config_file(CliArgs& args, const std::string& path) {
  const Config cfg = Config::load(path);
  const auto unknown = cfg.unknown_keys({"case", "layers", "stages", "dp",
                                         "iterations", "stride", "interval",
                                         "mode", "algo", "repack", "trace"});
  DYNMO_CHECK(unknown.empty(),
              "unknown config key '" << unknown.front() << "' in " << path);
  if (cfg.contains("case")) args.use_case = parse_case(cfg.get_string("case"));
  args.layers = static_cast<std::size_t>(
      cfg.get_int("layers", static_cast<std::int64_t>(args.layers)));
  args.stages = static_cast<int>(cfg.get_int("stages", args.stages));
  args.data_parallel = static_cast<int>(cfg.get_int("dp", args.data_parallel));
  args.iterations = cfg.get_int("iterations", args.iterations);
  args.stride = cfg.get_int("stride", args.stride);
  args.interval = cfg.get_int("interval", args.interval);
  if (cfg.contains("mode")) args.mode = parse_mode(cfg.get_string("mode"));
  if (cfg.contains("algo")) {
    args.algo = cfg.get_string("algo") == "partition"
                    ? balance::Algorithm::Partition
                    : balance::Algorithm::Diffusion;
  }
  args.repack = cfg.get_bool("repack", args.repack);
  args.trace_path = cfg.get_string("trace", args.trace_path);
}

CliArgs parse(int argc, char** argv) {
  CliArgs args;
  const auto need_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) throw Error(std::string(argv[i]) + " needs a value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--config") {
      apply_config_file(args, need_value(i));
    } else if (flag == "--case") {
      args.use_case = parse_case(need_value(i));
    } else if (flag == "--layers") {
      args.layers = std::stoul(need_value(i));
    } else if (flag == "--stages") {
      args.stages = std::stoi(need_value(i));
    } else if (flag == "--dp") {
      args.data_parallel = std::stoi(need_value(i));
    } else if (flag == "--iterations") {
      args.iterations = std::stoll(need_value(i));
    } else if (flag == "--stride") {
      args.stride = std::stoll(need_value(i));
    } else if (flag == "--interval") {
      args.interval = std::stoll(need_value(i));
    } else if (flag == "--mode") {
      args.mode = parse_mode(need_value(i));
    } else if (flag == "--algo") {
      const auto v = need_value(i);
      args.algo = v == "partition" ? balance::Algorithm::Partition
                                   : balance::Algorithm::Diffusion;
    } else if (flag == "--repack") {
      args.repack = true;
    } else if (flag == "--trace") {
      args.trace_path = need_value(i);
    } else if (flag == "--help" || flag == "-h") {
      args.help = true;
    } else {
      throw Error("unknown flag '" + flag + "' (try --help)");
    }
  }
  return args;
}

void usage() {
  std::puts(
      "dynmo_sim — run one DynMo training session\n"
      "  --case C        static|moe|gradual_pruning|layer_freezing|\n"
      "                  sparse_attention|early_exit|mixture_of_depths\n"
      "  --layers N      transformer blocks (default 24)\n"
      "  --stages N      pipeline stages (default 8)\n"
      "  --dp N          data-parallel replicas (default 1)\n"
      "  --iterations N  training iterations (default 5000)\n"
      "  --stride N      simulate every Nth iteration (default 50)\n"
      "  --interval N    rebalance cadence (default 100)\n"
      "  --mode M        static|deepspeed|egeria|tutel|dynmo\n"
      "  --algo A        partition|diffusion (default diffusion)\n"
      "  --repack        enable elastic re-packing\n"
      "  --trace PATH    write a Chrome-trace of one iteration\n"
      "  --config PATH   read the same options from a key=value file\n"
      "                  (later flags override the file)");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliArgs args = parse(argc, argv);
    if (args.help) {
      usage();
      return 0;
    }

    const auto model =
        args.use_case == UseCase::Moe
            ? model::make_moe(model::mixtral_8x7b_config(), "mixtral")
            : model::make_gpt({.num_blocks = args.layers,
                               .include_embedding = false,
                               .include_lm_head = false});

    Options opt;
    opt.session.pipeline_stages = args.stages;
    opt.session.data_parallel = args.data_parallel;
    opt.session.num_microbatches = 4 * args.stages;
    opt.session.iterations = args.iterations;
    opt.session.sim_stride = args.stride;
    opt.session.rebalance_interval = args.interval;
    opt.session.mode = args.mode;
    opt.session.algorithm = args.algo;
    opt.session.repack = args.repack;
    opt.moe.tokens_per_microbatch = 1024;

    Session session(model, args.use_case, opt);
    const auto r = session.run();

    std::printf("case            : %s\n", to_string(args.use_case));
    std::printf("mode            : %s (%s)\n",
                runtime::to_string(args.mode),
                balance::to_string(args.algo));
    std::printf("tokens/sec      : %.0f\n", r.tokens_per_sec);
    std::printf("avg idleness    : %.1f%%\n", 100.0 * r.avg_idleness);
    std::printf("avg bubble      : %.1f%%\n", 100.0 * r.avg_bubble_ratio);
    std::printf("avg GPUs        : %.1f / %d\n", r.avg_active_workers,
                args.stages);
    std::printf("rebalances      : %d (overhead %.3f%%)\n",
                r.rebalance_count, 100.0 * r.overhead_fraction);
    std::printf("final map       : %s\n", r.final_map.to_string().c_str());
    if (r.oom) std::printf("WARNING: a stage exceeded GPU memory (OOM)\n");

    if (!args.trace_path.empty()) {
      // Re-simulate one steady-state iteration with tracing enabled.
      auto engine = make_engine(args.use_case, model, opt);
      std::vector<model::LayerState> states(model.num_layers());
      if (engine) engine->step(args.iterations - 1, states);
      pipeline::CostBuilder builder(
          model, model::LayerCostModel{}, comm::CostModel{},
          pipeline::CostBuilderConfig{opt.session.micro_batch,
                                      opt.session.num_microbatches});
      const auto costs = builder.build(states, r.final_map);
      const auto [pres, trace] =
          pipeline::simulate_traced(opt.session.schedule, costs);
      trace.write_chrome_json(args.trace_path);
      std::printf("trace           : %s (%zu events, makespan %.2f ms)\n",
                  args.trace_path.c_str(), trace.events.size(),
                  pres.makespan_s * 1e3);
    }
    return 0;
  } catch (const dynmo::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
