// Continual training of MoE models (Mixtral-8x7b-style aux-loss routing vs
// LLaMA-MoE with S-BASE) with every-iteration rebalancing — the paper's
// §4.2.1 scenario.  Also demonstrates the routing simulator directly:
// per-expert token histograms and the bottleneck factors that cause the
// pipeline imbalance.
//
//   ./build/examples/moe_continual
#include <cstdio>

#include "dynmo/dynmo.hpp"

namespace {

void show_routing(const dynmo::model::ModelDesc& model,
                  dynmo::dynamic::MoeRouting routing) {
  using namespace dynmo;
  dynamic::MoeEngineConfig cfg;
  cfg.routing = routing;
  cfg.tokens_per_microbatch = 2048;
  dynamic::MoeEngine engine(model, cfg);
  std::printf("  %s routing, layer 1, iteration 100:\n    per-expert tokens:",
              dynamic::to_string(routing));
  const auto counts = engine.route_tokens(1, 100, 0);
  for (auto c : counts) std::printf(" %5zu", c);
  std::printf("\n    bottleneck factor: %.2fx\n",
              dynamic::MoeEngine::bottleneck_factor(counts));
}

}  // namespace

int main() {
  using namespace dynmo;
  const auto mixtral = model::make_moe(model::mixtral_8x7b_config(),
                                       "mixtral-8x7b");
  std::printf("Mixtral 8x7b: %.1fB params, 8 experts, top-2 routing\n",
              static_cast<double>(mixtral.total_params()) / 1e9);
  show_routing(mixtral, dynamic::MoeRouting::AuxLoss);
  show_routing(mixtral, dynamic::MoeRouting::SBase);
  show_routing(mixtral, dynamic::MoeRouting::ExpertChoice);

  Options opt;
  opt.session.pipeline_stages = 8;
  opt.session.data_parallel = 16;
  opt.session.num_microbatches = 32;
  opt.session.iterations = 500;
  opt.session.sim_stride = 10;
  opt.session.rebalance_interval = 1;  // rebalance in every backward pass
  opt.moe.tokens_per_microbatch = 1024;

  const auto run = [&](runtime::BalancingMode mode) {
    auto o = opt;
    o.session.mode = mode;
    Session s(mixtral, UseCase::Moe, o);
    return s.run();
  };

  const auto static_run = run(runtime::BalancingMode::StaticUniform);
  const auto tutel = run(runtime::BalancingMode::Tutel);
  const auto dynmo = run(runtime::BalancingMode::DynMo);

  std::printf("\n%-24s %12s %9s %9s\n", "mode", "tokens/s", "bubble",
              "overhead");
  const auto row = [](const char* n, const dynmo::runtime::SessionResult& r) {
    std::printf("%-24s %12.0f %8.1f%% %8.2f%%\n", n, r.tokens_per_sec,
                100.0 * r.avg_bubble_ratio, 100.0 * r.overhead_fraction);
  };
  row("static (Megatron-LM)", static_run);
  row("Tutel (emulated)", tutel);
  row("DynMo (diffusion)", dynmo);
  std::printf("\nDynMo vs static: %.2fx   (bubble %.1f%% -> %.1f%%)\n",
              dynmo.tokens_per_sec / static_run.tokens_per_sec,
              100.0 * static_run.avg_bubble_ratio,
              100.0 * dynmo.avg_bubble_ratio);
  return 0;
}
