// The full elastic lifecycle end to end (docs/RUNTIME.md): a training job
// whose cluster footprint breathes with the workload.
//
// A 24-layer GPT's tail goes near-idle for a third of the run (early-exit
// style concentration), then spikes back.  With SessionConfig::elastic on,
// the session shrinks onto fewer GPUs through a checkpoint-coordinated
// restart — releasing the rest to the mock ECK control plane — and
// re-claims them when the spike returns, because the projected bottleneck
// gain passes the same payoff-window pricing migrations use.
//
//   ./build/example_elastic_lifecycle
#include <cstdio>

#include "dynmo/dynmo.hpp"
#include "repack/elastic.hpp"

namespace {

using namespace dynmo;

class SpikeEngine : public dynamic::DynamismEngine {
 public:
  SpikeEngine(std::int64_t lull_begin, std::int64_t lull_end,
              std::size_t heavy_layers)
      : begin_(lull_begin), end_(lull_end), heavy_(heavy_layers) {}

  std::string name() const override { return "spike"; }
  bool is_dynamism_point(std::int64_t iter) const override {
    return iter == begin_ || iter == end_;
  }
  void step(std::int64_t iter,
            std::span<model::LayerState> states) override {
    const bool lull = iter >= begin_ && iter < end_;
    for (std::size_t l = heavy_; l < states.size(); ++l) {
      states[l].compute_scale = lull ? 0.02 : 1.0;
    }
  }
  std::int64_t recommended_rebalance_interval() const override {
    return 100;
  }

 private:
  std::int64_t begin_, end_;
  std::size_t heavy_;
};

}  // namespace

int main() {
  const auto model = model::make_gpt({.num_blocks = 24,
                                      .include_embedding = false,
                                      .include_lm_head = false});

  runtime::SessionConfig cfg;
  cfg.pipeline_stages = 8;
  cfg.micro_batch = 2;
  cfg.num_microbatches = 16;
  cfg.iterations = 3000;
  cfg.sim_stride = 10;
  cfg.rebalance_interval = 100;
  cfg.mode = runtime::BalancingMode::DynMo;
  cfg.algorithm = balance::Algorithm::Partition;

  cfg.elastic.enabled = true;
  cfg.elastic.interval = 500;
  cfg.elastic.min_workers = 2;
  cfg.elastic.payoff_window_iters = 600.0;
  cfg.elastic.restart_alpha_s = 0.5;
  cfg.elastic.checkpoint_bw = 16.0 * 1024 * 1024 * 1024;
  repack::MockEckCluster eck(/*total_gpus=*/8);
  cfg.elastic.cluster = &eck;

  SpikeEngine engine(/*lull_begin=*/1000, /*lull_end=*/2000,
                     /*heavy_layers=*/4);
  runtime::TrainingSession session(model, cfg, &engine);
  const auto r = session.run();

  std::printf("%-8s %10s %8s %8s\n", "iter", "iter time", "idle", "GPUs");
  for (const auto& s : r.samples) {
    if (s.iter % 250 != 0) continue;
    std::printf("%-8lld %9.1fms %7.1f%% %8d\n",
                static_cast<long long>(s.iter), s.time_s * 1e3,
                100.0 * s.idleness, s.active_workers);
  }

  std::printf("\nlifecycle: %d shrink(s), %d expand(s), %.2f s of restart "
              "stall, %.4f GPU-hours saved\n",
              r.shrinks, r.expands, r.restart_stall_s, r.gpu_hours_saved);
  std::printf("control plane saw %zu PATCHes; %d GPU(s) free at the end\n",
              eck.patches().size(), eck.free_gpus());
  std::printf("throughput: %.0f tokens/s on avg %.2f / 8 GPUs\n",
              r.tokens_per_sec, r.avg_active_workers);
  return 0;
}
