// Hybrid data + pipeline parallelism on a DP×PP grid deployment.
//
// 1. Place the same 4×4 grid on a 4-node cluster under both orientations:
//    DpInner (a stage's DP peers packed within a node) and PpInner (each
//    replica's pipeline packed within a node).
// 2. Ask each deployment what the orientations trade: the per-stage
//    gradient-allreduce group, its hierarchical price, and the boundary
//    activation cost.
// 3. Run full MoE training sessions on both grids and compare where the
//    bytes went — DpInner keeps the gradient exchange on NVLink and pays
//    the fabric on pipeline boundaries, PpInner the reverse.
//
// Build & run:
//   cmake -B build -G Ninja -DDYNMO_BUILD_EXAMPLES=ON && cmake --build build
//   ./build/example_grid_hybrid
#include <cstdio>
#include <utility>

#include "core/stats.hpp"
#include "dynmo/dynmo.hpp"

using namespace dynmo;

namespace {

cluster::Topology rails_cluster() {
  return cluster::Topology::make_homogeneous(
      /*n_nodes=*/4, /*gpus_per_node=*/4, hw::GpuSpec::h100_sxm5(),
      cluster::default_link(cluster::LinkType::NvLink),
      cluster::default_link(cluster::LinkType::InfiniBand));
}

}  // namespace

int main() {
  constexpr int kDp = 4;
  constexpr int kPp = 4;

  // --- 1. One grid, two orientations --------------------------------------
  const auto dp_inner = cluster::Deployment::make_grid_topology_aware(
      rails_cluster(), kDp, kPp, cluster::GridOrientation::DpInner);
  const auto pp_inner = cluster::Deployment::make_grid_topology_aware(
      rails_cluster(), kDp, kPp, cluster::GridOrientation::PpInner);
  std::printf("grid: %dx%d on %s\n\n", kDp, kPp,
              rails_cluster().to_string().c_str());

  // --- 2. What each orientation costs -------------------------------------
  const std::size_t grad_bytes = 256u << 20;  // per-stage gradient payload
  std::printf("per-stage DP allreduce (%s gradients):\n",
              format_bytes(static_cast<double>(grad_bytes)).c_str());
  for (const auto& [orientation, dep] :
       {std::pair{cluster::GridOrientation::DpInner, &dp_inner},
        {cluster::GridOrientation::PpInner, &pp_inner}}) {
    const auto net = dep->make_cost_model();
    const auto g = dep->dp_group(0);
    const auto split = comm::allreduce_bytes(g, grad_bytes);
    std::printf(
        "  %-8s peers span %d node(s)  allreduce %-10s wire bytes "
        "intra %-10s inter %s\n",
        cluster::to_string(orientation), g.num_nodes(),
        format_seconds(net.allreduce_time(g, grad_bytes)).c_str(),
        format_bytes(split.intra_node).c_str(),
        format_bytes(split.inter_node).c_str());
  }
  std::printf(
      "\npipeline boundaries (replica 0, 16 MiB activations):\n"
      "  dp_inner  stage 0 -> 1 %-10s (crosses the fabric)\n"
      "  pp_inner  stage 0 -> 1 %-10s (stays on NVLink)\n",
      format_seconds(dp_inner.link(0, 1).alpha_s +
                     (16u << 20) / dp_inner.link(0, 1).beta_bytes_s)
          .c_str(),
      format_seconds(pp_inner.link(0, 1).alpha_s +
                     (16u << 20) / pp_inner.link(0, 1).beta_bytes_s)
          .c_str());

  // --- 3. End-to-end sessions ---------------------------------------------
  // MoE continual training: the gradient allreduce runs every iteration,
  // so the orientation decides whether that standing traffic rides NVLink
  // or InfiniBand.
  const auto model =
      model::make_moe(model::llama_moe_3_5b_config(), "llama-moe");
  Options opt;
  opt.session.pipeline_stages = kPp;
  opt.session.data_parallel = kDp;
  opt.session.num_microbatches = 32;
  opt.session.iterations = 500;
  opt.session.sim_stride = 10;
  opt.moe.tokens_per_microbatch = 512;

  const auto run_grid = [&](const cluster::Deployment& dep) {
    Options o = opt;
    o.session.deployment = dep;
    Session session(model, UseCase::Moe, o);
    return session.run();
  };
  const auto dp_run = run_grid(dp_inner);
  const auto pp_run = run_grid(pp_inner);

  std::printf("\nMoE session, %d iterations, %dx%d grid:\n",
              static_cast<int>(opt.session.iterations), kDp, kPp);
  for (const auto& [orientation, r] :
       {std::pair{cluster::GridOrientation::DpInner, &dp_run},
        {cluster::GridOrientation::PpInner, &pp_run}}) {
    const char* name = cluster::to_string(orientation);
    std::printf(
        "  %-8s tokens/sec %.0f  DP bytes intra %-10s inter %-10s "
        "migrations intra %-10s inter %s\n",
        name, r->tokens_per_sec,
        format_bytes(r->intra_node_dp_bytes).c_str(),
        format_bytes(r->inter_node_dp_bytes).c_str(),
        format_bytes(r->intra_node_migration_bytes).c_str(),
        format_bytes(r->inter_node_migration_bytes).c_str());
  }
  std::printf(
      "\ndp_inner moved %s of gradient traffic off the fabric relative to "
      "pp_inner.\n",
      format_bytes(pp_run.inter_node_dp_bytes - dp_run.inter_node_dp_bytes)
          .c_str());
  return 0;
}
