// Quickstart: balance an early-exit GPT-24 on 8 simulated H100s.
//
// Runs the same model three ways — static Megatron-style placement, DynMo
// with the Partition balancer, DynMo with the Diffusion balancer — and
// prints throughput, idleness, and DynMo's own overhead.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "dynmo/dynmo.hpp"

namespace {

dynmo::runtime::SessionResult run_mode(const dynmo::model::ModelDesc& model,
                                       dynmo::UseCase use_case,
                                       dynmo::runtime::BalancingMode mode,
                                       dynmo::balance::Algorithm algo) {
  dynmo::Options opt;
  opt.session.pipeline_stages = 8;
  opt.session.num_microbatches = 32;  // 4 in-flight microbatches per stage
  opt.session.micro_batch = 2;
  opt.session.iterations = 10000;
  opt.session.sim_stride = 100;
  opt.session.mode = mode;
  opt.session.algorithm = algo;
  opt.session.rebalance_interval = 100;
  dynmo::Session session(model, use_case, opt);
  return session.run();
}

}  // namespace

int main() {
  // Embedding / LM head run vocab-parallel outside the pipeline (standard
  // Megatron practice), so the pipeline hosts the transformer blocks.
  const auto model = dynmo::model::make_gpt({.num_blocks = 24,
                                             .include_embedding = false,
                                             .include_lm_head = false});
  std::printf("model: gpt-24, %.1fM params, 8-way pipeline, early exit\n\n",
              static_cast<double>(model.total_params()) / 1e6);

  const auto baseline =
      run_mode(model, dynmo::UseCase::EarlyExit,
               dynmo::runtime::BalancingMode::StaticUniform,
               dynmo::balance::Algorithm::Partition);
  const auto no_exit =
      run_mode(model, dynmo::UseCase::Static,
               dynmo::runtime::BalancingMode::StaticUniform,
               dynmo::balance::Algorithm::Partition);
  const auto partition =
      run_mode(model, dynmo::UseCase::EarlyExit,
               dynmo::runtime::BalancingMode::DynMo,
               dynmo::balance::Algorithm::Partition);
  const auto diffusion =
      run_mode(model, dynmo::UseCase::EarlyExit,
               dynmo::runtime::BalancingMode::DynMo,
               dynmo::balance::Algorithm::Diffusion);

  std::printf("%-28s %12s %10s %10s\n", "configuration", "tokens/s",
              "idleness", "overhead");
  const auto row = [](const char* name,
                      const dynmo::runtime::SessionResult& r) {
    std::printf("%-28s %12.0f %9.1f%% %9.2f%%\n", name, r.tokens_per_sec,
                100.0 * r.avg_idleness, 100.0 * r.overhead_fraction);
  };
  row("no early exit (static)", no_exit);
  row("early exit, static", baseline);
  row("early exit, DynMo part.", partition);
  row("early exit, DynMo diff.", diffusion);

  std::printf("\nspeedup over no-exit baseline: partition %.2fx, "
              "diffusion %.2fx\n",
              partition.tokens_per_sec / no_exit.tokens_per_sec,
              diffusion.tokens_per_sec / no_exit.tokens_per_sec);
  std::printf("speedup over static-placement early exit: %.2fx\n",
              diffusion.tokens_per_sec / baseline.tokens_per_sec);
  return 0;
}
