// The threaded runtime in action: real worker threads, real tensors, real
// P2P layer migration, real distributed global pruning — and the proof
// that none of it changes the math (bit-identical output checksums), which
// is DynMo's "no impact on model accuracy" contract.
//
//   ./build/examples/threaded_migration
#include <cstdio>

#include "runtime/threaded.hpp"

int main() {
  using namespace dynmo;
  runtime::ThreadedConfig cfg;
  cfg.workers = 4;
  cfg.num_layers = 12;
  cfg.hidden = 64;
  cfg.batch_rows = 8;
  cfg.microbatches = 4;

  std::printf("threaded pipeline: %d workers, %zu layers of %zux%zu\n\n",
              cfg.workers, cfg.num_layers, cfg.hidden, cfg.hidden);

  // Reference: train 6 iterations on a fixed uniform placement.
  runtime::ThreadedPipeline ref(cfg);
  runtime::PlanPhase stay;
  stay.map = pipeline::StageMap::uniform(cfg.num_layers, cfg.workers);
  stay.iterations = 6;
  const auto a = ref.run({stay});
  std::printf("fixed placement   : %d iters in %.1f ms, checksum %016llx\n",
              a.iterations_run, a.wall_s * 1e3,
              static_cast<unsigned long long>(a.output_checksum));

  // Same training, but migrate layers twice, prune globally to 60%
  // sparsity, then re-pack onto 2 workers and release the other two.
  runtime::ThreadedPipeline dyn(cfg);
  runtime::PlanPhase p1 = stay;
  p1.iterations = 2;
  runtime::PlanPhase p2;
  p2.map = pipeline::StageMap::from_boundaries({0, 2, 5, 9, 12});
  p2.iterations = 2;
  runtime::PlanPhase p3;
  p3.map = pipeline::StageMap::from_boundaries({0, 6, 12, 12, 12});
  p3.iterations = 2;
  p3.active = std::vector<bool>{true, true, false, false};
  const auto b = dyn.run({p1, p2, p3});
  std::printf("migrate+repack    : %d iters in %.1f ms, checksum %016llx, "
              "%.1f KiB migrated\n",
              b.iterations_run, b.wall_s * 1e3,
              static_cast<unsigned long long>(b.output_checksum),
              static_cast<double>(b.bytes_migrated) / 1024.0);

  std::printf("checksums match   : %s\n",
              a.output_checksum == b.output_checksum ? "YES" : "NO");

  // Distributed global pruning (Algorithm 1) over the live workers.
  runtime::ThreadedPipeline pruned(cfg);
  runtime::PlanPhase pp = stay;
  pp.prune_sparsity = 0.6;
  pp.iterations = 2;
  const auto c = pruned.run({pp});
  const double total =
      static_cast<double>(cfg.num_layers * cfg.hidden * cfg.hidden);
  std::printf("\nglobal prune 60%%  : %zu / %.0f weights survive (%.1f%%)\n",
              c.weights_nnz, total,
              100.0 * static_cast<double>(c.weights_nnz) / total);

  std::printf("\nper-worker busy seconds:");
  for (double busy : b.worker_busy_s) std::printf(" %.4f", busy);
  std::printf("\n");
  return a.output_checksum == b.output_checksum ? 0 : 1;
}
