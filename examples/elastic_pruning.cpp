// Elastic training under gradual pruning: as the Zhu–Gupta schedule prunes
// the model to 90% sparsity, DynMo rebalances after every pruning step and
// re-packs the shrinking workload onto fewer GPUs, releasing the rest back
// to the (mock) ECK job manager — the paper's Figure-4 workflow end to end.
//
//   ./build/examples/elastic_pruning
#include <cstdio>

#include "dynmo/dynmo.hpp"
#include "repack/elastic.hpp"

int main() {
  using namespace dynmo;

  const auto model = model::make_gpt({.num_blocks = 32,
                                      .hidden = 4096,
                                      .include_embedding = false,
                                      .include_lm_head = false});
  std::printf("model: gpt-32, hidden 4096, %.1fB params\n",
              static_cast<double>(model.total_params()) / 1e9);

  Options opt;
  opt.session.pipeline_stages = 8;
  opt.session.data_parallel = 1;
  opt.session.micro_batch = 1;
  opt.session.num_microbatches = 32;
  opt.session.iterations = 10000;
  opt.session.sim_stride = 100;
  opt.session.mode = runtime::BalancingMode::DynMo;
  opt.session.algorithm = balance::Algorithm::Partition;
  opt.session.rebalance_interval = 1000;
  opt.session.repack = true;
  opt.session.repack_interval = 1000;
  opt.session.repack_policy =
      runtime::SessionConfig::RepackPolicy::MemoryFirstFit;

  Session session(model, UseCase::GradualPruning, opt);
  const auto result = session.run();

  std::printf("\n%-8s %10s %8s %8s %10s\n", "iter", "iter time", "idle",
              "GPUs", "sparsity~");
  for (const auto& s : result.samples) {
    if (s.iter % 1000 != 0) continue;
    std::printf("%-8lld %9.1fms %7.1f%% %8d %9.0f%%\n",
                static_cast<long long>(s.iter), s.time_s * 1e3,
                100.0 * s.idleness, s.active_workers,
                100.0 * (1.0 - s.compute_fraction));
  }

  std::printf("\nthroughput: %.0f tokens/s, avg GPUs used: %.1f / 8 "
              "(%d repacks, overhead %.3f%%)\n",
              result.tokens_per_sec, result.avg_active_workers,
              result.repack_count, 100.0 * result.overhead_fraction);

  // Release the freed GPUs through the ECK-style job-manager protocol.
  repack::MockEckCluster cluster(/*total_gpus=*/8);
  repack::JobManagerClient pod(&cluster, "dynmo-train", 8);
  const int still_needed = static_cast<int>(
      result.final_map.active_stages());
  if (pod.resize_gpu_claim(still_needed)) {
    std::printf("released %d GPUs to the cluster; a pending job grabbed %d\n",
                8 - still_needed,
                cluster.schedule_pending_job(8 - still_needed));
  }
  return 0;
}
