#include "repack/repack.hpp"

#include <algorithm>
#include <numeric>

#include "core/error.hpp"

namespace dynmo::repack {

namespace {

/// Worker w → node hosting deployment stage w.
std::vector<int> worker_nodes(const cluster::Deployment& dep,
                              std::size_t num_workers) {
  DYNMO_CHECK(num_workers <= static_cast<std::size_t>(dep.num_stages()),
              num_workers << " workers but the deployment has "
                          << dep.num_stages() << " stages");
  std::vector<int> nodes(num_workers);
  for (std::size_t w = 0; w < num_workers; ++w) {
    nodes[w] = dep.node(static_cast<int>(w));
  }
  return nodes;
}

}  // namespace

int FirstFitResult::active_workers() const {
  return static_cast<int>(std::count(active.begin(), active.end(), true));
}

FirstFitResult repack_first_fit(std::vector<double> mem_usage,
                                std::vector<std::size_t> num_layers,
                                double max_mem, int target_num_workers) {
  DYNMO_CHECK(mem_usage.size() == num_layers.size(),
              "mem_usage/num_layers size mismatch");
  DYNMO_CHECK(max_mem > 0.0, "max_mem must be positive");
  const int n = static_cast<int>(mem_usage.size());

  FirstFitResult res;
  res.active.assign(mem_usage.size(), true);

  // Paper Algorithm 2, lines 2–14.  (The paper's listing marks `src` as the
  // worker being emptied; transfers carry its layers to `dst`.)
  for (int src = 0; src < n; ++src) {
    for (int dst = src + 1; dst < n; ++dst) {
      const auto isrc = static_cast<std::size_t>(src);
      const auto idst = static_cast<std::size_t>(dst);
      if (!res.active[isrc] || !res.active[idst]) continue;
      const int still_active =
          static_cast<int>(std::count(res.active.begin(), res.active.end(), true));
      if (mem_usage[isrc] + mem_usage[idst] < max_mem &&
          still_active > target_num_workers) {
        res.active[isrc] = false;
        for (std::size_t lyr = 0; lyr < num_layers[isrc]; ++lyr) {
          res.transfers.push_back(Transfer{src, dst, lyr});
        }
        mem_usage[idst] += mem_usage[isrc];
        mem_usage[isrc] = 0.0;
        num_layers[idst] += num_layers[isrc];
        num_layers[isrc] = 0;
        break;  // src is empty; move on to the next src
      }
    }
  }
  res.mem_usage = std::move(mem_usage);
  res.num_layers = std::move(num_layers);
  return res;
}

ContiguousRepackResult repack_contiguous(const ContiguousRepackRequest& req,
                                         int num_workers) {
  DYNMO_CHECK(num_workers > 0, "need at least one worker");
  DYNMO_CHECK(req.mem_capacity > 0.0, "repack needs a memory capacity");
  DYNMO_CHECK(req.fill_fraction > 0.0 && req.fill_fraction <= 1.0,
              "fill fraction must be in (0,1]");

  const double budget = req.mem_capacity * req.fill_fraction;
  const std::span<const double> mem(req.memory_bytes);

  ContiguousRepackResult out;
  std::vector<std::size_t> boundaries;
  boundaries.push_back(0);
  double acc = 0.0;
  for (std::size_t l = 0; l < mem.size(); ++l) {
    const bool stage_empty = boundaries.back() == l;
    if (!stage_empty && acc + mem[l] > budget) {
      boundaries.push_back(l);
      acc = 0.0;
    }
    if (mem[l] > budget) {
      // A single layer over budget can never fit a worker: flag the result
      // (the caller falls back to not repacking).
      out.feasible = false;
    }
    acc += mem[l];
  }
  boundaries.push_back(mem.size());

  int used = static_cast<int>(boundaries.size()) - 1;
  if (used > num_workers) {
    out.feasible = false;
    used = num_workers;  // truncated map below is only advisory
    boundaries.resize(static_cast<std::size_t>(num_workers));
    boundaries.push_back(mem.size());
  }

  // Honor an explicit worker count.  Spreading out (target > memory
  // minimum) is always legal — it only lowers per-worker memory.  Packing
  // tighter than the memory minimum is an OOM (Fig. 4's empty cells).
  if (req.target_workers > 0 && req.target_workers <= num_workers) {
    if (used < req.target_workers) {
      const auto spread =
          pipeline::StageMap::uniform(mem.size(), req.target_workers);
      boundaries.assign(spread.boundaries().begin(),
                        spread.boundaries().end());
      used = req.target_workers;
    } else if (used > req.target_workers) {
      out.feasible = false;
    }
  }

  while (static_cast<int>(boundaries.size()) - 1 < num_workers) {
    boundaries.push_back(mem.size());
  }
  out.map = pipeline::StageMap::from_boundaries(std::move(boundaries));
  out.active_workers = used;
  return out;
}

FirstFitResult repack_first_fit(std::vector<double> mem_usage,
                                std::vector<std::size_t> num_layers,
                                double max_mem, int target_num_workers,
                                const cluster::Deployment& deployment) {
  DYNMO_CHECK(mem_usage.size() == num_layers.size(),
              "mem_usage/num_layers size mismatch");
  DYNMO_CHECK(max_mem > 0.0, "max_mem must be positive");
  const auto node_of = worker_nodes(deployment, mem_usage.size());

  FirstFitResult res;
  res.active.assign(mem_usage.size(), true);

  // Distinct nodes, each with its member workers.
  std::vector<int> nodes = node_of;
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());

  const auto node_members = [&](int node) {
    std::vector<int> m;
    for (std::size_t w = 0; w < node_of.size(); ++w) {
      if (node_of[w] == node && res.active[w]) m.push_back(static_cast<int>(w));
    }
    return m;
  };

  bool progressed = true;
  while (progressed) {
    progressed = false;
    // Easiest node first: fewest active workers, then least resident memory.
    std::vector<int> order = nodes;
    std::erase_if(order, [&](int n) { return node_members(n).empty(); });
    if (order.size() <= 1) break;
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      const auto ma = node_members(a);
      const auto mb = node_members(b);
      double mem_a = 0.0;
      double mem_b = 0.0;
      for (int w : ma) mem_a += mem_usage[static_cast<std::size_t>(w)];
      for (int w : mb) mem_b += mem_usage[static_cast<std::size_t>(w)];
      if (ma.size() != mb.size()) return ma.size() < mb.size();
      if (mem_a != mem_b) return mem_a < mem_b;
      return a < b;
    });

    for (int victim : order) {
      const auto members = node_members(victim);
      const int still_active = res.active_workers();
      if (still_active - static_cast<int>(members.size()) <
          target_num_workers) {
        continue;  // vacating this node would undershoot the floor
      }
      // Trial placement: pour each member into the fullest fitting survivor
      // on another node; all-or-nothing.
      std::vector<double> trial_mem = mem_usage;
      std::vector<std::pair<int, int>> moves;  // (src, dst)
      bool fits = true;
      for (int src : members) {
        int best_dst = -1;
        for (std::size_t w = 0; w < node_of.size(); ++w) {
          const int dst = static_cast<int>(w);
          if (!res.active[w] || node_of[w] == victim) continue;
          if (trial_mem[w] + trial_mem[static_cast<std::size_t>(src)] >=
              max_mem) {
            continue;
          }
          if (best_dst < 0 ||
              trial_mem[w] > trial_mem[static_cast<std::size_t>(best_dst)]) {
            best_dst = dst;
          }
        }
        if (best_dst < 0) {
          fits = false;
          break;
        }
        trial_mem[static_cast<std::size_t>(best_dst)] +=
            trial_mem[static_cast<std::size_t>(src)];
        trial_mem[static_cast<std::size_t>(src)] = 0.0;
        moves.emplace_back(src, best_dst);
      }
      if (!fits) continue;
      // Commit.
      for (const auto& [src, dst] : moves) {
        const auto isrc = static_cast<std::size_t>(src);
        const auto idst = static_cast<std::size_t>(dst);
        res.active[isrc] = false;
        for (std::size_t lyr = 0; lyr < num_layers[isrc]; ++lyr) {
          res.transfers.push_back(Transfer{src, dst, lyr});
        }
        mem_usage[idst] += mem_usage[isrc];
        mem_usage[isrc] = 0.0;
        num_layers[idst] += num_layers[isrc];
        num_layers[isrc] = 0;
      }
      ++res.nodes_freed;
      progressed = true;
      break;  // re-rank nodes after every vacation
    }
  }
  res.mem_usage = std::move(mem_usage);
  res.num_layers = std::move(num_layers);
  return res;
}

ContiguousRepackResult repack_contiguous(const ContiguousRepackRequest& req,
                                         int num_workers,
                                         const cluster::Deployment& deployment) {
  const auto node_of =
      worker_nodes(deployment, static_cast<std::size_t>(num_workers));
  ContiguousRepackResult res = repack_contiguous(req, num_workers);

  const auto count_freed = [&](int active) {
    // A node is newly freed when it hosts workers only in [active,
    // num_workers) — workers at or beyond num_workers were free already.
    int freed = 0;
    std::vector<int> nodes(node_of.begin(), node_of.end());
    std::sort(nodes.begin(), nodes.end());
    nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
    for (int n : nodes) {
      bool any_released = false;
      bool any_kept = false;
      for (int w = 0; w < num_workers; ++w) {
        if (node_of[static_cast<std::size_t>(w)] != n) continue;
        (w >= active ? any_released : any_kept) = true;
      }
      if (any_released && !any_kept) ++freed;
    }
    return freed;
  };

  // An explicit target is a contract (forced Fig-4 sweeps): deliver it
  // exactly; snapping only applies when the packer chose the count.
  if (!res.feasible || res.active_workers >= num_workers ||
      req.target_workers > 0) {
    res.whole_nodes_freed = count_freed(res.active_workers);
    return res;
  }

  // Snap the survivor count up to the next node boundary (the first worker
  // of each node's contiguous run), provided a whole node is still freed.
  int snapped = res.active_workers;
  while (snapped < num_workers &&
         node_of[static_cast<std::size_t>(snapped)] ==
             node_of[static_cast<std::size_t>(snapped - 1)]) {
    ++snapped;
  }
  if (snapped != res.active_workers && count_freed(snapped) > 0) {
    ContiguousRepackRequest spread = req;
    spread.target_workers = snapped;
    res = repack_contiguous(spread, num_workers);
  }
  res.whole_nodes_freed = count_freed(res.active_workers);
  return res;
}

}  // namespace dynmo::repack
