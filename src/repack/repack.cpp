#include "repack/repack.hpp"

#include <algorithm>
#include <numeric>

#include "core/error.hpp"

namespace dynmo::repack {

int FirstFitResult::active_workers() const {
  return static_cast<int>(std::count(active.begin(), active.end(), true));
}

FirstFitResult repack_first_fit(std::vector<double> mem_usage,
                                std::vector<std::size_t> num_layers,
                                double max_mem, int target_num_workers) {
  DYNMO_CHECK(mem_usage.size() == num_layers.size(),
              "mem_usage/num_layers size mismatch");
  DYNMO_CHECK(max_mem > 0.0, "max_mem must be positive");
  const int n = static_cast<int>(mem_usage.size());

  FirstFitResult res;
  res.active.assign(mem_usage.size(), true);

  // Paper Algorithm 2, lines 2–14.  (The paper's listing marks `src` as the
  // worker being emptied; transfers carry its layers to `dst`.)
  for (int src = 0; src < n; ++src) {
    for (int dst = src + 1; dst < n; ++dst) {
      const auto isrc = static_cast<std::size_t>(src);
      const auto idst = static_cast<std::size_t>(dst);
      if (!res.active[isrc] || !res.active[idst]) continue;
      const int still_active =
          static_cast<int>(std::count(res.active.begin(), res.active.end(), true));
      if (mem_usage[isrc] + mem_usage[idst] < max_mem &&
          still_active > target_num_workers) {
        res.active[isrc] = false;
        for (std::size_t lyr = 0; lyr < num_layers[isrc]; ++lyr) {
          res.transfers.push_back(Transfer{src, dst, lyr});
        }
        mem_usage[idst] += mem_usage[isrc];
        mem_usage[isrc] = 0.0;
        num_layers[idst] += num_layers[isrc];
        num_layers[isrc] = 0;
        break;  // src is empty; move on to the next src
      }
    }
  }
  res.mem_usage = std::move(mem_usage);
  res.num_layers = std::move(num_layers);
  return res;
}

ContiguousRepackResult repack_contiguous(const ContiguousRepackRequest& req,
                                         int num_workers) {
  DYNMO_CHECK(num_workers > 0, "need at least one worker");
  DYNMO_CHECK(req.mem_capacity > 0.0, "repack needs a memory capacity");
  DYNMO_CHECK(req.fill_fraction > 0.0 && req.fill_fraction <= 1.0,
              "fill fraction must be in (0,1]");

  const double budget = req.mem_capacity * req.fill_fraction;
  const std::span<const double> mem(req.memory_bytes);

  ContiguousRepackResult out;
  std::vector<std::size_t> boundaries;
  boundaries.push_back(0);
  double acc = 0.0;
  for (std::size_t l = 0; l < mem.size(); ++l) {
    const bool stage_empty = boundaries.back() == l;
    if (!stage_empty && acc + mem[l] > budget) {
      boundaries.push_back(l);
      acc = 0.0;
    }
    if (mem[l] > budget) {
      // A single layer over budget can never fit a worker: flag the result
      // (the caller falls back to not repacking).
      out.feasible = false;
    }
    acc += mem[l];
  }
  boundaries.push_back(mem.size());

  int used = static_cast<int>(boundaries.size()) - 1;
  if (used > num_workers) {
    out.feasible = false;
    used = num_workers;  // truncated map below is only advisory
    boundaries.resize(static_cast<std::size_t>(num_workers));
    boundaries.push_back(mem.size());
  }

  // Honor an explicit worker count.  Spreading out (target > memory
  // minimum) is always legal — it only lowers per-worker memory.  Packing
  // tighter than the memory minimum is an OOM (Fig. 4's empty cells).
  if (req.target_workers > 0 && req.target_workers <= num_workers) {
    if (used < req.target_workers) {
      const auto spread =
          pipeline::StageMap::uniform(mem.size(), req.target_workers);
      boundaries.assign(spread.boundaries().begin(),
                        spread.boundaries().end());
      used = req.target_workers;
    } else if (used > req.target_workers) {
      out.feasible = false;
    }
  }

  while (static_cast<int>(boundaries.size()) - 1 < num_workers) {
    boundaries.push_back(mem.size());
  }
  out.map = pipeline::StageMap::from_boundaries(std::move(boundaries));
  out.active_workers = used;
  return out;
}

}  // namespace dynmo::repack
