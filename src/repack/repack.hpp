// Workload re-packing (paper §3.4, Algorithm 2).
//
// When dynamism shrinks the total workload (pruning, freezing, early exit),
// DynMo consolidates layers onto fewer workers — subject to memory capacity
// — and releases the freed GPUs to the job manager.  Two entry points:
//
//  * repack_first_fit(): the paper's Algorithm 2 verbatim, operating on
//    per-worker memory totals and emitting (src, dst, layer) transfers.
//  * repack_contiguous(): the pipeline-aware variant the runtime uses — it
//    produces a new contiguous StageMap over the surviving workers (pipeline
//    stages must stay contiguous in model order), leaving released trailing
//    workers with empty stages.
#pragma once

#include <span>
#include <vector>

#include "pipeline/stage_map.hpp"

namespace dynmo::repack {

struct Transfer {
  int src_worker = 0;
  int dst_worker = 0;
  std::size_t layer_index = 0;  ///< index local to src_worker
};

struct FirstFitResult {
  std::vector<Transfer> transfers;
  std::vector<bool> active;          ///< per-worker, after consolidation
  std::vector<double> mem_usage;     ///< per-worker, after consolidation
  std::vector<std::size_t> num_layers;  ///< per-worker, after consolidation
  int active_workers() const;
};

/// Algorithm 2: iterate worker pairs (src, dst>src); when their combined
/// memory fits under `max_mem` and more than `target_num_workers` are still
/// active, migrate all of src's layers to dst and deactivate src.
FirstFitResult repack_first_fit(std::vector<double> mem_usage,
                                std::vector<std::size_t> num_layers,
                                double max_mem, int target_num_workers);

struct ContiguousRepackRequest {
  std::vector<double> memory_bytes;  ///< per layer
  double mem_capacity = 0.0;         ///< per worker (MAX_MEM); must be > 0
  int target_workers = 0;            ///< 0 → as few as capacity allows
  /// Fraction of capacity the packer may fill (headroom for activation
  /// spikes); default matches leaving ~10% free.
  double fill_fraction = 0.9;
};

struct ContiguousRepackResult {
  pipeline::StageMap map;   ///< same stage count; trailing stages empty
  int active_workers = 0;
  bool feasible = true;     ///< false if even all workers cannot hold it
};

/// Pack layers (in model order) into the fewest prefix workers whose memory
/// stays within capacity*fill_fraction; remaining stages are empty and their
/// workers can be released.  If `target_workers` > 0, stop consolidating at
/// that many workers even if fewer would fit.
ContiguousRepackResult repack_contiguous(const ContiguousRepackRequest& req,
                                         int num_workers);

}  // namespace dynmo::repack
