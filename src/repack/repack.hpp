// Workload re-packing (paper §3.4, Algorithm 2).
//
// When dynamism shrinks the total workload (pruning, freezing, early exit),
// DynMo consolidates layers onto fewer workers — subject to memory capacity
// — and releases the freed GPUs to the job manager.  Two entry points:
//
//  * repack_first_fit(): the paper's Algorithm 2 verbatim, operating on
//    per-worker memory totals and emitting (src, dst, layer) transfers.
//  * repack_contiguous(): the pipeline-aware variant the runtime uses — it
//    produces a new contiguous StageMap over the surviving workers (pipeline
//    stages must stay contiguous in model order), leaving released trailing
//    workers with empty stages.
//
// Both entry points have a cluster::Deployment-aware overload that prefers
// vacating *whole nodes*: a fully emptied node can be handed back to the
// job manager as a schedulable unit, and the survivors stay NVLink-adjacent
// instead of straddling a half-empty node.
#pragma once

#include <span>
#include <vector>

#include "cluster/deployment.hpp"
#include "pipeline/stage_map.hpp"

namespace dynmo::repack {

struct Transfer {
  int src_worker = 0;
  int dst_worker = 0;
  std::size_t layer_index = 0;  ///< index local to src_worker
};

struct FirstFitResult {
  std::vector<Transfer> transfers;
  std::vector<bool> active;          ///< per-worker, after consolidation
  std::vector<double> mem_usage;     ///< per-worker, after consolidation
  std::vector<std::size_t> num_layers;  ///< per-worker, after consolidation
  int nodes_freed = 0;  ///< whole nodes emptied (deployment overload only)
  int active_workers() const;
};

/// Algorithm 2: iterate worker pairs (src, dst>src); when their combined
/// memory fits under `max_mem` and more than `target_num_workers` are still
/// active, migrate all of src's layers to dst and deactivate src.
FirstFitResult repack_first_fit(std::vector<double> mem_usage,
                                std::vector<std::size_t> num_layers,
                                double max_mem, int target_num_workers);

/// Node-aware Algorithm 2: worker w is deployment stage w.  Nodes are
/// vacated atomically, easiest (fewest active workers, least memory)
/// first; a node moves only if *all* of its workers fit onto survivors on
/// other nodes, with each source poured into the fullest fitting survivor
/// so light nodes drain into heavy ones.  Partial vacations are not
/// attempted — a half-empty node frees no schedulable unit.
FirstFitResult repack_first_fit(std::vector<double> mem_usage,
                                std::vector<std::size_t> num_layers,
                                double max_mem, int target_num_workers,
                                const cluster::Deployment& deployment);

struct ContiguousRepackRequest {
  std::vector<double> memory_bytes;  ///< per layer
  double mem_capacity = 0.0;         ///< per worker (MAX_MEM); must be > 0
  int target_workers = 0;            ///< 0 → as few as capacity allows
  /// Fraction of capacity the packer may fill (headroom for activation
  /// spikes); default matches leaving ~10% free.
  double fill_fraction = 0.9;
};

struct ContiguousRepackResult {
  pipeline::StageMap map;   ///< same stage count; trailing stages empty
  int active_workers = 0;
  bool feasible = true;     ///< false if even all workers cannot hold it
  int whole_nodes_freed = 0;  ///< deployment overload: nodes fully vacated
};

/// Pack layers (in model order) into the fewest prefix workers whose memory
/// stays within capacity*fill_fraction; remaining stages are empty and their
/// workers can be released.  If `target_workers` > 0, stop consolidating at
/// that many workers even if fewer would fit.
ContiguousRepackResult repack_contiguous(const ContiguousRepackRequest& req,
                                         int num_workers);

/// Node-aware variant: worker w is deployment stage w (stages hosted by one
/// node are contiguous under cluster placements).  When the packer chooses
/// the survivor count (`target_workers` <= 0), it is snapped *up* to the
/// deployment's next node boundary whenever the release still frees at
/// least one whole node — keeping a node's tail workers busy costs a few
/// GPUs but turns the release into whole schedulable nodes; when no whole
/// node can be freed the memory-minimal pack is kept as-is (a partial
/// release beats none).  An explicit `target_workers` is honored exactly.
ContiguousRepackResult repack_contiguous(const ContiguousRepackRequest& req,
                                         int num_workers,
                                         const cluster::Deployment& deployment);

}  // namespace dynmo::repack
