// Elastic resource management (paper §3.4.2).
//
// After re-packing, released GPUs must (a) be fenced off from the training
// communicator — done with a communicator split, the ncclCommSplit()
// analogue — and (b) be returned to the cluster manager.  The paper
// integrates with ECK (Elastic Cloud on Kubernetes) by PATCHing the pod
// spec's resource requests/limits; JobManagerClient reproduces that
// handshake against a ControlPlane — an in-process mock API server
// (MockEckCluster) or the multi-tenant fleet::Arbiter (docs/FLEET.md) —
// so the full release state machine is exercised either way.
#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "comm/communicator.hpp"

namespace dynmo::repack {

/// One PATCH request as the Kubernetes API server would see it.
struct PatchRequest {
  std::string pod;
  int gpus_requested = 0;  ///< new resources.requests["nvidia.com/gpu"]
  int gpus_limit = 0;      ///< new resources.limits["nvidia.com/gpu"]
};

/// The GPU control plane a job PATCHes its claim against.  Implementations:
/// MockEckCluster (below, the degenerate trust-every-baseline backend) and
/// fleet::Arbiter (priorities + fairness + preemption across N jobs).
///
/// Contract every implementation must keep:
///   - `patch_pod` returns an HTTP-ish status: 200 granted, 409 conflict
///     (the grow lost a race or was denied by policy — the claimant stays
///     on its current footprint), 422 malformed.
///   - The first PATCH a pod issues establishes its baseline claim;
///     admission control for baselines is the control plane's business.
///   - Shrinking PATCHes always succeed (releasing capacity is never
///     refused); the released GPUs become visible through `free_gpus()`.
///   - Grants are atomic: concurrent grow claims can never sum past the
///     capacity that was actually free.
class ControlPlane {
 public:
  virtual ~ControlPlane() = default;

  /// Handle a PATCH; returns HTTP-ish status code (200 on success).
  virtual int patch_pod(const PatchRequest& req) = 0;

  /// GPUs not currently claimed by any pod (schedulable capacity).
  virtual int free_gpus() const = 0;

  virtual int total_gpus() const = 0;
};

/// In-process stand-in for the ECK-managed Kubernetes control plane.
/// Tracks one claim per pod name; freed GPUs become schedulable for
/// "pending jobs" (a counter here).  Baseline claims (a pod's first PATCH)
/// are trusted unconditionally — admission is the scheduler's job, and
/// this mock has none; the fleet::Arbiter is the backend that does.
class MockEckCluster : public ControlPlane {
 public:
  explicit MockEckCluster(int total_gpus) : free_gpus_(0),
                                            total_gpus_(total_gpus) {}

  int patch_pod(const PatchRequest& req) override;

  int free_gpus() const override;
  int total_gpus() const override { return total_gpus_; }
  const std::vector<PatchRequest>& patches() const { return patches_; }

  /// A pending job grabs up to n GPUs; returns how many it got.
  int schedule_pending_job(int wanted);

 private:
  mutable std::mutex mu_;
  std::vector<PatchRequest> patches_;
  std::map<std::string, int> allocated_;  ///< current claim per pod
  int free_gpus_;
  int total_gpus_;
};

class JobManagerClient {
 public:
  JobManagerClient(ControlPlane* cluster, std::string pod_name,
                   int initial_gpus);

  /// Resize this pod's GPU claim to `gpus`, in either direction: released
  /// GPUs go back to the cluster queue, a grow claims from it (the API
  /// server rejects a PATCH past what is free — another pending job may
  /// have scheduled onto the capacity first).  Returns false if the PATCH
  /// was rejected.
  bool resize_gpu_claim(int gpus);

  int claimed_gpus() const { return claimed_; }
  const std::string& pod() const { return pod_; }

 private:
  ControlPlane* cluster_;
  std::string pod_;
  int claimed_;
};

/// Outcome of fencing released workers off the training communicator.
struct SplitOutcome {
  std::optional<comm::Communicator> active;  ///< set iff this rank stays
  bool released = false;
};

/// Every rank of `comm` calls this with the post-repack active mask
/// (indexed by current rank).  Active ranks get the new, smaller
/// communicator (rank order preserved); released ranks get released=true
/// and no communicator — exactly ncclCommSplit with NOCOLOR.
SplitOutcome split_active_workers(const comm::Communicator& comm,
                                  const std::vector<bool>& active_mask);

}  // namespace dynmo::repack
