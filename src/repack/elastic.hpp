// Elastic resource management (paper §3.4.2).
//
// After re-packing, released GPUs must (a) be fenced off from the training
// communicator — done with a communicator split, the ncclCommSplit()
// analogue — and (b) be returned to the cluster manager.  The paper
// integrates with ECK (Elastic Cloud on Kubernetes) by PATCHing the pod
// spec's resource requests/limits; JobManagerClient reproduces that
// handshake against an in-process mock API server so the full release state
// machine is exercised.
#pragma once

#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "comm/communicator.hpp"

namespace dynmo::repack {

/// One PATCH request as the Kubernetes API server would see it.
struct PatchRequest {
  std::string pod;
  int gpus_requested = 0;  ///< new resources.requests["nvidia.com/gpu"]
  int gpus_limit = 0;      ///< new resources.limits["nvidia.com/gpu"]
};

/// In-process stand-in for the ECK-managed Kubernetes control plane.
/// Freed GPUs become schedulable for "pending jobs" (a counter here).
class MockEckCluster {
 public:
  explicit MockEckCluster(int total_gpus) : free_gpus_(0),
                                            total_gpus_(total_gpus) {}

  /// Handle a PATCH; returns HTTP-ish status code (200 on success).
  int patch_pod(const PatchRequest& req);

  int free_gpus() const;
  int total_gpus() const { return total_gpus_; }
  const std::vector<PatchRequest>& patches() const { return patches_; }

  /// A pending job grabs up to n GPUs; returns how many it got.
  int schedule_pending_job(int wanted);

 private:
  mutable std::mutex mu_;
  std::vector<PatchRequest> patches_;
  int allocated_ = 0;  ///< GPUs currently claimed by our training pod
  int free_gpus_;
  int total_gpus_;
  bool saw_first_patch_ = false;
};

class JobManagerClient {
 public:
  JobManagerClient(MockEckCluster* cluster, std::string pod_name,
                   int initial_gpus);

  /// Resize this pod's GPU claim to `gpus`, in either direction: released
  /// GPUs go back to the cluster queue, a grow claims from it (the API
  /// server rejects a PATCH past what is free — another pending job may
  /// have scheduled onto the capacity first).  Returns false if the PATCH
  /// was rejected.
  bool resize_gpu_claim(int gpus);

  int claimed_gpus() const { return claimed_; }

 private:
  MockEckCluster* cluster_;
  std::string pod_;
  int claimed_;
};

/// Outcome of fencing released workers off the training communicator.
struct SplitOutcome {
  std::optional<comm::Communicator> active;  ///< set iff this rank stays
  bool released = false;
};

/// Every rank of `comm` calls this with the post-repack active mask
/// (indexed by current rank).  Active ranks get the new, smaller
/// communicator (rank order preserved); released ranks get released=true
/// and no communicator — exactly ncclCommSplit with NOCOLOR.
SplitOutcome split_active_workers(const comm::Communicator& comm,
                                  const std::vector<bool>& active_mask);

}  // namespace dynmo::repack
