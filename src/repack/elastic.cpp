#include "repack/elastic.hpp"

#include <algorithm>

#include "core/error.hpp"
#include "core/log.hpp"

namespace dynmo::repack {

int MockEckCluster::patch_pod(const PatchRequest& req) {
  std::scoped_lock lock(mu_);
  if (req.gpus_requested < 0 || req.gpus_requested != req.gpus_limit) {
    return 422;  // unprocessable: requests/limits must agree for GPUs
  }
  auto it = allocated_.find(req.pod);
  if (it == allocated_.end()) {
    // First PATCH establishes this pod's baseline claim (admission is the
    // scheduler's job — see the class comment).
    allocated_.emplace(req.pod, req.gpus_requested);
    patches_.push_back(req);
    return 200;
  }
  // Resizes are priced as a per-pod delta under the lock, so concurrent
  // grow claims from different pods can never sum past what is free.
  if (req.gpus_requested > it->second + free_gpus_) {
    return 409;  // conflict: cannot grow beyond what's free
  }
  const int delta = it->second - req.gpus_requested;
  it->second = req.gpus_requested;
  free_gpus_ += delta;
  patches_.push_back(req);
  DYNMO_LOG(Info) << "ECK: pod " << req.pod << " resized to "
                  << req.gpus_requested << " GPUs; " << free_gpus_
                  << " free for pending jobs";
  return 200;
}

int MockEckCluster::free_gpus() const {
  std::scoped_lock lock(mu_);
  return free_gpus_;
}

int MockEckCluster::schedule_pending_job(int wanted) {
  std::scoped_lock lock(mu_);
  const int granted = std::min(wanted, free_gpus_);
  free_gpus_ -= granted;
  return granted;
}

JobManagerClient::JobManagerClient(ControlPlane* cluster,
                                   std::string pod_name, int initial_gpus)
    : cluster_(cluster), pod_(std::move(pod_name)), claimed_(initial_gpus) {
  DYNMO_CHECK(cluster_ != nullptr, "null cluster");
  PatchRequest req{pod_, initial_gpus, initial_gpus};
  const int status = cluster_->patch_pod(req);
  DYNMO_CHECK(status == 200, "initial GPU claim rejected: " << status);
}

bool JobManagerClient::resize_gpu_claim(int gpus) {
  PatchRequest req{pod_, gpus, gpus};
  const int status = cluster_->patch_pod(req);
  if (status != 200) {
    DYNMO_LOG(Warn) << "PATCH rejected with status " << status;
    return false;
  }
  claimed_ = gpus;
  return true;
}

SplitOutcome split_active_workers(const comm::Communicator& comm,
                                  const std::vector<bool>& active_mask) {
  DYNMO_CHECK(static_cast<int>(active_mask.size()) == comm.size(),
              "active mask size " << active_mask.size()
                                  << " != communicator size " << comm.size());
  const bool mine = active_mask[static_cast<std::size_t>(comm.rank())];
  SplitOutcome out;
  // color 0 for survivors, NOCOLOR (<0) for released ranks; key preserves
  // the pipeline stage order.
  out.active = comm.split(mine ? 0 : -1, comm.rank());
  out.released = !mine;
  return out;
}

}  // namespace dynmo::repack
