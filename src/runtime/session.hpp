// End-to-end training session on the simulated cluster clock.
//
// Implements the paper's Figure-2 loop: train → dynamism → profile →
// balance → (optionally) re-pack → train, over hybrid data + pipeline
// parallelism.  The session charges every cost through the calibrated
// hardware models (kernel roofline, alpha-beta network, memory) and
// *measures* bubbles and idleness from the simulated pipeline timeline.
//
// Baseline modes reproduce the paper's comparators:
//   StaticUniform — Megatron-LM: equal layer counts per stage, fixed.
//   StaticParam   — DeepSpeed: equal parameter counts per stage, fixed.
//   Egeria        — freezing-specific: static map + Egeria's own per-check
//                   reference-model overhead (grows with depth).
//   Tutel         — MoE-specific: adaptive expert parallelism that removes
//                   part of the routing imbalance but never moves layers.
//   DynMo         — the real thing: Partition or Diffusion, by time or by
//                   params, optional re-packing.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "balance/rebalancer.hpp"
#include "cluster/deployment.hpp"
#include "fault/plan.hpp"
#include "cluster/hier_balancer.hpp"
#include "cluster/topology.hpp"
#include "comm/cost_model.hpp"
#include "dynamic/dynamism.hpp"
#include "hw/gpu_spec.hpp"
#include "model/layer_cost.hpp"
#include "pipeline/cost_builder.hpp"
#include "pipeline/schedule.hpp"
#include "pipeline/stage_map.hpp"
#include "repack/repack.hpp"
#include "runtime/elastic.hpp"
#include "telemetry/trace_writer.hpp"

namespace dynmo::runtime {

enum class BalancingMode {
  StaticUniform,
  StaticParam,
  Egeria,
  Tutel,
  DynMo,
};

const char* to_string(BalancingMode m);

struct SessionConfig {
  int pipeline_stages = 8;
  int data_parallel = 1;
  std::size_t micro_batch = 2;
  int num_microbatches = 4;
  pipeline::ScheduleKind schedule = pipeline::ScheduleKind::ZbH1;
  /// Reference GPU for synthetic (deployment-less) runs.  With a
  /// deployment, every stage is priced on the GPU actually hosting it and
  /// this field is ignored.
  hw::GpuSpec gpu = hw::GpuSpec::h100_sxm5();
  comm::CostModelConfig net{};
  /// Where the training run actually lives: topology + DP×PP grid
  /// placement + per-rank hardware, consumed by every cost surface —
  /// boundary activation sends and layer migrations are priced over the
  /// links the hosting ranks share, per-stage compute on each stage's own
  /// GPU, balancing is capacity-weighted, re-packing prefers vacating
  /// whole nodes, and the deployment's node membership drives hierarchical
  /// collective pricing.  The deployment must cover exactly
  /// `pipeline_stages` stages; a grid deployment
  /// (Deployment::data_parallel() > 1) must also match `data_parallel`,
  /// and then each stage's gradient allreduce is priced over its actual
  /// DP peer group (Deployment::dp_group) while layer migrations are
  /// mirrored across every replica.  A dp = 1 deployment with
  /// `data_parallel` > 1 prices the DP exchange synthetically (replicas
  /// tiled over `net.gpus_per_node`-sized nodes), as do deployment-less
  /// runs (stage s is rank s, `gpu` everywhere, `net`'s flat two-tier
  /// rule).
  std::optional<cluster::Deployment> deployment;

  BalancingMode mode = BalancingMode::DynMo;
  balance::Algorithm algorithm = balance::Algorithm::Diffusion;
  balance::BalanceBy balance_by = balance::BalanceBy::Time;
  /// 0 → the engine's recommended cadence.
  std::int64_t rebalance_interval = 0;
  /// Bottleneck hysteresis: keep the current map unless a candidate
  /// improves the capacity-normalized projected bottleneck by at least
  /// this fraction (balance::RebalanceConfig::min_bottleneck_gain).
  double min_bottleneck_gain = 0.02;
  /// Payoff-window map acceptance (docs/COST_MODEL.md): a candidate
  /// placement must recoup its exposed migration cost — priced over the
  /// deployment's links, mirrored across all DP replicas, discounted by
  /// `migration_overlap` at every-iteration cadences — within this many
  /// iterations of projected bottleneck gain, or the rebalance keeps the
  /// current map (counted in SessionResult::maps_rejected_payoff, the
  /// avoided traffic in migration_bytes_avoided).  The same window gates
  /// re-packing: a pack must free enough GPU-time within the window to
  /// cover the transfer stall.  0 → bottleneck-only hysteresis (the
  /// pre-payoff behavior).
  double payoff_window_iters = 0.0;
  /// Route rebalance decisions through the incremental cost surface
  /// (balance::RebalanceConfig::incremental): cached per-stage terms plus
  /// an indexed max replace the O(stages) rescans at each decision point.
  /// Contract: decisions, bottlenecks, priced costs and telemetry are
  /// bit-identical either way (tests/test_incremental_cost.cpp proves it),
  /// so this is a pure performance switch and is deliberately *not*
  /// recorded in the telemetry catalog — traces from both paths must stay
  /// byte-equal (tools/check_golden_trace.sh gates it).
  bool incremental_decisions = true;
  /// Two-level balancer knobs for Algorithm::HierarchicalDiffusion.  When
  /// its payoff fields are left at their defaults, the session fills them
  /// in from `payoff_window_iters` (time balancing only — the hier gain is
  /// in weight units) and multiplies the cost by `data_parallel`.
  cluster::HierConfig hier{};

  bool repack = false;
  /// ThroughputPreserving — release only workers whose load fits into the
  ///   remaining ones without raising the current bottleneck (paper §3.4's
  ///   "without sacrificing training throughput"; used in Fig. 3).
  /// MemoryFirstFit — the paper's Algorithm 2: consolidate as far as memory
  ///   capacity allows, accepting slower iterations (Fig. 4 sweeps).
  enum class RepackPolicy { ThroughputPreserving, MemoryFirstFit };
  RepackPolicy repack_policy = RepackPolicy::ThroughputPreserving;
  /// 0 → policy decides; otherwise pack to exactly this many workers
  /// (Fig. 4 sweeps 8/6/4/2).
  int repack_target_workers = 0;
  std::int64_t repack_interval = 1000;

  /// Elastic lifecycle (docs/RUNTIME.md): with `elastic.enabled`, a
  /// runtime::ElasticController decides shrink / hold / expand against the
  /// (mock) ECK control plane at every `elastic.interval` that lands on a
  /// rebalance point, and the session executes the transition as a
  /// checkpoint-coordinated restart — serialize a Checkpoint, re-pack /
  /// reshard the stage map onto the new worker count, charge the modeled
  /// restart stall (checkpoint write + communicator re-creation + shard
  /// reload, docs/COST_MODEL.md "Restart-stall pricing"), and resume.
  /// Unlike `repack`, the footprint can also *grow* back when freed
  /// capacity reappears and the projected bottleneck gain passes the
  /// migration payoff rule.  Mutually exclusive with `repack` (the elastic
  /// path subsumes it); `elastic.payoff_window_iters <= 0` inherits
  /// `payoff_window_iters`.
  ElasticConfig elastic{};

  /// Workers the session actually *starts* on; 0 → `pipeline_stages`.
  /// A fleet job admitted below its ceiling begins on a packed map over
  /// this many workers and grows into capacity other jobs free through the
  /// normal elastic expand path — so a value below `pipeline_stages`
  /// requires `elastic.enabled` (and the controller's baseline claim is
  /// this count, not the ceiling).  The cost surfaces stay sized to
  /// `pipeline_stages`, exactly as after a voluntary shrink.
  int initial_active_workers = 0;

  std::int64_t iterations = 1000;
  /// Simulate every `sim_stride`-th iteration and extrapolate (the paper's
  /// 10k-iteration runs are steady-state; stride must divide the dynamism
  /// cadence to not skip dynamism points).
  std::int64_t sim_stride = 1;

  /// Fraction of the DP gradient allreduce hidden under backward compute.
  double dp_overlap = 0.7;

  /// Fraction of layer-migration time hidden under backward compute when
  /// rebalancing every iteration (the paper couples migration with the
  /// gradient flow, §3.3.1 / §4.2.1); infrequent rebalances (pruning,
  /// freezing) run migrations in the open but are rare enough not to
  /// matter.
  double migration_overlap = 0.85;

  std::uint64_t seed = 0x5eed;

  /// Fault & straggler injection (docs/FAULT.md).  A non-empty plan is
  /// compiled by a fault::Injector on an Rng::fork()'d substream — the
  /// event schedule is a pure function of (plan, seed, initial workers)
  /// and never perturbs the session's measurement-noise stream.  Worker
  /// losses are recovered as an involuntary checkpoint-coordinated shrink
  /// onto the surviving prefix, priced as the restart stall *plus the
  /// work lost since the last checkpoint* — so they require
  /// `elastic.enabled` (the release PATCHes the control plane like any
  /// shrink).  Stragglers degrade the affected stage's capacity at
  /// rebalance points (the balancers route around them) and stretch its
  /// simulated compute for as long as the window lasts; they work in any
  /// mode.  A loss the survivors cannot absorb (below elastic.min_workers
  /// or memory-infeasible) fails the run: done() turns true and
  /// SessionResult::failed is set.
  fault::FaultPlan fault{};
  /// Periodic checkpoint cadence in iterations (0 → no periodic
  /// checkpoints; a worker loss then rolls back to the last restart, or to
  /// iteration 0).  Each checkpoint charges the busiest shard's write at
  /// `elastic.checkpoint_bw` into the clock (docs/COST_MODEL.md
  /// "Checkpoint-cadence pricing") — the knob bench_fault sweeps against
  /// MTBF for the classic sqrt-of-MTBF optimum.  Must be a multiple of
  /// sim_stride.
  std::int64_t checkpoint_interval_iters = 0;

  /// Structured trace emission (docs/TELEMETRY.md): set `telemetry.dir` to
  /// stream every simulated iteration's per-stage loads, every rebalance
  /// decision, every migration, and every elastic transition to a queryable
  /// trace directory (catalog.json + one JSONL file per table).  Default —
  /// an empty dir — disables emission entirely and costs nothing: the
  /// session takes the exact same decisions with and without a trace
  /// attached (the simulated clock never sees the writer).
  telemetry::TelemetryConfig telemetry{};
};

struct IterationSample {
  std::int64_t iter = 0;
  double time_s = 0.0;
  double idleness = 0.0;
  double bubble_ratio = 0.0;
  int active_workers = 0;
  double compute_fraction = 1.0;
  /// A rebalance point fired at this iteration (the map may still be
  /// unchanged — see the decision counters for what happened to it).
  bool rebalanced = false;
  /// One-off stall charged at this iteration on top of `time_s`:
  /// rebalance/migration overhead, re-pack transfers, restart stalls.
  double stall_s = 0.0;
};

struct SessionResult {
  double total_time_s = 0.0;
  double tokens_per_sec = 0.0;        ///< aggregate over DP replicas
  double avg_idleness = 0.0;          ///< paper Fig. 1 metric
  double avg_bubble_ratio = 0.0;
  double avg_active_workers = 0.0;    ///< paper Fig. 4 metric
  double peak_stage_memory = 0.0;
  bool oom = false;                   ///< some stage exceeded GPU memory
  int rebalance_count = 0;
  int repack_count = 0;
  /// Migration traffic split by node boundary (deployment runs only;
  /// mirrored over every DP replica on a grid deployment) — inter-node
  /// bytes are the expensive fabric traffic hierarchical balancing exists
  /// to minimize.
  double intra_node_migration_bytes = 0.0;
  double inter_node_migration_bytes = 0.0;
  /// Gradient-allreduce wire traffic over the whole run, split by node
  /// boundary (data_parallel > 1 only).  Grid deployments price each
  /// stage's DP peer group; DpInner orientations keep this traffic on
  /// intra-node links, PpInner pushes it across the fabric.
  double intra_node_dp_bytes = 0.0;
  double inter_node_dp_bytes = 0.0;
  /// Map-acceptance accounting: rebalance events whose candidate map was
  /// adopted with a non-empty migration, vs. rejected by the bottleneck
  /// hysteresis or the payoff window (re-packs the window refused count as
  /// payoff rejections too).  `migration_bytes_avoided` is the transfer
  /// traffic the rejections skipped, counted in *every* run — the
  /// acceptance rule needs no topology — and mirrored across all replicas
  /// of a grid deployment; the issued-byte counters above additionally
  /// need a deployment for the node-boundary classification and stay 0
  /// without one.
  int maps_accepted = 0;
  int maps_rejected_bottleneck = 0;
  int maps_rejected_payoff = 0;
  double migration_bytes_avoided = 0.0;
  /// Elastic lifecycle accounting (SessionConfig::elastic).  Restarts move
  /// no migration bytes — weights arrive via checkpoint reload — so their
  /// cost shows up here as stall seconds, not in the byte counters; payoff
  /// rejections of wanted transitions count in maps_rejected_payoff.
  int expands = 0;
  int shrinks = 0;
  /// Externally-initiated (fleet::Arbiter preemption) shrinks executed via
  /// request_shrink() — same checkpoint-coordinated path, counted apart
  /// from the voluntary `shrinks` the controller chose itself.
  int forced_shrinks = 0;
  /// Fault-injection accounting (SessionConfig::fault, docs/FAULT.md).
  /// Worker-loss recoveries charge into restart_stall_s like any other
  /// restart, with the lost-work share additionally broken out in
  /// lost_work_s; periodic checkpoint writes are *not* stall (they are the
  /// steady-state premium the cadence pays) and accumulate separately.
  int worker_losses = 0;
  int straggler_events = 0;  ///< onset + recovery events fired
  double lost_work_s = 0.0;  ///< re-done compute since the last checkpoint
  double checkpoint_write_s = 0.0;  ///< periodic checkpoint-write cost
  int checkpoints_written = 0;
  /// An unrecoverable worker loss ended the run early (survivors below
  /// elastic.min_workers or memory-infeasible); throughput metrics then
  /// cover the iterations actually completed.
  bool failed = false;
  double restart_stall_s = 0.0;       ///< total stall charged to the clock
  /// GPU-hours not spent versus never shrinking, over all DP replicas:
  /// Σ (initial_workers − active) · dp · dt.  Accumulated for elastic *and*
  /// plain re-pack runs.
  double gpu_hours_saved = 0.0;
  balance::OverheadBreakdown overhead;       ///< DynMo's own total overhead
  double baseline_overhead_s = 0.0;          ///< e.g. Egeria's bookkeeping
  double overhead_fraction = 0.0;            ///< overhead / total time
  pipeline::StageMap final_map;
  std::vector<IterationSample> samples;
};

/// Priced preview of an externally-initiated elastic transition: what a
/// checkpoint-coordinated restart onto `workers_after` would stall, and
/// the iteration time the session projects on each side.  The
/// fleet::Arbiter quotes both sides of a preemption with these before
/// forcing anything (docs/FLEET.md "Preemption pricing").
struct TransitionQuote {
  bool feasible = false;
  int workers_before = 0;
  int workers_after = 0;
  /// Modeled restart stall of the transition (docs/COST_MODEL.md
  /// "Restart-stall pricing").
  double restart_stall_s = 0.0;
  /// Projected iteration seconds on today's map (bottleneck stage times
  /// the microbatch count — wall-clock currency, not the balancers'
  /// per-microbatch one).
  double iter_s_before = 0.0;
  /// Projected iteration seconds on the balanced map at `workers_after`.
  double iter_s_after = 0.0;
};

class TrainingSession {
 public:
  /// `engine` may be null (fully static model, e.g. the dense-attention or
  /// no-early-exit baselines).  The session owns neither the model nor the
  /// engine.
  TrainingSession(const model::ModelDesc& model, SessionConfig cfg,
                  dynamic::DynamismEngine* engine);
  ~TrainingSession();

  SessionResult run();

  // --- stepping API ------------------------------------------------------
  // run() is exactly start(); while (!done()) step(); finish() — the fleet
  // arbiter (docs/FLEET.md) interleaves N sessions by driving each one a
  // sim_stride window at a time under its event clock, injecting
  // request_shrink() between windows when a preemption fires.

  /// Materialize the run state (initial map, rebalancer, controller —
  /// including the baseline GPU claim against `elastic.cluster`).
  void start();
  bool started() const { return run_ != nullptr; }
  bool done() const;
  /// Simulate the next sim_stride window; returns the wall-clock seconds
  /// it covered (iteration time × stride + one-off event stalls).
  double step();
  /// Finalize telemetry and aggregate the result; only valid once done().
  SessionResult finish();
  std::int64_t current_iter() const;
  /// Workers the session currently runs on (between start() and finish()).
  int active_workers() const;

  /// Queue an externally-initiated shrink to `target_workers`, executed at
  /// the start of the next step() as the same checkpoint-coordinated
  /// restart a voluntary shrink takes (serialize → re-pack → reshard →
  /// stall → polish rebalance); counted in SessionResult::forced_shrinks
  /// and traced as an elastic_transitions row with kind "preempt".
  /// Requires elastic.enabled; `target_workers` must respect
  /// elastic.min_workers; at or above the current footprint it is a no-op.
  void request_shrink(int target_workers);

  /// Price a shrink/expand to `target_workers` on the current state
  /// without executing anything (const — repeated quotes are free).
  TransitionQuote quote_shrink(int target_workers) const;
  TransitionQuote quote_expand(int target_workers) const;

  /// Tokens processed per iteration across all DP replicas.
  double tokens_per_iteration() const;

 private:
  struct DpAllreduceCost {
    double exposed_s = 0.0;    ///< slowest stage group, minus the overlap
    double intra_bytes = 0.0;  ///< wire bytes inside nodes, all stages
    double inter_bytes = 0.0;  ///< wire bytes across the fabric, all stages
  };

  std::int64_t effective_rebalance_interval() const;
  /// Per-iteration gradient allreduce: every stage's DP peer group runs
  /// concurrently, so the slowest group gates; bytes are summed over all
  /// stages.  Grid deployments use Deployment::dp_group(stage), everything
  /// else the synthetic replica tiling (groups precomputed in dp_groups_).
  DpAllreduceCost dp_allreduce_cost(
      const pipeline::StageMap& map,
      std::span<const model::LayerState> states) const;
  /// Synthetic DP peer group of a stage: replica pipelines tiled rank
  /// s → d * pipeline_stages + s over cfg.net.gpus_per_node-sized nodes.
  comm::RankGroup synthetic_dp_group(int stage) const;
  void apply_tutel_mitigation(std::span<model::LayerState> states) const;
  /// Device memory of the GPU hosting a stage (min across DP replicas on
  /// a grid; cfg.gpu when synthetic).
  double stage_mem_capacity(int stage) const;
  int resolved_initial_workers() const;
  balance::Rebalancer make_rebalancer(int stages) const;
  void emit_migration_rows(std::int64_t iter, const char* trigger,
                           const balance::MigrationPlan& plan);
  void record_migration_split(const balance::MigrationPlan& plan,
                              double scale);
  void account_outcome(const balance::RebalanceOutcome& outcome, double scale,
                       std::int64_t iter, const char* trigger);
  /// All rebalances (periodic, post-pack, post-restart) go through here:
  /// under telemetry.deterministic the measured decide_s is zeroed at the
  /// source, before it can leak into event_s/stall_s sums downstream.
  balance::RebalanceOutcome run_rebalance(const balance::LayerProfile& profile,
                                          const pipeline::StageMap& map);
  /// Execute a queued request_shrink() (no-op without one); stall and
  /// polish overhead are charged into the current step's accumulators.
  void execute_forced_shrink(double& event_time, double& iter_restart_stall);
  /// Recover from an injected loss of `victim`: involuntary shrink onto
  /// the surviving prefix, priced as restart stall + lost work since the
  /// last checkpoint.  Marks the run failed when the survivors cannot
  /// absorb the model.
  void execute_worker_loss(int victim, double& event_time,
                           double& iter_restart_stall);
  /// Refresh rb_cfg.capacities from the injector's straggler multipliers
  /// at `iter` (rebuilding the rebalancer only when the effective
  /// capacities changed).
  void refresh_capacities(std::int64_t iter);
  /// Busiest-shard periodic checkpoint write at elastic.checkpoint_bw.
  double checkpoint_write_seconds(const pipeline::StageMap& map,
                                  std::span<const double> state_bytes) const;

  const model::ModelDesc* model_;
  SessionConfig cfg_;
  dynamic::DynamismEngine* engine_;
  std::optional<cluster::Deployment> deployment_;
  model::StageCostModels stage_costs_;
  comm::CostModel net_;
  pipeline::CostBuilder builder_;
  /// Per-stage DP peer groups (data_parallel > 1 only) — the deployment
  /// and the synthetic tiling are both immutable, so the node grouping is
  /// computed once here, not per simulated iteration.
  std::vector<comm::RankGroup> dp_groups_;
  /// Live run state between start() and finish() (defined in session.cpp;
  /// run() keeps its exact pre-stepping behavior by looping over it).
  struct Run;
  std::unique_ptr<Run> run_;
};

}  // namespace dynmo::runtime
