#include "runtime/session.hpp"

#include <algorithm>
#include <cmath>

#include "balance/partition.hpp"
#include "cluster/hier_balancer.hpp"
#include "core/error.hpp"
#include "core/log.hpp"
#include "core/rng.hpp"
#include "core/stats.hpp"
#include "dynamic/freezing.hpp"
#include "fault/injector.hpp"
#include "runtime/checkpoint.hpp"

namespace dynmo::runtime {

namespace {

/// Validate the session's Deployment against the configured DP×PP shape.
std::optional<cluster::Deployment> resolve_deployment(
    const SessionConfig& cfg) {
  DYNMO_CHECK(cfg.pipeline_stages > 0, "need at least one stage");
  DYNMO_CHECK(cfg.data_parallel > 0, "need at least one DP replica");
  if (!cfg.deployment) return std::nullopt;
  DYNMO_CHECK(cfg.deployment->num_stages() == cfg.pipeline_stages,
              "deployment covers " << cfg.deployment->num_stages()
                                   << " stages, pipeline needs "
                                   << cfg.pipeline_stages);
  // A dp = 1 deployment under data_parallel > 1 is allowed (the DP
  // exchange falls back to the synthetic tiling); an actual grid must
  // match the session's DP width exactly.
  DYNMO_CHECK(cfg.deployment->data_parallel() == 1 ||
                  cfg.deployment->data_parallel() == cfg.data_parallel,
              "deployment grid has " << cfg.deployment->data_parallel()
                                     << " DP replicas, session runs "
                                     << cfg.data_parallel);
  return cfg.deployment;
}

/// Per-stage cost models: each stage priced on its own GPU, balancer
/// weights on the fastest stage GPU (capacities normalize against it).
model::StageCostModels make_stage_costs(
    const SessionConfig& cfg,
    const std::optional<cluster::Deployment>& dep) {
  if (!dep) return model::LayerCostModel(cfg.gpu);
  std::vector<hw::GpuSpec> gpus;
  gpus.reserve(static_cast<std::size_t>(dep->num_stages()));
  int fastest = 0;
  for (int s = 0; s < dep->num_stages(); ++s) {
    gpus.push_back(dep->gpu(s));
    if (dep->topology().relative_speed(dep->rank(s)) >
        dep->topology().relative_speed(dep->rank(fastest))) {
      fastest = s;
    }
  }
  return model::StageCostModels(
      model::LayerCostModel(gpus[static_cast<std::size_t>(fastest)]), gpus);
}

pipeline::CostBuilderConfig make_builder_config(
    const SessionConfig& cfg,
    const std::optional<cluster::Deployment>& dep) {
  pipeline::CostBuilderConfig bc;
  bc.micro_batch = cfg.micro_batch;
  bc.num_microbatches = cfg.num_microbatches;
  if (dep) {
    bc.stage_to_rank.assign(dep->stage_to_rank().begin(),
                            dep->stage_to_rank().end());
  }
  return bc;
}

}  // namespace

const char* to_string(BalancingMode m) {
  switch (m) {
    case BalancingMode::StaticUniform: return "static_megatron";
    case BalancingMode::StaticParam: return "static_deepspeed";
    case BalancingMode::Egeria: return "egeria";
    case BalancingMode::Tutel: return "tutel";
    case BalancingMode::DynMo: return "dynmo";
  }
  return "?";
}

/// Everything run() used to keep as loop locals, so the session can be
/// advanced one sim_stride window at a time (the fleet arbiter interleaves
/// N sessions this way).  run() loops over the same state, so a solo run
/// behaves exactly as before the stepping split.
struct TrainingSession::Run {
  std::vector<model::LayerState> states;
  pipeline::StageMap map;
  int active = 0;
  int initial_workers = 0;  ///< gpu_hours_saved baseline (W0)
  std::int64_t interval = 0;
  double mem_capacity = 0.0;
  double replica_mirror = 1.0;
  balance::RebalanceConfig rb_cfg;
  std::optional<balance::Rebalancer> rebalancer;
  std::optional<telemetry::TraceWriter> trace;
  std::optional<ElasticController> elastic;
  std::optional<fault::Injector> injector;
  /// Healthy per-stage capacities (S0-sized; empty → uniform) — the base
  /// straggler degradation multiplies into at rebalance points.
  std::vector<double> base_capacities;
  bool capacities_degraded = false;
  std::int64_t last_ckpt_iter = 0;  ///< iteration of the newest checkpoint
  double since_ckpt_s = 0.0;  ///< compute seconds a loss would re-do
  bool failed = false;        ///< unrecoverable loss; done() turns true
  Rng noise_rng;
  SessionResult res;
  RunningStats idleness_stats;
  RunningStats bubble_stats;
  RunningStats workers_stats;
  std::int64_t iter = 0;
  int pending_shrink = 0;  ///< request_shrink() target; 0 → none queued
};

TrainingSession::TrainingSession(const model::ModelDesc& model,
                                 SessionConfig cfg,
                                 dynamic::DynamismEngine* engine)
    : model_(&model), cfg_(cfg), engine_(engine),
      deployment_(resolve_deployment(cfg)),
      stage_costs_(make_stage_costs(cfg, deployment_)),
      net_(deployment_ ? deployment_->make_cost_model(cfg.net)
                       : comm::CostModel(cfg.net)),
      builder_(model, stage_costs_, net_,
               make_builder_config(cfg, deployment_)) {
  DYNMO_CHECK(cfg.iterations > 0, "need at least one iteration");
  DYNMO_CHECK(cfg.sim_stride > 0, "stride must be positive");
  DYNMO_CHECK(cfg.mode != BalancingMode::DynMo ||
                  cfg.algorithm != balance::Algorithm::HierarchicalDiffusion ||
                  deployment_,
              "HierarchicalDiffusion needs a deployment (or topology)");
  DYNMO_CHECK(static_cast<std::size_t>(cfg.pipeline_stages) <=
                  model.num_layers(),
              "more stages than layers");
  DYNMO_CHECK(!(cfg.repack && cfg.elastic.enabled),
              "repack and elastic are mutually exclusive (elastic subsumes "
              "re-packing and adds the expand path)");
  DYNMO_CHECK(!cfg.elastic.enabled || cfg.mode == BalancingMode::DynMo,
              "elastic decisions consume the rebalance-point profile and "
              "need mode == DynMo");
  DYNMO_CHECK(cfg.elastic.max_workers == 0 ||
                  cfg.elastic.max_workers == cfg.pipeline_stages,
              "the session's cost surfaces are sized to pipeline_stages; "
              "elastic.max_workers must stay 0 (or equal)");
  DYNMO_CHECK(cfg.initial_active_workers >= 0 &&
                  cfg.initial_active_workers <= cfg.pipeline_stages,
              "initial_active_workers " << cfg.initial_active_workers
                                        << " outside [0, "
                                        << cfg.pipeline_stages << "]");
  DYNMO_CHECK(cfg.initial_active_workers == 0 ||
                  cfg.initial_active_workers == cfg.pipeline_stages ||
                  cfg.elastic.enabled,
              "a session starting below pipeline_stages needs "
              "elastic.enabled to grow back");
  if (cfg.elastic.enabled) {
    // The elastic step consumes the rebalance-point profile, so its
    // cadence must land on simulated rebalance points — otherwise the
    // controller would silently never (or rarely) fire.
    const std::int64_t cadence = effective_rebalance_interval();
    DYNMO_CHECK(cadence > 0,
                "elastic needs a rebalance cadence (set rebalance_interval "
                "or use an engine with a recommended one)");
    DYNMO_CHECK(cfg.elastic.interval > 0 &&
                    cfg.elastic.interval % cadence == 0 &&
                    cfg.elastic.interval % cfg.sim_stride == 0,
                "elastic.interval " << cfg.elastic.interval
                                    << " must be a positive multiple of the "
                                    << "rebalance interval (" << cadence
                                    << ") and sim_stride ("
                                    << cfg.sim_stride << ")");
  }
  DYNMO_CHECK(cfg.checkpoint_interval_iters >= 0 &&
                  cfg.checkpoint_interval_iters % cfg.sim_stride == 0,
              "checkpoint_interval_iters must be a non-negative multiple of "
              "sim_stride");
  DYNMO_CHECK((cfg.fault.losses.empty() && !(cfg.fault.mtbf_iters > 0.0)) ||
                  cfg.elastic.enabled,
              "worker-loss injection recovers through the elastic shrink "
              "path; the fault plan's losses/mtbf need elastic.enabled "
              "(straggler-only plans work anywhere)");
  if (cfg_.data_parallel > 1) {
    const bool grid = deployment_ && deployment_->data_parallel() > 1;
    dp_groups_.reserve(static_cast<std::size_t>(cfg_.pipeline_stages));
    for (int s = 0; s < cfg_.pipeline_stages; ++s) {
      dp_groups_.push_back(grid ? deployment_->dp_group(s)
                                : synthetic_dp_group(s));
    }
  }
}

TrainingSession::~TrainingSession() = default;

double TrainingSession::stage_mem_capacity(int stage) const {
  if (!deployment_) return cfg_.gpu.mem_capacity;
  // A stage's layers live on every replica; the smallest hosting GPU gates.
  double cap = deployment_->gpu(stage).mem_capacity;
  for (int d = 1; d < deployment_->data_parallel(); ++d) {
    cap = std::min(cap, deployment_->gpu(d, stage).mem_capacity);
  }
  return cap;
}

double TrainingSession::tokens_per_iteration() const {
  const std::size_t seq = model_->layers.front().seq_len;
  return static_cast<double>(cfg_.micro_batch) *
         static_cast<double>(cfg_.num_microbatches) *
         static_cast<double>(seq) * static_cast<double>(cfg_.data_parallel);
}

std::int64_t TrainingSession::effective_rebalance_interval() const {
  if (cfg_.rebalance_interval > 0) return cfg_.rebalance_interval;
  if (engine_ != nullptr) return engine_->recommended_rebalance_interval();
  return 0;
}

int TrainingSession::resolved_initial_workers() const {
  return cfg_.initial_active_workers > 0 ? cfg_.initial_active_workers
                                         : cfg_.pipeline_stages;
}

comm::RankGroup TrainingSession::synthetic_dp_group(int stage) const {
  // Without a grid deployment, replica pipelines are assumed tiled
  // linearly over the cluster: replica d's stage s sits at global rank
  // d * pipeline_stages + s, nodes hold cfg.net.gpus_per_node ranks.  DP
  // peers that land inside one node (short pipelines, wide nodes) exchange
  // over the intra tier; only the rest crosses the fabric.
  const int g = std::max(1, cfg_.net.gpus_per_node);
  comm::RankGroup group;
  group.intra = net_.params(comm::LinkTier::NvLink);
  group.inter = net_.params(comm::LinkTier::InfiniBand);
  int run = 0;       // peers accumulated on the current node
  int prev_node = -1;
  for (int d = 0; d < cfg_.data_parallel; ++d) {
    const int node = (d * cfg_.pipeline_stages + stage) / g;
    if (node == prev_node) {
      ++run;
    } else {
      if (run > 0) group.node_sizes.push_back(run);
      run = 1;
      prev_node = node;
    }
  }
  if (run > 0) group.node_sizes.push_back(run);
  return group;
}

TrainingSession::DpAllreduceCost TrainingSession::dp_allreduce_cost(
    const pipeline::StageMap& map,
    std::span<const model::LayerState> states) const {
  DpAllreduceCost cost;
  if (cfg_.data_parallel <= 1) return cost;
  // Every stage's DP peer group reduces its own gradients concurrently on
  // disjoint ranks, so the slowest group gates the iteration; frozen
  // layers drop out of the exchange entirely (Egeria semantics).
  double worst_s = 0.0;
  for (int s = 0; s < map.num_stages(); ++s) {
    double bytes = 0.0;
    for (std::size_t l = map.stage_begin(s); l < map.stage_end(s); ++l) {
      if (states[l].frozen) continue;
      bytes += static_cast<double>(model_->layers[l].params) * 2.0 *
               std::clamp(states[l].weight_density, 0.0, 1.0);
    }
    if (bytes <= 0.0) continue;
    const comm::RankGroup& group = dp_groups_[static_cast<std::size_t>(s)];
    const auto payload = static_cast<std::size_t>(bytes);
    worst_s = std::max(worst_s, net_.allreduce_time(group, payload));
    const auto split = comm::allreduce_bytes(group, payload);
    cost.intra_bytes += split.intra_node;
    cost.inter_bytes += split.inter_node;
  }
  cost.exposed_s = worst_s * (1.0 - std::clamp(cfg_.dp_overlap, 0.0, 1.0));
  return cost;
}

void TrainingSession::apply_tutel_mitigation(
    std::span<model::LayerState> states) const {
  // Tutel's adaptive parallelism + 2D all_to_all remove part of the routing
  // hotspot without moving layers: it reclaims roughly half of the skew
  // (emulation; Hwang et al. report similar bubble reductions).
  constexpr double kSkewRetained = 0.55;
  for (auto& s : states) {
    s.moe_load = 1.0 + (s.moe_load - 1.0) * kSkewRetained;
    s.token_fraction = 1.0 + (s.token_fraction - 1.0) * kSkewRetained;
  }
}

balance::Rebalancer TrainingSession::make_rebalancer(int stages) const {
  // Re-packing shrinks the pipeline to its leading stages, so the
  // per-stage vectors are truncated to the surviving count (a fresh
  // orchestrator is cheap — the cost model is shared state).
  balance::RebalanceConfig c = run_->rb_cfg;
  if (!c.stage_to_rank.empty()) {
    c.stage_to_rank.resize(static_cast<std::size_t>(stages));
  }
  if (!c.capacities.empty()) {
    c.capacities.resize(static_cast<std::size_t>(stages));
  }
  return balance::Rebalancer(c, net_);
}

void TrainingSession::emit_migration_rows(std::int64_t iter,
                                          const char* trigger,
                                          const balance::MigrationPlan& plan) {
  auto& trace = run_->trace;
  if (!trace) return;
  for (const auto& t : plan.transfers) {
    telemetry::MigrationRow row;
    row.iter = iter;
    row.trigger = trigger;
    row.layer = static_cast<std::int64_t>(t.layer);
    row.from_stage = t.src_stage;
    row.to_stage = t.dst_stage;
    row.bytes = t.bytes;
    trace->write_migration(row);
  }
}

void TrainingSession::record_migration_split(
    const balance::MigrationPlan& plan, double scale) {
  if (!deployment_ || plan.empty()) return;
  // A layer move is mirrored in every DP replica (each replica holds the
  // same layers and migrates them between its own stages), and replicas
  // may straddle node boundaries differently — classify each one.
  auto& res = run_->res;
  for (int d = 0; d < deployment_->data_parallel(); ++d) {
    const auto split = cluster::classify_migration(
        plan, deployment_->topology(), deployment_->stage_to_rank(d));
    res.intra_node_migration_bytes += split.intra_node_bytes * scale;
    res.inter_node_migration_bytes += split.inter_node_bytes * scale;
  }
}

// Every rebalance outcome — the periodic one and the post-pack polish —
// flows through the same accounting: issued bytes into the node-split
// counters, the accept/reject decision into the map counters, rejected
// candidates' traffic into migration_bytes_avoided.
void TrainingSession::account_outcome(const balance::RebalanceOutcome& outcome,
                                      double scale, std::int64_t iter,
                                      const char* trigger) {
  auto& R = *run_;
  record_migration_split(outcome.migration, scale);
  switch (outcome.decision) {
    case balance::MapDecision::Accepted:
      if (!outcome.migration.empty()) ++R.res.maps_accepted;
      break;
    case balance::MapDecision::RejectedBottleneck:
      ++R.res.maps_rejected_bottleneck;
      R.res.migration_bytes_avoided +=
          outcome.candidate_bytes * R.replica_mirror * scale;
      break;
    case balance::MapDecision::RejectedPayoff:
      ++R.res.maps_rejected_payoff;
      R.res.migration_bytes_avoided +=
          outcome.candidate_bytes * R.replica_mirror * scale;
      break;
  }
  if (R.trace) {
    telemetry::RebalanceDecisionRow row;
    row.iter = iter;
    row.trigger = trigger;
    row.algorithm = balance::to_string(R.rb_cfg.algorithm);
    row.balance_by = balance::to_string(R.rb_cfg.by);
    row.decision = balance::to_string(outcome.decision);
    row.projected_gain_s = outcome.projected_gain_s;
    row.exposed_cost_s = outcome.exposed_cost_s;
    row.candidate_bytes = outcome.candidate_bytes;
    row.migrated_bytes = outcome.migration.total_bytes();
    row.migrated_layers =
        static_cast<std::int64_t>(outcome.migration.transfers.size());
    row.imbalance_before = outcome.imbalance_before;
    row.imbalance_after = outcome.imbalance_after;
    // Already zeroed by run_rebalance() under telemetry.deterministic.
    row.decide_s = outcome.overhead.decide_s;
    R.trace->write_rebalance_decision(row);
    emit_migration_rows(iter, trigger, outcome.migration);
  }
}

balance::RebalanceOutcome TrainingSession::run_rebalance(
    const balance::LayerProfile& profile, const pipeline::StageMap& map) {
  auto outcome = run_->rebalancer->rebalance(profile, map);
  // decide_s is the one measured (machine-dependent) overhead the session
  // produces; every other term is modeled.  Deterministic traces zero it
  // here — before it flows into rebalance_decisions rows or the event_s /
  // stall_s accumulators — so the whole trace is a pure function of the
  // scenario (the golden-trace gate depends on this).
  if (cfg_.telemetry.deterministic) outcome.overhead.decide_s = 0.0;
  return outcome;
}

void TrainingSession::start() {
  DYNMO_CHECK(run_ == nullptr, "session already started");
  run_ = std::make_unique<Run>();
  auto& R = *run_;
  const int S0 = cfg_.pipeline_stages;
  const int W0 = resolved_initial_workers();
  R.initial_workers = W0;
  // Conservative per-worker cap: the smallest stage GPU gates feasibility
  // of maps the balancers and the packer may produce.
  R.mem_capacity =
      deployment_ ? deployment_->min_mem_capacity() : cfg_.gpu.mem_capacity;

  R.states.assign(model_->num_layers(), model::LayerState{});

  // Initial static placement (over the starting footprint — W0 < S0 only
  // under elastic, where the map grows back exactly as after a shrink).
  switch (cfg_.mode) {
    case BalancingMode::StaticParam: {
      std::vector<double> params;
      params.reserve(model_->num_layers());
      for (const auto& l : model_->layers) {
        params.push_back(static_cast<double>(l.params));
      }
      R.map = pipeline::StageMap::greedy_by_weight(params, W0);
      break;
    }
    default:
      R.map = pipeline::StageMap::uniform(model_->num_layers(), W0);
      break;
  }
  R.active = W0;

  R.interval = effective_rebalance_interval();
  // Migration traffic (issued or avoided) is mirrored in every DP replica
  // of a grid deployment — same rule as record_migration_split.
  R.replica_mirror =
      deployment_ ? static_cast<double>(deployment_->data_parallel()) : 1.0;

  balance::RebalanceConfig& rb_cfg = R.rb_cfg;
  rb_cfg.algorithm = cfg_.algorithm;
  rb_cfg.by = cfg_.balance_by;
  rb_cfg.mem_capacity = R.mem_capacity;
  rb_cfg.min_bottleneck_gain = cfg_.min_bottleneck_gain;
  rb_cfg.payoff_window_iters = cfg_.payoff_window_iters;
  rb_cfg.incremental = cfg_.incremental_decisions;
  // Every replica transfers its own copy of a migrated layer and the
  // copies contend for the same links, so the priced cost scales with the
  // DP width; every-iteration cadences hide most of the transfer under
  // backprop (§3.3.1) and only the remainder weighs against the gain.
  rb_cfg.migration_cost_multiplier = static_cast<double>(cfg_.data_parallel);
  if (R.interval == 1) {
    rb_cfg.migration_exposed_fraction =
        1.0 - std::clamp(cfg_.migration_overlap, 0.0, 1.0);
  }
  if (deployment_) {
    // The deployment's placement prices migrations over the ranks they
    // actually connect, and its capacities make heterogeneous stages
    // converge to loads proportional to their GPUs' throughput.
    rb_cfg.stage_to_rank.assign(deployment_->stage_to_rank().begin(),
                                deployment_->stage_to_rank().end());
    rb_cfg.capacities = deployment_->stage_capacities();
    if (cfg_.algorithm == balance::Algorithm::HierarchicalDiffusion) {
      // Inject the two-level balancer (cluster/ sits above balance/, so
      // the orchestrator cannot reach it itself).  Its inter-node payoff
      // gate inherits the session window only under time balancing — the
      // hier gain is in weight units, and only seconds compare against
      // migration seconds.
      cluster::HierConfig hier_cfg = cfg_.hier;
      if (hier_cfg.payoff_window_iters <= 0.0 &&
          cfg_.balance_by == balance::BalanceBy::Time) {
        hier_cfg.payoff_window_iters = cfg_.payoff_window_iters;
      }
      // Same cost scaling as the flat gate: DP replicas mirror every
      // move, and every-iteration cadences expose only the non-overlapped
      // remainder of the transfer.
      hier_cfg.migration_cost_multiplier *=
          static_cast<double>(cfg_.data_parallel);
      if (R.interval == 1) {
        hier_cfg.migration_cost_multiplier *=
            1.0 - std::clamp(cfg_.migration_overlap, 0.0, 1.0);
      }
      rb_cfg.hierarchical_decider =
          [this, hier_cfg](const balance::DiffusionRequest& req,
                           const pipeline::StageMap& current) {
            // Re-packing may have shrunk the pipeline; survivors are
            // always the leading stages, so the placement prefix is
            // their stage_to_rank.
            const auto ranks = deployment_->stage_to_rank().first(
                static_cast<std::size_t>(current.num_stages()));
            return cluster::HierarchicalBalancer(deployment_->topology(),
                                                 hier_cfg)
                .balance(req, current, ranks)
                .map;
          };
    }
  }
  R.rebalancer.emplace(make_rebalancer(W0));

  // Structured trace emission (docs/TELEMETRY.md).  The writer observes the
  // run and never feeds back into it: every decision below is taken on the
  // same values with or without a trace attached.
  if (cfg_.telemetry.enabled()) {
    telemetry::RunInfo info;
    info.producer = "session";
    info.iterations = cfg_.iterations;
    info.sim_stride = cfg_.sim_stride;
    // Non-DynMo modes never rebalance; recording 0 keeps offline replay of
    // their traces on the static-map path.
    info.rebalance_interval =
        cfg_.mode == BalancingMode::DynMo ? R.interval : 0;
    info.pipeline_stages = cfg_.pipeline_stages;
    info.data_parallel = cfg_.data_parallel;
    info.seed = cfg_.seed;
    info.mode = to_string(cfg_.mode);
    info.algorithm = balance::to_string(cfg_.algorithm);
    info.balance_by = balance::to_string(cfg_.balance_by);
    info.mem_capacity = rb_cfg.mem_capacity;
    info.min_bottleneck_gain = rb_cfg.min_bottleneck_gain;
    info.payoff_window_iters = rb_cfg.payoff_window_iters;
    info.migration_cost_multiplier = rb_cfg.migration_cost_multiplier;
    info.migration_exposed_fraction = rb_cfg.migration_exposed_fraction;
    info.gamma = rb_cfg.gamma;
    info.stage_to_rank = rb_cfg.stage_to_rank;
    info.capacities = rb_cfg.capacities;
    info.layer_params.reserve(model_->num_layers());
    for (const auto& l : model_->layers) {
      info.layer_params.push_back(static_cast<double>(l.params));
    }
    R.trace.emplace(cfg_.telemetry, std::move(info));
  }

  // Elastic lifecycle: the controller decides shrink / hold / expand at
  // re-pack points; the session executes transitions as checkpoint-
  // coordinated restarts (docs/RUNTIME.md "Elastic lifecycle").  The
  // communicator bootstrap of the post-restart group is priced over the
  // surviving/acquired ranks' deployment — a prefix of the placement, since
  // packing releases trailing stages and expansion reclaims them.
  if (cfg_.elastic.enabled) {
    ElasticConfig ec = cfg_.elastic;
    if (ec.payoff_window_iters <= 0.0) {
      ec.payoff_window_iters = cfg_.payoff_window_iters;
    }
    // The ceiling stays the full pipeline even when the job starts below
    // it (W0 < S0): the cost surfaces are sized to S0 and expansion may
    // grow into them.
    ec.max_workers = S0;
    R.elastic.emplace(ec, W0, [this](int workers) {
      if (deployment_) {
        return deployment_->prefix(workers).stage_group().inter;
      }
      return net_.params(comm::LinkTier::InfiniBand);
    });
  }

  // Fault injection (docs/FAULT.md): the injector draws from its own
  // Rng::fork() substream of the session seed, so enabling a plan leaves
  // the measurement-noise stream below bit-identical.
  if (!cfg_.fault.empty()) {
    fault::FaultPlan plan = cfg_.fault;
    if (plan.mtbf_iters > 0.0 && plan.horizon_iters <= 0) {
      plan.horizon_iters = static_cast<int>(cfg_.iterations);
    }
    R.injector.emplace(plan, W0, Rng(cfg_.seed));
  }
  R.base_capacities = rb_cfg.capacities;

  R.noise_rng = Rng(hash_mix(cfg_.seed, 0x7e55));
}

bool TrainingSession::done() const {
  DYNMO_CHECK(run_ != nullptr, "done() before start()");
  return run_->failed || run_->iter >= cfg_.iterations;
}

std::int64_t TrainingSession::current_iter() const {
  DYNMO_CHECK(run_ != nullptr, "current_iter() before start()");
  return run_->iter;
}

int TrainingSession::active_workers() const {
  if (run_ != nullptr) return run_->active;
  return resolved_initial_workers();
}

void TrainingSession::request_shrink(int target_workers) {
  DYNMO_CHECK(run_ != nullptr, "request_shrink() before start()");
  auto& R = *run_;
  DYNMO_CHECK(R.elastic.has_value(),
              "externally-initiated shrink needs elastic.enabled");
  DYNMO_CHECK(target_workers >= R.elastic->min_workers(),
              "forced shrink target " << target_workers
                                      << " below elastic.min_workers "
                                      << R.elastic->min_workers());
  if (target_workers >= R.active) return;  // nothing to release
  R.pending_shrink = target_workers;
}

TransitionQuote TrainingSession::quote_shrink(int target_workers) const {
  DYNMO_CHECK(run_ != nullptr && run_->elastic.has_value(),
              "quotes need a started session with elastic.enabled");
  const auto& R = *run_;
  TransitionQuote q;
  q.workers_before = R.active;
  q.workers_after = target_workers;
  std::vector<double> iter_layer_s = builder_.layer_total_seconds(R.states);
  for (double& x : iter_layer_s) {
    x *= static_cast<double>(cfg_.num_microbatches);
  }
  const auto loads = R.map.stage_loads(iter_layer_s);
  q.iter_s_before =
      loads.empty() ? 0.0 : *std::max_element(loads.begin(), loads.end());
  if (target_workers < R.elastic->min_workers() ||
      target_workers >= R.active) {
    return q;
  }
  const auto mem = builder_.layer_memory_bytes(R.states, R.map);
  repack::ContiguousRepackRequest req;
  req.memory_bytes = mem;
  req.mem_capacity = R.mem_capacity;
  req.target_workers = target_workers;
  const auto rp = repack::repack_contiguous(req, target_workers);
  if (!rp.feasible) return q;  // the model does not fit that tight
  q.restart_stall_s = R.elastic->restart_stall_s(R.map, rp.map, mem);
  q.iter_s_after = balance::PartitionBalancer::optimal_bottleneck(
      iter_layer_s, target_workers);
  q.feasible = true;
  return q;
}

TransitionQuote TrainingSession::quote_expand(int target_workers) const {
  DYNMO_CHECK(run_ != nullptr && run_->elastic.has_value(),
              "quotes need a started session with elastic.enabled");
  const auto& R = *run_;
  TransitionQuote q;
  q.workers_before = R.active;
  q.workers_after = target_workers;
  std::vector<double> iter_layer_s = builder_.layer_total_seconds(R.states);
  for (double& x : iter_layer_s) {
    x *= static_cast<double>(cfg_.num_microbatches);
  }
  const auto loads = R.map.stage_loads(iter_layer_s);
  q.iter_s_before =
      loads.empty() ? 0.0 : *std::max_element(loads.begin(), loads.end());
  if (target_workers <= R.active ||
      target_workers > R.elastic->max_workers()) {
    return q;
  }
  // The post-restart map is the balanced partition at the grown count —
  // exactly what reshard-on-reload produces (ElasticController::decide).
  balance::PartitionRequest preq;
  preq.weights.assign(iter_layer_s.begin(), iter_layer_s.end());
  preq.num_stages = target_workers;
  const auto balanced = balance::PartitionBalancer{}.balance(preq);
  const auto mem = builder_.layer_memory_bytes(R.states, R.map);
  q.restart_stall_s = R.elastic->restart_stall_s(R.map, balanced.map, mem);
  q.iter_s_after = balance::PartitionBalancer::optimal_bottleneck(
      iter_layer_s, target_workers);
  q.feasible = true;
  return q;
}

void TrainingSession::execute_forced_shrink(double& event_time,
                                            double& iter_restart_stall) {
  auto& R = *run_;
  const int target = R.pending_shrink;
  R.pending_shrink = 0;
  if (target <= 0 || !R.elastic || target >= R.active) return;
  const auto mem = builder_.layer_memory_bytes(R.states, R.map);
  const auto layer_seconds = builder_.layer_total_seconds(R.states);
  repack::ContiguousRepackRequest req;
  req.memory_bytes = mem;
  req.mem_capacity = R.mem_capacity;
  req.target_workers = target;
  const auto rp = repack::repack_contiguous(req, target);
  if (!rp.feasible) {
    // quote_shrink would have said so; an arbiter that forces anyway keeps
    // the victim at its current footprint rather than OOM it.
    DYNMO_LOG(Warn) << "forced shrink to " << target
                    << " workers is memory-infeasible; keeping " << R.active;
    return;
  }
  ElasticDecision d;
  d.action = ElasticAction::Shrink;
  d.target_workers = target;
  d.stall = R.elastic->restart_stall(R.map, rp.map, mem);
  d.restart_stall_s = d.stall.total_s();
  {
    const auto loads = R.map.stage_loads(layer_seconds);
    const double bottleneck =
        loads.empty() ? 0.0 : *std::max_element(loads.begin(), loads.end());
    d.projected_gain_s =
        static_cast<double>(R.active - target) * bottleneck;
  }
  // Releases always succeed (ControlPlane contract) — a refusal here means
  // the arbiter and the session disagree about the claim, a real bug.
  DYNMO_CHECK(R.elastic->commit(d), "control plane refused a release");
  if (R.trace) {
    telemetry::ElasticTransitionRow row;
    row.iter = R.iter;
    row.kind = "preempt";
    row.accepted = true;
    row.workers_before = R.active;
    row.workers_after = target;
    row.stall_s = d.restart_stall_s;
    row.alpha_s = d.stall.alpha_s;
    row.bootstrap_s = d.stall.bootstrap_s;
    row.ckpt_write_s = d.stall.ckpt_write_s;
    row.ckpt_read_s = d.stall.ckpt_read_s;
    row.projected_gain_s = d.projected_gain_s;
    R.trace->write_elastic_transition(row);
  }
  // The same checkpoint-coordinated restart a voluntary shrink takes
  // (docs/RUNTIME.md): serialize through the real binary format, re-pack
  // onto the target count, resume from the restored state.
  Checkpoint ckpt;
  ckpt.iteration = R.iter;
  ckpt.stage_map = R.map;
  ckpt.layer_states.assign(R.states.begin(), R.states.end());
  auto restored = Checkpoint::deserialize(ckpt.serialize());
  R.map = rp.map;
  R.states = std::move(restored.layer_states);
  R.active = target;
  event_time += d.restart_stall_s;
  R.res.restart_stall_s += d.restart_stall_s;
  iter_restart_stall += d.restart_stall_s;
  ++R.res.forced_shrinks;
  R.rebalancer.emplace(make_rebalancer(R.active));
  // Polish with a *raw* profile: a preemption fires between rebalance
  // points, and drawing measurement noise here would shift the noise
  // stream every later rebalance consumes — the determinism contract
  // (docs/RUNTIME.md) forbids that.
  balance::LayerProfile profile;
  profile.time_s = layer_seconds;
  profile.memory_bytes = mem;
  profile.params.reserve(model_->num_layers());
  for (const auto& l : model_->layers) {
    profile.params.push_back(static_cast<double>(l.params));
  }
  const auto rb = run_rebalance(profile, R.map);
  R.map = rb.map;
  account_outcome(rb, 1.0, R.iter, "post_restart");
  balance::OverheadBreakdown polish = rb.overhead;
  polish.profile_s = 0.0;
  R.res.overhead += polish;
  event_time += polish.total_s();
}

void TrainingSession::execute_worker_loss(int victim, double& event_time,
                                          double& iter_restart_stall) {
  auto& R = *run_;
  auto& res = R.res;
  const std::int64_t iter = R.iter;
  const int target = R.active - 1;
  const auto mem = builder_.layer_memory_bytes(R.states, R.map);
  const auto layer_seconds = builder_.layer_total_seconds(R.states);
  const double lost_work = R.since_ckpt_s;
  const std::int64_t lost_iters = iter - R.last_ckpt_iter;

  const auto emit_fault_row = [&](int workers_after, const RestartStall& st,
                                  double total_stall) {
    if (!R.trace) return;
    telemetry::FaultEventRow row;
    row.iter = iter;
    row.kind = "worker_loss";
    row.worker = victim;
    row.workers_before = R.active;
    row.workers_after = workers_after;
    row.stall_s = total_stall;
    row.alpha_s = st.alpha_s;
    row.bootstrap_s = st.bootstrap_s;
    row.ckpt_write_s = st.ckpt_write_s;
    row.ckpt_read_s = st.ckpt_read_s;
    row.lost_work_s = lost_work;
    row.lost_iters = lost_iters;
    R.trace->write_fault_event(row);
  };

  repack::ContiguousRepackRequest req;
  req.memory_bytes = mem;
  req.mem_capacity = R.mem_capacity;
  req.target_workers = std::max(target, 1);
  const auto rp = repack::repack_contiguous(req, std::max(target, 1));
  if (target < 1 || !R.elastic || target < R.elastic->min_workers() ||
      !rp.feasible) {
    // Unrecoverable: the survivors cannot absorb the model (or none
    // remain).  The run ends here; nothing further is charged to the
    // clock — the wasted GPU-time is the fleet layer's ledger, which gets
    // the failed SessionResult and returns the allocation to the pool.
    DYNMO_LOG(Warn) << "worker " << victim << " lost at iteration " << iter
                    << "; survivors cannot continue — failing the run";
    emit_fault_row(/*workers_after=*/0, RestartStall{}, /*total_stall=*/0.0);
    ++res.worker_losses;
    R.failed = true;
    res.failed = true;
    return;
  }

  const RestartStall stall = R.elastic->restart_stall(R.map, rp.map, mem);
  const double total = stall.total_s() + lost_work;
  ElasticDecision d;
  d.action = ElasticAction::Shrink;
  d.target_workers = target;
  d.stall = stall;
  d.restart_stall_s = stall.total_s();
  // The dead GPU leaves the job's claim: releases always succeed, and the
  // control plane (pool) owns the repair loop from here.
  DYNMO_CHECK(R.elastic->commit(d), "control plane refused a release");
  emit_fault_row(target, stall, total);

  // Recovery is the same checkpoint-coordinated restart a voluntary
  // shrink takes, except the state comes from the *last periodic
  // checkpoint* — everything since is re-done, charged as lost work on
  // top of the restart stall (docs/COST_MODEL.md "Lost-work pricing").
  // The simulated clock prices the redo without rewinding the iteration
  // counter: the dynamism trajectory is deterministic, so re-running
  // [last_ckpt, iter) reproduces the states the session already holds.
  Checkpoint ckpt;
  ckpt.iteration = iter;
  ckpt.stage_map = R.map;
  ckpt.layer_states.assign(R.states.begin(), R.states.end());
  auto restored = Checkpoint::deserialize(ckpt.serialize());
  R.map = rp.map;
  R.states = std::move(restored.layer_states);
  R.active = target;
  event_time += total;
  res.restart_stall_s += total;
  iter_restart_stall += total;
  res.lost_work_s += lost_work;
  ++res.worker_losses;
  // The restart writes a fresh checkpoint as part of its stall.
  R.last_ckpt_iter = iter;
  R.since_ckpt_s = 0.0;
  R.rebalancer.emplace(make_rebalancer(R.active));
  // Raw-profile polish, exactly like a forced shrink: a loss fires
  // between rebalance points and must not shift the noise stream.
  balance::LayerProfile profile;
  profile.time_s = layer_seconds;
  profile.memory_bytes = mem;
  profile.params.reserve(model_->num_layers());
  for (const auto& l : model_->layers) {
    profile.params.push_back(static_cast<double>(l.params));
  }
  const auto rb = run_rebalance(profile, R.map);
  R.map = rb.map;
  account_outcome(rb, 1.0, iter, "post_restart");
  balance::OverheadBreakdown polish = rb.overhead;
  polish.profile_s = 0.0;
  res.overhead += polish;
  event_time += polish.total_s();
}

void TrainingSession::refresh_capacities(std::int64_t iter) {
  auto& R = *run_;
  std::vector<double> caps = R.base_capacities;
  if (caps.empty()) {
    caps.assign(static_cast<std::size_t>(cfg_.pipeline_stages), 1.0);
  }
  bool degraded = false;
  for (int s = 0; s < cfg_.pipeline_stages; ++s) {
    const double m = R.injector->multiplier(s, static_cast<int>(iter));
    if (m != 1.0) {
      caps[static_cast<std::size_t>(s)] *= m;
      degraded = true;
    }
  }
  if (!degraded && !R.capacities_degraded) return;  // healthy, and was
  // Restore the *exact* base vector on full recovery (an all-ones vector
  // is semantically identical but would differ from the fault-free run's
  // config, and determinism comparisons check configs too).
  R.rb_cfg.capacities = degraded ? std::move(caps) : R.base_capacities;
  R.capacities_degraded = degraded;
  R.rebalancer.emplace(make_rebalancer(R.active));
}

double TrainingSession::checkpoint_write_seconds(
    const pipeline::StageMap& map, std::span<const double> state_bytes) const {
  // Every worker writes its shard in parallel; the busiest gates — the
  // same rule ElasticController::restart_stall prices, at the same
  // bandwidth knob (meaningful with or without elastic.enabled).
  const auto loads = map.stage_loads(state_bytes);
  const double busiest =
      loads.empty() ? 0.0 : *std::max_element(loads.begin(), loads.end());
  return busiest / cfg_.elastic.checkpoint_bw;
}

double TrainingSession::step() {
  DYNMO_CHECK(run_ != nullptr, "step() before start()");
  DYNMO_CHECK(!done(), "step() past the configured iterations");
  auto& R = *run_;
  const int S0 = cfg_.pipeline_stages;
  const std::int64_t iter = R.iter;
  auto& states = R.states;
  auto& map = R.map;
  auto& res = R.res;

  // Per-real-iteration compute time (repeated sim_stride times) vs.
  // one-off event time (rebalance decisions, migrations) — the latter is
  // charged per *event*, scaled by how many events the stride window
  // covers.
  double iter_time = 0.0;
  double event_time = 0.0;
  double iter_restart_stall = 0.0;

  // An arbiter-forced shrink executes before the window's dynamism step,
  // on the state the quote priced.
  if (R.pending_shrink > 0) {
    execute_forced_shrink(event_time, iter_restart_stall);
  }

  // Injected faults fire at the window boundary, on the state the last
  // checkpoint could have captured (docs/FAULT.md).
  if (R.injector) {
    std::vector<bool> alive(static_cast<std::size_t>(R.active), true);
    const auto events = R.injector->poll(
        static_cast<int>(iter + cfg_.sim_stride - 1), alive);
    for (const auto& e : events) {
      if (e.kind == fault::EventKind::WorkerLoss) {
        execute_worker_loss(e.worker, event_time, iter_restart_stall);
        if (R.failed) break;
        alive.assign(static_cast<std::size_t>(R.active), true);
      } else {
        ++res.straggler_events;
        if (R.trace) {
          telemetry::FaultEventRow row;
          row.iter = iter;
          row.kind = fault::to_string(e.kind);
          row.worker = e.worker;
          row.multiplier = e.multiplier;
          row.workers_before = R.active;
          row.workers_after = R.active;
          R.trace->write_fault_event(row);
        }
      }
    }
    if (R.failed) {
      // The run ends mid-window: account what the window charged (the
      // fatal event itself charges nothing) and stop stepping.
      res.total_time_s += event_time;
      return event_time;
    }
  }

  if (engine_ != nullptr) engine_->step(iter, states);
  if (cfg_.mode == BalancingMode::Tutel) apply_tutel_mitigation(states);

  const auto mb_scale =
      engine_ != nullptr ? engine_->microbatch_scale(iter)
                         : pipeline::MicrobatchScaleFn{};

  const double events_per_window =
      (R.interval > 0 && R.interval <= cfg_.sim_stride)
          ? static_cast<double>(cfg_.sim_stride) /
                static_cast<double>(R.interval)
          : 1.0;

  const auto mem = builder_.layer_memory_bytes(states, map);

  // Periodic checkpoint (docs/FAULT.md): cut one at every cadence point
  // and charge the busiest shard's write.  Skipped when a restart already
  // left a fresh checkpoint at this very iteration.
  if (cfg_.checkpoint_interval_iters > 0 && iter > 0 &&
      iter % cfg_.checkpoint_interval_iters == 0 && iter > R.last_ckpt_iter) {
    const double write_s = checkpoint_write_seconds(map, mem);
    event_time += write_s;
    res.checkpoint_write_s += write_s;
    ++res.checkpoints_written;
    R.last_ckpt_iter = iter;
    R.since_ckpt_s = 0.0;
  }

  const bool rebalance_point = cfg_.mode == BalancingMode::DynMo &&
                               R.interval > 0 && iter % R.interval == 0;
  // Raw (pre-noise) per-layer fwd+bwd seconds: the profile's time loads
  // at rebalance points, and what the stage_loads table records — replay
  // re-derives the measurement noise from the seed, so recording the raw
  // values keeps the trace exact.
  std::vector<double> layer_seconds;
  if (R.trace || rebalance_point) {
    layer_seconds = builder_.layer_total_seconds(states);
  }

  // --- DynMo: rebalance / re-pack --------------------------------------
  // Rebalancing happens *inside* the iteration: for every-iteration
  // cadences (MoE / MoD / sparse attention) the forward pass measures the
  // routing loads and the backward pass migrates layers accordingly
  // (§3.3.1), so the new map takes effect for the very loads that were
  // measured.  For slow cadences (pruning / freezing / early exit) this
  // merely skips the single imbalanced profiling iteration, which is
  // negligible at those intervals.
  // Stragglers enter the decision path here: the rebalance point sees the
  // degraded capacities, so diffusion/partition route load away from the
  // slow stage — and back when it recovers (the payoff gate keeps the
  // return migration from thrashing).
  if (rebalance_point && R.injector && R.injector->any_degradation()) {
    refresh_capacities(iter);
  }

  if (rebalance_point) {
    balance::LayerProfile profile;
    profile.time_s = layer_seconds;
    profile.memory_bytes = mem;
    profile.params.reserve(model_->num_layers());
    for (const auto& l : model_->layers) {
      profile.params.push_back(static_cast<double>(l.params));
    }
    balance::add_measurement_noise(profile, R.noise_rng);

    const auto outcome = run_rebalance(profile, map);
    map = outcome.map;
    account_outcome(outcome, events_per_window, iter, "periodic");
    balance::OverheadBreakdown scaled = outcome.overhead;
    // Every-iteration rebalancing couples migration with backprop; only
    // the non-overlapped remainder is exposed.
    if (R.interval == 1) {
      scaled.migrate_s *=
          1.0 - std::clamp(cfg_.migration_overlap, 0.0, 1.0);
    }
    scaled.profile_s *= events_per_window;
    scaled.decide_s *= events_per_window;
    scaled.migrate_s *= events_per_window;
    res.overhead += scaled;
    event_time += scaled.total_s();
    ++res.rebalance_count;

    if (cfg_.repack && iter > 0 && iter % cfg_.repack_interval == 0) {
      int target = cfg_.repack_target_workers;
      if (target <= 0 &&
          cfg_.repack_policy ==
              SessionConfig::RepackPolicy::ThroughputPreserving) {
        // Release workers only while the *optimal contiguous bottleneck*
        // at the reduced count stays within tolerance of what the full
        // worker count could achieve on today's loads.  The reference is
        // recomputed from the current profile but always at the original
        // stage count, so repeated re-packs cannot ratchet the pipeline
        // slower and slower.
        constexpr double kTolerance = 1.05;
        const double ref_bottleneck =
            balance::PartitionBalancer::optimal_bottleneck(profile.time_s,
                                                           S0);
        target = R.active;
        for (int a = 1; a <= R.active; ++a) {
          if (balance::PartitionBalancer::optimal_bottleneck(
                  profile.time_s, a) <= ref_bottleneck * kTolerance) {
            target = a;
            break;
          }
        }
        // Policy-derived target on a deployment: release whole nodes —
        // snap up to the next node boundary (keeping extra workers can
        // only help the bottleneck) unless that cancels the release.
        if (deployment_) {
          int snapped = target;
          while (snapped < R.active &&
                 deployment_->node(snapped) ==
                     deployment_->node(snapped - 1)) {
            ++snapped;
          }
          if (snapped < R.active) target = snapped;
        }
      }
      repack::ContiguousRepackRequest req;
      req.memory_bytes = mem;
      req.mem_capacity = R.mem_capacity;
      req.target_workers = target;
      // Deployment-aware packing prefers vacating whole nodes.
      const auto rp = deployment_
                          ? repack::repack_contiguous(req, R.active,
                                                      *deployment_)
                          : repack::repack_contiguous(req, R.active);
      if (!rp.feasible && cfg_.repack_target_workers > 0) {
        res.oom = true;  // forced pack does not fit (Fig. 4 OOM cells)
      } else if (rp.feasible && rp.active_workers < R.active) {
        // Adopt the consolidated map: trailing stages become empty and
        // their workers are released; the pipeline continues on a
        // compacted map over the survivors.
        std::vector<std::size_t> b(
            rp.map.boundaries().begin(),
            rp.map.boundaries().begin() + rp.active_workers + 1);
        const auto packed = pipeline::StageMap::from_boundaries(b);
        const auto migration = balance::plan_migration(map, packed, mem);
        const double migrate_s =
            R.rb_cfg.stage_to_rank.empty()
                ? migration.estimated_time_s(net_)
                : migration.estimated_time_s(net_, R.rb_cfg.stage_to_rank);
        // Payoff gate for packing: the transfer stalls all `active`
        // workers for migrate_s once, and its payoff is the GPU-time of
        // the released workers — one bottleneck-iteration per window
        // iteration each.  A pack that cannot amortize within the window
        // is skipped (and retried at the next repack point, when the
        // model may have shrunk further).
        bool pack_pays_off = true;
        if (cfg_.payoff_window_iters > 0.0) {
          const auto loads = map.stage_loads(profile.time_s);
          const double bottleneck_s =
              *std::max_element(loads.begin(), loads.end());
          const double freed =
              static_cast<double>(R.active - rp.active_workers);
          if (freed * bottleneck_s * cfg_.payoff_window_iters <
              migrate_s * static_cast<double>(R.active)) {
            pack_pays_off = false;
            ++res.maps_rejected_payoff;
            res.migration_bytes_avoided +=
                migration.total_bytes() * R.replica_mirror;
            if (R.trace) {
              telemetry::ElasticTransitionRow row;
              row.iter = iter;
              row.kind = "repack";
              row.accepted = false;
              row.workers_before = R.active;
              row.workers_after = rp.active_workers;
              row.stall_s = migrate_s;
              row.projected_gain_s = freed * bottleneck_s;
              row.migrated_bytes = migration.total_bytes();
              R.trace->write_elastic_transition(row);
            }
          }
        }
        if (pack_pays_off) {
          record_migration_split(migration, 1.0);
          if (R.trace) {
            telemetry::ElasticTransitionRow row;
            row.iter = iter;
            row.kind = "repack";
            row.accepted = true;
            row.workers_before = R.active;
            row.workers_after = rp.active_workers;
            row.stall_s = migrate_s;
            const auto loads = map.stage_loads(profile.time_s);
            row.projected_gain_s =
                static_cast<double>(R.active - rp.active_workers) *
                *std::max_element(loads.begin(), loads.end());
            row.migrated_bytes = migration.total_bytes();
            R.trace->write_elastic_transition(row);
            emit_migration_rows(iter, "repack", migration);
          }
          event_time += migrate_s;
          res.overhead.migrate_s += migrate_s;
          map = packed;
          R.active = rp.active_workers;
          ++res.repack_count;
          R.rebalancer.emplace(make_rebalancer(R.active));
          // Rebalance within the survivors right away (a one-off event,
          // accounted like any other rebalance, except profiling: the
          // polish reuses the profile already charged above).
          const auto rb = run_rebalance(profile, map);
          map = rb.map;
          account_outcome(rb, 1.0, iter, "post_pack");
          balance::OverheadBreakdown polish = rb.overhead;
          polish.profile_s = 0.0;
          res.overhead += polish;
          event_time += polish.total_s();
        }
      }
    }

    // --- elastic lifecycle: shrink / hold / expand ---------------------
    if (R.elastic && iter > 0 && iter % cfg_.elastic.interval == 0) {
      // The restart stall is wall-clock seconds, so the gain side of the
      // payoff inequality must be per-*iteration* seconds: a stage
      // processes every microbatch, while profile.time_s is the
      // balancers' per-microbatch currency.
      std::vector<double> iter_layer_s(profile.time_s);
      for (double& x : iter_layer_s) {
        x *= static_cast<double>(cfg_.num_microbatches);
      }
      const auto d = R.elastic->decide(map, iter_layer_s, mem,
                                       R.mem_capacity, R.active);
      const auto emit_elastic_row = [&](bool accepted) {
        if (!R.trace) return;
        telemetry::ElasticTransitionRow row;
        row.iter = iter;
        // A payoff-rejected decision keeps action == Hold; the wanted
        // direction is recoverable from the target.
        row.kind = d.action != ElasticAction::Hold
                       ? to_string(d.action)
                       : (d.target_workers < R.active ? "shrink" : "expand");
        row.accepted = accepted;
        row.workers_before = R.active;
        row.workers_after = d.target_workers;
        row.stall_s = d.restart_stall_s;
        row.alpha_s = d.stall.alpha_s;
        row.bootstrap_s = d.stall.bootstrap_s;
        row.ckpt_write_s = d.stall.ckpt_write_s;
        row.ckpt_read_s = d.stall.ckpt_read_s;
        row.projected_gain_s = d.projected_gain_s;
        R.trace->write_elastic_transition(row);
      };
      if (d.rejected_by_payoff) {
        // A transition was wanted but its restart stall does not
        // amortize within the payoff window — same ledger as rejected
        // migrations (no bytes though: restarts move none).
        ++res.maps_rejected_payoff;
        emit_elastic_row(false);
      } else if (d.action != ElasticAction::Hold && R.elastic->commit(d)) {
        emit_elastic_row(true);
        // Checkpoint-coordinated restart (docs/RUNTIME.md): serialize
        // the training state through the real binary format, re-pack
        // the stage map onto the new worker count, and resume from the
        // restored checkpoint.  Weights arrive via checkpoint reload,
        // so no migration bytes are issued; the whole transition is
        // charged as the modeled restart stall instead.
        Checkpoint ckpt;
        ckpt.iteration = iter;
        ckpt.stage_map = map;
        ckpt.layer_states.assign(states.begin(), states.end());
        auto restored = Checkpoint::deserialize(ckpt.serialize());
        repack::ContiguousRepackRequest rreq;
        rreq.memory_bytes = mem;
        rreq.mem_capacity = R.mem_capacity;
        rreq.target_workers = d.target_workers;
        const auto rp = repack::repack_contiguous(rreq, d.target_workers);
        DYNMO_CHECK(rp.feasible,
                    "controller committed a memory-infeasible target");
        map = rp.map;
        states = std::move(restored.layer_states);
        R.active = d.target_workers;
        event_time += d.restart_stall_s;
        res.restart_stall_s += d.restart_stall_s;
        iter_restart_stall += d.restart_stall_s;
        if (d.action == ElasticAction::Expand) {
          ++res.expands;
        } else {
          ++res.shrinks;
        }
        // Resharding "comes for free" on reload (§3.4.2), but the pack
        // above is memory-driven; polish with a time rebalance over the
        // new worker count, accounted like the post-pack polish.
        R.rebalancer.emplace(make_rebalancer(R.active));
        const auto rb = run_rebalance(profile, map);
        map = rb.map;
        account_outcome(rb, 1.0, iter, "post_restart");
        balance::OverheadBreakdown polish = rb.overhead;
        polish.profile_s = 0.0;
        res.overhead += polish;
        event_time += polish.total_s();
      }
    }
  }

  // --- execute one iteration on the (possibly rebalanced) map ----------
  auto costs = builder_.build(states, map, mb_scale);
  // A straggling GPU really is slower: stretch its stage's compute by the
  // injector's multiplier so the simulated timeline (and the bubbles the
  // healthy stages suffer waiting on it) reflect the degradation the
  // balancer is routing around.
  if (R.injector && R.injector->any_degradation()) {
    for (int s = 0; s < costs.num_stages(); ++s) {
      const double m = R.injector->multiplier(s, static_cast<int>(iter));
      if (m == 1.0) continue;
      for (int mb = 0; mb < costs.num_microbatches(); ++mb) {
        costs.fwd(s, mb) /= m;
        costs.bwd_input(s, mb) /= m;
        costs.bwd_weight(s, mb) /= m;
      }
    }
  }
  const auto pipe = pipeline::simulate(cfg_.schedule, costs);
  const auto dp_cost = dp_allreduce_cost(map, states);
  iter_time += pipe.makespan_s + dp_cost.exposed_s;
  res.intra_node_dp_bytes +=
      dp_cost.intra_bytes * static_cast<double>(cfg_.sim_stride);
  res.inter_node_dp_bytes +=
      dp_cost.inter_bytes * static_cast<double>(cfg_.sim_stride);

  // Memory accounting (for OOM detection and Fig. 4): every stage is
  // checked against the capacity of the GPU actually hosting it.
  {
    const auto stage_mem = map.stage_loads(mem);
    for (int s = 0; s < map.num_stages(); ++s) {
      const double used = stage_mem[static_cast<std::size_t>(s)];
      res.peak_stage_memory = std::max(res.peak_stage_memory, used);
      if (used > stage_mem_capacity(s)) res.oom = true;
    }
  }

  // Baseline-specific per-iteration overheads.
  if (cfg_.mode == BalancingMode::Egeria && engine_ != nullptr &&
      engine_->is_dynamism_point(iter)) {
    const double oh = dynamic::FreezingEngine::egeria_check_overhead_s(
        model_->num_layers());
    iter_time += oh;
    res.baseline_overhead_s += oh;
  }
  if (cfg_.mode == BalancingMode::Tutel) {
    const double oh = 5e-5;  // adaptive dispatch bookkeeping
    iter_time += oh;
    res.baseline_overhead_s += oh;
  }

  // --- bookkeeping ------------------------------------------------------
  const double step_s =
      iter_time * static_cast<double>(cfg_.sim_stride) + event_time;
  res.total_time_s += step_s;
  // GPU-hours the release gave back (elastic or plain re-pack): every
  // DP replica frees the same (W0 - active) workers for this step —
  // measured against the *starting* footprint, so a fleet job admitted
  // small does not book its whole unexpanded ceiling as savings.
  res.gpu_hours_saved += static_cast<double>(R.initial_workers - R.active) *
                         static_cast<double>(cfg_.data_parallel) * step_s /
                         3600.0;
  R.idleness_stats.add(pipe.avg_idleness());
  R.bubble_stats.add(pipe.bubble_ratio());
  R.workers_stats.add(static_cast<double>(R.active));
  // Work a loss at the *next* boundary would have to re-do: the compute
  // since the last checkpoint (event stalls are not re-done).
  R.since_ckpt_s += iter_time * static_cast<double>(cfg_.sim_stride);

  IterationSample sample;
  sample.iter = iter;
  sample.time_s = iter_time;
  sample.idleness = pipe.avg_idleness();
  sample.bubble_ratio = pipe.bubble_ratio();
  sample.active_workers = R.active;
  sample.compute_fraction =
      engine_ != nullptr ? engine_->compute_fraction(states) : 1.0;
  sample.rebalanced = rebalance_point;
  sample.stall_s = event_time;
  res.samples.push_back(sample);

  if (R.trace) {
    // Stage rows use the map in effect *after* this iteration's events —
    // the map the recorded loads actually ran under.  Concatenating the
    // per-layer arrays across stages reconstructs the full layer vectors
    // regardless of where the boundaries sit.
    const auto stage_s = map.stage_loads(layer_seconds);
    const auto stage_mem = map.stage_loads(mem);
    for (int s = 0; s < map.num_stages(); ++s) {
      const auto si = static_cast<std::size_t>(s);
      telemetry::StageLoadRow row;
      row.iter = iter;
      row.stage = s;
      row.rank = deployment_ ? deployment_->rank(s) : s;
      row.layer_begin = static_cast<std::int64_t>(map.stage_begin(s));
      row.layer_end = static_cast<std::int64_t>(map.stage_end(s));
      row.load_s = stage_s[si];
      row.mem_bytes = stage_mem[si];
      if (cfg_.telemetry.per_layer) {
        row.layer_s.assign(layer_seconds.begin() + row.layer_begin,
                           layer_seconds.begin() + row.layer_end);
        row.layer_mem.assign(mem.begin() + row.layer_begin,
                             mem.begin() + row.layer_end);
      }
      R.trace->write_stage_load(row);
    }
    telemetry::IterationRow irow;
    irow.iter = iter;
    irow.time_s = iter_time;
    irow.event_s = event_time;
    irow.bottleneck_s = *std::max_element(stage_s.begin(), stage_s.end());
    irow.idleness = sample.idleness;
    irow.bubble_ratio = sample.bubble_ratio;
    irow.active_workers = R.active;
    irow.compute_fraction = sample.compute_fraction;
    irow.rebalanced = rebalance_point;
    irow.stall_s = iter_restart_stall;
    R.trace->write_iteration(irow);
  }

  R.iter += cfg_.sim_stride;
  return step_s;
}

SessionResult TrainingSession::finish() {
  DYNMO_CHECK(run_ != nullptr, "finish() before start()");
  DYNMO_CHECK(done(), "finish() before the configured iterations ran");
  auto& R = *run_;
  if (R.trace) R.trace->finalize();

  SessionResult res = std::move(R.res);
  // A failed run ended early: throughput covers what actually completed.
  const double iters = static_cast<double>(res.failed ? R.iter
                                                      : cfg_.iterations);
  res.tokens_per_sec =
      res.total_time_s > 0.0
          ? tokens_per_iteration() * iters / res.total_time_s
          : 0.0;
  res.avg_idleness = R.idleness_stats.mean();
  res.avg_bubble_ratio = R.bubble_stats.mean();
  res.avg_active_workers = R.workers_stats.mean();
  res.overhead_fraction =
      res.overhead.total_s() / std::max(1e-12, res.total_time_s);
  res.final_map = R.map;
  run_.reset();
  return res;
}

SessionResult TrainingSession::run() {
  start();
  while (!done()) step();
  return finish();
}

}  // namespace dynmo::runtime
