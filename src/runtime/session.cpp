#include "runtime/session.hpp"

#include <algorithm>
#include <cmath>

#include "cluster/placement.hpp"
#include "core/error.hpp"
#include "core/log.hpp"
#include "core/rng.hpp"
#include "core/stats.hpp"
#include "dynamic/freezing.hpp"

namespace dynmo::runtime {

const char* to_string(BalancingMode m) {
  switch (m) {
    case BalancingMode::StaticUniform: return "static_megatron";
    case BalancingMode::StaticParam: return "static_deepspeed";
    case BalancingMode::Egeria: return "egeria";
    case BalancingMode::Tutel: return "tutel";
    case BalancingMode::DynMo: return "dynmo";
  }
  return "?";
}

TrainingSession::TrainingSession(const model::ModelDesc& model,
                                 SessionConfig cfg,
                                 dynamic::DynamismEngine* engine)
    : model_(&model), cfg_(cfg), engine_(engine),
      layer_costs_(cfg.gpu),
      net_(cfg.topology ? cfg.topology->make_cost_model(cfg.net)
                        : comm::CostModel(cfg.net)),
      builder_(model, layer_costs_, net_,
               pipeline::CostBuilderConfig{cfg.micro_batch,
                                           cfg.num_microbatches, 0}) {
  DYNMO_CHECK(cfg.pipeline_stages > 0, "need at least one stage");
  DYNMO_CHECK(!cfg.topology ||
                  cfg.topology->num_ranks() >= cfg.pipeline_stages,
              "topology has " << cfg.topology->num_ranks()
                              << " ranks, pipeline needs "
                              << cfg.pipeline_stages);
  DYNMO_CHECK(cfg.iterations > 0, "need at least one iteration");
  DYNMO_CHECK(cfg.sim_stride > 0, "stride must be positive");
  DYNMO_CHECK(static_cast<std::size_t>(cfg.pipeline_stages) <=
                  model.num_layers(),
              "more stages than layers");
}

double TrainingSession::tokens_per_iteration() const {
  const std::size_t seq = model_->layers.front().seq_len;
  return static_cast<double>(cfg_.micro_batch) *
         static_cast<double>(cfg_.num_microbatches) *
         static_cast<double>(seq) * static_cast<double>(cfg_.data_parallel);
}

std::int64_t TrainingSession::effective_rebalance_interval() const {
  if (cfg_.rebalance_interval > 0) return cfg_.rebalance_interval;
  if (engine_ != nullptr) return engine_->recommended_rebalance_interval();
  return 0;
}

double TrainingSession::dp_allreduce_exposed_s(
    const pipeline::StageMap& map,
    std::span<const model::LayerState> states) const {
  if (cfg_.data_parallel <= 1) return 0.0;
  // Gradient volume of the busiest stage gates the DP allreduce; frozen
  // layers drop out of the exchange entirely (Egeria semantics).
  double worst_bytes = 0.0;
  for (int s = 0; s < map.num_stages(); ++s) {
    double bytes = 0.0;
    for (std::size_t l = map.stage_begin(s); l < map.stage_end(s); ++l) {
      if (states[l].frozen) continue;
      bytes += static_cast<double>(model_->layers[l].params) * 2.0 *
               std::clamp(states[l].weight_density, 0.0, 1.0);
    }
    worst_bytes = std::max(worst_bytes, bytes);
  }
  const double full = net_.allreduce_time(
      cfg_.data_parallel, static_cast<std::size_t>(worst_bytes),
      /*crosses_nodes=*/true);
  return full * (1.0 - std::clamp(cfg_.dp_overlap, 0.0, 1.0));
}

void TrainingSession::apply_tutel_mitigation(
    std::span<model::LayerState> states) const {
  // Tutel's adaptive parallelism + 2D all_to_all remove part of the routing
  // hotspot without moving layers: it reclaims roughly half of the skew
  // (emulation; Hwang et al. report similar bubble reductions).
  constexpr double kSkewRetained = 0.55;
  for (auto& s : states) {
    s.moe_load = 1.0 + (s.moe_load - 1.0) * kSkewRetained;
    s.token_fraction = 1.0 + (s.token_fraction - 1.0) * kSkewRetained;
  }
}

SessionResult TrainingSession::run() {
  const int S0 = cfg_.pipeline_stages;
  const double mem_capacity = cfg_.gpu.mem_capacity;

  std::vector<model::LayerState> states(model_->num_layers());

  // Initial static placement.
  pipeline::StageMap map;
  switch (cfg_.mode) {
    case BalancingMode::StaticParam: {
      std::vector<double> params;
      params.reserve(model_->num_layers());
      for (const auto& l : model_->layers) {
        params.push_back(static_cast<double>(l.params));
      }
      map = pipeline::StageMap::greedy_by_weight(params, S0);
      break;
    }
    default:
      map = pipeline::StageMap::uniform(model_->num_layers(), S0);
      break;
  }
  int active = S0;

  balance::RebalanceConfig rb_cfg{cfg_.algorithm, cfg_.balance_by,
                                  mem_capacity, 0.0, 2e-6, 10e-6};
  if (cfg_.topology) {
    // Topology-aware placement: adjacent stages sit on the fastest links,
    // and migrations are priced over the ranks they actually connect.
    rb_cfg.stage_to_rank =
        cluster::place_topology_aware(*cfg_.topology, S0).stage_to_rank;
  }
  balance::Rebalancer rebalancer(rb_cfg, net_);

  const std::int64_t interval = effective_rebalance_interval();
  Rng noise_rng(hash_mix(cfg_.seed, 0x7e55));

  SessionResult res;
  RunningStats idleness_stats;
  RunningStats bubble_stats;
  RunningStats workers_stats;

  for (std::int64_t iter = 0; iter < cfg_.iterations;
       iter += cfg_.sim_stride) {
    if (engine_ != nullptr) engine_->step(iter, states);
    if (cfg_.mode == BalancingMode::Tutel) apply_tutel_mitigation(states);

    const auto mb_scale =
        engine_ != nullptr ? engine_->microbatch_scale(iter)
                           : pipeline::MicrobatchScaleFn{};

    // Per-real-iteration compute time (repeated sim_stride times) vs.
    // one-off event time (rebalance decisions, migrations) — the latter is
    // charged per *event*, scaled by how many events the stride window
    // covers.
    double iter_time = 0.0;
    double event_time = 0.0;
    const double events_per_window =
        (interval > 0 && interval <= cfg_.sim_stride)
            ? static_cast<double>(cfg_.sim_stride) /
                  static_cast<double>(interval)
            : 1.0;

    const auto mem = builder_.layer_memory_bytes(states, map);

    // --- DynMo: rebalance / re-pack --------------------------------------
    // Rebalancing happens *inside* the iteration: for every-iteration
    // cadences (MoE / MoD / sparse attention) the forward pass measures the
    // routing loads and the backward pass migrates layers accordingly
    // (§3.3.1), so the new map takes effect for the very loads that were
    // measured.  For slow cadences (pruning / freezing / early exit) this
    // merely skips the single imbalanced profiling iteration, which is
    // negligible at those intervals.
    if (cfg_.mode == BalancingMode::DynMo && interval > 0 &&
        iter % interval == 0) {
      balance::LayerProfile profile;
      profile.time_s = builder_.layer_total_seconds(states);
      profile.memory_bytes = mem;
      profile.params.reserve(model_->num_layers());
      for (const auto& l : model_->layers) {
        profile.params.push_back(static_cast<double>(l.params));
      }
      balance::add_measurement_noise(profile, noise_rng);

      const auto outcome = rebalancer.rebalance(profile, map);
      map = outcome.map;
      balance::OverheadBreakdown scaled = outcome.overhead;
      // Every-iteration rebalancing couples migration with backprop; only
      // the non-overlapped remainder is exposed.
      if (interval == 1) {
        scaled.migrate_s *=
            1.0 - std::clamp(cfg_.migration_overlap, 0.0, 1.0);
      }
      scaled.profile_s *= events_per_window;
      scaled.decide_s *= events_per_window;
      scaled.migrate_s *= events_per_window;
      res.overhead += scaled;
      event_time += scaled.total_s();
      ++res.rebalance_count;

      if (cfg_.repack && iter > 0 && iter % cfg_.repack_interval == 0) {
        int target = cfg_.repack_target_workers;
        if (target <= 0 &&
            cfg_.repack_policy ==
                SessionConfig::RepackPolicy::ThroughputPreserving) {
          // Release workers only while the *optimal contiguous bottleneck*
          // at the reduced count stays within tolerance of what the full
          // worker count could achieve on today's loads.  The reference is
          // recomputed from the current profile but always at the original
          // stage count, so repeated re-packs cannot ratchet the pipeline
          // slower and slower.
          constexpr double kTolerance = 1.05;
          const double ref_bottleneck =
              balance::PartitionBalancer::optimal_bottleneck(profile.time_s,
                                                             S0);
          target = active;
          for (int a = 1; a <= active; ++a) {
            if (balance::PartitionBalancer::optimal_bottleneck(
                    profile.time_s, a) <= ref_bottleneck * kTolerance) {
              target = a;
              break;
            }
          }
        }
        repack::ContiguousRepackRequest req;
        req.memory_bytes = mem;
        req.mem_capacity = mem_capacity;
        req.target_workers = target;
        const auto rp = repack::repack_contiguous(req, active);
        if (!rp.feasible && cfg_.repack_target_workers > 0) {
          res.oom = true;  // forced pack does not fit (Fig. 4 OOM cells)
        } else if (rp.feasible && rp.active_workers < active) {
          // Adopt the consolidated map: trailing stages become empty and
          // their workers are released; the pipeline continues on a
          // compacted map over the survivors.
          std::vector<std::size_t> b(
              rp.map.boundaries().begin(),
              rp.map.boundaries().begin() + rp.active_workers + 1);
          const auto packed = pipeline::StageMap::from_boundaries(b);
          const auto migration = balance::plan_migration(map, packed, mem);
          const double migrate_s =
              rb_cfg.stage_to_rank.empty()
                  ? migration.estimated_time_s(net_)
                  : migration.estimated_time_s(net_, rb_cfg.stage_to_rank);
          event_time += migrate_s;
          res.overhead.migrate_s += migrate_s;
          map = packed;
          active = rp.active_workers;
          ++res.repack_count;
          // Rebalance within the survivors right away.
          const auto rb = rebalancer.rebalance(profile, map);
          map = rb.map;
        }
      }
    }

    // --- execute one iteration on the (possibly rebalanced) map ----------
    const auto costs = builder_.build(states, map, mb_scale);
    const auto pipe = pipeline::simulate(cfg_.schedule, costs);
    iter_time += pipe.makespan_s + dp_allreduce_exposed_s(map, states);

    // Memory accounting (for OOM detection and Fig. 4).
    {
      const auto stage_mem = map.stage_loads(mem);
      const double peak =
          *std::max_element(stage_mem.begin(), stage_mem.end());
      res.peak_stage_memory = std::max(res.peak_stage_memory, peak);
      if (peak > mem_capacity) res.oom = true;
    }

    // Baseline-specific per-iteration overheads.
    if (cfg_.mode == BalancingMode::Egeria && engine_ != nullptr &&
        engine_->is_dynamism_point(iter)) {
      const double oh = dynamic::FreezingEngine::egeria_check_overhead_s(
          model_->num_layers());
      iter_time += oh;
      res.baseline_overhead_s += oh;
    }
    if (cfg_.mode == BalancingMode::Tutel) {
      const double oh = 5e-5;  // adaptive dispatch bookkeeping
      iter_time += oh;
      res.baseline_overhead_s += oh;
    }

    // --- bookkeeping ------------------------------------------------------
    res.total_time_s +=
        iter_time * static_cast<double>(cfg_.sim_stride) + event_time;
    idleness_stats.add(pipe.avg_idleness());
    bubble_stats.add(pipe.bubble_ratio());
    workers_stats.add(static_cast<double>(active));

    IterationSample sample;
    sample.iter = iter;
    sample.time_s = iter_time;
    sample.idleness = pipe.avg_idleness();
    sample.bubble_ratio = pipe.bubble_ratio();
    sample.active_workers = active;
    sample.compute_fraction =
        engine_ != nullptr ? engine_->compute_fraction(states) : 1.0;
    res.samples.push_back(sample);
  }

  const double iters = static_cast<double>(cfg_.iterations);
  res.tokens_per_sec = tokens_per_iteration() * iters / res.total_time_s;
  res.avg_idleness = idleness_stats.mean();
  res.avg_bubble_ratio = bubble_stats.mean();
  res.avg_active_workers = workers_stats.mean();
  res.overhead_fraction =
      res.overhead.total_s() / std::max(1e-12, res.total_time_s);
  res.final_map = map;
  return res;
}

}  // namespace dynmo::runtime
