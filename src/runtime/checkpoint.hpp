// Checkpointing, and checkpoint-coordinated re-packing (paper §3.4.2).
//
// "Re-packing can be coordinated with checkpointing. ... By combining
// re-packing with a checkpoint restart, the implementation is simplified
// since a new NCCL communicator is already created during the restart.
// Moreover, because the model is reloaded and resharded among the workers
// during checkpoint recovery, there is no additional overhead for
// resharding the model to a new set of workers."
//
// A Checkpoint captures everything needed to resume training on a
// *different* worker count: iteration, stage map, per-layer dynamic state,
// and (for the threaded runtime) the layer weights.  The binary format is
// a tagged, versioned stream with a trailing integrity checksum.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "model/layer.hpp"
#include "pipeline/stage_map.hpp"
#include "tensor/tensor.hpp"

namespace dynmo::runtime {

struct Checkpoint {
  static constexpr std::uint32_t kMagic = 0x44594e4d;  // "DYNM"
  static constexpr std::uint32_t kVersion = 1;

  std::int64_t iteration = 0;
  pipeline::StageMap stage_map;
  std::vector<model::LayerState> layer_states;
  /// Layer weights (threaded runtime); may be empty for simulated sessions.
  std::map<std::uint64_t, tensor::Tensor> weights;

  /// Serialize to a byte buffer (stable across platforms of equal
  /// endianness; includes an integrity checksum).
  std::vector<std::byte> serialize() const;
  /// Parse; throws dynmo::Error on corruption / version mismatch.
  static Checkpoint deserialize(std::span<const std::byte> bytes);

  /// Convenience file I/O.
  void save(const std::string& path) const;
  static Checkpoint load(const std::string& path);

  bool operator==(const Checkpoint& other) const;
};

/// Re-shard a checkpoint's stage map for a new worker count during restart
/// (the "reloaded and resharded" path): layers are re-partitioned by the
/// given per-layer weights onto `new_workers` stages.  The checkpoint's
/// dynamic layer states and weights are preserved untouched.
Checkpoint reshard_for_restart(Checkpoint ckpt, int new_workers,
                               std::span<const double> balance_weights);

}  // namespace dynmo::runtime
