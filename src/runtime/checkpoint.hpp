// Checkpointing, and checkpoint-coordinated re-packing (paper §3.4.2).
//
// "Re-packing can be coordinated with checkpointing. ... By combining
// re-packing with a checkpoint restart, the implementation is simplified
// since a new NCCL communicator is already created during the restart.
// Moreover, because the model is reloaded and resharded among the workers
// during checkpoint recovery, there is no additional overhead for
// resharding the model to a new set of workers."
//
// A Checkpoint captures everything needed to resume training on a
// *different* worker count: iteration, stage map, per-layer dynamic state,
// and (for the threaded runtime) the layer weights.  The binary format is
// a tagged, versioned stream with a trailing integrity checksum; the full
// byte layout is documented in docs/RUNTIME.md.  Every field is framed as
// [u16 tag][u64 size][payload], so deserialize() can both name the field a
// truncated/corrupt stream died in and skip fields it does not know
// (forward compatibility within a version).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "model/layer.hpp"
#include "pipeline/stage_map.hpp"
#include "tensor/tensor.hpp"

namespace dynmo::runtime {

/// Field tags of the checkpoint stream (docs/RUNTIME.md byte-layout table).
enum class CheckpointField : std::uint16_t {
  Iteration = 1,
  StageMap = 2,
  LayerStates = 3,
  Weights = 4,
};

const char* to_string(CheckpointField f);

struct Checkpoint {
  static constexpr std::uint32_t kMagic = 0x44594e4d;  // "DYNM"
  /// v2: tagged [tag][size][payload] field framing (v1 was positional and
  /// is rejected — its streams carry no field boundaries to validate).
  static constexpr std::uint32_t kVersion = 2;

  std::int64_t iteration = 0;
  pipeline::StageMap stage_map;
  std::vector<model::LayerState> layer_states;
  /// Layer weights (threaded runtime); may be empty for simulated sessions.
  std::map<std::uint64_t, tensor::Tensor> weights;

  /// Serialize to a byte buffer (stable across platforms of equal
  /// endianness; includes an integrity checksum).
  std::vector<std::byte> serialize() const;
  /// Parse; throws dynmo::Error on corruption / version mismatch.  Error
  /// messages are specific (docs/RUNTIME.md "Failure reporting"): a
  /// structural failure names the field and the byte offset it occurred
  /// at; a stream that parses structurally but fails the integrity check
  /// reports both checksum values.
  static Checkpoint deserialize(std::span<const std::byte> bytes);

  /// Convenience file I/O.
  void save(const std::string& path) const;
  static Checkpoint load(const std::string& path);

  bool operator==(const Checkpoint& other) const;
};

/// Re-shard a checkpoint's stage map for a new worker count during restart
/// (the "reloaded and resharded" path): layers are re-partitioned by the
/// given per-layer weights onto `new_workers` stages.  The checkpoint's
/// dynamic layer states and weights are preserved untouched.  Both shrink
/// (new_workers < current) and expand (new_workers > current) restarts go
/// through here — see runtime::ElasticController for the decision side.
Checkpoint reshard_for_restart(Checkpoint ckpt, int new_workers,
                               std::span<const double> balance_weights);

}  // namespace dynmo::runtime
