#include "runtime/elastic.hpp"

#include <algorithm>
#include <cmath>

#include "balance/partition.hpp"
#include "core/error.hpp"
#include "core/log.hpp"
#include "repack/repack.hpp"

namespace dynmo::runtime {

const char* to_string(ElasticAction a) {
  switch (a) {
    case ElasticAction::Hold: return "hold";
    case ElasticAction::Shrink: return "shrink";
    case ElasticAction::Expand: return "expand";
  }
  return "?";
}

ElasticController::ElasticController(ElasticConfig cfg, int initial_workers,
                                     BootstrapLinkFn bootstrap_link)
    : cfg_(std::move(cfg)),
      max_workers_(cfg_.max_workers > 0 ? cfg_.max_workers
                                        : initial_workers),
      bootstrap_link_(std::move(bootstrap_link)),
      owned_cluster_(cfg_.cluster == nullptr
                         ? std::optional<repack::MockEckCluster>(
                               std::in_place, initial_workers)
                         : std::nullopt),
      cluster_(cfg_.cluster != nullptr ? cfg_.cluster : &*owned_cluster_),
      job_(cluster_, cfg_.pod, initial_workers) {
  DYNMO_CHECK(initial_workers > 0, "need at least one worker");
  DYNMO_CHECK(max_workers_ >= initial_workers,
              "max_workers " << max_workers_ << " below the initial "
                             << initial_workers << " workers");
  DYNMO_CHECK(cfg_.min_workers >= 1 && cfg_.min_workers <= initial_workers,
              "min_workers " << cfg_.min_workers << " outside [1, "
                             << initial_workers << "]");
  DYNMO_CHECK(cfg_.shrink_tolerance >= 1.0,
              "shrink_tolerance is a slowdown bound, must be >= 1");
  DYNMO_CHECK(static_cast<bool>(bootstrap_link_),
              "elastic controller needs a bootstrap link resolver");
}

RestartStall ElasticController::restart_stall(
    const pipeline::StageMap& before, const pipeline::StageMap& after,
    std::span<const double> state_bytes) const {
  const auto busiest_shard = [&](const pipeline::StageMap& m) {
    const auto shards = m.stage_loads(state_bytes);
    return shards.empty() ? 0.0
                          : *std::max_element(shards.begin(), shards.end());
  };
  // Every worker writes/reads its own shard concurrently; the busiest
  // shard gates each phase (docs/COST_MODEL.md "Restart-stall pricing").
  RestartStall stall;
  stall.alpha_s = cfg_.restart_alpha_s;
  stall.ckpt_write_s = busiest_shard(before) / cfg_.checkpoint_bw;
  stall.ckpt_read_s = busiest_shard(after) / cfg_.checkpoint_bw;
  const int workers = std::max(1, after.num_stages());
  const int steps = static_cast<int>(
      std::ceil(std::log2(static_cast<double>(workers))));
  const comm::LinkParams link = bootstrap_link_(workers);
  stall.bootstrap_s =
      static_cast<double>(steps) *
      (link.alpha_s +
       static_cast<double>(cfg_.bootstrap_bytes) / link.beta_bytes_s);
  return stall;
}

ElasticDecision ElasticController::decide(
    const pipeline::StageMap& map, std::span<const double> layer_time_s,
    std::span<const double> state_bytes, double mem_capacity,
    int active_workers) {
  DYNMO_CHECK(active_workers >= 1 && active_workers <= max_workers_,
              "active worker count " << active_workers << " outside [1, "
                                     << max_workers_ << "]");
  DYNMO_CHECK(layer_time_s.size() == map.num_layers() &&
                  state_bytes.size() == map.num_layers(),
              "per-layer vectors must match the map's layer count");

  ElasticDecision d;
  const auto loads = map.stage_loads(layer_time_s);
  const double bottleneck =
      loads.empty() ? 0.0 : *std::max_element(loads.begin(), loads.end());
  if (bottleneck <= 0.0) return d;
  const double window = cfg_.payoff_window_iters;

  repack::ContiguousRepackRequest req;
  req.memory_bytes.assign(state_bytes.begin(), state_bytes.end());
  req.mem_capacity = mem_capacity;

  // --- shrink: the ThroughputPreserving rule, memory-clamped -------------
  // The reference is the optimal bottleneck at the *full* worker count on
  // today's loads, so repeated shrinks cannot ratchet the pipeline slower.
  const double ref =
      balance::PartitionBalancer::optimal_bottleneck(layer_time_s,
                                                     max_workers_);
  int target = active_workers;
  for (int a = cfg_.min_workers; a < active_workers; ++a) {
    if (balance::PartitionBalancer::optimal_bottleneck(layer_time_s, a) <=
        ref * cfg_.shrink_tolerance) {
      target = a;
      break;
    }
  }
  if (target < active_workers) {
    // Clamp to the memory-minimal worker count (target_workers = 0 packs
    // as tight as capacity allows).
    req.target_workers = 0;
    const auto mem_min = repack::repack_contiguous(req, active_workers);
    if (mem_min.feasible) {
      target = std::max(target, mem_min.active_workers);
    } else {
      target = active_workers;  // cannot pack at all
    }
  }
  if (target < active_workers) {
    req.target_workers = target;
    const auto packed = repack::repack_contiguous(req, target);
    DYNMO_CHECK(packed.feasible, "memory-clamped pack must be feasible");
    d.target_workers = target;
    d.stall = restart_stall(map, packed.map, state_bytes);
    d.restart_stall_s = d.stall.total_s();
    // Freed GPU-time per iteration must amortize stalling all current
    // workers for the restart — the re-pack payoff rule with the restart
    // stall in place of the migration wall-clock.
    d.projected_gain_s =
        static_cast<double>(active_workers - target) * bottleneck;
    if (window > 0.0 &&
        d.projected_gain_s * window <
            d.restart_stall_s * static_cast<double>(active_workers)) {
      d.rejected_by_payoff = true;
      return d;
    }
    d.action = ElasticAction::Shrink;
    return d;
  }

  // --- expand: reclaim freed capacity when the gain prices in ------------
  if (active_workers < max_workers_) {
    const int free = cluster_->free_gpus();
    if (free > 0) {
      const int grown = std::min(max_workers_, active_workers + free);
      const double gain =
          bottleneck -
          balance::PartitionBalancer::optimal_bottleneck(layer_time_s, grown);
      if (gain >= cfg_.expand_min_gain * bottleneck) {
        // The post-restart map is the balanced partition at the grown
        // count — exactly what reshard-on-reload produces.
        balance::PartitionRequest preq;
        preq.weights.assign(layer_time_s.begin(), layer_time_s.end());
        preq.num_stages = grown;
        const auto balanced = balance::PartitionBalancer{}.balance(preq);
        d.target_workers = grown;
        d.projected_gain_s = gain;
        d.stall = restart_stall(map, balanced.map, state_bytes);
        d.restart_stall_s = d.stall.total_s();
        // The migration payoff rule verbatim: per-iteration gain times the
        // window must cover the exposed (restart) cost.
        if (window > 0.0 && gain * window < d.restart_stall_s) {
          d.rejected_by_payoff = true;
          return d;
        }
        d.action = ElasticAction::Expand;
        return d;
      }
    }
  }
  return d;
}

bool ElasticController::commit(const ElasticDecision& d) {
  if (d.action == ElasticAction::Hold) return true;
  DYNMO_CHECK(d.target_workers >= cfg_.min_workers &&
                  d.target_workers <= max_workers_,
              "target worker count " << d.target_workers << " outside ["
                                     << cfg_.min_workers << ", "
                                     << max_workers_ << "]");
  const bool ok = job_.resize_gpu_claim(d.target_workers);
  if (!ok) {
    // Conflict: another pending job raced us to the freed capacity (or
    // the PATCH was malformed).  The runtime stays on the current map.
    DYNMO_LOG(Warn) << "elastic " << to_string(d.action) << " to "
                    << d.target_workers << " workers rejected by the "
                    << "control plane";
  }
  return ok;
}

}  // namespace dynmo::runtime
