#include "runtime/checkpoint.hpp"

#include <cstring>
#include <fstream>

#include "balance/partition.hpp"
#include "comm/message.hpp"
#include "core/error.hpp"
#include "core/rng.hpp"

namespace dynmo::runtime {

namespace {

std::uint64_t buffer_checksum(std::span<const std::byte> bytes) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    h = hash_mix(h, static_cast<std::uint8_t>(bytes[i]), i);
  }
  return h;
}

void pack_layer_state(comm::Packer& p, const model::LayerState& s) {
  p.put(s.weight_density);
  p.put(static_cast<std::uint8_t>(s.frozen ? 1 : 0));
  p.put(s.attn_density);
  p.put(s.token_fraction);
  p.put(s.moe_load);
  p.put(s.compute_scale);
  p.put(static_cast<std::uint8_t>(s.spmm_backend));
}

/// Wire size of one packed LayerState (pack_layer_state above): five f64
/// fields plus the two u8 flags.
constexpr std::size_t kPackedLayerStateBytes = 5 * sizeof(double) + 2;

model::LayerState unpack_layer_state(comm::Unpacker& u) {
  model::LayerState s;
  s.weight_density = u.get<double>();
  s.frozen = u.get<std::uint8_t>() != 0;
  s.attn_density = u.get<double>();
  s.token_fraction = u.get<double>();
  s.moe_load = u.get<double>();
  s.compute_scale = u.get<double>();
  s.spmm_backend = static_cast<hw::SpmmBackend>(u.get<std::uint8_t>());
  return s;
}

/// Frame one field: [u16 tag][u64 size][payload bytes].
void put_field(comm::Packer& p, CheckpointField tag, comm::Packer payload) {
  p.put(static_cast<std::uint16_t>(tag));
  const auto bytes = payload.take();
  p.put_span(std::span<const std::byte>(bytes));
}

/// Parse one field payload, converting any structural failure (overrun,
/// shape mismatch) into an error that names the field and the offset —
/// `field_off` is where the field's frame starts in the whole stream,
/// `u.pos()` how far into the payload the parse got.
template <typename Fn>
void parse_field(CheckpointField tag, std::size_t field_off,
                 std::span<const std::byte> payload, Fn&& fn) {
  comm::Unpacker u(payload);
  try {
    fn(u);
    DYNMO_CHECK(u.exhausted(), "field has " << u.remaining()
                                            << " trailing bytes");
  } catch (const Error& e) {
    throw Error(std::string("checkpoint field '") + to_string(tag) +
                "' invalid at stream offset " + std::to_string(field_off) +
                " (+" + std::to_string(u.pos()) +
                " into the field): " + e.what());
  }
}

}  // namespace

const char* to_string(CheckpointField f) {
  switch (f) {
    case CheckpointField::Iteration: return "iteration";
    case CheckpointField::StageMap: return "stage_map";
    case CheckpointField::LayerStates: return "layer_states";
    case CheckpointField::Weights: return "weights";
  }
  return "?";
}

std::vector<std::byte> Checkpoint::serialize() const {
  comm::Packer p;
  p.put(kMagic);
  p.put(kVersion);

  {
    comm::Packer f;
    f.put(iteration);
    put_field(p, CheckpointField::Iteration, std::move(f));
  }
  {
    comm::Packer f;
    const auto& b = stage_map.boundaries();
    f.put_vector(std::vector<std::uint64_t>(b.begin(), b.end()));
    put_field(p, CheckpointField::StageMap, std::move(f));
  }
  {
    comm::Packer f;
    f.put<std::uint64_t>(layer_states.size());
    for (const auto& s : layer_states) pack_layer_state(f, s);
    put_field(p, CheckpointField::LayerStates, std::move(f));
  }
  {
    comm::Packer f;
    f.put<std::uint64_t>(weights.size());
    for (const auto& [layer, w] : weights) {
      f.put(layer);
      f.put<std::uint64_t>(w.rows());
      f.put<std::uint64_t>(w.cols());
      f.put_span(w.data());
    }
    put_field(p, CheckpointField::Weights, std::move(f));
  }

  auto body = p.take();
  const std::uint64_t checksum = buffer_checksum(body);
  comm::Packer tail;
  tail.put(checksum);
  const auto tail_bytes = tail.take();
  body.insert(body.end(), tail_bytes.begin(), tail_bytes.end());
  return body;
}

Checkpoint Checkpoint::deserialize(std::span<const std::byte> bytes) {
  // Header (magic+version) + checksum trailer is the minimum stream.
  constexpr std::size_t kMinBytes = 2 * sizeof(std::uint32_t) +
                                    sizeof(std::uint64_t);
  DYNMO_CHECK(bytes.size() >= kMinBytes,
              "checkpoint truncated: " << bytes.size() << " bytes, header + "
              << "checksum need " << kMinBytes);
  const auto body = bytes.first(bytes.size() - sizeof(std::uint64_t));

  // Structure first, integrity second: a truncated stream then fails with
  // the *field* it died in, and only structurally-sound streams reach the
  // checksum comparison (which then indicts bit corruption specifically).
  comm::Unpacker u(body);
  const auto magic = u.get<std::uint32_t>();
  DYNMO_CHECK(magic == kMagic,
              "not a DynMo checkpoint (magic 0x" << std::hex << magic
                                                 << ", want 0x" << kMagic
                                                 << ")");
  const auto version = u.get<std::uint32_t>();
  DYNMO_CHECK(version == kVersion, "unsupported checkpoint version "
                                       << version << " (this build reads "
                                       << kVersion << ")");

  Checkpoint ckpt;
  while (!u.exhausted()) {
    const std::size_t field_off = u.pos();
    std::uint16_t raw_tag = 0;
    std::vector<std::byte> payload;
    try {
      raw_tag = u.get<std::uint16_t>();
      payload = u.get_vector<std::byte>();
    } catch (const Error&) {
      throw Error("checkpoint field frame truncated at stream offset " +
                  std::to_string(field_off) + " (" +
                  std::to_string(body.size() - field_off) +
                  " bytes left of a " + std::to_string(body.size()) +
                  "-byte body)");
    }
    switch (static_cast<CheckpointField>(raw_tag)) {
      case CheckpointField::Iteration:
        parse_field(CheckpointField::Iteration, field_off, payload,
                    [&](comm::Unpacker& f) {
                      ckpt.iteration = f.get<std::int64_t>();
                    });
        break;
      case CheckpointField::StageMap:
        parse_field(CheckpointField::StageMap, field_off, payload,
                    [&](comm::Unpacker& f) {
                      const auto b64 = f.get_vector<std::uint64_t>();
                      ckpt.stage_map = pipeline::StageMap::from_boundaries(
                          std::vector<std::size_t>(b64.begin(), b64.end()));
                    });
        break;
      case CheckpointField::LayerStates:
        parse_field(CheckpointField::LayerStates, field_off, payload,
                    [&](comm::Unpacker& f) {
                      const auto n = f.get<std::uint64_t>();
                      // Bound the count by the payload *before* reserve():
                      // a corrupted count must surface as this Error, not
                      // as a std::length_error / huge allocation.
                      DYNMO_CHECK(
                          n <= f.remaining() / kPackedLayerStateBytes,
                          "state count " << n << " exceeds the "
                                         << f.remaining()
                                         << " payload bytes left");
                      ckpt.layer_states.clear();
                      ckpt.layer_states.reserve(n);
                      for (std::uint64_t i = 0; i < n; ++i) {
                        ckpt.layer_states.push_back(unpack_layer_state(f));
                      }
                    });
        break;
      case CheckpointField::Weights:
        parse_field(CheckpointField::Weights, field_off, payload,
                    [&](comm::Unpacker& f) {
                      const auto n = f.get<std::uint64_t>();
                      for (std::uint64_t i = 0; i < n; ++i) {
                        const auto layer = f.get<std::uint64_t>();
                        const auto rows = f.get<std::uint64_t>();
                        const auto cols = f.get<std::uint64_t>();
                        const auto data = f.get_vector<float>();
                        // Divide instead of multiplying rows * cols: a
                        // corrupted shape whose product wraps past 2^64
                        // must fail here, not reach the Tensor allocator.
                        const bool shape_ok =
                            (rows == 0 || cols == 0)
                                ? data.empty()
                                : data.size() / rows == cols &&
                                      data.size() % rows == 0;
                        DYNMO_CHECK(shape_ok,
                                    "layer " << layer << " weight shape "
                                             << rows << "x" << cols
                                             << " != " << data.size()
                                             << " floats");
                        tensor::Tensor t(rows, cols);
                        std::copy(data.begin(), data.end(),
                                  t.data().begin());
                        ckpt.weights.insert_or_assign(layer, std::move(t));
                      }
                    });
        break;
      default:
        // Unknown tag within a known version: a future writer added a
        // field.  The frame carries its size, so skip it (the checksum
        // still covers it).
        break;
    }
  }

  {
    comm::Unpacker tail(bytes.subspan(body.size()));
    const auto stored = tail.get<std::uint64_t>();
    const auto computed = buffer_checksum(body);
    DYNMO_CHECK(stored == computed,
                "checkpoint integrity checksum mismatch (stored 0x"
                    << std::hex << stored << ", computed 0x" << computed
                    << "): bit corruption in a structurally valid stream");
  }
  return ckpt;
}

void Checkpoint::save(const std::string& path) const {
  const auto bytes = serialize();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  DYNMO_CHECK(out.good(), "cannot open checkpoint file " << path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  DYNMO_CHECK(out.good(), "short write to " << path);
}

Checkpoint Checkpoint::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  DYNMO_CHECK(in.good(), "cannot open checkpoint file " << path);
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  std::vector<std::byte> bytes(size);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(size));
  DYNMO_CHECK(in.good(), "short read from " << path);
  return deserialize(bytes);
}

bool Checkpoint::operator==(const Checkpoint& other) const {
  if (iteration != other.iteration || stage_map != other.stage_map ||
      layer_states.size() != other.layer_states.size() ||
      weights.size() != other.weights.size()) {
    return false;
  }
  for (std::size_t i = 0; i < layer_states.size(); ++i) {
    const auto& a = layer_states[i];
    const auto& b = other.layer_states[i];
    if (a.weight_density != b.weight_density || a.frozen != b.frozen ||
        a.attn_density != b.attn_density ||
        a.token_fraction != b.token_fraction || a.moe_load != b.moe_load ||
        a.compute_scale != b.compute_scale ||
        a.spmm_backend != b.spmm_backend) {
      return false;
    }
  }
  for (const auto& [layer, w] : weights) {
    const auto it = other.weights.find(layer);
    if (it == other.weights.end() || !it->second.same_shape(w)) return false;
    const auto a = w.data();
    const auto b = it->second.data();
    if (!std::equal(a.begin(), a.end(), b.begin())) return false;
  }
  return true;
}

Checkpoint reshard_for_restart(Checkpoint ckpt, int new_workers,
                               std::span<const double> balance_weights) {
  DYNMO_CHECK(new_workers > 0, "need at least one worker");
  DYNMO_CHECK(balance_weights.size() == ckpt.stage_map.num_layers(),
              "balance weight count mismatch");
  balance::PartitionRequest req;
  req.weights.assign(balance_weights.begin(), balance_weights.end());
  req.num_stages = new_workers;
  ckpt.stage_map = balance::PartitionBalancer{}.balance(req).map;
  return ckpt;
}

}  // namespace dynmo::runtime
