#include "runtime/checkpoint.hpp"

#include <cstring>
#include <fstream>

#include "balance/partition.hpp"
#include "comm/message.hpp"
#include "core/error.hpp"
#include "core/rng.hpp"

namespace dynmo::runtime {

namespace {

std::uint64_t buffer_checksum(std::span<const std::byte> bytes) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    h = hash_mix(h, static_cast<std::uint8_t>(bytes[i]), i);
  }
  return h;
}

void pack_layer_state(comm::Packer& p, const model::LayerState& s) {
  p.put(s.weight_density);
  p.put(static_cast<std::uint8_t>(s.frozen ? 1 : 0));
  p.put(s.attn_density);
  p.put(s.token_fraction);
  p.put(s.moe_load);
  p.put(s.compute_scale);
  p.put(static_cast<std::uint8_t>(s.spmm_backend));
}

model::LayerState unpack_layer_state(comm::Unpacker& u) {
  model::LayerState s;
  s.weight_density = u.get<double>();
  s.frozen = u.get<std::uint8_t>() != 0;
  s.attn_density = u.get<double>();
  s.token_fraction = u.get<double>();
  s.moe_load = u.get<double>();
  s.compute_scale = u.get<double>();
  s.spmm_backend = static_cast<hw::SpmmBackend>(u.get<std::uint8_t>());
  return s;
}

}  // namespace

std::vector<std::byte> Checkpoint::serialize() const {
  comm::Packer p;
  p.put(kMagic);
  p.put(kVersion);
  p.put(iteration);

  const auto& b = stage_map.boundaries();
  p.put_vector(std::vector<std::uint64_t>(b.begin(), b.end()));

  p.put<std::uint64_t>(layer_states.size());
  for (const auto& s : layer_states) pack_layer_state(p, s);

  p.put<std::uint64_t>(weights.size());
  for (const auto& [layer, w] : weights) {
    p.put(layer);
    p.put<std::uint64_t>(w.rows());
    p.put<std::uint64_t>(w.cols());
    p.put_span(w.data());
  }

  auto body = p.take();
  const std::uint64_t checksum = buffer_checksum(body);
  comm::Packer tail;
  tail.put(checksum);
  const auto tail_bytes = tail.take();
  body.insert(body.end(), tail_bytes.begin(), tail_bytes.end());
  return body;
}

Checkpoint Checkpoint::deserialize(std::span<const std::byte> bytes) {
  DYNMO_CHECK(bytes.size() > sizeof(std::uint64_t),
              "checkpoint truncated: " << bytes.size() << " bytes");
  const auto body = bytes.first(bytes.size() - sizeof(std::uint64_t));
  {
    comm::Unpacker tail(bytes.subspan(body.size()));
    const auto stored = tail.get<std::uint64_t>();
    DYNMO_CHECK(stored == buffer_checksum(body),
                "checkpoint integrity checksum mismatch");
  }

  comm::Unpacker u(body);
  DYNMO_CHECK(u.get<std::uint32_t>() == kMagic, "not a DynMo checkpoint");
  const auto version = u.get<std::uint32_t>();
  DYNMO_CHECK(version == kVersion,
              "unsupported checkpoint version " << version);

  Checkpoint ckpt;
  ckpt.iteration = u.get<std::int64_t>();
  const auto b64 = u.get_vector<std::uint64_t>();
  ckpt.stage_map = pipeline::StageMap::from_boundaries(
      std::vector<std::size_t>(b64.begin(), b64.end()));

  const auto n_states = u.get<std::uint64_t>();
  ckpt.layer_states.reserve(n_states);
  for (std::uint64_t i = 0; i < n_states; ++i) {
    ckpt.layer_states.push_back(unpack_layer_state(u));
  }

  const auto n_weights = u.get<std::uint64_t>();
  for (std::uint64_t i = 0; i < n_weights; ++i) {
    const auto layer = u.get<std::uint64_t>();
    const auto rows = u.get<std::uint64_t>();
    const auto cols = u.get<std::uint64_t>();
    const auto data = u.get_vector<float>();
    DYNMO_CHECK(data.size() == rows * cols, "weight shape mismatch");
    tensor::Tensor t(rows, cols);
    std::copy(data.begin(), data.end(), t.data().begin());
    ckpt.weights.emplace(layer, std::move(t));
  }
  return ckpt;
}

void Checkpoint::save(const std::string& path) const {
  const auto bytes = serialize();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  DYNMO_CHECK(out.good(), "cannot open checkpoint file " << path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  DYNMO_CHECK(out.good(), "short write to " << path);
}

Checkpoint Checkpoint::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  DYNMO_CHECK(in.good(), "cannot open checkpoint file " << path);
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  std::vector<std::byte> bytes(size);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(size));
  DYNMO_CHECK(in.good(), "short read from " << path);
  return deserialize(bytes);
}

bool Checkpoint::operator==(const Checkpoint& other) const {
  if (iteration != other.iteration || stage_map != other.stage_map ||
      layer_states.size() != other.layer_states.size() ||
      weights.size() != other.weights.size()) {
    return false;
  }
  for (std::size_t i = 0; i < layer_states.size(); ++i) {
    const auto& a = layer_states[i];
    const auto& b = other.layer_states[i];
    if (a.weight_density != b.weight_density || a.frozen != b.frozen ||
        a.attn_density != b.attn_density ||
        a.token_fraction != b.token_fraction || a.moe_load != b.moe_load ||
        a.compute_scale != b.compute_scale ||
        a.spmm_backend != b.spmm_backend) {
      return false;
    }
  }
  for (const auto& [layer, w] : weights) {
    const auto it = other.weights.find(layer);
    if (it == other.weights.end() || !it->second.same_shape(w)) return false;
    const auto a = w.data();
    const auto b = it->second.data();
    if (!std::equal(a.begin(), a.end(), b.begin())) return false;
  }
  return true;
}

Checkpoint reshard_for_restart(Checkpoint ckpt, int new_workers,
                               std::span<const double> balance_weights) {
  DYNMO_CHECK(new_workers > 0, "need at least one worker");
  DYNMO_CHECK(balance_weights.size() == ckpt.stage_map.num_layers(),
              "balance weight count mismatch");
  balance::PartitionRequest req;
  req.weights.assign(balance_weights.begin(), balance_weights.end());
  req.num_stages = new_workers;
  ckpt.stage_map = balance::PartitionBalancer{}.balance(req).map;
  return ckpt;
}

}  // namespace dynmo::runtime
