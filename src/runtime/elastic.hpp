// Elastic lifecycle controller: checkpoint-coordinated shrink *and* expand
// (paper §3.4.2, completed; docs/RUNTIME.md "Elastic lifecycle").
//
// repack:: can release GPUs back to the (mock) ECK control plane, and
// runtime::Checkpoint can reshard a training state onto a different worker
// count — this controller closes the loop.  At every evaluation point it
// chooses one of three actions against the cluster queue:
//
//   Shrink — today's loads concentrate onto fewer workers without raising
//            the bottleneck (the ThroughputPreserving rule), the pack is
//            memory-feasible, and the freed GPU-time amortizes the restart
//            stall within the payoff window.
//   Expand — freed capacity is available in the queue, reclaiming it cuts
//            the projected bottleneck by at least `expand_min_gain`, and
//            that per-iteration gain amortizes the restart stall within the
//            payoff window (the *same* pricing rule migrations use,
//            docs/COST_MODEL.md "Restart-stall pricing").
//   Hold   — neither transition pays for itself.
//
// The controller only decides and talks to the control plane; executing
// the transition — serialize a Checkpoint, re-pack / reshard the stage map,
// rebuild the communicator, resume — is the runtime's job
// (runtime::TrainingSession for the simulated clock,
// runtime::ThreadedPipeline's restart phases for real threads).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>

#include "comm/cost_model.hpp"
#include "pipeline/stage_map.hpp"
#include "repack/elastic.hpp"

namespace dynmo::runtime {

enum class ElasticAction { Hold, Shrink, Expand };

const char* to_string(ElasticAction a);

struct ElasticConfig {
  /// Session switch: false leaves the elastic path entirely inert.
  bool enabled = false;
  /// Evaluation cadence (iterations).  Must land on rebalance points to
  /// fire (the decision consumes the fresh profile): make it a multiple of
  /// the session's rebalance interval and sim_stride.
  std::int64_t interval = 1000;
  int min_workers = 1;
  /// Footprint ceiling the controller may expand to; 0 → the initial
  /// worker count.  A job may start below its ceiling and grow into
  /// capacity other jobs free.  Sessions leave this 0: their cost
  /// surfaces are sized to `pipeline_stages`.
  int max_workers = 0;
  /// Shrink rule (mirrors SessionConfig::RepackPolicy::ThroughputPreserving):
  /// release workers while the optimal contiguous bottleneck at the reduced
  /// count stays within this factor of the full-count optimum.
  double shrink_tolerance = 1.05;
  /// Expand rule: reclaim freed GPUs only when the projected bottleneck
  /// gain is at least this fraction of the current bottleneck (hysteresis
  /// against breathing on noise).
  double expand_min_gain = 0.02;
  /// Iterations the restart stall must amortize within (the migration
  /// payoff rule applied to restarts).  <= 0 → inherit the session's
  /// payoff_window_iters; if that is also 0 the gates are disabled and
  /// every wanted transition executes.
  double payoff_window_iters = 0.0;

  // --- restart stall model (docs/COST_MODEL.md "Restart-stall pricing") --
  /// Job-manager round-trip + process respawn, once per restart.
  double restart_alpha_s = 2.0;
  /// Reference payload of one communicator-bootstrap exchange (the NCCL
  /// unique-id / ring-handshake analogue), priced over the new group's
  /// worst inter-node link per binomial step.
  std::size_t bootstrap_bytes = 1u << 20;
  /// Per-worker checkpoint shard write/read bandwidth (parallel FS).
  double checkpoint_bw = 4.0 * 1024.0 * 1024.0 * 1024.0;

  /// External control plane to shrink into / expand from — a
  /// repack::MockEckCluster or a fleet::Arbiter (docs/FLEET.md); null →
  /// the controller owns a private MockEckCluster sized to `max_workers`
  /// (the job can then only reclaim GPUs it released itself).
  repack::ControlPlane* cluster = nullptr;
  std::string pod = "dynmo-train";
};

/// The restart stall, itemized (docs/COST_MODEL.md "Restart-stall
/// pricing") — telemetry records each term so a trace shows *where* a
/// transition's cost went, not just its total.
struct RestartStall {
  double alpha_s = 0.0;       ///< job-manager round-trip + respawn
  double bootstrap_s = 0.0;   ///< binomial communicator bootstrap
  double ckpt_write_s = 0.0;  ///< busiest shard, pre-restart map
  double ckpt_read_s = 0.0;   ///< busiest shard, post-restart map
  double total_s() const {
    return alpha_s + bootstrap_s + ckpt_write_s + ckpt_read_s;
  }
};

struct ElasticDecision {
  ElasticAction action = ElasticAction::Hold;
  int target_workers = 0;
  /// Per-iteration projected bottleneck gain (Expand) or freed GPU-time
  /// per iteration, freed_workers * bottleneck_s (Shrink).
  double projected_gain_s = 0.0;
  /// Modeled restart stall the transition charges (0 for Hold).
  double restart_stall_s = 0.0;
  /// The same stall itemized; stall.total_s() == restart_stall_s.
  RestartStall stall{};
  /// A transition was wanted but its stall did not amortize within the
  /// payoff window — the session counts these in maps_rejected_payoff.
  bool rejected_by_payoff = false;
};

/// Resolves the link the communicator bootstrap of a `workers`-sized group
/// rides on (the session hands in the deployment-prefix's worst inter-node
/// leader link; tests may return a constant).
using BootstrapLinkFn = std::function<comm::LinkParams(int workers)>;

class ElasticController {
 public:
  /// `initial_workers` is the job's starting (and maximum) footprint; the
  /// first PATCH establishes that baseline claim with the control plane.
  ElasticController(ElasticConfig cfg, int initial_workers,
                    BootstrapLinkFn bootstrap_link);

  /// Decide shrink / hold / expand for the current profile.  `layer_time_s`
  /// and `state_bytes` are per-layer; `map` spans the active workers.
  /// Pure decision — nothing is claimed or released until commit().
  ElasticDecision decide(const pipeline::StageMap& map,
                         std::span<const double> layer_time_s,
                         std::span<const double> state_bytes,
                         double mem_capacity, int active_workers);

  /// Execute the decision against the control plane (PATCH the pod's GPU
  /// claim).  Returns false when the API server rejected the transition —
  /// e.g. another job claimed the freed capacity between decide() and
  /// commit() — in which case the runtime must stay on the current map.
  bool commit(const ElasticDecision& d);

  /// Modeled wall-clock of a checkpoint-coordinated restart from `before`
  /// onto `after` (docs/COST_MODEL.md "Restart-stall pricing"): respawn
  /// alpha + binomial communicator bootstrap over the new group's link +
  /// busiest-shard checkpoint write and reload.
  RestartStall restart_stall(const pipeline::StageMap& before,
                             const pipeline::StageMap& after,
                             std::span<const double> state_bytes) const;
  double restart_stall_s(const pipeline::StageMap& before,
                         const pipeline::StageMap& after,
                         std::span<const double> state_bytes) const {
    return restart_stall(before, after, state_bytes).total_s();
  }

  const repack::ControlPlane& cluster() const { return *cluster_; }
  int claimed_workers() const { return job_.claimed_gpus(); }
  int min_workers() const { return cfg_.min_workers; }
  int max_workers() const { return max_workers_; }

 private:
  ElasticConfig cfg_;
  int max_workers_;
  BootstrapLinkFn bootstrap_link_;
  std::optional<repack::MockEckCluster> owned_cluster_;
  repack::ControlPlane* cluster_;
  repack::JobManagerClient job_;
};

}  // namespace dynmo::runtime
