#include "runtime/threaded.hpp"

#include <chrono>
#include <map>
#include <thread>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "dynamic/distributed_pruning.hpp"
#include "runtime/checkpoint.hpp"

namespace dynmo::runtime {

namespace {

constexpr comm::Tag kActFwdTag = comm::kFirstUserTag + 1;
constexpr comm::Tag kActBwdTag = comm::kFirstUserTag + 2;
constexpr comm::Tag kStatsTag = comm::kFirstUserTag + 3;
constexpr comm::Tag kCkptGatherTag = comm::kFirstUserTag + 4;
/// Migration tags live in their own positive band so a slow sender can
/// never alias a later phase's prune/collective traffic.
constexpr comm::Tag kMigrationBase = comm::kFirstUserTag + 100;

std::uint64_t checksum_floats(std::span<const float> xs) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    std::uint32_t bits;
    static_assert(sizeof(bits) == sizeof(float));
    std::memcpy(&bits, &xs[i], sizeof(bits));
    h = hash_mix(h, bits, i);
  }
  return h;
}

/// Deterministic initial weights for layer l — identical no matter which
/// worker materializes them.
tensor::Tensor initial_weights(std::size_t layer, const ThreadedConfig& cfg) {
  Rng rng(hash_mix(cfg.seed, layer, 0x11a7e));
  return tensor::Tensor::random(cfg.hidden, cfg.hidden, rng,
                                1.0f / static_cast<float>(cfg.hidden));
}

/// Deterministic input activations for (iteration, microbatch).
tensor::Tensor make_input(std::int64_t iter, int mb,
                          const ThreadedConfig& cfg) {
  Rng rng(hash_mix(cfg.seed ^ 0x1239, static_cast<std::uint64_t>(iter),
                   static_cast<std::uint64_t>(mb)));
  return tensor::Tensor::random(cfg.batch_rows, cfg.hidden, rng, 1.0f);
}

void send_tensor(const comm::Communicator& c, int dst, comm::Tag tag,
                 const tensor::Tensor& t) {
  comm::Packer p;
  p.put<std::uint64_t>(t.rows());
  p.put<std::uint64_t>(t.cols());
  p.put_span(t.data());
  c.send(dst, tag, p.take());
}

tensor::Tensor recv_tensor(const comm::Communicator& c, int src,
                           comm::Tag tag) {
  const comm::Message m = c.recv(src, tag);
  comm::Unpacker u(m.payload);
  const auto rows = u.get<std::uint64_t>();
  const auto cols = u.get<std::uint64_t>();
  const auto data = u.get_vector<float>();
  DYNMO_CHECK(data.size() == rows * cols, "tensor payload shape mismatch");
  tensor::Tensor t(rows, cols);
  std::copy(data.begin(), data.end(), t.data().begin());
  return t;
}

struct WorkerStats {
  double busy_s = 0.0;
  std::uint64_t output_checksum = 0;
  std::uint64_t bytes_migrated = 0;
  int iterations_run = 0;
  std::uint64_t bytes_checkpoint = 0;
  int restarts = 0;
};

int prev_hosting_stage(const pipeline::StageMap& map, int s) {
  for (int p = s - 1; p >= 0; --p) {
    if (!map.stage_empty(p)) return p;
  }
  return -1;
}

int next_hosting_stage(const pipeline::StageMap& map, int s) {
  for (int n = s + 1; n < map.num_stages(); ++n) {
    if (!map.stage_empty(n)) return n;
  }
  return -1;
}

int first_hosting_stage(const pipeline::StageMap& map) {
  for (int s = 0; s < map.num_stages(); ++s) {
    if (!map.stage_empty(s)) return s;
  }
  return -1;
}

}  // namespace

ThreadedPipeline::ThreadedPipeline(ThreadedConfig cfg) : cfg_(cfg) {
  DYNMO_CHECK(cfg.workers > 0, "need workers");
  DYNMO_CHECK(cfg.num_layers > 0, "need layers");
}

ThreadedReport ThreadedPipeline::run(const std::vector<PlanPhase>& phases) {
  DYNMO_CHECK(!phases.empty(), "empty plan");
  for (const auto& ph : phases) {
    DYNMO_CHECK(ph.map.num_stages() == cfg_.workers,
                "every phase map must span all initial workers");
    DYNMO_CHECK(ph.map.num_layers() == cfg_.num_layers,
                "phase map layer count mismatch");
    if (ph.active) {
      DYNMO_CHECK(static_cast<int>(ph.active->size()) == cfg_.workers,
                  "active mask size mismatch");
      DYNMO_CHECK((*ph.active)[0], "rank 0 must survive re-packing");
    }
    if (ph.restart_active) {
      DYNMO_CHECK(!ph.active,
                  "a phase is either a release or a restart, not both");
      DYNMO_CHECK(static_cast<int>(ph.restart_active->size()) ==
                      cfg_.workers,
                  "restart mask size mismatch");
      DYNMO_CHECK((*ph.restart_active)[0],
                  "rank 0 must stay active across a restart");
    }
  }

  comm::World world(cfg_.workers);
  const ThreadedConfig cfg = cfg_;

  // Shared trace writer: TraceWriter serializes appends internally, so the
  // worker threads emit into it concurrently.
  std::optional<telemetry::TraceWriter> trace_storage;
  if (cfg_.telemetry.enabled()) {
    telemetry::RunInfo info;
    info.producer = "threaded";
    for (const auto& ph : phases) info.iterations += ph.iterations;
    info.rebalance_interval = 0;  // maps change by plan, not by balancer
    info.pipeline_stages = cfg_.workers;
    info.seed = cfg_.seed;
    info.mode = "threaded";
    trace_storage.emplace(cfg_.telemetry, std::move(info));
  }
  telemetry::TraceWriter* const trace =
      trace_storage ? &*trace_storage : nullptr;

  const auto worker_main = [&world, &phases, cfg, trace](int rank) {
    const comm::Communicator wcomm = world.world_comm(rank);
    std::optional<comm::Communicator> coll = wcomm;  // collective group
    std::map<std::size_t, tensor::Tensor> weights;
    WorkerStats stats;
    std::int64_t global_it = 0;  // consistent input stream across phases

    // Materialize phase-0 ownership.
    {
      const auto& m0 = phases.front().map;
      for (std::size_t l = m0.stage_begin(rank); l < m0.stage_end(rank);
           ++l) {
        weights.emplace(l, initial_weights(l, cfg));
      }
    }

    bool active_now = true;
    int world_active = cfg.workers;  // rank 0's view, for trace rows
    for (std::size_t pi = 0; pi < phases.size(); ++pi) {
      const auto& phase = phases[pi];
      const auto& map = phase.map;

      // 1. Weight redistribution into this phase's placement: either an
      // elastic checkpoint restart (released workers may re-join) or the
      // P2P migration of the running pipeline.
      if (phase.restart_active) {
        const auto& act = *phase.restart_active;
        const auto restart_t0 = std::chrono::steady_clock::now();
        // 1a. Every rank — released ones included — ships the layers it
        // owns to rank 0 (an empty set for non-owners), which assembles
        // the Checkpoint and pushes it through the real binary format.
        {
          comm::Packer p;
          p.put<std::uint64_t>(weights.size());
          for (const auto& [l, w] : weights) {
            p.put<std::uint64_t>(l);
            p.put<std::uint64_t>(w.rows());
            p.put<std::uint64_t>(w.cols());
            p.put_span(w.data());
          }
          wcomm.send(0, kCkptGatherTag, p.take());
        }
        std::vector<std::byte> blob;
        if (rank == 0) {
          Checkpoint ckpt;
          ckpt.iteration = global_it;
          ckpt.stage_map = map;
          for (int r = 0; r < wcomm.size(); ++r) {
            const comm::Message m = wcomm.recv(r, kCkptGatherTag);
            comm::Unpacker u(m.payload);
            const auto n = u.get<std::uint64_t>();
            for (std::uint64_t i = 0; i < n; ++i) {
              const auto l = u.get<std::uint64_t>();
              const auto rows = u.get<std::uint64_t>();
              const auto cols = u.get<std::uint64_t>();
              const auto data = u.get_vector<float>();
              tensor::Tensor t(rows, cols);
              std::copy(data.begin(), data.end(), t.data().begin());
              ckpt.weights.emplace(l, std::move(t));
            }
          }
          DYNMO_CHECK(ckpt.weights.size() == cfg.num_layers,
                      "restart checkpoint covers " << ckpt.weights.size()
                                                   << " of "
                                                   << cfg.num_layers
                                                   << " layers");
          blob = ckpt.serialize();
          stats.bytes_checkpoint += blob.size();
          ++stats.restarts;
        }
        // 1b. Broadcast the serialized checkpoint; every rank reloads the
        // layers the new map assigns it ("the model is reloaded and
        // resharded among the workers during checkpoint recovery").
        blob = wcomm.broadcast(std::move(blob), 0);
        const Checkpoint ckpt = Checkpoint::deserialize(blob);
        global_it = ckpt.iteration;  // re-joining ranks sync the stream
        weights.clear();
        active_now = act[static_cast<std::size_t>(rank)];
        if (active_now) {
          for (std::size_t l = map.stage_begin(rank);
               l < map.stage_end(rank); ++l) {
            const auto it = ckpt.weights.find(l);
            DYNMO_CHECK(it != ckpt.weights.end(),
                        "checkpoint misses layer " << l);
            weights.emplace(l, it->second);
          }
        }
        // 1c. The restart creates the collective communicator anew over
        // the whole world — exactly the fresh-NCCL-communicator step.
        coll = wcomm.split(active_now ? 0 : -1, rank);
        if (rank == 0 && trace != nullptr) {
          int after = 0;
          for (const bool a : act) after += a ? 1 : 0;
          telemetry::ElasticTransitionRow row;
          row.iter = global_it;
          row.kind = after < world_active ? "shrink" : "expand";
          row.accepted = true;
          row.workers_before = world_active;
          row.workers_after = after;
          // Measured wall stall of the whole gather/serialize/broadcast/
          // reload/re-split sequence; the modeled breakdown terms stay 0.
          row.stall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - restart_t0)
                            .count();
          trace->write_elastic_transition(row);
          world_active = after;
        }
      } else if (pi > 0 && active_now) {
        const auto& prev = phases[pi - 1].map;
        for (std::size_t l = 0; l < cfg.num_layers; ++l) {
          const int src = prev.stage_of(l);
          const int dst = map.stage_of(l);
          if (src == dst) continue;
          if (rank == src) {
            auto it = weights.find(l);
            DYNMO_CHECK(it != weights.end(),
                        "migration source lacks layer " << l);
            const auto t0 = std::chrono::steady_clock::now();
            send_tensor(wcomm, dst, kMigrationBase + static_cast<comm::Tag>(l),
                        it->second);
            stats.bytes_migrated += it->second.bytes();
            if (trace != nullptr) {
              telemetry::MigrationRow mrow;
              mrow.iter = global_it;
              mrow.trigger = "phase";
              mrow.layer = static_cast<std::int64_t>(l);
              mrow.from_stage = src;
              mrow.to_stage = dst;
              mrow.bytes = static_cast<double>(it->second.bytes());
              trace->write_migration(mrow);
            }
            weights.erase(it);
            stats.busy_s += std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
          } else if (rank == dst) {
            weights.emplace(
                l, recv_tensor(wcomm, src,
                               kMigrationBase + static_cast<comm::Tag>(l)));
          }
        }
      }

      // 2. Worker release (re-packing): fence survivors off; released
      // workers idle through later phases (they can only re-join at a
      // restart phase) but keep walking the plan so restart collectives
      // over the world communicator see every rank.
      if (phase.active) {
        if (active_now) {
          DYNMO_CHECK(coll.has_value(), "active worker lost its group");
          const bool mine = (*phase.active)[static_cast<std::size_t>(rank)];
          // Split over the *current* collective group; all members call.
          coll = coll->split(mine ? 0 : -1, coll->rank());
          if (!mine) {
            DYNMO_CHECK(weights.empty(),
                        "released worker still owns layers");
            active_now = false;
          }
          if (rank == 0 && trace != nullptr) {
            int after = 0;
            for (const bool a : *phase.active) after += a ? 1 : 0;
            telemetry::ElasticTransitionRow row;
            row.iter = global_it;
            row.kind = "repack";
            row.accepted = true;
            row.workers_before = world_active;
            row.workers_after = after;
            trace->write_elastic_transition(row);
            world_active = after;
          }
        } else {
          DYNMO_CHECK(!(*phase.active)[static_cast<std::size_t>(rank)],
                      "re-joining a released worker needs restart_active");
        }
      }
      if (!active_now) {
        DYNMO_CHECK(map.stage_empty(rank),
                    "phase " << pi << " maps layers onto released worker "
                             << rank);
        continue;
      }

      // 3. Distributed global pruning (Algorithm 1) over the collective
      // group.
      if (phase.prune_sparsity) {
        DYNMO_CHECK(coll.has_value(), "pruning needs a collective group");
        std::vector<float> flat;
        std::vector<std::pair<std::size_t, std::size_t>> extents;
        for (auto& [l, w] : weights) {
          extents.emplace_back(l, w.data().size());
          flat.insert(flat.end(), w.data().begin(), w.data().end());
        }
        const auto pr = dynamic::global_magnitude_prune(*coll, flat,
                                                        *phase.prune_sparsity);
        dynamic::apply_prune_mask(flat, pr.keep_indices);
        std::size_t off = 0;
        for (auto& [l, n] : extents) {
          auto dstspan = weights.at(l).data();
          std::copy(flat.begin() + static_cast<std::ptrdiff_t>(off),
                    flat.begin() + static_cast<std::ptrdiff_t>(off + n),
                    dstspan.begin());
          off += n;
        }
      }

      // 4. Pipelined iterations.
      const int first = first_hosting_stage(map);
      const int prev = prev_hosting_stage(map, rank);
      const int next = next_hosting_stage(map, rank);
      const bool hosting = !map.stage_empty(rank);
      for (int it = 0; it < phase.iterations; ++it, ++global_it) {
        if (!hosting) continue;  // pass-through stages idle in this runtime
        const auto iter_t0 = std::chrono::steady_clock::now();
        // Forward sweep over microbatches (GPipe-style data flow; real
        // pipelining emerges from message availability across threads).
        for (int mb = 0; mb < cfg.microbatches; ++mb) {
          tensor::Tensor x = (rank == first)
                                 ? make_input(global_it, mb, cfg)
                                 : recv_tensor(wcomm, prev, kActFwdTag);
          const auto t0 = std::chrono::steady_clock::now();
          for (std::size_t l = map.stage_begin(rank);
               l < map.stage_end(rank); ++l) {
            x = tensor::matmul(x, weights.at(l));
            tensor::relu_inplace(x);
          }
          stats.busy_s += std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
          if (next >= 0) {
            send_tensor(wcomm, next, kActFwdTag, x);
          } else {
            stats.output_checksum ^= checksum_floats(x.data());
          }
        }
        // Backward sweep (reverse microbatch order).
        for (int mb = cfg.microbatches - 1; mb >= 0; --mb) {
          tensor::Tensor g =
              (next < 0) ? tensor::Tensor(cfg.batch_rows, cfg.hidden, 1.0f)
                         : recv_tensor(wcomm, next, kActBwdTag);
          const auto t0 = std::chrono::steady_clock::now();
          for (std::size_t l = map.stage_end(rank);
               l-- > map.stage_begin(rank);) {
            g = tensor::matmul(g, weights.at(l));
            if (cfg.apply_weight_update) {
              auto w = weights.at(l).data();
              const auto decay =
                  static_cast<float>(1.0 - cfg.learning_rate);
              for (float& v : w) v *= decay;
            }
          }
          stats.busy_s += std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
          if (prev >= 0) send_tensor(wcomm, prev, kActBwdTag, g);
        }
        ++stats.iterations_run;
        if (rank == 0 && trace != nullptr) {
          // Measured per-iteration wall time from rank 0's perspective
          // (this runtime has no modeled bottleneck/idleness — those
          // columns stay 0, docs/TELEMETRY.md "Producers").
          telemetry::IterationRow row;
          row.iter = global_it;
          row.time_s = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - iter_t0)
                           .count();
          row.active_workers = world_active;
          trace->write_iteration(row);
        }
      }
    }

    // Final reporting to rank 0 over the world communicator.
    {
      comm::Packer p;
      p.put(stats.busy_s);
      p.put(stats.output_checksum);
      p.put(stats.bytes_migrated);
      p.put(stats.iterations_run);
      p.put(stats.bytes_checkpoint);
      p.put(stats.restarts);
      // Per-layer weight checksums + nnz for everything this rank owns.
      std::vector<std::uint64_t> layer_ids;
      std::vector<std::uint64_t> sums;
      std::uint64_t nnz = 0;
      for (const auto& [l, w] : weights) {
        layer_ids.push_back(l);
        sums.push_back(checksum_floats(w.data()));
        for (float v : w.data()) {
          if (v != 0.0f) ++nnz;
        }
      }
      p.put(nnz);
      p.put_vector(layer_ids);
      p.put_vector(sums);
      wcomm.send(0, kStatsTag, p.take());  // rank 0 self-delivers
    }
  };

  const auto wall0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(cfg_.workers));
  for (int r = 0; r < cfg_.workers; ++r) {
    threads.emplace_back(worker_main, r);
  }

  // Rank "-1" aggregator: main thread reads rank 0's mailbox after joining.
  for (auto& t : threads) t.join();
  const auto wall1 = std::chrono::steady_clock::now();

  ThreadedReport report;
  report.wall_s = std::chrono::duration<double>(wall1 - wall0).count();
  report.worker_busy_s.assign(static_cast<std::size_t>(cfg_.workers), 0.0);
  report.weight_checksums.assign(cfg_.num_layers, 0);

  const comm::Communicator main_comm = world.world_comm(0);
  for (int r = 0; r < cfg_.workers; ++r) {
    const comm::Message m = main_comm.recv(r, kStatsTag);
    comm::Unpacker u(m.payload);
    const double busy = u.get<double>();
    const auto osum = u.get<std::uint64_t>();
    const auto migrated = u.get<std::uint64_t>();
    const int iters = u.get<int>();
    const auto ckpt_bytes = u.get<std::uint64_t>();
    const int restarts = u.get<int>();
    const auto nnz = u.get<std::uint64_t>();
    const auto layer_ids = u.get_vector<std::uint64_t>();
    const auto sums = u.get_vector<std::uint64_t>();
    report.worker_busy_s[static_cast<std::size_t>(r)] = busy;
    report.output_checksum ^= osum;
    report.bytes_migrated += migrated;
    report.iterations_run = std::max(report.iterations_run, iters);
    report.bytes_checkpoint += ckpt_bytes;
    report.restarts += restarts;  // counted on rank 0 only
    report.weights_nnz += nnz;
    for (std::size_t i = 0; i < layer_ids.size(); ++i) {
      report.weight_checksums[layer_ids[i]] = sums[i];
    }
  }
  if (trace_storage) trace_storage->finalize();
  return report;
}

}  // namespace dynmo::runtime
