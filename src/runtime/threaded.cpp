#include "runtime/threaded.hpp"

#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "dynamic/distributed_pruning.hpp"
#include "fault/injector.hpp"
#include "runtime/checkpoint.hpp"

namespace dynmo::runtime {

namespace {

// Fault recovery re-creates the pipeline's point-to-point traffic under a
// fresh tag namespace (an "epoch") so stale in-flight messages from an
// aborted iteration can never be consumed as fresh ones.  Epoch bands:
//   fwd/bwd activations: kFirstUserTag + 1 + 2e / + 2 + 2e   (e <= 18)
//   checkpoint gathers:  kFirstUserTag + 40 + e
//   final stats:         kFirstUserTag + 90
//   migrations:          kFirstUserTag + 100 + layer (own positive band so
//                        a slow sender can never alias collective traffic)
constexpr int kMaxFaultEpochs = 18;
constexpr comm::Tag kStatsTag = comm::kFirstUserTag + 90;
constexpr comm::Tag kMigrationBase = comm::kFirstUserTag + 100;

comm::Tag fwd_tag(int epoch) {
  return comm::kFirstUserTag + 1 + 2 * static_cast<comm::Tag>(epoch);
}
comm::Tag bwd_tag(int epoch) {
  return comm::kFirstUserTag + 2 + 2 * static_cast<comm::Tag>(epoch);
}
comm::Tag gather_tag(int epoch) {
  return comm::kFirstUserTag + 40 + static_cast<comm::Tag>(epoch);
}

/// Thrown inside a worker when the heartbeat monitor requests a recovery
/// rendezvous; unwinds the in-flight iteration, which is then re-executed
/// from the restored checkpoint.
struct RecoveryInterrupt {};
/// Thrown by the victim after it has served its own recovery collective;
/// unwinds it out of the phase loop into the zombie service loop.
struct DeadWorker {};

/// Shared fault state between the worker threads, the heartbeat monitor,
/// and the driver.  Heartbeats are plain counters: any bump resets the
/// monitor's frozen-timer for that rank, so a rank blocked in a receive
/// poll loop (which ticks) is never falsely declared dead.
struct FaultShared {
  explicit FaultShared(int workers)
      : beats(static_cast<std::size_t>(workers)),
        monitored(static_cast<std::size_t>(workers)) {
    for (auto& b : beats) b.store(0, std::memory_order_relaxed);
    for (auto& m : monitored) m.store(false, std::memory_order_relaxed);
  }

  std::vector<std::atomic<std::uint64_t>> beats;
  std::vector<std::atomic<bool>> monitored;
  std::atomic<bool> recovery_requested{false};
  std::atomic<int> dead_rank{-1};
  std::atomic<int> recovery_id{0};
  std::atomic<std::int64_t> victim_iter{0};
  std::atomic<int> done_count{0};
  std::atomic<bool> stop{false};

  std::mutex mu;  // guards ckpt_blob / ckpt_iter / dead_list
  std::vector<std::byte> ckpt_blob;
  std::int64_t ckpt_iter = -1;
  std::vector<int> dead_list;

  void tick(int rank) {
    beats[static_cast<std::size_t>(rank)].fetch_add(
        1, std::memory_order_relaxed);
  }
  void set_monitored(int rank, bool on) {
    monitored[static_cast<std::size_t>(rank)].store(
        on, std::memory_order_release);
  }
};

/// Missed-heartbeat monitor: a monitored rank whose counter stays frozen
/// for `timeout_s` of real time is declared dead and a recovery
/// rendezvous is requested.  One victim per recovery cycle; the monitor
/// pauses (and re-snapshots) while a recovery is in flight.
void monitor_main(FaultShared& fs, double timeout_s) {
  const std::size_t n = fs.beats.size();
  std::vector<std::uint64_t> snap(n, 0);
  std::vector<double> frozen_s(n, 0.0);
  auto last = std::chrono::steady_clock::now();
  while (!fs.stop.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    const auto now = std::chrono::steady_clock::now();
    const double dt = std::chrono::duration<double>(now - last).count();
    last = now;
    if (fs.recovery_requested.load(std::memory_order_acquire)) {
      for (std::size_t r = 0; r < n; ++r) {
        snap[r] = fs.beats[r].load(std::memory_order_relaxed);
        frozen_s[r] = 0.0;
      }
      continue;
    }
    for (std::size_t r = 0; r < n; ++r) {
      if (!fs.monitored[r].load(std::memory_order_acquire)) {
        snap[r] = fs.beats[r].load(std::memory_order_relaxed);
        frozen_s[r] = 0.0;
        continue;
      }
      const auto b = fs.beats[r].load(std::memory_order_relaxed);
      if (b != snap[r]) {
        snap[r] = b;
        frozen_s[r] = 0.0;
        continue;
      }
      frozen_s[r] += dt;
      if (frozen_s[r] >= timeout_s) {
        {
          std::scoped_lock lk(fs.mu);
          fs.dead_list.push_back(static_cast<int>(r));
        }
        fs.dead_rank.store(static_cast<int>(r), std::memory_order_release);
        fs.recovery_id.fetch_add(1, std::memory_order_acq_rel);
        fs.recovery_requested.store(true, std::memory_order_release);
        for (auto& f : frozen_s) f = 0.0;
        break;
      }
    }
  }
}

/// Re-pack the layers contiguously over the surviving workers (dead ranks
/// keep an empty stage so stage indices remain rank indices) — the
/// "surviving prefix" placement recovery restarts onto.  Uniform split so
/// every survivor keeps hosting as long as num_layers >= survivors.
pipeline::StageMap recovery_map_for(std::size_t num_layers, int workers,
                                    const std::vector<bool>& alive) {
  std::size_t alive_n = 0;
  for (const bool a : alive) alive_n += a ? 1 : 0;
  DYNMO_CHECK(alive_n > 0, "no surviving workers to recover onto");
  const std::size_t base = num_layers / alive_n;
  const std::size_t rem = num_layers % alive_n;
  std::vector<std::size_t> bounds{0};
  std::size_t idx = 0;
  for (int r = 0; r < workers; ++r) {
    std::size_t sz = 0;
    if (alive[static_cast<std::size_t>(r)]) {
      sz = base + (idx < rem ? 1 : 0);
      ++idx;
    }
    bounds.push_back(bounds.back() + sz);
  }
  return pipeline::StageMap::from_boundaries(std::move(bounds));
}

std::uint64_t checksum_floats(std::span<const float> xs) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    std::uint32_t bits;
    static_assert(sizeof(bits) == sizeof(float));
    std::memcpy(&bits, &xs[i], sizeof(bits));
    h = hash_mix(h, bits, i);
  }
  return h;
}

/// Deterministic initial weights for layer l — identical no matter which
/// worker materializes them.
tensor::Tensor initial_weights(std::size_t layer, const ThreadedConfig& cfg) {
  Rng rng(hash_mix(cfg.seed, layer, 0x11a7e));
  return tensor::Tensor::random(cfg.hidden, cfg.hidden, rng,
                                1.0f / static_cast<float>(cfg.hidden));
}

/// Deterministic input activations for (iteration, microbatch).
tensor::Tensor make_input(std::int64_t iter, int mb,
                          const ThreadedConfig& cfg) {
  Rng rng(hash_mix(cfg.seed ^ 0x1239, static_cast<std::uint64_t>(iter),
                   static_cast<std::uint64_t>(mb)));
  return tensor::Tensor::random(cfg.batch_rows, cfg.hidden, rng, 1.0f);
}

void send_tensor(const comm::Communicator& c, int dst, comm::Tag tag,
                 const tensor::Tensor& t) {
  comm::Packer p;
  p.put<std::uint64_t>(t.rows());
  p.put<std::uint64_t>(t.cols());
  p.put_span(t.data());
  c.send(dst, tag, p.take());
}

tensor::Tensor tensor_from_payload(const comm::Message& m) {
  comm::Unpacker u(m.payload);
  const auto rows = u.get<std::uint64_t>();
  const auto cols = u.get<std::uint64_t>();
  const auto data = u.get_vector<float>();
  DYNMO_CHECK(data.size() == rows * cols, "tensor payload shape mismatch");
  tensor::Tensor t(rows, cols);
  std::copy(data.begin(), data.end(), t.data().begin());
  return t;
}

tensor::Tensor recv_tensor(const comm::Communicator& c, int src,
                           comm::Tag tag) {
  return tensor_from_payload(c.recv(src, tag));
}

struct WorkerStats {
  double busy_s = 0.0;
  std::uint64_t output_checksum = 0;
  std::uint64_t bytes_migrated = 0;
  int iterations_run = 0;
  std::uint64_t bytes_checkpoint = 0;
  int restarts = 0;
  int worker_losses = 0;
};

int prev_hosting_stage(const pipeline::StageMap& map, int s) {
  for (int p = s - 1; p >= 0; --p) {
    if (!map.stage_empty(p)) return p;
  }
  return -1;
}

int next_hosting_stage(const pipeline::StageMap& map, int s) {
  for (int n = s + 1; n < map.num_stages(); ++n) {
    if (!map.stage_empty(n)) return n;
  }
  return -1;
}

int first_hosting_stage(const pipeline::StageMap& map) {
  for (int s = 0; s < map.num_stages(); ++s) {
    if (!map.stage_empty(s)) return s;
  }
  return -1;
}

}  // namespace

ThreadedPipeline::ThreadedPipeline(ThreadedConfig cfg) : cfg_(cfg) {
  DYNMO_CHECK(cfg.workers > 0, "need workers");
  DYNMO_CHECK(cfg.num_layers > 0, "need layers");
  DYNMO_CHECK(cfg.checkpoint_interval_iters >= 0,
              "checkpoint interval must be non-negative");
}

ThreadedReport ThreadedPipeline::run(const std::vector<PlanPhase>& phases) {
  DYNMO_CHECK(!phases.empty(), "empty plan");
  const bool fault_mode = !cfg_.fault.empty();
  for (const auto& ph : phases) {
    DYNMO_CHECK(ph.map.num_stages() == cfg_.workers,
                "every phase map must span all initial workers");
    DYNMO_CHECK(ph.map.num_layers() == cfg_.num_layers,
                "phase map layer count mismatch");
    DYNMO_CHECK(ph.heartbeat_every >= 1, "heartbeat cadence must be >= 1");
    if (ph.active) {
      DYNMO_CHECK(static_cast<int>(ph.active->size()) == cfg_.workers,
                  "active mask size mismatch");
      DYNMO_CHECK((*ph.active)[0], "rank 0 must survive re-packing");
    }
    if (ph.restart_active) {
      DYNMO_CHECK(!ph.active,
                  "a phase is either a release or a restart, not both");
      DYNMO_CHECK(static_cast<int>(ph.restart_active->size()) ==
                      cfg_.workers,
                  "restart mask size mismatch");
      DYNMO_CHECK((*ph.restart_active)[0],
                  "rank 0 must stay active across a restart");
    }
    if (fault_mode) {
      // Loss recovery re-packs onto the heartbeat-visible survivors, so
      // every worker must be pipelining (scripted releases would leave
      // ranks the monitor cannot reason about).
      DYNMO_CHECK(!ph.active && !ph.restart_active,
                  "fault plans compose with migration phases only");
      for (int s = 0; s < ph.map.num_stages(); ++s) {
        DYNMO_CHECK(!ph.map.stage_empty(s),
                    "fault plans need every worker hosting layers");
      }
    }
  }
  if (fault_mode) {
    DYNMO_CHECK(cfg_.workers >= 2, "fault injection needs >= 2 workers");
    DYNMO_CHECK(cfg_.num_layers >= static_cast<std::size_t>(cfg_.workers),
                "fault recovery needs num_layers >= workers");
    DYNMO_CHECK(cfg_.heartbeat_timeout_s > 0.0,
                "heartbeat timeout must be positive");
  }

  comm::World world(cfg_.workers, cfg_.transport);
  const ThreadedConfig cfg = cfg_;

  fault::FaultPlan plan = cfg_.fault;
  if (plan.mtbf_iters > 0.0 && plan.horizon_iters == 0) {
    for (const auto& ph : phases) plan.horizon_iters += ph.iterations;
  }

  std::unique_ptr<FaultShared> fault_shared;
  std::thread monitor;
  if (fault_mode) {
    fault_shared = std::make_unique<FaultShared>(cfg_.workers);
    monitor = std::thread(monitor_main, std::ref(*fault_shared),
                          cfg_.heartbeat_timeout_s);
  }
  FaultShared* const fs = fault_shared.get();

  // Shared trace writer: TraceWriter serializes appends internally, so the
  // worker threads emit into it concurrently.
  std::optional<telemetry::TraceWriter> trace_storage;
  if (cfg_.telemetry.enabled()) {
    telemetry::RunInfo info;
    info.producer = "threaded";
    info.transport = comm::to_string(cfg_.transport);
    for (const auto& ph : phases) info.iterations += ph.iterations;
    info.rebalance_interval = 0;  // maps change by plan, not by balancer
    info.pipeline_stages = cfg_.workers;
    info.seed = cfg_.seed;
    info.mode = "threaded";
    trace_storage.emplace(cfg_.telemetry, std::move(info));
  }
  telemetry::TraceWriter* const trace =
      trace_storage ? &*trace_storage : nullptr;

  const auto worker_main = [&world, &phases, cfg, trace, fs, plan](int rank) {
    const comm::Communicator wcomm = world.world_comm(rank);
    std::optional<comm::Communicator> coll = wcomm;  // collective group
    std::map<std::size_t, tensor::Tensor> weights;
    WorkerStats stats;
    std::int64_t global_it = 0;  // consistent input stream across phases

    // Fault bookkeeping.  Every rank holds its own injector over the same
    // (plan, seed, workers) triple — the schedule is a pure function of
    // those, so all threads resolve the same victims at the same
    // iterations without any extra coordination.
    std::optional<fault::Injector> inj;
    if (fs != nullptr) inj.emplace(plan, cfg.workers, Rng(cfg.seed));
    std::vector<bool> alive(static_cast<std::size_t>(cfg.workers), true);
    std::optional<pipeline::StageMap> override_map;  // post-loss placement
    bool i_am_dead = false;
    int epoch = 0;      // tag namespace generation, bumped per recovery
    int served_id = 0;  // newest recovery this rank has participated in
    // Per-(iteration, microbatch) output records instead of an eager XOR
    // fold: rollback erases the records of re-executed iterations, so the
    // end-of-run fold counts every iteration exactly once.
    std::map<std::pair<std::int64_t, int>, std::uint64_t> outputs;

    const auto interrupt_pending = [&]() {
      return fs != nullptr &&
             fs->recovery_requested.load(std::memory_order_acquire) &&
             fs->recovery_id.load(std::memory_order_acquire) != served_id;
    };
    // Abortable receive: poll the mailbox, ticking this rank's heartbeat
    // so a healthy-but-blocked worker is never declared dead, and unwind
    // into the recovery rendezvous the moment one is requested.
    const auto recv_msg = [&](int src, comm::Tag tag) -> comm::Message {
      if (fs == nullptr) return wcomm.recv(src, tag);
      for (;;) {
        if (interrupt_pending()) throw RecoveryInterrupt{};
        if (auto m = wcomm.try_recv(src, tag)) return std::move(*m);
        fs->tick(rank);
        std::this_thread::yield();
      }
    };

    auto world_active_count = [&]() {
      int n = 0;
      for (const bool a : alive) n += a ? 1 : 0;
      return n;
    };

    int world_active = cfg.workers;  // rank 0's view, for trace rows

    // Recovery rendezvous: every world rank — survivors, the fresh
    // victim, and earlier zombies — broadcasts the stored checkpoint from
    // rank 0, reloads it under the surviving-prefix map, rolls the
    // iteration stream back, and re-splits the collective group.  Tag
    // epoch bumps so stale in-flight messages rot unread.
    const auto do_recovery = [&]() {
      served_id = fs->recovery_id.load(std::memory_order_acquire);
      const auto t0 = std::chrono::steady_clock::now();
      fs->set_monitored(rank, false);
      const int dead = fs->dead_rank.load(std::memory_order_acquire);
      const int before = world_active_count();
      std::vector<std::byte> blob;
      if (rank == 0) {
        std::scoped_lock lk(fs->mu);
        DYNMO_CHECK(fs->ckpt_iter >= 0,
                    "worker " << dead << " died before any checkpoint");
        blob = fs->ckpt_blob;
      }
      blob = wcomm.broadcast(std::move(blob), 0);
      const Checkpoint ckpt = Checkpoint::deserialize(blob);
      if (dead >= 0) alive[static_cast<std::size_t>(dead)] = false;
      const std::int64_t victim_at =
          fs->victim_iter.load(std::memory_order_acquire);
      global_it = ckpt.iteration;
      override_map = recovery_map_for(cfg.num_layers, cfg.workers, alive);
      weights.clear();
      if (!i_am_dead) {
        for (std::size_t l = override_map->stage_begin(rank);
             l < override_map->stage_end(rank); ++l) {
          const auto it = ckpt.weights.find(l);
          DYNMO_CHECK(it != ckpt.weights.end(),
                      "recovery checkpoint misses layer " << l);
          weights.emplace(l, it->second);
        }
      }
      std::erase_if(outputs, [&](const auto& kv) {
        return kv.first.first >= global_it;
      });
      coll = wcomm.split(i_am_dead ? -1 : 0, rank);
      ++epoch;
      DYNMO_CHECK(epoch <= kMaxFaultEpochs,
                  "too many fault recoveries for the tag namespace");
      if (rank == 0) {
        ++stats.restarts;
        ++stats.worker_losses;
        stats.bytes_checkpoint += blob.size();
        if (trace != nullptr) {
          telemetry::FaultEventRow row;
          row.iter = global_it;
          row.kind = "worker_loss";
          row.worker = dead;
          row.workers_before = before;
          row.workers_after = before - 1;
          // Measured wall stall of detect-to-resume; the modeled
          // breakdown terms stay 0 in this runtime (docs/TELEMETRY.md).
          // Deterministic traces zero the measurement at the source.
          row.stall_s = cfg.telemetry.deterministic
                            ? 0.0
                            : std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() - t0)
                                  .count();
          row.lost_iters = victim_at > global_it ? victim_at - global_it : 0;
          trace->write_fault_event(row);
        }
        world_active = before - 1;
        fs->recovery_requested.store(false, std::memory_order_release);
      }
    };

    // Cut an in-memory recovery checkpoint: every surviving rank ships
    // its layers to rank 0, which assembles, serializes, and stores the
    // blob for the next rollback.  Rank 0's receives are abortable — a
    // victim that died instead of contributing is detected by the
    // monitor, the cut is abandoned, and the boundary is re-cut by the
    // survivors after recovery.
    const auto cut_checkpoint = [&](const pipeline::StageMap& m) {
      fs->set_monitored(rank, false);
      const comm::Tag gtag = gather_tag(epoch);
      {
        comm::Packer p;
        p.put<std::uint64_t>(weights.size());
        for (const auto& [l, w] : weights) {
          p.put<std::uint64_t>(l);
          p.put<std::uint64_t>(w.rows());
          p.put<std::uint64_t>(w.cols());
          p.put_span(w.data());
        }
        wcomm.send(0, gtag, p.take());
      }
      if (rank == 0) {
        Checkpoint ckpt;
        ckpt.iteration = global_it;
        ckpt.stage_map = m;
        for (int r = 0; r < wcomm.size(); ++r) {
          if (!alive[static_cast<std::size_t>(r)]) continue;
          const comm::Message msg = recv_msg(r, gtag);
          comm::Unpacker u(msg.payload);
          const auto n = u.get<std::uint64_t>();
          for (std::uint64_t i = 0; i < n; ++i) {
            const auto l = u.get<std::uint64_t>();
            const auto rows = u.get<std::uint64_t>();
            const auto cols = u.get<std::uint64_t>();
            const auto data = u.get_vector<float>();
            tensor::Tensor t(rows, cols);
            std::copy(data.begin(), data.end(), t.data().begin());
            ckpt.weights.emplace(l, std::move(t));
          }
        }
        DYNMO_CHECK(ckpt.weights.size() == cfg.num_layers,
                    "recovery checkpoint covers "
                        << ckpt.weights.size() << " of " << cfg.num_layers
                        << " layers");
        std::vector<std::byte> blob = ckpt.serialize();
        stats.bytes_checkpoint += blob.size();
        std::scoped_lock lk(fs->mu);
        fs->ckpt_blob = std::move(blob);
        fs->ckpt_iter = global_it;
      }
      fs->set_monitored(rank, true);
    };

    // Crash simulation: the victim falls silent — heartbeats freeze while
    // it stays monitored, so the monitor (not the victim) declares the
    // death.  It still serves recovery collectives (every world rank must
    // participate in broadcast/split), then throws out to the zombie loop.
    const auto park_and_die = [&]() {
      fs->victim_iter.store(global_it, std::memory_order_release);
      weights.clear();
      for (;;) {
        if (interrupt_pending()) {
          if (fs->dead_rank.load(std::memory_order_acquire) == rank) {
            i_am_dead = true;
            do_recovery();
            throw DeadWorker{};
          }
          // Another rank was declared first: serve that rendezvous as a
          // live member, then go back to being silently dead.
          do_recovery();
          weights.clear();
          fs->set_monitored(rank, true);
          continue;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    };

    // Materialize phase-0 ownership.
    {
      const auto& m0 = phases.front().map;
      for (std::size_t l = m0.stage_begin(rank); l < m0.stage_end(rank);
           ++l) {
        weights.emplace(l, initial_weights(l, cfg));
      }
    }

    bool active_now = true;
    for (std::size_t pi = 0; pi < phases.size() && !i_am_dead; ++pi) {
      const auto& phase = phases[pi];
      const pipeline::StageMap& map =
          override_map ? *override_map : phase.map;

      // 1. Weight redistribution into this phase's placement: either an
      // elastic checkpoint restart (released workers may re-join) or the
      // P2P migration of the running pipeline.  Once a loss has re-packed
      // the run onto the recovery map, later phase maps are overridden by
      // it and no migration is needed.
      if (phase.restart_active) {
        const auto& act = *phase.restart_active;
        const auto restart_t0 = std::chrono::steady_clock::now();
        // 1a. Every rank — released ones included — ships the layers it
        // owns to rank 0 (an empty set for non-owners), which assembles
        // the Checkpoint and pushes it through the real binary format.
        {
          comm::Packer p;
          p.put<std::uint64_t>(weights.size());
          for (const auto& [l, w] : weights) {
            p.put<std::uint64_t>(l);
            p.put<std::uint64_t>(w.rows());
            p.put<std::uint64_t>(w.cols());
            p.put_span(w.data());
          }
          wcomm.send(0, gather_tag(epoch), p.take());
        }
        std::vector<std::byte> blob;
        if (rank == 0) {
          Checkpoint ckpt;
          ckpt.iteration = global_it;
          ckpt.stage_map = map;
          for (int r = 0; r < wcomm.size(); ++r) {
            const comm::Message m = wcomm.recv(r, gather_tag(epoch));
            comm::Unpacker u(m.payload);
            const auto n = u.get<std::uint64_t>();
            for (std::uint64_t i = 0; i < n; ++i) {
              const auto l = u.get<std::uint64_t>();
              const auto rows = u.get<std::uint64_t>();
              const auto cols = u.get<std::uint64_t>();
              const auto data = u.get_vector<float>();
              tensor::Tensor t(rows, cols);
              std::copy(data.begin(), data.end(), t.data().begin());
              ckpt.weights.emplace(l, std::move(t));
            }
          }
          DYNMO_CHECK(ckpt.weights.size() == cfg.num_layers,
                      "restart checkpoint covers " << ckpt.weights.size()
                                                   << " of "
                                                   << cfg.num_layers
                                                   << " layers");
          blob = ckpt.serialize();
          stats.bytes_checkpoint += blob.size();
          ++stats.restarts;
        }
        // 1b. Broadcast the serialized checkpoint; every rank reloads the
        // layers the new map assigns it ("the model is reloaded and
        // resharded among the workers during checkpoint recovery").
        blob = wcomm.broadcast(std::move(blob), 0);
        const Checkpoint ckpt = Checkpoint::deserialize(blob);
        global_it = ckpt.iteration;  // re-joining ranks sync the stream
        weights.clear();
        active_now = act[static_cast<std::size_t>(rank)];
        if (active_now) {
          for (std::size_t l = map.stage_begin(rank);
               l < map.stage_end(rank); ++l) {
            const auto it = ckpt.weights.find(l);
            DYNMO_CHECK(it != ckpt.weights.end(),
                        "checkpoint misses layer " << l);
            weights.emplace(l, it->second);
          }
        }
        // 1c. The restart creates the collective communicator anew over
        // the whole world — exactly the fresh-NCCL-communicator step.
        coll = wcomm.split(active_now ? 0 : -1, rank);
        if (rank == 0 && trace != nullptr) {
          int after = 0;
          for (const bool a : act) after += a ? 1 : 0;
          telemetry::ElasticTransitionRow row;
          row.iter = global_it;
          row.kind = after < world_active ? "shrink" : "expand";
          row.accepted = true;
          row.workers_before = world_active;
          row.workers_after = after;
          // Measured wall stall of the whole gather/serialize/broadcast/
          // reload/re-split sequence; the modeled breakdown terms stay 0.
          row.stall_s = cfg.telemetry.deterministic
                            ? 0.0
                            : std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() -
                                  restart_t0)
                                  .count();
          trace->write_elastic_transition(row);
          world_active = after;
        }
      } else if (pi > 0 && active_now && !override_map) {
        const auto& prev = phases[pi - 1].map;
        for (std::size_t l = 0; l < cfg.num_layers; ++l) {
          const int src = prev.stage_of(l);
          const int dst = map.stage_of(l);
          if (src == dst) continue;
          if (rank == src) {
            auto it = weights.find(l);
            DYNMO_CHECK(it != weights.end(),
                        "migration source lacks layer " << l);
            const auto t0 = std::chrono::steady_clock::now();
            send_tensor(wcomm, dst, kMigrationBase + static_cast<comm::Tag>(l),
                        it->second);
            stats.bytes_migrated += it->second.bytes();
            if (trace != nullptr) {
              telemetry::MigrationRow mrow;
              mrow.iter = global_it;
              mrow.trigger = "phase";
              mrow.layer = static_cast<std::int64_t>(l);
              mrow.from_stage = src;
              mrow.to_stage = dst;
              mrow.bytes = static_cast<double>(it->second.bytes());
              trace->write_migration(mrow);
            }
            weights.erase(it);
            stats.busy_s += std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
          } else if (rank == dst) {
            weights.emplace(
                l, recv_tensor(wcomm, src,
                               kMigrationBase + static_cast<comm::Tag>(l)));
          }
        }
      }

      // 2. Worker release (re-packing): fence survivors off; released
      // workers idle through later phases (they can only re-join at a
      // restart phase) but keep walking the plan so restart collectives
      // over the world communicator see every rank.
      if (phase.active) {
        if (active_now) {
          DYNMO_CHECK(coll.has_value(), "active worker lost its group");
          const bool mine = (*phase.active)[static_cast<std::size_t>(rank)];
          // Split over the *current* collective group; all members call.
          coll = coll->split(mine ? 0 : -1, coll->rank());
          if (!mine) {
            DYNMO_CHECK(weights.empty(),
                        "released worker still owns layers");
            active_now = false;
          }
          if (rank == 0 && trace != nullptr) {
            int after = 0;
            for (const bool a : *phase.active) after += a ? 1 : 0;
            telemetry::ElasticTransitionRow row;
            row.iter = global_it;
            row.kind = "repack";
            row.accepted = true;
            row.workers_before = world_active;
            row.workers_after = after;
            trace->write_elastic_transition(row);
            world_active = after;
          }
        } else {
          DYNMO_CHECK(!(*phase.active)[static_cast<std::size_t>(rank)],
                      "re-joining a released worker needs restart_active");
        }
      }
      if (!active_now) {
        DYNMO_CHECK(map.stage_empty(rank),
                    "phase " << pi << " maps layers onto released worker "
                             << rank);
        continue;
      }

      // 3. Distributed global pruning (Algorithm 1) over the collective
      // group.
      if (phase.prune_sparsity) {
        DYNMO_CHECK(coll.has_value(), "pruning needs a collective group");
        std::vector<float> flat;
        std::vector<std::pair<std::size_t, std::size_t>> extents;
        for (auto& [l, w] : weights) {
          extents.emplace_back(l, w.data().size());
          flat.insert(flat.end(), w.data().begin(), w.data().end());
        }
        const auto pr = dynamic::global_magnitude_prune(*coll, flat,
                                                        *phase.prune_sparsity);
        dynamic::apply_prune_mask(flat, pr.keep_indices);
        std::size_t off = 0;
        for (auto& [l, n] : extents) {
          auto dstspan = weights.at(l).data();
          std::copy(flat.begin() + static_cast<std::ptrdiff_t>(off),
                    flat.begin() + static_cast<std::ptrdiff_t>(off + n),
                    dstspan.begin());
          off += n;
        }
      }

      // 3b. Phase-start recovery checkpoint: guarantees a rollback target
      // exists inside this phase before any loss can strike, and caps the
      // lost-work window at the cadence below.
      std::int64_t phase_start_git = global_it;
      if (fs != nullptr) {
        try {
          cut_checkpoint(map);
        } catch (const RecoveryInterrupt&) {
          do_recovery();
        }
      }

      // 4. Pipelined iterations.  A while-loop rather than a for: a
      // recovery rolls global_it back to the restored checkpoint and the
      // lost iterations are simply re-entered.
      while (global_it - phase_start_git <
             static_cast<std::int64_t>(phase.iterations)) {
        try {
          if (interrupt_pending()) throw RecoveryInterrupt{};
          const pipeline::StageMap& m =
              override_map ? *override_map : phase.map;
          if (m.stage_empty(rank)) {
            // Pass-through stages idle in this runtime (fault mode never
            // reaches here: its maps host every live worker).
            ++global_it;
            continue;
          }
          bool die_this_iter = false;
          double slow_mult = 1.0;
          if (inj) {
            for (const auto& e :
                 inj->poll(static_cast<int>(global_it), alive)) {
              if (e.kind == fault::EventKind::WorkerLoss) {
                if (e.worker == rank) die_this_iter = true;
              } else if (e.worker == rank && trace != nullptr) {
                telemetry::FaultEventRow row;
                row.iter = global_it;
                row.kind = fault::to_string(e.kind);
                row.worker = e.worker;
                row.multiplier = e.multiplier;
                row.workers_before = row.workers_after =
                    world_active_count();
                trace->write_fault_event(row);
              }
            }
            slow_mult =
                inj->multiplier(rank, static_cast<int>(global_it));
            // Cadence checkpoint at every boundary crossing — evaluated
            // fresh each pass, so after a rollback every rank re-crosses
            // (and re-cuts) the same boundaries in agreement.  A dying
            // worker skips the cut: the loss lands before the checkpoint,
            // exactly the session's lost-work accounting.
            if (!die_this_iter && cfg.checkpoint_interval_iters > 0 &&
                global_it > phase_start_git &&
                global_it % cfg.checkpoint_interval_iters == 0) {
              cut_checkpoint(m);
            }
            fs->set_monitored(rank, true);
            if ((global_it - phase_start_git) % phase.heartbeat_every == 0 &&
                !die_this_iter) {
              fs->tick(rank);
            }
          }
          const int first = first_hosting_stage(m);
          const int prev = prev_hosting_stage(m, rank);
          const int next = next_hosting_stage(m, rank);
          const int die_mb = cfg.microbatches / 2;
          const auto iter_t0 = std::chrono::steady_clock::now();
          // Forward sweep over microbatches (GPipe-style data flow; real
          // pipelining emerges from message availability across threads).
          for (int mb = 0; mb < cfg.microbatches; ++mb) {
            // The victim crashes mid-iteration: some activations of this
            // iteration are already in flight when it goes silent.
            if (die_this_iter && mb == die_mb) park_and_die();
            tensor::Tensor x =
                (rank == first)
                    ? make_input(global_it, mb, cfg)
                    : tensor_from_payload(recv_msg(prev, fwd_tag(epoch)));
            const auto t0 = std::chrono::steady_clock::now();
            for (std::size_t l = m.stage_begin(rank); l < m.stage_end(rank);
                 ++l) {
              x = tensor::matmul(x, weights.at(l));
              tensor::relu_inplace(x);
            }
            const double busy = std::chrono::duration<double>(
                                    std::chrono::steady_clock::now() - t0)
                                    .count();
            stats.busy_s += busy;
            // A straggler computes at a fraction of healthy speed: the
            // math is untouched, the wall time stretches.
            if (slow_mult < 1.0) {
              std::this_thread::sleep_for(std::chrono::duration<double>(
                  busy * (1.0 / slow_mult - 1.0)));
            }
            if (next >= 0) {
              send_tensor(wcomm, next, fwd_tag(epoch), x);
            } else {
              outputs.insert_or_assign({global_it, mb},
                                       checksum_floats(x.data()));
            }
          }
          // Backward sweep (reverse microbatch order).
          for (int mb = cfg.microbatches - 1; mb >= 0; --mb) {
            tensor::Tensor g =
                (next < 0)
                    ? tensor::Tensor(cfg.batch_rows, cfg.hidden, 1.0f)
                    : tensor_from_payload(recv_msg(next, bwd_tag(epoch)));
            const auto t0 = std::chrono::steady_clock::now();
            for (std::size_t l = m.stage_end(rank);
                 l-- > m.stage_begin(rank);) {
              g = tensor::matmul(g, weights.at(l));
              if (cfg.apply_weight_update) {
                auto w = weights.at(l).data();
                const auto decay =
                    static_cast<float>(1.0 - cfg.learning_rate);
                for (float& v : w) v *= decay;
              }
            }
            const double busy = std::chrono::duration<double>(
                                    std::chrono::steady_clock::now() - t0)
                                    .count();
            stats.busy_s += busy;
            if (slow_mult < 1.0) {
              std::this_thread::sleep_for(std::chrono::duration<double>(
                  busy * (1.0 / slow_mult - 1.0)));
            }
            if (prev >= 0) send_tensor(wcomm, prev, bwd_tag(epoch), g);
          }
          ++stats.iterations_run;
          if (rank == 0 && trace != nullptr) {
            // Measured per-iteration wall time from rank 0's perspective
            // (this runtime has no modeled bottleneck/idleness — those
            // columns stay 0, docs/TELEMETRY.md "Producers").  Re-executed
            // iterations after a recovery emit a second row for the same
            // iter — the trace records what actually ran.
            telemetry::IterationRow row;
            row.iter = global_it;
            row.time_s = cfg.telemetry.deterministic
                             ? 0.0
                             : std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() - iter_t0)
                                   .count();
            row.active_workers = world_active;
            trace->write_iteration(row);
          }
          ++global_it;
        } catch (const RecoveryInterrupt&) {
          do_recovery();
        } catch (const DeadWorker&) {
          break;
        }
      }
      if (fs != nullptr && !i_am_dead) fs->set_monitored(rank, false);
    }

    if (fs != nullptr) {
      if (i_am_dead) {
        // Zombie service loop: a dead rank keeps answering recovery
        // rendezvous (broadcast/split span the whole world) until every
        // survivor has finished the plan.
        for (;;) {
          if (interrupt_pending()) {
            do_recovery();
            continue;
          }
          if (fs->done_count.load(std::memory_order_acquire) >=
              world_active_count()) {
            break;
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      } else {
        fs->set_monitored(rank, false);
        fs->done_count.fetch_add(1, std::memory_order_acq_rel);
      }
    }

    for (const auto& kv : outputs) stats.output_checksum ^= kv.second;

    // Final reporting to rank 0 over the world communicator.
    {
      comm::Packer p;
      p.put(stats.busy_s);
      p.put(stats.output_checksum);
      p.put(stats.bytes_migrated);
      p.put(stats.iterations_run);
      p.put(stats.bytes_checkpoint);
      p.put(stats.restarts);
      p.put(stats.worker_losses);
      // Per-layer weight checksums + nnz for everything this rank owns.
      std::vector<std::uint64_t> layer_ids;
      std::vector<std::uint64_t> sums;
      std::uint64_t nnz = 0;
      for (const auto& [l, w] : weights) {
        layer_ids.push_back(l);
        sums.push_back(checksum_floats(w.data()));
        for (float v : w.data()) {
          if (v != 0.0f) ++nnz;
        }
      }
      p.put(nnz);
      p.put_vector(layer_ids);
      p.put_vector(sums);
      wcomm.send(0, kStatsTag, p.take());  // rank 0 self-delivers
    }
  };

  const auto wall0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(cfg_.workers));
  for (int r = 0; r < cfg_.workers; ++r) {
    threads.emplace_back(worker_main, r);
  }

  // Rank "-1" aggregator: main thread reads rank 0's mailbox after joining.
  for (auto& t : threads) t.join();
  if (fs != nullptr) {
    fs->stop.store(true, std::memory_order_release);
    monitor.join();
  }
  const auto wall1 = std::chrono::steady_clock::now();

  ThreadedReport report;
  report.wall_s = std::chrono::duration<double>(wall1 - wall0).count();
  report.worker_busy_s.assign(static_cast<std::size_t>(cfg_.workers), 0.0);
  report.weight_checksums.assign(cfg_.num_layers, 0);
  if (fs != nullptr) {
    std::scoped_lock lk(fs->mu);
    report.dead_workers = fs->dead_list;
  }

  const comm::Communicator main_comm = world.world_comm(0);
  for (int r = 0; r < cfg_.workers; ++r) {
    const comm::Message m = main_comm.recv(r, kStatsTag);
    comm::Unpacker u(m.payload);
    const double busy = u.get<double>();
    const auto osum = u.get<std::uint64_t>();
    const auto migrated = u.get<std::uint64_t>();
    const int iters = u.get<int>();
    const auto ckpt_bytes = u.get<std::uint64_t>();
    const int restarts = u.get<int>();
    const int losses = u.get<int>();
    const auto nnz = u.get<std::uint64_t>();
    const auto layer_ids = u.get_vector<std::uint64_t>();
    const auto sums = u.get_vector<std::uint64_t>();
    report.worker_busy_s[static_cast<std::size_t>(r)] = busy;
    report.output_checksum ^= osum;
    report.bytes_migrated += migrated;
    report.iterations_run = std::max(report.iterations_run, iters);
    report.bytes_checkpoint += ckpt_bytes;
    report.restarts += restarts;    // counted on rank 0 only
    report.worker_losses += losses;  // counted on rank 0 only
    report.weights_nnz += nnz;
    for (std::size_t i = 0; i < layer_ids.size(); ++i) {
      report.weight_checksums[layer_ids[i]] = sums[i];
    }
  }
  if (trace_storage) trace_storage->finalize();
  return report;
}

}  // namespace dynmo::runtime
