// Threaded pipeline runtime: one OS thread per worker, real buffers.
//
// The simulated-clock session (runtime/session.hpp) answers "how fast";
// this runtime answers "is it correct": workers are actual threads that
//   * execute real (small) per-layer matmuls on tensors they own,
//   * stream activations / gradients through the comm substrate,
//   * migrate layer weights with P2P transfers when the stage map changes,
//   * run the distributed global-pruning Algorithm 1 collectively, and
//   * drop out of the communicator via split when re-packed away.
//
// Determinism contract (tested): with weight updates disabled, the final
// output checksum is identical for *any* stage map and any migration
// history — load balancing must never change the math (paper §1: "DynMo
// has no impact on model accuracy").  Fault recovery preserves the
// contract: a run that loses workers rolls back to the newest checkpoint,
// re-executes the lost iterations on the surviving prefix, and lands on
// the same output/weight checksums as a fault-free run of the same seed.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "comm/communicator.hpp"
#include "fault/plan.hpp"
#include "pipeline/stage_map.hpp"
#include "telemetry/trace_writer.hpp"
#include "tensor/tensor.hpp"

namespace dynmo::runtime {

struct ThreadedConfig {
  int workers = 4;
  std::size_t num_layers = 8;
  std::size_t hidden = 32;        ///< square layer weights (hidden x hidden)
  std::size_t batch_rows = 4;     ///< microbatch activation rows
  int microbatches = 4;
  bool apply_weight_update = false;  ///< tiny SGD step per backward
  double learning_rate = 1e-3;
  std::uint64_t seed = 0x5eed;
  /// Which comm backend carries every activation, gradient, migration,
  /// checkpoint, and heartbeat-era control message (docs/TRANSPORT.md).
  /// The runtime is transport-agnostic: any backend must produce the same
  /// checksums — the golden-trace CI gate holds it to that.
  comm::TransportKind transport = comm::TransportKind::InProc;
  /// Structured trace emission (docs/TELEMETRY.md): this runtime records
  /// measured wall-clock, not modeled costs — iterations rows come from
  /// rank 0 while it hosts layers (bottleneck/idleness stay 0), migrations
  /// rows from each P2P sender (trigger "phase"), and every restart or
  /// release phase lands in elastic_transitions with its measured stall.
  /// The writer is shared across worker threads (it locks internally).
  telemetry::TelemetryConfig telemetry{};
  /// Fault injection (docs/FAULT.md): a seeded plan of worker losses and
  /// stragglers executed against the live pipeline.  A lost worker goes
  /// silent mid-iteration; the run's missed-heartbeat monitor detects the
  /// silence and every rank rendezvouses on a checkpoint-coordinated
  /// restart over the surviving workers.  Requires workers >= 2,
  /// num_layers >= workers, and a plan with no `active`/`restart_active`
  /// phases and no empty stages (every worker must be heartbeat-visible).
  /// Stragglers stretch the victim's measured compute time only — they
  /// never change the math.
  fault::FaultPlan fault{};
  /// Cut an in-memory recovery checkpoint every N iterations (0 = only at
  /// phase starts).  Worker-loss recovery rolls back to the newest cut and
  /// re-executes everything since — the lost-work term of the
  /// checkpoint-cadence trade-off priced by runtime/session.hpp.
  std::int64_t checkpoint_interval_iters = 0;
  /// Missed-heartbeat threshold: a monitored rank silent this long is
  /// declared dead.  Healthy-but-blocked ranks keep ticking from inside
  /// the receive poll loop, so only a genuinely silent worker trips it.
  double heartbeat_timeout_s = 0.25;
};

/// One phase of the scripted run: train `iterations` on `map`, after an
/// optional migration from the previous phase's map, an optional global
/// prune, an optional worker release (repack), or an optional elastic
/// restart (expand/shrink via checkpoint).
struct PlanPhase {
  pipeline::StageMap map;
  int iterations = 1;
  std::optional<double> prune_sparsity;       ///< run Algorithm 1 first
  std::optional<std::vector<bool>> active;    ///< repack: who survives
  /// Elastic restart (docs/RUNTIME.md): the phase begins with a
  /// checkpoint-coordinated restart instead of P2P migration — current
  /// owners ship their layers into a Checkpoint assembled (and serialized
  /// through the real binary format) on rank 0, the blob is broadcast, and
  /// every rank in this mask reloads the layers `map` assigns it.
  /// Previously *released* workers may re-join here (the expand path);
  /// the collective communicator is re-created from scratch over the new
  /// active set, the "new NCCL communicator ... during the restart" of
  /// §3.4.2.  Rank 0 must stay active.  Mutually exclusive with `active`.
  std::optional<std::vector<bool>> restart_active;
  /// Heartbeat cadence while this phase's pipeline runs: every worker
  /// bumps its heartbeat at every Nth iteration boundary (and on every
  /// receive poll while blocked).  Must be >= 1.
  int heartbeat_every = 1;
};

struct ThreadedReport {
  double wall_s = 0.0;
  int iterations_run = 0;
  std::uint64_t output_checksum = 0;          ///< order-independent fold
  std::vector<std::uint64_t> weight_checksums;  ///< per layer, at the end
  std::vector<double> worker_busy_s;          ///< per initial worker
  std::uint64_t bytes_migrated = 0;
  std::size_t weights_nnz = 0;                ///< after any pruning
  int restarts = 0;                           ///< restart phases + recoveries
  /// Serialized checkpoint bytes broadcast across all restarts.
  std::uint64_t bytes_checkpoint = 0;
  int worker_losses = 0;       ///< heartbeat-detected losses recovered from
  std::vector<int> dead_workers;  ///< ranks declared dead, detection order
};

class ThreadedPipeline {
 public:
  explicit ThreadedPipeline(ThreadedConfig cfg);

  /// Execute the phases in order; blocking.  Phase 0's map is the initial
  /// placement (no migration before it).
  ThreadedReport run(const std::vector<PlanPhase>& phases);

  const ThreadedConfig& config() const { return cfg_; }

 private:
  ThreadedConfig cfg_;
};

}  // namespace dynmo::runtime
