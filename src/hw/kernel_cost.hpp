// Analytic kernel cost models (roofline-style).
//
// Every model returns seconds for one kernel invocation on one GPU.  The
// pipeline simulator sums these per layer per microbatch.  The SpMM model
// encodes the Sputnik / cuSPARSE / cuBLAS crossover structure the paper
// relies on for gradual pruning (§4.2.2): Sputnik overtakes dense GEMM at
// ~75% sparsity; cuSPARSE only pays off at extreme (>99%) sparsity.
#pragma once

#include <algorithm>
#include <cstddef>

#include "hw/gpu_spec.hpp"

namespace dynmo::hw {

/// Which SpMM backend executes a sparse matmul.
enum class SpmmBackend { DenseCublas, Sputnik, Cusparse };

class KernelCostModel {
 public:
  explicit KernelCostModel(GpuSpec spec = GpuSpec::h100_sxm5())
      : spec_(spec) {}

  const GpuSpec& spec() const { return spec_; }

  /// Dense GEMM C[m,n] = A[m,k] * B[k,n] in bf16.
  double gemm(std::size_t m, std::size_t n, std::size_t k) const {
    const double flops = 2.0 * static_cast<double>(m) *
                         static_cast<double>(n) * static_cast<double>(k);
    const double bytes =
        2.0 * (static_cast<double>(m) * static_cast<double>(k) +
               static_cast<double>(k) * static_cast<double>(n) +
               static_cast<double>(m) * static_cast<double>(n));
    return roofline(flops, bytes, spec_.gemm_efficiency);
  }

  /// FlashAttention forward for one layer: batch b, heads h, sequence s,
  /// head dim d, causal.  `density` in (0,1] scales the touched fraction of
  /// the attention matrix (1.0 = dense causal; block-sparse LSH masks give
  /// density < causal's 0.5).
  double flash_attention(std::size_t b, std::size_t h, std::size_t s,
                         std::size_t d, double density = 1.0) const {
    // Causal dense touches half the s*s matrix; density is relative to the
    // *full* matrix, so dense causal corresponds to density 0.5.
    const double flops = 4.0 * static_cast<double>(b) *
                         static_cast<double>(h) * static_cast<double>(s) *
                         static_cast<double>(s) * static_cast<double>(d) *
                         std::clamp(density, 0.0, 1.0);
    const double bytes = 2.0 * static_cast<double>(b) *
                         static_cast<double>(h) * static_cast<double>(s) *
                         static_cast<double>(d) * 4.0;
    return roofline(flops, bytes, spec_.attn_efficiency);
  }

  /// SpMM with `density` = fraction of nonzero weights, on a given backend.
  /// m,n,k as in gemm; the weight matrix (k x n) is the sparse operand.
  double spmm(std::size_t m, std::size_t n, std::size_t k, double density,
              SpmmBackend backend) const {
    const double dense_flops = 2.0 * static_cast<double>(m) *
                               static_cast<double>(n) *
                               static_cast<double>(k);
    const double eff_flops = dense_flops * std::clamp(density, 0.0, 1.0);
    switch (backend) {
      case SpmmBackend::DenseCublas:
        return gemm(m, n, k);  // sparsity ignored: dense kernels
      case SpmmBackend::Sputnik: {
        // Sputnik sustains ~kSputnikRelEff of dense tensor-core throughput
        // on its useful FLOPs, so it beats dense when density < kSputnikRelEff
        // (i.e. sparsity > 75%), matching the paper's observation.
        const double bytes = csr_bytes(n, k, density) +
                             2.0 * static_cast<double>(m) *
                                 (static_cast<double>(k) +
                                  static_cast<double>(n));
        return roofline(eff_flops, bytes,
                        spec_.gemm_efficiency * kSputnikRelEff);
      }
      case SpmmBackend::Cusparse: {
        const double bytes = csr_bytes(n, k, density) +
                             2.0 * static_cast<double>(m) *
                                 (static_cast<double>(k) +
                                  static_cast<double>(n));
        return roofline(eff_flops, bytes,
                        spec_.gemm_efficiency * kCusparseRelEff);
      }
    }
    return gemm(m, n, k);  // unreachable
  }

  /// Cheapest backend for the given shape/density (what DynMo's pruning
  /// integration selects: Sputnik past ~75% sparsity, dense below).
  SpmmBackend best_spmm_backend(std::size_t m, std::size_t n, std::size_t k,
                                double density) const {
    const double dense = spmm(m, n, k, density, SpmmBackend::DenseCublas);
    const double sput = spmm(m, n, k, density, SpmmBackend::Sputnik);
    const double cusp = spmm(m, n, k, density, SpmmBackend::Cusparse);
    if (sput <= dense && sput <= cusp) return SpmmBackend::Sputnik;
    if (cusp < dense) return SpmmBackend::Cusparse;
    return SpmmBackend::DenseCublas;
  }

  /// Elementwise/reduction kernel (layernorm, residual add, softmax tail):
  /// bandwidth-bound.
  double memory_bound(double bytes) const {
    return spec_.kernel_launch_s + bytes / spec_.mem_bandwidth;
  }

  static constexpr double kSputnikRelEff = 0.25;   ///< vs dense tensor cores
  static constexpr double kCusparseRelEff = 0.02;  ///< HPC-tuned, poor for DL

 private:
  static double csr_bytes(std::size_t n, std::size_t k, double density) {
    const double nnz = density * static_cast<double>(n) *
                       static_cast<double>(k);
    return nnz * (2.0 + 4.0) + static_cast<double>(k) * 4.0;  // val+col+rowptr
  }

  double roofline(double flops, double bytes, double efficiency) const {
    const double compute_s = flops / (spec_.peak_flops_bf16 * efficiency);
    const double memory_s = bytes / spec_.mem_bandwidth;
    return spec_.kernel_launch_s + std::max(compute_s, memory_s);
  }

  GpuSpec spec_;
};

}  // namespace dynmo::hw
