// Per-layer training memory footprint model (mixed-precision Adam).
//
// Matches the standard accounting used when sizing pipeline stages:
//   weights (bf16) + grads (bf16) + optimizer states (fp32 m, v, master) = 16 B/param
// plus activation working set proportional to in-flight microbatches.
// The re-packing algorithm (paper Alg. 2) uses these numbers as the
// `mem_usage` input and the GPU capacity as MAX_MEM.
#pragma once

#include <cstddef>

namespace dynmo::hw {

struct MemoryModelConfig {
  double bytes_per_param = 16.0;       ///< bf16 w+g + fp32 m/v/master
  double bytes_per_param_frozen = 2.0; ///< frozen layers keep only weights
  double activation_bytes_per_token_per_hidden = 2.0 * 18.0;
  ///< bf16, ~18 activation tensors per transformer block retained for bwd
};

class MemoryModel {
 public:
  explicit MemoryModel(MemoryModelConfig cfg = {}) : cfg_(cfg) {}

  /// Bytes held by one layer's parameters + optimizer state.
  double layer_state_bytes(std::size_t params, bool frozen = false,
                           double density = 1.0) const {
    const double per = frozen ? cfg_.bytes_per_param_frozen
                              : cfg_.bytes_per_param;
    // CSR keeps ~6 B/nnz of index overhead on top of the value bytes.
    const double index_overhead = (density < 1.0) ? 6.0 * density : 0.0;
    return static_cast<double>(params) * (per * density + index_overhead);
  }

  /// Activation bytes one microbatch leaves resident on a stage per layer.
  double activation_bytes(std::size_t micro_batch, std::size_t seq_len,
                          std::size_t hidden) const {
    return static_cast<double>(micro_batch) * static_cast<double>(seq_len) *
           static_cast<double>(hidden) *
           cfg_.activation_bytes_per_token_per_hidden;
  }

  const MemoryModelConfig& config() const { return cfg_; }

 private:
  MemoryModelConfig cfg_;
};

}  // namespace dynmo::hw
