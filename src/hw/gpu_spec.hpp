// GPU hardware descriptions used by the analytic cost models.
//
// These stand in for the paper's H100 SXM5 testbed.  Only *relative*
// per-layer costs matter for load balancing, but we keep the absolute
// numbers close to the datasheet so that tokens/sec magnitudes in the
// benches land in a plausible range.
#pragma once

#include <string>

#include "core/units.hpp"

namespace dynmo::hw {

struct GpuSpec {
  std::string name;
  double peak_flops_bf16;   ///< dense bf16/fp16 tensor-core peak, FLOP/s
  double mem_bandwidth;     ///< HBM bandwidth, bytes/s
  double mem_capacity;      ///< usable device memory, bytes
  double gemm_efficiency;   ///< achievable fraction of peak for large GEMM
  double attn_efficiency;   ///< achievable fraction for FlashAttention
  double kernel_launch_s;   ///< fixed per-kernel overhead, seconds

  static GpuSpec h100_sxm5() {
    return GpuSpec{
        .name = "H100-SXM5-80GB",
        .peak_flops_bf16 = 989.0 * TFLOPS,
        .mem_bandwidth = 3.35e12,
        .mem_capacity = 80.0 * GB,
        .gemm_efficiency = 0.62,
        .attn_efficiency = 0.45,
        .kernel_launch_s = 4e-6,
    };
  }

  static GpuSpec a100_sxm4() {
    return GpuSpec{
        .name = "A100-SXM4-80GB",
        .peak_flops_bf16 = 312.0 * TFLOPS,
        .mem_bandwidth = 2.0e12,
        .mem_capacity = 80.0 * GB,
        .gemm_efficiency = 0.58,
        .attn_efficiency = 0.40,
        .kernel_launch_s = 4e-6,
    };
  }
};

}  // namespace dynmo::hw
