// Event-driven pipeline-schedule simulator.
//
// Given per-stage per-microbatch forward / backward-input / backward-weight
// times and inter-stage transfer times, this simulates one training
// iteration under GPipe, 1F1B, or an almost-zero-bubble (ZB-H1-like)
// schedule, and returns per-worker busy/idle accounting.  Bubble ratios and
// idleness percentages in the paper's Figures 1 and 3 are *measured* from
// these simulated timelines, exactly as the authors measure them from real
// pipeline executions.
//
// The ZB-H1 variant decouples weight-gradient work (W) from input-gradient
// work (B): W ops have no cross-stage consumer, so the scheduler slots them
// into what would otherwise be pipeline bubbles (Qi et al., ICLR'24).
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "core/error.hpp"

namespace dynmo::pipeline {

enum class ScheduleKind { GPipe, OneFOneB, ZbH1 };

const char* to_string(ScheduleKind k);

/// Per-stage, per-microbatch costs for one iteration.
class StageCosts {
 public:
  StageCosts(int num_stages, int num_microbatches);

  int num_stages() const { return stages_; }
  int num_microbatches() const { return microbatches_; }

  double& fwd(int s, int mb) { return fwd_[index(s, mb)]; }
  double& bwd_input(int s, int mb) { return bwd_input_[index(s, mb)]; }
  double& bwd_weight(int s, int mb) { return bwd_weight_[index(s, mb)]; }
  double fwd(int s, int mb) const { return fwd_[index(s, mb)]; }
  double bwd_input(int s, int mb) const { return bwd_input_[index(s, mb)]; }
  double bwd_weight(int s, int mb) const { return bwd_weight_[index(s, mb)]; }

  /// Activation/gradient transfer time from stage s to s+1 (and back).
  double& send(int s) { return send_[static_cast<std::size_t>(s)]; }
  double send(int s) const { return send_[static_cast<std::size_t>(s)]; }

  /// Fill all microbatches of a stage with constant costs.
  void set_stage(int s, double fwd_s, double bwd_input_s, double bwd_weight_s);

  /// Total work (sum of all op durations) across stages.
  double total_work() const;

 private:
  std::size_t index(int s, int mb) const {
    DYNMO_ASSERT(s >= 0 && s < stages_ && mb >= 0 && mb < microbatches_,
                 "stage/microbatch out of range");
    return static_cast<std::size_t>(s) * static_cast<std::size_t>(microbatches_) +
           static_cast<std::size_t>(mb);
  }
  int stages_;
  int microbatches_;
  std::vector<double> fwd_, bwd_input_, bwd_weight_;
  std::vector<double> send_;
};

/// One simulated iteration's outcome.
struct PipelineResult {
  double makespan_s = 0.0;             ///< iteration wall-clock
  std::vector<double> busy_s;          ///< per-stage busy time
  std::vector<double> idle_s;          ///< per-stage idle time (makespan-busy)

  /// Mean over workers of idle/makespan — the paper's Fig. 1 metric.
  double avg_idleness() const;
  /// 1 − Σbusy / (S · makespan): fraction of the pipeline's GPU-seconds
  /// spent in bubbles.
  double bubble_ratio() const;
  /// Idleness of the single worst worker.
  double max_idleness() const;
};

/// Optional per-op observer (used by pipeline::simulate_traced to build
/// Chrome traces): called once per executed op with its placement and
/// simulated timing.
using OpRecorder =
    std::function<void(int stage, int microbatch, char kind, double start_s,
                       double duration_s)>;

/// Simulate one iteration.  Stages with zero total cost (re-packed-away
/// workers) are skipped: they contribute neither work nor dependencies.
PipelineResult simulate(ScheduleKind kind, const StageCosts& costs,
                        const OpRecorder& recorder = {});

}  // namespace dynmo::pipeline
