// Timeline tracing: capture per-op pipeline events and export them as a
// Chrome-trace (chrome://tracing / Perfetto) JSON file.
//
// The schedule simulator optionally records every F/B/W op with its stage,
// microbatch, start, and duration; export_chrome_trace() writes the
// standard trace-event format so imbalance and bubbles can be inspected
// visually — the tool a user points at "why is stage 7 idle?".
#pragma once

#include <string>
#include <vector>

#include "pipeline/schedule.hpp"

namespace dynmo::pipeline {

struct TraceEvent {
  int stage = 0;
  int microbatch = 0;
  char kind = 'F';      ///< 'F', 'B', or 'W'
  double start_s = 0.0;
  double duration_s = 0.0;
};

struct Trace {
  std::vector<TraceEvent> events;
  double makespan_s = 0.0;

  /// Serialize to Chrome trace-event JSON ("traceEvents" array, µs units;
  /// one row per pipeline stage).
  std::string to_chrome_json() const;
  /// Write to a file; throws dynmo::Error on I/O failure.
  void write_chrome_json(const std::string& path) const;

  /// Total busy seconds of one stage.
  double stage_busy_s(int stage) const;
};

/// Like pipeline::simulate(), but also returns the full op timeline.
std::pair<PipelineResult, Trace> simulate_traced(ScheduleKind kind,
                                                 const StageCosts& costs);

}  // namespace dynmo::pipeline
