#include "pipeline/trace.hpp"

#include <fstream>
#include <sstream>

#include "core/error.hpp"

namespace dynmo::pipeline {

std::string Trace::to_chrome_json() const {
  std::ostringstream oss;
  oss << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& e : events) {
    if (!first) oss << ',';
    first = false;
    const char* name = e.kind == 'F' ? "forward"
                       : e.kind == 'B' ? "backward"
                                       : "wgrad";
    // Complete ("X") events, microsecond timestamps, one row per stage.
    oss << "{\"name\":\"" << name << " mb" << e.microbatch
        << "\",\"cat\":\"pipeline\",\"ph\":\"X\",\"ts\":" << e.start_s * 1e6
        << ",\"dur\":" << e.duration_s * 1e6
        << ",\"pid\":0,\"tid\":" << e.stage << "}";
  }
  oss << "],\"displayTimeUnit\":\"ms\"}";
  return oss.str();
}

void Trace::write_chrome_json(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  DYNMO_CHECK(out.good(), "cannot open trace file " << path);
  out << to_chrome_json();
  DYNMO_CHECK(out.good(), "short write to " << path);
}

double Trace::stage_busy_s(int stage) const {
  double acc = 0.0;
  for (const auto& e : events) {
    if (e.stage == stage) acc += e.duration_s;
  }
  return acc;
}

std::pair<PipelineResult, Trace> simulate_traced(ScheduleKind kind,
                                                 const StageCosts& costs) {
  Trace trace;
  auto result = simulate(
      kind, costs,
      [&trace](int stage, int mb, char op, double start, double dur) {
        trace.events.push_back(TraceEvent{stage, mb, op, start, dur});
      });
  trace.makespan_s = result.makespan_s;
  return {std::move(result), std::move(trace)};
}

}  // namespace dynmo::pipeline
