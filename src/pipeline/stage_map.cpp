#include "pipeline/stage_map.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "core/error.hpp"

namespace dynmo::pipeline {

StageMap StageMap::from_boundaries(std::vector<std::size_t> boundaries) {
  DYNMO_CHECK(boundaries.size() >= 2, "stage map needs >= 1 stage");
  DYNMO_CHECK(boundaries.front() == 0, "first boundary must be 0");
  DYNMO_CHECK(std::is_sorted(boundaries.begin(), boundaries.end()),
              "boundaries must be non-decreasing");
  StageMap m;
  m.boundaries_ = std::move(boundaries);
  return m;
}

StageMap StageMap::uniform(std::size_t num_layers, int num_stages) {
  DYNMO_CHECK(num_stages > 0, "need at least one stage");
  std::vector<std::size_t> b(static_cast<std::size_t>(num_stages) + 1, 0);
  const std::size_t base = num_layers / static_cast<std::size_t>(num_stages);
  const std::size_t extra = num_layers % static_cast<std::size_t>(num_stages);
  for (int s = 0; s < num_stages; ++s) {
    b[static_cast<std::size_t>(s) + 1] =
        b[static_cast<std::size_t>(s)] + base +
        (static_cast<std::size_t>(s) < extra ? 1 : 0);
  }
  return from_boundaries(std::move(b));
}

StageMap StageMap::greedy_by_weight(std::span<const double> weights,
                                    int num_stages) {
  DYNMO_CHECK(num_stages > 0, "need at least one stage");
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  const double target = total / num_stages;
  std::vector<std::size_t> b;
  b.reserve(static_cast<std::size_t>(num_stages) + 1);
  b.push_back(0);
  double acc = 0.0;
  std::size_t layer = 0;
  for (int s = 0; s < num_stages - 1; ++s) {
    double stage_acc = 0.0;
    // Keep taking layers while adding the next keeps us closer to target
    // than stopping, but never starve the remaining stages of layers.
    const std::size_t layers_left_min =
        static_cast<std::size_t>(num_stages - 1 - s);
    while (layer < weights.size() &&
           weights.size() - layer > layers_left_min) {
      const double w = weights[layer];
      if (stage_acc > 0.0 &&
          std::abs(stage_acc + w - target) > std::abs(stage_acc - target)) {
        break;
      }
      stage_acc += w;
      acc += w;
      ++layer;
    }
    b.push_back(layer);
  }
  b.push_back(weights.size());
  (void)acc;
  return from_boundaries(std::move(b));
}

int StageMap::stage_of(std::size_t layer) const {
  DYNMO_CHECK(layer < num_layers(), "layer " << layer << " out of range");
  // The hosting stage is the last boundary <= layer: with duplicates
  // (empty stages) upper_bound lands past the *last* duplicate, which is
  // exactly the later-begun stage the linear scan below selects.  Integer
  // comparisons only, so the answers are identical (asserted by
  // tests/test_incremental_cost.cpp against the full-rescan twin).
  const auto it =
      std::upper_bound(boundaries_.begin(), boundaries_.end(), layer);
  return static_cast<int>(it - boundaries_.begin()) - 1;
}

int StageMap::stage_of_full_rescan(std::size_t layer) const {
  DYNMO_CHECK(layer < num_layers(), "layer " << layer << " out of range");
  for (int s = 0; s < num_stages(); ++s) {
    if (layer >= stage_begin(s) && layer < stage_end(s)) return s;
  }
  return num_stages() - 1;  // unreachable for valid maps
}

std::vector<double> StageMap::stage_loads(
    std::span<const double> per_layer) const {
  DYNMO_CHECK(per_layer.size() == num_layers(),
              "per-layer vector size " << per_layer.size()
                                       << " != " << num_layers());
  std::vector<double> loads(static_cast<std::size_t>(num_stages()), 0.0);
  for (int s = 0; s < num_stages(); ++s) {
    for (std::size_t l = stage_begin(s); l < stage_end(s); ++l) {
      loads[static_cast<std::size_t>(s)] += per_layer[l];
    }
  }
  return loads;
}

int StageMap::active_stages() const {
  int n = 0;
  for (int s = 0; s < num_stages(); ++s) {
    if (!stage_empty(s)) ++n;
  }
  return n;
}

std::string StageMap::to_string() const {
  std::ostringstream oss;
  oss << '[';
  for (int s = 0; s < num_stages(); ++s) {
    if (s) oss << " | ";
    oss << stage_begin(s) << ".." << stage_end(s);
  }
  oss << ']';
  return oss.str();
}

}  // namespace dynmo::pipeline
