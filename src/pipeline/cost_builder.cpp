#include "pipeline/cost_builder.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace dynmo::pipeline {

namespace {

/// Field-for-field LayerState equality — the memo invalidation predicate.
/// Exact comparison is deliberate: a cache hit returns the very doubles the
/// full evaluation produced, so memoized results are bit-identical.
bool same_state(const model::LayerState& a, const model::LayerState& b) {
  return a.weight_density == b.weight_density && a.frozen == b.frozen &&
         a.attn_density == b.attn_density &&
         a.token_fraction == b.token_fraction && a.moe_load == b.moe_load &&
         a.compute_scale == b.compute_scale &&
         a.spmm_backend == b.spmm_backend;
}

}  // namespace

CostBuilder::LayerMemo& CostBuilder::memo_slot(std::size_t layer) const {
  if (memo_.size() != model_->num_layers()) {
    memo_.assign(model_->num_layers(), LayerMemo{});
  }
  return memo_[layer];
}

int CostBuilder::rank_of_stage(int stage) const {
  if (cfg_.stage_to_rank.empty()) return stage;
  DYNMO_CHECK(stage >= 0 &&
                  stage < static_cast<int>(cfg_.stage_to_rank.size()),
              "stage " << stage << " outside the placement's "
                       << cfg_.stage_to_rank.size() << " stages");
  return cfg_.stage_to_rank[static_cast<std::size_t>(stage)];
}

std::vector<model::LayerTimes> CostBuilder::layer_times(
    std::span<const model::LayerState> states) const {
  DYNMO_CHECK(states.size() == model_->num_layers(),
              "state count " << states.size() << " != layer count "
                             << model_->num_layers());
  std::vector<model::LayerTimes> times;
  times.reserve(states.size());
  for (std::size_t l = 0; l < states.size(); ++l) {
    times.push_back(ref_layer_times(l, states[l]));
  }
  return times;
}

const model::LayerTimes& CostBuilder::ref_layer_times(
    std::size_t layer, const model::LayerState& state) const {
  LayerMemo& slot = memo_slot(layer);
  if (!same_state(slot.state, state)) {
    slot.state = state;
    slot.times_valid = false;
    slot.mem_valid = false;  // memory was priced under the old state
  }
  if (!slot.times_valid) {
    slot.times = stage_costs_.reference().layer_times(
        model_->layers[layer], state, cfg_.micro_batch);
    slot.times_valid = true;
  }
  return slot.times;
}

std::vector<model::LayerTimes> CostBuilder::layer_times_full_rescan(
    std::span<const model::LayerState> states) const {
  DYNMO_CHECK(states.size() == model_->num_layers(),
              "state count " << states.size() << " != layer count "
                             << model_->num_layers());
  const model::LayerCostModel& ref = stage_costs_.reference();
  std::vector<model::LayerTimes> times;
  times.reserve(states.size());
  for (std::size_t l = 0; l < states.size(); ++l) {
    times.push_back(
        ref.layer_times(model_->layers[l], states[l], cfg_.micro_batch));
  }
  return times;
}

std::vector<double> CostBuilder::layer_total_seconds(
    std::span<const model::LayerState> states) const {
  const auto times = layer_times(states);
  std::vector<double> totals;
  totals.reserve(times.size());
  for (const auto& t : times) totals.push_back(t.total_s());
  return totals;
}

std::vector<double> CostBuilder::layer_memory_bytes(
    std::span<const model::LayerState> states, const StageMap& map) const {
  DYNMO_CHECK(states.size() == model_->num_layers(), "state count mismatch");
  DYNMO_CHECK(map.num_layers() == model_->num_layers(), "map layer mismatch");
  const model::LayerCostModel& ref = stage_costs_.reference();
  std::vector<double> mem;
  mem.reserve(states.size());
  for (std::size_t l = 0; l < states.size(); ++l) {
    // 1F1B keeps up to (S − stage) microbatches of activations resident;
    // bound by the microbatch count.
    const int s = map.stage_of(l);
    const int resident =
        std::min(cfg_.num_microbatches, map.num_stages() - s);
    LayerMemo& slot = memo_slot(l);
    if (!same_state(slot.state, states[l])) {
      slot.state = states[l];
      slot.times_valid = false;
      slot.mem_valid = false;
    }
    if (!slot.mem_valid || slot.mem_resident != resident) {
      slot.mem_bytes = ref.layer_memory_bytes(
          model_->layers[l], states[l], cfg_.micro_batch,
          static_cast<std::size_t>(std::max(1, resident)));
      slot.mem_resident = resident;
      slot.mem_valid = true;
    }
    mem.push_back(slot.mem_bytes);
  }
  return mem;
}

std::vector<double> CostBuilder::layer_memory_bytes_full_rescan(
    std::span<const model::LayerState> states, const StageMap& map) const {
  DYNMO_CHECK(states.size() == model_->num_layers(), "state count mismatch");
  DYNMO_CHECK(map.num_layers() == model_->num_layers(), "map layer mismatch");
  const model::LayerCostModel& ref = stage_costs_.reference();
  std::vector<double> mem;
  mem.reserve(states.size());
  for (std::size_t l = 0; l < states.size(); ++l) {
    const int s = map.stage_of(l);
    const int resident =
        std::min(cfg_.num_microbatches, map.num_stages() - s);
    mem.push_back(ref.layer_memory_bytes(
        model_->layers[l], states[l], cfg_.micro_batch,
        static_cast<std::size_t>(std::max(1, resident))));
  }
  return mem;
}

StageCosts CostBuilder::build(std::span<const model::LayerState> states,
                              const StageMap& map,
                              const MicrobatchScaleFn& mb_scale) const {
  DYNMO_CHECK(states.size() == model_->num_layers(), "state count mismatch");
  const int S = map.num_stages();
  StageCosts costs(S, cfg_.num_microbatches);

  // Homogeneous hardware: every stage() is the reference model, so the
  // per-layer memo behind layer_times() answers directly (bit-identical —
  // it stores the very doubles the reference model produced).
  const bool homogeneous = !stage_costs_.per_stage();
  for (int s = 0; s < S; ++s) {
    // Each stage's compute is charged on the GPU actually hosting it.
    const model::LayerCostModel& lc = stage_costs_.stage(s);
    for (std::size_t l = map.stage_begin(s); l < map.stage_end(s); ++l) {
      const auto t =
          homogeneous
              ? ref_layer_times(l, states[l])
              : lc.layer_times(model_->layers[l], states[l], cfg_.micro_batch);
      for (int mb = 0; mb < cfg_.num_microbatches; ++mb) {
        const double scale = mb_scale ? std::max(0.0, mb_scale(l, mb)) : 1.0;
        costs.fwd(s, mb) += t.forward_s * scale;
        costs.bwd_input(s, mb) += t.backward_input_s * scale;
        costs.bwd_weight(s, mb) += t.backward_weight_s * scale;
      }
    }
  }

  // Inter-stage transfer: activations of the boundary layer, over the link
  // the two hosting ranks actually share.
  const model::LayerCostModel& ref = stage_costs_.reference();
  for (int s = 0; s + 1 < S; ++s) {
    double bytes = 0.0;
    if (map.stage_size(s) > 0) {
      const std::size_t boundary = map.stage_end(s) - 1;
      bytes = ref.activation_message_bytes(
          model_->layers[boundary], states[boundary], cfg_.micro_batch);
    } else if (map.num_layers() > 0) {
      // Empty stage forwards its input unchanged.
      const std::size_t prev = map.stage_begin(s) > 0 ? map.stage_begin(s) - 1 : 0;
      bytes = ref.activation_message_bytes(model_->layers[prev],
                                           states[prev],
                                           cfg_.micro_batch);
    }
    costs.send(s) = comm_costs_.p2p_time(rank_of_stage(s),
                                         rank_of_stage(s + 1),
                                         static_cast<std::size_t>(bytes));
  }
  return costs;
}

}  // namespace dynmo::pipeline
