// Builds StageCosts for one iteration from the model description, the
// dynamic layer states, a stage map, and the hardware cost models.
//
// An optional per-(layer, microbatch) scale hook lets dynamism engines whose
// load fluctuates *within* an iteration (MoE and MoD token routing differs
// per microbatch) perturb individual microbatches, which is exactly the
// fine-grained imbalance DynMo's every-iteration rebalancing targets.
#pragma once

#include <functional>
#include <span>

#include "comm/cost_model.hpp"
#include "model/layer_cost.hpp"
#include "pipeline/schedule.hpp"
#include "pipeline/stage_map.hpp"

namespace dynmo::pipeline {

struct CostBuilderConfig {
  std::size_t micro_batch = 2;
  int num_microbatches = 4;
  /// Global ranks hosting consecutive stages are assumed consecutive, so the
  /// comm cost model can decide NVLink vs InfiniBand per boundary.
  int first_global_rank = 0;
};

using MicrobatchScaleFn = std::function<double(std::size_t layer, int mb)>;

class CostBuilder {
 public:
  CostBuilder(const model::ModelDesc& model, model::LayerCostModel layer_costs,
              comm::CostModel comm_costs, CostBuilderConfig cfg)
      : model_(&model), layer_costs_(layer_costs), comm_costs_(comm_costs),
        cfg_(cfg) {}

  /// Per-layer times for the current states (one microbatch).
  std::vector<model::LayerTimes> layer_times(
      std::span<const model::LayerState> states) const;

  /// Per-layer total (fwd+bwd) seconds — the balancers' by-time weights.
  std::vector<double> layer_total_seconds(
      std::span<const model::LayerState> states) const;

  /// Per-layer memory bytes under the given stage map (activation residency
  /// scales with in-flight microbatches = stage depth for 1F1B).
  std::vector<double> layer_memory_bytes(
      std::span<const model::LayerState> states, const StageMap& map) const;

  /// Assemble the full StageCosts table for one iteration.
  StageCosts build(std::span<const model::LayerState> states,
                   const StageMap& map,
                   const MicrobatchScaleFn& mb_scale = {}) const;

  const CostBuilderConfig& config() const { return cfg_; }
  const model::LayerCostModel& layer_cost_model() const { return layer_costs_; }
  const comm::CostModel& comm_cost_model() const { return comm_costs_; }

 private:
  const model::ModelDesc* model_;
  model::LayerCostModel layer_costs_;
  comm::CostModel comm_costs_;
  CostBuilderConfig cfg_;
};

}  // namespace dynmo::pipeline
