// Builds StageCosts for one iteration from the model description, the
// dynamic layer states, a stage map, and the hardware cost models.
//
// Cluster knowledge arrives through two deployment-derived inputs instead
// of the old `first_global_rank + stage` guess:
//   * `CostBuilderConfig::stage_to_rank` — stage s runs on that global
//     rank, so boundary activation sends are priced by the link the two
//     hosting ranks actually share (a cluster::Deployment-backed
//     comm::CostModel resolves it to the shortest-path effective link);
//   * `model::StageCostModels` — per-stage GPU specs, so a stage hosted by
//     a slower GPU is charged that GPU's compute time (heterogeneous
//     clusters), while balancing weights stay in reference-GPU seconds.
//
// An optional per-(layer, microbatch) scale hook lets dynamism engines whose
// load fluctuates *within* an iteration (MoE and MoD token routing differs
// per microbatch) perturb individual microbatches, which is exactly the
// fine-grained imbalance DynMo's every-iteration rebalancing targets.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "comm/cost_model.hpp"
#include "model/layer_cost.hpp"
#include "pipeline/schedule.hpp"
#include "pipeline/stage_map.hpp"

namespace dynmo::pipeline {

struct CostBuilderConfig {
  std::size_t micro_batch = 2;
  int num_microbatches = 4;
  /// Stage s runs on global rank stage_to_rank[s]; empty → stage s is rank
  /// s.  Boundary sends are priced over these ranks.
  std::vector<int> stage_to_rank{};
};

using MicrobatchScaleFn = std::function<double(std::size_t layer, int mb)>;

class CostBuilder {
 public:
  /// `stage_costs` may be a bare model::LayerCostModel (uniform hardware)
  /// or a full per-stage set from a heterogeneous deployment.
  CostBuilder(const model::ModelDesc& model, model::StageCostModels stage_costs,
              comm::CostModel comm_costs, CostBuilderConfig cfg)
      : model_(&model), stage_costs_(std::move(stage_costs)),
        comm_costs_(std::move(comm_costs)), cfg_(std::move(cfg)) {}

  /// Per-layer times for the current states (one microbatch) on the
  /// *reference* GPU — the profile currency the balancers consume.
  ///
  /// Memoized per layer on the LayerState: the roofline evaluation reruns
  /// only for layers whose dynamic state changed since the last call
  /// (dynamism typically perturbs a few layers per step; frozen and
  /// steady-state layers are cache hits returning the stored doubles —
  /// bit-identical by construction).  Invalidation rule: any field of the
  /// layer's LayerState differing from the cached snapshot.
  std::vector<model::LayerTimes> layer_times(
      std::span<const model::LayerState> states) const;
  /// Reference twin of layer_times(): always re-evaluates the cost model,
  /// kept alive under test as the differential oracle for the memo.
  std::vector<model::LayerTimes> layer_times_full_rescan(
      std::span<const model::LayerState> states) const;

  /// Per-layer total (fwd+bwd) seconds — the balancers' by-time weights.
  std::vector<double> layer_total_seconds(
      std::span<const model::LayerState> states) const;

  /// Per-layer memory bytes under the given stage map (activation residency
  /// scales with in-flight microbatches = stage depth for 1F1B).  Memoized
  /// per layer on (LayerState, resident microbatches) — a layer re-prices
  /// only when its state or its stage-depth-derived residency changed.
  std::vector<double> layer_memory_bytes(
      std::span<const model::LayerState> states, const StageMap& map) const;
  /// Reference twin of layer_memory_bytes(): always re-evaluates.
  std::vector<double> layer_memory_bytes_full_rescan(
      std::span<const model::LayerState> states, const StageMap& map) const;

  /// Assemble the full StageCosts table for one iteration: compute per
  /// stage on the stage's own GPU, boundary sends over the stages' ranks.
  StageCosts build(std::span<const model::LayerState> states,
                   const StageMap& map,
                   const MicrobatchScaleFn& mb_scale = {}) const;

  /// Global rank hosting a stage (identity when no placement is set).
  int rank_of_stage(int stage) const;

  const CostBuilderConfig& config() const { return cfg_; }
  const model::LayerCostModel& layer_cost_model() const {
    return stage_costs_.reference();
  }
  const model::StageCostModels& stage_cost_models() const {
    return stage_costs_;
  }
  const comm::CostModel& comm_cost_model() const { return comm_costs_; }

 private:
  /// One memo slot per layer.  `state` is the snapshot the cached values
  /// were priced under; a slot is valid only while the layer's current
  /// LayerState equals it field-for-field.
  struct LayerMemo {
    model::LayerState state{};
    bool times_valid = false;
    model::LayerTimes times{};
    bool mem_valid = false;
    int mem_resident = -1;
    double mem_bytes = 0.0;
  };
  LayerMemo& memo_slot(std::size_t layer) const;
  /// Memoized reference-GPU times for one layer (the shared cache behind
  /// layer_times() and the homogeneous fast path of build()).
  const model::LayerTimes& ref_layer_times(
      std::size_t layer, const model::LayerState& state) const;

  const model::ModelDesc* model_;
  model::StageCostModels stage_costs_;
  comm::CostModel comm_costs_;
  CostBuilderConfig cfg_;
  /// Per-layer memo for layer_times / layer_memory_bytes (reference GPU).
  /// CostBuilder is consumed single-threaded (runtime session), so the
  /// mutable cache needs no lock.
  mutable std::vector<LayerMemo> memo_;
};

}  // namespace dynmo::pipeline
