// Builds StageCosts for one iteration from the model description, the
// dynamic layer states, a stage map, and the hardware cost models.
//
// Cluster knowledge arrives through two deployment-derived inputs instead
// of the old `first_global_rank + stage` guess:
//   * `CostBuilderConfig::stage_to_rank` — stage s runs on that global
//     rank, so boundary activation sends are priced by the link the two
//     hosting ranks actually share (a cluster::Deployment-backed
//     comm::CostModel resolves it to the shortest-path effective link);
//   * `model::StageCostModels` — per-stage GPU specs, so a stage hosted by
//     a slower GPU is charged that GPU's compute time (heterogeneous
//     clusters), while balancing weights stay in reference-GPU seconds.
//
// An optional per-(layer, microbatch) scale hook lets dynamism engines whose
// load fluctuates *within* an iteration (MoE and MoD token routing differs
// per microbatch) perturb individual microbatches, which is exactly the
// fine-grained imbalance DynMo's every-iteration rebalancing targets.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "comm/cost_model.hpp"
#include "model/layer_cost.hpp"
#include "pipeline/schedule.hpp"
#include "pipeline/stage_map.hpp"

namespace dynmo::pipeline {

struct CostBuilderConfig {
  std::size_t micro_batch = 2;
  int num_microbatches = 4;
  /// Stage s runs on global rank stage_to_rank[s]; empty → stage s is rank
  /// s.  Boundary sends are priced over these ranks.
  std::vector<int> stage_to_rank{};
};

using MicrobatchScaleFn = std::function<double(std::size_t layer, int mb)>;

class CostBuilder {
 public:
  /// `stage_costs` may be a bare model::LayerCostModel (uniform hardware)
  /// or a full per-stage set from a heterogeneous deployment.
  CostBuilder(const model::ModelDesc& model, model::StageCostModels stage_costs,
              comm::CostModel comm_costs, CostBuilderConfig cfg)
      : model_(&model), stage_costs_(std::move(stage_costs)),
        comm_costs_(std::move(comm_costs)), cfg_(std::move(cfg)) {}

  /// Per-layer times for the current states (one microbatch) on the
  /// *reference* GPU — the profile currency the balancers consume.
  std::vector<model::LayerTimes> layer_times(
      std::span<const model::LayerState> states) const;

  /// Per-layer total (fwd+bwd) seconds — the balancers' by-time weights.
  std::vector<double> layer_total_seconds(
      std::span<const model::LayerState> states) const;

  /// Per-layer memory bytes under the given stage map (activation residency
  /// scales with in-flight microbatches = stage depth for 1F1B).
  std::vector<double> layer_memory_bytes(
      std::span<const model::LayerState> states, const StageMap& map) const;

  /// Assemble the full StageCosts table for one iteration: compute per
  /// stage on the stage's own GPU, boundary sends over the stages' ranks.
  StageCosts build(std::span<const model::LayerState> states,
                   const StageMap& map,
                   const MicrobatchScaleFn& mb_scale = {}) const;

  /// Global rank hosting a stage (identity when no placement is set).
  int rank_of_stage(int stage) const;

  const CostBuilderConfig& config() const { return cfg_; }
  const model::LayerCostModel& layer_cost_model() const {
    return stage_costs_.reference();
  }
  const model::StageCostModels& stage_cost_models() const {
    return stage_costs_;
  }
  const comm::CostModel& comm_cost_model() const { return comm_costs_; }

 private:
  const model::ModelDesc* model_;
  model::StageCostModels stage_costs_;
  comm::CostModel comm_costs_;
  CostBuilderConfig cfg_;
};

}  // namespace dynmo::pipeline
