#include "pipeline/schedule.hpp"

#include <algorithm>
#include <deque>
#include <numeric>

namespace dynmo::pipeline {

const char* to_string(ScheduleKind k) {
  switch (k) {
    case ScheduleKind::GPipe: return "gpipe";
    case ScheduleKind::OneFOneB: return "1f1b";
    case ScheduleKind::ZbH1: return "zb-h1";
  }
  return "?";
}

StageCosts::StageCosts(int num_stages, int num_microbatches)
    : stages_(num_stages), microbatches_(num_microbatches) {
  DYNMO_CHECK(num_stages > 0 && num_microbatches > 0,
              "stages/microbatches must be positive");
  const auto n = static_cast<std::size_t>(num_stages) *
                 static_cast<std::size_t>(num_microbatches);
  fwd_.assign(n, 0.0);
  bwd_input_.assign(n, 0.0);
  bwd_weight_.assign(n, 0.0);
  send_.assign(static_cast<std::size_t>(std::max(0, num_stages - 1)), 0.0);
}

void StageCosts::set_stage(int s, double fwd_s, double bwd_input_s,
                           double bwd_weight_s) {
  for (int mb = 0; mb < microbatches_; ++mb) {
    fwd(s, mb) = fwd_s;
    bwd_input(s, mb) = bwd_input_s;
    bwd_weight(s, mb) = bwd_weight_s;
  }
}

double StageCosts::total_work() const {
  return std::accumulate(fwd_.begin(), fwd_.end(), 0.0) +
         std::accumulate(bwd_input_.begin(), bwd_input_.end(), 0.0) +
         std::accumulate(bwd_weight_.begin(), bwd_weight_.end(), 0.0);
}

double PipelineResult::avg_idleness() const {
  if (busy_s.empty() || makespan_s <= 0.0) return 0.0;
  double acc = 0.0;
  for (double idle : idle_s) acc += idle / makespan_s;
  return acc / static_cast<double>(idle_s.size());
}

double PipelineResult::bubble_ratio() const {
  if (busy_s.empty() || makespan_s <= 0.0) return 0.0;
  const double busy_total =
      std::accumulate(busy_s.begin(), busy_s.end(), 0.0);
  return 1.0 - busy_total /
                   (makespan_s * static_cast<double>(busy_s.size()));
}

double PipelineResult::max_idleness() const {
  if (idle_s.empty() || makespan_s <= 0.0) return 0.0;
  return *std::max_element(idle_s.begin(), idle_s.end()) / makespan_s;
}

namespace {

enum class OpKind { F, B, W };

struct Op {
  OpKind kind;
  int mb;
};

/// Per-stage op order for the requested schedule.  For GPipe and 1F1B the
/// backward-weight work is fused into B; ZB-H1 emits separate W ops.
std::vector<Op> stage_program(ScheduleKind kind, int s, int num_stages,
                              int m) {
  std::vector<Op> ops;
  switch (kind) {
    case ScheduleKind::GPipe: {
      for (int i = 0; i < m; ++i) ops.push_back({OpKind::F, i});
      for (int i = m - 1; i >= 0; --i) ops.push_back({OpKind::B, i});
      break;
    }
    case ScheduleKind::OneFOneB:
    case ScheduleKind::ZbH1: {
      const int warmup = std::min(m, num_stages - 1 - s);
      int f = 0;
      int b = 0;
      for (int i = 0; i < warmup; ++i) ops.push_back({OpKind::F, f++});
      while (f < m) {
        ops.push_back({OpKind::F, f++});
        ops.push_back({OpKind::B, b++});
      }
      while (b < m) ops.push_back({OpKind::B, b++});
      break;
    }
  }
  return ops;
}

}  // namespace

PipelineResult simulate(ScheduleKind kind, const StageCosts& costs,
                        const OpRecorder& recorder) {
  const int S = costs.num_stages();
  const int m = costs.num_microbatches();
  const bool split_wgrad = (kind == ScheduleKind::ZbH1);

  // done[s][mb] for F and B; -1 = not yet executed.
  const auto idx = [m](int s, int mb) {
    return static_cast<std::size_t>(s) * static_cast<std::size_t>(m) +
           static_cast<std::size_t>(mb);
  };
  std::vector<double> f_done(static_cast<std::size_t>(S) * m, -1.0);
  std::vector<double> b_done(static_cast<std::size_t>(S) * m, -1.0);

  struct StageRun {
    std::vector<Op> program;
    std::size_t next = 0;
    double time = 0.0;
    double busy = 0.0;
    std::deque<int> pending_w;  // microbatches with deferred wgrad (ZB)
  };
  std::vector<StageRun> runs(static_cast<std::size_t>(S));
  for (int s = 0; s < S; ++s) {
    runs[static_cast<std::size_t>(s)].program = stage_program(kind, s, S, m);
  }

  const double kNotReady = -1.0;
  // Earliest time the op may *start* on its stage; kNotReady if the
  // cross-stage dependency has not been simulated yet.
  const auto ready_time = [&](int s, const Op& op) -> double {
    switch (op.kind) {
      case OpKind::F: {
        if (s == 0) return 0.0;
        const double dep = f_done[idx(s - 1, op.mb)];
        return dep < 0.0 ? kNotReady : dep + costs.send(s - 1);
      }
      case OpKind::B: {
        if (s == S - 1) {
          const double dep = f_done[idx(s, op.mb)];
          return dep < 0.0 ? kNotReady : dep;
        }
        const double dep = b_done[idx(s + 1, op.mb)];
        return dep < 0.0 ? kNotReady : dep + costs.send(s);
      }
      case OpKind::W: return 0.0;  // same-stage order guarantees B done
    }
    return kNotReady;
  };

  const auto duration = [&](int s, const Op& op) -> double {
    switch (op.kind) {
      case OpKind::F: return costs.fwd(s, op.mb);
      case OpKind::B:
        return split_wgrad ? costs.bwd_input(s, op.mb)
                           : costs.bwd_input(s, op.mb) +
                                 costs.bwd_weight(s, op.mb);
      case OpKind::W: return costs.bwd_weight(s, op.mb);
    }
    return 0.0;
  };

  bool progress = true;
  while (progress) {
    progress = false;
    for (int s = 0; s < S; ++s) {
      auto& run = runs[static_cast<std::size_t>(s)];
      while (run.next < run.program.size()) {
        const Op op = run.program[run.next];
        const double ready = ready_time(s, op);
        if (ready == kNotReady) {
          break;  // dependency not simulated yet: revisit next pass
        }
        // ZB-H1: before stalling until `ready`, fill the bubble with any
        // deferred weight-gradient work that fits entirely inside it.
        if (split_wgrad && ready > run.time) {
          while (!run.pending_w.empty()) {
            const int wmb = run.pending_w.front();
            const double wdur = costs.bwd_weight(s, wmb);
            if (run.time + wdur > ready) break;
            if (recorder) recorder(s, wmb, 'W', run.time, wdur);
            run.time += wdur;
            run.busy += wdur;
            run.pending_w.pop_front();
          }
        }
        const double start = std::max(run.time, ready);
        const double dur = duration(s, op);
        if (recorder) {
          recorder(s, op.mb, op.kind == OpKind::F ? 'F' : 'B', start, dur);
        }
        run.time = start + dur;
        run.busy += dur;
        if (op.kind == OpKind::F) {
          f_done[idx(s, op.mb)] = run.time;
        } else if (op.kind == OpKind::B) {
          b_done[idx(s, op.mb)] = run.time;
          if (split_wgrad) run.pending_w.push_back(op.mb);
        }
        ++run.next;
        progress = true;
      }
    }
  }

  // Drain leftover weight-gradient work (must finish before the optimizer
  // step at iteration end).
  for (int s = 0; s < S; ++s) {
    auto& run = runs[static_cast<std::size_t>(s)];
    DYNMO_CHECK(run.next == run.program.size(),
                "pipeline deadlock at stage " << s << ": op " << run.next
                                              << '/' << run.program.size());
    while (!run.pending_w.empty()) {
      const double wdur = costs.bwd_weight(s, run.pending_w.front());
      if (recorder) recorder(s, run.pending_w.front(), 'W', run.time, wdur);
      run.time += wdur;
      run.busy += wdur;
      run.pending_w.pop_front();
    }
  }

  PipelineResult res;
  for (const auto& run : runs) {
    res.makespan_s = std::max(res.makespan_s, run.time);
  }
  res.busy_s.reserve(runs.size());
  res.idle_s.reserve(runs.size());
  for (const auto& run : runs) {
    res.busy_s.push_back(run.busy);
    res.idle_s.push_back(res.makespan_s - run.busy);
  }
  return res;
}

}  // namespace dynmo::pipeline
