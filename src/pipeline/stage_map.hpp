// StageMap: contiguous assignment of model layers to pipeline stages.
//
// Pipeline parallelism requires layers to stay in model order, so an
// assignment is fully described by S+1 boundaries.  All DynMo balancers
// produce StageMaps; the simulator and the threaded runtime consume them.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace dynmo::pipeline {

class StageMap {
 public:
  StageMap() = default;

  /// boundaries has num_stages()+1 entries, boundaries.front()==0,
  /// boundaries.back()==num_layers, non-decreasing.  Empty stages allowed
  /// (a fully re-packed-away worker hosts zero layers).
  static StageMap from_boundaries(std::vector<std::size_t> boundaries);

  /// Uniform split: layer counts differ by at most one (Megatron-LM style).
  static StageMap uniform(std::size_t num_layers, int num_stages);

  /// Split so that each stage's share of `weights` is as even as a greedy
  /// prefix scan can make it (DeepSpeed "param" method analogue).
  static StageMap greedy_by_weight(std::span<const double> weights,
                                   int num_stages);

  int num_stages() const {
    return boundaries_.empty() ? 0 : static_cast<int>(boundaries_.size()) - 1;
  }
  std::size_t num_layers() const {
    return boundaries_.empty() ? 0 : boundaries_.back();
  }
  std::size_t stage_begin(int s) const {
    return boundaries_[static_cast<std::size_t>(s)];
  }
  std::size_t stage_end(int s) const {
    return boundaries_[static_cast<std::size_t>(s) + 1];
  }
  std::size_t stage_size(int s) const { return stage_end(s) - stage_begin(s); }
  bool stage_empty(int s) const { return stage_size(s) == 0; }

  /// Stage hosting `layer` (layers on a boundary belong to the later-begun
  /// stage); empty stages are skipped naturally.  O(log S) binary search
  /// over the boundaries.
  int stage_of(std::size_t layer) const;
  /// Reference twin of stage_of: the original O(S) linear scan, kept alive
  /// under test as the differential oracle for the binary search.
  int stage_of_full_rescan(std::size_t layer) const;

  /// Per-stage sums of an arbitrary per-layer quantity.
  std::vector<double> stage_loads(std::span<const double> per_layer) const;

  /// Number of stages hosting at least one layer.
  int active_stages() const;

  const std::vector<std::size_t>& boundaries() const { return boundaries_; }

  std::string to_string() const;

  bool operator==(const StageMap&) const = default;

 private:
  std::vector<std::size_t> boundaries_;
};

}  // namespace dynmo::pipeline
