// In-process transport: the original World substrate, now behind the
// Transport interface.  One Mailbox per rank; send() is a queue push in the
// sender's thread, so latency is one lock acquisition and delivery order is
// trivially the send-call order per (source, tag).
#pragma once

#include <memory>
#include <vector>

#include "comm/mailbox.hpp"
#include "comm/transport.hpp"

namespace dynmo::comm {

class InProcTransport final : public Transport {
 public:
  explicit InProcTransport(int num_ranks);

  std::string_view name() const override { return "inproc"; }
  int size() const override { return static_cast<int>(mailboxes_.size()); }

  void send(int dst, Message msg) override;
  std::optional<Message> recv(int self, int context, int source,
                              Tag tag) override;
  std::optional<Message> try_recv(int self, int context, int source,
                                  Tag tag) override;
  std::size_t pending(int self) const override;
  void close(int self) override;
  bool closed(int self) const override;
  void shutdown() override;

 private:
  Mailbox& box(int rank) const;

  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
};

}  // namespace dynmo::comm
