#include "comm/transport.hpp"

#include <string>

#include "comm/inproc_transport.hpp"
#include "comm/socket_transport.hpp"
#include "core/error.hpp"

namespace dynmo::comm {

const char* to_string(TransportKind kind) {
  switch (kind) {
    case TransportKind::InProc: return "inproc";
    case TransportKind::Socket: return "socket";
  }
  return "unknown";
}

TransportKind parse_transport(std::string_view name) {
  if (name == "inproc") return TransportKind::InProc;
  if (name == "socket") return TransportKind::Socket;
  throw Error("unknown transport '" + std::string(name) +
              "' (expected 'inproc' or 'socket')");
}

std::unique_ptr<Transport> make_transport(TransportKind kind, int num_ranks) {
  switch (kind) {
    case TransportKind::InProc:
      return std::make_unique<InProcTransport>(num_ranks);
    case TransportKind::Socket:
      return std::make_unique<SocketTransport>(num_ranks);
  }
  throw Error("unknown TransportKind");
}

}  // namespace dynmo::comm
