// Alpha-beta communication cost model.
//
// The simulator charges communication time with the standard postal model
//   t(bytes) = alpha + bytes / beta
// with per-link-tier parameters.  Tiers mirror the paper's testbed: NVLink
// (NVSwitch, intra-node), InfiniBand NDR200 (inter-node), PCIe Gen5 (host
// staging).  Collective costs use the textbook formulas for the algorithms
// the Communicator implements (binomial tree, ring, direct exchange).
#pragma once

#include <cstddef>
#include <cmath>
#include <functional>
#include <utility>

namespace dynmo::comm {

/// Link tier between two workers.
enum class LinkTier { NvLink, InfiniBand, Pcie, Ethernet };

struct LinkParams {
  double alpha_s;        ///< latency, seconds
  double beta_bytes_s;   ///< bandwidth, bytes/second
};

struct CostModelConfig {
  // H100 SXM5 node: NVLink4 x6 ~ 900 GB/s per GPU pair-aggregate; we model
  // the per-transfer effective bandwidth (~450e9 unidirectional realistic).
  LinkParams nvlink{2e-6, 450e9};
  // 4x 200Gbps NDR200 per node = 100 GB/s node-aggregate; per-GPU-pair
  // effective ~25 GB/s with ~5 us latency (RDMA).
  LinkParams infiniband{5e-6, 25e9};
  LinkParams pcie{4e-6, 55e9};
  // 100GbE TCP fallback for commodity clusters: ~12.5 GB/s line rate,
  // tens-of-microseconds latency through the kernel stack.
  LinkParams ethernet{30e-6, 12.5e9};
  int gpus_per_node = 4;  ///< paper testbed: 4x H100 per node
};

class CostModel {
 public:
  /// Per-rank-pair link override.  When set, point-to-point transfers are
  /// priced by whatever the resolver returns (e.g. the shortest-path
  /// effective link of a cluster::Topology) instead of the flat two-tier
  /// same-node/cross-node rule.  Collectives keep the tier formulas.
  using LinkResolver = std::function<LinkParams(int rank_a, int rank_b)>;

  explicit CostModel(CostModelConfig cfg = {}) : cfg_(cfg) {}

  const CostModelConfig& config() const { return cfg_; }

  void set_link_resolver(LinkResolver resolver) {
    resolver_ = std::move(resolver);
  }
  bool has_link_resolver() const { return static_cast<bool>(resolver_); }

  /// Which tier connects two global ranks (same node → NVLink).
  LinkTier tier(int rank_a, int rank_b) const {
    return node_of(rank_a) == node_of(rank_b) ? LinkTier::NvLink
                                              : LinkTier::InfiniBand;
  }

  int node_of(int rank) const { return rank / cfg_.gpus_per_node; }

  /// Effective link between two ranks: resolver if set, tier rule otherwise.
  LinkParams link(int rank_a, int rank_b) const {
    if (resolver_) return resolver_(rank_a, rank_b);
    return params(tier(rank_a, rank_b));
  }

  double p2p_time(int rank_a, int rank_b, std::size_t bytes) const {
    const LinkParams lp = link(rank_a, rank_b);
    return lp.alpha_s + static_cast<double>(bytes) / lp.beta_bytes_s;
  }

  /// Ring allreduce over n ranks: 2(n-1)/n * bytes over the slowest link,
  /// plus 2(n-1) latency terms.
  double allreduce_time(int n, std::size_t bytes, bool crosses_nodes) const {
    if (n <= 1) return 0.0;
    const LinkParams& lp =
        params(crosses_nodes ? LinkTier::InfiniBand : LinkTier::NvLink);
    const double nn = static_cast<double>(n);
    return 2.0 * (nn - 1.0) * lp.alpha_s +
           2.0 * (nn - 1.0) / nn * static_cast<double>(bytes) / lp.beta_bytes_s;
  }

  /// Binomial broadcast: ceil(log2 n) * (alpha + bytes/beta).
  double broadcast_time(int n, std::size_t bytes, bool crosses_nodes) const {
    if (n <= 1) return 0.0;
    const LinkParams& lp =
        params(crosses_nodes ? LinkTier::InfiniBand : LinkTier::NvLink);
    const double rounds = std::ceil(std::log2(static_cast<double>(n)));
    return rounds * (lp.alpha_s + static_cast<double>(bytes) / lp.beta_bytes_s);
  }

  /// all_to_all over n ranks, each sending `bytes` to everyone (MoE token
  /// exchange).  Direct exchange: (n-1) messages serialized per NIC.
  double alltoall_time(int n, std::size_t bytes_per_peer,
                       bool crosses_nodes) const {
    if (n <= 1) return 0.0;
    const LinkParams& lp =
        params(crosses_nodes ? LinkTier::InfiniBand : LinkTier::NvLink);
    const double nn = static_cast<double>(n);
    return (nn - 1.0) *
           (lp.alpha_s + static_cast<double>(bytes_per_peer) / lp.beta_bytes_s);
  }

  const LinkParams& params(LinkTier t) const {
    switch (t) {
      case LinkTier::NvLink: return cfg_.nvlink;
      case LinkTier::InfiniBand: return cfg_.infiniband;
      case LinkTier::Pcie: return cfg_.pcie;
      case LinkTier::Ethernet: return cfg_.ethernet;
    }
    return cfg_.pcie;  // unreachable
  }

 private:
  CostModelConfig cfg_;
  LinkResolver resolver_;
};

}  // namespace dynmo::comm
