// Alpha-beta communication cost model.
//
// The simulator charges communication time with the standard postal model
//   t(bytes) = alpha + bytes / beta
// with per-link-tier parameters.  Tiers mirror the paper's testbed: NVLink
// (NVSwitch, intra-node), InfiniBand NDR200 (inter-node), PCIe Gen5 (host
// staging).  Collective costs use the textbook formulas for the algorithms
// the Communicator implements (binomial tree, ring, direct exchange).
//
// Two pluggable resolvers let a cluster::Topology / cluster::Deployment own
// the cluster facts instead of the flat `gpus_per_node` rule:
//   * LinkResolver — per-rank-pair effective link for point-to-point
//     transfers (shortest path over the real graph).
//   * NodeResolver — rank → node membership, so tier() and group() agree
//     with the topology even when node sizes are non-uniform or differ from
//     `CostModelConfig::gpus_per_node`.
// The RankGroup overloads of the collective formulas compute *hierarchical*
// costs (reduce-scatter inside each node, ring across node leaders) and
// reduce exactly to the flat formulas when the group spans a single node.
#pragma once

#include <cstddef>
#include <cmath>
#include <functional>
#include <span>
#include <utility>
#include <vector>

namespace dynmo::comm {

/// Link tier between two workers.
enum class LinkTier { NvLink, InfiniBand, Pcie, Ethernet };

struct LinkParams {
  double alpha_s;        ///< latency, seconds
  double beta_bytes_s;   ///< bandwidth, bytes/second
};

/// Reference payload for ranking links worst-first (a typical transformer
/// layer's 64 MiB migration state — the same payload cluster::Topology
/// selects paths with); only breaks ties between latency-heavy and
/// bandwidth-heavy links.
inline constexpr std::size_t kLinkRefBytes = 64u << 20;

inline double link_ref_time(const LinkParams& lp) {
  return lp.alpha_s + static_cast<double>(kLinkRefBytes) / lp.beta_bytes_s;
}

struct CostModelConfig {
  // H100 SXM5 node: NVLink4 x6 ~ 900 GB/s per GPU pair-aggregate; we model
  // the per-transfer effective bandwidth (~450e9 unidirectional realistic).
  LinkParams nvlink{2e-6, 450e9};
  // 4x 200Gbps NDR200 per node = 100 GB/s node-aggregate; per-GPU-pair
  // effective ~25 GB/s with ~5 us latency (RDMA).
  LinkParams infiniband{5e-6, 25e9};
  LinkParams pcie{4e-6, 55e9};
  // 100GbE TCP fallback for commodity clusters: ~12.5 GB/s line rate,
  // tens-of-microseconds latency through the kernel stack.
  LinkParams ethernet{30e-6, 12.5e9};
  /// Uniform-node-size fallback for node membership (paper testbed: 4x H100
  /// per node).  Only consulted when no NodeResolver is installed; a
  /// Topology/Deployment-backed model is the single source of membership
  /// truth and this value is ignored.
  int gpus_per_node = 4;
};

/// Node-grouped membership of a set of ranks, plus the two links the
/// hierarchical collective formulas price by.  Built by CostModel::group()
/// (tier parameters) or cluster::Deployment::group() (the topology's actual
/// worst member links); can also be assembled by hand for what-if costing.
struct RankGroup {
  std::vector<int> node_sizes;  ///< members per distinct node, all >= 1
  LinkParams intra{0.0, 0.0};   ///< link within a node
  LinkParams inter{0.0, 0.0};   ///< link between node leaders

  int num_nodes() const { return static_cast<int>(node_sizes.size()); }
  int total_ranks() const;
  int max_node_size() const;
  int min_node_size() const;
};

struct CollectiveBytesSplit {
  double intra_node = 0.0;
  double inter_node = 0.0;
};

/// Aggregate wire bytes one hierarchical ring allreduce of `bytes` moves,
/// split by node boundary — the byte-accounting companion to
/// CostModel::allreduce_time(RankGroup, bytes): each node's intra ring
/// moves 2(m_i−1)·bytes inside the node, the leader ring moves
/// 2(k−1)·(bytes/m_min) across the fabric.  Degenerates to the flat ring's
/// 2(n−1)·bytes on a single node (all intra) and on all-singleton nodes
/// (all inter).
CollectiveBytesSplit allreduce_bytes(const RankGroup& g, std::size_t bytes);

class CostModel {
 public:
  /// Per-rank-pair link override.  When set, point-to-point transfers are
  /// priced by whatever the resolver returns (e.g. the shortest-path
  /// effective link of a cluster::Topology) instead of the flat two-tier
  /// same-node/cross-node rule.
  using LinkResolver = std::function<LinkParams(int rank_a, int rank_b)>;
  /// Rank → node membership override (non-uniform node sizes).
  using NodeResolver = std::function<int(int rank)>;

  explicit CostModel(CostModelConfig cfg = {}) : cfg_(cfg) {}

  const CostModelConfig& config() const { return cfg_; }

  void set_link_resolver(LinkResolver resolver) {
    resolver_ = std::move(resolver);
  }
  bool has_link_resolver() const { return static_cast<bool>(resolver_); }

  void set_node_resolver(NodeResolver resolver) {
    node_resolver_ = std::move(resolver);
  }
  bool has_node_resolver() const { return static_cast<bool>(node_resolver_); }

  /// Which tier connects two global ranks (same node → NVLink).
  LinkTier tier(int rank_a, int rank_b) const {
    return same_node(rank_a, rank_b) ? LinkTier::NvLink
                                     : LinkTier::InfiniBand;
  }

  int node_of(int rank) const {
    return node_resolver_ ? node_resolver_(rank) : rank / cfg_.gpus_per_node;
  }

  /// Whether two ranks share a node under this model's membership rule —
  /// the bit that splits migration traffic into cheap intra-node moves and
  /// expensive fabric crossings.
  bool same_node(int rank_a, int rank_b) const {
    return node_of(rank_a) == node_of(rank_b);
  }

  /// Effective link between two ranks: resolver if set, tier rule otherwise.
  LinkParams link(int rank_a, int rank_b) const {
    if (resolver_) return resolver_(rank_a, rank_b);
    return params(tier(rank_a, rank_b));
  }

  double p2p_time(int rank_a, int rank_b, std::size_t bytes) const {
    const LinkParams lp = link(rank_a, rank_b);
    return lp.alpha_s + static_cast<double>(bytes) / lp.beta_bytes_s;
  }

  /// Node-grouped membership of `ranks` under this model's membership rule,
  /// with intra/inter links resolved to the worst (slowest for a reference
  /// payload) member pair when a link resolver is installed, tier
  /// parameters otherwise.
  RankGroup group(std::span<const int> ranks) const;

  // ------------------------------------------------- flat collectives
  // Uniform-link formulas: every hop is priced at one tier, chosen by the
  // `crosses_nodes` bit.  Kept for synthetic clusters (e.g. pricing a DP
  // ring whose replicas are outside the topology); the RankGroup overloads
  // below are the hierarchical versions every Deployment consumer uses.

  /// Ring allreduce over n ranks: 2(n-1)/n * bytes over the slowest link,
  /// plus 2(n-1) latency terms.
  double allreduce_time(int n, std::size_t bytes, bool crosses_nodes) const {
    if (n <= 1) return 0.0;
    return ring_allreduce(params(crosses_nodes ? LinkTier::InfiniBand
                                               : LinkTier::NvLink),
                          n, static_cast<double>(bytes));
  }

  /// Binomial broadcast: ceil(log2 n) * (alpha + bytes/beta).
  double broadcast_time(int n, std::size_t bytes, bool crosses_nodes) const {
    if (n <= 1) return 0.0;
    const LinkParams& lp =
        params(crosses_nodes ? LinkTier::InfiniBand : LinkTier::NvLink);
    const double rounds = std::ceil(std::log2(static_cast<double>(n)));
    return rounds * (lp.alpha_s + static_cast<double>(bytes) / lp.beta_bytes_s);
  }

  /// all_to_all over n ranks, each sending `bytes` to everyone (MoE token
  /// exchange).  Direct exchange: (n-1) messages serialized per NIC.
  double alltoall_time(int n, std::size_t bytes_per_peer,
                       bool crosses_nodes) const {
    if (n <= 1) return 0.0;
    const LinkParams& lp =
        params(crosses_nodes ? LinkTier::InfiniBand : LinkTier::NvLink);
    const double nn = static_cast<double>(n);
    return (nn - 1.0) *
           (lp.alpha_s + static_cast<double>(bytes_per_peer) / lp.beta_bytes_s);
  }

  // ------------------------------------------ hierarchical collectives
  // Group-aware formulas over the real node membership:
  //   allreduce — reduce-scatter + allgather inside each node (NVLink),
  //               ring allreduce of the per-node shards across node leaders;
  //   broadcast — binomial across node leaders, then binomial inside nodes;
  //   alltoall  — 2D exchange: regroup by rail inside the node, then one
  //               aggregated message per remote node along the rails.
  // Each reduces exactly to the matching flat intra-node formula when the
  // group spans one node, and to the flat cross-node formula when every
  // node holds a single member.  Non-uniform node sizes are gated by the
  // worst node (largest for intra phases, smallest shard for inter).

  double allreduce_time(const RankGroup& g, std::size_t bytes) const;
  double broadcast_time(const RankGroup& g, std::size_t bytes) const;
  double alltoall_time(const RankGroup& g, std::size_t bytes_per_peer) const;

  const LinkParams& params(LinkTier t) const {
    switch (t) {
      case LinkTier::NvLink: return cfg_.nvlink;
      case LinkTier::InfiniBand: return cfg_.infiniband;
      case LinkTier::Pcie: return cfg_.pcie;
      case LinkTier::Ethernet: return cfg_.ethernet;
    }
    return cfg_.pcie;  // unreachable
  }

 private:
  static double ring_allreduce(const LinkParams& lp, int n, double bytes) {
    const double nn = static_cast<double>(n);
    return 2.0 * (nn - 1.0) * lp.alpha_s +
           2.0 * (nn - 1.0) / nn * bytes / lp.beta_bytes_s;
  }

  CostModelConfig cfg_;
  LinkResolver resolver_;
  NodeResolver node_resolver_;
};

}  // namespace dynmo::comm
