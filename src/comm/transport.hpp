// comm::Transport: the pluggable message substrate under World/Communicator.
//
// A Transport owns one *endpoint* per global rank.  Everything above it —
// Communicator handles, the collectives (binomial broadcast, dissemination
// barrier, allgather-based allreduce, alltoallv), split()/dup(), the
// threaded runtime,
// the elastic restart path, and the fault-recovery machinery — is written
// against this interface only, so swapping the backend can never change
// observable behavior (the conformance suite in
// tests/test_transport_conformance.cpp and the golden-trace CI gate hold
// every backend to that).
//
// Delivery contract (docs/TRANSPORT.md):
//   * tagged, matched receives: a message is only returned to a receive
//     whose (context, source, tag) pattern matches, with wildcard source
//     (kAnySource) and tag (kAnyTag);
//   * FIFO per (context, source, tag): two messages sent by the same rank
//     on the same communicator with the same tag are received in send
//     order.  No ordering is promised across sources or tags;
//   * context isolation: a message sent on one communicator (context) is
//     never returned on another, even for wildcard patterns;
//   * close/shutdown releases blocked receivers: recv() on a closed
//     endpoint returns nullopt once no matching message is queued (the
//     Communicator layer turns that into CommError), and try_recv() on a
//     closed-and-drained endpoint reports closure instead of "try again"
//     — a poll loop must never spin forever against a dead world;
//   * sends never fail: a send to a closed endpoint is silently dropped
//     (MPI_Send to a finalized peer is undefined; we pick the semantics
//     that lets shutdown race in-flight traffic safely).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>

#include "comm/message.hpp"

namespace dynmo::comm {

/// Which backend a World runs its endpoints on.
enum class TransportKind {
  /// In-process mailboxes: one lock+condvar queue per rank, delivery is a
  /// queue push in the sender's thread.  The default, and the fastest.
  InProc,
  /// Unix-domain socketpairs: ranks exchange length-prefixed frames over
  /// real file descriptors — the same wire framing a future multi-process
  /// (MPI/UCX) backend will speak, exercised while ranks are still
  /// threads.
  Socket,
};

const char* to_string(TransportKind kind);
/// Parse "inproc" / "socket" (as accepted by --transport flags); throws
/// dynmo::Error on anything else.
TransportKind parse_transport(std::string_view name);

class Transport {
 public:
  virtual ~Transport() = default;

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// Backend name as recorded in telemetry catalogs ("inproc", "socket").
  virtual std::string_view name() const = 0;

  /// Number of endpoints (global ranks).
  virtual int size() const = 0;

  /// Deliver `msg` to `dst`'s endpoint.  msg.source is the sender's rank
  /// *within its communicator group* and msg.context the communicator id
  /// — the transport routes on the global `dst` only and never inspects
  /// them beyond matching.  Thread-safe; never throws on a closed
  /// destination (the message is dropped).
  virtual void send(int dst, Message msg) = 0;

  /// Blocking matched receive on `self`'s endpoint.  Returns nullopt only
  /// when the endpoint is closed and no matching message is queued.
  virtual std::optional<Message> recv(int self, int context, int source,
                                      Tag tag) = 0;

  /// Non-blocking matched receive.  Distinguishes "nothing yet" (nullopt,
  /// endpoint open) from "never" — callers that must not spin against a
  /// closed endpoint check closed() when this returns nullopt.
  virtual std::optional<Message> try_recv(int self, int context, int source,
                                          Tag tag) = 0;

  /// Queued-message count on `self`'s endpoint (racy; diagnostics only).
  virtual std::size_t pending(int self) const = 0;

  /// Close one endpoint: wakes its blocked receivers; later receives of
  /// unmatched patterns report closure.  Idempotent.
  virtual void close(int self) = 0;
  virtual bool closed(int self) const = 0;

  /// Close every endpoint (World::shutdown).  Idempotent; must leave the
  /// transport safe against concurrent sends and receives.
  virtual void shutdown() = 0;

  // --- traffic accounting (for overhead trajectories) -------------------
  std::uint64_t bytes_sent() const {
    return bytes_sent_.load(std::memory_order_relaxed);
  }
  std::uint64_t messages_sent() const {
    return messages_sent_.load(std::memory_order_relaxed);
  }

 protected:
  Transport() = default;

  /// Backends call this once per accepted send, counting payload bytes
  /// (not framing overhead), so counters are comparable across backends.
  void count_send(std::size_t payload_bytes) {
    bytes_sent_.fetch_add(payload_bytes, std::memory_order_relaxed);
    messages_sent_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> messages_sent_{0};
};

/// Factory: the one switch point backends are selected through.
std::unique_ptr<Transport> make_transport(TransportKind kind, int num_ranks);

}  // namespace dynmo::comm
