#include "comm/communicator.hpp"

#include <algorithm>
#include <atomic>

#include "core/error.hpp"

namespace dynmo::comm {

// ---------------------------------------------------------------- World --

World::World(int num_ranks, TransportKind transport)
    : kind_(transport), transport_(make_transport(transport, num_ranks)) {}

World::~World() { shutdown(); }

Communicator World::world_comm(int global_rank) {
  auto group = std::make_shared<std::vector<int>>();
  group->resize(static_cast<std::size_t>(size()));
  for (int i = 0; i < size(); ++i) (*group)[static_cast<std::size_t>(i)] = i;
  return Communicator(this, std::move(group), global_rank, /*context=*/0);
}

void World::shutdown() { transport_->shutdown(); }

int World::next_context() { return next_context_.fetch_add(1); }

// --------------------------------------------------------- Communicator --

int Communicator::global_rank_of(int rank) const {
  DYNMO_CHECK(rank >= 0 && rank < size(),
              "rank " << rank << " outside communicator of size " << size());
  return (*group_)[static_cast<std::size_t>(rank)];
}

void Communicator::send(int dst, Tag tag, std::vector<std::byte> payload) const {
  Message msg;
  msg.source = rank_;
  msg.context = context_;
  msg.tag = tag;
  msg.payload = std::move(payload);
  transport().send(global_rank_of(dst), std::move(msg));
}

Message Communicator::recv(int src, Tag tag) const {
  auto m = transport().recv(global_rank(), context_, src, tag);
  if (!m) {
    throw CommError("recv on rank " + std::to_string(rank_) +
                    " aborted: world shut down");
  }
  return std::move(*m);
}

std::optional<Message> Communicator::try_recv(int src, Tag tag) const {
  // Read closure *before* probing: deliveries stop at close, so "closed,
  // then found nothing" proves nothing matching can ever arrive — whereas
  // probe-then-check would race a concurrent close() into a false abort.
  const bool was_closed = transport().closed(global_rank());
  if (auto m = transport().try_recv(global_rank(), context_, src, tag)) {
    return m;
  }
  if (was_closed) {
    throw CommError("try_recv on rank " + std::to_string(rank_) +
                    " aborted: world shut down");
  }
  return std::nullopt;
}

void Communicator::barrier() const {
  // Dissemination barrier: log2(n) rounds.  Round safety relies on per
  // (source, tag) FIFO delivery, which every Transport guarantees.
  const int n = size();
  for (int k = 1; k < n; k <<= 1) {
    const int dst = (rank_ + k) % n;
    const int src = (rank_ - k % n + n) % n;
    send(dst, kBarrierTag, {});
    (void)recv(src, kBarrierTag);
  }
}

std::vector<std::byte> Communicator::broadcast(std::vector<std::byte> data,
                                               int root) const {
  const int n = size();
  const int vrank = (rank_ - root + n) % n;
  // Binomial-tree broadcast (what NCCL does for small payloads).
  int mask = 1;
  while (mask < n) {
    if (vrank & mask) {
      const int vsrc = vrank - mask;
      const int src = (vsrc + root) % n;
      data = recv(src, kBcastTag).payload;
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask >= 1) {
    if (vrank + mask < n) {
      const int vdst = vrank + mask;
      const int dst = (vdst + root) % n;
      send(dst, kBcastTag, data);
    }
    mask >>= 1;
  }
  return data;
}

std::vector<std::vector<std::byte>> Communicator::gather(
    std::vector<std::byte> mine, int root) const {
  std::vector<std::vector<std::byte>> out;
  if (rank_ == root) {
    out.resize(static_cast<std::size_t>(size()));
    out[static_cast<std::size_t>(root)] = std::move(mine);
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      out[static_cast<std::size_t>(r)] = recv(r, kGatherTag).payload;
    }
  } else {
    send(root, kGatherTag, std::move(mine));
  }
  return out;
}

std::vector<std::byte> Communicator::scatter(
    std::vector<std::vector<std::byte>> bufs, int root) const {
  if (rank_ == root) {
    DYNMO_CHECK(static_cast<int>(bufs.size()) == size(),
                "scatter needs one buffer per rank");
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      send(r, kScatterTag, std::move(bufs[static_cast<std::size_t>(r)]));
    }
    return std::move(bufs[static_cast<std::size_t>(root)]);
  }
  return recv(root, kScatterTag).payload;
}

std::vector<std::vector<double>> Communicator::allgather_doubles(
    std::vector<double> mine) const {
  // Direct exchange: every rank sends its vector to every other rank.  With
  // the small metadata vectors DynMo exchanges (per-layer times), this is
  // what NCCL would select (flat allgather under ring threshold).
  Packer p;
  p.put_vector(mine);
  const auto bytes = p.take();
  for (int r = 0; r < size(); ++r) {
    if (r == rank_) continue;
    send(r, kAllreduceTag, bytes);
  }
  std::vector<std::vector<double>> out(static_cast<std::size_t>(size()));
  out[static_cast<std::size_t>(rank_)] = std::move(mine);
  for (int r = 0; r < size(); ++r) {
    if (r == rank_) continue;
    const Message m = recv(r, kAllreduceTag);
    Unpacker u(m.payload);
    out[static_cast<std::size_t>(r)] = u.get_vector<double>();
  }
  return out;
}

std::vector<double> Communicator::allreduce_sum(std::vector<double> mine) const {
  const auto all = allgather_doubles(std::move(mine));
  std::vector<double> acc = all.front();
  for (std::size_t r = 1; r < all.size(); ++r) {
    DYNMO_CHECK(all[r].size() == acc.size(),
                "allreduce_sum: mismatched vector lengths");
    for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += all[r][i];
  }
  return acc;
}

std::vector<std::vector<std::byte>> Communicator::alltoallv(
    std::vector<std::vector<std::byte>> outgoing) const {
  DYNMO_CHECK(static_cast<int>(outgoing.size()) == size(),
              "alltoallv needs one buffer per destination");
  std::vector<std::vector<std::byte>> incoming(
      static_cast<std::size_t>(size()));
  incoming[static_cast<std::size_t>(rank_)] =
      std::move(outgoing[static_cast<std::size_t>(rank_)]);
  for (int r = 0; r < size(); ++r) {
    if (r == rank_) continue;
    send(r, kAlltoallTag, std::move(outgoing[static_cast<std::size_t>(r)]));
  }
  for (int r = 0; r < size(); ++r) {
    if (r == rank_) continue;
    incoming[static_cast<std::size_t>(r)] = recv(r, kAlltoallTag).payload;
  }
  return incoming;
}

std::optional<Communicator> Communicator::split(int color, int key) const {
  // Rank 0 of the parent communicator coordinates, like the MPI
  // implementation's allgather-based split.
  struct ColorKey {
    int color;
    int key;
    int old_rank;
  };
  Packer p;
  p.put(ColorKey{color, key, rank_});
  auto gathered = gather(p.take(), /*root=*/0);

  std::vector<std::byte> my_assignment;
  if (rank_ == 0) {
    std::vector<ColorKey> entries;
    entries.reserve(gathered.size());
    for (const auto& buf : gathered) {
      Unpacker u(buf);
      entries.push_back(u.get<ColorKey>());
    }
    // Group by color.
    std::map<int, std::vector<ColorKey>> by_color;
    for (const auto& e : entries) {
      if (e.color >= 0) by_color[e.color].push_back(e);
    }
    // For each color: order members by (key, old_rank), mint a context id,
    // and send every member its (context, new_rank, group of global ranks).
    std::vector<std::vector<std::byte>> assignments(
        static_cast<std::size_t>(size()));
    for (auto& [c, members] : by_color) {
      std::sort(members.begin(), members.end(),
                [](const ColorKey& a, const ColorKey& b) {
                  return std::tie(a.key, a.old_rank) <
                         std::tie(b.key, b.old_rank);
                });
      const int ctx = world_->next_context();
      std::vector<int> new_group;
      new_group.reserve(members.size());
      for (const auto& m : members) new_group.push_back(global_rank_of(m.old_rank));
      for (std::size_t i = 0; i < members.size(); ++i) {
        Packer ap;
        ap.put(ctx);
        ap.put(static_cast<int>(i));
        ap.put_vector(new_group);
        assignments[static_cast<std::size_t>(members[i].old_rank)] = ap.take();
      }
    }
    my_assignment = scatter(std::move(assignments), 0);
  } else {
    my_assignment = scatter({}, 0);
  }

  if (my_assignment.empty()) return std::nullopt;  // color < 0: no membership
  Unpacker u(my_assignment);
  const int ctx = u.get<int>();
  const int new_rank = u.get<int>();
  auto group = std::make_shared<std::vector<int>>(u.get_vector<int>());
  return Communicator(world_, std::move(group), new_rank, ctx);
}

Communicator Communicator::dup() const {
  auto c = split(/*color=*/0, /*key=*/rank_);
  DYNMO_CHECK(c.has_value(), "dup must produce a communicator");
  return *c;
}

}  // namespace dynmo::comm
