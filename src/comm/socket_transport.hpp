// Socket transport: ranks exchange length-prefixed frames over Unix-domain
// socketpairs.  Still one process (ranks are threads), but every message
// crosses a real kernel descriptor in the exact wire format a future
// multi-process (MPI/UCX) backend would speak — so the conformance suite and
// the golden-trace gate exercise serialization, framing, partial reads, and
// shutdown-vs-inflight races that the in-proc queue can never produce.
//
// Topology: one socketpair per rank.  sp[0] is the receive side, drained by
// that rank's dedicated reader thread; sp[1] is the send side, shared by all
// senders under a per-endpoint mutex so frames interleave only at frame
// boundaries.  The reader demultiplexes frames into a Mailbox, which
// provides the same (context, source, tag) matching, wildcard, and FIFO
// semantics as the in-proc backend — delivery policy is shared code, only
// the carrier differs.
//
// Wire frame (little-endian, docs/TRANSPORT.md):
//   [u32 magic 'DYNM'][i32 source][i32 context][i32 tag][u64 payload_len]
//   [payload_len bytes]
// 24-byte header; payload is the Packer buffer verbatim.
#pragma once

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "comm/mailbox.hpp"
#include "comm/transport.hpp"

namespace dynmo::comm {

class SocketTransport final : public Transport {
 public:
  explicit SocketTransport(int num_ranks);
  ~SocketTransport() override;

  std::string_view name() const override { return "socket"; }
  int size() const override { return static_cast<int>(endpoints_.size()); }

  void send(int dst, Message msg) override;
  std::optional<Message> recv(int self, int context, int source,
                              Tag tag) override;
  std::optional<Message> try_recv(int self, int context, int source,
                                  Tag tag) override;
  std::size_t pending(int self) const override;
  void close(int self) override;
  bool closed(int self) const override;
  void shutdown() override;

 private:
  struct Endpoint {
    int send_fd = -1;  ///< written by any sender, serialized by send_mu
    int recv_fd = -1;  ///< read only by this endpoint's reader thread
    std::mutex send_mu;
    std::thread reader;
    Mailbox inbox;                    ///< matching/FIFO/wildcard semantics
    std::atomic<bool> closing{false};  ///< close() entered (idempotence)
  };

  Endpoint& endpoint(int rank) const;
  void reader_main(Endpoint& ep);

  std::vector<std::unique_ptr<Endpoint>> endpoints_;
};

}  // namespace dynmo::comm
