#include "comm/socket_transport.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>

#include "core/error.hpp"

namespace dynmo::comm {

namespace {

constexpr std::uint32_t kFrameMagic = 0x4D4E5944;  // "DYNM" little-endian

struct FrameHeader {
  std::uint32_t magic;
  std::int32_t source;
  std::int32_t context;
  std::int32_t tag;
  std::uint64_t payload_len;
};
static_assert(sizeof(FrameHeader) == 24, "frame header is 24 bytes on wire");

/// Write exactly `len` bytes.  Returns false if the peer is gone (EPIPE /
/// ECONNRESET / shutdown descriptor) — the send contract is to drop, not
/// throw, so callers ignore a false return.
bool write_full(int fd, const std::byte* buf, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, buf, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    buf += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

/// Read exactly `len` bytes.  Returns false on EOF or error (endpoint was
/// shut down) — partial frames at shutdown are discarded.
bool read_full(int fd, std::byte* buf, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::recv(fd, buf, len, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // orderly EOF
    buf += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

SocketTransport::SocketTransport(int num_ranks) {
  DYNMO_CHECK(num_ranks > 0, "transport needs at least one rank");
  endpoints_.reserve(static_cast<std::size_t>(num_ranks));
  for (int i = 0; i < num_ranks; ++i) {
    auto ep = std::make_unique<Endpoint>();
    int sp[2];
    DYNMO_CHECK(::socketpair(AF_UNIX, SOCK_STREAM, 0, sp) == 0,
                "socketpair failed for rank " << i << ": "
                                              << std::strerror(errno));
    ep->recv_fd = sp[0];
    ep->send_fd = sp[1];
    endpoints_.push_back(std::move(ep));
  }
  // Readers start only after every endpoint exists, so a reader can never
  // observe a half-built transport.
  for (auto& ep : endpoints_) {
    ep->reader = std::thread([this, e = ep.get()] { reader_main(*e); });
  }
}

SocketTransport::~SocketTransport() {
  shutdown();
  for (auto& ep : endpoints_) {
    if (ep->reader.joinable()) ep->reader.join();
    ::close(ep->send_fd);
    ::close(ep->recv_fd);
  }
}

SocketTransport::Endpoint& SocketTransport::endpoint(int rank) const {
  DYNMO_CHECK(rank >= 0 && rank < size(),
              "global rank " << rank << " out of range [0," << size() << ")");
  return *endpoints_[static_cast<std::size_t>(rank)];
}

void SocketTransport::reader_main(Endpoint& ep) {
  for (;;) {
    FrameHeader h;
    if (!read_full(ep.recv_fd, reinterpret_cast<std::byte*>(&h), sizeof h)) {
      break;  // endpoint shut down (or torn frame at shutdown)
    }
    if (h.magic != kFrameMagic) break;  // corrupt stream: fail stop
    Message msg;
    msg.source = h.source;
    msg.context = h.context;
    msg.tag = h.tag;
    msg.payload.resize(h.payload_len);
    if (!read_full(ep.recv_fd, msg.payload.data(), msg.payload.size())) break;
    ep.inbox.deliver(std::move(msg));
  }
  // Reader exit == endpoint closed: release any blocked receiver.  (close()
  // also does this directly so receivers don't wait on thread scheduling.)
  ep.inbox.close();
}

void SocketTransport::send(int dst, Message msg) {
  // Count every send attempt, like the in-proc backend, so byte/message
  // counters agree across backends even when shutdown races a send.
  count_send(msg.payload.size());
  Endpoint& ep = endpoint(dst);
  FrameHeader h;
  h.magic = kFrameMagic;
  h.source = msg.source;
  h.context = msg.context;
  h.tag = msg.tag;
  h.payload_len = msg.payload.size();
  // One contiguous buffer per frame: a single write_full under the lock
  // keeps the frame atomic against other senders to the same endpoint.
  std::vector<std::byte> frame(sizeof h + msg.payload.size());
  std::memcpy(frame.data(), &h, sizeof h);
  if (!msg.payload.empty()) {
    std::memcpy(frame.data() + sizeof h, msg.payload.data(),
                msg.payload.size());
  }
  std::scoped_lock lock(ep.send_mu);
  (void)write_full(ep.send_fd, frame.data(), frame.size());  // drop if closed
}

std::optional<Message> SocketTransport::recv(int self, int context, int source,
                                             Tag tag) {
  return endpoint(self).inbox.recv(context, source, tag);
}

std::optional<Message> SocketTransport::try_recv(int self, int context,
                                                 int source, Tag tag) {
  return endpoint(self).inbox.try_recv(context, source, tag);
}

std::size_t SocketTransport::pending(int self) const {
  return endpoint(self).inbox.pending();
}

void SocketTransport::close(int self) {
  Endpoint& ep = endpoint(self);
  if (ep.closing.exchange(true)) return;
  // Order matters: close the inbox first so blocked receivers release
  // immediately, then shut the descriptors so the reader exits and senders
  // start getting EPIPE (dropped sends).
  ep.inbox.close();
  ::shutdown(ep.send_fd, SHUT_RDWR);
  ::shutdown(ep.recv_fd, SHUT_RDWR);
}

bool SocketTransport::closed(int self) const {
  return endpoint(self).inbox.closed();
}

void SocketTransport::shutdown() {
  for (int r = 0; r < size(); ++r) close(r);
}

}  // namespace dynmo::comm
