// Transport-agnostic communicator: the NCCL/MPI substitute.
//
// A World owns one comm::Transport — the pluggable message substrate with
// one endpoint per global rank (see transport.hpp for the backends).  A
// Communicator is a view over a subset of global ranks (a *group*) with its
// own context id, exactly like an MPI communicator: messages sent on one
// communicator can never be received on another.  split() implements
// MPI_Comm_split / ncclCommSplit semantics — this is what DynMo's re-packing
// uses to fence released GPUs off from the active training communicator
// (paper §3.4.2).
//
// Collectives are implemented over P2P with standard algorithms (binomial
// broadcast, dissemination barrier, ring allreduce) so that their message
// pattern — and hence their modeled cost — matches what NCCL would do.
// Nothing here touches a backend directly: every byte flows through the
// Transport interface, which is what the cross-backend conformance suite
// and the golden-trace CI gate rely on.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "comm/message.hpp"
#include "comm/transport.hpp"

namespace dynmo::comm {

class Communicator;

/// Process-wide rank universe.  Create one World per training job; spawn one
/// thread per rank and hand each thread its Communicator from world_comm().
class World {
 public:
  explicit World(int num_ranks,
                 TransportKind transport = TransportKind::InProc);
  ~World();

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  int size() const { return transport_->size(); }

  /// Which backend this world runs on (recorded in telemetry catalogs).
  TransportKind transport_kind() const { return kind_; }
  std::string_view transport_name() const { return transport_->name(); }

  /// The communicator spanning all ranks (MPI_COMM_WORLD analogue); one
  /// handle per rank.
  Communicator world_comm(int global_rank);

  /// Close every endpoint, releasing any blocked receiver.
  void shutdown();

  /// Total payload bytes ever sent through this world (overhead accounting).
  std::uint64_t bytes_sent() const { return transport_->bytes_sent(); }
  /// Total messages ever sent.
  std::uint64_t messages_sent() const { return transport_->messages_sent(); }

 private:
  friend class Communicator;
  int next_context();

  TransportKind kind_;
  std::unique_ptr<Transport> transport_;
  std::atomic<int> next_context_{1};
};

/// A rank's handle onto a group.  Cheap to copy (shared group).
class Communicator {
 public:
  int rank() const { return rank_; }
  int size() const { return static_cast<int>(group_->size()); }
  int context() const { return context_; }
  int global_rank() const { return (*group_)[static_cast<std::size_t>(rank_)]; }
  /// Global rank of a member of this communicator's group.
  int global_rank_of(int rank) const;
  World& world() const { return *world_; }

  // --- point-to-point --------------------------------------------------
  void send(int dst, Tag tag, std::vector<std::byte> payload) const;
  /// Convenience: pack a single trivially-copyable value.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void send_value(int dst, Tag tag, const T& v) const {
    Packer p;
    p.put(v);
    send(dst, tag, p.take());
  }
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void send_vector(int dst, Tag tag, const std::vector<T>& xs) const {
    Packer p;
    p.put_vector(xs);
    send(dst, tag, p.take());
  }

  /// Blocking receive; throws CommError if the world shut down.
  Message recv(int src = kAnySource, Tag tag = kAnyTag) const;
  /// Non-blocking receive.  nullopt means "nothing matching yet"; once this
  /// rank's endpoint is closed and drained it throws CommError instead, so
  /// poll loops terminate on shutdown exactly like blocked recv() calls do.
  std::optional<Message> try_recv(int src = kAnySource,
                                  Tag tag = kAnyTag) const;
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T recv_value(int src, Tag tag) const {
    const Message m = recv(src, tag);
    Unpacker u(m.payload);
    return u.get<T>();
  }
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> recv_vector(int src, Tag tag) const {
    const Message m = recv(src, tag);
    Unpacker u(m.payload);
    return u.get_vector<T>();
  }

  // --- collectives (every member must call) ----------------------------
  void barrier() const;
  /// Broadcast `data` from root to all; non-roots receive into return value.
  std::vector<std::byte> broadcast(std::vector<std::byte> data,
                                   int root) const;
  /// Gather each rank's buffer at root (root gets size() buffers, in rank
  /// order; non-roots get empty).
  std::vector<std::vector<std::byte>> gather(std::vector<std::byte> mine,
                                             int root) const;
  /// Scatter: root provides size() buffers; each rank receives its own.
  std::vector<std::byte> scatter(std::vector<std::vector<std::byte>> bufs,
                                 int root) const;
  /// All-gather of equally-typed double vectors (the balancers exchange
  /// per-layer times this way).
  std::vector<std::vector<double>> allgather_doubles(
      std::vector<double> mine) const;
  /// Element-wise sum allreduce over doubles (ring algorithm).
  std::vector<double> allreduce_sum(std::vector<double> mine) const;
  /// Variable all-to-all: `outgoing[r]` is sent to rank r; returns what each
  /// rank sent to me, indexed by source rank.
  std::vector<std::vector<std::byte>> alltoallv(
      std::vector<std::vector<std::byte>> outgoing) const;

  // --- communicator management -----------------------------------------
  /// MPI_Comm_split: ranks with the same color form a new communicator,
  /// ordered by (key, old rank).  color < 0 → the rank gets no communicator
  /// (returns nullopt), mirroring NCCL_SPLIT_NOCOLOR.
  std::optional<Communicator> split(int color, int key) const;
  /// Duplicate with a fresh context.
  Communicator dup() const;

 private:
  friend class World;
  Communicator(World* world, std::shared_ptr<const std::vector<int>> group,
               int rank, int context)
      : world_(world), group_(std::move(group)), rank_(rank),
        context_(context) {}

  Transport& transport() const { return *world_->transport_; }

  World* world_;
  std::shared_ptr<const std::vector<int>> group_;  // member global ranks
  int rank_;
  int context_;
};

}  // namespace dynmo::comm
