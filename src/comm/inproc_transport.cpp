#include "comm/inproc_transport.hpp"

#include "core/error.hpp"

namespace dynmo::comm {

InProcTransport::InProcTransport(int num_ranks) {
  DYNMO_CHECK(num_ranks > 0, "transport needs at least one rank");
  mailboxes_.reserve(static_cast<std::size_t>(num_ranks));
  for (int i = 0; i < num_ranks; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

Mailbox& InProcTransport::box(int rank) const {
  DYNMO_CHECK(rank >= 0 && rank < size(),
              "global rank " << rank << " out of range [0," << size() << ")");
  return *mailboxes_[static_cast<std::size_t>(rank)];
}

void InProcTransport::send(int dst, Message msg) {
  count_send(msg.payload.size());
  box(dst).deliver(std::move(msg));
}

std::optional<Message> InProcTransport::recv(int self, int context, int source,
                                             Tag tag) {
  return box(self).recv(context, source, tag);
}

std::optional<Message> InProcTransport::try_recv(int self, int context,
                                                 int source, Tag tag) {
  return box(self).try_recv(context, source, tag);
}

std::size_t InProcTransport::pending(int self) const {
  return box(self).pending();
}

void InProcTransport::close(int self) { box(self).close(); }

bool InProcTransport::closed(int self) const { return box(self).closed(); }

void InProcTransport::shutdown() {
  for (auto& mb : mailboxes_) mb->close();
}

}  // namespace dynmo::comm
