// Typed message envelope for the in-process communication substrate.
//
// Payloads are byte buffers with pack/unpack helpers for PODs and vectors,
// mirroring how MPI programs marshal derived data.  Tags disambiguate
// concurrent conversations exactly like MPI tags.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "core/error.hpp"

namespace dynmo::comm {

using Tag = std::int32_t;

/// Wildcard receive patterns (MPI_ANY_SOURCE / MPI_ANY_TAG analogues).
inline constexpr int kAnySource = -1;
inline constexpr Tag kAnyTag = INT32_MIN;

/// Well-known tags used by DynMo subsystems.  User code may use any tag
/// >= kFirstUserTag.
enum ReservedTag : Tag {
  kBarrierTag = -1,
  kBcastTag = -2,
  kGatherTag = -3,
  kScatterTag = -4,
  kAllreduceTag = -5,
  kAlltoallTag = -6,
  kMigrationTag = -7,
  kPruneTag = -8,
  kShutdownTag = -9,
  kFirstUserTag = 0,
};

struct Message {
  int source = -1;   ///< sender rank *within the communicator's group*
  int context = 0;   ///< communicator context id (MPI communicator analogue)
  Tag tag = 0;
  std::vector<std::byte> payload;

  std::size_t size_bytes() const { return payload.size(); }
};

/// Append-only binary writer (MPI_Pack analogue).
class Packer {
 public:
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  Packer& put(const T& v) {
    const auto* p = reinterpret_cast<const std::byte*>(&v);
    buf_.insert(buf_.end(), p, p + sizeof(T));
    return *this;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  Packer& put_span(std::span<const T> xs) {
    put<std::uint64_t>(xs.size());
    if (!xs.empty()) {  // empty span may have a null data() — UB to offset
      const auto* p = reinterpret_cast<const std::byte*>(xs.data());
      buf_.insert(buf_.end(), p, p + xs.size_bytes());
    }
    return *this;
  }

  template <typename T>
  Packer& put_vector(const std::vector<T>& xs) {
    return put_span(std::span<const T>(xs));
  }

  std::vector<std::byte> take() { return std::move(buf_); }

 private:
  std::vector<std::byte> buf_;
};

/// Sequential binary reader (MPI_Unpack analogue).  Throws on overrun.
class Unpacker {
 public:
  explicit Unpacker(std::span<const std::byte> buf) : buf_(buf) {}

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T get() {
    DYNMO_CHECK(pos_ + sizeof(T) <= buf_.size(), "unpack overrun");
    T v;
    std::memcpy(&v, buf_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> get_vector() {
    const auto n = get<std::uint64_t>();
    // Divide instead of multiplying: a corrupted length near 2^64/sizeof(T)
    // must overrun, not wrap around and pass the bounds check.
    DYNMO_CHECK(n <= (buf_.size() - pos_) / sizeof(T), "unpack overrun");
    std::vector<T> out(n);
    if (n != 0) {  // memcpy requires non-null pointers even for size 0
      std::memcpy(out.data(), buf_.data() + pos_, n * sizeof(T));
      pos_ += n * sizeof(T);
    }
    return out;
  }

  bool exhausted() const { return pos_ == buf_.size(); }
  /// Current read offset — consumers that wrap a structured stream (e.g.
  /// the checkpoint reader) use it to report *where* a parse failed.
  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return buf_.size() - pos_; }

 private:
  std::span<const std::byte> buf_;
  std::size_t pos_ = 0;
};

}  // namespace dynmo::comm
