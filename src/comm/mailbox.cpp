#include "comm/mailbox.hpp"

namespace dynmo::comm {

void Mailbox::deliver(Message msg) {
  {
    std::scoped_lock lock(mu_);
    // A closed mailbox drops deliveries instead of enqueueing them — the
    // socket backend physically cannot deliver past close (the descriptor
    // is shut down), so the in-proc backend must not either, or the two
    // would diverge on sends that race shutdown.
    if (closed_) return;
    queue_.push_back(std::move(msg));
  }
  cv_.notify_all();
}

std::optional<Message> Mailbox::take_locked(int context, int source, Tag tag) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (matches(*it, context, source, tag)) {
      Message m = std::move(*it);
      queue_.erase(it);
      return m;
    }
  }
  return std::nullopt;
}

std::optional<Message> Mailbox::recv(int context, int source, Tag tag) {
  std::unique_lock lock(mu_);
  for (;;) {
    if (auto m = take_locked(context, source, tag)) return m;
    if (closed_) return std::nullopt;
    cv_.wait(lock);
  }
}

std::optional<Message> Mailbox::try_recv(int context, int source, Tag tag) {
  std::scoped_lock lock(mu_);
  return take_locked(context, source, tag);
}

std::size_t Mailbox::pending() const {
  std::scoped_lock lock(mu_);
  return queue_.size();
}

void Mailbox::close() {
  {
    std::scoped_lock lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool Mailbox::closed() const {
  std::scoped_lock lock(mu_);
  return closed_;
}

}  // namespace dynmo::comm
