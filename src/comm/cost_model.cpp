#include "comm/cost_model.hpp"

#include <algorithm>
#include <map>

#include "core/error.hpp"

namespace dynmo::comm {

int RankGroup::total_ranks() const {
  int n = 0;
  for (int m : node_sizes) n += m;
  return n;
}

int RankGroup::max_node_size() const {
  int m = 0;
  for (int s : node_sizes) m = std::max(m, s);
  return m;
}

int RankGroup::min_node_size() const {
  if (node_sizes.empty()) return 0;
  int m = node_sizes.front();
  for (int s : node_sizes) m = std::min(m, s);
  return m;
}

CollectiveBytesSplit allreduce_bytes(const RankGroup& g, std::size_t bytes) {
  CollectiveBytesSplit split;
  const int n = g.total_ranks();
  if (n <= 1) return split;
  const double b = static_cast<double>(bytes);
  for (int m : g.node_sizes) {
    if (m > 1) split.intra_node += 2.0 * static_cast<double>(m - 1) * b;
  }
  const int k = g.num_nodes();
  if (k > 1) {
    const int m_min = std::max(1, g.min_node_size());
    split.inter_node =
        2.0 * static_cast<double>(k - 1) * b / static_cast<double>(m_min);
  }
  return split;
}

RankGroup CostModel::group(std::span<const int> ranks) const {
  RankGroup g;
  g.intra = params(LinkTier::NvLink);
  g.inter = params(LinkTier::InfiniBand);
  std::map<int, std::vector<int>> by_node;  // ordered → deterministic
  for (int r : ranks) by_node[node_of(r)].push_back(r);
  g.node_sizes.reserve(by_node.size());
  for (const auto& [node, members] : by_node) {
    DYNMO_CHECK(!members.empty(), "empty node group");
    g.node_sizes.push_back(static_cast<int>(members.size()));
  }
  if (resolver_) {
    // The gating links are the worst same-node member pair and the worst
    // leader pair; member sets are small (<= ranks per job), so the
    // quadratic scans are fine.
    bool have_intra = false;
    for (const auto& [node, members] : by_node) {
      for (std::size_t i = 0; i < members.size(); ++i) {
        for (std::size_t j = i + 1; j < members.size(); ++j) {
          const LinkParams lp = resolver_(members[i], members[j]);
          if (!have_intra || link_ref_time(lp) > link_ref_time(g.intra)) {
            g.intra = lp;
            have_intra = true;
          }
        }
      }
    }
    bool have_inter = false;
    for (auto a = by_node.begin(); a != by_node.end(); ++a) {
      for (auto b = std::next(a); b != by_node.end(); ++b) {
        const LinkParams lp =
            resolver_(a->second.front(), b->second.front());
        if (!have_inter || link_ref_time(lp) > link_ref_time(g.inter)) {
          g.inter = lp;
          have_inter = true;
        }
      }
    }
  }
  return g;
}

double CostModel::allreduce_time(const RankGroup& g, std::size_t bytes) const {
  const int n = g.total_ranks();
  if (n <= 1) return 0.0;
  const double b = static_cast<double>(bytes);
  if (g.num_nodes() <= 1) return ring_allreduce(g.intra, n, b);
  double t = 0.0;
  // Phase 1+3: reduce-scatter then allgather inside each node — together
  // exactly one intra-node ring allreduce, gated by the largest node.
  const int m_max = g.max_node_size();
  if (m_max > 1) t += ring_allreduce(g.intra, m_max, b);
  // Phase 2: ring allreduce of the per-node shards across the node leaders.
  // The leader of the smallest node carries the largest shard.
  const int m_min = std::max(1, g.min_node_size());
  t += ring_allreduce(g.inter, g.num_nodes(),
                      b / static_cast<double>(m_min));
  return t;
}

double CostModel::broadcast_time(const RankGroup& g, std::size_t bytes) const {
  const int n = g.total_ranks();
  if (n <= 1) return 0.0;
  const double b = static_cast<double>(bytes);
  const auto binomial = [b](const LinkParams& lp, int fanout) {
    const double rounds = std::ceil(std::log2(static_cast<double>(fanout)));
    return rounds * (lp.alpha_s + b / lp.beta_bytes_s);
  };
  if (g.num_nodes() <= 1) return binomial(g.intra, n);
  double t = binomial(g.inter, g.num_nodes());
  const int m_max = g.max_node_size();
  if (m_max > 1) t += binomial(g.intra, m_max);
  return t;
}

double CostModel::alltoall_time(const RankGroup& g,
                                std::size_t bytes_per_peer) const {
  const int n = g.total_ranks();
  if (n <= 1) return 0.0;
  const double b = static_cast<double>(bytes_per_peer);
  const double nn = static_cast<double>(n);
  if (g.num_nodes() <= 1) {
    return (nn - 1.0) * (g.intra.alpha_s + b / g.intra.beta_bytes_s);
  }
  // Intra phase: regroup by rail — each rank hands every local peer that
  // peer's rail share, n/m_i * bytes per message; gated by the worst node.
  double intra = 0.0;
  for (int m : g.node_sizes) {
    if (m <= 1) continue;
    const double mm = static_cast<double>(m);
    intra = std::max(
        intra, (mm - 1.0) * (g.intra.alpha_s +
                             (nn / mm) * b / g.intra.beta_bytes_s));
  }
  // Inter phase: one aggregated message per remote node along the rails;
  // the rank with the fewest node-local peers crosses the most fabric.
  const int m_min = std::max(1, g.min_node_size());
  const double inter =
      static_cast<double>(g.num_nodes() - 1) * g.inter.alpha_s +
      (nn - static_cast<double>(m_min)) * b / g.inter.beta_bytes_s;
  return intra + inter;
}

}  // namespace dynmo::comm
