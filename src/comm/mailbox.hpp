// Per-rank mailbox: a thread-safe inbox with (source, tag) matching,
// modeling an MPI receive queue.  recv() blocks until a matching message
// arrives (or the mailbox is closed), supporting wildcard source/tag.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "comm/message.hpp"

namespace dynmo::comm {

class Mailbox {
 public:
  /// Deliver a message (called by the sender's thread).
  void deliver(Message msg);

  /// Blocking matched receive.  Returns nullopt if the mailbox was closed
  /// and no matching message will ever arrive.  `context` is matched
  /// exactly — messages from other communicators are never returned.
  std::optional<Message> recv(int context, int source = kAnySource,
                              Tag tag = kAnyTag);

  /// Non-blocking probe-and-take.
  std::optional<Message> try_recv(int context, int source = kAnySource,
                                  Tag tag = kAnyTag);

  /// Number of queued messages (racy; for diagnostics only).
  std::size_t pending() const;

  /// Close: wakes all blocked receivers; subsequent recv of unmatched
  /// patterns returns nullopt.
  void close();
  bool closed() const;

 private:
  static bool matches(const Message& m, int context, int source, Tag tag) {
    return m.context == context &&
           (source == kAnySource || m.source == source) &&
           (tag == kAnyTag || m.tag == tag);
  }
  std::optional<Message> take_locked(int context, int source, Tag tag);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  bool closed_ = false;
};

}  // namespace dynmo::comm
