// Rebalance orchestrator: profile → decide → migrate (paper Fig. 2, steps
// 3–4), with the overhead accounting behind the paper's Figure 4 table.
//
// The decision time is *actually measured* (wall clock of the balancing
// algorithm run); profiling and migration costs are charged from the
// calibrated models, since in the real system they are timer reads and NCCL
// P2P transfers respectively.
#pragma once

#include <optional>

#include "balance/diffusion.hpp"
#include "balance/migration.hpp"
#include "balance/partition.hpp"
#include "balance/profile.hpp"
#include "comm/cost_model.hpp"

namespace dynmo::balance {

enum class Algorithm { Partition, Diffusion };

const char* to_string(Algorithm a);

struct RebalanceConfig {
  Algorithm algorithm = Algorithm::Diffusion;
  BalanceBy by = BalanceBy::Time;
  double mem_capacity = 0.0;  ///< per-worker bytes; <=0 → unconstrained
  double gamma = 0.0;         ///< diffusion threshold; <=0 → auto
  /// Per-layer profiling cost charged per rebalance (timer reads + CUDA
  /// memory stats query), seconds.
  double profile_cost_per_layer_s = 2e-6;
  double profile_cost_per_worker_s = 10e-6;
  /// Hysteresis: keep the current map unless the new one improves the
  /// projected bottleneck by at least this fraction.  Prevents migration
  /// churn from chasing profiling noise at every-iteration cadences.
  double min_bottleneck_gain = 0.02;
  /// Stage s runs on rank stage_to_rank[s] (topology-aware placement);
  /// empty → stage s is rank s.  Migration costs are priced over these
  /// ranks, so a cost model with a cluster::Topology link resolver charges
  /// each move the link it actually crosses.
  std::vector<int> stage_to_rank{};
};

struct OverheadBreakdown {
  double profile_s = 0.0;
  double decide_s = 0.0;
  double migrate_s = 0.0;
  double total_s() const { return profile_s + decide_s + migrate_s; }

  OverheadBreakdown& operator+=(const OverheadBreakdown& o) {
    profile_s += o.profile_s;
    decide_s += o.decide_s;
    migrate_s += o.migrate_s;
    return *this;
  }
};

struct RebalanceOutcome {
  pipeline::StageMap map;
  OverheadBreakdown overhead;
  MigrationPlan migration;
  double imbalance_before = 0.0;  ///< paper Eq. (2) on stage loads
  double imbalance_after = 0.0;
  std::optional<DiffusionResult> diffusion;  ///< set for Algorithm::Diffusion
};

class Rebalancer {
 public:
  Rebalancer(RebalanceConfig cfg, comm::CostModel net)
      : cfg_(cfg), net_(net) {}

  /// Decide a new stage map from the profile; compute migration plan and
  /// overheads relative to `current`.
  RebalanceOutcome rebalance(const LayerProfile& profile,
                             const pipeline::StageMap& current) const;

  const RebalanceConfig& config() const { return cfg_; }

 private:
  RebalanceConfig cfg_;
  comm::CostModel net_;
};

}  // namespace dynmo::balance
