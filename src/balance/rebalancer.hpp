// Rebalance orchestrator: profile → decide → migrate (paper Fig. 2, steps
// 3–4), with the overhead accounting behind the paper's Figure 4 table.
//
// The decision time is *actually measured* (wall clock of the balancing
// algorithm run); profiling and migration costs are charged from the
// calibrated models, since in the real system they are timer reads and NCCL
// P2P transfers respectively.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "balance/diffusion.hpp"
#include "balance/incremental.hpp"
#include "balance/migration.hpp"
#include "balance/partition.hpp"
#include "balance/profile.hpp"
#include "comm/cost_model.hpp"

namespace dynmo::balance {

enum class Algorithm {
  Partition,
  Diffusion,
  /// Two-level diffusion over a cluster::Deployment: intra-node first,
  /// inter-node only when the node totals are out of balance.  The
  /// balancer itself lives in cluster/ (above this layer), so the runtime
  /// injects it through RebalanceConfig::hierarchical_decider; without a
  /// decider this arm falls back to flat Diffusion.
  HierarchicalDiffusion,
};

const char* to_string(Algorithm a);

struct RebalanceConfig {
  Algorithm algorithm = Algorithm::Diffusion;
  BalanceBy by = BalanceBy::Time;
  double mem_capacity = 0.0;  ///< per-worker bytes; <=0 → unconstrained
  double gamma = 0.0;         ///< diffusion threshold; <=0 → auto
  /// Per-layer profiling cost charged per rebalance (timer reads + CUDA
  /// memory stats query), seconds.
  double profile_cost_per_layer_s = 2e-6;
  double profile_cost_per_worker_s = 10e-6;
  /// Hysteresis: keep the current map unless the new one improves the
  /// projected bottleneck by at least this fraction.  Prevents migration
  /// churn from chasing profiling noise at every-iteration cadences.
  double min_bottleneck_gain = 0.02;
  /// Payoff-window acceptance (paper §3.3: a migration only pays off when
  /// its exposed transfer cost is amortized before the load shifts again).
  /// A candidate map that passes the bottleneck hysteresis is adopted only
  /// when
  ///   projected_gain_per_iter_s * payoff_window_iters
  ///       >= exposed_migration_cost_s
  /// where the gain is the capacity-normalized bottleneck improvement on
  /// the profile's *time* loads (seconds, whatever BalanceBy drives the
  /// balancer) and the cost is the plan's per-rank bottleneck priced over
  /// `stage_to_rank`'s links, scaled by the two factors below.  <= 0
  /// disables the rule (bottleneck-only hysteresis).
  double payoff_window_iters = 0.0;
  /// Replicas mirroring every move (a DP grid migrates each layer in all
  /// `data_parallel` replicas, and the transfers contend for the same
  /// fabric) — multiplies the priced migration cost.
  double migration_cost_multiplier = 1.0;
  /// Fraction of the priced migration time actually exposed (the runtime
  /// hides most of it under backward compute at every-iteration cadences).
  double migration_exposed_fraction = 1.0;
  /// Stage s runs on rank stage_to_rank[s] (a deployment's placement);
  /// empty → stage s is rank s.  Migration costs are priced over these
  /// ranks, so a Deployment-backed cost model charges each move the link
  /// it actually crosses.
  std::vector<int> stage_to_rank{};
  /// Per-stage relative compute capacity (heterogeneous deployments);
  /// empty → uniform.  Diffusion converges loads proportional to capacity
  /// and the hysteresis compares capacity-normalized bottlenecks.
  std::vector<double> capacities{};
  /// Decider for Algorithm::HierarchicalDiffusion, wired by the runtime to
  /// cluster::HierarchicalBalancer over the session's Deployment.
  std::function<pipeline::StageMap(const DiffusionRequest&,
                                   const pipeline::StageMap&)>
      hierarchical_decider{};
  /// Incremental decision path (default): the acceptance math — per-stage
  /// load sums, capacity-normalized bottlenecks, migration diff — is
  /// served from a balance::CostSurface that re-sums only the stages a
  /// profile change or candidate move touches, instead of re-pricing the
  /// whole grid per decision.  Proven *bit-identical* to the naive full
  /// rescan (Rebalancer::rebalance_full_rescan) by the differential suite
  /// in tests/test_incremental_cost.cpp, including session-level telemetry
  /// byte-equality; false forces the reference path.
  bool incremental = true;
};

struct OverheadBreakdown {
  double profile_s = 0.0;
  double decide_s = 0.0;
  double migrate_s = 0.0;
  double total_s() const { return profile_s + decide_s + migrate_s; }

  OverheadBreakdown& operator+=(const OverheadBreakdown& o) {
    profile_s += o.profile_s;
    decide_s += o.decide_s;
    migrate_s += o.migrate_s;
    return *this;
  }
};

/// What happened to the candidate map the balancing algorithm proposed.
enum class MapDecision {
  Accepted,            ///< adopted (possibly identical to the current map)
  RejectedBottleneck,  ///< hysteresis: gain below min_bottleneck_gain
  RejectedPayoff,      ///< gain x window does not cover the exposed cost
};

const char* to_string(MapDecision d);

struct RebalanceOutcome {
  pipeline::StageMap map;
  OverheadBreakdown overhead;
  MigrationPlan migration;
  double imbalance_before = 0.0;  ///< paper Eq. (2) on stage loads
  double imbalance_after = 0.0;
  std::optional<DiffusionResult> diffusion;  ///< set for Algorithm::Diffusion
  MapDecision decision = MapDecision::Accepted;
  /// Projected per-iteration bottleneck gain of the candidate, in seconds
  /// (capacity-normalized time loads; 0 when the candidate equals current).
  double projected_gain_s = 0.0;
  /// Priced exposed cost of the candidate's migration (after multiplier
  /// and exposure scaling) — what the payoff rule compared against.
  double exposed_cost_s = 0.0;
  /// Bytes the candidate would have moved; equals migration.total_bytes()
  /// when accepted, the avoided traffic when rejected.
  double candidate_bytes = 0.0;
};

class Rebalancer {
 public:
  Rebalancer(RebalanceConfig cfg, comm::CostModel net)
      : cfg_(cfg), net_(net) {}

  /// Decide a new stage map from the profile; compute migration plan and
  /// overheads relative to `current`.  Dispatches on
  /// RebalanceConfig::incremental: the cached decision path by default,
  /// the naive rescan otherwise — with identical outcomes either way.
  RebalanceOutcome rebalance(const LayerProfile& profile,
                             const pipeline::StageMap& current) const;

  /// Reference twin: the naive decision path that re-prices every stage
  /// from scratch (full stage_loads + std::max_element + O(L) migration
  /// diff per decision).  Kept alive under test as the differential
  /// oracle for the incremental path.
  RebalanceOutcome rebalance_full_rescan(
      const LayerProfile& profile, const pipeline::StageMap& current) const;

  const RebalanceConfig& config() const { return cfg_; }

  /// Stages the cached decision path re-summed at the last rebalance()
  /// (profile sync + candidate evaluation) — observability for the
  /// bench_scale work counters; 0 after a full-rescan dispatch.
  std::size_t last_touched_stages() const { return last_touched_; }

 private:
  RebalanceOutcome rebalance_incremental(
      const LayerProfile& profile, const pipeline::StageMap& current) const;
  /// Candidate generation (the configured balancing algorithm), shared by
  /// both decision paths so they evaluate the identical candidate map.
  pipeline::StageMap propose(std::span<const double> weights,
                             const LayerProfile& profile,
                             const pipeline::StageMap& current,
                             std::optional<DiffusionResult>& diffusion) const;

  RebalanceConfig cfg_;
  comm::CostModel net_;
  /// Decision-path cache, carried across rebalance() calls (the whole
  /// point: stage sums survive from one decision to the next and only
  /// touched stages are re-summed).  Mutable because rebalance() is
  /// logically const — the cache never changes an outcome, only its cost.
  mutable CostSurface surface_;
  mutable std::size_t last_touched_ = 0;
};

}  // namespace dynmo::balance
