#include "balance/diffusion.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/error.hpp"

namespace dynmo::balance {

double DiffusionBalancer::potential(std::span<const double> loads) {
  double phi = 0.0;
  for (std::size_t u = 0; u < loads.size(); ++u) {
    for (std::size_t v = u + 1; v < loads.size(); ++v) {
      phi += std::abs(loads[u] - loads[v]);
    }
  }
  return phi;
}

int DiffusionBalancer::lemma2_round_bound(int num_stages, double total_load,
                                          double gamma) {
  const double n = std::max(2, num_stages);
  const double g = std::max(gamma, 1e-300);
  const double s_con =
      60.0 * n * n * std::log(2.0 * n) *
      std::max(1.0, std::log(total_load * n * n / g));
  return static_cast<int>(std::min(s_con, 1e7)) + 1;
}

namespace {

struct Boundaries {
  std::vector<std::size_t> b;  // S+1 entries

  double stage_load(int s, std::span<const double> w) const {
    double acc = 0.0;
    for (std::size_t l = b[static_cast<std::size_t>(s)];
         l < b[static_cast<std::size_t>(s) + 1]; ++l) {
      acc += w[l];
    }
    return acc;
  }
  double stage_mem(int s, std::span<const double> mem) const {
    if (mem.empty()) return 0.0;
    double acc = 0.0;
    for (std::size_t l = b[static_cast<std::size_t>(s)];
         l < b[static_cast<std::size_t>(s) + 1]; ++l) {
      acc += mem[l];
    }
    return acc;
  }
};

}  // namespace

DiffusionResult DiffusionBalancer::balance(
    const DiffusionRequest& req, const pipeline::StageMap& start) const {
  DYNMO_CHECK(!req.weights.empty(), "no layers to balance");
  DYNMO_CHECK(start.num_layers() == req.weights.size(),
              "stage map covers " << start.num_layers() << " layers, weights "
                                  << req.weights.size());
  DYNMO_CHECK(req.memory_bytes.empty() ||
                  req.memory_bytes.size() == req.weights.size(),
              "memory vector size mismatch");

  const std::span<const double> w(req.weights);
  const std::span<const double> mem(req.memory_bytes);
  const int S = start.num_stages();
  DYNMO_CHECK(req.capacities.empty() ||
                  req.capacities.size() == static_cast<std::size_t>(S),
              "capacity vector covers " << req.capacities.size()
                                        << " stages, map has " << S);
  std::vector<double> cap(static_cast<std::size_t>(S), 1.0);
  if (!req.capacities.empty()) {
    for (int s = 0; s < S; ++s) {
      DYNMO_CHECK(req.capacities[static_cast<std::size_t>(s)] > 0.0,
                  "stage " << s << " has non-positive capacity");
      cap[static_cast<std::size_t>(s)] =
          req.capacities[static_cast<std::size_t>(s)];
    }
  }

  Boundaries cur{start.boundaries()};
  std::vector<double> loads(static_cast<std::size_t>(S));
  std::vector<double> mems(static_cast<std::size_t>(S));
  // Normalized loads x_s = load_s / c_s: the quantity the weighted
  // protocol equalizes (identical to loads for uniform capacities).
  std::vector<double> norm(static_cast<std::size_t>(S));
  const auto refresh = [&] {
    for (int s = 0; s < S; ++s) {
      const auto is = static_cast<std::size_t>(s);
      loads[is] = cur.stage_load(s, w);
      mems[is] = cur.stage_mem(s, mem);
      norm[is] = loads[is] / cap[is];
    }
  };
  refresh();

  const double total =
      std::accumulate(norm.begin(), norm.end(), 0.0);
  const double gamma = req.gamma > 0.0 ? req.gamma : 1e-3 * total;
  const int max_rounds = req.max_rounds > 0
                             ? req.max_rounds
                             : lemma2_round_bound(S, total, gamma);

  DiffusionResult res;
  res.phi_history.push_back(potential(norm));

  // Two-phase discrete diffusion (first-order scheme on the pipeline path
  // graph).  Phase 1 is the textbook scalar diffusion each stage can run
  // with neighbor-only information: virtual loads x relax by
  //     x_a ← x_a + α(x_{a−1} − x_a) + α(x_{a+1} − x_a),
  // and each edge integrates the signed flow it carried.  Phase 2 realizes
  // the accumulated flows with whole-layer moves: an edge ships boundary
  // layers in the flow direction while that brings the shipped amount
  // closer to the target flow (standard flow rounding).  Layer moves are
  // therefore allowed to *transiently* unbalance a receiving stage — this
  // is what lets load cascade through intermediate stages and makes the
  // scheme converge where naive gap-greedy neighbor exchange stalls.
  constexpr double kAlpha = 0.5;  // optimal FOS weight for a path graph
  std::vector<double> virt = norm;
  std::vector<double> edge_flow(static_cast<std::size_t>(std::max(0, S - 1)),
                                0.0);

  const auto realize_flows = [&]() -> int {
    int moves = 0;
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (int a = 0; a + 1 < S; ++a) {
        const auto ia = static_cast<std::size_t>(a);
        // Rightward flow still owed across edge (a, a+1).
        const double owed = edge_flow[ia];
        if (owed > 0.0 && cur.b[ia + 1] > cur.b[ia]) {
          const std::size_t layer = cur.b[ia + 1] - 1;
          const double lw = w[layer];
          const double lm = mem.empty() ? 0.0 : mem[layer];
          const bool closer = std::abs(owed - lw) < owed - 1e-15;
          const bool mem_ok = req.mem_capacity <= 0.0 ||
                              mems[ia + 1] + lm <= req.mem_capacity;
          if (closer && mem_ok) {
            --cur.b[ia + 1];
            loads[ia] -= lw;
            loads[ia + 1] += lw;
            norm[ia] = loads[ia] / cap[ia];
            norm[ia + 1] = loads[ia + 1] / cap[ia + 1];
            mems[ia] -= lm;
            mems[ia + 1] += lm;
            edge_flow[ia] -= lw;
            ++moves;
            progressed = true;
          }
        } else if (owed < 0.0 && cur.b[ia + 2] > cur.b[ia + 1]) {
          const std::size_t layer = cur.b[ia + 1];
          const double lw = w[layer];
          const double lm = mem.empty() ? 0.0 : mem[layer];
          const bool closer = std::abs(owed + lw) < -owed - 1e-15;
          const bool mem_ok = req.mem_capacity <= 0.0 ||
                              mems[ia] + lm <= req.mem_capacity;
          if (closer && mem_ok) {
            ++cur.b[ia + 1];
            loads[ia] += lw;
            loads[ia + 1] -= lw;
            norm[ia] = loads[ia] / cap[ia];
            norm[ia + 1] = loads[ia + 1] / cap[ia + 1];
            mems[ia] += lm;
            mems[ia + 1] -= lm;
            edge_flow[ia] += lw;
            ++moves;
            progressed = true;
          }
        }
      }
    }
    return moves;
  };

  // Track the best placement seen: flow realization may transiently pass
  // through worse states (that is what lets it escape local optima), so
  // the returned map is the round with the lowest bottleneck, ties broken
  // by phi.
  std::vector<std::size_t> best_b = cur.b;
  double best_bottleneck = *std::max_element(norm.begin(), norm.end());
  double best_phi = res.phi_history.front();
  const auto consider_best = [&] {
    const double bn = *std::max_element(norm.begin(), norm.end());
    const double phi = potential(norm);
    if (bn < best_bottleneck - 1e-15 ||
        (bn <= best_bottleneck + 1e-15 && phi < best_phi)) {
      best_b = cur.b;
      best_bottleneck = bn;
      best_phi = phi;
    }
  };

  int stagnant = 0;
  for (int r = 0; r < max_rounds; ++r) {
    // Phase 1: one weighted diffusion sweep on the normalized loads; the
    // load carried over edge (a,a+1) is the normalized flow times the
    // edge conductance min(c_a, c_{a+1}) (stable since path degree ≤ 2).
    std::vector<double> next = virt;
    for (int a = 0; a + 1 < S; ++a) {
      const auto ia = static_cast<std::size_t>(a);
      const double c_edge = std::min(cap[ia], cap[ia + 1]);
      const double f = kAlpha * c_edge * (virt[ia] - virt[ia + 1]);
      next[ia] -= f / cap[ia];
      next[ia + 1] += f / cap[ia + 1];
      edge_flow[ia] += f;
    }
    virt = std::move(next);

    // Phase 2: realize what the accumulated flows allow.
    const int moved = realize_flows();
    res.layer_moves += moved;
    ++res.rounds;
    consider_best();
    // History records the best-so-far potential: the protocol may pass
    // through transiently worse states, but the achievable balance (what
    // Lemma 2 bounds) improves monotonically.
    res.phi_history.push_back(
        std::min(res.phi_history.back(), potential(norm)));
    if (res.phi_history.back() <= gamma) {
      res.converged = true;
      break;
    }
    stagnant = (moved == 0) ? stagnant + 1 : 0;
    // The scalar diffusion mixes in O(S log S) sweeps; once the virtual
    // loads are flat and several realization passes moved nothing, layer
    // granularity is the only residual.
    if (stagnant > 2 * S + 4) break;
  }

  res.map = pipeline::StageMap::from_boundaries(std::move(best_b));
  if (!res.converged) {
    // Converged-by-granularity still counts if φ is within one max layer
    // weight of γ per pair (normalized by the smallest capacity, the
    // stage where one layer moves x the most).
    const double max_w = *std::max_element(w.begin(), w.end()) /
                         *std::min_element(cap.begin(), cap.end());
    res.converged = res.phi_history.back() <=
                    gamma + max_w * static_cast<double>(S) *
                                static_cast<double>(S);
  }
  return res;
}

}  // namespace dynmo::balance
