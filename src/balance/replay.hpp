// Offline trace replay: feed a recorded per-layer load history back
// through any balancer configuration (paper-independent observability;
// docs/TELEMETRY.md "Replay").
//
// A telemetry trace's stage_loads table records, for every simulated
// iteration, the exact per-layer fwd+bwd seconds and resident bytes the
// session's balancers consumed.  replay() re-runs the profile → decide →
// migrate loop over that history with an arbitrary RebalanceConfig:
//
//   * the *same* configuration (algorithm, payoff window, noise seed)
//     reproduces the original run's per-iteration bottleneck sequence
//     bit-for-bit — the determinism contract of docs/RUNTIME.md extended
//     to recorded traces, and the round-trip test in
//     tests/test_telemetry.cpp enforces it;
//   * a *different* configuration answers "what would Diffusion /
//     HierarchicalDiffusion / a longer payoff window have done on this
//     exact production load history" — any captured trace becomes a
//     reproducible benchmark scenario (examples/trace_replay.cpp).
//
// Replay covers the balancer path only: a fixed worker count, no re-pack
// or elastic transitions (their restarts change the stage count
// mid-trace; replaying such a trace replays the load history onto the
// initial worker count).
#pragma once

#include <cstdint>
#include <vector>

#include "balance/rebalancer.hpp"
#include "pipeline/stage_map.hpp"

namespace dynmo::balance {

/// A recorded load history: one frame per simulated iteration, in trace
/// order.  telemetry::TraceReader::replayed_loads() builds this from a
/// trace directory; synthetic histories can be assembled directly.
struct ReplayedLoads {
  struct Frame {
    std::int64_t iter = 0;
    std::vector<double> layer_time_s;      ///< per-layer fwd+bwd seconds
    std::vector<double> layer_memory_bytes;  ///< per-layer resident bytes
  };
  std::vector<Frame> frames;
  /// Stage count of the recording (the initial pipeline width).
  int num_stages = 0;

  std::size_t num_layers() const {
    return frames.empty() ? 0 : frames.front().layer_time_s.size();
  }
};

struct ReplayConfig {
  /// Full balancer configuration — algorithm, hysteresis, payoff window,
  /// placement/capacities, and (for HierarchicalDiffusion) the injected
  /// decider, exactly as runtime::TrainingSession resolves them.
  RebalanceConfig rebalance{};
  /// Rebalance points fire when frame.iter % interval == 0 (matching the
  /// session); <= 0 never rebalances (static-map replay).
  std::int64_t rebalance_interval = 1;
  /// Per-layer parameter counts for BalanceBy::Param; empty → zeros.
  std::vector<double> params{};
  /// Re-apply the session's profiling measurement noise from this seed so
  /// the balancers see byte-identical profiles.  The session derives its
  /// noise stream from SessionConfig::seed the same way.
  bool measurement_noise = true;
  std::uint64_t seed = 0x5eed;
};

/// SessionResult's balancer-side ledger, reproduced offline.
struct ReplayResult {
  /// Per-frame bottleneck: max over stages of the hosted layers' seconds,
  /// under the map in effect *after* any rebalance at that frame — the
  /// exact quantity the telemetry iterations table records.
  std::vector<double> bottleneck_s;
  double total_bottleneck_s = 0.0;
  int rebalance_count = 0;
  int maps_accepted = 0;
  int maps_rejected_bottleneck = 0;
  int maps_rejected_payoff = 0;
  double migration_bytes = 0.0;
  double migration_bytes_avoided = 0.0;
  OverheadBreakdown overhead;
  pipeline::StageMap final_map;
};

/// Re-run the balancing loop over a recorded history.  `net` prices
/// migration costs (pass the deployment's cost model to replay placement-
/// priced payoff decisions, or a flat CostModel otherwise).
ReplayResult replay(const ReplayedLoads& loads, const ReplayConfig& cfg,
                    const comm::CostModel& net);

}  // namespace dynmo::balance
