// Migration planning: the diff between two stage maps, and its modeled cost.
//
// When a layer moves from GPU A to GPU B, its weights, gradients, and
// optimizer state are transferred and its memory is released on A (paper
// §4.1).  The plan groups transfers per (src,dst) pair; distinct pairs move
// concurrently, transfers sharing an endpoint serialize — so the modeled
// migration time is the per-rank bottleneck.
#pragma once

#include <span>
#include <vector>

#include "comm/cost_model.hpp"
#include "pipeline/stage_map.hpp"

namespace dynmo::balance {

struct LayerTransfer {
  std::size_t layer = 0;
  int src_stage = 0;
  int dst_stage = 0;
  double bytes = 0.0;
};

/// Deployment-priced exposed cost of a migration plan: the wall-clock the
/// plan stalls the pipeline for (per-rank serialization bottleneck) plus
/// its wire bytes split by whether each transfer crosses a node boundary.
/// Node membership comes from the cost model, so a Deployment/Topology-
/// backed model classifies by the real cluster graph and the flat model by
/// its `gpus_per_node` rule.
struct MigrationCost {
  double time_s = 0.0;            ///< per-rank serialization bottleneck
  double intra_node_bytes = 0.0;  ///< bytes moved inside nodes
  double inter_node_bytes = 0.0;  ///< bytes moved across the fabric
  double total_bytes() const { return intra_node_bytes + inter_node_bytes; }
};

struct MigrationPlan {
  std::vector<LayerTransfer> transfers;

  bool empty() const { return transfers.empty(); }
  double total_bytes() const;
  /// Wall-clock estimate under per-rank serialization; stage s is rank s.
  double estimated_time_s(const comm::CostModel& net) const;
  /// Same, but stage s lives on rank stage_to_rank[s] (a deployment's
  /// placement); each transfer is priced by the link its endpoints
  /// actually share.
  double estimated_time_s(const comm::CostModel& net,
                          std::span<const int> stage_to_rank) const;
  /// estimated_time_s plus the intra/inter-node byte split — what the
  /// payoff-window acceptance rule weighs against the projected gain.
  /// Empty `stage_to_rank` → stage s is rank s.
  MigrationCost exposed_cost(const comm::CostModel& net,
                             std::span<const int> stage_to_rank = {}) const;
};

/// Diff `before` → `after`; `state_bytes[l]` is what layer l's migration
/// actually moves (params+grads+optimizer; CSR index arrays when pruned).
///
/// Incremental: when both maps have the same stage count, only the layers
/// inside a boundary-difference interval [min(b_s, a_s), max(b_s, a_s))
/// can change stages (an integer argument on the sorted boundary vectors),
/// so only those intervals are scanned — O(moved + changed-boundaries)
/// instead of O(L).  The transfers are bit-identical, in the same
/// ascending-layer order, as the full diff below; the differential suite
/// (tests/test_incremental_cost.cpp) holds the two to exact equality.
MigrationPlan plan_migration(const pipeline::StageMap& before,
                             const pipeline::StageMap& after,
                             std::span<const double> state_bytes);

/// Reference twin of plan_migration: the naive full O(L) sweep over every
/// layer, kept alive under test as the differential oracle.
MigrationPlan plan_migration_full_rescan(const pipeline::StageMap& before,
                                         const pipeline::StageMap& after,
                                         std::span<const double> state_bytes);

}  // namespace dynmo::balance
