// Incremental decision-path surfaces (ROADMAP "scale the decision path to
// 10k+ ranks").
//
// Every rebalance point used to re-price the whole grid: per-stage load
// sums were re-summed over all L layers, the bottleneck re-found with an
// O(S) scan, and the migration plan re-diffed over all L layers — per
// *decision*, at thousands of stages.  But a candidate move touches O(1)
// stages, so this module keeps the per-stage terms cached and answers the
// decision-point queries incrementally:
//
//   MaxTree      tournament tree over per-stage bottleneck terms —
//                O(log S) point update, O(1) max/argmax, ties broken
//                exactly like std::max_element (lowest index wins).
//   CostSurface  per-stage load/price cache for one (map, profile,
//                capacities) snapshot: sync() re-sums only the stages
//                whose inputs changed, evaluate() prices a candidate map
//                by recomputing only the stages its boundary moves touch.
//
// Equivalence contract (docs/COST_MODEL.md "Incremental recomputation"):
// every value the incremental path produces is *bit-identical* to the
// naive full rescan it replaces, not merely close.  Three rules make that
// possible:
//
//   1. A touched stage is re-summed left-to-right over its layers — the
//      exact FP summation order of StageMap::stage_loads — never patched
//      with add/subtract deltas (which would round differently).
//   2. MaxTree's tie-break (left child wins on equality) reproduces
//      std::max_element's first-max semantics, so even the *argmax* agrees.
//   3. The incremental migration planner emits transfers in ascending
//      layer order and re-derives src/dst per layer, exactly like the
//      full diff; it merely skips the layers provably outside any
//      boundary-difference interval (an integer argument, no FP involved).
//
// Every surface ships a *_full_rescan() reference twin, kept alive under
// test: tests/test_incremental_cost.cpp drives randomized perturbation
// streams through both paths and asserts exact (EXPECT_EQ) equality.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "balance/migration.hpp"
#include "pipeline/stage_map.hpp"

namespace dynmo::balance {

/// Tournament (segment) tree over a fixed-size array of doubles.
/// max_value()/argmax() are O(1) reads of the root; set() is O(log n).
/// Ties resolve to the lowest index — the same element
/// *std::max_element(v.begin(), v.end()) returns — so callers can swap a
/// full scan for the root without changing a single decision.
class MaxTree {
 public:
  MaxTree() = default;

  /// Rebuild over `values` (O(n)).
  void reset(std::span<const double> values);
  /// Point update, O(log n).
  void set(std::size_t i, double v);
  double get(std::size_t i) const;

  double max_value() const;
  std::size_t argmax() const;

  std::size_t size() const { return n_; }
  bool empty() const { return n_ == 0; }
  /// Heap footprint of the tree's arrays (near-linear-memory gate).
  std::size_t memory_bytes() const;

  /// Reference twin: linear scan with std::max_element, kept alive so the
  /// differential suite can oracle-check the root after every update.
  double max_value_full_rescan() const;
  std::size_t argmax_full_rescan() const;

 private:
  void pull(std::size_t node);

  std::size_t n_ = 0;
  std::size_t cap_ = 0;               ///< leaf span (power of two >= n_)
  std::vector<double> val_;           ///< 2*cap_ tree nodes
  std::vector<std::uint32_t> idx_;    ///< argmax leaf index per node
};

/// What CostSurface::evaluate() learned about a candidate map.  The
/// `norm_*` fields are the capacity-normalized bottlenecks the Rebalancer's
/// acceptance rules compare (weights currency for the hysteresis, time
/// currency for the payoff window).
struct SurfaceEval {
  MigrationPlan plan;
  double norm_w_before = 0.0;
  double norm_w_after = 0.0;
  double norm_t_before = 0.0;
  double norm_t_after = 0.0;
  /// Stages whose sums were recomputed for this candidate (bench counter).
  std::size_t touched_stages = 0;
};

/// Cached per-stage cost terms for one (stage map, per-layer profile,
/// capacities) snapshot, in two currencies at once: the balancing weights
/// (whatever BalanceBy selected) and the profile's time loads (seconds,
/// what the payoff rule prices).  sync() absorbs input changes by
/// re-summing only the touched stages; evaluate() prices a candidate map
/// with an undo log so a rejected candidate rolls back in O(touched).
class CostSurface {
 public:
  /// Full rebuild — by construction the same left-to-right per-stage sums
  /// a naive rescan produces.
  void reset(const pipeline::StageMap& map, std::span<const double> weights,
             std::span<const double> time_s,
             std::span<const double> mem_bytes,
             std::span<const double> capacities);

  bool ready() const { return map_.num_stages() > 0; }

  /// Absorb a new snapshot: full reset when the map shape, the layer
  /// count, or the capacities changed; otherwise diff the per-layer inputs
  /// and re-sum only the stages hosting a changed layer.  Returns the
  /// number of stages recomputed (== num_stages on a full reset).
  std::size_t sync(const pipeline::StageMap& map,
                   std::span<const double> weights,
                   std::span<const double> time_s,
                   std::span<const double> mem_bytes,
                   std::span<const double> capacities);

  /// Point update of one layer's terms (test/bench drivers); O(log S).
  void set_layer(std::size_t layer, double weight, double time_s,
                 double mem_bytes);

  const pipeline::StageMap& map() const { return map_; }
  /// Cached per-stage sums (identical values to map().stage_loads(...)).
  std::span<const double> stage_loads_w() const { return sum_w_; }
  std::span<const double> stage_loads_t() const { return sum_t_; }
  std::span<const double> layer_mem_bytes() const { return m_; }

  /// Capacity-normalized bottleneck of the current map, O(1) off the tree.
  double bottleneck_w() const { return tree_w_.max_value(); }
  double bottleneck_t() const { return tree_t_.max_value(); }
  /// Reference twins: naive O(L + S) rescan (StageMap::stage_loads +
  /// std::max_element), kept alive under test.
  double bottleneck_w_full_rescan() const;
  double bottleneck_t_full_rescan() const;

  /// Price a candidate map incrementally: recompute only the stages whose
  /// boundaries moved, leaving an undo overlay in place.  Exactly one of
  /// commit()/rollback() must follow before the next evaluate()/sync().
  SurfaceEval evaluate(const pipeline::StageMap& candidate);
  /// Reference twin: naive O(L + S) evaluation of the same candidate
  /// (full stage_loads, std::max_element, full-diff migration plan).
  /// Does not touch the cache.
  SurfaceEval evaluate_full_rescan(const pipeline::StageMap& candidate) const;

  /// Adopt the last evaluated candidate as the current map.
  void commit();
  /// Discard the last evaluated candidate, restoring the cached terms.
  void rollback();

  /// Heap footprint of all cached arrays (near-linear-memory gate).
  std::size_t memory_bytes() const;

 private:
  double norm_w(std::size_t s) const;
  double norm_t(std::size_t s) const;
  /// Re-sum stage s left-to-right from `b` (StageMap summation order) and
  /// push the normalized terms into the trees.
  void recompute_stage(std::size_t s, const std::vector<std::size_t>& b);

  pipeline::StageMap map_;
  std::vector<double> w_;  ///< per-layer balancing weights
  std::vector<double> t_;  ///< per-layer time loads (seconds)
  std::vector<double> m_;  ///< per-layer migration state bytes
  std::vector<double> caps_;
  std::vector<double> sum_w_;  ///< per-stage sums, StageMap order
  std::vector<double> sum_t_;
  MaxTree tree_w_;
  MaxTree tree_t_;

  struct Undo {
    std::size_t stage;
    double sum_w;
    double sum_t;
  };
  bool overlay_ = false;
  pipeline::StageMap cand_;
  std::vector<Undo> undo_;
};

}  // namespace dynmo::balance
