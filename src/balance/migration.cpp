#include "balance/migration.hpp"

#include <algorithm>
#include <map>

#include "core/error.hpp"

namespace dynmo::balance {

double MigrationPlan::total_bytes() const {
  double acc = 0.0;
  for (const auto& t : transfers) acc += t.bytes;
  return acc;
}

namespace {

/// Serialize per endpoint: a rank's migration time is the sum of the
/// p2p times of every transfer it participates in; the plan completes when
/// the busiest rank does.
double bottleneck_rank_time(const std::vector<LayerTransfer>& transfers,
                            const comm::CostModel& net,
                            auto&& rank_of_stage) {
  std::map<int, double> rank_time;
  for (const auto& t : transfers) {
    const int src = rank_of_stage(t.src_stage);
    const int dst = rank_of_stage(t.dst_stage);
    const double s =
        net.p2p_time(src, dst, static_cast<std::size_t>(t.bytes));
    rank_time[src] += s;
    rank_time[dst] += s;
  }
  double worst = 0.0;
  for (const auto& [rank, s] : rank_time) worst = std::max(worst, s);
  return worst;
}

}  // namespace

double MigrationPlan::estimated_time_s(const comm::CostModel& net) const {
  return bottleneck_rank_time(transfers, net,
                              [](int stage) { return stage; });
}

double MigrationPlan::estimated_time_s(
    const comm::CostModel& net, std::span<const int> stage_to_rank) const {
  return bottleneck_rank_time(transfers, net, [&](int stage) {
    DYNMO_CHECK(stage >= 0 &&
                    static_cast<std::size_t>(stage) < stage_to_rank.size(),
                "transfer touches stage " << stage << " outside the "
                                          << stage_to_rank.size()
                                          << "-stage placement");
    return stage_to_rank[static_cast<std::size_t>(stage)];
  });
}

MigrationCost MigrationPlan::exposed_cost(
    const comm::CostModel& net, std::span<const int> stage_to_rank) const {
  MigrationCost cost;
  cost.time_s = stage_to_rank.empty() ? estimated_time_s(net)
                                      : estimated_time_s(net, stage_to_rank);
  const auto rank_of = [&](int stage) {
    if (stage_to_rank.empty()) return stage;
    return stage_to_rank[static_cast<std::size_t>(stage)];
  };
  for (const auto& t : transfers) {
    if (net.same_node(rank_of(t.src_stage), rank_of(t.dst_stage))) {
      cost.intra_node_bytes += t.bytes;
    } else {
      cost.inter_node_bytes += t.bytes;
    }
  }
  return cost;
}

MigrationPlan plan_migration_full_rescan(const pipeline::StageMap& before,
                                         const pipeline::StageMap& after,
                                         std::span<const double> state_bytes) {
  DYNMO_CHECK(before.num_layers() == after.num_layers(),
              "stage maps cover different layer counts");
  DYNMO_CHECK(state_bytes.size() == before.num_layers(),
              "state_bytes size mismatch");
  MigrationPlan plan;
  for (std::size_t l = 0; l < before.num_layers(); ++l) {
    const int src = before.stage_of(l);
    const int dst = after.stage_of(l);
    if (src != dst) {
      plan.transfers.push_back(LayerTransfer{l, src, dst, state_bytes[l]});
    }
  }
  return plan;
}

MigrationPlan plan_migration(const pipeline::StageMap& before,
                             const pipeline::StageMap& after,
                             std::span<const double> state_bytes) {
  DYNMO_CHECK(before.num_layers() == after.num_layers(),
              "stage maps cover different layer counts");
  DYNMO_CHECK(state_bytes.size() == before.num_layers(),
              "state_bytes size mismatch");
  const auto& bb = before.boundaries();
  const auto& ab = after.boundaries();
  if (bb.size() != ab.size()) {
    // Stage counts differ: the interval argument does not apply, so diff
    // every layer (rare — only synthetic callers compare unequal shapes).
    return plan_migration_full_rescan(before, after, state_bytes);
  }
  // A layer l outside every boundary-difference interval satisfies
  // b_s <= l ⇔ a_s <= l for all s, hence StageMap::stage_of (a pure
  // function of those comparisons) places it identically in both maps.
  // Interval starts and ends are non-decreasing in s (both boundary
  // vectors are sorted), so one forward pass merges overlapping intervals
  // and scans each merged range in ascending layer order — the exact
  // transfer order of the full sweep.
  MigrationPlan plan;
  bool open = false;
  std::size_t lo = 0;
  std::size_t hi = 0;
  const auto flush = [&]() {
    for (std::size_t l = lo; l < hi; ++l) {
      const int src = before.stage_of(l);
      const int dst = after.stage_of(l);
      if (src != dst) {
        plan.transfers.push_back(LayerTransfer{l, src, dst, state_bytes[l]});
      }
    }
  };
  for (std::size_t s = 1; s + 1 < bb.size(); ++s) {
    if (bb[s] == ab[s]) continue;
    const std::size_t a = std::min(bb[s], ab[s]);
    const std::size_t b = std::max(bb[s], ab[s]);
    if (!open) {
      open = true;
      lo = a;
      hi = b;
    } else if (a <= hi) {
      hi = std::max(hi, b);
    } else {
      flush();
      lo = a;
      hi = b;
    }
  }
  if (open) flush();
  return plan;
}

}  // namespace dynmo::balance
