#include "balance/migration.hpp"

#include <algorithm>
#include <map>

#include "core/error.hpp"

namespace dynmo::balance {

double MigrationPlan::total_bytes() const {
  double acc = 0.0;
  for (const auto& t : transfers) acc += t.bytes;
  return acc;
}

double MigrationPlan::estimated_time_s(const comm::CostModel& net,
                                       int first_global_rank) const {
  // Serialize per endpoint: a rank's migration time is the sum of the
  // p2p times of every transfer it participates in; the plan completes when
  // the busiest rank does.
  std::map<int, double> rank_time;
  for (const auto& t : transfers) {
    const int src = first_global_rank + t.src_stage;
    const int dst = first_global_rank + t.dst_stage;
    const double s =
        net.p2p_time(src, dst, static_cast<std::size_t>(t.bytes));
    rank_time[src] += s;
    rank_time[dst] += s;
  }
  double worst = 0.0;
  for (const auto& [rank, s] : rank_time) worst = std::max(worst, s);
  return worst;
}

MigrationPlan plan_migration(const pipeline::StageMap& before,
                             const pipeline::StageMap& after,
                             std::span<const double> state_bytes) {
  DYNMO_CHECK(before.num_layers() == after.num_layers(),
              "stage maps cover different layer counts");
  DYNMO_CHECK(state_bytes.size() == before.num_layers(),
              "state_bytes size mismatch");
  MigrationPlan plan;
  for (std::size_t l = 0; l < before.num_layers(); ++l) {
    const int src = before.stage_of(l);
    const int dst = after.stage_of(l);
    if (src != dst) {
      plan.transfers.push_back(LayerTransfer{l, src, dst, state_bytes[l]});
    }
  }
  return plan;
}

}  // namespace dynmo::balance
