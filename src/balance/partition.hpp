// Centralized Partition balancer (paper §3.3, first algorithm).
//
// Finds the contiguous layer→stage partition minimizing the bottleneck
// (maximum stage load) via binary search over the bottleneck value with a
// greedy feasibility probe — the classic linear-partition parametric search
// DeepSpeed's partition_balanced utility implements.  Optionally subject to
// a per-worker memory capacity; when the memory constraint makes the
// load-optimal cut infeasible, the probe backs off to the best memory-legal
// cut.
//
// Lemma 1 (maximum imbalance reduction ⇔ minimum bubble ratio) is realized
// here exactly: the returned partition achieves the minimum possible
// max-stage-load over all contiguous partitions, hence the minimum pipeline
// bottleneck.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "pipeline/stage_map.hpp"

namespace dynmo::balance {

struct PartitionRequest {
  std::vector<double> weights;       ///< per-layer load
  std::vector<double> memory_bytes;  ///< per-layer memory (may be empty)
  double mem_capacity = 0.0;         ///< per-stage cap; <=0 → unconstrained
  int num_stages = 1;
  /// Relative per-stage speed factors (1.0 = healthy, 0.5 = half speed —
  /// e.g. a degraded GPU reported by the fault injector).  Empty →
  /// homogeneous.  When set (size == num_stages, all > 0) the search
  /// minimizes the *capacity-normalized* bottleneck max_s(load_s / cap_s),
  /// so layers route away from slow stages.
  std::vector<double> capacities;
};

struct PartitionResult {
  pipeline::StageMap map;
  double bottleneck = 0.0;  ///< max stage load achieved
  bool memory_feasible = true;
};

class PartitionBalancer {
 public:
  /// Throws dynmo::Error on malformed input.  If the memory constraint is
  /// infeasible even ignoring load (some stage must exceed capacity), the
  /// result has memory_feasible=false and the least-bad map.
  PartitionResult balance(const PartitionRequest& req) const;

  /// The minimum achievable bottleneck over contiguous partitions,
  /// ignoring memory (used by tests to assert optimality).
  static double optimal_bottleneck(std::span<const double> weights,
                                   int num_stages);
};

}  // namespace dynmo::balance
