#include "balance/rebalancer.hpp"

#include <algorithm>
#include <chrono>

#include "core/error.hpp"
#include "core/stats.hpp"

namespace dynmo::balance {

const char* to_string(Algorithm a) {
  switch (a) {
    case Algorithm::Partition: return "partition";
    case Algorithm::Diffusion: return "diffusion";
    case Algorithm::HierarchicalDiffusion: return "hier_diffusion";
  }
  return "?";
}

const char* to_string(MapDecision d) {
  switch (d) {
    case MapDecision::Accepted: return "accepted";
    case MapDecision::RejectedBottleneck: return "rejected_bottleneck";
    case MapDecision::RejectedPayoff: return "rejected_payoff";
  }
  return "?";
}

RebalanceOutcome Rebalancer::rebalance(
    const LayerProfile& profile, const pipeline::StageMap& current) const {
  if (cfg_.incremental) return rebalance_incremental(profile, current);
  last_touched_ = 0;
  return rebalance_full_rescan(profile, current);
}

RebalanceOutcome Rebalancer::rebalance_full_rescan(
    const LayerProfile& profile, const pipeline::StageMap& current) const {
  DYNMO_CHECK(profile.consistent(), "inconsistent profile");
  DYNMO_CHECK(profile.num_layers() == current.num_layers(),
              "profile covers " << profile.num_layers()
                                << " layers, map covers "
                                << current.num_layers());
  const int S = current.num_stages();
  const auto weights = balance_weights(profile, cfg_.by);

  RebalanceOutcome out;
  {
    const auto loads = current.stage_loads(weights);
    out.imbalance_before = load_imbalance(loads);
  }

  const auto t0 = std::chrono::steady_clock::now();
  out.map = propose(weights, profile, current, out.diffusion);
  const auto t1 = std::chrono::steady_clock::now();

  // Capacity-normalized per-stage bottleneck — what actually gates a
  // (possibly heterogeneous) pipeline.
  const auto normalized_max = [&](const pipeline::StageMap& m,
                                  std::span<const double> per_layer) {
    auto loads = m.stage_loads(per_layer);
    if (!cfg_.capacities.empty()) {
      DYNMO_CHECK(cfg_.capacities.size() == loads.size(),
                  "capacity vector covers " << cfg_.capacities.size()
                                            << " stages, map has "
                                            << loads.size());
      for (std::size_t s = 0; s < loads.size(); ++s) {
        loads[s] /= std::max(1e-12, cfg_.capacities[s]);
      }
    }
    return *std::max_element(loads.begin(), loads.end());
  };

  // Acceptance, step 1 — hysteresis: a new placement must promise a real
  // bottleneck improvement (in the balancing weights' units), or we keep
  // the current one.
  const MigrationPlan candidate =
      plan_migration(current, out.map, profile.memory_bytes);
  out.candidate_bytes = candidate.total_bytes();
  if (!candidate.empty() &&
      normalized_max(out.map, weights) >
          normalized_max(current, weights) *
              (1.0 - cfg_.min_bottleneck_gain)) {
    out.map = current;
    out.decision = MapDecision::RejectedBottleneck;
  }

  // Acceptance, step 2 — payoff window: the improvement must also amortize
  // the migration's exposed transfer cost within the configured number of
  // iterations.  The gain is measured on the profile's *time* loads
  // (seconds even when balancing by parameters); the cost is the plan's
  // per-rank bottleneck over the actual deployment links, mirrored across
  // DP replicas and discounted by backprop overlap.
  if (out.decision == MapDecision::Accepted && !candidate.empty()) {
    out.projected_gain_s = normalized_max(current, profile.time_s) -
                           normalized_max(out.map, profile.time_s);
    const MigrationCost priced =
        candidate.exposed_cost(net_, cfg_.stage_to_rank);
    out.exposed_cost_s = priced.time_s * cfg_.migration_cost_multiplier *
                         cfg_.migration_exposed_fraction;
    if (cfg_.payoff_window_iters > 0.0 &&
        out.projected_gain_s * cfg_.payoff_window_iters <
            out.exposed_cost_s) {
      out.map = current;
      out.decision = MapDecision::RejectedPayoff;
    }
  }

  out.overhead.decide_s =
      std::chrono::duration<double>(t1 - t0).count();
  out.overhead.profile_s =
      cfg_.profile_cost_per_layer_s *
          static_cast<double>(profile.num_layers()) +
      cfg_.profile_cost_per_worker_s * static_cast<double>(S);

  out.migration =
      out.decision == MapDecision::Accepted ? candidate : MigrationPlan{};
  out.overhead.migrate_s =
      cfg_.stage_to_rank.empty()
          ? out.migration.estimated_time_s(net_)
          : out.migration.estimated_time_s(net_, cfg_.stage_to_rank);

  {
    const auto loads = out.map.stage_loads(weights);
    out.imbalance_after = load_imbalance(loads);
  }
  return out;
}

pipeline::StageMap Rebalancer::propose(
    std::span<const double> weights, const LayerProfile& profile,
    const pipeline::StageMap& current,
    std::optional<DiffusionResult>& diffusion) const {
  switch (cfg_.algorithm) {
    case Algorithm::Partition: {
      PartitionRequest req;
      req.weights.assign(weights.begin(), weights.end());
      req.memory_bytes = profile.memory_bytes;
      req.mem_capacity = cfg_.mem_capacity;
      req.num_stages = current.num_stages();
      req.capacities = cfg_.capacities;
      return PartitionBalancer{}.balance(req).map;
    }
    case Algorithm::Diffusion:
    case Algorithm::HierarchicalDiffusion: {
      DiffusionRequest req;
      req.weights.assign(weights.begin(), weights.end());
      req.memory_bytes = profile.memory_bytes;
      req.mem_capacity = cfg_.mem_capacity;
      req.gamma = cfg_.gamma;
      req.capacities = cfg_.capacities;
      if (cfg_.algorithm == Algorithm::HierarchicalDiffusion &&
          cfg_.hierarchical_decider) {
        return cfg_.hierarchical_decider(req, current);
      }
      diffusion = DiffusionBalancer{}.balance(req, current);
      return diffusion->map;
    }
  }
  return current;  // unreachable
}

RebalanceOutcome Rebalancer::rebalance_incremental(
    const LayerProfile& profile, const pipeline::StageMap& current) const {
  DYNMO_CHECK(profile.consistent(), "inconsistent profile");
  DYNMO_CHECK(profile.num_layers() == current.num_layers(),
              "profile covers " << profile.num_layers()
                                << " layers, map covers "
                                << current.num_layers());
  const int S = current.num_stages();
  const auto weights = balance_weights(profile, cfg_.by);

  // Absorb the new snapshot: only stages hosting a changed layer are
  // re-summed (a full reset when the map or capacities moved underneath
  // us — re-packs, elastic transitions, straggler capacity refreshes).
  last_touched_ = surface_.sync(current, weights, profile.time_s,
                                profile.memory_bytes, cfg_.capacities);

  RebalanceOutcome out;
  out.imbalance_before = load_imbalance(surface_.stage_loads_w());

  const auto t0 = std::chrono::steady_clock::now();
  out.map = propose(weights, profile, current, out.diffusion);
  const auto t1 = std::chrono::steady_clock::now();

  // Acceptance on the cached surface: the candidate is priced by
  // re-summing only the stages its boundary moves touch, the bottlenecks
  // are O(1) tournament-tree roots, and the migration diff scans only the
  // boundary-difference intervals.  Values are bit-identical to the
  // rescan path (see RebalanceConfig::incremental).
  SurfaceEval ev = surface_.evaluate(out.map);
  last_touched_ += ev.touched_stages;
  out.candidate_bytes = ev.plan.total_bytes();
  if (!ev.plan.empty() &&
      ev.norm_w_after >
          ev.norm_w_before * (1.0 - cfg_.min_bottleneck_gain)) {
    out.map = current;
    out.decision = MapDecision::RejectedBottleneck;
  }

  if (out.decision == MapDecision::Accepted && !ev.plan.empty()) {
    out.projected_gain_s = ev.norm_t_before - ev.norm_t_after;
    const MigrationCost priced =
        ev.plan.exposed_cost(net_, cfg_.stage_to_rank);
    out.exposed_cost_s = priced.time_s * cfg_.migration_cost_multiplier *
                         cfg_.migration_exposed_fraction;
    if (cfg_.payoff_window_iters > 0.0 &&
        out.projected_gain_s * cfg_.payoff_window_iters <
            out.exposed_cost_s) {
      out.map = current;
      out.decision = MapDecision::RejectedPayoff;
    }
  }

  out.overhead.decide_s =
      std::chrono::duration<double>(t1 - t0).count();
  out.overhead.profile_s =
      cfg_.profile_cost_per_layer_s *
          static_cast<double>(profile.num_layers()) +
      cfg_.profile_cost_per_worker_s * static_cast<double>(S);

  out.migration =
      out.decision == MapDecision::Accepted ? ev.plan : MigrationPlan{};
  out.overhead.migrate_s =
      cfg_.stage_to_rank.empty()
          ? out.migration.estimated_time_s(net_)
          : out.migration.estimated_time_s(net_, cfg_.stage_to_rank);

  if (out.decision == MapDecision::Accepted) {
    surface_.commit();
  } else {
    surface_.rollback();
  }
  out.imbalance_after = load_imbalance(surface_.stage_loads_w());
  return out;
}

}  // namespace dynmo::balance
