#include "balance/rebalancer.hpp"

#include <algorithm>
#include <chrono>

#include "core/error.hpp"
#include "core/stats.hpp"

namespace dynmo::balance {

const char* to_string(Algorithm a) {
  switch (a) {
    case Algorithm::Partition: return "partition";
    case Algorithm::Diffusion: return "diffusion";
    case Algorithm::HierarchicalDiffusion: return "hier_diffusion";
  }
  return "?";
}

RebalanceOutcome Rebalancer::rebalance(
    const LayerProfile& profile, const pipeline::StageMap& current) const {
  DYNMO_CHECK(profile.consistent(), "inconsistent profile");
  DYNMO_CHECK(profile.num_layers() == current.num_layers(),
              "profile covers " << profile.num_layers()
                                << " layers, map covers "
                                << current.num_layers());
  const int S = current.num_stages();
  const auto weights = balance_weights(profile, cfg_.by);

  RebalanceOutcome out;
  {
    const auto loads = current.stage_loads(weights);
    out.imbalance_before = load_imbalance(loads);
  }

  const auto t0 = std::chrono::steady_clock::now();
  switch (cfg_.algorithm) {
    case Algorithm::Partition: {
      PartitionRequest req;
      req.weights = weights;
      req.memory_bytes = profile.memory_bytes;
      req.mem_capacity = cfg_.mem_capacity;
      req.num_stages = S;
      out.map = PartitionBalancer{}.balance(req).map;
      break;
    }
    case Algorithm::Diffusion:
    case Algorithm::HierarchicalDiffusion: {
      DiffusionRequest req;
      req.weights = weights;
      req.memory_bytes = profile.memory_bytes;
      req.mem_capacity = cfg_.mem_capacity;
      req.gamma = cfg_.gamma;
      req.capacities = cfg_.capacities;
      if (cfg_.algorithm == Algorithm::HierarchicalDiffusion &&
          cfg_.hierarchical_decider) {
        out.map = cfg_.hierarchical_decider(req, current);
      } else {
        out.diffusion = DiffusionBalancer{}.balance(req, current);
        out.map = out.diffusion->map;
      }
      break;
    }
  }
  const auto t1 = std::chrono::steady_clock::now();

  // Hysteresis: a new placement must pay for its migrations with a real
  // bottleneck improvement, or we keep the current one.  Bottlenecks are
  // capacity-normalized so a heterogeneous deployment compares what
  // actually gates the pipeline.
  {
    auto cur_loads = current.stage_loads(weights);
    auto new_loads = out.map.stage_loads(weights);
    if (!cfg_.capacities.empty()) {
      DYNMO_CHECK(cfg_.capacities.size() == cur_loads.size(),
                  "capacity vector covers " << cfg_.capacities.size()
                                            << " stages, map has "
                                            << cur_loads.size());
      for (std::size_t s = 0; s < cur_loads.size(); ++s) {
        const double c = std::max(1e-12, cfg_.capacities[s]);
        cur_loads[s] /= c;
        new_loads[s] /= c;
      }
    }
    const double cur_max =
        *std::max_element(cur_loads.begin(), cur_loads.end());
    const double new_max =
        *std::max_element(new_loads.begin(), new_loads.end());
    if (new_max > cur_max * (1.0 - cfg_.min_bottleneck_gain)) {
      out.map = current;
    }
  }

  out.overhead.decide_s =
      std::chrono::duration<double>(t1 - t0).count();
  out.overhead.profile_s =
      cfg_.profile_cost_per_layer_s *
          static_cast<double>(profile.num_layers()) +
      cfg_.profile_cost_per_worker_s * static_cast<double>(S);

  out.migration = plan_migration(current, out.map, profile.memory_bytes);
  out.overhead.migrate_s =
      cfg_.stage_to_rank.empty()
          ? out.migration.estimated_time_s(net_)
          : out.migration.estimated_time_s(net_, cfg_.stage_to_rank);

  {
    const auto loads = out.map.stage_loads(weights);
    out.imbalance_after = load_imbalance(loads);
  }
  return out;
}

}  // namespace dynmo::balance
