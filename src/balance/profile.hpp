// Profiling snapshot: what DynMo learns from the profiling iteration that
// follows each dynamism step (paper §3.1).
//
// The balancers are black-box consumers of this struct — they see measured
// per-layer times, per-layer memory, and parameter counts, never the
// dynamism engines themselves.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/rng.hpp"

namespace dynmo::balance {

struct LayerProfile {
  std::vector<double> time_s;        ///< measured fwd+bwd seconds per layer
  std::vector<double> memory_bytes;  ///< resident bytes per layer
  std::vector<double> params;        ///< parameter counts (static fallback)

  std::size_t num_layers() const { return time_s.size(); }
  bool consistent() const {
    return time_s.size() == memory_bytes.size() &&
           time_s.size() == params.size();
  }
};

/// Which per-layer weight drives the balancing decision.  The paper
/// evaluates both; by-time consistently wins (§5.1).
enum class BalanceBy { Param, Time };

const char* to_string(BalanceBy by);

/// The weight vector a balancer should use.
std::vector<double> balance_weights(const LayerProfile& profile, BalanceBy by);

/// Apply multiplicative measurement noise (timers on real systems jitter a
/// few percent); keeps profiles strictly positive.
void add_measurement_noise(LayerProfile& profile, Rng& rng,
                           double rel_stddev = 0.02);

}  // namespace dynmo::balance
