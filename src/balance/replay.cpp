#include "balance/replay.hpp"

#include <algorithm>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace dynmo::balance {

ReplayResult replay(const ReplayedLoads& loads, const ReplayConfig& cfg,
                    const comm::CostModel& net) {
  DYNMO_CHECK(!loads.frames.empty(), "replay needs at least one frame");
  DYNMO_CHECK(loads.num_stages > 0, "replay needs the recorded stage count");
  const std::size_t L = loads.num_layers();
  DYNMO_CHECK(L >= static_cast<std::size_t>(loads.num_stages),
              "fewer layers than stages");
  for (const auto& f : loads.frames) {
    DYNMO_CHECK(f.layer_time_s.size() == L &&
                    f.layer_memory_bytes.size() == L,
                "frame " << f.iter << " layer count differs from the first "
                         << "frame (re-packed trace? replay covers the "
                         << "fixed-width balancer path only)");
  }
  DYNMO_CHECK(cfg.params.empty() || cfg.params.size() == L,
              "params vector covers " << cfg.params.size() << " layers, "
                                      << "trace has " << L);

  // Mirrors runtime::TrainingSession::run(): the DynMo arm starts from the
  // uniform map and derives its noise stream from the same seed tweak, so
  // a same-config replay consumes an identical random sequence.
  pipeline::StageMap map = pipeline::StageMap::uniform(L, loads.num_stages);
  Rng noise_rng(hash_mix(cfg.seed, 0x7e55));
  const Rebalancer rebalancer(cfg.rebalance, net);

  ReplayResult res;
  res.bottleneck_s.reserve(loads.frames.size());
  const std::vector<double> zero_params(L, 0.0);

  for (const auto& frame : loads.frames) {
    if (cfg.rebalance_interval > 0 &&
        frame.iter % cfg.rebalance_interval == 0) {
      LayerProfile profile;
      profile.time_s = frame.layer_time_s;
      profile.memory_bytes = frame.layer_memory_bytes;
      profile.params = cfg.params.empty() ? zero_params : cfg.params;
      if (cfg.measurement_noise) add_measurement_noise(profile, noise_rng);

      const auto outcome = rebalancer.rebalance(profile, map);
      map = outcome.map;
      ++res.rebalance_count;
      res.overhead += outcome.overhead;
      switch (outcome.decision) {
        case MapDecision::Accepted:
          if (!outcome.migration.empty()) ++res.maps_accepted;
          res.migration_bytes += outcome.migration.total_bytes();
          break;
        case MapDecision::RejectedBottleneck:
          ++res.maps_rejected_bottleneck;
          res.migration_bytes_avoided += outcome.candidate_bytes;
          break;
        case MapDecision::RejectedPayoff:
          ++res.maps_rejected_payoff;
          res.migration_bytes_avoided += outcome.candidate_bytes;
          break;
      }
    }

    const auto stage_s = map.stage_loads(frame.layer_time_s);
    const double bottleneck =
        *std::max_element(stage_s.begin(), stage_s.end());
    res.bottleneck_s.push_back(bottleneck);
    res.total_bottleneck_s += bottleneck;
  }
  res.final_map = map;
  return res;
}

}  // namespace dynmo::balance
