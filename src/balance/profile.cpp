#include "balance/profile.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace dynmo::balance {

const char* to_string(BalanceBy by) {
  return by == BalanceBy::Param ? "by_param" : "by_time";
}

std::vector<double> balance_weights(const LayerProfile& profile,
                                    BalanceBy by) {
  DYNMO_CHECK(profile.consistent(), "inconsistent profile");
  return by == BalanceBy::Param ? profile.params : profile.time_s;
}

void add_measurement_noise(LayerProfile& profile, Rng& rng,
                           double rel_stddev) {
  for (double& t : profile.time_s) {
    t *= std::max(0.01, 1.0 + rng.normal(0.0, rel_stddev));
  }
}

}  // namespace dynmo::balance
