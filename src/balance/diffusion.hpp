// Decentralized iterative Diffusion balancer (paper §3.3, second algorithm).
//
// Starting from the current stage map, stages repeatedly exchange boundary
// layers with their pipeline neighbors to shrink pairwise load gaps — the
// "max neighbor averaging" protocol of Lemma 2.  Convergence is tracked by
// the Lyapunov potential
//     φ(r) = Σ_{u,v} |x_u(r) − x_v(r)|
// which the lemma proves monotonically non-increasing and γ-convergent in
// O(N² log(SN/γ) log N) rounds.  This implementation runs the protocol's
// rounds centrally (each round only uses neighbor-local information, so a
// per-rank implementation exchanges the same data over the communicator —
// see balance::distributed_diffusion_round for that path).
#pragma once

#include <vector>

#include "pipeline/stage_map.hpp"

namespace dynmo::balance {

struct DiffusionRequest {
  std::vector<double> weights;       ///< per-layer load
  std::vector<double> memory_bytes;  ///< per-layer memory (may be empty)
  /// Per-stage relative capacity (compute throughput).  Empty → uniform.
  /// When set, the protocol diffuses *normalized* loads x_s = load_s / c_s
  /// (weighted diffusion with edge conductance min(c_a, c_b)), so stages
  /// converge to loads proportional to capacity — what a node of 8 GPUs
  /// vs. 4, or an H100 vs. an A100, actually wants.  φ, γ, and the
  /// bottleneck are all measured on x.
  std::vector<double> capacities;
  double mem_capacity = 0.0;         ///< per-stage cap; <=0 → unconstrained
  double gamma = 0.0;     ///< convergence threshold on φ; <=0 → 1e-3·Σx
  int max_rounds = 0;     ///< 0 → the Lemma-2 bound for this instance
};

struct DiffusionResult {
  pipeline::StageMap map;
  int rounds = 0;
  int layer_moves = 0;
  bool converged = false;
  /// Best-so-far φ after each round (φ(0) first).  Monotone non-increasing:
  /// the protocol may pass through transiently worse placements while
  /// realizing flows, but the best achievable balance only improves.
  std::vector<double> phi_history;
};

class DiffusionBalancer {
 public:
  DiffusionResult balance(const DiffusionRequest& req,
                          const pipeline::StageMap& start) const;

  /// φ(r) = Σ over *all pairs* of |x_u − x_v| (the lemma's potential).
  static double potential(std::span<const double> loads);

  /// The Lemma-2 round bound ~ 60·N²·ln(2N)·ln(S·N²/γ) for this instance.
  static int lemma2_round_bound(int num_stages, double total_load,
                                double gamma);
};

}  // namespace dynmo::balance
