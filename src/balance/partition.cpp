#include "balance/partition.hpp"

#include <algorithm>
#include <numeric>

#include "core/error.hpp"

namespace dynmo::balance {

namespace {

struct ProbeResult {
  std::vector<std::size_t> boundaries;
  bool fits_stages = false;
  bool fits_memory = true;
  double bottleneck = 0.0;
};

/// Greedy maximal packing: each stage takes layers while staying within the
/// load cap and the memory cap.  Returns whether <= num_stages were used.
/// With per-stage capacities, stage s's load budget is cap * caps[s]: for a
/// fixed stage order, filling each stage to its own budget uses the minimum
/// number of stages, so the parametric search stays exact under
/// heterogeneous speeds.
///
/// `feasibility_only`: the parametric-search loops read nothing but
/// fits_stages, and once the greedy packing has opened more than
/// num_stages stages that bit can only stay false — so the probe returns
/// the moment it overflows instead of packing the remaining layers.  The
/// feasibility answer is identical (the overflow point does not depend on
/// the skipped suffix); callers needing boundaries/bottleneck/fits_memory
/// pass false.
ProbeResult probe_maximal(std::span<const double> w,
                          std::span<const double> mem, double cap,
                          double memcap, int num_stages,
                          std::span<const double> caps,
                          bool feasibility_only = false) {
  ProbeResult r;
  r.boundaries.push_back(0);
  const auto stage_cap = [&](std::size_t s) {
    if (caps.empty()) return cap;
    return cap * caps[std::min(s, caps.size() - 1)];
  };
  double load = 0.0;
  double m = 0.0;
  double bottleneck = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    const double lw = w[i];
    const double lm = mem.empty() ? 0.0 : mem[i];
    const std::size_t stage = r.boundaries.size() - 1;
    const bool stage_empty = (r.boundaries.back() == i);
    const bool over_load = load + lw > stage_cap(stage) && !stage_empty;
    const bool over_mem = memcap > 0.0 && m + lm > memcap && !stage_empty;
    if (over_load || over_mem) {
      // About to open another stage: with this push plus the terminal one
      // the final count is at least boundaries.size()+1 > num_stages.
      if (feasibility_only &&
          static_cast<int>(r.boundaries.size()) >= num_stages) {
        r.fits_stages = false;
        return r;
      }
      bottleneck = std::max(bottleneck, load);
      r.boundaries.push_back(i);
      load = 0.0;
      m = 0.0;
    }
    if (memcap > 0.0 && lm > memcap) r.fits_memory = false;
    load += lw;
    m += lm;
  }
  bottleneck = std::max(bottleneck, load);
  r.boundaries.push_back(w.size());
  r.fits_stages =
      static_cast<int>(r.boundaries.size()) - 1 <= num_stages;
  r.bottleneck = bottleneck;
  // Pad trailing empty stages so the map always has num_stages entries.
  while (static_cast<int>(r.boundaries.size()) - 1 < num_stages) {
    r.boundaries.push_back(w.size());
  }
  return r;
}

/// Balanced greedy: aim each stage at the remaining average, never exceeding
/// `cap`; falls back to nothing if it would burst the stage budget (callers
/// then keep the maximal packing).
std::optional<std::vector<std::size_t>> probe_balanced(
    std::span<const double> w, std::span<const double> mem, double cap,
    double memcap, int num_stages, std::span<const double> caps) {
  std::vector<std::size_t> b;
  b.push_back(0);
  const double total = std::accumulate(w.begin(), w.end(), 0.0);
  const double caps_total =
      caps.empty() ? static_cast<double>(num_stages)
                   : std::accumulate(caps.begin(), caps.end(), 0.0);
  double remaining = total;
  double caps_left = caps_total;
  std::size_t i = 0;
  for (int s = 0; s < num_stages; ++s) {
    // Capacity-weighted share of the remaining load: a half-speed stage
    // aims at half the average.
    const double my_cap =
        caps.empty() ? 1.0 : caps[static_cast<std::size_t>(s)];
    const double target = remaining * my_cap / std::max(1e-12, caps_left);
    const double load_cap = caps.empty() ? cap : cap * my_cap;
    caps_left -= my_cap;
    double load = 0.0;
    double m = 0.0;
    while (i < w.size()) {
      // Leave at least zero layers for later stages; stop when the stage
      // met its target or would exceed either cap.
      const double lw = w[i];
      const double lm = mem.empty() ? 0.0 : mem[i];
      const bool stage_empty = (b.back() == i);
      if (!stage_empty) {
        if (load + lw > load_cap) break;
        if (memcap > 0.0 && m + lm > memcap) break;
        // Past the target and adding would overshoot more than stopping.
        if (load >= target ||
            std::abs(load + lw - target) > std::abs(load - target)) {
          break;
        }
      }
      load += lw;
      m += lm;
      ++i;
    }
    remaining -= load;
    b.push_back(i);
  }
  if (i != w.size()) return std::nullopt;  // layers left over: infeasible
  return b;
}

}  // namespace

double PartitionBalancer::optimal_bottleneck(std::span<const double> weights,
                                             int num_stages) {
  DYNMO_CHECK(num_stages > 0, "need stages");
  if (weights.empty()) return 0.0;
  std::vector<double> empty_mem;
  double lo = *std::max_element(weights.begin(), weights.end());
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  lo = std::max(lo, total / num_stages);
  double hi = total;
  for (int it = 0; it < 100 && hi - lo > 1e-12 * std::max(1.0, hi); ++it) {
    const double mid = 0.5 * (lo + hi);
    if (probe_maximal(weights, empty_mem, mid, 0.0, num_stages, {},
                      /*feasibility_only=*/true)
            .fits_stages) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

PartitionResult PartitionBalancer::balance(const PartitionRequest& req) const {
  DYNMO_CHECK(req.num_stages > 0, "need at least one stage");
  DYNMO_CHECK(!req.weights.empty(), "no layers to balance");
  DYNMO_CHECK(req.memory_bytes.empty() ||
                  req.memory_bytes.size() == req.weights.size(),
              "memory vector size mismatch");
  DYNMO_CHECK(req.capacities.empty() ||
                  req.capacities.size() ==
                      static_cast<std::size_t>(req.num_stages),
              "capacity vector covers " << req.capacities.size()
                                        << " stages, request has "
                                        << req.num_stages);
  for (const double c : req.capacities) {
    DYNMO_CHECK(c > 0.0, "stage capacities must be > 0");
  }

  const std::span<const double> w(req.weights);
  const std::span<const double> mem(req.memory_bytes);
  const std::span<const double> caps(req.capacities);

  const double total = std::accumulate(w.begin(), w.end(), 0.0);
  double max_cap = 1.0;
  double min_cap = 1.0;
  double cap_sum = static_cast<double>(req.num_stages);
  if (!caps.empty()) {
    max_cap = *std::max_element(caps.begin(), caps.end());
    min_cap = *std::min_element(caps.begin(), caps.end());
    cap_sum = std::accumulate(caps.begin(), caps.end(), 0.0);
  }
  // Bounds on the normalized bottleneck: the heaviest layer must land
  // somewhere (best case the fastest stage); total work over total
  // capacity; everything fits the first stage at hi.
  double lo = *std::max_element(w.begin(), w.end()) / max_cap;
  lo = std::max(lo, total / cap_sum);
  double hi = total / min_cap;

  // Parametric search over the bottleneck value.  The memory constraint can
  // make low caps infeasible even when pure-load packing would fit, so the
  // probe enforces both.
  bool any_feasible =
      probe_maximal(w, mem, hi, req.mem_capacity, req.num_stages, caps,
                    /*feasibility_only=*/true)
          .fits_stages;
  if (!any_feasible) {
    // Memory alone forces more than num_stages stages — report least-bad.
    auto r = probe_maximal(w, mem, hi, req.mem_capacity, req.num_stages, caps);
    r.boundaries.resize(static_cast<std::size_t>(req.num_stages));
    r.boundaries.push_back(w.size());
    PartitionResult out;
    out.map = pipeline::StageMap::from_boundaries(std::move(r.boundaries));
    out.memory_feasible = false;
    const auto loads = out.map.stage_loads(w);
    out.bottleneck = *std::max_element(loads.begin(), loads.end());
    return out;
  }

  for (int it = 0; it < 100 && hi - lo > 1e-12 * std::max(1.0, hi); ++it) {
    const double mid = 0.5 * (lo + hi);
    if (probe_maximal(w, mem, mid, req.mem_capacity, req.num_stages, caps,
                      /*feasibility_only=*/true)
            .fits_stages) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  // Tiny slack so float round-off cannot flip the final probe infeasible.
  const double cap = hi * (1.0 + 1e-9);

  auto final_probe = probe_maximal(w, mem, cap, req.mem_capacity,
                                   req.num_stages, caps);
  DYNMO_CHECK(final_probe.fits_stages, "final probe must fit");

  // Prefer the balanced variant when it matches the optimal bottleneck —
  // it avoids front-loaded stages with empty tails.
  std::vector<std::size_t> boundaries = final_probe.boundaries;
  if (auto balanced = probe_balanced(w, mem, cap, req.mem_capacity,
                                     req.num_stages, caps)) {
    boundaries = std::move(*balanced);
  }

  PartitionResult out;
  out.map = pipeline::StageMap::from_boundaries(std::move(boundaries));
  out.memory_feasible = final_probe.fits_memory;
  const auto loads = out.map.stage_loads(w);
  out.bottleneck = *std::max_element(loads.begin(), loads.end());
  return out;
}

}  // namespace dynmo::balance
