#include "balance/incremental.hpp"

#include <algorithm>
#include <limits>

#include "core/error.hpp"

namespace dynmo::balance {

// ------------------------------------------------------------- MaxTree

void MaxTree::reset(std::span<const double> values) {
  n_ = values.size();
  cap_ = 1;
  while (cap_ < std::max<std::size_t>(n_, 1)) cap_ <<= 1;
  val_.assign(2 * cap_, -std::numeric_limits<double>::infinity());
  idx_.assign(2 * cap_, 0);
  for (std::size_t i = 0; i < cap_; ++i) {
    if (i < n_) val_[cap_ + i] = values[i];
    idx_[cap_ + i] = static_cast<std::uint32_t>(i);
  }
  for (std::size_t node = cap_ - 1; node >= 1; --node) pull(node);
}

void MaxTree::pull(std::size_t node) {
  const std::size_t l = 2 * node;
  const std::size_t r = 2 * node + 1;
  // Left wins ties → the root's argmax is the *first* maximal leaf, the
  // element std::max_element returns.
  if (val_[r] > val_[l]) {
    val_[node] = val_[r];
    idx_[node] = idx_[r];
  } else {
    val_[node] = val_[l];
    idx_[node] = idx_[l];
  }
}

void MaxTree::set(std::size_t i, double v) {
  DYNMO_CHECK(i < n_, "MaxTree index " << i << " out of range " << n_);
  std::size_t node = cap_ + i;
  val_[node] = v;
  for (node /= 2; node >= 1; node /= 2) pull(node);
}

double MaxTree::get(std::size_t i) const {
  DYNMO_CHECK(i < n_, "MaxTree index " << i << " out of range " << n_);
  return val_[cap_ + i];
}

double MaxTree::max_value() const {
  DYNMO_CHECK(n_ > 0, "max of empty MaxTree");
  return val_[1];
}

std::size_t MaxTree::argmax() const {
  DYNMO_CHECK(n_ > 0, "argmax of empty MaxTree");
  return idx_[1];
}

std::size_t MaxTree::memory_bytes() const {
  return val_.capacity() * sizeof(double) +
         idx_.capacity() * sizeof(std::uint32_t);
}

double MaxTree::max_value_full_rescan() const {
  DYNMO_CHECK(n_ > 0, "max of empty MaxTree");
  return *std::max_element(val_.begin() + static_cast<std::ptrdiff_t>(cap_),
                           val_.begin() +
                               static_cast<std::ptrdiff_t>(cap_ + n_));
}

std::size_t MaxTree::argmax_full_rescan() const {
  DYNMO_CHECK(n_ > 0, "argmax of empty MaxTree");
  const auto first = val_.begin() + static_cast<std::ptrdiff_t>(cap_);
  return static_cast<std::size_t>(
      std::max_element(first,
                       val_.begin() + static_cast<std::ptrdiff_t>(cap_ + n_)) -
      first);
}

// --------------------------------------------------------- CostSurface

double CostSurface::norm_w(std::size_t s) const {
  if (caps_.empty()) return sum_w_[s];
  return sum_w_[s] / std::max(1e-12, caps_[s]);
}

double CostSurface::norm_t(std::size_t s) const {
  if (caps_.empty()) return sum_t_[s];
  return sum_t_[s] / std::max(1e-12, caps_[s]);
}

void CostSurface::recompute_stage(std::size_t s,
                                  const std::vector<std::size_t>& b) {
  double acc_w = 0.0;
  double acc_t = 0.0;
  for (std::size_t l = b[s]; l < b[s + 1]; ++l) {
    acc_w += w_[l];
    acc_t += t_[l];
  }
  sum_w_[s] = acc_w;
  sum_t_[s] = acc_t;
  tree_w_.set(s, norm_w(s));
  tree_t_.set(s, norm_t(s));
}

void CostSurface::reset(const pipeline::StageMap& map,
                        std::span<const double> weights,
                        std::span<const double> time_s,
                        std::span<const double> mem_bytes,
                        std::span<const double> capacities) {
  DYNMO_CHECK(map.num_stages() > 0, "CostSurface needs a non-empty map");
  DYNMO_CHECK(weights.size() == map.num_layers() &&
                  time_s.size() == map.num_layers() &&
                  mem_bytes.size() == map.num_layers(),
              "per-layer vectors must cover the map's layers");
  DYNMO_CHECK(capacities.empty() ||
                  capacities.size() ==
                      static_cast<std::size_t>(map.num_stages()),
              "capacity vector covers " << capacities.size()
                                        << " stages, map has "
                                        << map.num_stages());
  overlay_ = false;
  undo_.clear();
  map_ = map;
  w_.assign(weights.begin(), weights.end());
  t_.assign(time_s.begin(), time_s.end());
  m_.assign(mem_bytes.begin(), mem_bytes.end());
  caps_.assign(capacities.begin(), capacities.end());
  // Same left-to-right per-stage summation as StageMap::stage_loads.
  sum_w_ = map_.stage_loads(w_);
  sum_t_ = map_.stage_loads(t_);
  const std::size_t S = sum_w_.size();
  std::vector<double> nw(S), nt(S);
  for (std::size_t s = 0; s < S; ++s) {
    nw[s] = norm_w(s);
    nt[s] = norm_t(s);
  }
  tree_w_.reset(nw);
  tree_t_.reset(nt);
}

std::size_t CostSurface::sync(const pipeline::StageMap& map,
                              std::span<const double> weights,
                              std::span<const double> time_s,
                              std::span<const double> mem_bytes,
                              std::span<const double> capacities) {
  DYNMO_CHECK(!overlay_, "sync() with an uncommitted candidate overlay");
  const bool shape_changed =
      !ready() || !(map_ == map) || w_.size() != weights.size() ||
      caps_.size() != capacities.size() ||
      !std::equal(caps_.begin(), caps_.end(), capacities.begin());
  if (shape_changed) {
    reset(map, weights, time_s, mem_bytes, capacities);
    return static_cast<std::size_t>(map_.num_stages());
  }
  // Same map and capacities: diff the per-layer inputs and re-sum only the
  // stages hosting a changed layer.
  std::vector<bool> touched(static_cast<std::size_t>(map_.num_stages()),
                            false);
  bool any = false;
  for (std::size_t l = 0; l < w_.size(); ++l) {
    if (w_[l] != weights[l] || t_[l] != time_s[l] || m_[l] != mem_bytes[l]) {
      w_[l] = weights[l];
      t_[l] = time_s[l];
      m_[l] = mem_bytes[l];
      touched[static_cast<std::size_t>(map_.stage_of(l))] = true;
      any = true;
    }
  }
  if (!any) return 0;
  std::size_t count = 0;
  const auto& b = map_.boundaries();
  for (std::size_t s = 0; s < touched.size(); ++s) {
    if (!touched[s]) continue;
    recompute_stage(s, b);
    ++count;
  }
  return count;
}

void CostSurface::set_layer(std::size_t layer, double weight, double time_s,
                            double mem_bytes) {
  DYNMO_CHECK(!overlay_, "set_layer() with an uncommitted candidate overlay");
  DYNMO_CHECK(layer < w_.size(), "layer " << layer << " out of range");
  w_[layer] = weight;
  t_[layer] = time_s;
  m_[layer] = mem_bytes;
  recompute_stage(static_cast<std::size_t>(map_.stage_of(layer)),
                  map_.boundaries());
}

double CostSurface::bottleneck_w_full_rescan() const {
  auto loads = map_.stage_loads(w_);
  if (!caps_.empty()) {
    for (std::size_t s = 0; s < loads.size(); ++s) {
      loads[s] /= std::max(1e-12, caps_[s]);
    }
  }
  return *std::max_element(loads.begin(), loads.end());
}

double CostSurface::bottleneck_t_full_rescan() const {
  auto loads = map_.stage_loads(t_);
  if (!caps_.empty()) {
    for (std::size_t s = 0; s < loads.size(); ++s) {
      loads[s] /= std::max(1e-12, caps_[s]);
    }
  }
  return *std::max_element(loads.begin(), loads.end());
}

SurfaceEval CostSurface::evaluate(const pipeline::StageMap& candidate) {
  DYNMO_CHECK(!overlay_, "evaluate() with an uncommitted candidate overlay");
  DYNMO_CHECK(candidate.num_layers() == map_.num_layers(),
              "candidate covers " << candidate.num_layers()
                                  << " layers, surface has "
                                  << map_.num_layers());
  DYNMO_CHECK(candidate.num_stages() == map_.num_stages(),
              "candidate has " << candidate.num_stages()
                               << " stages, surface has "
                               << map_.num_stages());
  SurfaceEval ev;
  ev.norm_w_before = tree_w_.max_value();
  ev.norm_t_before = tree_t_.max_value();
  ev.plan = plan_migration(map_, candidate, m_);

  const auto& bb = map_.boundaries();
  const auto& ab = candidate.boundaries();
  undo_.clear();
  for (std::size_t s = 0; s + 1 < ab.size(); ++s) {
    if (bb[s] == ab[s] && bb[s + 1] == ab[s + 1]) continue;
    undo_.push_back(Undo{s, sum_w_[s], sum_t_[s]});
    recompute_stage(s, ab);
  }
  ev.touched_stages = undo_.size();
  ev.norm_w_after = tree_w_.max_value();
  ev.norm_t_after = tree_t_.max_value();
  cand_ = candidate;
  overlay_ = true;
  return ev;
}

SurfaceEval CostSurface::evaluate_full_rescan(
    const pipeline::StageMap& candidate) const {
  SurfaceEval ev;
  const auto normalized_max = [&](const pipeline::StageMap& m,
                                  std::span<const double> per_layer) {
    auto loads = m.stage_loads(per_layer);
    if (!caps_.empty()) {
      DYNMO_CHECK(caps_.size() == loads.size(),
                  "capacity vector covers " << caps_.size()
                                            << " stages, map has "
                                            << loads.size());
      for (std::size_t s = 0; s < loads.size(); ++s) {
        loads[s] /= std::max(1e-12, caps_[s]);
      }
    }
    return *std::max_element(loads.begin(), loads.end());
  };
  ev.norm_w_before = normalized_max(map_, w_);
  ev.norm_t_before = normalized_max(map_, t_);
  ev.norm_w_after = normalized_max(candidate, w_);
  ev.norm_t_after = normalized_max(candidate, t_);
  ev.plan = plan_migration_full_rescan(map_, candidate, m_);
  ev.touched_stages = static_cast<std::size_t>(map_.num_stages());
  return ev;
}

void CostSurface::commit() {
  DYNMO_CHECK(overlay_, "commit() without a pending candidate");
  map_ = cand_;
  overlay_ = false;
  undo_.clear();
}

void CostSurface::rollback() {
  DYNMO_CHECK(overlay_, "rollback() without a pending candidate");
  for (auto it = undo_.rbegin(); it != undo_.rend(); ++it) {
    sum_w_[it->stage] = it->sum_w;
    sum_t_[it->stage] = it->sum_t;
    tree_w_.set(it->stage, norm_w(it->stage));
    tree_t_.set(it->stage, norm_t(it->stage));
  }
  overlay_ = false;
  undo_.clear();
}

std::size_t CostSurface::memory_bytes() const {
  const auto vec = [](const std::vector<double>& v) {
    return v.capacity() * sizeof(double);
  };
  return vec(w_) + vec(t_) + vec(m_) + vec(caps_) + vec(sum_w_) +
         vec(sum_t_) +
         map_.boundaries().capacity() * sizeof(std::size_t) +
         tree_w_.memory_bytes() + tree_t_.memory_bytes();
}

}  // namespace dynmo::balance
