// Declarative fault plans (docs/FAULT.md).
//
// A FaultPlan is pure data: which workers die when (explicitly or drawn
// from an MTBF), which GPUs run persistently slow from some iteration on,
// and which suffer transient slowdown windows.  The plan is interpreted by
// fault::Injector, which resolves every random choice deterministically
// from a forked Rng substream — the same plan + seed always produces the
// same event schedule, in both the simulated session and the threaded
// runtime.
#pragma once

#include <cstdint>
#include <vector>

namespace dynmo::fault {

/// Kill worker `worker` at the start of iteration `iter`.  worker == -1
/// lets the injector draw the victim deterministically from its forked
/// stream (never rank 0 — the coordinator is modeled as reliable, matching
/// the threaded runtime's rank-0 checkpoint assembly).
struct WorkerLoss {
  int iter = 0;
  int worker = -1;
};

/// Persistent straggler: from `from_iter` on, worker `worker` computes at
/// `multiplier` of its healthy speed (0 < multiplier <= 1).  If
/// `until_iter` >= 0 the GPU recovers at that iteration — the classic
/// straggler-vs-rebalance race the payoff rule must not thrash on.
struct Straggler {
  int worker = 0;
  double multiplier = 0.5;
  int from_iter = 0;
  int until_iter = -1;  ///< exclusive; -1 → never recovers
};

/// Transient slowdown window — sugar for a straggler that recovers.
struct Slowdown {
  int worker = 0;
  double multiplier = 0.5;
  int from_iter = 0;
  int until_iter = 0;  ///< exclusive
};

/// A complete seeded fault scenario.  Default-constructed plans are empty
/// (empty() == true) and cost nothing: the runtimes skip the injector
/// entirely.
struct FaultPlan {
  /// Explicit worker-loss events (in addition to any MTBF draws).
  std::vector<WorkerLoss> losses;
  /// Mean iterations between failures.  > 0 draws loss iterations from an
  /// exponential inter-arrival process on the injector's forked stream;
  /// victims are drawn uniformly from the live non-zero ranks.
  double mtbf_iters = 0.0;
  /// Upper bound on MTBF-drawn losses (explicit losses not counted).
  int max_mtbf_losses = 4;
  /// Horizon for MTBF draws; draws beyond it are discarded.  <= 0 → the
  /// runtime substitutes its own run length (session iterations, threaded
  /// plan length) before constructing the injector.
  int horizon_iters = 0;
  std::vector<Straggler> stragglers;
  std::vector<Slowdown> slowdowns;
  /// Rng::fork() stream id for the injector — distinct plans sharing a
  /// session seed draw from independent substreams.
  std::uint64_t stream_id = 0xfa17ULL;

  bool empty() const {
    return losses.empty() && stragglers.empty() && slowdowns.empty() &&
           !(mtbf_iters > 0.0);
  }
};

}  // namespace dynmo::fault
