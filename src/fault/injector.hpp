// Deterministic fault injection (docs/FAULT.md).
//
// The Injector compiles a FaultPlan into a concrete, fully-resolved event
// schedule at construction time: MTBF inter-arrival draws and random
// victim picks all happen up front on an Rng::fork()'d substream, so the
// schedule is a pure function of (plan, seed, worker count) — polling
// order, caller iteration stride, and every other runtime detail cannot
// perturb it.  Both runtimes interpret the same schedule: the simulated
// session prices the events, the threaded runtime physically kills and
// slows workers and must recover bit-identically.
#pragma once

#include <cstddef>
#include <vector>

#include "core/rng.hpp"
#include "fault/plan.hpp"

namespace dynmo::fault {

enum class EventKind { WorkerLoss, StragglerOnset, StragglerRecovery };

inline const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::WorkerLoss: return "worker_loss";
    case EventKind::StragglerOnset: return "straggler_onset";
    case EventKind::StragglerRecovery: return "straggler_recovery";
  }
  return "?";
}

/// A resolved fault event.  `worker` is the victim rank; for a loss drawn
/// with worker == -1 it is the pre-drawn *candidate* index — poll()
/// resolves it against the caller's live mask (first alive non-zero rank
/// scanning upward with wraparound) so every observer that agrees on the
/// alive set agrees on the victim.
struct Event {
  int iter = 0;
  EventKind kind = EventKind::WorkerLoss;
  int worker = -1;
  double multiplier = 1.0;  ///< straggler events only; 1.0 for losses
};

class Injector {
 public:
  /// `workers` is the job's initial worker count — the victim-draw domain
  /// [1, workers) and the bound for straggler worker ids.  `session_rng`
  /// is forked (never advanced): the injector draws from the substream
  /// addressed by plan.stream_id.
  Injector(const FaultPlan& plan, int workers, const Rng& session_rng);

  /// Fire every not-yet-fired event scheduled at or before `iter`, in
  /// schedule order.  `alive[w]` is the caller's live-worker mask; events
  /// targeting a dead (or out-of-range) worker are dropped, and losses
  /// with a drawn victim resolve against the mask.  Rank 0 is never a
  /// resolved loss victim.
  std::vector<Event> poll(int iter, const std::vector<bool>& alive);

  /// Compute-speed multiplier for `worker` during iteration `iter`: the
  /// product of every straggler/slowdown window covering it (1.0 =
  /// healthy).  Pure function of the plan, independent of poll() state.
  double multiplier(int worker, int iter) const;

  /// True when the plan contains any straggler/slowdown window at all —
  /// lets hot paths skip per-iteration multiplier scans.
  bool any_degradation() const { return !windows_.empty(); }

  /// The fully-resolved schedule (losses with worker == -1 appear with
  /// their pre-drawn candidate index).
  const std::vector<Event>& schedule() const { return schedule_; }

 private:
  struct Window {
    int worker = 0;
    double mult = 1.0;
    int from = 0;
    int until = -1;  ///< exclusive; -1 → open-ended
  };

  std::vector<Event> schedule_;  ///< sorted by iter (stable)
  std::vector<Window> windows_;
  std::size_t next_ = 0;  ///< first unfired schedule entry
};

}  // namespace dynmo::fault
