#include "fault/injector.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace dynmo::fault {

Injector::Injector(const FaultPlan& plan, int workers, const Rng& session_rng) {
  DYNMO_CHECK(workers >= 1, "fault::Injector: need at least one worker");
  Rng rng = session_rng.fork(plan.stream_id);

  // Explicit losses first, then MTBF draws; victims for worker == -1 are
  // pre-drawn here so the schedule is fixed before the first poll().
  for (const WorkerLoss& l : plan.losses) {
    DYNMO_CHECK(l.iter >= 0, "fault: loss iteration must be >= 0");
    DYNMO_CHECK(l.worker < workers, "fault: loss worker out of range");
    DYNMO_CHECK(l.worker != 0, "fault: rank 0 is modeled as reliable");
    Event e;
    e.iter = l.iter;
    e.kind = EventKind::WorkerLoss;
    e.worker = l.worker;  // may be -1: resolved below
    if (e.worker < 0 && workers > 1) {
      e.worker = 1 + static_cast<int>(
                         rng.uniform_int(static_cast<std::uint64_t>(workers - 1)));
    }
    if (e.worker >= 1) schedule_.push_back(e);
  }
  if (plan.mtbf_iters > 0.0 && plan.horizon_iters > 0 && workers > 1) {
    double t = 0.0;
    int drawn = 0;
    while (drawn < plan.max_mtbf_losses) {
      // Exponential inter-arrival with mean mtbf_iters.
      const double u = rng.uniform();
      t += -plan.mtbf_iters * std::log1p(-u);
      const int iter = static_cast<int>(std::ceil(t));
      if (iter >= plan.horizon_iters) break;
      Event e;
      e.iter = std::max(1, iter);
      e.kind = EventKind::WorkerLoss;
      e.worker = 1 + static_cast<int>(
                         rng.uniform_int(static_cast<std::uint64_t>(workers - 1)));
      schedule_.push_back(e);
      ++drawn;
    }
  }

  auto add_window = [&](int worker, double mult, int from, int until,
                        const char* what) {
    DYNMO_CHECK(worker >= 0 && worker < workers,
                "fault: straggler worker out of range");
    DYNMO_CHECK(mult > 0.0 && mult <= 1.0,
                "fault: multiplier must be in (0, 1]");
    DYNMO_CHECK(from >= 0, what);
    windows_.push_back(Window{worker, mult, from, until});
    Event on;
    on.iter = from;
    on.kind = EventKind::StragglerOnset;
    on.worker = worker;
    on.multiplier = mult;
    schedule_.push_back(on);
    if (until >= 0) {
      DYNMO_CHECK(until > from, "fault: empty straggler window");
      Event off;
      off.iter = until;
      off.kind = EventKind::StragglerRecovery;
      off.worker = worker;
      off.multiplier = 1.0;
      schedule_.push_back(off);
    }
  };
  for (const Straggler& s : plan.stragglers)
    add_window(s.worker, s.multiplier, s.from_iter, s.until_iter,
               "fault: straggler from_iter must be >= 0");
  for (const Slowdown& s : plan.slowdowns)
    add_window(s.worker, s.multiplier, s.from_iter, s.until_iter,
               "fault: slowdown from_iter must be >= 0");

  std::stable_sort(schedule_.begin(), schedule_.end(),
                   [](const Event& a, const Event& b) { return a.iter < b.iter; });
}

std::vector<Event> Injector::poll(int iter, const std::vector<bool>& alive) {
  std::vector<Event> fired;
  while (next_ < schedule_.size() && schedule_[next_].iter <= iter) {
    Event e = schedule_[next_++];
    const int n = static_cast<int>(alive.size());
    if (e.kind == EventKind::WorkerLoss) {
      // Resolve the pre-drawn candidate against the live mask: first alive
      // non-zero rank scanning upward from the candidate, wrapping.  Any
      // observer that agrees on `alive` agrees on the victim.
      int victim = -1;
      if (n > 1 && e.worker >= 1) {
        for (int probe = 0; probe < n - 1; ++probe) {
          const int w = 1 + (e.worker - 1 + probe) % (n - 1);
          if (w < n && alive[static_cast<std::size_t>(w)]) {
            victim = w;
            break;
          }
        }
      }
      if (victim < 0) continue;  // nobody left to kill (besides rank 0)
      e.worker = victim;
      fired.push_back(e);
    } else {
      if (e.worker < 0 || e.worker >= n ||
          !alive[static_cast<std::size_t>(e.worker)])
        continue;  // straggler on a dead/absent worker: moot
      fired.push_back(e);
    }
  }
  return fired;
}

double Injector::multiplier(int worker, int iter) const {
  double m = 1.0;
  for (const Window& w : windows_) {
    if (w.worker != worker) continue;
    if (iter < w.from) continue;
    if (w.until >= 0 && iter >= w.until) continue;
    m *= w.mult;
  }
  return m;
}

}  // namespace dynmo::fault
