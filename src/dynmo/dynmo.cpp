#include "dynmo/dynmo.hpp"

#include "core/error.hpp"

namespace dynmo {

const char* to_string(UseCase c) {
  switch (c) {
    case UseCase::Static: return "static";
    case UseCase::Moe: return "moe";
    case UseCase::GradualPruning: return "gradual_pruning";
    case UseCase::LayerFreezing: return "layer_freezing";
    case UseCase::SparseAttention: return "sparse_attention";
    case UseCase::EarlyExit: return "early_exit";
    case UseCase::MixtureOfDepths: return "mixture_of_depths";
  }
  return "?";
}

std::unique_ptr<dynamic::DynamismEngine> make_engine(
    UseCase use_case, const model::ModelDesc& model, const Options& opt) {
  switch (use_case) {
    case UseCase::Static:
      return nullptr;
    case UseCase::Moe: {
      auto cfg = opt.moe;
      cfg.num_microbatches = opt.session.num_microbatches;
      return std::make_unique<dynamic::MoeEngine>(model, cfg);
    }
    case UseCase::GradualPruning:
      return std::make_unique<dynamic::PruningEngine>(model, opt.pruning);
    case UseCase::LayerFreezing:
      return std::make_unique<dynamic::FreezingEngine>(model, opt.freezing);
    case UseCase::SparseAttention:
      return std::make_unique<dynamic::SparseAttnEngine>(model,
                                                         opt.sparse_attn);
    case UseCase::EarlyExit:
      return std::make_unique<dynamic::EarlyExitEngine>(model,
                                                        opt.early_exit);
    case UseCase::MixtureOfDepths:
      return std::make_unique<dynamic::ModEngine>(model, opt.mod);
  }
  return nullptr;
}

Session::Session(model::ModelDesc model, UseCase use_case, Options opt)
    : model_(std::move(model)), use_case_(use_case), opt_(std::move(opt)) {
  engine_ = make_engine(use_case_, model_, opt_);
}

runtime::SessionResult Session::run() {
  runtime::TrainingSession session(model_, opt_.session, engine_.get());
  return session.run();
}

}  // namespace dynmo
