// DynMo public API facade.
//
// One-stop entry point: pick a model, a dynamism use-case, and (optionally)
// override the out-of-the-box defaults — DynMo runs the full train →
// dynamism → profile → balance → re-pack loop and reports throughput,
// idleness, overheads, and GPU usage.
//
//   dynmo::Options opt;
//   opt.pipeline_stages = 8;
//   auto model = dynmo::model::make_gpt({.num_blocks = 24});
//   dynmo::Session session(model, dynmo::UseCase::EarlyExit, opt);
//   auto result = session.run();
//
// Multi-node clusters: describe where the training run lives with a
// cluster::Deployment — a Topology (presets: Topology::make_dgx_h100(n),
// make_dgx_a100(n), make_hetero(nodes, inter)) bound to a placement and,
// through the topology's nodes, a per-rank hw::GpuSpec:
//
//   auto dep = cluster::Deployment::make_topology_aware(
//       cluster::Topology::make_dgx_h100(2), /*num_stages=*/16);
//   opt.session.deployment = dep;
//   opt.session.algorithm = balance::Algorithm::HierarchicalDiffusion;
//
// Hybrid data + pipeline parallelism spans the full DP×PP grid; the
// orientation decides whether a node's NVLink clique carries the gradient
// allreduce (DpInner) or the activation flow (PpInner):
//
//   opt.session.data_parallel = 4;
//   opt.session.deployment = cluster::Deployment::make_grid_topology_aware(
//       cluster::Topology::make_dgx_h100(2), /*data_parallel=*/4,
//       /*num_stages=*/4, cluster::GridOrientation::DpInner);
//
// Every cost surface then consumes the deployment: boundary activation
// sends and layer migrations are priced by the links the hosting ranks
// actually share (migrations mirrored across all DP replicas), each
// stage's compute by its own GPU (heterogeneous mixes via Deployment::gpu
// / capacity-weighted diffusion), collectives by the hierarchical
// node-grouped formulas (Deployment::group), the gradient allreduce by
// each stage's actual DP peer group (Deployment::dp_group), and
// re-packing prefers vacating whole nodes.
// Algorithm::HierarchicalDiffusion runs cluster::HierarchicalBalancer
// inside the session loop (intra-node moves first, inter-node only when
// node totals are out of balance) —
// SessionResult::inter_node_migration_bytes shows the fabric traffic it
// saves over flat Diffusion, and
// SessionResult::{intra,inter}_node_dp_bytes where the gradient exchange
// ran.
//
// Payoff-window acceptance (docs/COST_MODEL.md): with
// opt.session.payoff_window_iters = W, every candidate map — from any
// balancer, and every re-pack — must recoup its exposed migration cost
// within W iterations of projected bottleneck gain, or it is rejected;
// SessionResult::{maps_accepted, maps_rejected_bottleneck,
// maps_rejected_payoff, migration_bytes_avoided} report the decisions.
//
// Everything the facade does is available piecemeal through the subsystem
// headers (balance/, dynamic/, pipeline/, repack/, runtime/) for users who
// need custom engines or schedules.
#pragma once

#include <memory>

#include "cluster/deployment.hpp"
#include "cluster/hier_balancer.hpp"
#include "cluster/placement.hpp"
#include "cluster/topology.hpp"
#include "dynamic/dynamism.hpp"
#include "dynamic/early_exit.hpp"
#include "dynamic/freezing.hpp"
#include "dynamic/mod.hpp"
#include "dynamic/moe.hpp"
#include "dynamic/pruning.hpp"
#include "dynamic/sparse_attn.hpp"
#include "model/layer.hpp"
#include "runtime/session.hpp"

namespace dynmo {

/// The six dynamic-model scenarios of the paper, plus a static control.
enum class UseCase {
  Static,
  Moe,
  GradualPruning,
  LayerFreezing,
  SparseAttention,
  EarlyExit,
  MixtureOfDepths,
};

const char* to_string(UseCase c);

struct Options {
  runtime::SessionConfig session{};

  // Per-use-case engine knobs; defaults follow the paper's setups.
  dynamic::MoeEngineConfig moe{};
  dynamic::PruningEngineConfig pruning{};
  dynamic::FreezingEngineConfig freezing{};
  dynamic::SparseAttnEngineConfig sparse_attn{};
  dynamic::EarlyExitEngineConfig early_exit{};
  dynamic::ModEngineConfig mod{};
};

/// Build the dynamism engine for a use case (nullptr for Static).
std::unique_ptr<dynamic::DynamismEngine> make_engine(
    UseCase use_case, const model::ModelDesc& model, const Options& opt);

/// Facade over runtime::TrainingSession with engine lifetime management.
class Session {
 public:
  Session(model::ModelDesc model, UseCase use_case, Options opt = {});

  runtime::SessionResult run();

  const model::ModelDesc& model() const { return model_; }
  UseCase use_case() const { return use_case_; }
  Options& options() { return opt_; }

 private:
  model::ModelDesc model_;
  UseCase use_case_;
  Options opt_;
  std::unique_ptr<dynamic::DynamismEngine> engine_;
};

}  // namespace dynmo
