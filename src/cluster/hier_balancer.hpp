// Two-level diffusion balancing over a hierarchical topology.
//
// Flat diffusion treats the pipeline as one path and happily ships layers
// across node boundaries to fix an imbalance that lives entirely inside a
// node — paying InfiniBand prices for an NVLink problem.  The hierarchical
// balancer exploits the topology: level 1 runs balance::DiffusionBalancer
// *within* each node's run of stages (NVLink-priced moves only); level 2
// runs the same protocol across node aggregates — one super-stage per
// node, capacity-weighted by the node's GPU throughput — and is entered
// only when intra-node rebalancing cannot close the remaining gap.  After
// a node-level shift, each node's new layer range is re-split and polished
// by another intra pass.
//
// The invariant consumed and produced is the usual contiguous StageMap;
// stage s runs on rank stage_to_rank[s] (identity by default), and the
// stages mapped to one node must be contiguous — which is exactly what
// cluster::place_* placements produce.
#pragma once

#include <span>
#include <vector>

#include "balance/diffusion.hpp"
#include "balance/migration.hpp"
#include "cluster/topology.hpp"
#include "pipeline/stage_map.hpp"

namespace dynmo::cluster {

struct HierConfig {
  /// Enter the inter-node level only when the imbalance of the
  /// capacity-normalized *node totals* — the gap intra-node moves cannot
  /// close by construction — exceeds this ((max−min)/mean, Eq. 2).
  double inter_node_trigger = 0.05;
  /// Adopt the inter-node result only when it improves the
  /// capacity-normalized bottleneck over the intra-only map by at least
  /// this fraction.  Inter-node moves ride the fabric, so they must pay
  /// for themselves; without this guard an every-iteration cadence chases
  /// node-total noise across InfiniBand (churn flat diffusion's local
  /// moves never exhibit).
  double inter_node_gain = 0.05;
  /// Normalize stage loads by each rank's GPU throughput (heterogeneous
  /// clusters); request-supplied capacities override this.
  bool capacity_aware = true;
  /// Payoff-window acceptance for the inter-node level: adopt the level-2
  /// map only when its capacity-normalized bottleneck gain over the
  /// intra-only map, times this many iterations, covers the *extra*
  /// exposed transfer cost the inter map pays over the topology's links.
  /// The gain is in the units of req.weights, so this is meaningful when
  /// the balancer runs on time loads (seconds) — runtime::TrainingSession
  /// wires it only for BalanceBy::Time.  <= 0 → relative-gain check only.
  double payoff_window_iters = 0.0;
  /// Multiplies the priced inter-node migration cost; fold in every
  /// multiplicative factor on what a move really costs — DP replicas
  /// mirroring it, and any backprop-overlap discount on the exposed
  /// fraction (runtime::TrainingSession sets both).
  double migration_cost_multiplier = 1.0;
};

struct HierResult {
  pipeline::StageMap map;
  bool used_inter_node = false;
  int rounds = 0;            ///< diffusion rounds summed over both levels
  int intra_node_moves = 0;  ///< layers whose stage changed within a node
  int inter_node_moves = 0;  ///< layers that crossed a node boundary
  int layer_moves() const { return intra_node_moves + inter_node_moves; }
  double imbalance_before = 0.0;       ///< Eq. (2) on normalized loads
  double imbalance_after_intra = 0.0;  ///< after level 1 only
  double imbalance_after = 0.0;        ///< final
  bool converged = false;
  /// Level-2 result beat the relative-gain bar but was rejected because
  /// its extra exposed migration cost did not amortize within the payoff
  /// window.
  bool inter_rejected_by_payoff = false;
  /// Extra exposed cost (seconds) the rejected/adopted inter map would pay
  /// over the intra-only map; 0 when level 2 never ran.
  double inter_exposed_cost_s = 0.0;
};

class HierarchicalBalancer {
 public:
  explicit HierarchicalBalancer(const Topology& topo, HierConfig cfg = {})
      : topo_(&topo), cfg_(cfg) {}

  /// `req.capacities`, when set, gives per-stage speeds; otherwise they are
  /// derived from the topology (or uniform if !cfg.capacity_aware).
  /// `stage_to_rank` defaults to stage s → rank s.
  HierResult balance(const balance::DiffusionRequest& req,
                     const pipeline::StageMap& start,
                     std::span<const int> stage_to_rank = {}) const;

  const HierConfig& config() const { return cfg_; }

 private:
  const Topology* topo_;
  HierConfig cfg_;
};

/// Migration traffic split by whether a transfer crosses a node boundary —
/// the quantity the hierarchical balancer exists to minimize.
struct MigrationSplit {
  double intra_node_bytes = 0.0;
  double inter_node_bytes = 0.0;
  double total_bytes() const { return intra_node_bytes + inter_node_bytes; }
};

MigrationSplit classify_migration(const balance::MigrationPlan& plan,
                                  const Topology& topo,
                                  std::span<const int> stage_to_rank = {});

}  // namespace dynmo::cluster
