#include "cluster/placement.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "core/error.hpp"

namespace dynmo::cluster {

double placement_cost_s(const Topology& topo,
                        std::span<const int> stage_to_rank,
                        std::size_t activation_bytes) {
  double acc = 0.0;
  for (std::size_t s = 0; s + 1 < stage_to_rank.size(); ++s) {
    acc += topo.p2p_time(stage_to_rank[s], stage_to_rank[s + 1],
                         activation_bytes);
  }
  return acc;
}

namespace {

Placement finish(const Topology& topo, std::vector<int> ranks,
                 std::size_t activation_bytes) {
  Placement p;
  p.stage_to_rank = std::move(ranks);
  p.boundary_time_s =
      placement_cost_s(topo, p.stage_to_rank, activation_bytes);
  return p;
}

}  // namespace

Placement place_linear(const Topology& topo, int num_stages,
                       std::size_t activation_bytes) {
  DYNMO_CHECK(num_stages > 0 && num_stages <= topo.num_ranks(),
              num_stages << " stages on " << topo.num_ranks() << " ranks");
  std::vector<int> ranks(static_cast<std::size_t>(num_stages));
  std::iota(ranks.begin(), ranks.end(), 0);
  return finish(topo, std::move(ranks), activation_bytes);
}

Placement place_round_robin(const Topology& topo, int num_stages,
                            std::size_t activation_bytes) {
  DYNMO_CHECK(num_stages > 0 && num_stages <= topo.num_ranks(),
              num_stages << " stages on " << topo.num_ranks() << " ranks");
  std::vector<int> ranks;
  ranks.reserve(static_cast<std::size_t>(num_stages));
  int local = 0;
  while (static_cast<int>(ranks.size()) < num_stages) {
    for (int n = 0; n < topo.num_nodes(); ++n) {
      if (local >= topo.node_size(n)) continue;
      ranks.push_back(topo.first_rank(n) + local);
      if (static_cast<int>(ranks.size()) == num_stages) break;
    }
    ++local;
  }
  return finish(topo, std::move(ranks), activation_bytes);
}

Placement place_topology_aware(const Topology& topo, int num_stages,
                               std::size_t activation_bytes) {
  DYNMO_CHECK(num_stages > 0 && num_stages <= topo.num_ranks(),
              num_stages << " stages on " << topo.num_ranks() << " ranks");
  // Seed on the node with the highest aggregate throughput: if the
  // pipeline fits inside it, no boundary leaves the clique at all.
  int seed_node = 0;
  double best_throughput = -1.0;
  for (int n = 0; n < topo.num_nodes(); ++n) {
    double acc = 0.0;
    for (int i = 0; i < topo.node_size(n); ++i) {
      acc += topo.relative_speed(topo.first_rank(n) + i);
    }
    if (acc > best_throughput) {
      best_throughput = acc;
      seed_node = n;
    }
  }

  std::vector<bool> used(static_cast<std::size_t>(topo.num_ranks()), false);
  std::vector<int> ranks;
  ranks.reserve(static_cast<std::size_t>(num_stages));
  int prev = topo.first_rank(seed_node);
  used[static_cast<std::size_t>(prev)] = true;
  ranks.push_back(prev);
  while (static_cast<int>(ranks.size()) < num_stages) {
    int best = -1;
    double best_time = std::numeric_limits<double>::infinity();
    double best_speed = -1.0;
    const auto paths = topo.best_paths_from(prev);  // one Dijkstra per step
    for (int r = 0; r < topo.num_ranks(); ++r) {
      if (used[static_cast<std::size_t>(r)]) continue;
      const PathInfo& p = paths[static_cast<std::size_t>(r)];
      DYNMO_CHECK(p.reachable(),
                  "ranks " << prev << " and " << r << " are disconnected");
      const double t = p.time_s(activation_bytes);
      const double speed = topo.relative_speed(r);
      // Cheapest link wins; among equal links prefer the faster GPU,
      // then the lower rank (keeps fills deterministic and contiguous).
      constexpr double kTimeEps = 1e-12;
      if (t < best_time - kTimeEps ||
          (t < best_time + kTimeEps && speed > best_speed)) {
        best = r;
        best_time = t;
        best_speed = speed;
      }
    }
    used[static_cast<std::size_t>(best)] = true;
    ranks.push_back(best);
    prev = best;
  }
  return finish(topo, std::move(ranks), activation_bytes);
}

}  // namespace dynmo::cluster
