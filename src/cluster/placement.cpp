#include "cluster/placement.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "core/error.hpp"

namespace dynmo::cluster {

double placement_cost_s(const Topology& topo,
                        std::span<const int> stage_to_rank,
                        std::size_t activation_bytes) {
  double acc = 0.0;
  for (std::size_t s = 0; s + 1 < stage_to_rank.size(); ++s) {
    acc += topo.p2p_time(stage_to_rank[s], stage_to_rank[s + 1],
                         activation_bytes);
  }
  return acc;
}

namespace {

Placement finish(const Topology& topo, std::vector<int> ranks,
                 std::size_t activation_bytes) {
  Placement p;
  p.stage_to_rank = std::move(ranks);
  p.boundary_time_s =
      placement_cost_s(topo, p.stage_to_rank, activation_bytes);
  return p;
}

/// The greedy fast-link chain shared by place_topology_aware and
/// place_grid: seed on the highest-aggregate-throughput node, then
/// repeatedly append the unused rank with the cheapest link from the
/// previous pick (ties toward faster GPUs, then lower rank).
std::vector<int> greedy_chain(const Topology& topo, int count,
                              std::size_t activation_bytes) {
  int seed_node = 0;
  double best_throughput = -1.0;
  for (int n = 0; n < topo.num_nodes(); ++n) {
    double acc = 0.0;
    for (int i = 0; i < topo.node_size(n); ++i) {
      acc += topo.relative_speed(topo.first_rank(n) + i);
    }
    if (acc > best_throughput) {
      best_throughput = acc;
      seed_node = n;
    }
  }

  std::vector<bool> used(static_cast<std::size_t>(topo.num_ranks()), false);
  std::vector<int> ranks;
  ranks.reserve(static_cast<std::size_t>(count));
  int prev = topo.first_rank(seed_node);
  used[static_cast<std::size_t>(prev)] = true;
  ranks.push_back(prev);
  while (static_cast<int>(ranks.size()) < count) {
    int best = -1;
    double best_time = std::numeric_limits<double>::infinity();
    double best_speed = -1.0;
    const auto paths = topo.best_paths_from(prev);  // one Dijkstra per step
    for (int r = 0; r < topo.num_ranks(); ++r) {
      if (used[static_cast<std::size_t>(r)]) continue;
      const PathInfo& p = paths[static_cast<std::size_t>(r)];
      DYNMO_CHECK(p.reachable(),
                  "ranks " << prev << " and " << r << " are disconnected");
      const double t = p.time_s(activation_bytes);
      const double speed = topo.relative_speed(r);
      // Cheapest link wins; among equal links prefer the faster GPU,
      // then the lower rank (keeps fills deterministic and contiguous).
      constexpr double kTimeEps = 1e-12;
      if (t < best_time - kTimeEps ||
          (t < best_time + kTimeEps && speed > best_speed)) {
        best = r;
        best_time = t;
        best_speed = speed;
      }
    }
    used[static_cast<std::size_t>(best)] = true;
    ranks.push_back(best);
    prev = best;
  }
  return ranks;
}

}  // namespace

Placement place_linear(const Topology& topo, int num_stages,
                       std::size_t activation_bytes) {
  DYNMO_CHECK(num_stages > 0 && num_stages <= topo.num_ranks(),
              num_stages << " stages on " << topo.num_ranks() << " ranks");
  std::vector<int> ranks(static_cast<std::size_t>(num_stages));
  std::iota(ranks.begin(), ranks.end(), 0);
  return finish(topo, std::move(ranks), activation_bytes);
}

Placement place_round_robin(const Topology& topo, int num_stages,
                            std::size_t activation_bytes) {
  DYNMO_CHECK(num_stages > 0 && num_stages <= topo.num_ranks(),
              num_stages << " stages on " << topo.num_ranks() << " ranks");
  std::vector<int> ranks;
  ranks.reserve(static_cast<std::size_t>(num_stages));
  int local = 0;
  while (static_cast<int>(ranks.size()) < num_stages) {
    for (int n = 0; n < topo.num_nodes(); ++n) {
      if (local >= topo.node_size(n)) continue;
      ranks.push_back(topo.first_rank(n) + local);
      if (static_cast<int>(ranks.size()) == num_stages) break;
    }
    ++local;
  }
  return finish(topo, std::move(ranks), activation_bytes);
}

Placement place_topology_aware(const Topology& topo, int num_stages,
                               std::size_t activation_bytes) {
  DYNMO_CHECK(num_stages > 0 && num_stages <= topo.num_ranks(),
              num_stages << " stages on " << topo.num_ranks() << " ranks");
  return finish(topo, greedy_chain(topo, num_stages, activation_bytes),
                activation_bytes);
}

const char* to_string(GridOrientation o) {
  switch (o) {
    case GridOrientation::DpInner: return "dp_inner";
    case GridOrientation::PpInner: return "pp_inner";
  }
  return "?";
}

GridPlacement place_grid(const Topology& topo, int data_parallel,
                         int num_stages, GridOrientation orientation,
                         std::size_t activation_bytes) {
  DYNMO_CHECK(data_parallel > 0, "grid needs at least one DP replica");
  DYNMO_CHECK(num_stages > 0, "grid needs at least one stage");
  const int total = data_parallel * num_stages;
  DYNMO_CHECK(total <= topo.num_ranks(),
              data_parallel << "x" << num_stages << " grid on "
                            << topo.num_ranks() << " ranks");
  const auto chain = greedy_chain(topo, total, activation_bytes);

  GridPlacement g;
  g.data_parallel = data_parallel;
  g.num_stages = num_stages;
  g.grid_to_rank.resize(static_cast<std::size_t>(total));
  for (int d = 0; d < data_parallel; ++d) {
    for (int s = 0; s < num_stages; ++s) {
      // Chain position of (d, s) under the orientation's traversal:
      // DpInner hands out a stage's DP peers consecutively, PpInner a
      // replica's stages.
      const int pos = orientation == GridOrientation::DpInner
                          ? s * data_parallel + d
                          : d * num_stages + s;
      g.grid_to_rank[static_cast<std::size_t>(d * num_stages + s)] =
          chain[static_cast<std::size_t>(pos)];
    }
  }
  for (int d = 0; d < data_parallel; ++d) {
    g.boundary_time_s += placement_cost_s(
        topo,
        std::span<const int>(g.grid_to_rank)
            .subspan(static_cast<std::size_t>(d * num_stages),
                     static_cast<std::size_t>(num_stages)),
        activation_bytes);
  }
  return g;
}

}  // namespace dynmo::cluster
