// Topology-aware stage → rank placement.
//
// A pipeline's traffic is dominated by activations flowing between
// *adjacent* stages, so a placement is scored by the summed p2p time of
// its stage boundaries for a reference activation payload.  The greedy
// topology-aware placement keeps consecutive stages on the fastest links
// (NVLink before rails before Ethernet) and starts on the highest-
// throughput node; linear fill and round-robin are the comparison
// baselines (round-robin is what a topology-blind scheduler does, and
// pays an inter-node link on *every* boundary).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "cluster/topology.hpp"

namespace dynmo::cluster {

/// Reference per-boundary activation payload (micro-batch × seq × hidden
/// × 2 bytes at GPT-medium scale).
inline constexpr std::size_t kDefaultActivationBytes = 16u << 20;

struct Placement {
  std::vector<int> stage_to_rank;
  /// Summed boundary p2p time for the activation payload the placement
  /// was scored with.
  double boundary_time_s = 0.0;
};

/// Σ over adjacent stage pairs of topo.p2p_time(rank_s, rank_{s+1}, bytes).
double placement_cost_s(const Topology& topo,
                        std::span<const int> stage_to_rank,
                        std::size_t activation_bytes = kDefaultActivationBytes);

/// Stage s → rank s: fills node 0 first, then node 1, ...
Placement place_linear(const Topology& topo, int num_stages,
                       std::size_t activation_bytes = kDefaultActivationBytes);

/// Stages dealt across nodes like cards — the topology-blind strawman.
Placement place_round_robin(
    const Topology& topo, int num_stages,
    std::size_t activation_bytes = kDefaultActivationBytes);

/// Greedy: start on the highest-aggregate-throughput node, then repeatedly
/// pick the unused rank with the cheapest link from the previous stage
/// (ties broken toward faster GPUs).  Reduces to linear fill on
/// homogeneous hierarchies; on heterogeneous or irregular graphs it
/// routes the pipeline along the fast edges.
Placement place_topology_aware(
    const Topology& topo, int num_stages,
    std::size_t activation_bytes = kDefaultActivationBytes);

// --------------------------------------------------------------- DP×PP grid
// Hybrid data + pipeline parallelism places a *grid* of ranks: `dp`
// replicas, each running the same `pp`-stage pipeline.  Two traffic
// patterns compete for the NVLink clique — the gradient allreduce between
// a stage's DP peers, and the activation flow between a replica's adjacent
// stages — and a node can only hold one of them, so the orientation is a
// real deployment decision:
//
//   DpInner — a stage's DP peers sit next to each other (packed within a
//             node while they fit): gradient allreduces ride NVLink,
//             pipeline boundaries cross the fabric.
//   PpInner — a replica's pipeline is packed within a node: activations
//             ride NVLink, the gradient allreduce crosses the fabric.

enum class GridOrientation { DpInner, PpInner };

const char* to_string(GridOrientation o);

struct GridPlacement {
  int data_parallel = 0;
  int num_stages = 0;
  /// (replica d, stage s) → global rank at [d * num_stages + s]; each
  /// replica's pipeline view is a contiguous slice.
  std::vector<int> grid_to_rank;
  /// Summed boundary p2p time over every replica's pipeline for the
  /// activation payload the placement was scored with.
  double boundary_time_s = 0.0;
};

/// Greedy topology-aware grid placement: walk the same fast-link chain
/// place_topology_aware builds for dp*pp ranks, then hand chain positions
/// out in the orientation's traversal order — DpInner visits a stage's DP
/// peers consecutively (so they share the chain's fast local links),
/// PpInner visits a replica's stages consecutively.
GridPlacement place_grid(const Topology& topo, int data_parallel,
                         int num_stages, GridOrientation orientation,
                         std::size_t activation_bytes = kDefaultActivationBytes);

}  // namespace dynmo::cluster
