#include "cluster/topology.hpp"

#include <algorithm>
#include <limits>
#include <memory>
#include <queue>
#include <sstream>

#include "core/error.hpp"
#include "core/units.hpp"

namespace dynmo::cluster {

namespace {

/// Reference payload for path selection: a typical transformer layer's
/// migration state.  Path choice is insensitive to the exact value — it
/// only breaks ties between latency-heavy and bandwidth-heavy routes.
constexpr std::size_t kRefBytes = static_cast<std::size_t>(64.0 * MiB);

}  // namespace

const char* to_string(LinkType t) {
  switch (t) {
    case LinkType::NvLink: return "nvlink";
    case LinkType::Pcie: return "pcie";
    case LinkType::InfiniBand: return "infiniband";
    case LinkType::Ethernet: return "ethernet";
  }
  return "?";
}

LinkSpec default_link(LinkType t) {
  switch (t) {
    // NVLink4 NVSwitch clique: ~450 GB/s effective unidirectional per pair.
    case LinkType::NvLink: return {t, 450e9, 2e-6};
    // PCIe Gen5 x16 through the host: ~55 GB/s, extra hop latency.
    case LinkType::Pcie: return {t, 55e9, 4e-6};
    // NDR200-class RDMA rail: ~25 GB/s effective per GPU pair.
    case LinkType::InfiniBand: return {t, 25e9, 5e-6};
    // 100GbE TCP: ~12.5 GB/s line rate, kernel-stack latency.
    case LinkType::Ethernet: return {t, 12.5e9, 30e-6};
  }
  return {t, 12.5e9, 30e-6};
}

int Topology::add_node(NodeDesc node) {
  DYNMO_CHECK(!node.gpus.empty(), "a node needs at least one GPU");
  DYNMO_CHECK(node.intra.bandwidth_bytes_s > 0.0,
              "intra-node link needs positive bandwidth");
  const int node_idx = num_nodes();
  const int first = rank_count_;
  const int count = static_cast<int>(node.gpus.size());
  node_first_rank_.push_back(first);
  for (int i = 0; i < count; ++i) rank_node_.push_back(node_idx);
  rank_count_ += count;
  adjacency_.resize(static_cast<std::size_t>(rank_count_));
  for (int a = first; a < first + count; ++a) {
    for (int b = a + 1; b < first + count; ++b) {
      add_link(a, b, node.intra);
    }
  }
  nodes_.push_back(std::move(node));
  return node_idx;
}

void Topology::add_link(int rank_a, int rank_b, LinkSpec link) {
  DYNMO_CHECK(rank_a >= 0 && rank_a < num_ranks(), "bad rank " << rank_a);
  DYNMO_CHECK(rank_b >= 0 && rank_b < num_ranks(), "bad rank " << rank_b);
  DYNMO_CHECK(rank_a != rank_b, "self-link on rank " << rank_a);
  DYNMO_CHECK(link.bandwidth_bytes_s > 0.0, "link needs positive bandwidth");
  adjacency_[static_cast<std::size_t>(rank_a)].push_back({rank_b, link});
  adjacency_[static_cast<std::size_t>(rank_b)].push_back({rank_a, link});
}

int Topology::node_of(int rank) const {
  DYNMO_CHECK(rank >= 0 && rank < num_ranks(), "bad rank " << rank);
  return rank_node_[static_cast<std::size_t>(rank)];
}

int Topology::local_rank(int rank) const {
  return rank - first_rank(node_of(rank));
}

int Topology::node_size(int node) const {
  DYNMO_CHECK(node >= 0 && node < num_nodes(), "bad node " << node);
  return static_cast<int>(nodes_[static_cast<std::size_t>(node)].gpus.size());
}

int Topology::first_rank(int node) const {
  DYNMO_CHECK(node >= 0 && node < num_nodes(), "bad node " << node);
  return node_first_rank_[static_cast<std::size_t>(node)];
}

const NodeDesc& Topology::node(int n) const {
  DYNMO_CHECK(n >= 0 && n < num_nodes(), "bad node " << n);
  return nodes_[static_cast<std::size_t>(n)];
}

const hw::GpuSpec& Topology::gpu(int rank) const {
  const int n = node_of(rank);
  return nodes_[static_cast<std::size_t>(n)]
      .gpus[static_cast<std::size_t>(local_rank(rank))];
}

double Topology::relative_speed(int rank) const {
  const hw::GpuSpec& g = gpu(rank);
  return g.peak_flops_bf16 * g.gemm_efficiency;
}

PathInfo Topology::path_from_chain(int rank_a, int rank_b,
                                   std::span<const int> prev) const {
  PathInfo info;
  if (rank_a == rank_b) {
    info.hops = {rank_a};
    info.bandwidth_bytes_s = std::numeric_limits<double>::infinity();
    info.latency_s = 0.0;
    return info;
  }
  if (prev[static_cast<std::size_t>(rank_b)] < 0) return info;  // unreachable
  for (int v = rank_b; v != -1; v = prev[static_cast<std::size_t>(v)]) {
    info.hops.push_back(v);
    if (v == rank_a) break;
  }
  std::reverse(info.hops.begin(), info.hops.end());
  info.bandwidth_bytes_s = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i + 1 < info.hops.size(); ++i) {
    const int u = info.hops[i];
    const int v = info.hops[i + 1];
    // The realized hop is the best parallel edge between u and v.
    double best_time = std::numeric_limits<double>::infinity();
    const LinkSpec* best = nullptr;
    for (const Edge& e : adjacency_[static_cast<std::size_t>(u)]) {
      if (e.peer != v) continue;
      const double t = e.link.latency_s +
                       static_cast<double>(kRefBytes) /
                           e.link.bandwidth_bytes_s;
      if (t < best_time) {
        best_time = t;
        best = &e.link;
      }
    }
    info.bandwidth_bytes_s =
        std::min(info.bandwidth_bytes_s, best->bandwidth_bytes_s);
    info.latency_s += best->latency_s;
  }
  return info;
}

std::vector<PathInfo> Topology::best_paths_from(int rank_a) const {
  DYNMO_CHECK(rank_a >= 0 && rank_a < num_ranks(), "bad rank " << rank_a);
  // Dijkstra on per-hop store-and-forward time of the reference payload;
  // this is additive, unlike the cut-through metric PathInfo reports.
  const auto R = static_cast<std::size_t>(num_ranks());
  std::vector<double> dist(R, std::numeric_limits<double>::infinity());
  std::vector<int> prev(R, -1);
  using Item = std::pair<double, int>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[static_cast<std::size_t>(rank_a)] = 0.0;
  heap.push({0.0, rank_a});
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[static_cast<std::size_t>(u)]) continue;
    for (const Edge& e : adjacency_[static_cast<std::size_t>(u)]) {
      const double hop = e.link.latency_s +
                         static_cast<double>(kRefBytes) /
                             e.link.bandwidth_bytes_s;
      const double nd = d + hop;
      if (nd < dist[static_cast<std::size_t>(e.peer)]) {
        dist[static_cast<std::size_t>(e.peer)] = nd;
        prev[static_cast<std::size_t>(e.peer)] = u;
        heap.push({nd, e.peer});
      }
    }
  }
  std::vector<PathInfo> paths;
  paths.reserve(R);
  for (int b = 0; b < num_ranks(); ++b) {
    paths.push_back(path_from_chain(rank_a, b, prev));
  }
  return paths;
}

PathInfo Topology::best_path(int rank_a, int rank_b) const {
  DYNMO_CHECK(rank_b >= 0 && rank_b < num_ranks(), "bad rank " << rank_b);
  return best_paths_from(rank_a)[static_cast<std::size_t>(rank_b)];
}

double Topology::effective_bandwidth(int rank_a, int rank_b) const {
  const PathInfo p = best_path(rank_a, rank_b);
  return p.reachable() ? p.bandwidth_bytes_s : 0.0;
}

double Topology::p2p_time(int rank_a, int rank_b, std::size_t bytes) const {
  if (rank_a == rank_b) return 0.0;
  const PathInfo p = best_path(rank_a, rank_b);
  DYNMO_CHECK(p.reachable(),
              "ranks " << rank_a << " and " << rank_b << " are disconnected");
  return p.time_s(bytes);
}

comm::CostModel Topology::make_cost_model(comm::CostModelConfig base) const {
  const int R = num_ranks();
  comm::CostModel model(base);
  if (R == 0) return model;
  // This topology is the single source of node-membership truth: tier(),
  // group(), and hierarchical collectives ask the resolver, never the
  // uniform `gpus_per_node` rule (which silently disagrees the moment a
  // preset's node size differs from the config's).
  auto membership = std::make_shared<std::vector<int>>(rank_node_);
  model.set_node_resolver([membership](int rank) -> int {
    DYNMO_CHECK(rank >= 0 &&
                    rank < static_cast<int>(membership->size()),
                "rank " << rank << " outside the topology's "
                        << membership->size() << " ranks");
    return (*membership)[static_cast<std::size_t>(rank)];
  });
  // Snapshot all-pairs effective links so the resolver owns its data and
  // the CostModel outlives this Topology.
  auto table = std::make_shared<std::vector<comm::LinkParams>>(
      static_cast<std::size_t>(R) * static_cast<std::size_t>(R),
      comm::LinkParams{0.0, std::numeric_limits<double>::infinity()});
  for (int a = 0; a < R; ++a) {
    const auto paths = best_paths_from(a);
    for (int b = a + 1; b < R; ++b) {
      const PathInfo& p = paths[static_cast<std::size_t>(b)];
      DYNMO_CHECK(p.reachable(),
                  "ranks " << a << " and " << b << " are disconnected");
      const comm::LinkParams lp{p.latency_s, p.bandwidth_bytes_s};
      (*table)[static_cast<std::size_t>(a * R + b)] = lp;
      (*table)[static_cast<std::size_t>(b * R + a)] = lp;
    }
  }
  model.set_link_resolver(
      [table, R](int a, int b) -> comm::LinkParams {
        DYNMO_CHECK(a >= 0 && a < R && b >= 0 && b < R,
                    "rank pair (" << a << "," << b
                                  << ") outside the topology's " << R
                                  << " ranks");
        return (*table)[static_cast<std::size_t>(a * R + b)];
      });
  return model;
}

std::string Topology::to_string() const {
  std::ostringstream os;
  os << num_nodes() << " nodes / " << num_ranks() << " ranks:";
  for (int n = 0; n < num_nodes(); ++n) {
    const NodeDesc& nd = nodes_[static_cast<std::size_t>(n)];
    os << " [" << nd.gpus.size() << "x " << nd.gpus.front().name << " via "
       << cluster::to_string(nd.intra.type) << "]";
  }
  return os.str();
}

Topology Topology::make_homogeneous(int n_nodes, int gpus_per_node,
                                    hw::GpuSpec gpu, LinkSpec intra,
                                    LinkSpec inter) {
  DYNMO_CHECK(n_nodes > 0, "need at least one node");
  DYNMO_CHECK(gpus_per_node > 0, "need at least one GPU per node");
  Topology topo;
  for (int n = 0; n < n_nodes; ++n) {
    NodeDesc node;
    node.gpus.assign(static_cast<std::size_t>(gpus_per_node), gpu);
    node.intra = intra;
    topo.add_node(std::move(node));
  }
  // Rail-optimized fabric: local rank i of every node pairs with local
  // rank i of every other node.  Off-rail transfers hop over the clique.
  for (int a = 0; a < n_nodes; ++a) {
    for (int b = a + 1; b < n_nodes; ++b) {
      for (int i = 0; i < gpus_per_node; ++i) {
        topo.add_link(topo.first_rank(a) + i, topo.first_rank(b) + i, inter);
      }
    }
  }
  return topo;
}

Topology Topology::make_dgx_a100(int n_nodes) {
  // NVLink3: ~250 GB/s effective unidirectional per pair through NVSwitch;
  // HDR200 rails: ~23 GB/s effective RDMA.
  LinkSpec intra{LinkType::NvLink, 250e9, 2.5e-6};
  LinkSpec inter{LinkType::InfiniBand, 23e9, 5e-6};
  return make_homogeneous(n_nodes, 8, hw::GpuSpec::a100_sxm4(), intra, inter);
}

Topology Topology::make_dgx_h100(int n_nodes) {
  LinkSpec intra = default_link(LinkType::NvLink);
  LinkSpec inter = default_link(LinkType::InfiniBand);
  return make_homogeneous(n_nodes, 8, hw::GpuSpec::h100_sxm5(), intra, inter);
}

Topology Topology::make_hetero(std::vector<NodeDesc> nodes, LinkSpec inter) {
  DYNMO_CHECK(!nodes.empty(), "need at least one node");
  Topology topo;
  int rails = std::numeric_limits<int>::max();
  for (auto& nd : nodes) {
    rails = std::min(rails, static_cast<int>(nd.gpus.size()));
    topo.add_node(std::move(nd));
  }
  const int N = topo.num_nodes();
  for (int a = 0; a < N; ++a) {
    for (int b = a + 1; b < N; ++b) {
      for (int i = 0; i < rails; ++i) {
        topo.add_link(topo.first_rank(a) + i, topo.first_rank(b) + i, inter);
      }
    }
  }
  return topo;
}

}  // namespace dynmo::cluster
