// Deployment: the one object every cost surface consumes.
//
// A Deployment binds the three cluster facts the train → profile → balance
// → re-pack loop keeps needing — *who runs where, on what hardware, over
// which links*:
//
//   Topology          the physical graph (nodes, typed links)
//   grid(dp, stage)   the DP×PP placement ((replica, stage) → global rank;
//                     a plain pipeline is the dp = 1 special case)
//   per-rank GpuSpec  carried by the topology's nodes
//
// Before this type existed the same knowledge leaked through four side
// channels (CostBuilder's first_global_rank, CostModel's crosses_nodes
// bool, a single session-wide GpuSpec, topology-blind re-packing), which
// silently disagreed with each other.  A Deployment is an immutable value:
// construct it once (factories below), hand copies around freely (the
// topology is shared, copies are cheap), and ask it for
//
//   link(stage_a, stage_b)  the effective link between two stages' hosts
//   gpu(stage)              the GPU actually hosting a stage
//   group(ranks)            node-grouped membership for hierarchical
//                           collective pricing (comm::RankGroup)
//   dp_group(stage)         a stage's DP peers node-grouped — what the
//                           gradient allreduce is priced over
//   stage_capacities()      relative per-stage compute throughput, the
//                           weights capacity-aware diffusion normalizes by
//   make_cost_model()       a comm::CostModel resolved against this
//                           deployment (links *and* node membership)
//
// Single-stage accessors (gpu, node, link, stage_capacities, ...) read the
// dp = 0 replica — the canonical pipeline view every pre-grid call site
// keeps consuming; replica(d) materializes any other replica as its own
// dp = 1 Deployment.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cluster/placement.hpp"
#include "cluster/topology.hpp"
#include "comm/cost_model.hpp"
#include "hw/gpu_spec.hpp"

namespace dynmo::cluster {

class Deployment {
 public:
  /// Bind an explicit placement.  Ranks must be valid topology ranks and
  /// pairwise distinct.
  static Deployment make(Topology topo, std::vector<int> stage_to_rank);
  /// Greedy topology-aware placement (adjacent stages on the fastest
  /// links); the default everything in the runtime uses.
  static Deployment make_topology_aware(
      Topology topo, int num_stages,
      std::size_t activation_bytes = kDefaultActivationBytes);
  /// Stage s → rank s.
  static Deployment make_linear(Topology topo, int num_stages);

  /// Bind an explicit DP×PP grid: grid_to_rank[(d, s)] at
  /// [d * num_stages + s] (num_stages derived from the vector's size).
  /// Ranks must be valid and pairwise distinct across the whole grid.
  static Deployment make_grid(Topology topo, int data_parallel,
                              std::vector<int> grid_to_rank);
  /// Greedy topology-aware grid placement under an orientation: DpInner
  /// packs a stage's DP peers within a node (gradient allreduce on
  /// NVLink), PpInner packs a replica's pipeline (activations on NVLink).
  static Deployment make_grid_topology_aware(
      Topology topo, int data_parallel, int num_stages,
      GridOrientation orientation,
      std::size_t activation_bytes = kDefaultActivationBytes);

  int num_stages() const { return pp_; }
  int data_parallel() const { return dp_; }
  const Topology& topology() const { return *topo_; }
  /// (replica dp, stage) → global rank.
  int rank(int dp, int stage) const;
  /// dp = 0 view: stage → global rank.
  int rank(int stage) const { return rank(0, stage); }
  /// Replica dp's pipeline placement (a contiguous slice of the grid).
  std::span<const int> stage_to_rank(int dp) const;
  std::span<const int> stage_to_rank() const { return stage_to_rank(0); }
  /// The whole grid, replica-major.
  std::span<const int> grid_to_rank() const { return grid_; }
  /// Replica dp as its own single-pipeline Deployment (shares the
  /// topology) — the view to hand pre-grid consumers for replicas > 0.
  Deployment replica(int dp) const;
  /// The leading `num_stages` stages of every replica as their own
  /// Deployment (shares the topology).  This is the deployment of the
  /// surviving/acquired ranks across an elastic shrink or expand: packing
  /// releases *trailing* stages and expansion reclaims them, so the ranks
  /// the job owns at any worker count are exactly a prefix of the current
  /// placement.  (Re-placing from scratch would be wrong — a released rank
  /// may have been handed to another job.)  See docs/RUNTIME.md.
  Deployment prefix(int num_stages) const;

  /// The GPU hosting a stage (dp = 0 view) / a grid cell.
  const hw::GpuSpec& gpu(int stage) const;
  const hw::GpuSpec& gpu(int dp, int stage) const;
  /// Node hosting a stage (dp = 0 view).
  int node(int stage) const;
  /// Effective link between two stages' hosting ranks (shortest path over
  /// the topology; a stage to itself is free).  dp = 0 view.
  ///
  /// Memoized behind a const cache shared by all copies of this
  /// deployment: the topology is immutable, so the first lookup runs the
  /// shortest-path resolver and every repeat returns the stored value —
  /// O(1) instead of a Dijkstra per call.  Thread-safe (mutex-guarded).
  comm::LinkParams link(int stage_a, int stage_b) const;
  /// Reference twin of link(): always re-derives the shortest path, kept
  /// alive under test to prove cached lookups return identical objects.
  comm::LinkParams link_full_rescan(int stage_a, int stage_b) const;

  /// Node-grouped membership of a set of global ranks, with intra/inter
  /// links taken from the topology (worst member intra link, worst
  /// leader-pair effective link) — ready for the hierarchical collective
  /// formulas of comm::CostModel.  Memoized per rank set (the derivation
  /// runs a shortest path per node pair; repeats are O(log) map hits).
  comm::RankGroup group(std::span<const int> ranks) const;
  /// Reference twin of group(): always re-derives the membership.
  comm::RankGroup group_full_rescan(std::span<const int> ranks) const;
  /// group() over the dp = 0 replica's stage-hosting ranks.
  comm::RankGroup stage_group() const;
  /// group() over a stage's DP peers {rank(0, s), ..., rank(dp-1, s)} —
  /// what the hierarchical gradient-allreduce formula prices.  Under
  /// DpInner the peers share nodes and the allreduce rides the intra
  /// links; under PpInner every peer sits on a different node and the
  /// formula degenerates to the flat cross-fabric ring.
  comm::RankGroup dp_group(int stage) const;

  /// Relative per-stage compute throughput (dp = 0 view), normalized so
  /// the fastest stage is 1.0 — the capacity weights heterogeneous
  /// balancing uses.  Memoized: derived once, copied out thereafter.
  std::vector<double> stage_capacities() const;
  /// Reference twin of stage_capacities(): always re-derives.
  std::vector<double> stage_capacities_full_rescan() const;
  /// Smallest device memory across the whole grid — the conservative
  /// per-worker cap re-packing and balancing enforce.
  double min_mem_capacity() const;
  /// True when stages are hosted by GPUs of differing throughput (dp = 0).
  bool heterogeneous() const;

  /// CostModel resolved against this deployment: shortest-path links and
  /// topology node membership (see Topology::make_cost_model).
  comm::CostModel make_cost_model(comm::CostModelConfig base = {}) const;

  /// Test hook for the memoized link/group/stage-capacity lookups:
  /// `lookups` counts cached-query calls, `resolver_calls` counts the
  /// cache misses that actually re-derived (ran shortest paths / grouped
  /// nodes).  A regression test holds resolver_calls flat across repeated
  /// identical lookups.
  struct CacheStats {
    std::uint64_t lookups = 0;
    std::uint64_t resolver_calls = 0;
  };
  CacheStats cache_stats() const;

  std::string to_string() const;

 private:
  struct Caches;

  Deployment(std::shared_ptr<const Topology> topo, int data_parallel,
             std::vector<int> grid_to_rank);

  std::shared_ptr<const Topology> topo_;
  int dp_ = 1;
  int pp_ = 0;
  std::vector<int> grid_;  ///< (d, s) → rank at [d * pp_ + s]
  /// Const cache behind the memoized lookups; shared by copies (they
  /// answer over the same immutable topology + placement).  prefix() and
  /// replica() views get a fresh cache — their placements differ.
  std::shared_ptr<Caches> caches_;
};

}  // namespace dynmo::cluster
