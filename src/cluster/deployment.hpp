// Deployment: the one object every cost surface consumes.
//
// A Deployment binds the three cluster facts the train → profile → balance
// → re-pack loop keeps needing — *who runs where, on what hardware, over
// which links*:
//
//   Topology          the physical graph (nodes, typed links)
//   stage_to_rank     the pipeline placement (stage s → global rank)
//   per-rank GpuSpec  carried by the topology's nodes
//
// Before this type existed the same knowledge leaked through four side
// channels (CostBuilder's first_global_rank, CostModel's crosses_nodes
// bool, a single session-wide GpuSpec, topology-blind re-packing), which
// silently disagreed with each other.  A Deployment is an immutable value:
// construct it once (factories below), hand copies around freely (the
// topology is shared, copies are cheap), and ask it for
//
//   link(stage_a, stage_b)  the effective link between two stages' hosts
//   gpu(stage)              the GPU actually hosting a stage
//   group(ranks)            node-grouped membership for hierarchical
//                           collective pricing (comm::RankGroup)
//   stage_capacities()      relative per-stage compute throughput, the
//                           weights capacity-aware diffusion normalizes by
//   make_cost_model()       a comm::CostModel resolved against this
//                           deployment (links *and* node membership)
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cluster/placement.hpp"
#include "cluster/topology.hpp"
#include "comm/cost_model.hpp"
#include "hw/gpu_spec.hpp"

namespace dynmo::cluster {

class Deployment {
 public:
  /// Bind an explicit placement.  Ranks must be valid topology ranks and
  /// pairwise distinct.
  static Deployment make(Topology topo, std::vector<int> stage_to_rank);
  /// Greedy topology-aware placement (adjacent stages on the fastest
  /// links); the default everything in the runtime uses.
  static Deployment make_topology_aware(
      Topology topo, int num_stages,
      std::size_t activation_bytes = kDefaultActivationBytes);
  /// Stage s → rank s.
  static Deployment make_linear(Topology topo, int num_stages);

  int num_stages() const { return static_cast<int>(stage_to_rank_.size()); }
  const Topology& topology() const { return *topo_; }
  std::span<const int> stage_to_rank() const { return stage_to_rank_; }
  int rank(int stage) const;

  /// The GPU hosting a stage.
  const hw::GpuSpec& gpu(int stage) const;
  /// Node hosting a stage.
  int node(int stage) const;
  /// Effective link between two stages' hosting ranks (shortest path over
  /// the topology; a stage to itself is free).
  comm::LinkParams link(int stage_a, int stage_b) const;

  /// Node-grouped membership of a set of global ranks, with intra/inter
  /// links taken from the topology (worst member intra link, worst
  /// leader-pair effective link) — ready for the hierarchical collective
  /// formulas of comm::CostModel.
  comm::RankGroup group(std::span<const int> ranks) const;
  /// group() over all stage-hosting ranks.
  comm::RankGroup stage_group() const;

  /// Relative per-stage compute throughput, normalized so the fastest
  /// stage is 1.0 — the capacity weights heterogeneous balancing uses.
  std::vector<double> stage_capacities() const;
  /// Smallest per-stage device memory — the conservative per-worker cap
  /// re-packing and balancing enforce.
  double min_mem_capacity() const;
  /// True when stages are hosted by GPUs of differing throughput.
  bool heterogeneous() const;

  /// CostModel resolved against this deployment: shortest-path links and
  /// topology node membership (see Topology::make_cost_model).
  comm::CostModel make_cost_model(comm::CostModelConfig base = {}) const;

  std::string to_string() const;

 private:
  Deployment(std::shared_ptr<const Topology> topo,
             std::vector<int> stage_to_rank);

  std::shared_ptr<const Topology> topo_;
  std::vector<int> stage_to_rank_;
};

}  // namespace dynmo::cluster
