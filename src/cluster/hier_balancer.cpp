#include "cluster/hier_balancer.hpp"

#include <algorithm>
#include <map>
#include <numeric>

#include "balance/partition.hpp"
#include "core/error.hpp"
#include "core/stats.hpp"

namespace dynmo::cluster {

namespace {

/// A maximal run of consecutive stages hosted by one node.
struct StageGroup {
  int node = 0;
  int stage_begin = 0;
  int stage_end = 0;  ///< exclusive
  int size() const { return stage_end - stage_begin; }
};

std::vector<StageGroup> group_stages(const Topology& topo,
                                     std::span<const int> stage_to_rank) {
  std::vector<StageGroup> groups;
  std::vector<bool> seen(static_cast<std::size_t>(topo.num_nodes()), false);
  for (int s = 0; s < static_cast<int>(stage_to_rank.size()); ++s) {
    const int node = topo.node_of(stage_to_rank[static_cast<std::size_t>(s)]);
    if (groups.empty() || groups.back().node != node) {
      DYNMO_CHECK(!seen[static_cast<std::size_t>(node)],
                  "stages on node " << node
                                    << " are not contiguous; use a "
                                       "cluster::place_* placement");
      seen[static_cast<std::size_t>(node)] = true;
      groups.push_back({node, s, s + 1});
    } else {
      groups.back().stage_end = s + 1;
    }
  }
  return groups;
}

std::vector<double> slice(std::span<const double> v, std::size_t lo,
                          std::size_t hi) {
  if (v.empty()) return {};
  return {v.begin() + static_cast<std::ptrdiff_t>(lo),
          v.begin() + static_cast<std::ptrdiff_t>(hi)};
}

/// Per-rank serialized wall-clock of a plan priced by the topology's
/// shortest-path links — the same serialization rule as
/// balance::MigrationPlan::estimated_time_s without snapshotting a
/// CostModel for every balance() call.
double topo_migration_time(const balance::MigrationPlan& plan,
                           const Topology& topo,
                           std::span<const int> stage_to_rank) {
  std::map<int, double> rank_time;
  // Topology::p2p_time runs a full single-source shortest-path per call;
  // transfers cluster on few source ranks, so memoize each source's row
  // (best_paths_from) and price every transfer from the cached PathInfo —
  // the identical object p2p_time would have read, so identical times.
  std::map<int, std::vector<PathInfo>> paths_from;
  const auto p2p = [&](int src, int dst, std::size_t bytes) {
    if (src == dst) return 0.0;
    auto it = paths_from.find(src);
    if (it == paths_from.end()) {
      it = paths_from.emplace(src, topo.best_paths_from(src)).first;
    }
    const PathInfo& p = it->second[static_cast<std::size_t>(dst)];
    DYNMO_CHECK(p.reachable(),
                "ranks " << src << " and " << dst << " are disconnected");
    return p.time_s(bytes);
  };
  for (const auto& t : plan.transfers) {
    const int src = stage_to_rank[static_cast<std::size_t>(t.src_stage)];
    const int dst = stage_to_rank[static_cast<std::size_t>(t.dst_stage)];
    const double s = p2p(src, dst, static_cast<std::size_t>(t.bytes));
    rank_time[src] += s;
    rank_time[dst] += s;
  }
  double worst = 0.0;
  for (const auto& [rank, s] : rank_time) worst = std::max(worst, s);
  return worst;
}

}  // namespace

HierResult HierarchicalBalancer::balance(
    const balance::DiffusionRequest& req, const pipeline::StageMap& start,
    std::span<const int> stage_to_rank) const {
  const int S = start.num_stages();
  DYNMO_CHECK(S > 0, "empty stage map");
  DYNMO_CHECK(S <= topo_->num_ranks(),
              S << " stages need " << S << " ranks, topology has "
                << topo_->num_ranks());
  std::vector<int> identity;
  if (stage_to_rank.empty()) {
    identity.resize(static_cast<std::size_t>(S));
    std::iota(identity.begin(), identity.end(), 0);
    stage_to_rank = identity;
  }
  DYNMO_CHECK(stage_to_rank.size() == static_cast<std::size_t>(S),
              "stage_to_rank covers " << stage_to_rank.size()
                                      << " stages, map has " << S);

  // Per-stage capacity: request override > topology speeds > uniform.
  std::vector<double> cap(static_cast<std::size_t>(S), 1.0);
  if (!req.capacities.empty()) {
    DYNMO_CHECK(req.capacities.size() == static_cast<std::size_t>(S),
                "capacity vector size mismatch");
    cap = req.capacities;
  } else if (cfg_.capacity_aware) {
    double max_speed = 0.0;
    for (int s = 0; s < S; ++s) {
      max_speed = std::max(
          max_speed,
          topo_->relative_speed(stage_to_rank[static_cast<std::size_t>(s)]));
    }
    for (int s = 0; s < S; ++s) {
      cap[static_cast<std::size_t>(s)] =
          topo_->relative_speed(stage_to_rank[static_cast<std::size_t>(s)]) /
          max_speed;
    }
  }

  const std::span<const double> w(req.weights);
  const auto groups = group_stages(*topo_, stage_to_rank);

  const auto normalized_imbalance = [&](const pipeline::StageMap& m) {
    auto loads = m.stage_loads(w);
    for (int s = 0; s < S; ++s) {
      loads[static_cast<std::size_t>(s)] /= cap[static_cast<std::size_t>(s)];
    }
    return load_imbalance(loads);
  };

  const double total_x = [&] {
    auto loads = start.stage_loads(w);
    double acc = 0.0;
    for (int s = 0; s < S; ++s) {
      acc += loads[static_cast<std::size_t>(s)] /
             cap[static_cast<std::size_t>(s)];
    }
    return acc;
  }();

  HierResult res;
  res.imbalance_before = normalized_imbalance(start);

  const balance::DiffusionBalancer diffusion;

  // Level 1: diffusion within each node's run of stages.  The group's
  // layer range is fixed; only NVLink-priced moves happen here.
  const auto intra_pass = [&](const pipeline::StageMap& m, bool& converged) {
    std::vector<std::size_t> bounds = m.boundaries();
    for (const StageGroup& g : groups) {
      if (g.size() <= 1) continue;
      const std::size_t lo = m.stage_begin(g.stage_begin);
      const std::size_t hi = m.stage_end(g.stage_end - 1);
      if (hi - lo <= 1) continue;  // nothing to exchange
      balance::DiffusionRequest sub;
      sub.weights = slice(w, lo, hi);
      sub.memory_bytes = slice(req.memory_bytes, lo, hi);
      sub.capacities = slice(cap, static_cast<std::size_t>(g.stage_begin),
                             static_cast<std::size_t>(g.stage_end));
      sub.mem_capacity = req.mem_capacity;
      sub.max_rounds = req.max_rounds;
      if (req.gamma > 0.0) {
        // Split γ by the group's share of the capacity-normalized load —
        // the units φ and γ are measured in.
        const auto loads = m.stage_loads(w);
        double group_x = 0.0;
        for (int s = g.stage_begin; s < g.stage_end; ++s) {
          group_x += loads[static_cast<std::size_t>(s)] /
                     cap[static_cast<std::size_t>(s)];
        }
        sub.gamma = req.gamma * (total_x > 0.0 ? group_x / total_x : 1.0);
      }
      std::vector<std::size_t> sub_bounds(
          m.boundaries().begin() + g.stage_begin,
          m.boundaries().begin() + g.stage_end + 1);
      for (auto& b : sub_bounds) b -= lo;
      auto seed = pipeline::StageMap::from_boundaries(std::move(sub_bounds));
      // Intra-node moves ride NVLink, so extra local movement is cheap:
      // seed with the greedy prefix split when it has the lower bottleneck
      // (diffusion's best-map tracking only improves on its own start).
      // Skip under memory pressure or per-GPU capacity skew, where the
      // greedy split is blind to the constraints diffusion enforces.
      const bool uniform_caps =
          std::all_of(sub.capacities.begin(), sub.capacities.end(),
                      [&](double c) { return c == sub.capacities.front(); });
      if (req.mem_capacity <= 0.0 && uniform_caps) {
        const auto greedy =
            pipeline::StageMap::greedy_by_weight(sub.weights, g.size());
        const auto bn = [&](const pipeline::StageMap& sm) {
          const auto loads = sm.stage_loads(sub.weights);
          return *std::max_element(loads.begin(), loads.end());
        };
        if (bn(greedy) < bn(seed)) seed = greedy;
      }
      const auto sub_res = diffusion.balance(sub, seed);
      res.rounds += sub_res.rounds;
      converged = converged && sub_res.converged;
      for (int s = g.stage_begin; s <= g.stage_end; ++s) {
        bounds[static_cast<std::size_t>(s)] =
            lo + sub_res.map.boundaries()[static_cast<std::size_t>(
                     s - g.stage_begin)];
      }
    }
    return pipeline::StageMap::from_boundaries(std::move(bounds));
  };

  bool converged = true;
  pipeline::StageMap map = intra_pass(start, converged);
  res.imbalance_after_intra = normalized_imbalance(map);

  // Intra-node moves can never change a node's total load, so the gap
  // that justifies paying inter-node prices is the imbalance of the
  // capacity-normalized *node* aggregates.
  const double node_gap = [&] {
    const auto loads = map.stage_loads(w);
    std::vector<double> node_x;
    node_x.reserve(groups.size());
    for (const StageGroup& g : groups) {
      double load = 0.0;
      double node_cap = 0.0;
      for (int s = g.stage_begin; s < g.stage_end; ++s) {
        load += loads[static_cast<std::size_t>(s)];
        node_cap += cap[static_cast<std::size_t>(s)];
      }
      node_x.push_back(load / node_cap);
    }
    return load_imbalance(node_x);
  }();

  if (groups.size() > 1 && node_gap > cfg_.inter_node_trigger) {
    // Level 2: same protocol, one super-stage per node, capacity = the
    // node's aggregate throughput.  Only the node-boundary cuts move.
    balance::DiffusionRequest super;
    super.weights = req.weights;
    super.memory_bytes = req.memory_bytes;
    super.max_rounds = req.max_rounds;
    super.gamma = req.gamma;
    // Per-node memory cap: a node absorbs up to its stage count's worth.
    if (req.mem_capacity > 0.0) {
      int min_size = groups.front().size();
      for (const StageGroup& g : groups) min_size = std::min(min_size, g.size());
      super.mem_capacity = req.mem_capacity * min_size;
    }
    std::vector<std::size_t> super_bounds;
    super_bounds.reserve(groups.size() + 1);
    for (const StageGroup& g : groups) {
      super_bounds.push_back(map.stage_begin(g.stage_begin));
      double node_cap = 0.0;
      for (int s = g.stage_begin; s < g.stage_end; ++s) {
        node_cap += cap[static_cast<std::size_t>(s)];
      }
      super.capacities.push_back(node_cap);
    }
    super_bounds.push_back(map.num_layers());
    const auto super_res = diffusion.balance(
        super, pipeline::StageMap::from_boundaries(std::move(super_bounds)));
    res.rounds += super_res.rounds;
    converged = converged && super_res.converged;

    // Re-split each node's *shifted* layer range over its stages, then
    // polish with another intra pass.  Nodes whose range did not move keep
    // their current (already intra-polished) cuts — re-splitting them from
    // scratch would churn layers for no balance gain.
    std::vector<std::size_t> bounds(static_cast<std::size_t>(S) + 1, 0);
    bounds.back() = map.num_layers();
    for (std::size_t gi = 0; gi < groups.size(); ++gi) {
      const StageGroup& g = groups[gi];
      const std::size_t lo =
          super_res.map.stage_begin(static_cast<int>(gi));
      const std::size_t hi = super_res.map.stage_end(static_cast<int>(gi));
      std::vector<std::size_t> sub_bounds;
      if (hi == lo) {
        sub_bounds.assign(static_cast<std::size_t>(g.size()) + 1, 0);
      } else if (lo == map.stage_begin(g.stage_begin) &&
                 hi == map.stage_end(g.stage_end - 1)) {
        sub_bounds.assign(
            map.boundaries().begin() + g.stage_begin,
            map.boundaries().begin() + g.stage_end + 1);
        for (auto& b : sub_bounds) b -= lo;
      } else {
        // Partition (not greedy) so the re-split seed respects the
        // per-stage memory cap; the intra polish only blocks *new*
        // violations, it cannot repair an infeasible seed.
        balance::PartitionRequest part;
        part.weights = slice(w, lo, hi);
        part.memory_bytes = slice(req.memory_bytes, lo, hi);
        part.mem_capacity = req.mem_capacity;
        part.num_stages = g.size();
        sub_bounds =
            balance::PartitionBalancer{}.balance(part).map.boundaries();
      }
      for (int s = g.stage_begin; s <= g.stage_end; ++s) {
        bounds[static_cast<std::size_t>(s)] =
            lo + sub_bounds[static_cast<std::size_t>(s - g.stage_begin)];
      }
    }
    bool inter_converged = converged;
    const pipeline::StageMap inter_map = intra_pass(
        pipeline::StageMap::from_boundaries(std::move(bounds)),
        inter_converged);

    // Inter-node moves must pay for themselves: adopt the level-2 result
    // only when it beats the intra-only bottleneck by the configured
    // margin (capacity-normalized max load — what gates the pipeline).
    const auto normalized_bottleneck = [&](const pipeline::StageMap& m) {
      auto loads = m.stage_loads(w);
      double worst = 0.0;
      for (int s = 0; s < S; ++s) {
        worst = std::max(worst, loads[static_cast<std::size_t>(s)] /
                                    cap[static_cast<std::size_t>(s)]);
      }
      return worst;
    };
    // Each bottleneck is an O(L + S) rescan — evaluate the two maps once
    // and reuse (pure function of (map, w, cap), so values are identical
    // to re-evaluating at each use).
    const double nb_intra = normalized_bottleneck(map);
    const double nb_inter = normalized_bottleneck(inter_map);
    if (nb_inter < nb_intra * (1.0 - cfg_.inter_node_gain)) {
      // Payoff window: the inter map's bottleneck gain (per iteration, in
      // the weights' units — seconds under time balancing) must also cover
      // the *extra* exposed transfer cost it pays over the intra-only map,
      // both plans priced from `start` over the topology's actual links.
      bool pays_off = true;
      if (cfg_.payoff_window_iters > 0.0 &&
          req.memory_bytes.size() == start.num_layers()) {
        const double gain = nb_intra - nb_inter;
        const auto to_inter =
            balance::plan_migration(start, inter_map, req.memory_bytes);
        const auto to_intra =
            balance::plan_migration(start, map, req.memory_bytes);
        res.inter_exposed_cost_s =
            std::max(0.0,
                     topo_migration_time(to_inter, *topo_, stage_to_rank) -
                         topo_migration_time(to_intra, *topo_,
                                             stage_to_rank)) *
            cfg_.migration_cost_multiplier;
        if (gain * cfg_.payoff_window_iters < res.inter_exposed_cost_s) {
          pays_off = false;
          res.inter_rejected_by_payoff = true;
        }
      }
      if (pays_off) {
        res.used_inter_node = true;
        converged = inter_converged;
        map = inter_map;
      }
    }
  }

  res.imbalance_after = normalized_imbalance(map);
  res.converged = converged;

  // Net per-layer moves, classified by whether they cross a node boundary.
  for (std::size_t l = 0; l < start.num_layers(); ++l) {
    const int src = start.stage_of(l);
    const int dst = map.stage_of(l);
    if (src == dst) continue;
    const int src_node =
        topo_->node_of(stage_to_rank[static_cast<std::size_t>(src)]);
    const int dst_node =
        topo_->node_of(stage_to_rank[static_cast<std::size_t>(dst)]);
    if (src_node == dst_node) {
      ++res.intra_node_moves;
    } else {
      ++res.inter_node_moves;
    }
  }
  res.map = std::move(map);
  return res;
}

MigrationSplit classify_migration(const balance::MigrationPlan& plan,
                                  const Topology& topo,
                                  std::span<const int> stage_to_rank) {
  MigrationSplit split;
  for (const auto& t : plan.transfers) {
    const int src = stage_to_rank.empty()
                        ? t.src_stage
                        : stage_to_rank[static_cast<std::size_t>(t.src_stage)];
    const int dst = stage_to_rank.empty()
                        ? t.dst_stage
                        : stage_to_rank[static_cast<std::size_t>(t.dst_stage)];
    if (topo.same_node(src, dst)) {
      split.intra_node_bytes += t.bytes;
    } else {
      split.inter_node_bytes += t.bytes;
    }
  }
  return split;
}

}  // namespace dynmo::cluster
