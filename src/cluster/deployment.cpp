#include "cluster/deployment.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <mutex>
#include <numeric>
#include <optional>
#include <sstream>
#include <utility>

#include "core/error.hpp"

namespace dynmo::cluster {

namespace {

void check_grid_ranks(const Topology& topo, std::span<const int> grid) {
  std::vector<bool> used(static_cast<std::size_t>(topo.num_ranks()), false);
  for (int r : grid) {
    DYNMO_CHECK(r >= 0 && r < topo.num_ranks(),
                "placement rank " << r << " outside the topology's "
                                  << topo.num_ranks() << " ranks");
    DYNMO_CHECK(!used[static_cast<std::size_t>(r)],
                "rank " << r << " hosts two grid cells");
    used[static_cast<std::size_t>(r)] = true;
  }
}

}  // namespace

/// Memoization state for the const lookups.  The topology and placement
/// are immutable, so entries never invalidate; the mutex keeps the cache
/// safe when a deployment is shared across runtime threads.
struct Deployment::Caches {
  std::mutex mu;
  std::map<std::pair<int, int>, comm::LinkParams> link;
  std::map<std::vector<int>, comm::RankGroup> group;
  std::optional<std::vector<double>> stage_caps;
  std::uint64_t lookups = 0;
  std::uint64_t resolver_calls = 0;
};

Deployment::Deployment(std::shared_ptr<const Topology> topo, int data_parallel,
                       std::vector<int> grid_to_rank)
    : topo_(std::move(topo)),
      dp_(data_parallel),
      pp_(static_cast<int>(grid_to_rank.size()) / data_parallel),
      grid_(std::move(grid_to_rank)),
      caches_(std::make_shared<Caches>()) {}

Deployment Deployment::make(Topology topo, std::vector<int> stage_to_rank) {
  return make_grid(std::move(topo), 1, std::move(stage_to_rank));
}

Deployment Deployment::make_grid(Topology topo, int data_parallel,
                                 std::vector<int> grid_to_rank) {
  DYNMO_CHECK(data_parallel > 0, "a grid needs at least one DP replica");
  DYNMO_CHECK(!grid_to_rank.empty(), "a deployment needs at least one stage");
  DYNMO_CHECK(grid_to_rank.size() % static_cast<std::size_t>(data_parallel) ==
                  0,
              "grid of " << grid_to_rank.size() << " cells does not divide "
                         << "into " << data_parallel << " replicas");
  check_grid_ranks(topo, grid_to_rank);
  return Deployment(std::make_shared<const Topology>(std::move(topo)),
                    data_parallel, std::move(grid_to_rank));
}

Deployment Deployment::make_topology_aware(Topology topo, int num_stages,
                                           std::size_t activation_bytes) {
  DYNMO_CHECK(num_stages > 0, "a deployment needs at least one stage");
  DYNMO_CHECK(topo.num_ranks() >= num_stages,
              "topology has " << topo.num_ranks() << " ranks, deployment "
                              << "needs " << num_stages);
  auto placement =
      place_topology_aware(topo, num_stages, activation_bytes);
  return make(std::move(topo), std::move(placement.stage_to_rank));
}

Deployment Deployment::make_linear(Topology topo, int num_stages) {
  DYNMO_CHECK(num_stages > 0, "a deployment needs at least one stage");
  DYNMO_CHECK(topo.num_ranks() >= num_stages,
              "topology has " << topo.num_ranks() << " ranks, deployment "
                              << "needs " << num_stages);
  std::vector<int> s2r(static_cast<std::size_t>(num_stages));
  std::iota(s2r.begin(), s2r.end(), 0);
  return make(std::move(topo), std::move(s2r));
}

Deployment Deployment::make_grid_topology_aware(Topology topo,
                                                int data_parallel,
                                                int num_stages,
                                                GridOrientation orientation,
                                                std::size_t activation_bytes) {
  auto placement = place_grid(topo, data_parallel, num_stages, orientation,
                              activation_bytes);
  return make_grid(std::move(topo), data_parallel,
                   std::move(placement.grid_to_rank));
}

int Deployment::rank(int dp, int stage) const {
  DYNMO_CHECK(dp >= 0 && dp < dp_,
              "bad DP replica " << dp << " (deployment has " << dp_ << ")");
  DYNMO_CHECK(stage >= 0 && stage < pp_,
              "bad stage " << stage << " (deployment has " << pp_ << ")");
  return grid_[static_cast<std::size_t>(dp * pp_ + stage)];
}

std::span<const int> Deployment::stage_to_rank(int dp) const {
  DYNMO_CHECK(dp >= 0 && dp < dp_,
              "bad DP replica " << dp << " (deployment has " << dp_ << ")");
  return std::span<const int>(grid_).subspan(
      static_cast<std::size_t>(dp * pp_), static_cast<std::size_t>(pp_));
}

Deployment Deployment::replica(int dp) const {
  const auto view = stage_to_rank(dp);
  return Deployment(topo_, 1, std::vector<int>(view.begin(), view.end()));
}

Deployment Deployment::prefix(int num_stages) const {
  DYNMO_CHECK(num_stages > 0 && num_stages <= pp_,
              "prefix of " << num_stages << " stages from a " << pp_
                           << "-stage deployment");
  std::vector<int> grid;
  grid.reserve(static_cast<std::size_t>(dp_ * num_stages));
  for (int d = 0; d < dp_; ++d) {
    const auto view = stage_to_rank(d);
    grid.insert(grid.end(), view.begin(),
                view.begin() + static_cast<std::ptrdiff_t>(num_stages));
  }
  return Deployment(topo_, dp_, std::move(grid));
}

const hw::GpuSpec& Deployment::gpu(int stage) const {
  return topo_->gpu(rank(stage));
}

const hw::GpuSpec& Deployment::gpu(int dp, int stage) const {
  return topo_->gpu(rank(dp, stage));
}

int Deployment::node(int stage) const { return topo_->node_of(rank(stage)); }

comm::LinkParams Deployment::link_full_rescan(int stage_a,
                                              int stage_b) const {
  const int a = rank(stage_a);
  const int b = rank(stage_b);
  if (a == b) return {0.0, std::numeric_limits<double>::infinity()};
  const PathInfo p = topo_->best_path(a, b);
  DYNMO_CHECK(p.reachable(),
              "stages " << stage_a << " and " << stage_b
                        << " are hosted on disconnected ranks");
  return {p.latency_s, p.bandwidth_bytes_s};
}

comm::LinkParams Deployment::link(int stage_a, int stage_b) const {
  auto& c = *caches_;
  std::lock_guard<std::mutex> lk(c.mu);
  ++c.lookups;
  const auto key = std::make_pair(stage_a, stage_b);
  if (const auto it = c.link.find(key); it != c.link.end()) {
    return it->second;
  }
  ++c.resolver_calls;
  const comm::LinkParams lp = link_full_rescan(stage_a, stage_b);
  c.link.emplace(key, lp);
  return lp;
}

comm::RankGroup Deployment::group(std::span<const int> ranks) const {
  auto& c = *caches_;
  std::lock_guard<std::mutex> lk(c.mu);
  ++c.lookups;
  std::vector<int> key(ranks.begin(), ranks.end());
  if (const auto it = c.group.find(key); it != c.group.end()) {
    return it->second;
  }
  ++c.resolver_calls;
  const comm::RankGroup g = group_full_rescan(ranks);
  c.group.emplace(std::move(key), g);
  return g;
}

comm::RankGroup Deployment::group_full_rescan(
    std::span<const int> ranks) const {
  comm::RankGroup g;
  g.intra = default_link(LinkType::NvLink).params();
  g.inter = default_link(LinkType::InfiniBand).params();
  std::map<int, std::vector<int>> by_node;  // ordered → deterministic
  for (int r : ranks) by_node[topo_->node_of(r)].push_back(r);
  g.node_sizes.reserve(by_node.size());
  bool have_intra = false;
  for (const auto& [n, members] : by_node) {
    g.node_sizes.push_back(static_cast<int>(members.size()));
    if (members.size() > 1) {
      const comm::LinkParams lp = topo_->node(n).intra.params();
      if (!have_intra || link_ref_time(lp) > link_ref_time(g.intra)) {
        g.intra = lp;
        have_intra = true;
      }
    }
  }
  bool have_inter = false;
  for (auto a = by_node.begin(); a != by_node.end(); ++a) {
    for (auto b = std::next(a); b != by_node.end(); ++b) {
      const PathInfo p =
          topo_->best_path(a->second.front(), b->second.front());
      DYNMO_CHECK(p.reachable(), "group spans disconnected nodes");
      const comm::LinkParams lp{p.latency_s, p.bandwidth_bytes_s};
      if (!have_inter || link_ref_time(lp) > link_ref_time(g.inter)) {
        g.inter = lp;
        have_inter = true;
      }
    }
  }
  return g;
}

comm::RankGroup Deployment::stage_group() const {
  return group(stage_to_rank());
}

comm::RankGroup Deployment::dp_group(int stage) const {
  std::vector<int> peers;
  peers.reserve(static_cast<std::size_t>(dp_));
  for (int d = 0; d < dp_; ++d) peers.push_back(rank(d, stage));
  return group(peers);
}

std::vector<double> Deployment::stage_capacities() const {
  auto& c = *caches_;
  std::lock_guard<std::mutex> lk(c.mu);
  ++c.lookups;
  if (!c.stage_caps) {
    ++c.resolver_calls;
    c.stage_caps = stage_capacities_full_rescan();
  }
  return *c.stage_caps;
}

Deployment::CacheStats Deployment::cache_stats() const {
  auto& c = *caches_;
  std::lock_guard<std::mutex> lk(c.mu);
  return CacheStats{c.lookups, c.resolver_calls};
}

std::vector<double> Deployment::stage_capacities_full_rescan() const {
  const auto s2r = stage_to_rank();
  std::vector<double> cap(s2r.size(), 1.0);
  double max_speed = 0.0;
  for (int r : s2r) {
    max_speed = std::max(max_speed, topo_->relative_speed(r));
  }
  if (max_speed <= 0.0) return cap;
  for (std::size_t s = 0; s < s2r.size(); ++s) {
    cap[s] = topo_->relative_speed(s2r[s]) / max_speed;
  }
  return cap;
}

double Deployment::min_mem_capacity() const {
  double cap = std::numeric_limits<double>::infinity();
  for (int r : grid_) {
    cap = std::min(cap, topo_->gpu(r).mem_capacity);
  }
  return cap;
}

bool Deployment::heterogeneous() const {
  const auto cap = stage_capacities();
  return std::any_of(cap.begin(), cap.end(),
                     [&](double c) { return c != cap.front(); });
}

comm::CostModel Deployment::make_cost_model(comm::CostModelConfig base) const {
  return topo_->make_cost_model(base);
}

std::string Deployment::to_string() const {
  std::ostringstream os;
  if (dp_ > 1) os << dp_ << "x";
  os << pp_ << " stages on " << topo_->to_string() << "; placement";
  for (int r : grid_) os << " " << r;
  return os.str();
}

}  // namespace dynmo::cluster
