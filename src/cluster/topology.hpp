// Hierarchical cluster topology: nodes of GPUs joined by typed links.
//
// The flat comm::CostModel charges every cross-node transfer the same
// InfiniBand tariff; real clusters are a *graph* — NVLink cliques inside
// each node, rail-optimized InfiniBand (or plain Ethernet) between nodes,
// PCIe where a GPU reaches a NIC through the host.  Topology captures that
// graph declaratively: add nodes (each a set of hw::GpuSpec with an
// intra-node link), add inter-node links, then ask for the shortest-path
// effective bandwidth/latency between any two global ranks.  The factory
// presets mirror common testbeds; make_cost_model() snapshots the
// all-pairs effective links into a comm::CostModel so every existing
// consumer (MigrationPlan, Rebalancer, TrainingSession) prices transfers
// by the actual link they would cross.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "comm/cost_model.hpp"
#include "hw/gpu_spec.hpp"

namespace dynmo::cluster {

/// Physical interconnect class of one edge in the cluster graph — the
/// same taxonomy comm::CostModel prices by, aliased so the two layers
/// cannot drift apart.
using LinkType = comm::LinkTier;

const char* to_string(LinkType t);

struct LinkSpec {
  LinkType type = LinkType::Ethernet;
  double bandwidth_bytes_s = 0.0;  ///< effective unidirectional bandwidth
  double latency_s = 0.0;          ///< one-way message latency

  comm::LinkParams params() const { return {latency_s, bandwidth_bytes_s}; }
};

/// Datasheet-flavored defaults per link class (effective, not peak).
LinkSpec default_link(LinkType t);

struct NodeDesc {
  std::vector<hw::GpuSpec> gpus;
  /// Link joining every GPU pair inside the node (NVSwitch-style clique).
  LinkSpec intra = default_link(LinkType::NvLink);
};

/// A route between two ranks: the rank sequence, the bottleneck bandwidth,
/// and the summed per-hop latency.
struct PathInfo {
  std::vector<int> hops;             ///< rank sequence incl. both endpoints
  double bandwidth_bytes_s = 0.0;    ///< min over traversed links
  double latency_s = 0.0;            ///< sum over traversed links

  bool reachable() const { return !hops.empty(); }
  /// Cut-through transfer model: pay every hop's latency, stream the
  /// payload at the bottleneck bandwidth.
  double time_s(std::size_t bytes) const {
    return latency_s + static_cast<double>(bytes) / bandwidth_bytes_s;
  }
};

class Topology {
 public:
  Topology() = default;

  // ---------------------------------------------------------- factories
  /// n_nodes identical nodes, intra-node clique + rail-optimized inter-node
  /// links (local rank i of every node joined to local rank i of every
  /// other node — transfers between different rails hop over the clique).
  static Topology make_homogeneous(int n_nodes, int gpus_per_node,
                                   hw::GpuSpec gpu, LinkSpec intra,
                                   LinkSpec inter);
  /// DGX-A100 pods: 8x A100-SXM4, NVLink3 clique, HDR InfiniBand rails.
  static Topology make_dgx_a100(int n_nodes);
  /// DGX-H100 pods: 8x H100-SXM5, NVLink4 clique, NDR InfiniBand rails.
  static Topology make_dgx_h100(int n_nodes);
  /// Arbitrary node mix joined by `inter` rails (rails span the smallest
  /// node; every node's remaining GPUs reach other nodes through their
  /// local clique).
  static Topology make_hetero(std::vector<NodeDesc> nodes, LinkSpec inter);

  // ----------------------------------------------------------- building
  /// Append a node; its GPUs get the next contiguous global ranks and the
  /// intra-node clique links are added.  Returns the node index.
  int add_node(NodeDesc node);
  /// Add an undirected typed link between two global ranks.
  void add_link(int rank_a, int rank_b, LinkSpec link);

  // ------------------------------------------------------ introspection
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_ranks() const { return static_cast<int>(rank_node_.size()); }
  int node_of(int rank) const;
  int local_rank(int rank) const;
  int node_size(int node) const;
  int first_rank(int node) const;
  bool same_node(int rank_a, int rank_b) const {
    return node_of(rank_a) == node_of(rank_b);
  }
  const NodeDesc& node(int n) const;
  const hw::GpuSpec& gpu(int rank) const;
  /// Relative compute throughput of a rank (achievable GEMM FLOP/s);
  /// the capacity weight heterogeneous balancing normalizes by.
  double relative_speed(int rank) const;

  // ------------------------------------------------------------ queries
  /// Best route under store-and-forward Dijkstra for a reference-sized
  /// message (64 MiB — a typical transformer layer's migration payload),
  /// reported with the cut-through bandwidth/latency of PathInfo.
  PathInfo best_path(int rank_a, int rank_b) const;
  /// All best routes from one source (one Dijkstra instead of R); entry
  /// [rank_a] is the trivial self-path.
  std::vector<PathInfo> best_paths_from(int rank_a) const;
  /// Bottleneck bandwidth of best_path (0 if unreachable; +inf for a rank
  /// to itself).
  double effective_bandwidth(int rank_a, int rank_b) const;
  double p2p_time(int rank_a, int rank_b, std::size_t bytes) const;

  // ----------------------------------------------------------- adapters
  /// CostModel whose p2p path prices every rank pair by this topology's
  /// shortest-path effective link and whose node membership (tier(),
  /// group(), hierarchical collectives) is this topology's — the
  /// `gpus_per_node` fallback in `base` is never consulted.  All-pairs
  /// links and the rank→node table are snapshotted, so the CostModel stays
  /// valid after the Topology dies.  `base` supplies the tier parameters.
  comm::CostModel make_cost_model(comm::CostModelConfig base = {}) const;

  std::string to_string() const;

 private:
  struct Edge {
    int peer;
    LinkSpec link;
  };

  PathInfo path_from_chain(int rank_a, int rank_b,
                           std::span<const int> prev) const;

  int rank_count_ = 0;
  std::vector<NodeDesc> nodes_;
  std::vector<int> rank_node_;                ///< global rank → node index
  std::vector<int> node_first_rank_;          ///< node index → first rank
  std::vector<std::vector<Edge>> adjacency_;  ///< global rank → edges
};

}  // namespace dynmo::cluster
