// Small work-stealing-free thread pool with a parallel_for helper.
//
// Used by the tensor kernels (gemm/spmm) to get real multi-core execution
// in the threaded runtime, in the spirit of an OpenMP `parallel for` with
// static scheduling.  The pool is created once and reused; parallel_for
// blocks until all chunks complete (structured parallelism, CP.22-friendly:
// no detached work escapes the call).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dynmo {

class ThreadPool {
 public:
  /// `threads == 0` → hardware_concurrency.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Run fn(begin..end) split into `size()` contiguous chunks; blocks until
  /// every chunk is done.  fn receives [chunk_begin, chunk_end).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  /// Shared process-wide pool (sized to hardware concurrency).
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> tasks_;
  bool stop_ = false;
};

}  // namespace dynmo
