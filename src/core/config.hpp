// Lightweight key=value configuration store.
//
// Lets examples and downstream users drive sessions from config files
// (one `key = value` per line, '#' comments) without adding a dependency.
// Typed getters validate on access; unknown keys are detectable so typos
// fail loudly.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dynmo {

class Config {
 public:
  Config() = default;

  /// Parse "key = value" lines; '#' starts a comment; blank lines ignored.
  static Config parse(const std::string& text);
  /// Load from a file; throws dynmo::Error if unreadable.
  static Config load(const std::string& path);

  void set(const std::string& key, const std::string& value);

  bool contains(const std::string& key) const;
  /// Typed getters: throw dynmo::Error on missing key or bad format.
  std::string get_string(const std::string& key) const;
  std::int64_t get_int(const std::string& key) const;
  double get_double(const std::string& key) const;
  bool get_bool(const std::string& key) const;
  /// With-default variants never throw on missing keys.
  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Keys present in the config but not in `known` (typo detection).
  std::vector<std::string> unknown_keys(
      const std::vector<std::string>& known) const;

  std::size_t size() const { return values_.size(); }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace dynmo
