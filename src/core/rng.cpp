#include "core/rng.hpp"

#include <cmath>
#include <numbers>

#include "core/error.hpp"

namespace dynmo {

double Rng::normal() {
  // Box–Muller; rejects u1 == 0 to avoid log(0).
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

std::uint64_t Rng::zipf(std::uint64_t n, double s) {
  DYNMO_CHECK(n > 0, "zipf over empty support");
  if (s <= 0.0) return uniform_int(n);
  // Inverse-CDF by rejection (Devroye).  Fine for the n (<= few thousand
  // experts/buckets) we use; exactness matters more than speed here.
  const double b = std::pow(2.0, s - 1.0);
  for (;;) {
    const double u = uniform();
    const double v = uniform();
    const double x = std::floor(std::pow(u, -1.0 / (s - 1.0 + 1e-12)));
    if (x < 1.0 || x > static_cast<double>(n)) continue;
    const double t = std::pow(1.0 + 1.0 / x, s - 1.0);
    if (v * x * (t - 1.0) / (b - 1.0) <= t / b) {
      return static_cast<std::uint64_t>(x) - 1;
    }
  }
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  DYNMO_CHECK(!weights.empty(), "categorical over empty weights");
  double total = 0.0;
  for (double w : weights) total += w;
  DYNMO_CHECK(total > 0.0, "categorical weights sum to zero");
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace dynmo
