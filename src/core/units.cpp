#include "core/units.hpp"

#include <array>
#include <cmath>
#include <cstdio>
#include <span>

namespace dynmo {

namespace {
std::string format_scaled(double value, double base,
                          std::span<const char* const> suffixes) {
  std::size_t i = 0;
  double v = value;
  while (std::abs(v) >= base && i + 1 < suffixes.size()) {
    v /= base;
    ++i;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3g %s", v, suffixes[i]);
  return buf;
}
}  // namespace

std::string format_bytes(double bytes) {
  static constexpr std::array<const char*, 5> kSuffix = {"B", "KiB", "MiB",
                                                         "GiB", "TiB"};
  return format_scaled(bytes, 1024.0, kSuffix);
}

std::string format_seconds(double seconds) {
  char buf[64];
  if (seconds < 1e-6) {
    std::snprintf(buf, sizeof(buf), "%.3g ns", seconds * 1e9);
  } else if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.3g us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3g ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3g s", seconds);
  }
  return buf;
}

std::string format_rate(double per_second, const char* unit) {
  char buf[64];
  if (per_second >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.3gM %s/s", per_second / 1e6, unit);
  } else if (per_second >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.3gk %s/s", per_second / 1e3, unit);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3g %s/s", per_second, unit);
  }
  return buf;
}

}  // namespace dynmo
