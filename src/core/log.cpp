#include "core/log.hpp"

#include <chrono>
#include <cstdio>
#include <ctime>

namespace dynmo {

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_sink(Sink sink) {
  std::scoped_lock lock(mu_);
  sink_ = std::move(sink);
}

void Logger::write(LogLevel level, std::string_view msg) {
  // ISO-8601 UTC with millisecond precision, e.g. 2026-02-14T09:31:07.042Z.
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
#if defined(_WIN32)
  gmtime_s(&tm, &secs);
#else
  gmtime_r(&secs, &tm);
#endif
  char stamp[32];
  std::snprintf(stamp, sizeof(stamp), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(ms));

  std::scoped_lock lock(mu_);
  if (sink_) {
    char line[64];
    const int n = std::snprintf(line, sizeof(line), "%s [dynmo %-5s] ",
                                stamp, to_string(level));
    std::string full(line, static_cast<std::size_t>(n));
    full.append(msg);
    sink_(level, full);
    return;
  }
  std::fprintf(stderr, "%s [dynmo %-5s] %.*s\n", stamp, to_string(level),
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace dynmo
