#include "core/log.hpp"

#include <cstdio>

namespace dynmo {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, std::string_view msg) {
  static constexpr const char* kNames[] = {"TRACE", "DEBUG", "INFO",
                                           "WARN", "ERROR", "OFF"};
  std::scoped_lock lock(mu_);
  std::fprintf(stderr, "[dynmo %-5s] %.*s\n",
               kNames[static_cast<int>(level)], static_cast<int>(msg.size()),
               msg.data());
}

}  // namespace dynmo
