#include "core/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace dynmo {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double sum_of(std::span<const double> xs) {
  double s = 0.0;
  for (double x : xs) s += x;
  return s;
}

double mean_of(std::span<const double> xs) {
  return xs.empty() ? 0.0 : sum_of(xs) / static_cast<double>(xs.size());
}

double max_of(std::span<const double> xs) {
  double m = xs.empty() ? 0.0 : xs.front();
  for (double x : xs) m = std::max(m, x);
  return m;
}

double min_of(std::span<const double> xs) {
  double m = xs.empty() ? 0.0 : xs.front();
  for (double x : xs) m = std::min(m, x);
  return m;
}

double stddev_of(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double mu = mean_of(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - mu) * (x - mu);
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

double percentile_of(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double idx = clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double load_imbalance(std::span<const double> loads) {
  if (loads.empty()) return 0.0;
  const double mu = mean_of(loads);
  if (mu <= 0.0) return 0.0;
  return (max_of(loads) - min_of(loads)) / mu;
}

double max_over_mean(std::span<const double> loads) {
  if (loads.empty()) return 1.0;
  const double mu = mean_of(loads);
  if (mu <= 0.0) return 1.0;
  return max_of(loads) / mu;
}

std::string ascii_histogram(std::span<const double> xs, int bins, int width) {
  std::ostringstream oss;
  if (xs.empty() || bins <= 0) return "(empty)";
  const double lo = min_of(xs);
  const double hi = max_of(xs);
  const double span = (hi > lo) ? (hi - lo) : 1.0;
  std::vector<std::size_t> counts(static_cast<std::size_t>(bins), 0);
  for (double x : xs) {
    auto b = static_cast<std::size_t>((x - lo) / span * bins);
    if (b >= counts.size()) b = counts.size() - 1;
    ++counts[b];
  }
  const std::size_t peak = *std::max_element(counts.begin(), counts.end());
  for (int b = 0; b < bins; ++b) {
    const double left = lo + span * b / bins;
    const auto bar = static_cast<int>(
        peak ? counts[static_cast<std::size_t>(b)] * static_cast<std::size_t>(width) / peak : 0);
    oss << "[" << left << ", " << left + span / bins << ") ";
    for (int i = 0; i < bar; ++i) oss << '#';
    oss << ' ' << counts[static_cast<std::size_t>(b)] << '\n';
  }
  return oss.str();
}

}  // namespace dynmo
