// Error handling primitives for DynMo.
//
// We follow the C++ Core Guidelines: exceptions for errors that cannot be
// handled locally (E.2), assertions for programming bugs.  DYNMO_CHECK is an
// always-on precondition check that throws dynmo::Error with file/line
// context; DYNMO_ASSERT compiles out in release builds.
#pragma once

#include <source_location>
#include <sstream>
#include <stdexcept>
#include <string>

namespace dynmo {

/// Base exception for all DynMo errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a worker's memory capacity would be exceeded.
class OutOfMemoryError : public Error {
 public:
  explicit OutOfMemoryError(const std::string& what) : Error(what) {}
};

/// Thrown on misuse of the communication layer (bad rank, dead channel...).
class CommError : public Error {
 public:
  explicit CommError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* expr, const std::string& msg,
                                      std::source_location loc);
}  // namespace detail

}  // namespace dynmo

/// Always-on invariant check.  `msg` may use stream syntax:
///   DYNMO_CHECK(rank < size, "rank " << rank << " out of range");
#define DYNMO_CHECK(expr, msg)                                             \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream dynmo_check_oss_;                                 \
      dynmo_check_oss_ << msg; /* NOLINT */                                \
      ::dynmo::detail::throw_check_failure(#expr, dynmo_check_oss_.str(),  \
                                           std::source_location::current()); \
    }                                                                      \
  } while (false)

#ifdef NDEBUG
#define DYNMO_ASSERT(expr, msg) ((void)0)
#else
#define DYNMO_ASSERT(expr, msg) DYNMO_CHECK(expr, msg)
#endif
