// Minimal leveled logger.  Thread-safe, writes to stderr.
//
// Usage:
//   DYNMO_LOG(Info) << "rebalanced " << n << " layers";
// The global level defaults to Warn so that library users are not spammed;
// examples and benches raise it explicitly.
#pragma once

#include <atomic>
#include <functional>
#include <mutex>
#include <sstream>
#include <string_view>

namespace dynmo {

enum class LogLevel : int { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

const char* to_string(LogLevel level);

class Logger {
 public:
  /// Receives every formatted line (timestamp + level prefix included,
  /// no trailing newline).  Called under the logger's mutex.
  using Sink = std::function<void(LogLevel, std::string_view line)>;

  static Logger& instance();

  void set_level(LogLevel level) { level_.store(static_cast<int>(level)); }
  LogLevel level() const { return static_cast<LogLevel>(level_.load()); }
  bool enabled(LogLevel level) const {
    return static_cast<int>(level) >= level_.load();
  }

  /// Redirect log lines to `sink` instead of stderr (tests capture output
  /// this way); an empty sink restores stderr.
  void set_sink(Sink sink);

  void write(LogLevel level, std::string_view msg);

 private:
  Logger() = default;
  std::atomic<int> level_{static_cast<int>(LogLevel::Warn)};
  std::mutex mu_;
  Sink sink_;
};

namespace detail {
/// Accumulates one log line and flushes it on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { Logger::instance().write(level_, oss_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    oss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream oss_;
};
}  // namespace detail

}  // namespace dynmo

#define DYNMO_LOG(level)                                        \
  if (!::dynmo::Logger::instance().enabled(::dynmo::LogLevel::level)) { \
  } else                                                        \
    ::dynmo::detail::LogLine(::dynmo::LogLevel::level)
