#include "core/error.hpp"

namespace dynmo::detail {

void throw_check_failure(const char* expr, const std::string& msg,
                         std::source_location loc) {
  std::ostringstream oss;
  oss << loc.file_name() << ':' << loc.line() << ": check failed: (" << expr
      << ')';
  if (!msg.empty()) oss << " — " << msg;
  throw Error(oss.str());
}

}  // namespace dynmo::detail
