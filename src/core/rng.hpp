// Deterministic random number generation.
//
// All stochastic behaviour in DynMo (token routing, exit decisions, hash
// bucket assignment, ...) flows through Rng so that every experiment is
// reproducible from a single seed.  The engine is xoshiro256**, seeded via
// SplitMix64 — fast, high quality, and trivially splittable so that each
// worker / layer / iteration can derive an independent stream.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace dynmo {

/// SplitMix64 step — used for seeding and for cheap stateless hashing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless 64-bit mix of up to three keys; used to derive substream seeds.
constexpr std::uint64_t hash_mix(std::uint64_t a, std::uint64_t b = 0,
                                 std::uint64_t c = 0) {
  std::uint64_t s = a;
  std::uint64_t h = splitmix64(s);
  s ^= b + 0x9e3779b97f4a7c15ULL;
  h ^= splitmix64(s);
  s ^= c + 0xd1b54a32d192ed03ULL;
  h ^= splitmix64(s);
  return h;
}

/// xoshiro256** engine with distribution helpers.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eedULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    origin_ = seed;
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  /// Independent substream derived from this seed and the given keys.
  Rng split(std::uint64_t k1, std::uint64_t k2 = 0, std::uint64_t k3 = 0) const {
    return Rng(hash_mix(s_[0] ^ s_[3], hash_mix(k1, k2, k3)));
  }

  /// Independent substream addressed by a stable stream id.  Unlike
  /// split(), fork() does not read the *current* engine state — it derives
  /// from the state as-constructed, so forking never advances this stream
  /// and two forks of the same id are identical regardless of how many
  /// draws happened in between.  Consumers that must not perturb an
  /// existing noise stream (e.g. fault::Injector alongside the session's
  /// measurement noise) fork their own stream instead of sharing one.
  Rng fork(std::uint64_t stream_id) const {
    return Rng(hash_mix(origin_, 0xf02cULL, stream_id));
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).  n must be > 0.
  std::uint64_t uniform_int(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded sampling.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = -n % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Box–Muller (no cached spare: keeps state trivial).
  double normal();
  /// Normal with the given mean / stddev.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }
  /// Log-normal such that the underlying normal is N(mu, sigma).
  double lognormal(double mu, double sigma);
  /// Zipf-distributed integer in [0, n) with exponent `s` (s=0 → uniform).
  /// Used to model skewed token→expert routing.
  std::uint64_t zipf(std::uint64_t n, double s);
  /// Bernoulli trial.
  bool bernoulli(double p) { return uniform() < p; }
  /// Sample from unnormalised weights; returns index.
  std::size_t categorical(const std::vector<double>& weights);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
  std::uint64_t origin_ = 0;  ///< seed as-constructed; basis for fork().
};

}  // namespace dynmo
