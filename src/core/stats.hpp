// Streaming and batch statistics helpers used by the profiler, the
// balancers, and the benchmark harnesses.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace dynmo {

/// Welford online mean/variance accumulator.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset() { *this = RunningStats{}; }

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< population variance
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch helpers over spans; all handle empty input by returning 0.
double mean_of(std::span<const double> xs);
double sum_of(std::span<const double> xs);
double max_of(std::span<const double> xs);
double min_of(std::span<const double> xs);
double stddev_of(std::span<const double> xs);
/// Linear-interpolated percentile, p in [0, 100].
double percentile_of(std::span<const double> xs, double p);

/// Relative load imbalance per paper Eq. (2):
///   (L_max − L_min) / mean(L).   0 when perfectly balanced or empty.
double load_imbalance(std::span<const double> loads);

/// max(L)/mean(L) − common alternative imbalance metric (≥ 1.0 − epsilon).
double max_over_mean(std::span<const double> loads);

/// Fixed-width text histogram, for example/bench output.
std::string ascii_histogram(std::span<const double> xs, int bins = 10,
                            int width = 40);

}  // namespace dynmo
