// Strongly-suggestive unit helpers.  DynMo deals in seconds, bytes, and
// FLOPs throughout; these constexpr helpers keep magic constants readable
// (e.g. `80 * GiB`, `989 * TFLOPS`).
#pragma once

#include <cstdint>
#include <string>

namespace dynmo {

inline constexpr double KiB = 1024.0;
inline constexpr double MiB = 1024.0 * KiB;
inline constexpr double GiB = 1024.0 * MiB;

inline constexpr double KB = 1e3;
inline constexpr double MB = 1e6;
inline constexpr double GB = 1e9;

inline constexpr double GFLOPS = 1e9;
inline constexpr double TFLOPS = 1e12;

inline constexpr double us = 1e-6;
inline constexpr double ms = 1e-3;

/// Pretty-print a byte count ("1.5 GiB").
std::string format_bytes(double bytes);
/// Pretty-print a duration in seconds ("3.2 ms").
std::string format_seconds(double seconds);
/// Pretty-print a rate ("4.2k tok/s").
std::string format_rate(double per_second, const char* unit);

}  // namespace dynmo
