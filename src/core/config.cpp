#include "core/config.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "core/error.hpp"

namespace dynmo {

namespace {
std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}
}  // namespace

Config Config::parse(const std::string& text) {
  Config cfg;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const std::string trimmed = trim(line);
    if (trimmed.empty()) continue;
    const auto eq = trimmed.find('=');
    DYNMO_CHECK(eq != std::string::npos,
                "config line " << lineno << " has no '=': " << trimmed);
    const std::string key = trim(trimmed.substr(0, eq));
    const std::string value = trim(trimmed.substr(eq + 1));
    DYNMO_CHECK(!key.empty(), "config line " << lineno << " has empty key");
    cfg.set(key, value);
  }
  return cfg;
}

Config Config::load(const std::string& path) {
  std::ifstream in(path);
  DYNMO_CHECK(in.good(), "cannot open config file " << path);
  std::ostringstream oss;
  oss << in.rdbuf();
  return parse(oss.str());
}

void Config::set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

bool Config::contains(const std::string& key) const {
  return values_.count(key) != 0;
}

std::string Config::get_string(const std::string& key) const {
  const auto it = values_.find(key);
  DYNMO_CHECK(it != values_.end(), "missing config key '" << key << '\'');
  return it->second;
}

std::int64_t Config::get_int(const std::string& key) const {
  const auto s = get_string(key);
  try {
    std::size_t pos = 0;
    const auto v = std::stoll(s, &pos);
    DYNMO_CHECK(pos == s.size(), "trailing junk in int '" << s << '\'');
    return v;
  } catch (const std::logic_error&) {
    throw Error("config key '" + key + "' is not an integer: " + s);
  }
}

double Config::get_double(const std::string& key) const {
  const auto s = get_string(key);
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    DYNMO_CHECK(pos == s.size(), "trailing junk in double '" << s << '\'');
    return v;
  } catch (const std::logic_error&) {
    throw Error("config key '" + key + "' is not a number: " + s);
  }
}

bool Config::get_bool(const std::string& key) const {
  std::string s = get_string(key);
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (s == "true" || s == "1" || s == "yes" || s == "on") return true;
  if (s == "false" || s == "0" || s == "no" || s == "off") return false;
  throw Error("config key '" + key + "' is not a bool: " + s);
}

std::string Config::get_string(const std::string& key,
                               const std::string& fallback) const {
  return contains(key) ? get_string(key) : fallback;
}

std::int64_t Config::get_int(const std::string& key,
                             std::int64_t fallback) const {
  return contains(key) ? get_int(key) : fallback;
}

double Config::get_double(const std::string& key, double fallback) const {
  return contains(key) ? get_double(key) : fallback;
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  return contains(key) ? get_bool(key) : fallback;
}

std::vector<std::string> Config::unknown_keys(
    const std::vector<std::string>& known) const {
  std::vector<std::string> out;
  for (const auto& [key, value] : values_) {
    if (std::find(known.begin(), known.end(), key) == known.end()) {
      out.push_back(key);
    }
  }
  return out;
}

}  // namespace dynmo
