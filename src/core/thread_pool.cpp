#include "core/thread_pool.hpp"

#include <atomic>

namespace dynmo {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t chunks = std::min(n, workers_.size());
  if (chunks <= 1) {
    fn(begin, end);
    return;
  }
  std::atomic<std::size_t> remaining{chunks};
  std::mutex done_mu;
  std::condition_variable done_cv;
  const std::size_t per = (n + chunks - 1) / chunks;
  {
    std::scoped_lock lock(mu_);
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t lo = begin + c * per;
      const std::size_t hi = std::min(end, lo + per);
      tasks_.push([&, lo, hi] {
        if (lo < hi) fn(lo, hi);
        // Decrement under the mutex: the waiter holds it while checking
        // the predicate, so it cannot observe zero and destroy these
        // stack-resident synchronization objects while we still use them.
        std::scoped_lock done_lock(done_mu);
        if (remaining.fetch_sub(1) == 1) done_cv.notify_one();
      });
    }
  }
  cv_.notify_all();
  std::unique_lock done_lock(done_mu);
  done_cv.wait(done_lock, [&] { return remaining.load() == 0; });
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace dynmo
