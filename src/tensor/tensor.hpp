// Minimal owning dense matrix/vector types.
//
// These are *real* tensors (not cost-model stand-ins): the threaded runtime
// executes small GEMMs through them, distributed global pruning compresses
// them into CSR, and layer migration moves their buffers between workers.
// Row-major float32 throughout; RAII ownership (no raw new/delete).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace dynmo::tensor {

class Tensor {
 public:
  Tensor() = default;
  Tensor(std::size_t rows, std::size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Tensor random(std::size_t rows, std::size_t cols, Rng& rng,
                       float scale = 1.0f);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& at(std::size_t r, std::size_t c) {
    DYNMO_ASSERT(r < rows_ && c < cols_, "tensor index out of range");
    return data_[r * cols_ + c];
  }
  float at(std::size_t r, std::size_t c) const {
    DYNMO_ASSERT(r < rows_ && c < cols_, "tensor index out of range");
    return data_[r * cols_ + c];
  }

  std::span<float> data() { return data_; }
  std::span<const float> data() const { return data_; }
  std::span<float> row(std::size_t r) {
    return std::span<float>(data_).subspan(r * cols_, cols_);
  }
  std::span<const float> row(std::size_t r) const {
    return std::span<const float>(data_).subspan(r * cols_, cols_);
  }

  /// Bytes of the underlying buffer (what migration actually copies).
  std::size_t bytes() const { return data_.size() * sizeof(float); }

  bool same_shape(const Tensor& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

/// C = A * B (row-major), multi-threaded over rows of A.
Tensor matmul(const Tensor& a, const Tensor& b);

/// y = x * W + b applied row-wise; W is (in, out).  b may be empty.
Tensor linear(const Tensor& x, const Tensor& w, std::span<const float> bias);

/// In-place ReLU.
void relu_inplace(Tensor& t);

/// Frobenius norm.
double frobenius_norm(const Tensor& t);

/// Sum of absolute values.
double abs_sum(std::span<const float> xs);

/// Indices of the k largest |values| within xs (unordered).  k is clamped
/// to xs.size().
std::vector<std::uint32_t> topk_abs_indices(std::span<const float> xs,
                                            std::size_t k);

/// The k-th largest |value| (the global-pruning threshold); k >= 1.
float kth_abs_value(std::span<const float> xs, std::size_t k);

}  // namespace dynmo::tensor
