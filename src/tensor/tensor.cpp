#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/thread_pool.hpp"

namespace dynmo::tensor {

Tensor Tensor::random(std::size_t rows, std::size_t cols, Rng& rng,
                      float scale) {
  Tensor t(rows, cols);
  for (float& v : t.data_) {
    v = static_cast<float>(rng.normal(0.0, 1.0)) * scale;
  }
  return t;
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  DYNMO_CHECK(a.cols() == b.rows(),
              "matmul shape mismatch: " << a.rows() << 'x' << a.cols()
                                        << " * " << b.rows() << 'x'
                                        << b.cols());
  Tensor c(a.rows(), b.cols());
  const std::size_t n = b.cols();
  const std::size_t k = a.cols();
  ThreadPool::global().parallel_for(0, a.rows(), [&](std::size_t r0,
                                                     std::size_t r1) {
    for (std::size_t i = r0; i < r1; ++i) {
      const auto arow = a.row(i);
      auto crow = c.row(i);
      // i-k-j loop order: unit-stride inner loop over both B and C.
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float aik = arow[kk];
        if (aik == 0.0f) continue;  // free win once pruning kicks in
        const auto brow = b.row(kk);
        for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
      }
    }
  });
  return c;
}

Tensor linear(const Tensor& x, const Tensor& w, std::span<const float> bias) {
  Tensor y = matmul(x, w);
  if (!bias.empty()) {
    DYNMO_CHECK(bias.size() == y.cols(), "bias length mismatch");
    for (std::size_t i = 0; i < y.rows(); ++i) {
      auto row = y.row(i);
      for (std::size_t j = 0; j < row.size(); ++j) row[j] += bias[j];
    }
  }
  return y;
}

void relu_inplace(Tensor& t) {
  for (float& v : t.data()) v = std::max(v, 0.0f);
}

double frobenius_norm(const Tensor& t) {
  double acc = 0.0;
  for (float v : t.data()) acc += static_cast<double>(v) * v;
  return std::sqrt(acc);
}

double abs_sum(std::span<const float> xs) {
  double acc = 0.0;
  for (float v : xs) acc += std::abs(static_cast<double>(v));
  return acc;
}

std::vector<std::uint32_t> topk_abs_indices(std::span<const float> xs,
                                            std::size_t k) {
  k = std::min(k, xs.size());
  std::vector<std::uint32_t> idx(xs.size());
  std::iota(idx.begin(), idx.end(), 0u);
  std::nth_element(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k),
                   idx.end(), [&](std::uint32_t a, std::uint32_t b) {
                     return std::abs(xs[a]) > std::abs(xs[b]);
                   });
  idx.resize(k);
  return idx;
}

float kth_abs_value(std::span<const float> xs, std::size_t k) {
  DYNMO_CHECK(k >= 1 && k <= xs.size(),
              "kth_abs_value: k=" << k << " size=" << xs.size());
  std::vector<float> mags(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) mags[i] = std::abs(xs[i]);
  std::nth_element(mags.begin(), mags.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   mags.end(), std::greater<>());
  return mags[k - 1];
}

}  // namespace dynmo::tensor
