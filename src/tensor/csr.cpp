#include "tensor/csr.hpp"

#include <algorithm>
#include <cmath>

#include "core/thread_pool.hpp"

namespace dynmo::tensor {

CsrMatrix CsrMatrix::from_dense(const Tensor& dense, float abs_threshold) {
  CsrMatrix m;
  m.rows_ = dense.rows();
  m.cols_ = dense.cols();
  m.row_offsets_.reserve(m.rows_ + 1);
  m.row_offsets_.push_back(0);
  for (std::size_t r = 0; r < m.rows_; ++r) {
    const auto row = dense.row(r);
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (std::abs(row[c]) >= abs_threshold && row[c] != 0.0f) {
        m.values_.push_back(row[c]);
        m.col_indices_.push_back(static_cast<std::uint32_t>(c));
      }
    }
    m.row_offsets_.push_back(static_cast<std::uint32_t>(m.values_.size()));
  }
  return m;
}

CsrMatrix CsrMatrix::from_dense_with_indices(
    const Tensor& dense, std::span<const std::uint32_t> keep_flat_indices) {
  std::vector<std::uint32_t> sorted(keep_flat_indices.begin(),
                                    keep_flat_indices.end());
  std::sort(sorted.begin(), sorted.end());
  CsrMatrix m;
  m.rows_ = dense.rows();
  m.cols_ = dense.cols();
  m.row_offsets_.assign(m.rows_ + 1, 0);
  m.values_.reserve(sorted.size());
  m.col_indices_.reserve(sorted.size());
  std::size_t cur_row = 0;
  for (std::uint32_t flat : sorted) {
    const std::size_t r = flat / m.cols_;
    const std::size_t c = flat % m.cols_;
    DYNMO_CHECK(r < m.rows_, "keep index " << flat << " out of range");
    while (cur_row < r) {
      m.row_offsets_[++cur_row] = static_cast<std::uint32_t>(m.values_.size());
    }
    m.values_.push_back(dense.at(r, c));
    m.col_indices_.push_back(static_cast<std::uint32_t>(c));
  }
  while (cur_row < m.rows_) {
    m.row_offsets_[++cur_row] = static_cast<std::uint32_t>(m.values_.size());
  }
  return m;
}

Tensor CsrMatrix::to_dense() const {
  Tensor t(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::uint32_t i = row_offsets_[r]; i < row_offsets_[r + 1]; ++i) {
      t.at(r, col_indices_[i]) = values_[i];
    }
  }
  return t;
}

Tensor CsrMatrix::spmm_left(const Tensor& x) const {
  DYNMO_CHECK(x.cols() == rows_, "spmm shape mismatch: x is "
                                     << x.rows() << 'x' << x.cols()
                                     << ", A is " << rows_ << 'x' << cols_);
  Tensor y(x.rows(), cols_);
  ThreadPool::global().parallel_for(0, x.rows(), [&](std::size_t r0,
                                                     std::size_t r1) {
    for (std::size_t i = r0; i < r1; ++i) {
      const auto xrow = x.row(i);
      auto yrow = y.row(i);
      for (std::size_t kk = 0; kk < rows_; ++kk) {
        const float xik = xrow[kk];
        if (xik == 0.0f) continue;
        for (std::uint32_t p = row_offsets_[kk]; p < row_offsets_[kk + 1];
             ++p) {
          yrow[col_indices_[p]] += xik * values_[p];
        }
      }
    }
  });
  return y;
}

}  // namespace dynmo::tensor
