// Compressed Sparse Row matrix, the storage format DynMo's gradual-pruning
// integration uses after unstructured magnitude pruning (paper §4.2.2).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.hpp"

namespace dynmo::tensor {

class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Compress `dense`, keeping entries with |value| >= threshold.  Entries
  /// exactly at the threshold are kept, matching "indices_to_keep" semantics
  /// of Algorithm 1.
  static CsrMatrix from_dense(const Tensor& dense, float abs_threshold);

  /// Compress keeping exactly the given flat indices (row-major order).
  static CsrMatrix from_dense_with_indices(
      const Tensor& dense, std::span<const std::uint32_t> keep_flat_indices);

  Tensor to_dense() const;

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return values_.size(); }
  double density() const {
    const double total = static_cast<double>(rows_) * static_cast<double>(cols_);
    return total > 0.0 ? static_cast<double>(nnz()) / total : 0.0;
  }

  std::span<const float> values() const { return values_; }
  std::span<const std::uint32_t> col_indices() const { return col_indices_; }
  std::span<const std::uint32_t> row_offsets() const { return row_offsets_; }

  /// Storage footprint in bytes (values + column indices + row offsets) —
  /// what actually moves on a layer migration.
  std::size_t bytes() const {
    return values_.size() * sizeof(float) +
           col_indices_.size() * sizeof(std::uint32_t) +
           row_offsets_.size() * sizeof(std::uint32_t);
  }

  /// y = x * A where A is this (k x n) CSR matrix and x is (m x k) dense
  /// (the Sputnik SpMM shape), multi-threaded over rows of x.
  Tensor spmm_left(const Tensor& x) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> values_;
  std::vector<std::uint32_t> col_indices_;
  std::vector<std::uint32_t> row_offsets_;  // rows_ + 1 entries
};

}  // namespace dynmo::tensor
