// Dynamic sparse FlashAttention engine (paper §2.4, §4.2.4).
//
// Hash-based (LSH) attention restricts each query to keys sharing a hash
// bucket; combined with FlashAttention this yields *block-sparse* causal
// masks whose density differs per layer and per iteration — the hash
// functions are re-drawn as activations evolve, so the touched-block count
// fluctuates (Pagliardini et al., NeurIPS'23).
//
// The engine simulates the bucket structure directly: per layer, queries and
// keys fall into `num_buckets` LSH buckets with a layer-specific skew; the
// attention density is the causal mass of same-bucket block pairs.  Layer
// cost then follows the paper's §2.4 model (load = s_i(k) · c_i).
#pragma once

#include <vector>

#include "core/rng.hpp"
#include "dynamic/dynamism.hpp"

namespace dynmo::dynamic {

struct SparseAttnEngineConfig {
  int num_buckets = 16;
  int blocks_per_seq = 64;          ///< flash tiles along the sequence
  double bucket_zipf_s = 1.1;       ///< bucket popularity skew
  /// Per-layer persistent bias: some layers hash into few hot buckets
  /// (denser), others spread (sparser).  Log-spread of the per-layer mean.
  double layer_spread = 0.9;
  double iteration_jitter = 0.25;   ///< per-iteration lognormal sigma
  double min_density = 0.02;        ///< relative to the full matrix
  std::uint64_t seed = 0x5eed;
};

class SparseAttnEngine final : public DynamismEngine {
 public:
  SparseAttnEngine(const model::ModelDesc& model, SparseAttnEngineConfig cfg);

  std::string name() const override { return "dynamic_sparse_attention"; }
  bool is_dynamism_point(std::int64_t iter) const override {
    (void)iter;
    return true;  // hash masks change every iteration
  }
  void step(std::int64_t iter, std::span<model::LayerState> states) override;
  std::int64_t recommended_rebalance_interval() const override { return 1; }

  /// The simulated block-sparse density for one layer at one iteration —
  /// fraction of the full s×s attention matrix covered by same-bucket
  /// causal blocks (dense causal = 0.5).
  double layer_density(std::size_t layer, std::int64_t iter) const;

 private:
  const model::ModelDesc* model_;
  SparseAttnEngineConfig cfg_;
  std::vector<double> layer_bias_;  ///< per-layer mean log-density offset
};

}  // namespace dynmo::dynamic
