#include "dynamic/moe.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"
#include "core/stats.hpp"

namespace dynmo::dynamic {

const char* to_string(MoeRouting r) {
  switch (r) {
    case MoeRouting::AuxLoss: return "aux_loss";
    case MoeRouting::SBase: return "s-base";
    case MoeRouting::ExpertChoice: return "expert_choice";
  }
  return "?";
}

MoeEngine::MoeEngine(const model::ModelDesc& model, MoeEngineConfig cfg)
    : model_(&model), cfg_(cfg) {
  for (std::size_t l = 0; l < model.layers.size(); ++l) {
    if (model.layers[l].kind == model::LayerKind::MoeTransformerBlock) {
      moe_layers_.push_back(l);
    }
  }
  DYNMO_CHECK(!moe_layers_.empty(), "MoeEngine needs MoE blocks in the model");
}

std::string MoeEngine::name() const {
  return std::string("moe/") + to_string(cfg_.routing);
}

std::vector<double> MoeEngine::expert_popularity(std::size_t layer,
                                                 std::int64_t iter) const {
  const auto& desc = model_->layers[layer];
  const std::size_t E = desc.num_experts;
  // Base popularity: deterministic per-layer Zipf permutation, drifting
  // slowly with the iteration (token distribution shifts over training).
  Rng rng(hash_mix(cfg_.seed, layer, 0xdecade));
  const double layer_s =
      cfg_.popularity_zipf_s * std::exp(rng.normal(0.0, cfg_.layer_skew_spread));
  std::vector<double> pop(E);
  for (std::size_t e = 0; e < E; ++e) {
    pop[e] = 1.0 / std::pow(static_cast<double>(e) + 1.0, layer_s);
  }
  // Random expert order per layer so skew doesn't always hit expert 0.
  for (std::size_t e = E; e > 1; --e) {
    std::swap(pop[e - 1], pop[rng.uniform_int(e)]);
  }
  // Drift: popularity slowly rotates over iterations.
  Rng drift(hash_mix(cfg_.seed, layer,
                     static_cast<std::uint64_t>(iter / 50)));
  for (double& p : pop) {
    p *= std::exp(drift.normal(0.0, cfg_.popularity_drift * 10.0));
  }
  // Auxiliary-loss pull: over training, popularity relaxes toward uniform
  // but saturates (the paper observes persistent ~25% imbalance).
  const double pull =
      1.0 - std::exp(-cfg_.aux_loss_pull * static_cast<double>(iter % 10000));
  double total = 0.0;
  for (double p : pop) total += p;
  const double uni = total / static_cast<double>(E);
  const double relax = (cfg_.routing == MoeRouting::AuxLoss) ? 0.6 * pull : 0.0;
  for (double& p : pop) p = p * (1.0 - relax) + uni * relax;
  return pop;
}

std::vector<std::size_t> MoeEngine::route_tokens(std::size_t layer,
                                                 std::int64_t iter,
                                                 int microbatch) const {
  const auto& desc = model_->layers[layer];
  const std::size_t E = desc.num_experts;
  const std::size_t k = std::max<std::size_t>(1, desc.top_k);
  std::vector<std::size_t> counts(E, 0);

  if (cfg_.routing == MoeRouting::ExpertChoice) {
    // Experts pick equal-size token sets: perfectly balanced.
    const std::size_t per = cfg_.tokens_per_microbatch * k / E;
    counts.assign(E, per);
    return counts;
  }

  const auto pop = expert_popularity(layer, iter);
  Rng rng(hash_mix(cfg_.seed ^ 0xab1e, layer,
                   static_cast<std::uint64_t>(iter) * 131 +
                       static_cast<std::uint64_t>(microbatch)));
  std::vector<double> gate = pop;
  for (std::size_t t = 0; t < cfg_.tokens_per_microbatch; ++t) {
    // Token-choice: draw k distinct experts by popularity-weighted gating.
    std::size_t first = rng.categorical(gate);
    ++counts[first];
    for (std::size_t j = 1; j < k; ++j) {
      std::size_t e = rng.categorical(gate);
      while (e == first) e = rng.categorical(gate);
      ++counts[e];
    }
  }

  if (cfg_.routing == MoeRouting::SBase) {
    // S-BASE reassigns overflow tokens via an auction so each expert ends
    // within one capacity unit of the mean; residual imbalance comes from
    // rounding and the stochastic auction order.
    const std::size_t total = cfg_.tokens_per_microbatch * k;
    const std::size_t cap = (total + E - 1) / E;
    std::size_t overflow = 0;
    for (auto& c : counts) {
      if (c > cap) {
        overflow += c - cap;
        c = cap;
      }
    }
    for (std::size_t e = 0; overflow > 0; e = (e + 1) % E) {
      if (counts[e] < cap) {
        ++counts[e];
        --overflow;
      }
    }
  }
  return counts;
}

double MoeEngine::bottleneck_factor(std::span<const std::size_t> per_expert) {
  if (per_expert.empty()) return 1.0;
  double total = 0.0;
  std::size_t mx = 0;
  for (std::size_t c : per_expert) {
    total += static_cast<double>(c);
    mx = std::max(mx, c);
  }
  const double mean = total / static_cast<double>(per_expert.size());
  return mean > 0.0 ? static_cast<double>(mx) / mean : 1.0;
}

double MoeEngine::layer_load_factor(std::size_t layer, std::int64_t iter,
                                    int microbatch) const {
  const auto counts = route_tokens(layer, iter, microbatch);
  return bottleneck_factor(counts);
}

void MoeEngine::step(std::int64_t iter,
                     std::span<model::LayerState> states) {
  DYNMO_CHECK(states.size() == model_->num_layers(), "state size mismatch");
  mb_load_.assign(model_->num_layers(), {});
  for (std::size_t l : moe_layers_) {
    auto& per_mb = mb_load_[l];
    per_mb.resize(static_cast<std::size_t>(cfg_.num_microbatches));
    double mean = 0.0;
    for (int mb = 0; mb < cfg_.num_microbatches; ++mb) {
      per_mb[static_cast<std::size_t>(mb)] = layer_load_factor(l, iter, mb);
      mean += per_mb[static_cast<std::size_t>(mb)];
    }
    mean /= static_cast<double>(cfg_.num_microbatches);
    states[l].moe_load = mean;
  }
  cached_iter_ = iter;
}

pipeline::MicrobatchScaleFn MoeEngine::microbatch_scale(std::int64_t iter) {
  DYNMO_CHECK(iter == cached_iter_, "call step() before microbatch_scale()");
  // Scale relative to the layer's mean load (the mean is already folded
  // into LayerState::moe_load).
  return [this](std::size_t layer, int mb) -> double {
    if (layer >= mb_load_.size() || mb_load_[layer].empty()) return 1.0;
    const auto& per_mb = mb_load_[layer];
    double mean = 0.0;
    for (double v : per_mb) mean += v;
    mean /= static_cast<double>(per_mb.size());
    if (mean <= 0.0) return 1.0;
    return per_mb[static_cast<std::size_t>(mb) % per_mb.size()] / mean;
  };
}

}  // namespace dynmo::dynamic
