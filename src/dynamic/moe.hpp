// Mixture-of-Experts routing engine (paper §2.1, §4.2.1).
//
// Simulates token→expert routing at every iteration and converts the
// resulting per-expert token counts into a per-layer load factor (the
// bottleneck expert's relative load — in expert-parallel execution the
// slowest expert gates the layer).  Three routing schemes:
//   AuxLoss      — Mixtral-style gating with an auxiliary load-balancing
//                  loss that slowly pulls expert popularity toward uniform
//                  but never removes skew (~25% steady-state imbalance).
//   SBase        — S-BASE: an assignment (auction) step equalizes expert
//                  loads up to capacity rounding (small residual imbalance).
//   ExpertChoice — experts pick their top tokens: perfectly balanced by
//                  construction (used by the MoD engine's underlying MoE).
#pragma once

#include <vector>

#include "core/rng.hpp"
#include "dynamic/dynamism.hpp"

namespace dynmo::dynamic {

enum class MoeRouting { AuxLoss, SBase, ExpertChoice };

const char* to_string(MoeRouting r);

struct MoeEngineConfig {
  MoeRouting routing = MoeRouting::AuxLoss;
  std::size_t tokens_per_microbatch = 4096;  ///< sampled routing population
  int num_microbatches = 4;
  double popularity_zipf_s = 1.15;  ///< token→expert affinity skew
  /// Routers collapse to different degrees per layer (well documented for
  /// aux-loss gating): each layer's effective Zipf exponent is
  /// popularity_zipf_s·lognormal(0, layer_skew_spread), persistent across
  /// training.  This between-layer variance is what DynMo's layer moves
  /// absorb; the within-iteration microbatch noise is not fixable by any
  /// placement and shows up as DynMo's residual bubble (~8%, Fig. 3).
  double layer_skew_spread = 0.45;
  double popularity_drift = 0.02;   ///< per-iteration popularity evolution
  double aux_loss_pull = 0.01;      ///< per-iteration pull toward uniform
  std::uint64_t seed = 0x5eed;
};

class MoeEngine final : public DynamismEngine {
 public:
  MoeEngine(const model::ModelDesc& model, MoeEngineConfig cfg);

  std::string name() const override;
  bool is_dynamism_point(std::int64_t iter) const override {
    (void)iter;
    return true;  // routing changes every iteration
  }
  void step(std::int64_t iter, std::span<model::LayerState> states) override;
  pipeline::MicrobatchScaleFn microbatch_scale(std::int64_t iter) override;
  std::int64_t recommended_rebalance_interval() const override { return 1; }

  /// Per-expert token histogram for one (layer, microbatch) routing draw —
  /// exposed for tests and the imbalance characterization bench.
  std::vector<std::size_t> route_tokens(std::size_t layer, std::int64_t iter,
                                        int microbatch) const;

  /// Bottleneck factor max_e(tokens_e) / mean_e(tokens_e) for a histogram.
  static double bottleneck_factor(std::span<const std::size_t> per_expert);

 private:
  double layer_load_factor(std::size_t layer, std::int64_t iter,
                           int microbatch) const;
  std::vector<double> expert_popularity(std::size_t layer,
                                        std::int64_t iter) const;

  const model::ModelDesc* model_;
  MoeEngineConfig cfg_;
  std::vector<std::size_t> moe_layers_;  ///< indices of MoE blocks
  // Cached per-(iter) microbatch load factors, refreshed in step().
  std::vector<std::vector<double>> mb_load_;  ///< [layer][microbatch]
  std::int64_t cached_iter_ = -1;
};

}  // namespace dynmo::dynamic
