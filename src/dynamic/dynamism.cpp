#include "dynamic/dynamism.hpp"

#include <algorithm>

namespace dynmo::dynamic {

double DynamismEngine::compute_fraction(
    std::span<const model::LayerState> states) const {
  if (states.empty()) return 1.0;
  // First-order estimate: forward work scales with token_fraction ×
  // weight_density × (attn share folded into density already); backward
  // (2/3 of total) vanishes when frozen.
  double acc = 0.0;
  for (const auto& s : states) {
    const double fwd = std::clamp(s.token_fraction, 0.0, 1.0) *
                       std::clamp(s.weight_density, 0.0, 1.0);
    const double bwd = s.frozen ? 0.0 : 2.0 * fwd;
    acc += (fwd + bwd) / 3.0;
  }
  return acc / static_cast<double>(states.size());
}

}  // namespace dynmo::dynamic
