#include "dynamic/sparse_attn.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace dynmo::dynamic {

SparseAttnEngine::SparseAttnEngine(const model::ModelDesc& model,
                                   SparseAttnEngineConfig cfg)
    : model_(&model), cfg_(cfg) {
  DYNMO_CHECK(cfg.num_buckets > 1, "need at least two hash buckets");
  Rng rng(hash_mix(cfg.seed, 0x5a77));
  layer_bias_.resize(model.num_layers(), 0.0);
  for (std::size_t l = 0; l < model.num_layers(); ++l) {
    layer_bias_[l] = rng.normal(0.0, cfg.layer_spread);
  }
}

double SparseAttnEngine::layer_density(std::size_t layer,
                                       std::int64_t iter) const {
  DYNMO_CHECK(layer < model_->num_layers(), "layer out of range");
  const auto kind = model_->layers[layer].kind;
  if (kind != model::LayerKind::TransformerBlock &&
      kind != model::LayerKind::MoeTransformerBlock) {
    return 0.5;  // non-attention layers: dense causal convention
  }
  // Simulate bucket assignment of the flash tiles: tile b gets a bucket by
  // Zipf popularity; two causal tiles attend iff same bucket.  Density =
  // same-bucket causal pairs / all causal pairs.  The hash functions are
  // re-drawn as activations drift — every ~25 iterations in continual
  // training — so the block structure is strongly correlated across
  // consecutive iterations (what makes per-iteration rebalancing
  // worthwhile) with a small white-noise term on top.
  Rng rng(hash_mix(cfg_.seed ^ 0xa77e, layer,
                   static_cast<std::uint64_t>(iter / 25)));
  const int B = cfg_.blocks_per_seq;
  std::vector<int> bucket(static_cast<std::size_t>(B));
  for (auto& b : bucket) {
    b = static_cast<int>(
        rng.zipf(static_cast<std::uint64_t>(cfg_.num_buckets),
                 cfg_.bucket_zipf_s));
  }
  std::int64_t same = 0;
  std::int64_t total = 0;
  for (int q = 0; q < B; ++q) {
    for (int k = 0; k <= q; ++k) {
      ++total;
      if (bucket[static_cast<std::size_t>(q)] ==
          bucket[static_cast<std::size_t>(k)]) {
        ++same;
      }
    }
  }
  const double causal_frac =
      static_cast<double>(same) / static_cast<double>(total);
  // Layer bias + slow jitter (tied to the hash epoch) + fast white noise.
  Rng fast(hash_mix(cfg_.seed ^ 0xfa50, layer,
                    static_cast<std::uint64_t>(iter)));
  const double jitter =
      std::exp(rng.normal(0.0, cfg_.iteration_jitter) + layer_bias_[layer] +
               fast.normal(0.0, 0.05));
  const double density = 0.5 * causal_frac * jitter;
  return std::clamp(density, cfg_.min_density, 0.5);
}

void SparseAttnEngine::step(std::int64_t iter,
                            std::span<model::LayerState> states) {
  DYNMO_CHECK(states.size() == model_->num_layers(), "state size mismatch");
  for (std::size_t l = 0; l < states.size(); ++l) {
    const auto kind = model_->layers[l].kind;
    if (kind != model::LayerKind::TransformerBlock &&
        kind != model::LayerKind::MoeTransformerBlock) {
      continue;
    }
    const double density = layer_density(l, iter);
    // Paper §2.4 models the layer load as s_i(k)·c_i — the sparsity factor
    // scales the whole layer (the target regime is long sequences where
    // attention dominates block time).  density/0.5 normalizes so that a
    // dense causal mask means scale 1.
    states[l].compute_scale = density / 0.5;
  }
}

}  // namespace dynmo::dynamic
