// Common interface for the six dynamism engines (paper §2, §4.2).
//
// A DynamismEngine owns the *cause* of workload change: at each iteration it
// rewrites the per-layer LayerState vector (densities, frozen flags, token
// fractions, routing loads).  DynMo itself never inspects the engine — it
// only sees the resulting measured loads, which is the paper's black-box
// contract (§3.2).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "model/layer.hpp"
#include "pipeline/cost_builder.hpp"

namespace dynmo::dynamic {

class DynamismEngine {
 public:
  virtual ~DynamismEngine() = default;

  virtual std::string name() const = 0;

  /// Does the model / control flow change at this iteration?  (DynMo
  /// rebalances blindly on a fixed interval; this hook exists for analysis
  /// and for tests.)
  virtual bool is_dynamism_point(std::int64_t iter) const = 0;

  /// Mutate the per-layer dynamic state for iteration `iter`.
  virtual void step(std::int64_t iter,
                    std::span<model::LayerState> states) = 0;

  /// Intra-iteration fluctuation: optional per-(layer, microbatch) scale.
  /// MoE/MoD routing differs per microbatch; most engines return {}.
  virtual pipeline::MicrobatchScaleFn microbatch_scale(std::int64_t iter) {
    (void)iter;
    return {};
  }

  /// The rebalance cadence the paper uses for this scheme (iterations).
  virtual std::int64_t recommended_rebalance_interval() const = 0;

  /// Fraction of the static model's compute the current state performs
  /// (for reporting compute savings); 1.0 = no reduction.
  virtual double compute_fraction(
      std::span<const model::LayerState> states) const;
};

}  // namespace dynmo::dynamic
