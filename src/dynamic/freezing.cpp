#include "dynamic/freezing.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace dynmo::dynamic {

FreezingEngine::FreezingEngine(const model::ModelDesc& model,
                               FreezingEngineConfig cfg)
    : model_(&model), cfg_(cfg) {
  DYNMO_CHECK(cfg.check_interval > 0, "check interval must be positive");
  freeze_at_.assign(model.num_layers(),
                    std::numeric_limits<std::int64_t>::max());
  Rng rng(hash_mix(cfg.seed, 0xf7ee2e));
  const std::size_t n = model.num_layers();
  const auto tail_start = static_cast<std::size_t>(
      static_cast<double>(n) * (1.0 - cfg.never_freeze_tail));
  for (std::size_t l = 0; l < n; ++l) {
    const auto kind = model.layers[l].kind;
    const bool freezable = (kind == model::LayerKind::TransformerBlock ||
                            kind == model::LayerKind::MoeTransformerBlock ||
                            kind == model::LayerKind::Embedding) &&
                           l < tail_start;
    if (!freezable) continue;
    const double depth =
        static_cast<double>(l) / std::max<std::size_t>(1, n - 1);
    const double frac = std::pow(depth, cfg.depth_exponent);
    const double base =
        static_cast<double>(cfg.first_layer_converge_iter) +
        frac * static_cast<double>(cfg.last_layer_converge_iter -
                                   cfg.first_layer_converge_iter);
    const double jitter = 1.0 + rng.normal(0.0, cfg.plateau_noise);
    const auto at = static_cast<std::int64_t>(
        std::max(1.0, base * std::max(0.2, jitter)));
    // Freezing decisions only land on check boundaries (Egeria evaluates
    // the plateau criterion every check_interval iterations).
    freeze_at_[l] =
        ((at + cfg.check_interval - 1) / cfg.check_interval) *
        cfg.check_interval;
  }
}

std::int64_t FreezingEngine::freeze_iteration(std::size_t layer) const {
  DYNMO_CHECK(layer < freeze_at_.size(), "layer out of range");
  return freeze_at_[layer];
}

std::size_t FreezingEngine::frozen_count(std::int64_t iter) const {
  std::size_t n = 0;
  for (std::int64_t at : freeze_at_) {
    if (iter >= at) ++n;
  }
  return n;
}

void FreezingEngine::step(std::int64_t iter,
                          std::span<model::LayerState> states) {
  DYNMO_CHECK(states.size() == model_->num_layers(), "state size mismatch");
  for (std::size_t l = 0; l < states.size(); ++l) {
    states[l].frozen = iter >= freeze_at_[l];
  }
}

}  // namespace dynmo::dynamic
