#include "dynamic/pruning.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace dynmo::dynamic {

double PruningSchedule::sparsity_at(std::int64_t t) const {
  if (t < start_iter) return initial_sparsity;
  const std::int64_t end = end_iter();
  if (t >= end) return final_sparsity;
  const double frac = static_cast<double>(t - start_iter) /
                      static_cast<double>(frequency * num_steps);
  const double cubic = (1.0 - frac) * (1.0 - frac) * (1.0 - frac);
  return final_sparsity + (initial_sparsity - final_sparsity) * cubic;
}

bool PruningSchedule::is_pruning_step(std::int64_t t) const {
  return t >= start_iter && t <= end_iter() &&
         (t - start_iter) % frequency == 0;
}

namespace {
/// P(|X| >= tau) for X ~ N(0, sigma^2).
double gaussian_retention(double tau, double sigma) {
  if (sigma <= 0.0) return 0.0;
  return std::erfc(tau / (sigma * std::numbers::sqrt2));
}
}  // namespace

PruningEngine::PruningEngine(const model::ModelDesc& model,
                             PruningEngineConfig cfg)
    : model_(&model), cfg_(cfg) {
  DYNMO_CHECK(cfg.schedule.final_sparsity >= cfg.schedule.initial_sparsity,
              "final sparsity below initial");
  DYNMO_CHECK(cfg.schedule.final_sparsity < 1.0, "cannot prune everything");
  sigma_.resize(model.num_layers(), 0.0);
  weight_n_.resize(model.num_layers(), 0.0);
  Rng rng(hash_mix(cfg.seed, 0x9121e));
  const double lo = std::log(cfg.sigma_min);
  const double hi = std::log(cfg.sigma_max);
  for (std::size_t l = 0; l < model.num_layers(); ++l) {
    const auto& d = model.layers[l];
    const bool prunable =
        d.kind == model::LayerKind::TransformerBlock ||
        d.kind == model::LayerKind::MoeTransformerBlock ||
        (cfg.prune_embeddings && (d.kind == model::LayerKind::Embedding ||
                                  d.kind == model::LayerKind::LmHead));
    if (!prunable) continue;
    // Depth profile: U-shaped σ (first and last blocks hold larger weights)
    // plus a per-layer random factor.
    const double depth = static_cast<double>(l) /
                         std::max<std::size_t>(1, model.num_layers() - 1);
    const double u_shape = 0.5 + 2.0 * (depth - 0.5) * (depth - 0.5);
    const double rand_factor = std::exp(rng.uniform(lo, hi)) / cfg.sigma_max;
    sigma_[l] = u_shape * (0.5 + rand_factor);
    weight_n_[l] = static_cast<double>(d.params);
  }
}

double PruningEngine::global_threshold(double s) const {
  DYNMO_CHECK(s >= 0.0 && s < 1.0, "sparsity out of range: " << s);
  if (s == 0.0) return 0.0;
  double total_n = 0.0;
  for (std::size_t l = 0; l < sigma_.size(); ++l) {
    if (sigma_[l] > 0.0) total_n += weight_n_[l];
  }
  if (total_n <= 0.0) return 0.0;
  const double target_keep = (1.0 - s) * total_n;
  double lo = 0.0;
  double hi = 10.0 * *std::max_element(sigma_.begin(), sigma_.end());
  for (int it = 0; it < 200; ++it) {
    const double mid = 0.5 * (lo + hi);
    double kept = 0.0;
    for (std::size_t l = 0; l < sigma_.size(); ++l) {
      if (sigma_[l] > 0.0) {
        kept += weight_n_[l] * gaussian_retention(mid, sigma_[l]);
      }
    }
    if (kept > target_keep) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

std::vector<double> PruningEngine::retention_at_sparsity(double s) const {
  const double tau = global_threshold(s);
  std::vector<double> keep(sigma_.size(), 1.0);
  for (std::size_t l = 0; l < sigma_.size(); ++l) {
    if (sigma_[l] > 0.0) {
      keep[l] = s == 0.0 ? 1.0 : gaussian_retention(tau, sigma_[l]);
    }
  }
  return keep;
}

void PruningEngine::step(std::int64_t iter,
                         std::span<model::LayerState> states) {
  DYNMO_CHECK(states.size() == model_->num_layers(), "state size mismatch");
  const double s = cfg_.schedule.sparsity_at(iter);
  const auto keep = retention_at_sparsity(s);
  for (std::size_t l = 0; l < states.size(); ++l) {
    if (sigma_[l] <= 0.0) continue;  // excluded from pruning
    states[l].weight_density = std::clamp(keep[l], 0.0, 1.0);
    // Backend selection at the Sputnik/dense crossover (§4.2.2): Sputnik
    // wins once density < its relative efficiency vs dense tensor cores.
    states[l].spmm_backend =
        states[l].weight_density < hw::KernelCostModel::kSputnikRelEff
            ? hw::SpmmBackend::Sputnik
            : hw::SpmmBackend::DenseCublas;
  }
}

}  // namespace dynmo::dynamic
