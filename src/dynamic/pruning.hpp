// Gradual global magnitude pruning engine (paper §2.2, §3.2.1, §4.2.2).
//
// Follows the Zhu–Gupta cubic schedule (Eq. 3):
//   S_t = S_f + (S_i − S_f)(1 − (t − t0)/(nΔt))³
// applied at t0, t0+Δt, ..., t0+nΔt.
//
// Layer weight-magnitude scales differ across depth (observed empirically:
// early/late layers carry larger-magnitude weights), so a *global* magnitude
// threshold retains very different fractions per layer — this non-uniform
// retention is precisely the load imbalance source of the paper's pruning
// experiment.  We model layer ℓ's weights as N(0, σ_ℓ²); the retained
// fraction under global threshold τ is erfc(τ / (σ_ℓ√2)), and τ is solved
// by bisection so that the *global* retention matches the schedule.  The
// exact distributed Algorithm 1 over real tensors lives in
// dynamic/distributed_pruning.hpp; this engine is its closed-form
// population-level counterpart (identical math, no giant tensors).
#pragma once

#include <vector>

#include "dynamic/dynamism.hpp"

namespace dynmo::dynamic {

struct PruningSchedule {
  double initial_sparsity = 0.0;  ///< S_i
  double final_sparsity = 0.9;    ///< S_f
  std::int64_t start_iter = 3000; ///< t0
  std::int64_t frequency = 1000;  ///< Δt
  int num_steps = 4;              ///< n

  /// Target sparsity at iteration t (Eq. 3); clamps outside the window.
  double sparsity_at(std::int64_t t) const;
  bool is_pruning_step(std::int64_t t) const;
  std::int64_t end_iter() const { return start_iter + frequency * num_steps; }
};

struct PruningEngineConfig {
  PruningSchedule schedule;
  /// Per-layer weight-magnitude spread: σ_ℓ drawn log-uniform in
  /// [sigma_min, sigma_max], deterministic per seed.  Wider spread → more
  /// skewed retention → more imbalance.
  double sigma_min = 0.4;
  double sigma_max = 2.5;
  /// Embedding / LM head are excluded from pruning (standard practice).
  bool prune_embeddings = false;
  std::uint64_t seed = 0x5eed;
};

class PruningEngine final : public DynamismEngine {
 public:
  PruningEngine(const model::ModelDesc& model, PruningEngineConfig cfg);

  std::string name() const override { return "gradual_pruning"; }
  bool is_dynamism_point(std::int64_t iter) const override {
    return cfg_.schedule.is_pruning_step(iter);
  }
  void step(std::int64_t iter, std::span<model::LayerState> states) override;
  std::int64_t recommended_rebalance_interval() const override {
    return cfg_.schedule.frequency;
  }

  /// Retained fraction per layer at global sparsity `s` (the imbalance
  /// source); exposed for tests and benches.
  std::vector<double> retention_at_sparsity(double s) const;

  /// The global magnitude threshold achieving sparsity `s` for this model's
  /// σ profile (bisection on the Gaussian tail mass).
  double global_threshold(double s) const;

  const std::vector<double>& layer_sigma() const { return sigma_; }

 private:
  const model::ModelDesc* model_;
  PruningEngineConfig cfg_;
  std::vector<double> sigma_;     ///< per layer; 0 for excluded layers
  std::vector<double> weight_n_;  ///< prunable parameter count per layer
};

}  // namespace dynmo::dynamic
