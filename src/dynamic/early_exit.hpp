// Early-exit engine (paper §2.5, §4.2.5) — CALM / ADP-C style.
//
// Tokens exit once their per-layer confidence clears a threshold.  The
// engine simulates the token survival curve: no exits before the first exit
// layer, then geometric-ish decay whose rate *sharpens over training* (a
// model early in training is rarely confident; late in training most tokens
// exit early — this is why the paper rebalances every ~100 iterations and
// why re-packing helps most here, §4.2.5).
#pragma once

#include <vector>

#include "dynamic/dynamism.hpp"

namespace dynmo::dynamic {

struct EarlyExitEngineConfig {
  /// Blocks before any token may exit.  CALM/ADP-C exit from the very
  /// first blocks; confidence emerges after a roughly fixed number of
  /// blocks regardless of model depth, which is why deeper models save
  /// relatively more — the paper's speedup grows from 2.39x (24L) to
  /// 4.83x (48L).
  std::size_t exit_start_blocks = 2;
  /// Steady-state survival at the last block once training matures.
  double final_tail_survival = 0.02;
  /// Iterations over which confidence (hence exit aggressiveness) ramps.
  std::int64_t confidence_ramp_iters = 2000;
  /// Per-iteration noise on per-layer survival.
  double survival_jitter = 0.05;
  std::int64_t rebalance_interval = 100;
  std::uint64_t seed = 0x5eed;
};

class EarlyExitEngine final : public DynamismEngine {
 public:
  EarlyExitEngine(const model::ModelDesc& model, EarlyExitEngineConfig cfg);

  std::string name() const override { return "early_exit"; }
  bool is_dynamism_point(std::int64_t iter) const override {
    return iter % cfg_.rebalance_interval == 0;
  }
  void step(std::int64_t iter, std::span<model::LayerState> states) override;
  std::int64_t recommended_rebalance_interval() const override {
    return cfg_.rebalance_interval;
  }

  /// Fraction of tokens still alive entering layer `layer` at `iter`
  /// (monotone non-increasing in depth).
  double survival(std::size_t layer, std::int64_t iter) const;

 private:
  const model::ModelDesc* model_;
  EarlyExitEngineConfig cfg_;
  std::size_t first_block_ = 0;   ///< model index of the first block
  std::size_t num_blocks_ = 0;
};

}  // namespace dynmo::dynamic
