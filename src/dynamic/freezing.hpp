// Layer-freezing engine (paper §2.3, §4.2.3) — Egeria-style.
//
// Per-layer convergence is modeled by a plateau signal: layer ℓ's training
// contribution decays with a depth-dependent time constant (earlier layers
// converge first, as Egeria observes), and a layer freezes when its
// loss-delta rate drops under the convergence criterion.  Frozen layers
// keep running forward but skip backward and gradient exchange — which is
// what makes the front of the pipeline light and the back heavy.
//
// The engine also models Egeria's own bookkeeping cost (periodic reference
// model sync on the CPU), which grows with layer count — the paper's
// explanation for DynMo's widening advantage at 48 layers.
#pragma once

#include <vector>

#include "dynamic/dynamism.hpp"

namespace dynmo::dynamic {

struct FreezingEngineConfig {
  std::int64_t check_interval = 300;  ///< freezing decision cadence
  /// Iteration by which the earliest layer plateaus / the last prunable
  /// layer would plateau (layers interpolate between them).
  std::int64_t first_layer_converge_iter = 1000;
  std::int64_t last_layer_converge_iter = 20000;
  /// Depth exponent: >1 keeps late layers unfrozen much longer.
  double depth_exponent = 1.6;
  /// Fraction of layers that never freeze (the final ones + LM head).
  double never_freeze_tail = 0.2;
  double plateau_noise = 0.1;  ///< jitter on per-layer convergence time
  std::uint64_t seed = 0x5eed;
};

class FreezingEngine final : public DynamismEngine {
 public:
  FreezingEngine(const model::ModelDesc& model, FreezingEngineConfig cfg);

  std::string name() const override { return "layer_freezing"; }
  bool is_dynamism_point(std::int64_t iter) const override {
    return iter > 0 && iter % cfg_.check_interval == 0;
  }
  void step(std::int64_t iter, std::span<model::LayerState> states) override;
  std::int64_t recommended_rebalance_interval() const override {
    return cfg_.check_interval;
  }

  /// Iteration at which layer ℓ freezes (int64 max if never).
  std::int64_t freeze_iteration(std::size_t layer) const;
  /// Number of layers frozen at iteration `iter`.
  std::size_t frozen_count(std::int64_t iter) const;

  /// Modeled per-check overhead of the Egeria baseline itself (reference
  /// model maintenance scales with layer count); DynMo's own overhead is
  /// tracked by balance::Rebalancer instead.
  static double egeria_check_overhead_s(std::size_t num_layers) {
    return 2e-4 * static_cast<double>(num_layers);  // CPU-side model sync
  }

 private:
  const model::ModelDesc* model_;
  FreezingEngineConfig cfg_;
  std::vector<std::int64_t> freeze_at_;
};

}  // namespace dynmo::dynamic
