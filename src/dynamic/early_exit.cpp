#include "dynamic/early_exit.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace dynmo::dynamic {

EarlyExitEngine::EarlyExitEngine(const model::ModelDesc& model,
                                 EarlyExitEngineConfig cfg)
    : model_(&model), cfg_(cfg) {
  DYNMO_CHECK(cfg.final_tail_survival > 0.0 && cfg.final_tail_survival <= 1.0,
              "tail survival out of range");
  bool seen_block = false;
  for (std::size_t l = 0; l < model.num_layers(); ++l) {
    const auto kind = model.layers[l].kind;
    if (kind == model::LayerKind::TransformerBlock ||
        kind == model::LayerKind::MoeTransformerBlock) {
      if (!seen_block) {
        first_block_ = l;
        seen_block = true;
      }
      ++num_blocks_;
    }
  }
  DYNMO_CHECK(num_blocks_ > 0, "early exit needs transformer blocks");
}

double EarlyExitEngine::survival(std::size_t layer, std::int64_t iter) const {
  DYNMO_CHECK(layer < model_->num_layers(), "layer out of range");
  const auto kind = model_->layers[layer].kind;
  // Embedding sees every token; the LM head is paid once per token at its
  // exit point (CALM measures confidence through the same head), so its
  // total work does not shrink with early exit either.
  if (kind == model::LayerKind::Embedding ||
      kind == model::LayerKind::LmHead) {
    return 1.0;
  }

  const double depth_blocks = static_cast<double>(layer - first_block_);
  const double start = static_cast<double>(
      std::min(cfg_.exit_start_blocks, num_blocks_ - 1));
  if (depth_blocks < start) return 1.0;

  // Confidence ramp: early in training nothing exits; by the end of the
  // ramp the tail survival reaches its configured floor.
  const double maturity = std::clamp(
      static_cast<double>(iter) /
          static_cast<double>(std::max<std::int64_t>(1,
                                                     cfg_.confidence_ramp_iters)),
      0.0, 1.0);
  const double tail_now =
      1.0 + (cfg_.final_tail_survival - 1.0) * maturity;  // 1 → final
  // Geometric decay from 1.0 at the first exit block to tail_now at the
  // last block.
  const double span =
      std::max(1.0, static_cast<double>(num_blocks_ - 1) - start);
  const double t = std::clamp((depth_blocks - start) / span, 0.0, 1.0);
  double s = std::pow(tail_now, t);

  // Per-iteration confidence jitter (batch composition varies).
  Rng rng(hash_mix(cfg_.seed ^ 0xee17, layer,
                   static_cast<std::uint64_t>(iter)));
  s *= std::exp(rng.normal(0.0, cfg_.survival_jitter));
  return std::clamp(s, cfg_.final_tail_survival * 0.5, 1.0);
}

void EarlyExitEngine::step(std::int64_t iter,
                           std::span<model::LayerState> states) {
  DYNMO_CHECK(states.size() == model_->num_layers(), "state size mismatch");
  // Enforce monotone survival down the block depth (tokens never
  // re-enter); embedding / LM head are exempt (see survival()).
  double floor = 1.0;
  for (std::size_t l = 0; l < states.size(); ++l) {
    const auto kind = model_->layers[l].kind;
    double s = survival(l, iter);
    if (kind == model::LayerKind::TransformerBlock ||
        kind == model::LayerKind::MoeTransformerBlock) {
      s = std::min(s, floor);
      floor = s;
    }
    states[l].token_fraction = s;
  }
}

}  // namespace dynmo::dynamic
