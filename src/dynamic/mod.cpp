#include "dynamic/mod.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace dynmo::dynamic {

ModEngine::ModEngine(const model::ModelDesc& model, ModEngineConfig cfg)
    : model_(&model), cfg_(cfg) {
  DYNMO_CHECK(cfg.capacity > 0.0 && cfg.capacity <= 1.0,
              "capacity out of range");
  DYNMO_CHECK(cfg.route_every >= 1, "route_every must be >= 1");
}

bool ModEngine::is_mod_block(std::size_t layer) const {
  const auto& d = model_->layers[layer];
  if (d.kind != model::LayerKind::TransformerBlock &&
      d.kind != model::LayerKind::MoeTransformerBlock) {
    return false;
  }
  // Count block index among blocks only; every `route_every`-th block
  // routes (Raposo et al. interleave full and MoD blocks).
  std::size_t block_idx = 0;
  for (std::size_t l = 0; l < layer; ++l) {
    const auto k = model_->layers[l].kind;
    if (k == model::LayerKind::TransformerBlock ||
        k == model::LayerKind::MoeTransformerBlock) {
      ++block_idx;
    }
  }
  return block_idx % static_cast<std::size_t>(cfg_.route_every) ==
         static_cast<std::size_t>(cfg_.route_every) - 1;
}

double ModEngine::routed_fraction(std::size_t layer, std::int64_t iter) const {
  if (!is_mod_block(layer)) return 1.0;
  // Predictor misestimation is *systematic*: the auxiliary MLP carries a
  // per-layer bias that drifts as the predictor (and the data) evolve over
  // tens of iterations; a small white-noise term sits on top.  This is why
  // every-iteration rebalancing pays off — the bias persists long enough
  // to exploit, while a static placement is wrong for the whole window.
  Rng per_layer(hash_mix(cfg_.seed ^ 0xcaf, layer, 0));
  Rng slow(hash_mix(cfg_.seed ^ 0x30d, layer,
                    static_cast<std::uint64_t>(iter / 100)));
  Rng fast(hash_mix(cfg_.seed ^ 0xfa57, layer,
                    static_cast<std::uint64_t>(iter)));
  const double layer_capacity =
      cfg_.capacity *
      std::exp(per_layer.normal(0.0, cfg_.layer_capacity_spread));
  const double bias = std::exp(slow.normal(0.0, cfg_.predictor_noise));
  const double skew = std::exp(slow.normal(0.0, cfg_.expert_skew));
  const double noise = std::exp(fast.normal(0.0, 0.25 * cfg_.predictor_noise));
  return std::clamp(layer_capacity * bias * skew * noise, 0.05, 1.0);
}

void ModEngine::step(std::int64_t iter,
                     std::span<model::LayerState> states) {
  DYNMO_CHECK(states.size() == model_->num_layers(), "state size mismatch");
  for (std::size_t l = 0; l < states.size(); ++l) {
    states[l].token_fraction = routed_fraction(l, iter);
  }
  cached_iter_ = iter;
}

pipeline::MicrobatchScaleFn ModEngine::microbatch_scale(std::int64_t iter) {
  DYNMO_CHECK(iter == cached_iter_, "call step() before microbatch_scale()");
  const std::uint64_t seed = cfg_.seed;
  const double noise = cfg_.predictor_noise * 0.5;
  const auto it = static_cast<std::uint64_t>(iter);
  return [seed, noise, it](std::size_t layer, int mb) -> double {
    Rng rng(hash_mix(seed ^ 0x30dbULL, layer, it * 977 +
                         static_cast<std::uint64_t>(mb)));
    return std::exp(rng.normal(0.0, noise));
  };
}

}  // namespace dynmo::dynamic
