// Mixture-of-Depths engine (paper §2.6, §4.2.6).
//
// MoD routes each token around entire blocks: an auxiliary MLP predictor
// guesses whether the token will be in the block's top-k set; only routed
// tokens pay the block's attention+MLP cost.  Imbalance comes from
// (a) the predictor's misestimation of the true top-k membership during
// causal generation ("lacks information about future tokens"), and
// (b) skew in the expert-choice MoE the MoD sits on top of.
// The paper observes ~18% pipeline imbalance, rebalanced every iteration in
// the backward pass.
#pragma once

#include "dynamic/dynamism.hpp"

namespace dynmo::dynamic {

struct ModEngineConfig {
  double capacity = 0.5;          ///< mean top-k fraction routed per block
  /// The learned routers develop *different* routing intensities per block
  /// (deep blocks shed more tokens than early ones); per-layer capacity is
  /// capacity·lognormal(0, spread), persistent across training.  This
  /// heterogeneity — not the alternation itself — is what layer-level
  /// rebalancing exploits (a strict 1,c,1,c cost pattern is provably
  /// unbalanceable by contiguous whole-layer moves).
  double layer_capacity_spread = 0.5;
  int route_every = 2;            ///< every N-th block is a MoD block
  /// Predictor quality: stddev of the routed-fraction misestimate; the MLP
  /// over- or under-admits tokens relative to the true top-k (it "lacks
  /// information about future tokens", §2.6).  Calibrated so the static
  /// pipeline shows the paper's ~18% routing imbalance.
  double predictor_noise = 0.35;
  /// Residual expert-choice skew from the underlying MoE.
  double expert_skew = 0.15;
  std::uint64_t seed = 0x5eed;
};

class ModEngine final : public DynamismEngine {
 public:
  ModEngine(const model::ModelDesc& model, ModEngineConfig cfg);

  std::string name() const override { return "mixture_of_depths"; }
  bool is_dynamism_point(std::int64_t iter) const override {
    (void)iter;
    return true;  // routing decisions change every forward pass
  }
  void step(std::int64_t iter, std::span<model::LayerState> states) override;
  pipeline::MicrobatchScaleFn microbatch_scale(std::int64_t iter) override;
  std::int64_t recommended_rebalance_interval() const override { return 1; }

  bool is_mod_block(std::size_t layer) const;
  /// Fraction of tokens actually routed through `layer` at `iter`
  /// (capacity × predictor misestimate); 1.0 for non-MoD layers.
  double routed_fraction(std::size_t layer, std::int64_t iter) const;

 private:
  const model::ModelDesc* model_;
  ModEngineConfig cfg_;
  std::int64_t cached_iter_ = -1;
};

}  // namespace dynmo::dynamic
