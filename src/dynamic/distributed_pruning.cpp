#include "dynamic/distributed_pruning.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/error.hpp"

namespace dynmo::dynamic {

namespace {
struct Candidate {
  float magnitude;
  std::uint32_t local_index;
  std::int32_t rank;
};
}  // namespace

GlobalPruneResult global_magnitude_prune(const comm::Communicator& comm,
                                         std::span<const float> my_params,
                                         double sparsity) {
  DYNMO_CHECK(sparsity >= 0.0 && sparsity < 1.0,
              "sparsity out of range: " << sparsity);
  const int rank = comm.rank();
  const int size = comm.size();

  GlobalPruneResult res;
  res.local_before = my_params.size();

  // Total parameter count (line 2 of Algorithm 1 needs the global n to
  // compute k).  One allreduce of a single double.
  const auto totals =
      comm.allreduce_sum({static_cast<double>(my_params.size())});
  const auto total_n = static_cast<std::size_t>(totals[0]);
  const auto k_global = static_cast<std::size_t>(
      std::ceil((1.0 - sparsity) * static_cast<double>(total_n)));
  res.global_kept = std::min(k_global, total_n);

  // Line 3: local top-k candidates.  A global survivor must be in its own
  // rank's local top-min(local_n, k) set, so this candidate set is exact.
  const std::size_t local_k = std::min(my_params.size(), res.global_kept);
  auto local_top = tensor::topk_abs_indices(my_params, local_k);

  if (rank == 0) {
    // Line 4 (gather via P2P): candidate counts differ per rank and only
    // the sender knows them, so each rank sends (count, mags, indices).
    std::vector<Candidate> candidates;
    candidates.reserve(local_top.size() * static_cast<std::size_t>(size));
    for (std::uint32_t li : local_top) {
      candidates.push_back(
          Candidate{std::abs(my_params[li]), li, 0});
    }
    for (int r = 1; r < size; ++r) {
      const comm::Message m = comm.recv(r, comm::kPruneTag);
      comm::Unpacker u(m.payload);
      const auto mags = u.get_vector<float>();
      const auto idxs = u.get_vector<std::uint32_t>();
      DYNMO_CHECK(mags.size() == idxs.size(), "candidate shape mismatch");
      for (std::size_t i = 0; i < mags.size(); ++i) {
        candidates.push_back(Candidate{mags[i], idxs[i], r});
      }
    }

    // Line 6: global top-k among candidates.
    const std::size_t kk = std::min(res.global_kept, candidates.size());
    std::nth_element(candidates.begin(),
                     candidates.begin() + static_cast<std::ptrdiff_t>(kk),
                     candidates.end(),
                     [](const Candidate& a, const Candidate& b) {
                       if (a.magnitude != b.magnitude) {
                         return a.magnitude > b.magnitude;
                       }
                       // Deterministic tie-break so the distributed result
                       // is reproducible regardless of arrival order.
                       return std::tie(a.rank, a.local_index) <
                              std::tie(b.rank, b.local_index);
                     });
    candidates.resize(kk);
    res.threshold = kk ? candidates.back().magnitude : 0.0;
    double min_mag = res.threshold;
    for (const auto& c : candidates) {
      min_mag = std::min(min_mag, static_cast<double>(c.magnitude));
    }
    res.threshold = min_mag;

    // Line 8 (scatter via P2P): per-rank keep lists have different sizes.
    std::vector<std::vector<std::uint32_t>> per_rank(
        static_cast<std::size_t>(size));
    for (const auto& c : candidates) {
      per_rank[static_cast<std::size_t>(c.rank)].push_back(c.local_index);
    }
    for (int r = 1; r < size; ++r) {
      comm::Packer p;
      p.put_vector(per_rank[static_cast<std::size_t>(r)]);
      comm.send(r, comm::kPruneTag, p.take());
    }
    res.keep_indices = std::move(per_rank[0]);
  } else {
    comm::Packer p;
    std::vector<float> mags;
    mags.reserve(local_top.size());
    for (std::uint32_t li : local_top) mags.push_back(std::abs(my_params[li]));
    p.put_vector(mags);
    p.put_vector(local_top);
    comm.send(0, comm::kPruneTag, p.take());

    res.keep_indices = comm.recv_vector<std::uint32_t>(0, comm::kPruneTag);
  }

  // Broadcast the threshold so every rank can report it.
  {
    comm::Packer p;
    p.put(res.threshold);
    auto bytes = comm.broadcast(p.take(), 0);
    comm::Unpacker u(bytes);
    res.threshold = u.get<double>();
  }

  std::sort(res.keep_indices.begin(), res.keep_indices.end());
  return res;
}

void apply_prune_mask(std::span<float> params,
                      std::span<const std::uint32_t> keep_indices) {
  std::vector<bool> keep(params.size(), false);
  for (std::uint32_t i : keep_indices) {
    DYNMO_CHECK(i < params.size(), "keep index out of range");
    keep[i] = true;
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (!keep[i]) params[i] = 0.0f;
  }
}

}  // namespace dynmo::dynamic
