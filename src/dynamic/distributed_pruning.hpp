// Distributed global magnitude pruning — the paper's Algorithm 1, for real.
//
// Each rank holds only its own shard of the model's parameters.  Global
// top-k selection proceeds exactly as in the paper:
//   1. each rank finds its local top-k candidates by magnitude,
//   2. rank 0 gathers the candidates (P2P send/recv, *not* a collective —
//      candidate counts differ per rank and other ranks lack the size
//      information an alltoallv would need, §4),
//   3. rank 0 computes the global top-k among candidates,
//   4. each rank receives back the flat indices it must keep and compresses
//      its shard (CSR via tensor::CsrMatrix, or in-place zeroing).
//
// Correctness property (tested): the surviving set equals what a single
// process computing top-k over the concatenation of all shards would keep.
#pragma once

#include <span>
#include <vector>

#include "comm/communicator.hpp"
#include "tensor/tensor.hpp"

namespace dynmo::dynamic {

struct GlobalPruneResult {
  /// Flat indices (into this rank's concatenated parameter shard) to keep.
  std::vector<std::uint32_t> keep_indices;
  std::size_t global_kept = 0;   ///< k actually kept across all ranks
  std::size_t local_before = 0;  ///< this rank's parameter count
  double threshold = 0.0;        ///< |value| of the smallest survivor
};

/// Run Algorithm 1 over `comm`.  `my_params` is this rank's flat parameter
/// shard; `sparsity` in [0,1) is the global fraction to remove.  Every rank
/// must call this collectively.  Ranks' shards may have different sizes.
GlobalPruneResult global_magnitude_prune(const comm::Communicator& comm,
                                         std::span<const float> my_params,
                                         double sparsity);

/// Apply a prune result in place: zero every parameter not in keep_indices.
void apply_prune_mask(std::span<float> params,
                      std::span<const std::uint32_t> keep_indices);

}  // namespace dynmo::dynamic
