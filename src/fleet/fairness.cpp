#include "fleet/fairness.hpp"

#include "core/error.hpp"

namespace dynmo::fleet {

std::vector<int> weighted_max_min_shares(int capacity,
                                         std::span<const ShareClaim> claims) {
  DYNMO_CHECK(capacity >= 0, "negative pool capacity " << capacity);
  std::vector<int> share(claims.size(), 0);
  int left = capacity;
  for (std::size_t i = 0; i < claims.size(); ++i) {
    const ShareClaim& c = claims[i];
    DYNMO_CHECK(c.weight > 0.0,
                "claim " << i << " has non-positive weight " << c.weight);
    DYNMO_CHECK(c.floor_gpus >= 0 && c.cap_gpus >= c.floor_gpus,
                "claim " << i << " has floor " << c.floor_gpus
                         << " above cap " << c.cap_gpus);
    share[i] = c.floor_gpus;
    left -= c.floor_gpus;
  }
  DYNMO_CHECK(left >= 0,
              "fair-share floors exceed the pool (" << capacity << " GPUs)");

  while (left > 0) {
    int best = -1;
    double best_level = 0.0;
    for (std::size_t i = 0; i < claims.size(); ++i) {
      if (share[i] >= claims[i].cap_gpus) continue;
      const double level = share[i] / claims[i].weight;
      if (best < 0 || level < best_level) {
        best = static_cast<int>(i);
        best_level = level;
      }
    }
    if (best < 0) break;  // everyone capped; the remainder stays free
    ++share[best];
    --left;
  }
  return share;
}

}  // namespace dynmo::fleet
