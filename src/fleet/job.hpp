// Fleet job registry types (docs/FLEET.md "The job table").
//
// A job is a whole elastic training session competing for the shared GPU
// pool: a priority class, a fair-share weight, a [min, max] footprint,
// and a factory that materializes its runtime::TrainingSession once the
// arbiter admits it at some granted worker count.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "repack/elastic.hpp"
#include "runtime/session.hpp"

namespace dynmo::fleet {

/// Builds the job's session at admission time.  `initial_workers` is the
/// admission grant (min_gpus <= grant <= max_gpus); `cluster` is the
/// arbiter itself, to be wired into SessionConfig::elastic.cluster.  The
/// factory must configure the session coherently with its JobSpec:
///   - pipeline_stages = max_gpus (the cost surfaces' ceiling),
///   - initial_active_workers = initial_workers,
///   - elastic.enabled = true, elastic.cluster = cluster,
///   - elastic.pod = the JobSpec's name (the arbiter routes PATCHes by
///     pod name and rejects unknown pods),
///   - elastic.min_workers = min_gpus (preemption shrinks to this floor).
/// Anything the session references but does not own (model, dynamism
/// engine) must be kept alive by state captured in the factory closure —
/// the arbiter holds the factory until the job finishes.
using SessionFactory =
    std::function<std::unique_ptr<runtime::TrainingSession>(
        int initial_workers, repack::ControlPlane* cluster)>;

struct JobSpec {
  std::string name;     ///< pod name, unique within the fleet
  int priority = 0;     ///< higher preempts strictly lower (docs/FLEET.md)
  double weight = 1.0;  ///< weighted max-min fair-share entitlement
  int min_gpus = 1;     ///< below this the job cannot run at all
  int max_gpus = 0;     ///< footprint ceiling (= session pipeline_stages)
  double arrival_s = 0.0;  ///< fleet-clock time the job shows up
  SessionFactory factory;
};

/// Where a job is in its lifecycle: waiting for an admissible grant,
/// training, or done (its SessionResult captured in the outcome).
enum class JobPhase { Pending, Running, Finished };

struct JobOutcome {
  std::string name;
  int priority = 0;
  double arrival_s = 0.0;
  double admitted_s = 0.0;   ///< fleet clock at admission
  double finished_s = 0.0;   ///< fleet clock when the session completed
  int admitted_gpus = 0;     ///< the admission grant
  int preemptions = 0;       ///< times this job was forced to shrink
  runtime::SessionResult result;
};

}  // namespace dynmo::fleet
