// Event-driven fleet clock (docs/FLEET.md "The fleet clock").
//
// The arbiter interleaves N training sessions on simulated time: each
// session advances one sim_stride window per event, and the next window
// is scheduled at now + the wall-clock seconds the last one covered.
// Determinism matters more than sophistication here — the bench commits
// its numbers — so events are totally ordered by (time_s, seq): ties on
// the clock break by insertion order, never by heap internals, pointer
// values, or the host's wall clock.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "core/error.hpp"

namespace dynmo::fleet {

/// One scheduled occurrence: a job arrival (phase Pending) or a running
/// session's next stepping window becoming due.
struct Event {
  double time_s = 0.0;
  std::int64_t seq = 0;  ///< insertion order, the deterministic tie-break
  int job = -1;          ///< index into the arbiter's job table
};

class EventClock {
 public:
  /// Schedule `job` at `time_s`; scheduling into the past is a bug (the
  /// fleet would travel backwards through states it already priced).
  void push(double time_s, int job) {
    DYNMO_CHECK(time_s >= now_, "event for job " << job << " at "
                                << time_s << "s is before the fleet clock ("
                                << now_ << "s)");
    heap_.push(Event{time_s, seq_++, job});
  }

  bool empty() const { return heap_.empty(); }

  /// Pop the earliest event and advance the clock to it.
  Event pop() {
    DYNMO_CHECK(!heap_.empty(), "pop on an empty fleet clock");
    Event e = heap_.top();
    heap_.pop();
    now_ = e.time_s;
    return e;
  }

  double now() const { return now_; }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time_s != b.time_s) return a.time_s > b.time_s;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::int64_t seq_ = 0;
  double now_ = 0.0;
};

}  // namespace dynmo::fleet
