// Multi-tenant fleet arbiter: N elastic jobs competing for one GPU pool
// (docs/FLEET.md has the state machine, fairness formula, and preemption
// pricing in full).
//
// The arbiter owns the pool and is itself the repack::ControlPlane the
// jobs' ElasticControllers PATCH against — the same JobManagerClient
// handshake that talks to MockEckCluster in single-job runs, now mediated
// by policy instead of trust:
//
//   admit    a job arrives; its grant is its weighted max-min fair share
//            clamped to [min_gpus, max_gpus] and to what the pool can
//            actually free.
//   grant /  a running job's expand PATCH; granted from unreserved free
//   deny     capacity when fairness (or work-conserving slack) allows and
//            the fleet-payoff rule prices it profitable, else 409.
//   release  a shrink PATCH; releasing capacity is never refused.
//   preempt  an arriving job that cannot get its minimum forces running
//            jobs through the checkpoint-coordinated shrink path
//            (TrainingSession::request_shrink): equal-priority victims
//            give back only what they hold above fair share, strictly
//            lower-priority victims can be dug down to their minimum.
//            Every preemption is priced with the payoff-window rule in
//            fleet GPU-seconds before anything is forced.
//   finish   a session completes; its allocation returns to the pool.
//
// Every verdict is appended to FleetResult::decisions and — when a trace
// directory is configured — to the schema-versioned fleet_decisions
// telemetry table (docs/TELEMETRY.md).
#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "fleet/clock.hpp"
#include "fleet/fairness.hpp"
#include "fleet/job.hpp"
#include "repack/elastic.hpp"
#include "telemetry/trace_writer.hpp"

namespace dynmo::fleet {

struct ArbiterConfig {
  int total_gpus = 16;
  /// Iterations a preemption's (or priced grow's) exposed cost must
  /// amortize within — the session's migration/restart payoff rule lifted
  /// to fleet GPU-seconds.  <= 0 disables the pricing gates (every wanted
  /// transition executes; capacity and fairness still gate).
  double payoff_window_iters = 50.0;
  /// false → arriving jobs wait for capacity instead of forcing running
  /// jobs to shrink.
  bool allow_preemption = true;
  /// Work conservation: a grow above fair share is still granted when the
  /// unreserved pool has the capacity (nobody below share is asking).
  /// false → strict fairness, grows are capped at the share.
  bool work_conserving = true;
  /// Set `telemetry.dir` to stream the fleet_decisions table (plus
  /// catalog.json) to a trace directory; decisions are always collected
  /// in FleetResult::decisions either way.
  telemetry::TelemetryConfig telemetry{};
};

struct FleetResult {
  double makespan_s = 0.0;   ///< fleet clock when the last job finished
  /// Integral of (active workers x wall-clock) over every session window.
  double busy_gpu_s = 0.0;
  double utilization = 0.0;  ///< busy_gpu_s / (total_gpus * makespan_s)
  /// Sum over jobs of total tokens trained, divided by the makespan —
  /// the fleet-level throughput the bench compares against static
  /// equal-split partitioning.
  double aggregate_tokens_per_sec = 0.0;
  double gpu_hours_saved = 0.0;  ///< summed over all sessions
  int admits = 0;
  int grants = 0;
  int denies = 0;
  int releases = 0;     ///< voluntary shrink PATCHes (preemptions excluded)
  int preemptions = 0;  ///< executed forced shrinks (per victim)
  std::vector<JobOutcome> jobs;  ///< submission order
  std::vector<telemetry::FleetDecisionRow> decisions;
};

class Arbiter : public repack::ControlPlane {
 public:
  explicit Arbiter(ArbiterConfig cfg);
  ~Arbiter() override;

  /// Register a job; every submit() must precede run().  Throws on a
  /// duplicate name, min_gpus > total_gpus, or a malformed spec.
  void submit(JobSpec spec);

  /// Drive every submitted job from arrival to completion under the fleet
  /// clock.  Throws if a job can never be admitted (its minimum exceeds
  /// what the pool could ever free).
  FleetResult run();

  // --- repack::ControlPlane ----------------------------------------------
  // The jobs' ElasticControllers call these re-entrantly from inside
  // step(): baseline claims at start(), grow/shrink PATCHes at elastic
  // evaluation points, and the forced-shrink commits of preemptions.
  int patch_pod(const repack::PatchRequest& req) override;
  /// Unreserved free capacity: pool minus allocations minus what pending
  /// preemption grants have already spoken for.
  int free_gpus() const override;
  int total_gpus() const override { return cfg_.total_gpus; }

 private:
  struct Job {
    JobSpec spec;
    JobPhase phase = JobPhase::Pending;
    std::unique_ptr<runtime::TrainingSession> session;
    int alloc = 0;          ///< GPUs currently claimed via PATCH
    int reserved = 0;       ///< freed-by-preemption GPUs earmarked for it
    int pending_grant = 0;  ///< admission grant awaiting its baseline PATCH
    bool baseline_seen = false;
    /// A preemption's request_shrink is queued but its shrink PATCH has
    /// not landed yet; the job is skipped as a further victim and its
    /// landing PATCH does not count as a voluntary release.
    bool shrink_pending = false;
    /// The job's arrival event has been popped (or superseded by an
    /// earlier admission); a job admitted from try_admit_pending() must
    /// not be stepped by its now-stale arrival event.
    bool arrival_consumed = false;
    double admitted_s = 0.0;
    double finished_s = 0.0;
    int preemptions = 0;
  };

  /// Weighted max-min shares over the running jobs, plus `extra_job` when
  /// >= 0 (an admission candidate).  Indexed by job table index; jobs not
  /// included get share -1.
  std::vector<int> fair_shares(int extra_job) const;
  int available_for(const Job& j) const;  ///< free minus others' reservations

  /// Try to admit a pending job; `record_defer` emits the denied admit row
  /// (arrival only — retries stay silent).  May plan a preemption.
  void try_admit(int idx, bool record_defer);
  void try_admit_pending();
  void step_job(int idx);
  void finish_job(int idx, double end_s);

  void emit(const telemetry::FleetDecisionRow& row);

  ArbiterConfig cfg_;
  mutable std::mutex mu_;  ///< guards pool accounting (ControlPlane calls)
  std::vector<Job> jobs_;
  int free_pool_;      ///< GPUs not claimed by any pod
  int reserved_total_ = 0;
  EventClock clock_;
  std::optional<telemetry::TraceWriter> trace_;
  FleetResult result_;
  bool ran_ = false;
};

}  // namespace dynmo::fleet
