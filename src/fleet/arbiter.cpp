#include "fleet/arbiter.hpp"

#include <algorithm>
#include <utility>

#include "core/error.hpp"

namespace dynmo::fleet {

namespace {

/// Victim candidates are examined lowest priority class first; within a
/// class, submission order (deterministic, like every fleet tie-break).
struct VictimOrder {
  int priority;
  int idx;
  bool operator<(const VictimOrder& o) const {
    if (priority != o.priority) return priority < o.priority;
    return idx < o.idx;
  }
};

/// One planned forced shrink of a preemption, priced before execution.
struct PlannedShrink {
  int victim = -1;
  int target = 0;
  int take = 0;
  runtime::TransitionQuote quote;
};

}  // namespace

Arbiter::Arbiter(ArbiterConfig cfg)
    : cfg_(std::move(cfg)), free_pool_(cfg_.total_gpus) {
  DYNMO_CHECK(cfg_.total_gpus > 0,
              "fleet pool needs at least one GPU, got " << cfg_.total_gpus);
}

Arbiter::~Arbiter() = default;

void Arbiter::submit(JobSpec spec) {
  DYNMO_CHECK(!ran_, "submit() after run()");
  DYNMO_CHECK(!spec.name.empty(), "job needs a pod name");
  for (const Job& j : jobs_) {
    DYNMO_CHECK(j.spec.name != spec.name,
                "duplicate job name '" << spec.name << "'");
  }
  DYNMO_CHECK(spec.weight > 0.0, "job '" << spec.name
                                         << "' has non-positive weight");
  DYNMO_CHECK(spec.min_gpus >= 1 && spec.max_gpus >= spec.min_gpus,
              "job '" << spec.name << "' wants [" << spec.min_gpus << ", "
                      << spec.max_gpus << "] GPUs");
  DYNMO_CHECK(spec.min_gpus <= cfg_.total_gpus,
              "job '" << spec.name << "' needs " << spec.min_gpus
                      << " GPUs but the pool only has " << cfg_.total_gpus);
  DYNMO_CHECK(spec.arrival_s >= 0.0,
              "job '" << spec.name << "' arrives before the clock starts");
  DYNMO_CHECK(spec.factory != nullptr,
              "job '" << spec.name << "' has no session factory");
  Job j;
  j.spec = std::move(spec);
  jobs_.push_back(std::move(j));
}

int Arbiter::free_gpus() const {
  std::scoped_lock lock(mu_);
  return std::max(0, free_pool_ - reserved_total_);
}

int Arbiter::available_for(const Job& j) const {
  std::scoped_lock lock(mu_);
  return std::max(0, free_pool_ - (reserved_total_ - j.reserved));
}

std::vector<int> Arbiter::fair_shares(int extra_job) const {
  std::vector<int> out(jobs_.size(), -1);
  std::vector<ShareClaim> claims;
  std::vector<int> index;
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    const Job& j = jobs_[i];
    const bool candidate = static_cast<int>(i) == extra_job;
    if (j.phase != JobPhase::Running && !candidate) continue;
    ShareClaim c;
    c.weight = j.spec.weight;
    // A running job's floor is its minimum footprint (it can never be dug
    // below it); an admission candidate enters floorless — its minimum is
    // enforced by the grant clamp, and a guaranteed floor here could
    // oversubscribe the pool before the candidate is even admissible.
    c.floor_gpus = candidate ? 0 : j.spec.min_gpus;
    c.cap_gpus = j.spec.max_gpus;
    claims.push_back(c);
    index.push_back(static_cast<int>(i));
  }
  const auto shares = weighted_max_min_shares(cfg_.total_gpus, claims);
  for (std::size_t k = 0; k < index.size(); ++k) out[index[k]] = shares[k];
  return out;
}

void Arbiter::emit(const telemetry::FleetDecisionRow& row) {
  if (row.kind == "admit" && row.accepted) ++result_.admits;
  if (row.kind == "grant") ++result_.grants;
  if (row.kind == "deny") ++result_.denies;
  if (row.kind == "release") ++result_.releases;
  if (row.kind == "preempt" && row.accepted) ++result_.preemptions;
  result_.decisions.push_back(row);
  if (trace_) trace_->write_fleet_decision(row);
}

void Arbiter::try_admit(int idx, bool record_defer) {
  Job& j = jobs_[idx];
  if (j.phase != JobPhase::Pending) return;
  if (clock_.now() < j.spec.arrival_s) return;

  const auto shares = fair_shares(idx);
  const int share = shares[idx];
  const int avail = available_for(j);
  const int wanted =
      std::clamp(share, j.spec.min_gpus, j.spec.max_gpus);

  if (avail >= j.spec.min_gpus) {
    const int grant = std::min(wanted, avail);
    {
      std::scoped_lock lock(mu_);
      reserved_total_ -= j.reserved;
      j.reserved = 0;
      j.pending_grant = grant;
    }
    const int free_before = free_gpus();
    j.phase = JobPhase::Running;
    j.admitted_s = clock_.now();
    j.session = j.spec.factory(grant, this);
    DYNMO_CHECK(j.session != nullptr,
                "job '" << j.spec.name << "' factory returned no session");
    j.session->start();  // the baseline PATCH lands in patch_pod()
    DYNMO_CHECK(j.baseline_seen && j.alloc == grant,
                "job '" << j.spec.name
                        << "' did not claim its admission grant of "
                        << grant << " GPUs (misconfigured factory?)");
    JobOutcome& out = result_.jobs[idx];
    out.name = j.spec.name;
    out.priority = j.spec.priority;
    out.arrival_s = j.spec.arrival_s;
    out.admitted_s = j.admitted_s;
    out.admitted_gpus = grant;

    telemetry::FleetDecisionRow row;
    row.time_s = clock_.now();
    row.job = j.spec.name;
    row.kind = "admit";
    row.accepted = true;
    row.priority = j.spec.priority;
    row.gpus_before = 0;
    row.gpus_after = grant;
    row.pool_free_before = free_before;
    row.pool_free_after = free_gpus();
    row.fair_share = share;
    emit(row);
    clock_.push(clock_.now(), idx);
    return;
  }

  // Not enough unreserved capacity for the job's minimum: plan a
  // preemption (docs/FLEET.md "Preemption pricing").  Equal-priority
  // victims only give back what they hold above fair share; strictly
  // lower-priority victims can be dug down to their minimum.
  bool preempted = false;
  if (cfg_.allow_preemption) {
    std::vector<VictimOrder> order;
    for (std::size_t v = 0; v < jobs_.size(); ++v) {
      const Job& cand = jobs_[v];
      if (cand.phase != JobPhase::Running || cand.shrink_pending) continue;
      if (cand.spec.priority > j.spec.priority) continue;
      order.push_back({cand.spec.priority, static_cast<int>(v)});
    }
    std::sort(order.begin(), order.end());

    int needed = j.spec.min_gpus - avail;
    std::vector<PlannedShrink> plan;
    for (const VictimOrder& o : order) {
      if (needed <= 0) break;
      Job& victim = jobs_[o.idx];
      const int floor =
          victim.spec.priority < j.spec.priority
              ? victim.spec.min_gpus
              : std::max(shares[o.idx], victim.spec.min_gpus);
      const int take = std::min(victim.alloc - floor, needed);
      if (take <= 0) continue;
      const int target = victim.alloc - take;
      const auto quote = victim.session->quote_shrink(target);
      if (!quote.feasible) continue;
      plan.push_back({o.idx, target, take, quote});
      needed -= take;
    }

    if (needed <= 0 && !plan.empty()) {
      // Fleet-payoff pricing in GPU-seconds.  Moving GPUs between jobs is
      // zero-sum in raw GPU-time, so the gate weighs what the fleet
      // *actually* loses — each victim's restart stall across its
      // pre-shrink footprint, plus the scaling inefficiency of running it
      // on the smaller one (the growth of iter_s x workers) over the
      // window — against the GPU-seconds of demand the waiting claimant
      // finally gets to serve.
      const double W = cfg_.payoff_window_iters;
      const auto victim_cost = [W](const PlannedShrink& p) {
        const double eff_before = p.quote.iter_s_before * p.quote.workers_before;
        const double eff_after = p.quote.iter_s_after * p.quote.workers_after;
        return p.quote.restart_stall_s * p.quote.workers_before +
               std::max(0.0, eff_after - eff_before) * W;
      };
      double gain = 0.0, cost = 0.0;
      for (const PlannedShrink& p : plan) {
        gain += p.take * W * p.quote.iter_s_before;
        cost += victim_cost(p);
      }
      const bool accepted = W <= 0.0 || gain >= cost;
      for (const PlannedShrink& p : plan) {
        Job& victim = jobs_[p.victim];
        telemetry::FleetDecisionRow row;
        row.time_s = clock_.now();
        row.job = j.spec.name;
        row.kind = "preempt";
        row.accepted = accepted;
        row.priority = j.spec.priority;
        row.gpus_before = victim.alloc;
        row.gpus_after = p.target;
        row.pool_free_before = free_gpus();
        row.fair_share = share;
        row.projected_gain_gpu_s = p.take * W * p.quote.iter_s_before;
        row.exposed_cost_gpu_s = victim_cost(p);
        row.victim = victim.spec.name;
        if (accepted) {
          victim.session->request_shrink(p.target);
          victim.shrink_pending = true;
          ++victim.preemptions;
          std::scoped_lock lock(mu_);
          j.reserved += p.take;
          reserved_total_ += p.take;
        }
        row.pool_free_after = free_gpus();
        // A refused plan is re-priced on every later admission retry;
        // recording it once, at arrival, keeps the decision log bounded
        // (same rule as the deferred-admit row below).
        if (accepted || record_defer) emit(row);
      }
      preempted = accepted;
    }
  }

  if (!preempted && record_defer) {
    telemetry::FleetDecisionRow row;
    row.time_s = clock_.now();
    row.job = j.spec.name;
    row.kind = "admit";
    row.accepted = false;
    row.priority = j.spec.priority;
    row.gpus_before = 0;
    row.gpus_after = j.spec.min_gpus;  // the wanted minimum
    row.pool_free_before = free_gpus();
    row.pool_free_after = free_gpus();
    row.fair_share = share;
    emit(row);
  }
}

void Arbiter::try_admit_pending() {
  // Highest priority first; arrival then submission order break ties.
  std::vector<int> pending;
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    if (jobs_[i].phase == JobPhase::Pending &&
        jobs_[i].spec.arrival_s <= clock_.now()) {
      pending.push_back(static_cast<int>(i));
    }
  }
  std::sort(pending.begin(), pending.end(), [this](int a, int b) {
    const JobSpec& ja = jobs_[a].spec;
    const JobSpec& jb = jobs_[b].spec;
    if (ja.priority != jb.priority) return ja.priority > jb.priority;
    if (ja.arrival_s != jb.arrival_s) return ja.arrival_s < jb.arrival_s;
    return a < b;
  });
  for (int idx : pending) try_admit(idx, /*record_defer=*/false);
}

void Arbiter::step_job(int idx) {
  Job& j = jobs_[idx];
  const double t0 = clock_.now();
  const double dt = j.session->step();
  // The footprint the window ran on: forced shrinks execute at window
  // entry and elastic transitions within it, so the post-step count is
  // the settled one.
  result_.busy_gpu_s += j.session->active_workers() * dt;
  if (!j.session->done()) {
    clock_.push(t0 + dt, idx);
  } else {
    finish_job(idx, t0 + dt);
  }
}

void Arbiter::finish_job(int idx, double end_s) {
  Job& j = jobs_[idx];
  JobOutcome& out = result_.jobs[idx];
  out.result = j.session->finish();
  out.finished_s = end_s;
  out.preemptions = j.preemptions;

  const int held = j.alloc;
  const int free_before = free_gpus();
  {
    std::scoped_lock lock(mu_);
    free_pool_ += j.alloc;
    j.alloc = 0;
  }
  j.phase = JobPhase::Finished;
  j.finished_s = end_s;
  j.session.reset();
  j.spec.factory = nullptr;  // drop the closure's model/engine ownership

  telemetry::FleetDecisionRow row;
  row.time_s = end_s;
  row.job = j.spec.name;
  row.kind = "finish";
  row.accepted = true;
  row.priority = j.spec.priority;
  row.gpus_before = held;
  row.gpus_after = 0;
  row.pool_free_before = free_before;
  row.pool_free_after = free_gpus();
  emit(row);

  result_.makespan_s = std::max(result_.makespan_s, end_s);
}

int Arbiter::patch_pod(const repack::PatchRequest& req) {
  if (req.pod.empty() || req.gpus_requested < 0 ||
      req.gpus_limit < req.gpus_requested) {
    return 422;
  }
  Job* job = nullptr;
  int idx = -1;
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    if (jobs_[i].spec.name == req.pod) {
      job = &jobs_[i];
      idx = static_cast<int>(i);
      break;
    }
  }
  if (job == nullptr) return 422;  // unknown pod: not one of our jobs
  Job& j = *job;
  DYNMO_CHECK(j.phase == JobPhase::Running,
              "PATCH for pod '" << req.pod << "' outside its run");

  if (!j.baseline_seen) {
    // The baseline claim the session's controller establishes at start();
    // admission already sized and funded it.
    DYNMO_CHECK(req.gpus_requested == j.pending_grant,
                "pod '" << req.pod << "' baseline claim of "
                        << req.gpus_requested
                        << " GPUs does not match its admission grant of "
                        << j.pending_grant);
    std::scoped_lock lock(mu_);
    DYNMO_CHECK(free_pool_ >= req.gpus_requested,
                "admission grant exceeds the free pool (arbiter bug)");
    free_pool_ -= req.gpus_requested;
    j.alloc = req.gpus_requested;
    j.baseline_seen = true;
    return 200;
  }

  if (req.gpus_requested == j.alloc) return 200;

  if (req.gpus_requested < j.alloc) {
    // Releases are never refused.  A preemption's forced shrink lands
    // here too; it was already priced and recorded as its preempt row.
    const int free_before = free_gpus();
    const int before = j.alloc;
    {
      std::scoped_lock lock(mu_);
      free_pool_ += j.alloc - req.gpus_requested;
      j.alloc = req.gpus_requested;
    }
    if (j.shrink_pending) {
      j.shrink_pending = false;
    } else {
      telemetry::FleetDecisionRow row;
      row.time_s = clock_.now();
      row.job = j.spec.name;
      row.kind = "release";
      row.accepted = true;
      row.priority = j.spec.priority;
      row.gpus_before = before;
      row.gpus_after = req.gpus_requested;
      row.pool_free_before = free_before;
      row.pool_free_after = free_gpus();
      row.fair_share = fair_shares(-1)[idx];
      emit(row);
    }
    return 200;
  }

  // Grow: gate on capacity, fairness, and the fleet-payoff rule.
  const int delta = req.gpus_requested - j.alloc;
  const auto quote = j.session->quote_expand(req.gpus_requested);
  const auto shares = fair_shares(-1);
  const int share = shares[idx];
  const int unreserved = free_gpus();

  const bool capacity_ok = delta <= unreserved;
  const bool fairness_ok =
      req.gpus_requested <= share || cfg_.work_conserving;
  const double W = cfg_.payoff_window_iters;
  const double gain =
      std::max(0.0, quote.iter_s_before - quote.iter_s_after) * W *
      quote.workers_after;
  const double cost = quote.restart_stall_s * quote.workers_after;
  const bool priced_ok = W <= 0.0 || gain >= cost;
  const bool granted =
      quote.feasible && capacity_ok && fairness_ok && priced_ok;

  telemetry::FleetDecisionRow row;
  row.time_s = clock_.now();
  row.job = j.spec.name;
  row.kind = granted ? "grant" : "deny";
  row.accepted = granted;
  row.priority = j.spec.priority;
  row.gpus_before = j.alloc;
  row.gpus_after = req.gpus_requested;
  row.pool_free_before = unreserved;
  row.fair_share = share;
  row.projected_gain_gpu_s = gain;
  row.exposed_cost_gpu_s = cost;
  if (granted) {
    std::scoped_lock lock(mu_);
    free_pool_ -= delta;
    j.alloc = req.gpus_requested;
  }
  row.pool_free_after = free_gpus();
  emit(row);
  return granted ? 200 : 409;
}

FleetResult Arbiter::run() {
  DYNMO_CHECK(!ran_, "Arbiter::run() is single-shot");
  ran_ = true;
  DYNMO_CHECK(!jobs_.empty(), "no jobs submitted");
  if (cfg_.telemetry.enabled()) {
    telemetry::RunInfo info;
    info.producer = "fleet";
    trace_.emplace(cfg_.telemetry, info);
  }
  result_.jobs.resize(jobs_.size());
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    clock_.push(jobs_[i].spec.arrival_s, static_cast<int>(i));
    // Pre-fill identity so an unadmitted job is still reported.
    result_.jobs[i].name = jobs_[i].spec.name;
    result_.jobs[i].priority = jobs_[i].spec.priority;
    result_.jobs[i].arrival_s = jobs_[i].spec.arrival_s;
  }

  while (!clock_.empty()) {
    const Event e = clock_.pop();
    Job& j = jobs_[e.job];
    if (!j.arrival_consumed) {
      // The job's arrival.  If try_admit_pending() already admitted it at
      // this instant, the event is stale — its stepping chain was pushed
      // by the admission.
      j.arrival_consumed = true;
      if (j.phase == JobPhase::Pending) try_admit(e.job, /*record_defer=*/true);
    } else if (j.phase == JobPhase::Running) {
      step_job(e.job);
    }
    // Capacity may have been freed (finish, release, landed preemption):
    // revisit deferred admissions before the clock moves on.
    try_admit_pending();
  }

  for (const Job& j : jobs_) {
    DYNMO_CHECK(j.phase == JobPhase::Finished,
                "job '" << j.spec.name
                        << "' was never admitted — the pool can never free "
                           "its minimum of "
                        << j.spec.min_gpus << " GPUs");
  }
  if (trace_) trace_->finalize();

  double total_tokens = 0.0;
  for (const JobOutcome& out : result_.jobs) {
    total_tokens += out.result.tokens_per_sec * out.result.total_time_s;
    result_.gpu_hours_saved += out.result.gpu_hours_saved;
  }
  if (result_.makespan_s > 0.0) {
    result_.aggregate_tokens_per_sec = total_tokens / result_.makespan_s;
    result_.utilization =
        result_.busy_gpu_s / (cfg_.total_gpus * result_.makespan_s);
  }
  return std::move(result_);
}

}  // namespace dynmo::fleet
