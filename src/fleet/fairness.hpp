// Weighted max-min fairness over an integer GPU pool (docs/FLEET.md
// "Fair shares").
//
// The arbiter gates every grow and sizes every admission against these
// shares: a job is entitled to the allocation water-filling gives it, and
// anything above that is granted only from genuine slack (work
// conservation) or taken back when someone below share shows up.
#pragma once

#include <span>
#include <vector>

namespace dynmo::fleet {

/// One job's claim on the pool for fair-share purposes.
struct ShareClaim {
  double weight = 1.0;  ///< relative entitlement (must be > 0)
  int floor_gpus = 0;   ///< granted before any water-filling (job minimum)
  int cap_gpus = 0;     ///< never allocated past this (job ceiling)
};

/// Weighted max-min fair integer shares of `capacity` GPUs.
///
/// Floors are granted first (they must fit — the arbiter only admits jobs
/// whose minima fit the pool), then the remainder is water-filled one GPU
/// at a time to the claim with the smallest share/weight still below its
/// cap, ties to the lowest index.  The result is the unique weighted
/// max-min allocation up to integer rounding; leftover capacity (everyone
/// capped) stays free.
std::vector<int> weighted_max_min_shares(int capacity,
                                         std::span<const ShareClaim> claims);

}  // namespace dynmo::fleet
