#include "model/layer.hpp"

#include <numeric>

#include "core/error.hpp"

namespace dynmo::model {

const char* to_string(LayerKind kind) {
  switch (kind) {
    case LayerKind::Embedding: return "embedding";
    case LayerKind::TransformerBlock: return "block";
    case LayerKind::MoeTransformerBlock: return "moe_block";
    case LayerKind::LmHead: return "lm_head";
  }
  return "?";
}

std::size_t ModelDesc::total_params() const {
  return std::accumulate(layers.begin(), layers.end(), std::size_t{0},
                         [](std::size_t acc, const LayerDesc& l) {
                           return acc + l.params;
                         });
}

std::size_t ModelDesc::num_blocks() const {
  std::size_t n = 0;
  for (const auto& l : layers) {
    if (l.kind == LayerKind::TransformerBlock ||
        l.kind == LayerKind::MoeTransformerBlock) {
      ++n;
    }
  }
  return n;
}

namespace {

std::size_t dense_block_params(std::size_t hidden, std::size_t ffn) {
  // QKV + output projection: 4*h^2; MLP: 2*h*ffn; norms + biases ~ 4h.
  return 4 * hidden * hidden + 2 * hidden * ffn + 4 * hidden;
}

std::size_t moe_block_params(std::size_t hidden, std::size_t ffn,
                             std::size_t experts) {
  // Attention as dense, FFN replicated per expert, plus router.
  return 4 * hidden * hidden + experts * (2 * hidden * ffn) +
         experts * hidden + 4 * hidden;
}

}  // namespace

ModelDesc make_gpt(const GptConfig& cfg, const std::string& name) {
  DYNMO_CHECK(cfg.num_blocks > 0, "GPT needs at least one block");
  DYNMO_CHECK(cfg.hidden % cfg.heads == 0,
              "hidden " << cfg.hidden << " not divisible by heads "
                        << cfg.heads);
  ModelDesc m;
  m.name = name;
  int id = 0;
  if (cfg.include_embedding) {
    LayerDesc e;
    e.id = id++;
    e.kind = LayerKind::Embedding;
    e.name = "embedding";
    e.hidden = cfg.hidden;
    e.seq_len = cfg.seq_len;
    e.vocab = cfg.vocab;
    e.params = cfg.vocab * cfg.hidden + cfg.seq_len * cfg.hidden;
    m.layers.push_back(e);
  }
  const std::size_t ffn = cfg.ffn_mult * cfg.hidden;
  for (std::size_t b = 0; b < cfg.num_blocks; ++b) {
    LayerDesc l;
    l.id = id++;
    l.kind = LayerKind::TransformerBlock;
    l.name = "block_" + std::to_string(b);
    l.hidden = cfg.hidden;
    l.seq_len = cfg.seq_len;
    l.heads = cfg.heads;
    l.ffn_hidden = ffn;
    l.params = dense_block_params(cfg.hidden, ffn);
    m.layers.push_back(l);
  }
  if (cfg.include_lm_head) {
    LayerDesc h;
    h.id = id++;
    h.kind = LayerKind::LmHead;
    h.name = "lm_head";
    h.hidden = cfg.hidden;
    h.seq_len = cfg.seq_len;
    h.vocab = cfg.vocab;
    h.params = cfg.vocab * cfg.hidden;
    m.layers.push_back(h);
  }
  return m;
}

ModelDesc make_moe(const MoeConfig& cfg, const std::string& name) {
  ModelDesc m;
  m.name = name;
  int id = 0;
  LayerDesc e;
  e.id = id++;
  e.kind = LayerKind::Embedding;
  e.name = "embedding";
  e.hidden = cfg.hidden;
  e.seq_len = cfg.seq_len;
  e.vocab = cfg.vocab;
  e.params = cfg.vocab * cfg.hidden;
  m.layers.push_back(e);

  const std::size_t ffn = cfg.ffn_mult * cfg.hidden;
  for (std::size_t b = 0; b < cfg.num_blocks; ++b) {
    LayerDesc l;
    l.id = id++;
    l.kind = LayerKind::MoeTransformerBlock;
    l.name = "moe_block_" + std::to_string(b);
    l.hidden = cfg.hidden;
    l.seq_len = cfg.seq_len;
    l.heads = cfg.heads;
    l.ffn_hidden = ffn;
    l.num_experts = cfg.num_experts;
    l.top_k = cfg.top_k;
    l.params = moe_block_params(cfg.hidden, ffn, cfg.num_experts);
    m.layers.push_back(l);
  }

  LayerDesc h;
  h.id = id++;
  h.kind = LayerKind::LmHead;
  h.name = "lm_head";
  h.hidden = cfg.hidden;
  h.seq_len = cfg.seq_len;
  h.vocab = cfg.vocab;
  h.params = cfg.vocab * cfg.hidden;
  m.layers.push_back(h);
  return m;
}

MoeConfig mixtral_8x7b_config() {
  MoeConfig c;
  c.num_blocks = 32;
  c.hidden = 4096;
  c.seq_len = 2048;
  c.heads = 32;
  c.ffn_mult = 3;  // 14336/4096 ≈ 3.5; 3 keeps params near 46.7B/8-expert
  c.num_experts = 8;
  c.top_k = 2;
  c.vocab = 32000;
  return c;
}

MoeConfig llama_moe_3_5b_config() {
  MoeConfig c;
  c.num_blocks = 32;
  c.hidden = 2048;
  c.seq_len = 2048;
  c.heads = 16;
  c.ffn_mult = 2;
  c.num_experts = 16;
  c.top_k = 4;
  c.vocab = 32000;
  return c;
}

}  // namespace dynmo::model
