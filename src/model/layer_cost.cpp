#include "model/layer_cost.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace dynmo::model {

namespace {
// Backward FLOPs of a linear layer ≈ 2x forward (dgrad + wgrad), split
// roughly evenly between the two.
constexpr double kDgradFactor = 1.0;
constexpr double kWgradFactor = 1.0;
}  // namespace

double LayerCostModel::block_forward_s(const LayerDesc& l, const LayerState& s,
                                       std::size_t mb) const {
  const std::size_t tokens_full = mb * l.seq_len;
  const double tf = std::clamp(s.token_fraction, 0.0, 1.0);
  const auto tokens =
      static_cast<std::size_t>(std::max(1.0, tf * static_cast<double>(tokens_full)));

  const std::size_t h = l.hidden;
  const std::size_t d_head = l.heads ? h / l.heads : h;

  // Attention: QKV projection, score/value matmuls (flash), output proj.
  // Unstructured pruning sparsifies *all* linear weights, so the QKV and
  // output projections run on the sparse backend too.
  const double qkv =
      kernels_.spmm(tokens, 3 * h, h, s.weight_density, s.spmm_backend);
  const double attn = kernels_.flash_attention(
      mb, l.heads, static_cast<std::size_t>(
                       std::max(1.0, tf * static_cast<double>(l.seq_len))),
      d_head, s.attn_density);
  const double proj =
      kernels_.spmm(tokens, h, h, s.weight_density, s.spmm_backend);

  // FFN: two (possibly sparse) GEMMs; for MoE blocks the routed token count
  // per hosted expert set is scaled by the routing load factor.
  double ffn = 0.0;
  if (l.kind == LayerKind::MoeTransformerBlock) {
    const double routed =
        static_cast<double>(tokens) * static_cast<double>(l.top_k) *
        std::max(0.0, s.moe_load);
    const auto t = static_cast<std::size_t>(std::max(1.0, routed));
    ffn = kernels_.spmm(t, l.ffn_hidden, h, s.weight_density, s.spmm_backend) +
          kernels_.spmm(t, h, l.ffn_hidden, s.weight_density, s.spmm_backend);
    // Router projection: tokens x experts.
    ffn += kernels_.gemm(tokens, l.num_experts, h);
  } else {
    ffn = kernels_.spmm(tokens, l.ffn_hidden, h, s.weight_density,
                        s.spmm_backend) +
          kernels_.spmm(tokens, h, l.ffn_hidden, s.weight_density,
                        s.spmm_backend);
  }

  // Norms, residuals, softmax tails: bandwidth-bound.
  const double elementwise = kernels_.memory_bound(
      8.0 * static_cast<double>(tokens) * static_cast<double>(h) * 2.0);

  return (qkv + attn + proj + ffn + elementwise) *
         std::max(0.0, s.compute_scale);
}

LayerTimes LayerCostModel::layer_times(const LayerDesc& layer,
                                       const LayerState& state,
                                       std::size_t micro_batch) const {
  DYNMO_CHECK(micro_batch > 0, "micro batch must be positive");
  LayerTimes t;
  const std::size_t tokens_full = micro_batch * layer.seq_len;
  const double tf = std::clamp(state.token_fraction, 0.0, 1.0);
  const auto tokens = static_cast<std::size_t>(
      std::max(1.0, tf * static_cast<double>(tokens_full)));

  switch (layer.kind) {
    case LayerKind::Embedding: {
      // Lookup + positional add: bandwidth bound.
      t.forward_s = kernels_.memory_bound(
          static_cast<double>(tokens) * static_cast<double>(layer.hidden) * 2.0 * 2.0);
      t.backward_input_s = 0.0;  // nothing upstream
      t.backward_weight_s = state.frozen ? 0.0 : t.forward_s;
      break;
    }
    case LayerKind::LmHead: {
      t.forward_s = kernels_.gemm(tokens, layer.vocab, layer.hidden);
      t.backward_input_s = state.frozen ? 0.0 : t.forward_s * kDgradFactor;
      t.backward_weight_s = state.frozen ? 0.0 : t.forward_s * kWgradFactor;
      break;
    }
    case LayerKind::TransformerBlock:
    case LayerKind::MoeTransformerBlock: {
      t.forward_s = block_forward_s(layer, state, micro_batch);
      t.backward_input_s = state.frozen ? 0.0 : t.forward_s * kDgradFactor;
      t.backward_weight_s = state.frozen ? 0.0 : t.forward_s * kWgradFactor;
      break;
    }
  }
  return t;
}

double LayerCostModel::layer_memory_bytes(
    const LayerDesc& layer, const LayerState& state, std::size_t micro_batch,
    std::size_t resident_microbatches) const {
  const double states = memory_.layer_state_bytes(
      layer.params, state.frozen, std::clamp(state.weight_density, 0.0, 1.0));
  const double act =
      memory_.activation_bytes(micro_batch, layer.seq_len, layer.hidden) *
      static_cast<double>(resident_microbatches) *
      std::clamp(state.token_fraction, 0.0, 1.0);
  return states + act;
}

double LayerCostModel::activation_message_bytes(const LayerDesc& layer,
                                                const LayerState& state,
                                                std::size_t micro_batch) const {
  // bf16 activations: tokens x hidden x 2 bytes.
  return std::clamp(state.token_fraction, 0.0, 1.0) *
         static_cast<double>(micro_batch) *
         static_cast<double>(layer.seq_len) *
         static_cast<double>(layer.hidden) * 2.0;
}

StageCostModels::StageCostModels(LayerCostModel reference,
                                 std::span<const hw::GpuSpec> stage_gpus)
    : reference_(reference) {
  per_stage_.reserve(stage_gpus.size());
  for (const hw::GpuSpec& spec : stage_gpus) {
    per_stage_.emplace_back(hw::KernelCostModel(spec), reference.memory());
  }
}

const LayerCostModel& StageCostModels::stage(int stage) const {
  if (per_stage_.empty()) return reference_;
  DYNMO_CHECK(stage >= 0 && stage < num_stages(),
              "bad stage " << stage << " (have " << num_stages() << ")");
  return per_stage_[static_cast<std::size_t>(stage)];
}

}  // namespace dynmo::model
