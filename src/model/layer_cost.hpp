// Per-layer execution time and memory, combining the static LayerDesc, the
// dynamic LayerState, and the hardware kernel cost model.
//
// This is the "ground truth" the simulator charges per layer per microbatch;
// DynMo's profiler *measures* these times from the executed timeline rather
// than reading them directly — keeping the balancer black-box, as in the
// paper (§3.2).
//
// Semantics of the dynamic multipliers follow the paper's formal model (§2):
//   pruning      — MLP GEMMs become SpMM at `weight_density` on the selected
//                  backend (Sputnik/cuSPARSE/dense, §4.2.2)
//   freezing     — frozen layers still run forward but skip backward and
//                  gradient exchange (Egeria semantics)
//   sparse attn  — `attn_density` scales the touched attention blocks
//   early exit / — `token_fraction` scales every token-proportional term
//   MoD
//   MoE          — `moe_load` scales expert FFN time (routing skew)
#pragma once

#include <span>
#include <vector>

#include "hw/kernel_cost.hpp"
#include "hw/memory_model.hpp"
#include "model/layer.hpp"

namespace dynmo::model {

struct LayerTimes {
  double forward_s = 0.0;
  double backward_input_s = 0.0;   ///< dgrad: needed by the previous stage
  double backward_weight_s = 0.0;  ///< wgrad: schedulable into bubbles (ZB)
  double backward_s() const { return backward_input_s + backward_weight_s; }
  double total_s() const { return forward_s + backward_s(); }
};

class LayerCostModel {
 public:
  LayerCostModel(hw::KernelCostModel kernels, hw::MemoryModel memory)
      : kernels_(kernels), memory_(memory) {}
  explicit LayerCostModel(hw::GpuSpec spec = hw::GpuSpec::h100_sxm5())
      : kernels_(spec), memory_(hw::MemoryModel{}) {}

  /// Time for one microbatch of `micro_batch` sequences through `layer`.
  LayerTimes layer_times(const LayerDesc& layer, const LayerState& state,
                         std::size_t micro_batch) const;

  /// Device bytes the layer pins (params + grads + optimizer + activations
  /// for `resident_microbatches` in-flight microbatches).
  double layer_memory_bytes(const LayerDesc& layer, const LayerState& state,
                            std::size_t micro_batch,
                            std::size_t resident_microbatches) const;

  /// Bytes of activations crossing a stage boundary after this layer.
  double activation_message_bytes(const LayerDesc& layer,
                                  const LayerState& state,
                                  std::size_t micro_batch) const;

  const hw::KernelCostModel& kernels() const { return kernels_; }
  const hw::MemoryModel& memory() const { return memory_; }

 private:
  double block_forward_s(const LayerDesc& l, const LayerState& s,
                         std::size_t mb) const;

  hw::KernelCostModel kernels_;
  hw::MemoryModel memory_;
};

/// Per-stage layer cost models for heterogeneous deployments.
///
/// Balancing weights stay in one currency — the *reference* GPU's seconds —
/// and capacity-weighted diffusion converts between GPUs; but the simulated
/// timeline must charge each stage the time of the GPU actually hosting it.
/// StageCostModels carries both: `reference()` prices the profile,
/// `stage(s)` prices execution.  Default-constructed (or from a single
/// LayerCostModel) it is uniform and `stage(s)` is the reference — the
/// homogeneous fast path.
class StageCostModels {
 public:
  StageCostModels() = default;
  /* implicit */ StageCostModels(LayerCostModel reference)
      : reference_(reference) {}
  /// Per-stage GPUs; memory accounting stays on the reference memory model
  /// (device-independent residency bookkeeping).
  StageCostModels(LayerCostModel reference,
                  std::span<const hw::GpuSpec> stage_gpus);

  const LayerCostModel& reference() const { return reference_; }
  /// Cost model of the GPU hosting `stage`; the reference when uniform.
  const LayerCostModel& stage(int stage) const;
  bool per_stage() const { return !per_stage_.empty(); }
  int num_stages() const { return static_cast<int>(per_stage_.size()); }

 private:
  LayerCostModel reference_{};
  std::vector<LayerCostModel> per_stage_;
};

}  // namespace dynmo::model
