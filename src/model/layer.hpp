// Layer and model descriptors.
//
// A LayerDesc is the *static* description of one pipeline-schedulable unit
// (embedding, transformer block, MoE block, LM head).  A LayerState carries
// the *dynamic* properties that the six dynamism schemes mutate during
// training (weight density, frozen flag, attention sparsity, surviving token
// fraction, MoE routing load).  Keeping them separate mirrors DynMo's
// black-box design: balancers look only at measured load, dynamism engines
// mutate only LayerState.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "hw/kernel_cost.hpp"

namespace dynmo::model {

enum class LayerKind {
  Embedding,
  TransformerBlock,
  MoeTransformerBlock,
  LmHead,
};

const char* to_string(LayerKind kind);

struct LayerDesc {
  int id = 0;
  LayerKind kind = LayerKind::TransformerBlock;
  std::string name;

  std::size_t hidden = 0;
  std::size_t seq_len = 0;
  std::size_t heads = 0;
  std::size_t ffn_hidden = 0;   ///< per-expert FFN width for MoE blocks
  std::size_t vocab = 0;        ///< for Embedding / LmHead
  std::size_t num_experts = 0;  ///< MoE only
  std::size_t top_k = 0;        ///< MoE router fan-out

  std::size_t params = 0;       ///< parameter count of this layer
};

/// Dynamic per-layer state.  All multipliers default to the static model.
struct LayerState {
  double weight_density = 1.0;  ///< fraction of unpruned weights (pruning)
  bool frozen = false;          ///< no backward pass / grads (freezing)
  double attn_density = 0.5;    ///< fraction of s*s attn matrix touched
                                ///< (0.5 = dense causal; LSH masks < 0.5)
  double token_fraction = 1.0;  ///< fraction of tokens reaching this layer
                                ///< (early exit / MoD routing)
  double moe_load = 1.0;        ///< relative load from expert routing skew
  /// Whole-layer compute multiplier — the paper's §2 formal model
  /// (load = s_i(k) · c_i); the dynamic-sparse-attention engine drives
  /// this directly, matching §2.4.
  double compute_scale = 1.0;
  hw::SpmmBackend spmm_backend = hw::SpmmBackend::DenseCublas;
};

struct ModelDesc {
  std::string name;
  std::vector<LayerDesc> layers;

  std::size_t num_layers() const { return layers.size(); }
  std::size_t total_params() const;
  /// Count of transformer (block) layers, excluding embedding / head.
  std::size_t num_blocks() const;
};

/// GPT-2-style dense decoder config matching the paper's evaluation setup
/// (seq 2048, hidden 1024, 32 heads; 24/32/40/48 blocks).
struct GptConfig {
  std::size_t num_blocks = 24;
  std::size_t hidden = 1024;
  std::size_t seq_len = 2048;
  std::size_t heads = 32;
  std::size_t ffn_mult = 4;
  std::size_t vocab = 50257;
  bool include_embedding = true;
  bool include_lm_head = true;
};

ModelDesc make_gpt(const GptConfig& cfg, const std::string& name = "gpt");

/// MoE config presets for the paper's two continual-training models.
struct MoeConfig {
  std::size_t num_blocks = 32;
  std::size_t hidden = 4096;
  std::size_t seq_len = 2048;
  std::size_t heads = 32;
  std::size_t ffn_mult = 3;     ///< Mixtral uses ~3.5x; LLaMA-MoE smaller
  std::size_t num_experts = 8;
  std::size_t top_k = 2;
  std::size_t vocab = 32000;
};

ModelDesc make_moe(const MoeConfig& cfg, const std::string& name);
MoeConfig mixtral_8x7b_config();
MoeConfig llama_moe_3_5b_config();

}  // namespace dynmo::model
