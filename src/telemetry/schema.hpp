// Trace table schemas: the discovery half of the catalog+reader split.
//
// A session trace is a directory of columnar JSONL files — one file per
// table, one JSON object per row — plus a catalog.json that enumerates
// every table with its column names, types, and units (modeled on the
// self-describing table functions of SNIPPETS.md §1: discovery first,
// reading second, so tools never guess at layout).  Every row carries the
// schema version under "_v"; readers reject rows from a different version
// instead of silently misinterpreting them.
//
// The seven tables (docs/TELEMETRY.md has the full column reference):
//   iterations           one row per simulated iteration
//   stage_loads          one row per (iteration, stage), with the
//                        per-layer load/memory arrays replay feeds back
//   rebalance_decisions  every RebalanceOutcome with its payoff math
//   migrations           every planned layer transfer that was executed
//   elastic_transitions  re-packs and elastic shrink/expand restarts,
//                        with the restart-stall breakdown
//   fleet_decisions      every fleet::Arbiter admit/grant/deny/release/
//                        preempt verdict with its fleet-payoff pricing
//                        (empty in single-session traces)
//   fault_events         every injected fault (worker loss, straggler
//                        onset/recovery) with the recovery stall ledger
//                        (docs/FAULT.md; empty in fault-free traces)
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace dynmo::telemetry {

/// Bumped whenever a column changes meaning or layout; readers refuse
/// mismatched rows (forward compatibility is explicit, never silent).
inline constexpr int kSchemaVersion = 1;
inline constexpr const char* kTraceFormat = "dynmo-trace";
inline constexpr const char* kCatalogFile = "catalog.json";

enum class ColumnType { Int64, Float64, Bool, String, ListFloat64 };

const char* to_string(ColumnType t);

struct ColumnSpec {
  const char* name;
  ColumnType type;
  const char* unit;  ///< "1" for dimensionless quantities
  const char* description;
};

struct TableSpec {
  const char* name;
  const char* file;  ///< relative to the trace directory
  const char* description;
  std::span<const ColumnSpec> columns;
};

/// All tables a trace may contain, in catalog order.
std::span<const TableSpec> table_specs();

/// Lookup by name; throws dynmo::Error for an unknown table.
const TableSpec& table_spec(std::string_view name);

// ---------------------------------------------------------------- rows

struct IterationRow {
  std::int64_t iter = 0;
  double time_s = 0.0;        ///< pipeline + exposed DP time, one iteration
  double event_s = 0.0;       ///< one-off event time charged at this point
  double bottleneck_s = 0.0;  ///< max per-stage sum of layer fwd+bwd seconds
  double idleness = 0.0;
  double bubble_ratio = 0.0;
  std::int64_t active_workers = 0;
  double compute_fraction = 1.0;
  bool rebalanced = false;    ///< a rebalance point fired at this iteration
  double stall_s = 0.0;       ///< restart stall charged at this iteration

  bool operator==(const IterationRow&) const = default;
};

struct StageLoadRow {
  std::int64_t iter = 0;
  std::int64_t stage = 0;
  std::int64_t rank = 0;  ///< global rank hosting the stage (dp=0 view)
  std::int64_t layer_begin = 0;
  std::int64_t layer_end = 0;
  double load_s = 0.0;     ///< sum of the stage's per-layer fwd+bwd seconds
  double mem_bytes = 0.0;  ///< sum of the stage's per-layer resident bytes
  /// Per-layer detail (layers [layer_begin, layer_end)); concatenated over
  /// the stages of one iteration these reconstruct the exact per-layer
  /// profile the balancers saw — what balance::ReplayedLoads feeds back.
  /// Empty when TelemetryConfig::per_layer is off.
  std::vector<double> layer_s;
  std::vector<double> layer_mem;

  bool operator==(const StageLoadRow&) const = default;
};

struct RebalanceDecisionRow {
  std::int64_t iter = 0;
  std::string trigger;     ///< periodic | post_pack | post_restart
  std::string algorithm;   ///< balance::to_string(Algorithm)
  std::string balance_by;  ///< balance::to_string(BalanceBy)
  std::string decision;    ///< balance::to_string(MapDecision)
  double projected_gain_s = 0.0;
  double exposed_cost_s = 0.0;
  double candidate_bytes = 0.0;
  double migrated_bytes = 0.0;
  std::int64_t migrated_layers = 0;
  double imbalance_before = 0.0;
  double imbalance_after = 0.0;
  double decide_s = 0.0;  ///< measured decision wall-clock (machine-dep.)

  bool operator==(const RebalanceDecisionRow&) const = default;
};

struct MigrationRow {
  std::int64_t iter = 0;
  std::string trigger;  ///< periodic | post_pack | post_restart | repack | phase
  std::int64_t layer = 0;
  std::int64_t from_stage = 0;
  std::int64_t to_stage = 0;
  double bytes = 0.0;

  bool operator==(const MigrationRow&) const = default;
};

struct ElasticTransitionRow {
  std::int64_t iter = 0;
  std::string kind;  ///< repack | shrink | expand | preempt
  bool accepted = false;  ///< false → wanted but rejected by the payoff gate
  std::int64_t workers_before = 0;
  std::int64_t workers_after = 0;
  /// Stall breakdown (docs/COST_MODEL.md "Restart-stall pricing"); repack
  /// rows charge the migration wall-clock as stall_s with a zero breakdown.
  double stall_s = 0.0;
  double alpha_s = 0.0;
  double bootstrap_s = 0.0;
  double ckpt_write_s = 0.0;
  double ckpt_read_s = 0.0;
  double projected_gain_s = 0.0;
  double migrated_bytes = 0.0;  ///< repack transfers; restarts move none

  bool operator==(const ElasticTransitionRow&) const = default;
};

/// One injected fault event (docs/FAULT.md): what the fault::Injector
/// fired and — for worker losses — what the checkpoint-coordinated
/// recovery cost.  stall_s is the *total* charge (restart breakdown plus
/// the work lost since the last checkpoint), so summing stall_s across
/// accepted elastic_transitions and fault_events reconstructs
/// SessionResult::restart_stall_s exactly (the ledger-consistency test
/// holds the session to this).
struct FaultEventRow {
  std::int64_t iter = 0;
  std::string kind;  ///< worker_loss | straggler_onset | straggler_recovery
  std::int64_t worker = 0;    ///< victim rank
  double multiplier = 1.0;    ///< straggler speed multiplier (1.0 = healthy)
  std::int64_t workers_before = 0;
  std::int64_t workers_after = 0;
  /// Total stall charged: alpha + bootstrap + ckpt write/read + lost work.
  double stall_s = 0.0;
  double alpha_s = 0.0;
  double bootstrap_s = 0.0;
  double ckpt_write_s = 0.0;
  double ckpt_read_s = 0.0;
  /// Compute re-done because it post-dated the last checkpoint.
  double lost_work_s = 0.0;
  std::int64_t lost_iters = 0;  ///< iterations rolled back to the checkpoint

  bool operator==(const FaultEventRow&) const = default;
};

/// One fleet::Arbiter verdict (docs/FLEET.md): who asked for GPUs, what
/// the arbiter decided, and the fleet-payoff pricing behind it.  Written
/// by the arbiter's own TraceWriter, so `time_s` is the fleet clock, not
/// an iteration index.
struct FleetDecisionRow {
  double time_s = 0.0;   ///< fleet clock when the decision fired
  std::string job;       ///< pod name of the claimant
  /// admit (baseline claim at arrival) | grant / deny (expand PATCH) |
  /// release (shrink PATCH) | preempt (forced shrink of a victim) |
  /// finish (job completed, allocation returned).
  std::string kind;
  bool accepted = false;
  std::int64_t priority = 0;    ///< claimant's priority class
  std::int64_t gpus_before = 0;  ///< claimant's allocation before
  std::int64_t gpus_after = 0;   ///< after (the wanted target when denied)
  std::int64_t pool_free_before = 0;  ///< unreserved free GPUs before
  std::int64_t pool_free_after = 0;
  /// Claimant's weighted max-min fair share at decision time.
  double fair_share = 0.0;
  /// Fleet-payoff pricing (GPU-seconds over the payoff window): projected
  /// fleet-wide gpu_hours_saved gain vs. the exposed cost (victim restart
  /// stall + its slowdown at the reduced footprint).  0/0 for unpriced
  /// kinds (admit from free capacity, release, finish).
  double projected_gain_gpu_s = 0.0;
  double exposed_cost_gpu_s = 0.0;
  std::string victim;  ///< preempted job (preempt rows; empty otherwise)

  bool operator==(const FleetDecisionRow&) const = default;
};

/// Run-level metadata recorded in catalog.json: everything offline replay
/// needs to reconstruct the balancer configuration the session resolved
/// (docs/TELEMETRY.md "Replay").
struct RunInfo {
  std::string producer;  ///< "session" | "threaded" | "fleet"
  /// comm backend that carried the run's messages ("inproc" | "socket");
  /// empty for modeled producers that never open a comm::World.  Stripped
  /// (with `machine`) by the golden-trace gate's catalog compare — it is
  /// backend metadata, not trace content.
  std::string transport;
  /// Hostname the trace was recorded on; filled by TraceWriter when left
  /// empty.  Machine metadata, stripped by the golden-trace compare.
  std::string machine;
  std::int64_t iterations = 0;
  std::int64_t sim_stride = 1;
  std::int64_t rebalance_interval = 0;
  std::int64_t pipeline_stages = 0;
  std::int64_t data_parallel = 1;
  std::uint64_t seed = 0;
  std::string mode;
  std::string algorithm;
  std::string balance_by;
  double mem_capacity = 0.0;
  double min_bottleneck_gain = 0.0;
  double payoff_window_iters = 0.0;
  double migration_cost_multiplier = 1.0;
  double migration_exposed_fraction = 1.0;
  double gamma = 0.0;
  std::vector<int> stage_to_rank;    ///< empty → stage s is rank s
  std::vector<double> capacities;    ///< empty → uniform
  std::vector<double> layer_params;  ///< static per-layer parameter counts
};

/// Telemetry knob embedded in runtime configs: disabled (and zero-cost)
/// unless a trace directory is set.
struct TelemetryConfig {
  /// Trace output directory; created (parents included) on first use,
  /// existing table files truncated.  Empty → telemetry fully disabled.
  std::string dir;
  /// Record the per-layer arrays in stage_loads (required for replay;
  /// turn off to shrink traces when only stage totals are wanted).
  bool per_layer = true;
  /// Zero the *measured* wall-clock columns at the producer (session
  /// decide_s; threaded time_s / stall_s) so two runs of the same scenario
  /// emit byte-identical tables on any machine and any backend.  Modeled
  /// times are untouched — they are deterministic already.  This is what
  /// the golden-trace CI gate records with (docs/TRANSPORT.md).
  bool deterministic = false;

  bool enabled() const { return !dir.empty(); }
};

}  // namespace dynmo::telemetry
