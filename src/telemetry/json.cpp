#include "telemetry/json.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/error.hpp"

namespace dynmo::telemetry {

std::string format_double(double v) {
  if (!std::isfinite(v)) {
    // JSON has no inf/nan; the trace never produces them, but a defensive
    // writer must not emit unparseable text.
    return std::signbit(v) ? "-1e308" : (std::isnan(v) ? "0" : "1e308");
  }
  char buf[32];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

void append_json_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw Error("json parse error at byte " + std::to_string(pos_) + ": " +
                what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return parse_string();
      case 't':
      case 'f':
      case 'n': return parse_literal();
      default: return parse_number();
    }
  }

  JsonValue parse_literal() {
    JsonValue v;
    if (consume_literal("true")) {
      v.kind = JsonValue::Kind::Bool;
      v.boolean = true;
    } else if (consume_literal("false")) {
      v.kind = JsonValue::Kind::Bool;
      v.boolean = false;
    } else if (consume_literal("null")) {
      v.kind = JsonValue::Kind::Null;
    } else {
      fail("invalid literal");
    }
    return v;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    bool integral = true;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("invalid number");
    const std::string token(text_.substr(start, pos_ - start));
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    char* end = nullptr;
    v.number = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("invalid number");
    if (integral) {
      errno = 0;
      const long long i = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        v.integer = i;
        v.is_integer = true;
      }
    }
    return v;
  }

  JsonValue parse_string() {
    JsonValue v;
    v.kind = JsonValue::Kind::String;
    v.string = parse_raw_string();
    return v;
  }

  std::string parse_raw_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("invalid \\u escape");
            }
          }
          // The writer only escapes control characters, so a BMP->UTF-8
          // encode covers everything the codec itself produces.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("invalid escape");
      }
    }
    return out;
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' in array");
    }
    return v;
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_raw_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in object");
    }
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).parse_document();
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::Object) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

const char* JsonValue::kind_name() const {
  switch (kind) {
    case Kind::Null: return "null";
    case Kind::Bool: return "bool";
    case Kind::Number: return "number";
    case Kind::String: return "string";
    case Kind::Array: return "array";
    case Kind::Object: return "object";
  }
  return "?";
}

bool JsonValue::as_bool() const {
  DYNMO_CHECK(kind == Kind::Bool, "expected bool, got " << kind_name());
  return boolean;
}

double JsonValue::as_double() const {
  DYNMO_CHECK(kind == Kind::Number, "expected number, got " << kind_name());
  return number;
}

std::int64_t JsonValue::as_int() const {
  DYNMO_CHECK(kind == Kind::Number && is_integer,
              "expected integer, got " << kind_name());
  return integer;
}

const std::string& JsonValue::as_string() const {
  DYNMO_CHECK(kind == Kind::String, "expected string, got " << kind_name());
  return string;
}

}  // namespace dynmo::telemetry
