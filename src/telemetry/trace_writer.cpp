#include "telemetry/trace_writer.hpp"

#include <unistd.h>

#include <filesystem>
#include <span>
#include <type_traits>

#include "core/error.hpp"
#include "telemetry/json.hpp"

namespace dynmo::telemetry {

namespace {

/// Incremental row builder: keeps the emitted key order in lockstep with
/// the table's ColumnSpec order (the validator in tools/query_trace.py
/// cross-checks every row against the catalog, so drift fails CI).
class RowBuilder {
 public:
  RowBuilder() { line_ = "{\"_v\":" + std::to_string(kSchemaVersion); }

  RowBuilder& field(const char* key, std::int64_t v) {
    sep(key);
    line_ += std::to_string(v);
    return *this;
  }
  RowBuilder& field(const char* key, double v) {
    sep(key);
    line_ += format_double(v);
    return *this;
  }
  RowBuilder& field(const char* key, bool v) {
    sep(key);
    line_ += v ? "true" : "false";
    return *this;
  }
  RowBuilder& field(const char* key, const std::string& v) {
    sep(key);
    append_json_string(line_, v);
    return *this;
  }
  RowBuilder& field(const char* key, std::span<const double> v) {
    sep(key);
    line_ += '[';
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (i > 0) line_ += ',';
      line_ += format_double(v[i]);
    }
    line_ += ']';
    return *this;
  }

  std::string finish() && {
    line_ += "}\n";
    return std::move(line_);
  }

 private:
  void sep(const char* key) {
    line_ += ",\"";
    line_ += key;
    line_ += "\":";
  }
  std::string line_;
};

std::size_t table_index(std::string_view name) {
  const auto specs = table_specs();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (name == specs[i].name) return i;
  }
  throw Error("unknown trace table: " + std::string(name));
}

}  // namespace

TraceWriter::TraceWriter(TelemetryConfig cfg, RunInfo run)
    : cfg_(std::move(cfg)), run_(std::move(run)) {
  DYNMO_CHECK(cfg_.enabled(), "TraceWriter needs a trace directory");
  if (run_.machine.empty()) {
    char host[256] = {};
    if (::gethostname(host, sizeof host - 1) == 0) run_.machine = host;
  }
  std::error_code ec;
  std::filesystem::create_directories(cfg_.dir, ec);
  DYNMO_CHECK(!ec, "cannot create trace directory " << cfg_.dir << ": "
                                                    << ec.message());
  const auto specs = table_specs();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const std::string path = cfg_.dir + "/" + specs[i].file;
    tables_[i].file = std::fopen(path.c_str(), "w");
    DYNMO_CHECK(tables_[i].file != nullptr,
                "cannot open trace table " << path);
  }
}

TraceWriter::~TraceWriter() {
  try {
    finalize();
  } catch (const Error&) {
    // Destructors must not throw; a failed catalog write leaves the table
    // files behind, which is the best a dying process can do.
  }
  for (auto& t : tables_) {
    if (t.file != nullptr) {
      std::fclose(t.file);
      t.file = nullptr;
    }
  }
}

TraceWriter::Table& TraceWriter::table(std::string_view name) {
  return tables_[table_index(name)];
}

void TraceWriter::append_row(Table& t, const std::string& line) {
  std::scoped_lock lock(mu_);
  DYNMO_CHECK(t.file != nullptr, "trace table already finalized");
  std::fwrite(line.data(), 1, line.size(), t.file);
  ++t.rows;
  finalized_ = false;
}

std::int64_t TraceWriter::rows_written(std::string_view name) const {
  std::scoped_lock lock(mu_);
  return tables_[table_index(name)].rows;
}

void TraceWriter::write_iteration(const IterationRow& r) {
  RowBuilder b;
  b.field("iter", r.iter)
      .field("time_s", r.time_s)
      .field("event_s", r.event_s)
      .field("bottleneck_s", r.bottleneck_s)
      .field("idleness", r.idleness)
      .field("bubble_ratio", r.bubble_ratio)
      .field("active_workers", r.active_workers)
      .field("compute_fraction", r.compute_fraction)
      .field("rebalanced", r.rebalanced)
      .field("stall_s", r.stall_s);
  append_row(table("iterations"), std::move(b).finish());
}

void TraceWriter::write_stage_load(const StageLoadRow& r) {
  RowBuilder b;
  b.field("iter", r.iter)
      .field("stage", r.stage)
      .field("rank", r.rank)
      .field("layer_begin", r.layer_begin)
      .field("layer_end", r.layer_end)
      .field("load_s", r.load_s)
      .field("mem_bytes", r.mem_bytes)
      .field("layer_s", std::span<const double>(r.layer_s))
      .field("layer_mem", std::span<const double>(r.layer_mem));
  append_row(table("stage_loads"), std::move(b).finish());
}

void TraceWriter::write_rebalance_decision(const RebalanceDecisionRow& r) {
  RowBuilder b;
  b.field("iter", r.iter)
      .field("trigger", r.trigger)
      .field("algorithm", r.algorithm)
      .field("balance_by", r.balance_by)
      .field("decision", r.decision)
      .field("projected_gain_s", r.projected_gain_s)
      .field("exposed_cost_s", r.exposed_cost_s)
      .field("candidate_bytes", r.candidate_bytes)
      .field("migrated_bytes", r.migrated_bytes)
      .field("migrated_layers", r.migrated_layers)
      .field("imbalance_before", r.imbalance_before)
      .field("imbalance_after", r.imbalance_after)
      .field("decide_s", r.decide_s);
  append_row(table("rebalance_decisions"), std::move(b).finish());
}

void TraceWriter::write_migration(const MigrationRow& r) {
  RowBuilder b;
  b.field("iter", r.iter)
      .field("trigger", r.trigger)
      .field("layer", r.layer)
      .field("from_stage", r.from_stage)
      .field("to_stage", r.to_stage)
      .field("bytes", r.bytes);
  append_row(table("migrations"), std::move(b).finish());
}

void TraceWriter::write_elastic_transition(const ElasticTransitionRow& r) {
  RowBuilder b;
  b.field("iter", r.iter)
      .field("kind", r.kind)
      .field("accepted", r.accepted)
      .field("workers_before", r.workers_before)
      .field("workers_after", r.workers_after)
      .field("stall_s", r.stall_s)
      .field("alpha_s", r.alpha_s)
      .field("bootstrap_s", r.bootstrap_s)
      .field("ckpt_write_s", r.ckpt_write_s)
      .field("ckpt_read_s", r.ckpt_read_s)
      .field("projected_gain_s", r.projected_gain_s)
      .field("migrated_bytes", r.migrated_bytes);
  append_row(table("elastic_transitions"), std::move(b).finish());
}

void TraceWriter::write_fleet_decision(const FleetDecisionRow& r) {
  RowBuilder b;
  b.field("time_s", r.time_s)
      .field("job", r.job)
      .field("kind", r.kind)
      .field("accepted", r.accepted)
      .field("priority", r.priority)
      .field("gpus_before", r.gpus_before)
      .field("gpus_after", r.gpus_after)
      .field("pool_free_before", r.pool_free_before)
      .field("pool_free_after", r.pool_free_after)
      .field("fair_share", r.fair_share)
      .field("projected_gain_gpu_s", r.projected_gain_gpu_s)
      .field("exposed_cost_gpu_s", r.exposed_cost_gpu_s)
      .field("victim", r.victim);
  append_row(table("fleet_decisions"), std::move(b).finish());
}

void TraceWriter::write_fault_event(const FaultEventRow& r) {
  RowBuilder b;
  b.field("iter", r.iter)
      .field("kind", r.kind)
      .field("worker", r.worker)
      .field("multiplier", r.multiplier)
      .field("workers_before", r.workers_before)
      .field("workers_after", r.workers_after)
      .field("stall_s", r.stall_s)
      .field("alpha_s", r.alpha_s)
      .field("bootstrap_s", r.bootstrap_s)
      .field("ckpt_write_s", r.ckpt_write_s)
      .field("ckpt_read_s", r.ckpt_read_s)
      .field("lost_work_s", r.lost_work_s)
      .field("lost_iters", r.lost_iters);
  append_row(table("fault_events"), std::move(b).finish());
}

void TraceWriter::write_catalog() {
  std::string out = "{\n";
  out += "  \"format\": \"";
  out += kTraceFormat;
  out += "\",\n  \"schema_version\": " + std::to_string(kSchemaVersion) +
         ",\n";

  out += "  \"run\": {\n";
  const auto str_field = [&out](const char* key, const std::string& v,
                                bool comma = true) {
    out += "    \"";
    out += key;
    out += "\": ";
    append_json_string(out, v);
    out += comma ? ",\n" : "\n";
  };
  const auto int_field = [&out](const char* key, std::int64_t v) {
    out += "    \"";
    out += key;
    out += "\": " + std::to_string(v) + ",\n";
  };
  const auto dbl_field = [&out](const char* key, double v) {
    out += "    \"";
    out += key;
    out += "\": " + format_double(v) + ",\n";
  };
  const auto list_field = [&out](const char* key, const auto& values) {
    out += "    \"";
    out += key;
    out += "\": [";
    bool first = true;
    for (const auto v : values) {
      if (!first) out += ',';
      first = false;
      if constexpr (std::is_floating_point_v<decltype(v)>) {
        out += format_double(v);
      } else {
        out += std::to_string(v);
      }
    }
    out += "],\n";
  };
  const auto bool_field = [&out](const char* key, bool v,
                                 bool comma = true) {
    out += "    \"";
    out += key;
    out += "\": ";
    out += v ? "true" : "false";
    out += comma ? ",\n" : "\n";
  };
  str_field("producer", run_.producer);
  // Backend/machine metadata: each on its own line so the golden-trace
  // gate can strip exactly these before byte-comparing catalogs.
  str_field("transport", run_.transport);
  str_field("machine", run_.machine);
  int_field("iterations", run_.iterations);
  int_field("sim_stride", run_.sim_stride);
  int_field("rebalance_interval", run_.rebalance_interval);
  int_field("pipeline_stages", run_.pipeline_stages);
  int_field("data_parallel", run_.data_parallel);
  int_field("seed", static_cast<std::int64_t>(run_.seed));
  str_field("mode", run_.mode);
  str_field("algorithm", run_.algorithm);
  str_field("balance_by", run_.balance_by);
  dbl_field("mem_capacity", run_.mem_capacity);
  dbl_field("min_bottleneck_gain", run_.min_bottleneck_gain);
  dbl_field("payoff_window_iters", run_.payoff_window_iters);
  dbl_field("migration_cost_multiplier", run_.migration_cost_multiplier);
  dbl_field("migration_exposed_fraction", run_.migration_exposed_fraction);
  dbl_field("gamma", run_.gamma);
  list_field("stage_to_rank", run_.stage_to_rank);
  list_field("capacities", run_.capacities);
  list_field("layer_params", run_.layer_params);
  bool_field("per_layer", cfg_.per_layer);
  bool_field("deterministic", cfg_.deterministic, /*comma=*/false);
  out += "  },\n";

  out += "  \"tables\": [\n";
  const auto specs = table_specs();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const TableSpec& spec = specs[i];
    out += "    {\"name\": \"";
    out += spec.name;
    out += "\", \"file\": \"";
    out += spec.file;
    out += "\", \"rows\": " + std::to_string(tables_[i].rows) +
           ",\n     \"description\": ";
    append_json_string(out, spec.description);
    out += ",\n     \"columns\": [\n";
    for (std::size_t c = 0; c < spec.columns.size(); ++c) {
      const ColumnSpec& col = spec.columns[c];
      out += "       {\"name\": \"";
      out += col.name;
      out += "\", \"type\": \"";
      out += to_string(col.type);
      out += "\", \"unit\": \"";
      out += col.unit;
      out += "\", \"description\": ";
      append_json_string(out, col.description);
      out += c + 1 < spec.columns.size() ? "},\n" : "}\n";
    }
    out += "     ]}";
    out += i + 1 < specs.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";

  const std::string path = cfg_.dir + "/" + kCatalogFile;
  std::FILE* f = std::fopen(path.c_str(), "w");
  DYNMO_CHECK(f != nullptr, "cannot write trace catalog " << path);
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
}

void TraceWriter::finalize() {
  std::scoped_lock lock(mu_);
  if (finalized_) return;
  for (auto& t : tables_) {
    if (t.file != nullptr) std::fflush(t.file);
  }
  write_catalog();
  finalized_ = true;
}

}  // namespace dynmo::telemetry
