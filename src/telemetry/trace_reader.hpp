// TraceReader: the cheap-reader half of the catalog+reader split.
//
// Opens a trace directory written by TraceWriter, validates catalog.json
// (format string, schema version, declared tables present), and reads any
// table back into its typed rows.  Rows whose "_v" differs from the
// library's kSchemaVersion are rejected loudly — never reinterpreted.
//
// Two conveniences close the replay loop: replayed_loads() reassembles
// the per-layer load history from the stage_loads table, and
// replay_config() reconstructs the balancer configuration the recording
// session resolved (from the catalog's run metadata), so
//
//   telemetry::TraceReader reader(dir);
//   auto result = balance::replay(reader.replayed_loads(),
//                                 reader.replay_config(), net);
//
// reproduces the recorded run's bottleneck sequence bit-for-bit.
#pragma once

#include <string>
#include <vector>

#include "balance/replay.hpp"
#include "telemetry/schema.hpp"

namespace dynmo::telemetry {

struct CatalogTable {
  std::string name;
  std::string file;
  std::int64_t rows = 0;
};

struct Catalog {
  std::string format;
  int schema_version = 0;
  RunInfo run;
  std::vector<CatalogTable> tables;
};

class TraceReader {
 public:
  /// Parses and validates `dir`/catalog.json; throws dynmo::Error on a
  /// missing/malformed catalog or a schema-version mismatch.
  explicit TraceReader(std::string dir);

  const Catalog& catalog() const { return catalog_; }
  const RunInfo& run() const { return catalog_.run; }
  const std::string& dir() const { return dir_; }

  std::vector<IterationRow> iterations() const;
  std::vector<StageLoadRow> stage_loads() const;
  std::vector<RebalanceDecisionRow> rebalance_decisions() const;
  std::vector<MigrationRow> migrations() const;
  std::vector<ElasticTransitionRow> elastic_transitions() const;
  std::vector<FleetDecisionRow> fleet_decisions() const;
  std::vector<FaultEventRow> fault_events() const;

  /// Reassemble the per-layer load history from stage_loads (frames in
  /// iteration order, per-layer arrays concatenated across stages).
  /// Throws when the trace was recorded with per-layer arrays disabled.
  balance::ReplayedLoads replayed_loads() const;

  /// The balancer configuration the recording session resolved, rebuilt
  /// from the catalog's run metadata.  HierarchicalDiffusion traces get
  /// their algorithm back but not the deployment-bound decider — inject
  /// one via ReplayConfig::rebalance.hierarchical_decider, or the replay
  /// falls back to flat diffusion (same rule as the session without one).
  balance::ReplayConfig replay_config() const;

 private:
  std::string read_file(const std::string& name) const;

  std::string dir_;
  Catalog catalog_;
};

}  // namespace dynmo::telemetry
