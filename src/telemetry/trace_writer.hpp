// TraceWriter: streams typed per-iteration events to a trace directory.
//
// One JSONL file per table, appended row by row as the run progresses (a
// crashed run leaves every completed row readable), plus catalog.json
// written on finalize() with the run metadata, per-table row counts, and
// the full column reference — the discovery half of the catalog+reader
// split (schema.hpp).  Thread-safe: the threaded runtime's workers emit
// concurrently.
//
// The writer is the *only* cost telemetry adds: runtimes hold it behind a
// null pointer when TelemetryConfig::dir is empty, so a disabled run does
// not even format a row.
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>

#include "telemetry/schema.hpp"

namespace dynmo::telemetry {

class TraceWriter {
 public:
  /// Creates `cfg.dir` (parents included), truncates all table files, and
  /// records `run` for the catalog.  Throws dynmo::Error on I/O failure.
  TraceWriter(TelemetryConfig cfg, RunInfo run);
  ~TraceWriter();  ///< finalizes if finalize() was not called explicitly

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  void write_iteration(const IterationRow& row);
  void write_stage_load(const StageLoadRow& row);
  void write_rebalance_decision(const RebalanceDecisionRow& row);
  void write_migration(const MigrationRow& row);
  void write_elastic_transition(const ElasticTransitionRow& row);
  void write_fleet_decision(const FleetDecisionRow& row);
  void write_fault_event(const FaultEventRow& row);

  /// Flush all tables and write catalog.json.  Idempotent; rows written
  /// after finalize() reopen the pending state and require another call.
  void finalize();

  const std::string& dir() const { return cfg_.dir; }
  const TelemetryConfig& config() const { return cfg_; }
  std::int64_t rows_written(std::string_view table) const;

 private:
  struct Table {
    std::FILE* file = nullptr;
    std::int64_t rows = 0;
  };

  Table& table(std::string_view name);
  void append_row(Table& t, const std::string& line);
  void write_catalog();

  TelemetryConfig cfg_;
  RunInfo run_;
  mutable std::mutex mu_;
  // Indexed in table_specs() order.
  Table tables_[7];
  bool finalized_ = false;
};

}  // namespace dynmo::telemetry
