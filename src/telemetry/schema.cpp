#include "telemetry/schema.hpp"

#include <array>

#include "core/error.hpp"

namespace dynmo::telemetry {

const char* to_string(ColumnType t) {
  switch (t) {
    case ColumnType::Int64: return "int64";
    case ColumnType::Float64: return "float64";
    case ColumnType::Bool: return "bool";
    case ColumnType::String: return "string";
    case ColumnType::ListFloat64: return "list<float64>";
  }
  return "?";
}

namespace {

constexpr std::array kIterationColumns = {
    ColumnSpec{"iter", ColumnType::Int64, "iteration",
               "simulated iteration index (steps by sim_stride)"},
    ColumnSpec{"time_s", ColumnType::Float64, "s",
               "one iteration's pipeline makespan plus exposed DP time"},
    ColumnSpec{"event_s", ColumnType::Float64, "s",
               "one-off event time charged at this point (rebalance "
               "overheads, migrations, restart stalls)"},
    ColumnSpec{"bottleneck_s", ColumnType::Float64, "s",
               "max over stages of the per-layer fwd+bwd seconds hosted — "
               "the quantity replay reproduces bit-for-bit"},
    ColumnSpec{"idleness", ColumnType::Float64, "1",
               "average worker idleness of the pipeline timeline"},
    ColumnSpec{"bubble_ratio", ColumnType::Float64, "1",
               "pipeline bubble fraction"},
    ColumnSpec{"active_workers", ColumnType::Int64, "workers",
               "workers hosting at least the possibility of layers (post "
               "re-pack/elastic)"},
    ColumnSpec{"compute_fraction", ColumnType::Float64, "1",
               "dynamism engine's remaining-compute estimate"},
    ColumnSpec{"rebalanced", ColumnType::Bool, "1",
               "a rebalance point fired at this iteration"},
    ColumnSpec{"stall_s", ColumnType::Float64, "s",
               "restart stall charged at this iteration (elastic "
               "transitions; 0 otherwise)"},
};

constexpr std::array kStageLoadColumns = {
    ColumnSpec{"iter", ColumnType::Int64, "iteration", "iteration index"},
    ColumnSpec{"stage", ColumnType::Int64, "stage", "pipeline stage"},
    ColumnSpec{"rank", ColumnType::Int64, "rank",
               "global rank hosting the stage (dp=0 view; equals stage "
               "without a deployment)"},
    ColumnSpec{"layer_begin", ColumnType::Int64, "layer",
               "first layer hosted by the stage"},
    ColumnSpec{"layer_end", ColumnType::Int64, "layer",
               "one past the last layer hosted"},
    ColumnSpec{"load_s", ColumnType::Float64, "s",
               "sum of the stage's per-layer fwd+bwd seconds (per "
               "microbatch, the balancers' currency)"},
    ColumnSpec{"mem_bytes", ColumnType::Float64, "bytes",
               "sum of the stage's per-layer resident bytes (activation "
               "residency under the map at iteration entry)"},
    ColumnSpec{"layer_s", ColumnType::ListFloat64, "s",
               "per-layer fwd+bwd seconds for [layer_begin, layer_end); "
               "empty when per-layer recording is off"},
    ColumnSpec{"layer_mem", ColumnType::ListFloat64, "bytes",
               "per-layer resident bytes for [layer_begin, layer_end)"},
};

constexpr std::array kRebalanceDecisionColumns = {
    ColumnSpec{"iter", ColumnType::Int64, "iteration", "iteration index"},
    ColumnSpec{"trigger", ColumnType::String, "1",
               "periodic | post_pack | post_restart"},
    ColumnSpec{"algorithm", ColumnType::String, "1",
               "partition | diffusion | hier_diffusion"},
    ColumnSpec{"balance_by", ColumnType::String, "1", "time | param"},
    ColumnSpec{"decision", ColumnType::String, "1",
               "accepted | rejected_bottleneck | rejected_payoff"},
    ColumnSpec{"projected_gain_s", ColumnType::Float64, "s",
               "candidate's projected per-iteration bottleneck gain"},
    ColumnSpec{"exposed_cost_s", ColumnType::Float64, "s",
               "priced exposed migration cost the payoff rule weighed"},
    ColumnSpec{"candidate_bytes", ColumnType::Float64, "bytes",
               "bytes the candidate map would have moved"},
    ColumnSpec{"migrated_bytes", ColumnType::Float64, "bytes",
               "bytes actually moved (0 when rejected)"},
    ColumnSpec{"migrated_layers", ColumnType::Int64, "layers",
               "layer transfers in the executed plan"},
    ColumnSpec{"imbalance_before", ColumnType::Float64, "1",
               "load imbalance (paper Eq. 2) before"},
    ColumnSpec{"imbalance_after", ColumnType::Float64, "1",
               "load imbalance after"},
    ColumnSpec{"decide_s", ColumnType::Float64, "s",
               "measured decision wall-clock (machine-dependent)"},
};

constexpr std::array kMigrationColumns = {
    ColumnSpec{"iter", ColumnType::Int64, "iteration", "iteration index"},
    ColumnSpec{"trigger", ColumnType::String, "1",
               "periodic | post_pack | post_restart | repack | phase"},
    ColumnSpec{"layer", ColumnType::Int64, "layer", "migrated layer"},
    ColumnSpec{"from_stage", ColumnType::Int64, "stage", "source stage"},
    ColumnSpec{"to_stage", ColumnType::Int64, "stage", "destination stage"},
    ColumnSpec{"bytes", ColumnType::Float64, "bytes",
               "weights+grads+optimizer state moved (one DP replica)"},
};

constexpr std::array kElasticTransitionColumns = {
    ColumnSpec{"iter", ColumnType::Int64, "iteration", "iteration index"},
    ColumnSpec{"kind", ColumnType::String, "1",
               "repack | shrink | expand | preempt"},
    ColumnSpec{"accepted", ColumnType::Bool, "1",
               "false when wanted but rejected by the payoff gate"},
    ColumnSpec{"workers_before", ColumnType::Int64, "workers",
               "active workers before the transition"},
    ColumnSpec{"workers_after", ColumnType::Int64, "workers",
               "active workers after (the wanted target when rejected)"},
    ColumnSpec{"stall_s", ColumnType::Float64, "s",
               "total stall the transition charges (restart stall, or the "
               "re-pack's migration wall-clock)"},
    ColumnSpec{"alpha_s", ColumnType::Float64, "s",
               "restart breakdown: job-manager round-trip + respawn"},
    ColumnSpec{"bootstrap_s", ColumnType::Float64, "s",
               "restart breakdown: binomial communicator bootstrap"},
    ColumnSpec{"ckpt_write_s", ColumnType::Float64, "s",
               "restart breakdown: busiest-shard checkpoint write"},
    ColumnSpec{"ckpt_read_s", ColumnType::Float64, "s",
               "restart breakdown: busiest-shard checkpoint reload"},
    ColumnSpec{"projected_gain_s", ColumnType::Float64, "s",
               "per-iteration gain (expand) or freed GPU-time (shrink/"
               "repack) the payoff rule weighed"},
    ColumnSpec{"migrated_bytes", ColumnType::Float64, "bytes",
               "re-pack transfer bytes; restarts move none (checkpoint "
               "reload instead)"},
};

constexpr std::array kFleetDecisionColumns = {
    ColumnSpec{"time_s", ColumnType::Float64, "s",
               "fleet clock when the decision fired"},
    ColumnSpec{"job", ColumnType::String, "1", "pod name of the claimant"},
    ColumnSpec{"kind", ColumnType::String, "1",
               "admit | grant | deny | release | preempt | finish"},
    ColumnSpec{"accepted", ColumnType::Bool, "1",
               "false for deny rows and refused preemptions"},
    ColumnSpec{"priority", ColumnType::Int64, "1",
               "claimant's priority class (higher preempts lower)"},
    ColumnSpec{"gpus_before", ColumnType::Int64, "gpus",
               "claimant's allocation before the decision"},
    ColumnSpec{"gpus_after", ColumnType::Int64, "gpus",
               "allocation after (the wanted target when denied)"},
    ColumnSpec{"pool_free_before", ColumnType::Int64, "gpus",
               "unreserved free GPUs in the pool before"},
    ColumnSpec{"pool_free_after", ColumnType::Int64, "gpus",
               "unreserved free GPUs after"},
    ColumnSpec{"fair_share", ColumnType::Float64, "gpus",
               "claimant's weighted max-min fair share at decision time"},
    ColumnSpec{"projected_gain_gpu_s", ColumnType::Float64, "gpu*s",
               "projected fleet-wide GPU-time gain over the payoff window"},
    ColumnSpec{"exposed_cost_gpu_s", ColumnType::Float64, "gpu*s",
               "exposed cost the fleet-payoff rule weighed (victim restart "
               "stall + its slowdown at the reduced footprint)"},
    ColumnSpec{"victim", ColumnType::String, "1",
               "preempted job (preempt rows; empty otherwise)"},
};

constexpr std::array kFaultEventColumns = {
    ColumnSpec{"iter", ColumnType::Int64, "iteration",
               "iteration the event fired at"},
    ColumnSpec{"kind", ColumnType::String, "1",
               "worker_loss | straggler_onset | straggler_recovery"},
    ColumnSpec{"worker", ColumnType::Int64, "rank", "victim worker rank"},
    ColumnSpec{"multiplier", ColumnType::Float64, "1",
               "straggler compute-speed multiplier (1.0 = healthy; loss "
               "rows carry 1.0)"},
    ColumnSpec{"workers_before", ColumnType::Int64, "workers",
               "active workers before the event"},
    ColumnSpec{"workers_after", ColumnType::Int64, "workers",
               "active workers after (unchanged for straggler rows)"},
    ColumnSpec{"stall_s", ColumnType::Float64, "s",
               "total recovery charge: restart breakdown plus lost work "
               "(0 for straggler rows)"},
    ColumnSpec{"alpha_s", ColumnType::Float64, "s",
               "restart breakdown: job-manager round-trip + respawn"},
    ColumnSpec{"bootstrap_s", ColumnType::Float64, "s",
               "restart breakdown: binomial communicator bootstrap"},
    ColumnSpec{"ckpt_write_s", ColumnType::Float64, "s",
               "restart breakdown: busiest-shard checkpoint write"},
    ColumnSpec{"ckpt_read_s", ColumnType::Float64, "s",
               "restart breakdown: busiest-shard checkpoint reload"},
    ColumnSpec{"lost_work_s", ColumnType::Float64, "s",
               "compute re-done because it post-dated the last checkpoint"},
    ColumnSpec{"lost_iters", ColumnType::Int64, "iterations",
               "iterations rolled back to the last checkpoint"},
};

constexpr std::array kTables = {
    TableSpec{"iterations", "iterations.jsonl",
              "one row per simulated iteration", kIterationColumns},
    TableSpec{"stage_loads", "stage_loads.jsonl",
              "one row per (iteration, stage) with per-layer detail",
              kStageLoadColumns},
    TableSpec{"rebalance_decisions", "rebalance_decisions.jsonl",
              "every rebalance outcome with its accept/reject payoff math",
              kRebalanceDecisionColumns},
    TableSpec{"migrations", "migrations.jsonl",
              "every executed layer transfer", kMigrationColumns},
    TableSpec{"elastic_transitions", "elastic_transitions.jsonl",
              "re-packs and elastic shrink/expand restarts with the "
              "restart-stall breakdown",
              kElasticTransitionColumns},
    TableSpec{"fleet_decisions", "fleet_decisions.jsonl",
              "every fleet arbiter admit/grant/deny/release/preempt "
              "verdict with its fleet-payoff pricing",
              kFleetDecisionColumns},
    TableSpec{"fault_events", "fault_events.jsonl",
              "every injected fault (worker loss, straggler onset/"
              "recovery) with the recovery stall ledger",
              kFaultEventColumns},
};

}  // namespace

std::span<const TableSpec> table_specs() { return kTables; }

const TableSpec& table_spec(std::string_view name) {
  for (const auto& t : kTables) {
    if (name == t.name) return t;
  }
  throw Error("unknown trace table: " + std::string(name));
}

}  // namespace dynmo::telemetry
