// Minimal JSON support for the telemetry trace format.
//
// The trace files are JSONL (one object per line) plus one catalog.json
// document, all written and read by DynMo itself — so this is a focused
// round-trip codec, not a general JSON library: objects, arrays, strings,
// numbers, booleans, null.  Doubles are formatted with the shortest
// representation that parses back to the identical bit pattern, which is
// what makes offline trace replay bit-for-bit faithful
// (docs/TELEMETRY.md "Determinism").
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dynmo::telemetry {

/// Shortest decimal string that strtod() parses back to exactly `v`.
std::string format_double(double v);

/// Append `s` as a quoted, escaped JSON string.
void append_json_string(std::string& out, std::string_view s);

/// Parsed JSON value.  Numbers remember whether the source text was
/// integral so int64 columns round-trip without a double cast.
class JsonValue {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::int64_t integer = 0;
  bool is_integer = false;
  std::string string;
  std::vector<JsonValue> array;
  /// Insertion-ordered; duplicate keys keep the first occurrence.
  std::vector<std::pair<std::string, JsonValue>> object;

  /// Parse a complete document; throws dynmo::Error on malformed input
  /// (with byte offset) or trailing garbage.
  static JsonValue parse(std::string_view text);

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;

  // Checked accessors — throw dynmo::Error on a kind mismatch.
  bool as_bool() const;
  double as_double() const;       ///< accepts integral numbers too
  std::int64_t as_int() const;    ///< requires an integral number
  const std::string& as_string() const;

  const char* kind_name() const;
};

}  // namespace dynmo::telemetry
