#include "telemetry/trace_reader.hpp"

#include <fstream>
#include <sstream>

#include "core/error.hpp"
#include "telemetry/json.hpp"

namespace dynmo::telemetry {

namespace {

/// Parse one JSONL table: checks the per-row "_v" schema tag, then hands
/// each row object to `consume`.
template <typename Fn>
void for_each_row(const std::string& text, const std::string& context,
                  Fn&& consume) {
  std::istringstream in(text);
  std::string line;
  std::int64_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    JsonValue row;
    try {
      row = JsonValue::parse(line);
    } catch (const Error& e) {
      throw Error(context + ":" + std::to_string(lineno) + ": " + e.what());
    }
    DYNMO_CHECK(row.kind == JsonValue::Kind::Object,
                context << ":" << lineno << ": row is not an object");
    const JsonValue* v = row.find("_v");
    DYNMO_CHECK(v != nullptr && v->as_int() == kSchemaVersion,
                context << ":" << lineno << ": row schema version "
                        << (v != nullptr ? std::to_string(v->as_int())
                                         : std::string("<missing>"))
                        << " != library version " << kSchemaVersion);
    consume(row);
  }
}

const JsonValue& member(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.find(key);
  DYNMO_CHECK(v != nullptr, "missing member '" << key << "'");
  return *v;
}

std::vector<double> double_list(const JsonValue& v) {
  DYNMO_CHECK(v.kind == JsonValue::Kind::Array,
              "expected array, got " << v.kind_name());
  std::vector<double> out;
  out.reserve(v.array.size());
  for (const auto& e : v.array) out.push_back(e.as_double());
  return out;
}

std::vector<int> int_list(const JsonValue& v) {
  DYNMO_CHECK(v.kind == JsonValue::Kind::Array,
              "expected array, got " << v.kind_name());
  std::vector<int> out;
  out.reserve(v.array.size());
  for (const auto& e : v.array) out.push_back(static_cast<int>(e.as_int()));
  return out;
}

}  // namespace

TraceReader::TraceReader(std::string dir) : dir_(std::move(dir)) {
  const JsonValue doc = JsonValue::parse(read_file(kCatalogFile));
  DYNMO_CHECK(doc.kind == JsonValue::Kind::Object, "catalog is not a JSON "
                                                   "object");
  catalog_.format = member(doc, "format").as_string();
  DYNMO_CHECK(catalog_.format == kTraceFormat,
              "not a dynmo trace (format '" << catalog_.format << "')");
  catalog_.schema_version =
      static_cast<int>(member(doc, "schema_version").as_int());
  DYNMO_CHECK(catalog_.schema_version == kSchemaVersion,
              "trace schema version " << catalog_.schema_version
                                      << " != library version "
                                      << kSchemaVersion);

  const JsonValue& run = member(doc, "run");
  RunInfo& r = catalog_.run;
  r.producer = member(run, "producer").as_string();
  // Backend/machine metadata arrived with the transport split; parse
  // tolerantly so pre-split traces (and golden catalogs with the lines
  // stripped) still load.
  if (const JsonValue* t = run.find("transport")) r.transport = t->as_string();
  if (const JsonValue* m = run.find("machine")) r.machine = m->as_string();
  r.iterations = member(run, "iterations").as_int();
  r.sim_stride = member(run, "sim_stride").as_int();
  r.rebalance_interval = member(run, "rebalance_interval").as_int();
  r.pipeline_stages = member(run, "pipeline_stages").as_int();
  r.data_parallel = member(run, "data_parallel").as_int();
  r.seed = static_cast<std::uint64_t>(member(run, "seed").as_int());
  r.mode = member(run, "mode").as_string();
  r.algorithm = member(run, "algorithm").as_string();
  r.balance_by = member(run, "balance_by").as_string();
  r.mem_capacity = member(run, "mem_capacity").as_double();
  r.min_bottleneck_gain = member(run, "min_bottleneck_gain").as_double();
  r.payoff_window_iters = member(run, "payoff_window_iters").as_double();
  r.migration_cost_multiplier =
      member(run, "migration_cost_multiplier").as_double();
  r.migration_exposed_fraction =
      member(run, "migration_exposed_fraction").as_double();
  r.gamma = member(run, "gamma").as_double();
  r.stage_to_rank = int_list(member(run, "stage_to_rank"));
  r.capacities = double_list(member(run, "capacities"));
  r.layer_params = double_list(member(run, "layer_params"));

  const JsonValue& tables = member(doc, "tables");
  DYNMO_CHECK(tables.kind == JsonValue::Kind::Array,
              "catalog 'tables' is not an array");
  for (const auto& t : tables.array) {
    CatalogTable ct;
    ct.name = member(t, "name").as_string();
    ct.file = member(t, "file").as_string();
    ct.rows = member(t, "rows").as_int();
    table_spec(ct.name);  // unknown tables fail loudly
    catalog_.tables.push_back(std::move(ct));
  }
}

std::string TraceReader::read_file(const std::string& name) const {
  const std::string path = dir_ + "/" + name;
  std::ifstream in(path, std::ios::binary);
  DYNMO_CHECK(in.good(), "cannot open trace file " << path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

std::vector<IterationRow> TraceReader::iterations() const {
  std::vector<IterationRow> rows;
  for_each_row(read_file(table_spec("iterations").file), "iterations",
               [&](const JsonValue& v) {
                 IterationRow r;
                 r.iter = member(v, "iter").as_int();
                 r.time_s = member(v, "time_s").as_double();
                 r.event_s = member(v, "event_s").as_double();
                 r.bottleneck_s = member(v, "bottleneck_s").as_double();
                 r.idleness = member(v, "idleness").as_double();
                 r.bubble_ratio = member(v, "bubble_ratio").as_double();
                 r.active_workers = member(v, "active_workers").as_int();
                 r.compute_fraction =
                     member(v, "compute_fraction").as_double();
                 r.rebalanced = member(v, "rebalanced").as_bool();
                 r.stall_s = member(v, "stall_s").as_double();
                 rows.push_back(std::move(r));
               });
  return rows;
}

std::vector<StageLoadRow> TraceReader::stage_loads() const {
  std::vector<StageLoadRow> rows;
  for_each_row(read_file(table_spec("stage_loads").file), "stage_loads",
               [&](const JsonValue& v) {
                 StageLoadRow r;
                 r.iter = member(v, "iter").as_int();
                 r.stage = member(v, "stage").as_int();
                 r.rank = member(v, "rank").as_int();
                 r.layer_begin = member(v, "layer_begin").as_int();
                 r.layer_end = member(v, "layer_end").as_int();
                 r.load_s = member(v, "load_s").as_double();
                 r.mem_bytes = member(v, "mem_bytes").as_double();
                 r.layer_s = double_list(member(v, "layer_s"));
                 r.layer_mem = double_list(member(v, "layer_mem"));
                 rows.push_back(std::move(r));
               });
  return rows;
}

std::vector<RebalanceDecisionRow> TraceReader::rebalance_decisions() const {
  std::vector<RebalanceDecisionRow> rows;
  for_each_row(
      read_file(table_spec("rebalance_decisions").file),
      "rebalance_decisions", [&](const JsonValue& v) {
        RebalanceDecisionRow r;
        r.iter = member(v, "iter").as_int();
        r.trigger = member(v, "trigger").as_string();
        r.algorithm = member(v, "algorithm").as_string();
        r.balance_by = member(v, "balance_by").as_string();
        r.decision = member(v, "decision").as_string();
        r.projected_gain_s = member(v, "projected_gain_s").as_double();
        r.exposed_cost_s = member(v, "exposed_cost_s").as_double();
        r.candidate_bytes = member(v, "candidate_bytes").as_double();
        r.migrated_bytes = member(v, "migrated_bytes").as_double();
        r.migrated_layers = member(v, "migrated_layers").as_int();
        r.imbalance_before = member(v, "imbalance_before").as_double();
        r.imbalance_after = member(v, "imbalance_after").as_double();
        r.decide_s = member(v, "decide_s").as_double();
        rows.push_back(std::move(r));
      });
  return rows;
}

std::vector<MigrationRow> TraceReader::migrations() const {
  std::vector<MigrationRow> rows;
  for_each_row(read_file(table_spec("migrations").file), "migrations",
               [&](const JsonValue& v) {
                 MigrationRow r;
                 r.iter = member(v, "iter").as_int();
                 r.trigger = member(v, "trigger").as_string();
                 r.layer = member(v, "layer").as_int();
                 r.from_stage = member(v, "from_stage").as_int();
                 r.to_stage = member(v, "to_stage").as_int();
                 r.bytes = member(v, "bytes").as_double();
                 rows.push_back(std::move(r));
               });
  return rows;
}

std::vector<ElasticTransitionRow> TraceReader::elastic_transitions() const {
  std::vector<ElasticTransitionRow> rows;
  for_each_row(
      read_file(table_spec("elastic_transitions").file),
      "elastic_transitions", [&](const JsonValue& v) {
        ElasticTransitionRow r;
        r.iter = member(v, "iter").as_int();
        r.kind = member(v, "kind").as_string();
        r.accepted = member(v, "accepted").as_bool();
        r.workers_before = member(v, "workers_before").as_int();
        r.workers_after = member(v, "workers_after").as_int();
        r.stall_s = member(v, "stall_s").as_double();
        r.alpha_s = member(v, "alpha_s").as_double();
        r.bootstrap_s = member(v, "bootstrap_s").as_double();
        r.ckpt_write_s = member(v, "ckpt_write_s").as_double();
        r.ckpt_read_s = member(v, "ckpt_read_s").as_double();
        r.projected_gain_s = member(v, "projected_gain_s").as_double();
        r.migrated_bytes = member(v, "migrated_bytes").as_double();
        rows.push_back(std::move(r));
      });
  return rows;
}

std::vector<FleetDecisionRow> TraceReader::fleet_decisions() const {
  std::vector<FleetDecisionRow> rows;
  for_each_row(
      read_file(table_spec("fleet_decisions").file),
      "fleet_decisions", [&](const JsonValue& v) {
        FleetDecisionRow r;
        r.time_s = member(v, "time_s").as_double();
        r.job = member(v, "job").as_string();
        r.kind = member(v, "kind").as_string();
        r.accepted = member(v, "accepted").as_bool();
        r.priority = member(v, "priority").as_int();
        r.gpus_before = member(v, "gpus_before").as_int();
        r.gpus_after = member(v, "gpus_after").as_int();
        r.pool_free_before = member(v, "pool_free_before").as_int();
        r.pool_free_after = member(v, "pool_free_after").as_int();
        r.fair_share = member(v, "fair_share").as_double();
        r.projected_gain_gpu_s =
            member(v, "projected_gain_gpu_s").as_double();
        r.exposed_cost_gpu_s = member(v, "exposed_cost_gpu_s").as_double();
        r.victim = member(v, "victim").as_string();
        rows.push_back(std::move(r));
      });
  return rows;
}

std::vector<FaultEventRow> TraceReader::fault_events() const {
  std::vector<FaultEventRow> rows;
  for_each_row(
      read_file(table_spec("fault_events").file), "fault_events",
      [&](const JsonValue& v) {
        FaultEventRow r;
        r.iter = member(v, "iter").as_int();
        r.kind = member(v, "kind").as_string();
        r.worker = member(v, "worker").as_int();
        r.multiplier = member(v, "multiplier").as_double();
        r.workers_before = member(v, "workers_before").as_int();
        r.workers_after = member(v, "workers_after").as_int();
        r.stall_s = member(v, "stall_s").as_double();
        r.alpha_s = member(v, "alpha_s").as_double();
        r.bootstrap_s = member(v, "bootstrap_s").as_double();
        r.ckpt_write_s = member(v, "ckpt_write_s").as_double();
        r.ckpt_read_s = member(v, "ckpt_read_s").as_double();
        r.lost_work_s = member(v, "lost_work_s").as_double();
        r.lost_iters = member(v, "lost_iters").as_int();
        rows.push_back(std::move(r));
      });
  return rows;
}

balance::ReplayedLoads TraceReader::replayed_loads() const {
  const auto rows = stage_loads();
  DYNMO_CHECK(!rows.empty(), "trace has no stage_loads rows");

  balance::ReplayedLoads loads;
  loads.num_stages = static_cast<int>(catalog_.run.pipeline_stages);

  balance::ReplayedLoads::Frame frame;
  frame.iter = rows.front().iter;
  for (const auto& r : rows) {
    if (r.iter != frame.iter) {
      loads.frames.push_back(std::move(frame));
      frame = {};
      frame.iter = r.iter;
    }
    DYNMO_CHECK(!r.layer_s.empty() ||
                    r.layer_begin == r.layer_end,
                "stage_loads row (iter " << r.iter << ", stage " << r.stage
                                         << ") has no per-layer arrays — "
                                            "trace recorded with per_layer "
                                            "off; replay needs them");
    DYNMO_CHECK(static_cast<std::int64_t>(frame.layer_time_s.size()) ==
                    r.layer_begin,
                "stage_loads rows out of order at iter " << r.iter);
    frame.layer_time_s.insert(frame.layer_time_s.end(), r.layer_s.begin(),
                              r.layer_s.end());
    frame.layer_memory_bytes.insert(frame.layer_memory_bytes.end(),
                                    r.layer_mem.begin(), r.layer_mem.end());
  }
  loads.frames.push_back(std::move(frame));
  return loads;
}

balance::ReplayConfig TraceReader::replay_config() const {
  const RunInfo& r = catalog_.run;
  balance::ReplayConfig cfg;
  cfg.rebalance_interval = r.rebalance_interval;
  cfg.seed = r.seed;
  cfg.params = r.layer_params;

  balance::RebalanceConfig& rb = cfg.rebalance;
  if (r.algorithm == to_string(balance::Algorithm::Partition)) {
    rb.algorithm = balance::Algorithm::Partition;
  } else if (r.algorithm ==
             to_string(balance::Algorithm::HierarchicalDiffusion)) {
    rb.algorithm = balance::Algorithm::HierarchicalDiffusion;
  } else {
    rb.algorithm = balance::Algorithm::Diffusion;
  }
  rb.by = r.balance_by == to_string(balance::BalanceBy::Param)
              ? balance::BalanceBy::Param
              : balance::BalanceBy::Time;
  rb.mem_capacity = r.mem_capacity;
  rb.gamma = r.gamma;
  rb.min_bottleneck_gain = r.min_bottleneck_gain;
  rb.payoff_window_iters = r.payoff_window_iters;
  rb.migration_cost_multiplier = r.migration_cost_multiplier;
  rb.migration_exposed_fraction = r.migration_exposed_fraction;
  rb.stage_to_rank = r.stage_to_rank;
  rb.capacities = r.capacities;
  return cfg;
}

}  // namespace dynmo::telemetry
