// Fault & checkpoint-cadence sweep (docs/FAULT.md): MTBF-driven worker
// losses against a grid of periodic-checkpoint cadences, pricing the
// cadence trade-off the paper's elastic restart machinery implies but
// never measures:
//
//   * never checkpoint (cadence 0) — every loss re-does all work since
//     the last restart: lost-work grows with the MTBF horizon;
//   * checkpoint every window (the tightest legal cadence) — losses are
//     cheap but the steady-state write tax is paid at every boundary;
//   * an *interior* cadence — near sqrt(2 * write_cost * MTBF) in the
//     classic Young/Daly approximation — minimizes total time.
//
// The binary exit-code-gates the interior optimum (bench/record_bench.sh
// and CI run it): exit 1 if the best swept cadence is ever the
// never-checkpoint or tightest-cadence endpoint for the canonical MTBF,
// so a pricing regression (lost work dropped, writes double-charged)
// fails the build rather than silently bending the recorded curves.
//
// A second sweep shows degraded-GPU routing: a persistent straggler under
// DynMo (capacity-aware partition) vs. the static pipeline eating the
// full slowdown.  `--smoke` shrinks horizons for CI; `--json PATH`
// records both sweeps; `--trace-dir DIR` records per-config traces whose
// fault_events table holds every loss with its stall breakdown.
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace dynmo;

struct Scenario {
  std::int64_t iterations;
  double mtbf_iters;
  int max_losses;
};

runtime::SessionConfig base_config(const Scenario& sc) {
  runtime::SessionConfig cfg;
  cfg.pipeline_stages = 8;
  cfg.micro_batch = 2;
  cfg.num_microbatches = 16;
  cfg.iterations = sc.iterations;
  cfg.sim_stride = 10;
  cfg.rebalance_interval = 100;
  cfg.mode = runtime::BalancingMode::DynMo;
  cfg.algorithm = balance::Algorithm::Partition;
  cfg.balance_by = balance::BalanceBy::Time;
  return cfg;
}

const char* g_trace_dir = nullptr;

runtime::SessionResult run_one(const model::ModelDesc& m,
                               runtime::SessionConfig cfg,
                               const std::string& label) {
  if (g_trace_dir != nullptr) {
    cfg.telemetry.dir =
        std::string(g_trace_dir) + "/" + bench::trace_slug(label);
  }
  repack::MockEckCluster eck(cfg.pipeline_stages);
  cfg.elastic.cluster = &eck;
  runtime::TrainingSession session(m, cfg, nullptr);
  return session.run();
}

bench::Row make_row(std::string label, runtime::SessionResult r) {
  bench::Row row;
  row.label = std::move(label);
  row.extra = {{"worker_losses", static_cast<double>(r.worker_losses)},
               {"lost_work_s", r.lost_work_s},
               {"restart_stall_s", r.restart_stall_s},
               {"checkpoints", static_cast<double>(r.checkpoints_written)},
               {"ckpt_write_s", r.checkpoint_write_s},
               {"total_time_s", r.total_time_s}};
  row.result = std::move(r);
  return row;
}

void print_cadence(const std::vector<bench::Row>& rows) {
  std::printf("%-28s %7s %10s %10s %7s %10s %11s\n", "configuration",
              "losses", "lost s", "stall s", "ckpts", "write s",
              "total s");
  for (const auto& r : rows) {
    std::printf("%-28s %7d %10.2f %10.2f %7d %10.2f %11.2f\n",
                r.label.c_str(), r.result.worker_losses,
                r.result.lost_work_s, r.result.restart_stall_s,
                r.result.checkpoints_written, r.result.checkpoint_write_s,
                r.result.total_time_s);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* json_path = bench::json_path_arg(argc, argv);
  g_trace_dir = bench::trace_dir_arg(argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const Scenario sc = smoke ? Scenario{2000, 500.0, 4}
                            : Scenario{6000, 1200.0, 6};
  const auto m = model::make_gpt({.num_blocks = 24,
                                  .include_embedding = false,
                                  .include_lm_head = false});
  std::printf("Fault sweep: 24-layer GPT on 8 workers, MTBF %.0f iters, "
              "horizon %lld iters%s\n\n",
              sc.mtbf_iters, static_cast<long long>(sc.iterations),
              smoke ? " (smoke)" : "");

  const auto fault_config = [&](double mtbf, std::int64_t cadence) {
    auto cfg = base_config(sc);
    cfg.elastic.enabled = true;
    cfg.elastic.interval = 1000;
    cfg.elastic.min_workers = 2;
    cfg.elastic.payoff_window_iters = 1e-3;  // no voluntary transitions
    cfg.elastic.restart_alpha_s = 2.0;
    // Slow shared-filesystem checkpoints (512 MiB/s): the write tax is
    // real, so the cadence trade-off has an interior optimum.
    cfg.elastic.checkpoint_bw = 512.0 * 1024 * 1024;
    cfg.fault.mtbf_iters = mtbf;
    cfg.fault.max_mtbf_losses = sc.max_losses;
    cfg.checkpoint_interval_iters = cadence;
    return cfg;
  };

  bench::JsonRecorder recorder("fault");
  const auto fault_free = run_one(m, base_config(sc), "fault-free");

  // --- sweep 1: checkpoint cadence under MTBF losses ---------------------
  // Cadences are multiples of sim_stride (10); 10 is the tightest legal
  // "every window" cadence, 0 means restarts roll back to the last
  // recovery (or the start).
  const std::vector<std::int64_t> cadences = {0,   10,  50,   100,
                                              200, 500, 1000, 2000};
  int best = -1;
  {
    std::vector<bench::Row> rows;
    for (const std::int64_t cadence : cadences) {
      char label[64];
      std::snprintf(label, sizeof label, "cadence %lld",
                    static_cast<long long>(cadence));
      rows.push_back(
          make_row(label, run_one(m, fault_config(sc.mtbf_iters, cadence),
                                  label)));
    }
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (best < 0 || rows[i].result.total_time_s <
                          rows[static_cast<std::size_t>(best)]
                              .result.total_time_s) {
        best = static_cast<int>(i);
      }
    }
    bench::print_table("checkpoint cadence under MTBF losses", rows,
                       fault_free.tokens_per_sec);
    std::printf("\n");
    print_cadence(rows);
    const double daly = std::sqrt(
        2.0 * sc.mtbf_iters *
        (rows[1].result.checkpoint_write_s /
         std::max(1.0, static_cast<double>(
                           rows[1].result.checkpoints_written))) /
        (fault_free.total_time_s /
         static_cast<double>(sc.iterations)));
    std::printf("\nbest cadence: %lld (Young/Daly estimate ~%.0f iters)\n",
                static_cast<long long>(
                    cadences[static_cast<std::size_t>(best)]),
                daly);
    recorder.add_case("cadence", rows, fault_free.tokens_per_sec);
  }

  // --- sweep 2: degraded-GPU routing ------------------------------------
  {
    std::vector<bench::Row> rows;
    rows.push_back(make_row("fault-free dynmo", fault_free));
    for (const double mult : {0.75, 0.5, 0.25}) {
      const auto straggled = [&](runtime::BalancingMode mode,
                                 const char* name) {
        auto cfg = base_config(sc);
        cfg.mode = mode;
        cfg.fault.stragglers = {
            {.worker = 4, .multiplier = mult, .from_iter = 0}};
        char label[64];
        std::snprintf(label, sizeof label, "%s x%.2f", name, mult);
        rows.push_back(make_row(label, run_one(m, cfg, label)));
      };
      straggled(runtime::BalancingMode::StaticUniform, "static");
      straggled(runtime::BalancingMode::DynMo, "dynmo");
    }
    bench::print_table("persistent straggler: static vs capacity-aware",
                       rows, fault_free.tokens_per_sec);
    recorder.add_case("straggler_routing", rows,
                      fault_free.tokens_per_sec);
  }

  if (json_path != nullptr) recorder.write(json_path);

  // Exit-code gate: the cadence optimum must be interior — tighter than
  // never-checkpointing, looser than checkpointing every window.
  if (best <= 0 || cadences[static_cast<std::size_t>(best)] ==
                       cadences[1]) {
    std::fprintf(stderr,
                 "FAIL: cadence optimum fell on an endpoint (index %d) — "
                 "checkpoint pricing is broken\n",
                 best);
    return 1;
  }
  std::printf("\ninterior cadence optimum verified\n");
  return 0;
}
