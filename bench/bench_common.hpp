// Shared helpers for the figure-reproduction harnesses.
//
// Each bench binary regenerates one figure/table of the paper: it sweeps
// the same configurations, prints the same rows/series, and reports the
// speedups the paper highlights.  Absolute tokens/sec differ from the
// authors' H100 testbed (our substrate is a calibrated simulator); the
// *shape* — who wins, by what factor, where crossovers fall — is the
// reproduction target (see EXPERIMENTS.md).
#pragma once

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "dynmo/dynmo.hpp"

namespace dynmo::bench {

/// Paper-scale defaults: 720-GPU hybrid (90-way DP x 8-way PP) for the GPT
/// sweeps, 128-GPU (8-way DP x 16-way PP) for MoE.  The paper nominally
/// reports a 24-way pipeline; with 24-48 layer models that leaves 1-2
/// layers per stage, at which whole-layer rebalancing is degenerate, so we
/// keep >=3 layers per stage and put the rest of the GPUs in DP (same GPU
/// count, same global batch per GPU).
inline runtime::SessionConfig gpt_cluster_config() {
  runtime::SessionConfig cfg;
  cfg.pipeline_stages = 16;
  cfg.data_parallel = 45;
  cfg.micro_batch = 2;
  cfg.num_microbatches = 64;  // 4 in-flight microbatches per stage
  cfg.schedule = pipeline::ScheduleKind::ZbH1;
  cfg.iterations = 10000;
  cfg.sim_stride = 50;
  return cfg;
}

inline runtime::SessionConfig moe_cluster_config() {
  runtime::SessionConfig cfg;
  // 128 GPUs as in the paper; 8-way pipeline x 16-way DP so each stage
  // hosts >=4 MoE blocks (whole-layer rebalancing needs mixing room).
  cfg.pipeline_stages = 8;
  cfg.data_parallel = 16;
  cfg.micro_batch = 2;
  cfg.num_microbatches = 64;
  cfg.schedule = pipeline::ScheduleKind::ZbH1;
  cfg.iterations = 2000;   // steady-state routing: shorter window suffices
  cfg.sim_stride = 10;
  return cfg;
}

/// 8-way-pipeline variant of the GPT cluster for schemes whose alternating
/// block structure needs >=3 blocks per stage to rebalance (MoD).
inline runtime::SessionConfig gpt_cluster_config_deep_stages() {
  runtime::SessionConfig cfg = gpt_cluster_config();
  cfg.pipeline_stages = 8;
  cfg.data_parallel = 90;
  cfg.num_microbatches = 32;
  return cfg;
}

struct Row {
  std::string label;
  runtime::SessionResult result;
  /// Extra per-row numeric fields the JsonRecorder emits verbatim (after
  /// the uniform columns) — bench_elastic records its lifecycle counters
  /// this way.  Values are rounded to 4 significant digits like the
  /// throughputs; keep wall-clock-dominated quantities out (see
  /// docs/BENCHMARKS.md).
  std::vector<std::pair<std::string, double>> extra = {};
};

inline void print_table(const std::string& title,
                        const std::vector<Row>& rows,
                        double baseline_tokens_per_sec) {
  std::printf("\n== %s ==\n", title.c_str());
  std::printf("%-36s %12s %9s %9s %9s %8s\n", "configuration", "tokens/s",
              "idle%", "bubble%", "overh%", "speedup");
  for (const auto& r : rows) {
    std::printf("%-36s %12.0f %8.1f%% %8.1f%% %8.2f%% %7.2fx\n",
                r.label.c_str(), r.result.tokens_per_sec,
                100.0 * r.result.avg_idleness,
                100.0 * r.result.avg_bubble_ratio,
                100.0 * r.result.overhead_fraction,
                r.result.tokens_per_sec / baseline_tokens_per_sec);
  }
}

/// `--json PATH` argument shared by the figure benches (returns nullptr
/// when absent).
inline const char* json_path_arg(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      return argv[i + 1];
    }
  }
  return nullptr;
}

/// `--trace-dir DIR` argument: benches that support it write one telemetry
/// trace per swept configuration under DIR/<slug> (docs/TELEMETRY.md), so
/// a sweep's every decision is queryable after the fact.  Returns nullptr
/// when absent.
inline const char* trace_dir_arg(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-dir") == 0 && i + 1 < argc) {
      return argv[i + 1];
    }
  }
  return nullptr;
}

/// Filesystem-safe subdirectory name for a sweep label.
inline std::string trace_slug(const std::string& label) {
  std::string s;
  for (const char c : label) {
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '.' ||
        c == '-') {
      s.push_back(c);
    } else if (!s.empty() && s.back() != '_') {
      s.push_back('_');
    }
  }
  while (!s.empty() && s.back() == '_') s.pop_back();
  return s;
}

/// Uniform BENCH_fig3_*.json recorder: one object per bench, one entry per
/// case (model size / MoE variant), one row per series — the same rows
/// print_table shows, minus overhead_fraction (dominated by the *measured*
/// decide wall-clock, hence machine-dependent).  Throughputs are rounded
/// to 4 significant digits and speedups — ratios of two measured values,
/// so their jitter compounds — to 3, so the residual decide-time jitter
/// cannot move a recorded trajectory (see docs/BENCHMARKS.md).
class JsonRecorder {
 public:
  explicit JsonRecorder(std::string bench) : bench_(std::move(bench)) {}

  void add_case(const std::string& title, const std::vector<Row>& rows,
                double baseline_tokens_per_sec) {
    cases_.push_back({title, rows, baseline_tokens_per_sec});
  }

  /// Counter-only row for benches whose deterministic content is traffic
  /// volume rather than throughput (bench_micro_comm): just a series label
  /// plus counter-derived fields, emitted verbatim.  Wall-clock stays in
  /// the printed table and out of the committed JSON (docs/BENCHMARKS.md).
  struct VolumeRow {
    std::string label;
    std::vector<std::pair<std::string, double>> fields;
  };

  void add_volume_case(const std::string& title,
                       const std::vector<VolumeRow>& rows) {
    volume_cases_.push_back({title, rows});
  }

  void write(const char* path) const {
    FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", path);
      std::exit(2);
    }
    const std::size_t total = cases_.size() + volume_cases_.size();
    std::size_t written = 0;
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"cases\": [\n",
                 bench_.c_str());
    for (const Case& cs : cases_) {
      std::fprintf(f, "    {\"case\": \"%s\", \"rows\": [\n",
                   cs.title.c_str());
      for (std::size_t r = 0; r < cs.rows.size(); ++r) {
        const auto& res = cs.rows[r].result;
        std::fprintf(
            f,
            "      {\"series\": \"%s\", \"tokens_per_sec\": %.4g, "
            "\"idleness\": %.4g, \"bubble_ratio\": %.4g, "
            "\"speedup\": %.3g",
            cs.rows[r].label.c_str(), res.tokens_per_sec, res.avg_idleness,
            res.avg_bubble_ratio, res.tokens_per_sec / cs.baseline);
        for (const auto& [key, value] : cs.rows[r].extra) {
          std::fprintf(f, ", \"%s\": %.4g", key.c_str(), value);
        }
        std::fprintf(f, "}%s\n", r + 1 < cs.rows.size() ? "," : "");
      }
      std::fprintf(f, "    ]}%s\n", ++written < total ? "," : "");
    }
    for (const VolumeCase& cs : volume_cases_) {
      std::fprintf(f, "    {\"case\": \"%s\", \"rows\": [\n",
                   cs.title.c_str());
      for (std::size_t r = 0; r < cs.rows.size(); ++r) {
        std::fprintf(f, "      {\"series\": \"%s\"",
                     cs.rows[r].label.c_str());
        for (const auto& [key, value] : cs.rows[r].fields) {
          std::fprintf(f, ", \"%s\": %.4g", key.c_str(), value);
        }
        std::fprintf(f, "}%s\n", r + 1 < cs.rows.size() ? "," : "");
      }
      std::fprintf(f, "    ]}%s\n", ++written < total ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", path);
  }

 private:
  struct Case {
    std::string title;
    std::vector<Row> rows;
    double baseline;
  };
  struct VolumeCase {
    std::string title;
    std::vector<VolumeRow> rows;
  };
  std::string bench_;
  std::vector<Case> cases_;
  std::vector<VolumeCase> volume_cases_;
};

/// Run one (mode, algorithm, by) configuration of a use case.
inline runtime::SessionResult run_config(const model::ModelDesc& model,
                                         UseCase use_case, Options opt,
                                         runtime::BalancingMode mode,
                                         balance::Algorithm algo,
                                         balance::BalanceBy by,
                                         bool repack = false) {
  opt.session.mode = mode;
  opt.session.algorithm = algo;
  opt.session.balance_by = by;
  opt.session.repack = repack;
  Session session(model, use_case, opt);
  return session.run();
}

/// The paper reports DynMo as the best of {by-param, by-time}; by-time
/// consistently wins, so helpers sweep both and keep the best.
inline runtime::SessionResult run_dynmo_best(const model::ModelDesc& model,
                                             UseCase use_case,
                                             const Options& opt,
                                             balance::Algorithm algo,
                                             bool repack = false) {
  auto by_time = run_config(model, use_case, opt,
                            runtime::BalancingMode::DynMo, algo,
                            balance::BalanceBy::Time, repack);
  auto by_param = run_config(model, use_case, opt,
                             runtime::BalancingMode::DynMo, algo,
                             balance::BalanceBy::Param, repack);
  return by_time.tokens_per_sec >= by_param.tokens_per_sec ? by_time
                                                           : by_param;
}

}  // namespace dynmo::bench
