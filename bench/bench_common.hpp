// Shared helpers for the figure-reproduction harnesses.
//
// Each bench binary regenerates one figure/table of the paper: it sweeps
// the same configurations, prints the same rows/series, and reports the
// speedups the paper highlights.  Absolute tokens/sec differ from the
// authors' H100 testbed (our substrate is a calibrated simulator); the
// *shape* — who wins, by what factor, where crossovers fall — is the
// reproduction target (see EXPERIMENTS.md).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "dynmo/dynmo.hpp"

namespace dynmo::bench {

/// Paper-scale defaults: 720-GPU hybrid (90-way DP x 8-way PP) for the GPT
/// sweeps, 128-GPU (8-way DP x 16-way PP) for MoE.  The paper nominally
/// reports a 24-way pipeline; with 24-48 layer models that leaves 1-2
/// layers per stage, at which whole-layer rebalancing is degenerate, so we
/// keep >=3 layers per stage and put the rest of the GPUs in DP (same GPU
/// count, same global batch per GPU).
inline runtime::SessionConfig gpt_cluster_config() {
  runtime::SessionConfig cfg;
  cfg.pipeline_stages = 16;
  cfg.data_parallel = 45;
  cfg.micro_batch = 2;
  cfg.num_microbatches = 64;  // 4 in-flight microbatches per stage
  cfg.schedule = pipeline::ScheduleKind::ZbH1;
  cfg.iterations = 10000;
  cfg.sim_stride = 50;
  return cfg;
}

inline runtime::SessionConfig moe_cluster_config() {
  runtime::SessionConfig cfg;
  // 128 GPUs as in the paper; 8-way pipeline x 16-way DP so each stage
  // hosts >=4 MoE blocks (whole-layer rebalancing needs mixing room).
  cfg.pipeline_stages = 8;
  cfg.data_parallel = 16;
  cfg.micro_batch = 2;
  cfg.num_microbatches = 64;
  cfg.schedule = pipeline::ScheduleKind::ZbH1;
  cfg.iterations = 2000;   // steady-state routing: shorter window suffices
  cfg.sim_stride = 10;
  return cfg;
}

/// 8-way-pipeline variant of the GPT cluster for schemes whose alternating
/// block structure needs >=3 blocks per stage to rebalance (MoD).
inline runtime::SessionConfig gpt_cluster_config_deep_stages() {
  runtime::SessionConfig cfg = gpt_cluster_config();
  cfg.pipeline_stages = 8;
  cfg.data_parallel = 90;
  cfg.num_microbatches = 32;
  return cfg;
}

struct Row {
  std::string label;
  runtime::SessionResult result;
};

inline void print_table(const std::string& title,
                        const std::vector<Row>& rows,
                        double baseline_tokens_per_sec) {
  std::printf("\n== %s ==\n", title.c_str());
  std::printf("%-36s %12s %9s %9s %9s %8s\n", "configuration", "tokens/s",
              "idle%", "bubble%", "overh%", "speedup");
  for (const auto& r : rows) {
    std::printf("%-36s %12.0f %8.1f%% %8.1f%% %8.2f%% %7.2fx\n",
                r.label.c_str(), r.result.tokens_per_sec,
                100.0 * r.result.avg_idleness,
                100.0 * r.result.avg_bubble_ratio,
                100.0 * r.result.overhead_fraction,
                r.result.tokens_per_sec / baseline_tokens_per_sec);
  }
}

/// Run one (mode, algorithm, by) configuration of a use case.
inline runtime::SessionResult run_config(const model::ModelDesc& model,
                                         UseCase use_case, Options opt,
                                         runtime::BalancingMode mode,
                                         balance::Algorithm algo,
                                         balance::BalanceBy by,
                                         bool repack = false) {
  opt.session.mode = mode;
  opt.session.algorithm = algo;
  opt.session.balance_by = by;
  opt.session.repack = repack;
  Session session(model, use_case, opt);
  return session.run();
}

/// The paper reports DynMo as the best of {by-param, by-time}; by-time
/// consistently wins, so helpers sweep both and keep the best.
inline runtime::SessionResult run_dynmo_best(const model::ModelDesc& model,
                                             UseCase use_case,
                                             const Options& opt,
                                             balance::Algorithm algo,
                                             bool repack = false) {
  auto by_time = run_config(model, use_case, opt,
                            runtime::BalancingMode::DynMo, algo,
                            balance::BalanceBy::Time, repack);
  auto by_param = run_config(model, use_case, opt,
                             runtime::BalancingMode::DynMo, algo,
                             balance::BalanceBy::Param, repack);
  return by_time.tokens_per_sec >= by_param.tokens_per_sec ? by_time
                                                           : by_param;
}

}  // namespace dynmo::bench
