// Figure 4 (right table): DynMo's load-balancing overhead per use case —
// profiling + balancing-algorithm + layer-migration time as a percentage
// of total training time, with the per-component breakdown.
//
// Paper values: pruning <0.1%, freezing <0.1%, sparse attention 2-13%,
// early exit <=0.3%, MoDs 2-7%, MoEs 4-5%.  The expensive cases are the
// ones that rebalance every iteration.
#include "bench_common.hpp"

namespace {

void report(const char* name, const dynmo::runtime::SessionResult& r,
            const char* frequency) {
  const double total = std::max(1e-12, r.total_time_s);
  std::printf("%-22s %8.3f%%   profile %6.3f%%  decide %6.3f%%  "
              "migrate %6.3f%%   (%s)\n",
              name, 100.0 * r.overhead_fraction,
              100.0 * r.overhead.profile_s / total,
              100.0 * r.overhead.decide_s / total,
              100.0 * r.overhead.migrate_s / total, frequency);
}

}  // namespace

int main() {
  using namespace dynmo;
  std::printf("Load-balancing overhead breakdown (48-layer GPT unless "
              "noted)\n\n");
  std::printf("%-22s %9s\n", "use case", "overhead");

  const auto model = model::make_gpt({.num_blocks = 48,
                                      .include_embedding = false,
                                      .include_lm_head = false});

  {
    Options opt;
    opt.session = bench::gpt_cluster_config();
    opt.session.rebalance_interval = 1000;
    const auto r = bench::run_config(
        model, UseCase::GradualPruning, opt, runtime::BalancingMode::DynMo,
        balance::Algorithm::Diffusion, balance::BalanceBy::Time);
    report("pruning", r, "every 1,000 iterations");
  }
  {
    Options opt;
    opt.session = bench::gpt_cluster_config();
    opt.session.rebalance_interval = 300;
    const auto r = bench::run_config(
        model, UseCase::LayerFreezing, opt, runtime::BalancingMode::DynMo,
        balance::Algorithm::Diffusion, balance::BalanceBy::Time);
    report("layer freezing", r, "every 300 iterations");
  }
  {
    Options opt;
    opt.session = bench::gpt_cluster_config();
    opt.session.iterations = 2000;
    opt.session.sim_stride = 10;
    opt.session.rebalance_interval = 1;
    const auto r = bench::run_config(
        model, UseCase::SparseAttention, opt, runtime::BalancingMode::DynMo,
        balance::Algorithm::Diffusion, balance::BalanceBy::Time);
    report("sparse attention", r, "every iteration");
  }
  {
    Options opt;
    opt.session = bench::gpt_cluster_config();
    opt.session.rebalance_interval = 100;
    const auto r = bench::run_config(
        model, UseCase::EarlyExit, opt, runtime::BalancingMode::DynMo,
        balance::Algorithm::Diffusion, balance::BalanceBy::Time);
    report("early exit", r, "every 100 iterations");
  }
  {
    Options opt;
    opt.session = bench::gpt_cluster_config();
    opt.session.iterations = 2000;
    opt.session.sim_stride = 10;
    opt.session.rebalance_interval = 1;
    const auto r = bench::run_config(
        model, UseCase::MixtureOfDepths, opt, runtime::BalancingMode::DynMo,
        balance::Algorithm::Diffusion, balance::BalanceBy::Time);
    report("mixture of depths", r, "every iteration");
  }
  {
    const auto moe = model::make_moe(model::mixtral_8x7b_config(), "mixtral");
    Options opt;
    opt.session = bench::moe_cluster_config();
    opt.session.iterations = 500;
    opt.session.sim_stride = 5;
    opt.session.rebalance_interval = 1;
    const auto r = bench::run_config(
        moe, UseCase::Moe, opt, runtime::BalancingMode::DynMo,
        balance::Algorithm::Diffusion, balance::BalanceBy::Time);
    report("MoE (Mixtral 8x7b)", r, "every iteration");
  }
  return 0;
}
