// Figure 1: average GPU idleness per iteration for the six dynamic model
// types on *static* placement (the motivation figure — how much compute
// dynamic models waste without dynamic load balancing).
//
// Paper observations this harness reproduces in shape:
//   MoE        ~25% bubble ratio (Mixtral aux-loss / S-BASE)
//   Pruning    ~5x idleness increase at 90% sparsity vs dense
//   Freezing   ~40% bubble ratio
//   SparseAttn ~4x bubble increase over dense attention
//   EarlyExit  up to ~5x bubble increase over no-exit
//   MoD        ~18% bubble ratio
#include "bench_common.hpp"

namespace {

dynmo::runtime::SessionResult run_static(const dynmo::model::ModelDesc& m,
                                         dynmo::UseCase uc,
                                         dynmo::Options opt) {
  using namespace dynmo;
  opt.session.mode = runtime::BalancingMode::StaticUniform;
  Session s(m, uc, opt);
  return s.run();
}

}  // namespace

int main() {
  using namespace dynmo;
  std::printf("Figure 1 — average GPU idleness per iteration, static "
              "placement (zero-bubble schedule)\n\n");

  // --- GPT sweeps: pruning / freezing / sparse attention / early exit /
  // MoD, 24..48 layers --------------------------------------------------
  std::printf("%-22s %8s %8s %8s %8s\n", "scheme \\ layers", "24", "32",
              "40", "48");
  struct SchemeRow {
    const char* name;
    UseCase use_case;
    std::int64_t iters;
    std::int64_t stride;
  };
  const SchemeRow schemes[] = {
      {"dense (baseline)", UseCase::Static, 500, 10},
      {"pruning @90%", UseCase::GradualPruning, 10000, 100},
      {"layer freezing", UseCase::LayerFreezing, 10000, 100},
      {"sparse attention", UseCase::SparseAttention, 1000, 10},
      {"early exit", UseCase::EarlyExit, 10000, 100},
      {"mixture of depths", UseCase::MixtureOfDepths, 1000, 10},
  };
  for (const auto& row : schemes) {
    std::printf("%-22s", row.name);
    for (std::size_t blocks : {24u, 32u, 40u, 48u}) {
      const auto model = model::make_gpt({.num_blocks = blocks,
                                          .include_embedding = false,
                                          .include_lm_head = false});
      Options opt;
      opt.session = bench::gpt_cluster_config_deep_stages();
      opt.session.iterations = row.iters;
      opt.session.sim_stride = row.stride;
      const auto r = run_static(model, row.use_case, opt);
      std::printf(" %7.1f%%", 100.0 * r.avg_idleness);
    }
    std::printf("\n");
  }

  // --- MoE: the two continual-training models ---------------------------
  std::printf("\n%-34s %10s %12s\n", "MoE model", "idleness", "bubble ratio");
  const struct {
    const char* name;
    model::MoeConfig cfg;
    dynamic::MoeRouting routing;
  } moes[] = {
      {"Mixtral 8x7b (aux-loss)", model::mixtral_8x7b_config(),
       dynamic::MoeRouting::AuxLoss},
      {"LLaMA-MoE-3.5B (S-BASE)", model::llama_moe_3_5b_config(),
       dynamic::MoeRouting::SBase},
  };
  for (const auto& m : moes) {
    const auto model = model::make_moe(m.cfg, m.name);
    Options opt;
    opt.session = bench::moe_cluster_config();
    opt.session.iterations = 500;
    opt.session.sim_stride = 10;
    opt.moe.routing = m.routing;
    const auto r = run_static(model, UseCase::Moe, opt);
    std::printf("%-34s %9.1f%% %11.1f%%\n", m.name, 100.0 * r.avg_idleness,
                100.0 * r.avg_bubble_ratio);
  }

  // --- pruning idleness vs sparsity level (Fig. 1 panel 2's x-axis) -----
  std::printf("\npruning idleness vs sparsity (48 layers): ");
  const auto model = model::make_gpt({.num_blocks = 48,
                                      .include_embedding = false,
                                      .include_lm_head = false});
  for (double sparsity : {0.0, 0.3, 0.5, 0.7, 0.9}) {
    Options opt;
    opt.session = bench::gpt_cluster_config_deep_stages();
    opt.session.iterations = 300;
    opt.session.sim_stride = 10;
    opt.pruning.schedule.start_iter = 0;
    opt.pruning.schedule.frequency = 1;
    opt.pruning.schedule.num_steps = 1;
    opt.pruning.schedule.initial_sparsity = sparsity;
    opt.pruning.schedule.final_sparsity = sparsity;
    const auto r = run_static(model, UseCase::GradualPruning, opt);
    std::printf(" %.0f%%:%4.1f%%", 100.0 * sparsity, 100.0 * r.avg_idleness);
  }
  std::printf("\n");
  return 0;
}
