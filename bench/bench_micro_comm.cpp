// Micro-benchmarks for the communication substrate, parameterized over
// transport backends (docs/TRANSPORT.md): P2P round-trips, collectives,
// and communicator split — the primitives under layer migration and
// distributed pruning — timed on inproc (lock-free mailbox handoff) and
// socket (length-prefixed frames over Unix-domain socketpairs).
//
// Two outputs with different determinism rules:
//   * the printed table carries the measured ns/op and MB/s — wall-clock,
//     machine-dependent, never committed;
//   * --json records only the transport counters (payload bytes and
//     messages per op), which are a pure function of the op — and must be
//     IDENTICAL across backends, since both count payload bytes at the
//     same Transport::send choke point.  The committed
//     BENCH_micro_comm.json is therefore a parity artifact: a diff between
//     the inproc and socket rows means a backend grew private traffic.
//
//   bench_micro_comm [--transport inproc|socket|both] [--json PATH]
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "comm/communicator.hpp"

namespace {

using namespace dynmo;
using comm::TransportKind;

struct OpStats {
  double ns_per_op = 0.0;
  double payload_mb_s = 0.0;    ///< measured, printed only
  double bytes_per_op = 0.0;    ///< deterministic, recorded
  double msgs_per_op = 0.0;     ///< deterministic, recorded
};

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Rank 0 sends `bytes`, rank 1 echoes it back; one op = one round trip.
OpStats ping_pong(TransportKind kind, std::size_t bytes, int iters) {
  comm::World world(2, kind);
  std::vector<std::byte> payload(bytes);
  std::thread echo([&world, iters] {
    comm::Communicator c = world.world_comm(1);
    for (int i = 0; i < iters; ++i) {
      auto m = c.recv(0, 1);
      c.send(0, 2, std::move(m.payload));
    }
  });
  comm::Communicator c = world.world_comm(0);
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    c.send(1, 1, payload);
    (void)c.recv(1, 2);
  }
  const double s = seconds_since(t0);
  echo.join();
  OpStats st;
  st.ns_per_op = 1e9 * s / iters;
  st.bytes_per_op =
      static_cast<double>(world.bytes_sent()) / iters;
  st.msgs_per_op =
      static_cast<double>(world.messages_sent()) / iters;
  st.payload_mb_s = 2.0 * static_cast<double>(bytes) * iters / s / 1e6;
  return st;
}

/// One op = a full `ranks`-way allreduce_sum of 256 doubles.
OpStats allreduce(TransportKind kind, int ranks, int iters) {
  comm::World world(ranks, kind);
  constexpr std::size_t kDoubles = 256;
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> ts;
  ts.reserve(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    ts.emplace_back([&world, r, iters] {
      comm::Communicator c = world.world_comm(r);
      for (int i = 0; i < iters; ++i) {
        std::vector<double> mine(kDoubles, static_cast<double>(r));
        (void)c.allreduce_sum(std::move(mine));
      }
    });
  }
  for (auto& t : ts) t.join();
  const double s = seconds_since(t0);
  OpStats st;
  st.ns_per_op = 1e9 * s / iters;
  st.bytes_per_op = static_cast<double>(world.bytes_sent()) / iters;
  st.msgs_per_op = static_cast<double>(world.messages_sent()) / iters;
  st.payload_mb_s = st.bytes_per_op * iters / s / 1e6;
  return st;
}

/// One op = every rank splitting into halves (the repack/restart path).
OpStats comm_split(TransportKind kind, int ranks, int iters) {
  OpStats st;
  double total_s = 0.0;
  std::uint64_t total_bytes = 0;
  std::uint64_t total_msgs = 0;
  for (int i = 0; i < iters; ++i) {
    comm::World world(ranks, kind);
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> ts;
    ts.reserve(static_cast<std::size_t>(ranks));
    for (int r = 0; r < ranks; ++r) {
      ts.emplace_back([&world, r, ranks] {
        comm::Communicator c = world.world_comm(r);
        (void)c.split(r < ranks / 2 ? 0 : -1, r);
      });
    }
    for (auto& t : ts) t.join();
    total_s += seconds_since(t0);
    total_bytes += world.bytes_sent();
    total_msgs += world.messages_sent();
  }
  st.ns_per_op = 1e9 * total_s / iters;
  st.bytes_per_op = static_cast<double>(total_bytes) / iters;
  st.msgs_per_op = static_cast<double>(total_msgs) / iters;
  st.payload_mb_s = st.bytes_per_op * iters / total_s / 1e6;
  return st;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<TransportKind> kinds = {TransportKind::InProc,
                                      TransportKind::Socket};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--transport") == 0 && i + 1 < argc) {
      const std::string v = argv[++i];
      if (v != "both") kinds = {comm::parse_transport(v)};
    }
  }

  struct Case {
    std::string name;
    OpStats (*run)(TransportKind);
  };
  // Fixed op shapes: iteration counts are part of the recorded
  // bytes/msgs-per-op denominators, so changing one regenerates the JSON.
  static const Case kCases[] = {
      {"pingpong 64B",
       [](TransportKind k) { return ping_pong(k, 64, 2000); }},
      {"pingpong 4KiB",
       [](TransportKind k) { return ping_pong(k, 4096, 2000); }},
      {"pingpong 1MiB",
       [](TransportKind k) { return ping_pong(k, 1 << 20, 100); }},
      {"allreduce 256d x4",
       [](TransportKind k) { return allreduce(k, 4, 200); }},
      {"allreduce 256d x8",
       [](TransportKind k) { return allreduce(k, 8, 100); }},
      {"split x8", [](TransportKind k) { return comm_split(k, 8, 50); }},
  };

  bench::JsonRecorder rec("micro_comm");
  std::printf("%-20s %-8s %12s %12s %12s %10s\n", "op", "transport",
              "ns/op", "MB/s", "bytes/op", "msgs/op");
  for (const Case& cs : kCases) {
    std::vector<bench::JsonRecorder::VolumeRow> rows;
    for (const TransportKind k : kinds) {
      const OpStats st = cs.run(k);
      std::printf("%-20s %-8s %12.0f %12.1f %12.0f %10.1f\n",
                  cs.name.c_str(), comm::to_string(k), st.ns_per_op,
                  st.payload_mb_s, st.bytes_per_op, st.msgs_per_op);
      rows.push_back({comm::to_string(k),
                      {{"bytes_per_op", st.bytes_per_op},
                       {"msgs_per_op", st.msgs_per_op}}});
    }
    rec.add_volume_case(cs.name, rows);
  }

  if (const char* path = bench::json_path_arg(argc, argv)) {
    rec.write(path);
  }
  return 0;
}
