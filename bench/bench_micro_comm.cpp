// Micro-benchmarks (google-benchmark) for the in-process communication
// substrate: P2P round-trips, collectives, and communicator split — the
// primitives under layer migration and distributed pruning.
#include <benchmark/benchmark.h>

#include <thread>

#include "comm/communicator.hpp"

namespace {

using namespace dynmo::comm;

void BM_PingPong(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  World world(2);
  std::vector<std::byte> payload(bytes);
  std::atomic<bool> stop{false};
  std::thread echo([&world, &stop] {
    Communicator c = world.world_comm(1);
    for (;;) {
      auto m = c.try_recv(0, 1);
      if (m) {
        c.send(0, 2, std::move(m->payload));
      } else if (stop.load()) {
        return;
      }
    }
  });
  Communicator c = world.world_comm(0);
  for (auto _ : state) {
    c.send(1, 1, payload);
    benchmark::DoNotOptimize(c.recv(1, 2));
  }
  stop.store(true);
  echo.join();
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes) *
                          state.iterations() * 2);
}
BENCHMARK(BM_PingPong)->Arg(64)->Arg(4096)->Arg(1 << 20);

void BM_Allreduce(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const std::size_t doubles = 256;
  for (auto _ : state) {
    World world(ranks);
    std::vector<std::thread> ts;
    for (int r = 0; r < ranks; ++r) {
      ts.emplace_back([&world, r] {
        Communicator c = world.world_comm(r);
        std::vector<double> mine(doubles, static_cast<double>(r));
        benchmark::DoNotOptimize(c.allreduce_sum(std::move(mine)));
      });
    }
    for (auto& t : ts) t.join();
  }
}
BENCHMARK(BM_Allreduce)->Arg(2)->Arg(4)->Arg(8);

void BM_CommSplit(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    World world(ranks);
    std::vector<std::thread> ts;
    for (int r = 0; r < ranks; ++r) {
      ts.emplace_back([&world, r, ranks] {
        Communicator c = world.world_comm(r);
        benchmark::DoNotOptimize(c.split(r < ranks / 2 ? 0 : -1, r));
      });
    }
    for (auto& t : ts) t.join();
  }
}
BENCHMARK(BM_CommSplit)->Arg(4)->Arg(8)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
