// Figure 3 (Dynamic Sparse Attention panel): LSH-bucketed block-sparse
// FlashAttention (Pagliardini et al.) on GPT models, 24-48 layers.
//
// The baseline is *dense* attention on a static placement; the sparse runs
// follow the paper's Sec. 2.4 load model (layer load = s_i(k) * c_i with
// per-layer per-iteration sparsity factors).  DynMo rebalances every
// iteration.  Paper speedups over dense: 2.71x-4.02x.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dynmo;
  bench::JsonRecorder rec("fig3_sparse_attn");
  const char* json_path = bench::json_path_arg(argc, argv);
  std::printf(
      "Figure 3 — Dynamic Sparse Attention: tokens/sec on 720 simulated "
      "H100s\nper-iteration LSH re-hash; rebalance every iteration\n");

  for (std::size_t blocks : {24u, 32u, 40u, 48u}) {
    const auto model = model::make_gpt({.num_blocks = blocks,
                                        .include_embedding = false,
                                        .include_lm_head = false});
    Options opt;
    opt.session = bench::gpt_cluster_config();
    opt.session.rebalance_interval = 1;  // routing changes every iteration
    opt.session.iterations = 2000;       // stationary: shorter window
    opt.session.sim_stride = 10;

    const auto dense = bench::run_config(
        model, UseCase::Static, opt, runtime::BalancingMode::StaticUniform,
        balance::Algorithm::Partition, balance::BalanceBy::Time);
    const auto static_sparse = bench::run_config(
        model, UseCase::SparseAttention, opt,
        runtime::BalancingMode::StaticUniform, balance::Algorithm::Partition,
        balance::BalanceBy::Time);
    const auto part = bench::run_dynmo_best(model, UseCase::SparseAttention,
                                            opt, balance::Algorithm::Partition);
    const auto diff = bench::run_dynmo_best(model, UseCase::SparseAttention,
                                            opt, balance::Algorithm::Diffusion);

    const std::vector<bench::Row> rows = {
        {"Dense attention (static)", dense},
        {"Sparse attn, static placement", static_sparse},
        {"DynMo (Partition)", part},
        {"DynMo (Diffusion)", diff}};
    const std::string title = std::to_string(blocks) + " layers";
    bench::print_table(title, rows, dense.tokens_per_sec);
    rec.add_case(title, rows, dense.tokens_per_sec);
  }
  if (json_path != nullptr) rec.write(json_path);
  return 0;
}
