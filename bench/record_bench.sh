#!/usr/bin/env bash
# Record the structured BENCH_*.json perf trajectories.
#
# Builds the JSON-capable benches (Release) and rewrites
#   bench/BENCH_topology_balance.json  (balancer sweep + grid orientations)
#   bench/BENCH_fig4_repack.json       (forced + automatic re-packing)
#   bench/BENCH_payoff_window.json     (payoff acceptance vs. cadence)
#   bench/BENCH_elastic.json           (elastic shrink/expand thresholds)
#   bench/BENCH_fleet.json             (fleet arbiter vs static equal-split)
#   bench/BENCH_trace_overhead.json    (telemetry observer-effect gate)
#   bench/BENCH_fault.json             (MTBF x checkpoint-cadence sweep)
#   bench/BENCH_micro_comm.json        (per-op comm volume, both transports)
#   bench/BENCH_scale.json             (decision-path work counters, 1k-16k)
#   bench/BENCH_fig3_<use_case>.json   (the six Figure-3 panels)
# with the current aggregates.  All bench arithmetic is deterministic
# (fixed seeds, analytic cost models) and throughputs are rounded past the
# session's measured decide-time jitter, so the recorded numbers are
# machine-independent and diffs in the JSON are real behavior changes —
# commit the files alongside the change that moved them.  See
# docs/BENCHMARKS.md for the schemas.
#
# Usage: bench/record_bench.sh [--only <name>]... [build-dir]
#   --only <name>   re-record just BENCH_<name>.json (repeatable);
#                   default records every bench below.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHES=(
  topology_balance
  fig4_repack
  payoff_window
  elastic
  fleet
  trace_overhead
  fault
  micro_comm
  scale
  fig3_early_exit
  fig3_freezing
  fig3_mod
  fig3_moe
  fig3_pruning
  fig3_sparse_attn
)

BUILD_DIR=build
ONLY=()
while [ $# -gt 0 ]; do
  case "$1" in
    --only)
      [ $# -ge 2 ] || { echo "--only needs a bench name" >&2; exit 2; }
      ONLY+=("$2")
      shift 2
      ;;
    *)
      BUILD_DIR=$1
      shift
      ;;
  esac
done
if [ ${#ONLY[@]} -gt 0 ]; then
  for o in "${ONLY[@]}"; do
    ok=0
    for b in "${BENCHES[@]}"; do [ "$b" = "$o" ] && ok=1; done
    [ $ok -eq 1 ] || { echo "unknown bench '$o' (known: ${BENCHES[*]})" >&2; exit 2; }
  done
  BENCHES=("${ONLY[@]}")
fi

cmake -B "$BUILD_DIR" -S . -DDYNMO_BUILD_BENCH=ON >/dev/null
for b in "${BENCHES[@]}"; do
  cmake --build "$BUILD_DIR" --target "bench_$b" -j >/dev/null
done
for b in "${BENCHES[@]}"; do
  "$BUILD_DIR/bench_$b" --json "bench/BENCH_$b.json"
done
