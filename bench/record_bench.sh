#!/usr/bin/env bash
# Record the structured BENCH_*.json perf trajectories.
#
# Builds the JSON-capable benches (Release) and rewrites
#   bench/BENCH_topology_balance.json  (balancer sweep + grid orientations)
#   bench/BENCH_fig4_repack.json       (forced + automatic re-packing)
# with the current aggregates.  All bench arithmetic is deterministic
# (fixed seeds, analytic cost models), so the recorded numbers are
# machine-independent and diffs in the JSON are real behavior changes —
# commit the files alongside the change that moved them.
#
# Usage: bench/record_bench.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD_DIR=${1:-build}

cmake -B "$BUILD_DIR" -S . -DDYNMO_BUILD_BENCH=ON >/dev/null
cmake --build "$BUILD_DIR" --target bench_topology_balance \
  --target bench_fig4_repack -j >/dev/null
"$BUILD_DIR/bench_topology_balance" --json bench/BENCH_topology_balance.json
"$BUILD_DIR/bench_fig4_repack" --json bench/BENCH_fig4_repack.json
