#!/usr/bin/env bash
# Record the bench_topology_balance perf trajectory.
#
# Builds the bench (Release) and rewrites bench/BENCH_topology_balance.json
# with the current mean ± stddev aggregates over the seed sweep.  All bench
# arithmetic is deterministic (fixed seeds, analytic cost models), so the
# recorded numbers are machine-independent and diffs in the JSON are real
# behavior changes — commit the file alongside the change that moved it.
#
# Usage: bench/record_bench.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD_DIR=${1:-build}

cmake -B "$BUILD_DIR" -S . -DDYNMO_BUILD_BENCH=ON >/dev/null
cmake --build "$BUILD_DIR" --target bench_topology_balance -j >/dev/null
"$BUILD_DIR/bench_topology_balance" --json bench/BENCH_topology_balance.json
