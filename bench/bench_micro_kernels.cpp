// Micro-benchmarks (google-benchmark) for the real compute kernels: dense
// matmul, CSR SpMM at several densities, top-k selection, and CSR
// compression — the building blocks of the threaded runtime and the
// distributed pruning path.
#include <benchmark/benchmark.h>

#include "core/rng.hpp"
#include "tensor/csr.hpp"
#include "tensor/tensor.hpp"

namespace {

using dynmo::Rng;
using dynmo::tensor::CsrMatrix;
using dynmo::tensor::Tensor;

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const Tensor a = Tensor::random(n, n, rng);
  const Tensor b = Tensor::random(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dynmo::tensor::matmul(a, b));
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * static_cast<double>(n) * n * n * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256);

void BM_SpmmByDensity(benchmark::State& state) {
  const std::size_t n = 256;
  const double keep_prob = static_cast<double>(state.range(0)) / 100.0;
  Rng rng(2);
  Tensor w = Tensor::random(n, n, rng);
  // Zero out (1-keep_prob) of entries.
  for (float& v : w.data()) {
    if (rng.uniform() > keep_prob) v = 0.0f;
  }
  const CsrMatrix csr = CsrMatrix::from_dense(w, 1e-12f);
  const Tensor x = Tensor::random(64, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(csr.spmm_left(x));
  }
  state.counters["density"] = csr.density();
}
BENCHMARK(BM_SpmmByDensity)->Arg(100)->Arg(50)->Arg(25)->Arg(10)->Arg(1);

void BM_TopK(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  std::vector<float> xs(n);
  for (auto& v : xs) v = static_cast<float>(rng.normal());
  for (auto _ : state) {
    benchmark::DoNotOptimize(dynmo::tensor::topk_abs_indices(xs, n / 10));
  }
}
BENCHMARK(BM_TopK)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_CsrCompress(benchmark::State& state) {
  const std::size_t n = 512;
  Rng rng(4);
  const Tensor w = Tensor::random(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CsrMatrix::from_dense(w, 1.0f));
  }
}
BENCHMARK(BM_CsrCompress);

}  // namespace

BENCHMARK_MAIN();
