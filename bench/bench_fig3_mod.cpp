// Figure 3 (Mixture of Depths panel): MoD GPT models (expert-choice block
// routing with an auxiliary MLP predictor), 24-48 layers.
//
// Baselines: static Megatron-LM and static DeepSpeed placements of the
// same MoD model.  DynMo rebalances every iteration during backprop.
// Paper speedups: 1.16x-1.17x (the ~18% routing imbalance drops to ~4%).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dynmo;
  bench::JsonRecorder rec("fig3_mod");
  const char* json_path = bench::json_path_arg(argc, argv);
  std::printf(
      "Figure 3 — Mixture of Depths: tokens/sec on 720 simulated H100s\n"
      "capacity 0.5, routed every other block; rebalance every iteration\n");

  for (std::size_t blocks : {24u, 32u, 40u, 48u}) {
    const auto model = model::make_gpt({.num_blocks = blocks,
                                        .include_embedding = false,
                                        .include_lm_head = false});
    Options opt;
    opt.session = bench::gpt_cluster_config_deep_stages();
    opt.session.rebalance_interval = 1;
    opt.session.iterations = 2000;  // stationary routing statistics
    opt.session.sim_stride = 10;

    const auto megatron = bench::run_config(
        model, UseCase::MixtureOfDepths, opt,
        runtime::BalancingMode::StaticUniform, balance::Algorithm::Partition,
        balance::BalanceBy::Time);
    const auto deepspeed = bench::run_config(
        model, UseCase::MixtureOfDepths, opt,
        runtime::BalancingMode::StaticParam, balance::Algorithm::Partition,
        balance::BalanceBy::Time);
    const auto part = bench::run_dynmo_best(model, UseCase::MixtureOfDepths,
                                            opt, balance::Algorithm::Partition);
    const auto diff = bench::run_dynmo_best(model, UseCase::MixtureOfDepths,
                                            opt, balance::Algorithm::Diffusion);

    const double best_static =
        std::max(megatron.tokens_per_sec, deepspeed.tokens_per_sec);
    const std::vector<bench::Row> rows = {{"Static (Megatron-LM)", megatron},
                                          {"Static (DeepSpeed)", deepspeed},
                                          {"DynMo (Partition)", part},
                                          {"DynMo (Diffusion)", diff}};
    const std::string title = std::to_string(blocks) + " layers";
    bench::print_table(title, rows, best_static);
    rec.add_case(title, rows, best_static);
  }
  if (json_path != nullptr) rec.write(json_path);
  return 0;
}
