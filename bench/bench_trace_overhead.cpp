// Telemetry observer-effect check on the Figure-3 MoE scenario: running
// with SessionConfig::telemetry enabled must (a) leave the modeled results
// — every decision, every byte, every map — identical to the disabled run,
// and (b) add less than 5% recording wall-clock on top of the simulation.
//
// Both claims are enforced by the exit code, so CI and record_bench.sh are
// gates, not just reports.  The committed BENCH_trace_overhead.json keeps
// only machine-independent fields: the modeled throughputs (identical on
// vs off by construction), the deterministic trace row counts, and the two
// pass/fail verdicts — the measured overhead percentage itself is printed
// but not recorded (docs/BENCHMARKS.md: wall-clock stays out of committed
// trajectories).
//
// `--smoke` shortens the simulated window for CI; `--json PATH` records
// the result; `--trace-dir DIR` keeps the telemetry-on trace around for
// inspection (default: a throwaway under /tmp).
#include <chrono>
#include <cstring>

#include "bench_common.hpp"
#include "telemetry/trace_reader.hpp"

namespace {

double run_timed(const dynmo::model::ModelDesc& model, dynmo::Options opt,
                 dynmo::runtime::SessionResult* out) {
  const auto t0 = std::chrono::steady_clock::now();
  dynmo::Session session(model, dynmo::UseCase::Moe, opt);
  *out = session.run();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dynmo;
  bool smoke = false;
  const char* json_path = bench::json_path_arg(argc, argv);
  const char* trace_dir = bench::trace_dir_arg(argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::string dir =
      trace_dir != nullptr ? trace_dir : "/tmp/dynmo_bench_trace_overhead";

  // The fig3 MoE panel's LLaMA-MoE arm: every-iteration Diffusion on the
  // 128-GPU cluster — the heaviest per-iteration telemetry cadence the
  // paper scenarios produce (one decision row + 8 stage rows per frame).
  const auto model =
      model::make_moe(model::llama_moe_3_5b_config(), "llama-moe-3.5b");
  Options opt;
  opt.session = bench::moe_cluster_config();
  opt.session.mode = runtime::BalancingMode::DynMo;
  opt.session.algorithm = balance::Algorithm::Diffusion;
  opt.session.balance_by = balance::BalanceBy::Time;
  opt.session.rebalance_interval = 1;
  opt.moe.routing = dynamic::MoeRouting::SBase;
  opt.moe.tokens_per_microbatch = 1024;
  if (smoke) {
    opt.session.iterations = 200;
    opt.moe.tokens_per_microbatch = 512;
  }

  std::printf("Telemetry overhead on the fig3 MoE scenario (%lld iters, "
              "stride %lld, every-iteration Diffusion)%s\n\n",
              static_cast<long long>(opt.session.iterations),
              static_cast<long long>(opt.session.sim_stride),
              smoke ? " (smoke)" : "");

  // Min-of-N wall clock per arm: the simulation dominates, the min strips
  // scheduler noise.
  const int reps = smoke ? 2 : 3;
  runtime::SessionResult off{}, on{};
  double wall_off = 1e300, wall_on = 1e300;
  for (int r = 0; r < reps; ++r) {
    auto o = opt;
    wall_off = std::min(wall_off, run_timed(model, o, &off));
    o.session.telemetry.dir = dir;
    wall_on = std::min(wall_on, run_timed(model, o, &on));
  }

  // (a) Pure observation: the modeled ledger is identical either way.
  //     (Time totals carry the *measured* decide wall-clock and jitter
  //     between any two runs, telemetry or not — the deterministic
  //     decision/traffic fields are the equality surface.)
  const bool identical =
      off.rebalance_count == on.rebalance_count &&
      off.maps_accepted == on.maps_accepted &&
      off.maps_rejected_payoff == on.maps_rejected_payoff &&
      off.intra_node_migration_bytes == on.intra_node_migration_bytes &&
      off.inter_node_migration_bytes == on.inter_node_migration_bytes &&
      off.migration_bytes_avoided == on.migration_bytes_avoided &&
      off.final_map.boundaries() == on.final_map.boundaries();

  // (b) Recording cost: the telemetry-on run's extra wall-clock.
  const double overhead = wall_on / wall_off - 1.0;
  const bool under_5pct = overhead < 0.05;

  telemetry::TraceReader reader(dir);
  std::int64_t trace_rows = 0;
  for (const auto& t : reader.catalog().tables) trace_rows += t.rows;

  std::printf("%-16s %12s %14s\n", "configuration", "tokens/s", "wall [s]");
  std::printf("%-16s %12.0f %14.3f\n", "telemetry off", off.tokens_per_sec,
              wall_off);
  std::printf("%-16s %12.0f %14.3f\n", "telemetry on", on.tokens_per_sec,
              wall_on);
  std::printf("\nmodeled results identical: %s\n", identical ? "yes" : "NO");
  std::printf("trace rows written:        %lld\n",
              static_cast<long long>(trace_rows));
  std::printf("recording overhead:        %+.2f%% (budget 5%%) -> %s\n",
              100.0 * overhead, under_5pct ? "ok" : "OVER BUDGET");

  bench::JsonRecorder rec("trace_overhead");
  const std::vector<bench::Row> rows = {
      {"telemetry off", off},
      {"telemetry on", on,
       {{"trace_rows", static_cast<double>(trace_rows)},
        {"results_identical", identical ? 1.0 : 0.0},
        {"overhead_under_5pct", under_5pct ? 1.0 : 0.0}}},
  };
  rec.add_case("fig3 MoE (LLaMA-MoE-3.5B, S-BASE cadence 1)", rows,
               off.tokens_per_sec);
  if (json_path != nullptr) rec.write(json_path);

  return identical && under_5pct ? 0 : 1;
}
