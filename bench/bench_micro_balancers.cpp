// Micro-benchmarks (google-benchmark) for the balancing algorithms — the
// "decide" component of DynMo's overhead table.  Both balancers must stay
// in the microsecond range even at hundreds of layers, which is what makes
// every-iteration rebalancing viable.
#include <benchmark/benchmark.h>

#include "balance/diffusion.hpp"
#include "balance/migration.hpp"
#include "balance/partition.hpp"
#include "core/rng.hpp"

namespace {

using namespace dynmo;

std::vector<double> weights(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> w(n);
  for (auto& v : w) v = rng.lognormal(0.0, 0.8);
  return w;
}

void BM_PartitionBalance(benchmark::State& state) {
  const auto layers = static_cast<std::size_t>(state.range(0));
  const int stages = static_cast<int>(state.range(1));
  balance::PartitionRequest req;
  req.weights = weights(layers, 7);
  req.num_stages = stages;
  for (auto _ : state) {
    benchmark::DoNotOptimize(balance::PartitionBalancer{}.balance(req));
  }
}
BENCHMARK(BM_PartitionBalance)
    ->Args({32, 8})
    ->Args({64, 16})
    ->Args({128, 24})
    ->Args({512, 96});

void BM_DiffusionBalance(benchmark::State& state) {
  const auto layers = static_cast<std::size_t>(state.range(0));
  const int stages = static_cast<int>(state.range(1));
  balance::DiffusionRequest req;
  req.weights = weights(layers, 8);
  const auto start = pipeline::StageMap::uniform(layers, stages);
  for (auto _ : state) {
    benchmark::DoNotOptimize(balance::DiffusionBalancer{}.balance(req, start));
  }
}
BENCHMARK(BM_DiffusionBalance)
    ->Args({32, 8})
    ->Args({64, 16})
    ->Args({128, 24});

void BM_MigrationPlanning(benchmark::State& state) {
  const auto layers = static_cast<std::size_t>(state.range(0));
  const auto w = weights(layers, 9);
  std::vector<double> mem(layers, 1e9);
  const auto before = pipeline::StageMap::uniform(layers, 8);
  balance::PartitionRequest req;
  req.weights = w;
  req.num_stages = 8;
  const auto after = balance::PartitionBalancer{}.balance(req).map;
  for (auto _ : state) {
    benchmark::DoNotOptimize(balance::plan_migration(before, after, mem));
  }
}
BENCHMARK(BM_MigrationPlanning)->Arg(48)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
