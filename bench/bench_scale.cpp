// Decision-path scaling sweep (ROADMAP "scale the decision path to 10k+
// ranks"; docs/COST_MODEL.md "Incremental recomputation").
//
// Sweeps synthetic grid deployments from 1k to 16k ranks (one stage per
// rank, heterogeneous capacity stripes, a flat two-tier cost model — the
// all-pairs Topology snapshot would itself be O(R^2) and is exactly what
// the incremental path avoids needing) and drives the CostSurface decision
// loop directly: per decision, a profile perturbation touching a few
// layers (sync), a candidate map jiggling a few boundaries (evaluate +
// exposed-cost pricing), then commit or rollback.  Candidate *generation*
// (the diffusion/partition algorithm run) is deliberately outside the
// loop: its cost is the balancer's own and is swept elsewhere
// (bench_micro_balancers); this bench isolates the decision-point math the
// incremental surfaces replaced — per-stage re-summing, bottleneck
// rescans, full-grid migration diffs.
//
// Exit-code gates (the scaling claim, enforced):
//   * sub-millisecond mean per-decision latency at 16k ranks;
//   * near-linear memory: cached-surface bytes grow at most 1.5x faster
//     than the rank count across the sweep.
// Every 64th decision is also cross-checked against the full-rescan twins
// (evaluate_full_rescan, bottleneck_*_full_rescan) with exact equality —
// the bench aborts on the first diverging bit (exit 3).
//
// `--smoke` shrinks the sweep for sanitizer CI runs and skips the
// *latency* gate (ASan/UBSan inflate wall clock several-fold); equality
// checks and the memory gate still run.  `--json PATH` records the
// deterministic work counters (touched stages, plan sizes, memory bytes)
// via bench::JsonRecorder — measured latencies stay in the printed table
// and out of the committed BENCH_scale.json (docs/BENCHMARKS.md).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <random>
#include <vector>

#include "balance/incremental.hpp"
#include "bench_common.hpp"

namespace {

using namespace dynmo;
using Clock = std::chrono::steady_clock;

struct SweepResult {
  int stages = 0;
  std::size_t layers = 0;
  int decisions = 0;
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double full_rescan_mean_us = 0.0;  ///< reference-twin cost, for contrast
  double avg_touched_stages = 0.0;
  double total_plan_transfers = 0.0;
  std::size_t memory_bytes = 0;
};

pipeline::StageMap jiggle(std::mt19937_64& rng,
                          const pipeline::StageMap& map) {
  std::vector<std::size_t> b = map.boundaries();
  const int moves = 1 + static_cast<int>(rng() % 3);
  for (int m = 0; m < moves; ++m) {
    const std::size_t i = 1 + rng() % (b.size() - 2);
    const std::size_t lo = b[i - 1];
    const std::size_t hi = b[i + 1];
    b[i] = lo + rng() % (hi - lo + 1);
  }
  return pipeline::StageMap::from_boundaries(std::move(b));
}

SweepResult run_size(int stages, int decisions) {
  SweepResult out;
  out.stages = stages;
  out.decisions = decisions;
  out.layers = static_cast<std::size_t>(stages) * 2;  // 2 layers per rank

  // Synthetic heterogeneous grid: every 8th rank is a degraded-capacity
  // stripe, like a fleet with one slow GPU per node.
  std::vector<double> caps(static_cast<std::size_t>(stages), 1.0);
  for (std::size_t s = 0; s < caps.size(); s += 8) caps[s] = 0.75;
  std::vector<int> stage_to_rank(static_cast<std::size_t>(stages));
  for (int s = 0; s < stages; ++s) {
    stage_to_rank[static_cast<std::size_t>(s)] = s;
  }
  const comm::CostModel net{};  // flat two-tier rule: O(1) per transfer

  std::mt19937_64 rng(0x5ca1e + static_cast<std::uint64_t>(stages));
  std::vector<double> w(out.layers), t(out.layers), m(out.layers);
  for (std::size_t l = 0; l < out.layers; ++l) {
    w[l] = 0.5 + static_cast<double>(rng() % 100) * 0.01;
    t[l] = w[l] * 1e-3;
    m[l] = static_cast<double>(16 + rng() % 48) * 1e6;
  }
  pipeline::StageMap cur =
      pipeline::StageMap::uniform(out.layers, stages);
  balance::CostSurface surf;
  surf.reset(cur, w, t, m, caps);
  out.memory_bytes = surf.memory_bytes();

  std::vector<double> lat_us;
  lat_us.reserve(static_cast<std::size_t>(decisions));
  double rescan_us_sum = 0.0;
  int rescan_samples = 0;
  std::size_t touched_total = 0;

  for (int d = 0; d < decisions; ++d) {
    // Perturb a few layers (what a dynamism step changes between
    // decisions), pre-drawn so the timed region is only decision work.
    const int n = 1 + static_cast<int>(rng() % 4);
    std::vector<std::size_t> touched_layers;
    for (int i = 0; i < n; ++i) {
      const std::size_t l = rng() % out.layers;
      w[l] = 0.5 + static_cast<double>(rng() % 100) * 0.01;
      t[l] = w[l] * 1e-3;
      touched_layers.push_back(l);
    }
    const pipeline::StageMap cand = jiggle(rng, cur);
    const bool adopt = rng() % 2 == 0;

    const auto t0 = Clock::now();
    touched_total += surf.sync(cur, w, t, m, caps);
    balance::SurfaceEval ev = surf.evaluate(cand);
    touched_total += ev.touched_stages;
    // The acceptance math the Rebalancer runs per decision: bottleneck
    // hysteresis plus payoff pricing of the plan.
    const bool worse = !ev.plan.empty() &&
                       ev.norm_w_after > ev.norm_w_before * (1.0 - 0.02);
    const auto cost = ev.plan.exposed_cost(net, stage_to_rank);
    const bool accept = adopt && !worse && cost.time_s < 1.0;
    if (accept) {
      surf.commit();
      cur = cand;
    } else {
      surf.rollback();
    }
    const auto t1 = Clock::now();
    lat_us.push_back(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
    out.total_plan_transfers += static_cast<double>(ev.plan.transfers.size());

    if (d % 64 == 0) {
      // Exact-equality cross-check against the reference twins, and a
      // timed full rescan for the printed contrast column.
      const auto r0 = Clock::now();
      const balance::SurfaceEval ref = surf.evaluate_full_rescan(cur);
      const auto r1 = Clock::now();
      rescan_us_sum +=
          std::chrono::duration<double, std::micro>(r1 - r0).count();
      ++rescan_samples;
      (void)ref;
      if (surf.bottleneck_w() != surf.bottleneck_w_full_rescan() ||
          surf.bottleneck_t() != surf.bottleneck_t_full_rescan()) {
        std::fprintf(stderr,
                     "FATAL: incremental bottleneck diverged from full "
                     "rescan at %d stages, decision %d\n",
                     stages, d);
        std::exit(3);
      }
    }
  }

  out.avg_touched_stages =
      static_cast<double>(touched_total) / static_cast<double>(decisions);
  std::vector<double> sorted = lat_us;
  std::sort(sorted.begin(), sorted.end());
  double sum = 0.0;
  for (double v : sorted) sum += v;
  out.mean_us = sum / static_cast<double>(sorted.size());
  out.p50_us = sorted[sorted.size() / 2];
  out.p99_us = sorted[(sorted.size() * 99) / 100];
  out.full_rescan_mean_us =
      rescan_samples > 0 ? rescan_us_sum / rescan_samples : 0.0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const char* json = bench::json_path_arg(argc, argv);

  const std::vector<int> sizes =
      smoke ? std::vector<int>{1024, 4096}
            : std::vector<int>{1024, 2048, 4096, 8192, 16384};
  const int decisions = smoke ? 200 : 2000;

  std::printf("== decision-path scaling: 1k -> 16k ranks ==\n");
  std::printf("%8s %8s %10s %10s %10s %12s %12s %14s %12s\n", "ranks",
              "layers", "mean_us", "p50_us", "p99_us", "rescan_us",
              "touched/dec", "plan_transfers", "mem_bytes");
  std::vector<SweepResult> results;
  for (const int s : sizes) {
    results.push_back(run_size(s, decisions));
    const auto& r = results.back();
    std::printf("%8d %8zu %10.2f %10.2f %10.2f %12.2f %12.2f %14.0f %12zu\n",
                r.stages, r.layers, r.mean_us, r.p50_us, r.p99_us,
                r.full_rescan_mean_us, r.avg_touched_stages,
                r.total_plan_transfers, r.memory_bytes);
  }

  if (json != nullptr) {
    bench::JsonRecorder rec("scale");
    std::vector<bench::JsonRecorder::VolumeRow> rows;
    for (const auto& r : results) {
      rows.push_back(
          {std::to_string(r.stages) + " ranks",
           {{"ranks", static_cast<double>(r.stages)},
            {"layers", static_cast<double>(r.layers)},
            {"decisions", static_cast<double>(r.decisions)},
            {"avg_touched_stages", r.avg_touched_stages},
            {"plan_transfers", r.total_plan_transfers},
            {"memory_bytes", static_cast<double>(r.memory_bytes)}}});
    }
    rec.add_volume_case("decision-path scaling sweep", rows);
    rec.write(json);
  }

  int fail = 0;
  // Near-linear memory: bytes may grow at most 1.5x faster than ranks.
  const auto& lo = results.front();
  const auto& hi = results.back();
  const double mem_ratio = static_cast<double>(hi.memory_bytes) /
                           static_cast<double>(lo.memory_bytes);
  const double rank_ratio =
      static_cast<double>(hi.stages) / static_cast<double>(lo.stages);
  if (mem_ratio > 1.5 * rank_ratio) {
    std::fprintf(stderr,
                 "GATE FAIL: memory grew %.2fx over a %.0fx rank sweep "
                 "(super-linear)\n",
                 mem_ratio, rank_ratio);
    fail = 1;
  }
  if (!smoke) {
    // The scaling claim: sub-millisecond decisions at the largest size.
    if (hi.stages >= 16384 && hi.mean_us >= 1000.0) {
      std::fprintf(stderr,
                   "GATE FAIL: mean per-decision latency %.1f us at %d "
                   "ranks (>= 1 ms)\n",
                   hi.mean_us, hi.stages);
      fail = 1;
    }
  } else {
    std::printf("(--smoke: latency gate skipped; equality and memory "
                "gates enforced)\n");
  }
  if (fail == 0) {
    std::printf("scaling gates: OK (%s)\n",
                smoke ? "smoke sweep" : "full sweep to 16384 ranks");
  }
  return fail;
}
