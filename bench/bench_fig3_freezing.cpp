// Figure 3 (Layer Freezing panel): Egeria-style layer freezing on GPT
// models, 24-48 layers.  The baseline is Egeria itself (freezing but no
// load balancing, plus its reference-model bookkeeping that grows with
// depth); DynMo adds dynamic rebalancing every freeze-check interval.
// Paper speedups over Egeria: 1.36x-1.69x, growing with layer count.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dynmo;
  bench::JsonRecorder rec("fig3_freezing");
  const char* json_path = bench::json_path_arg(argc, argv);
  std::printf(
      "Figure 3 — Layer Freezing: tokens/sec on 720 simulated H100s\n"
      "freeze checks every 300 iterations, front-biased convergence\n");

  for (std::size_t blocks : {24u, 32u, 40u, 48u}) {
    const auto model = model::make_gpt({.num_blocks = blocks,
                                        .include_embedding = false,
                                        .include_lm_head = false});
    Options opt;
    opt.session = bench::gpt_cluster_config_deep_stages();
    opt.session.rebalance_interval = 300;
    opt.freezing.check_interval = 300;
    // Freezing front sweeps most of the model within the 10k-iteration
    // window (continual-training regime).
    opt.freezing.first_layer_converge_iter = 1000;
    opt.freezing.last_layer_converge_iter = 12000;

    const auto egeria = bench::run_config(
        model, UseCase::LayerFreezing, opt, runtime::BalancingMode::Egeria,
        balance::Algorithm::Partition, balance::BalanceBy::Time);
    const auto part = bench::run_dynmo_best(model, UseCase::LayerFreezing,
                                            opt, balance::Algorithm::Partition);
    const auto diff = bench::run_dynmo_best(model, UseCase::LayerFreezing,
                                            opt, balance::Algorithm::Diffusion);
    const auto part_rp =
        bench::run_dynmo_best(model, UseCase::LayerFreezing, opt,
                              balance::Algorithm::Partition, true);
    const auto diff_rp =
        bench::run_dynmo_best(model, UseCase::LayerFreezing, opt,
                              balance::Algorithm::Diffusion, true);

    const std::vector<bench::Row> rows = {
        {"Egeria (no balancing)", egeria},
        {"DynMo (Partition) w/o re-packing", part},
        {"DynMo (Diffusion) w/o re-packing", diff},
        {"DynMo (Partition) + re-packing", part_rp},
        {"DynMo (Diffusion) + re-packing", diff_rp}};
    const std::string title = std::to_string(blocks) + " layers";
    bench::print_table(title, rows, egeria.tokens_per_sec);
    rec.add_case(title, rows, egeria.tokens_per_sec);
  }
  if (json_path != nullptr) rec.write(json_path);
  return 0;
}
