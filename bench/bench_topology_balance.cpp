// Flat vs. hierarchical diffusion on multi-node deployments.
//
// Sweeps 2–16 simulated DGX-H100 nodes under three skew patterns and
// compares balance::DiffusionBalancer (topology-blind) against
// cluster::HierarchicalBalancer (intra-node first, inter-node only when
// the node totals are out of balance), both consuming the same
// cluster::Deployment.  Every scenario runs `kSeeds` RNG seeds and reports
// mean ± stddev of:
//   inter-node migration bytes (the expensive InfiniBand traffic),
//   migration wall-clock under deployment pricing, and the bottleneck
//   ratio max/mean (what gates pipeline throughput).
// The hierarchical balancer should issue strictly fewer inter-node bytes
// at an equal-or-better bottleneck.
//
// `--json PATH` additionally writes the aggregates as a BENCH_*.json perf
// trajectory (see bench/record_bench.sh); all arithmetic is deterministic,
// so the recorded numbers are machine-independent.
#include <cinttypes>
#include <cstring>
#include <numeric>
#include <string>

#include "balance/diffusion.hpp"
#include "balance/migration.hpp"
#include "cluster/deployment.hpp"
#include "cluster/hier_balancer.hpp"
#include "cluster/topology.hpp"
#include "core/rng.hpp"
#include "core/stats.hpp"
#include "core/units.hpp"
#include "pipeline/stage_map.hpp"

namespace {

using namespace dynmo;

constexpr int kSeeds = 12;

std::vector<double> make_weights(const char* skew, std::size_t layers,
                                 std::size_t layers_per_node, Rng& rng) {
  std::vector<double> w(layers);
  for (std::size_t l = 0; l < layers; ++l) {
    const auto i = static_cast<double>(l % layers_per_node);
    const double jitter = rng.uniform(0.9, 1.1);
    if (skew[0] == 'i') {  // intra: heavy front inside every node
      w[l] = jitter * (0.4 + 2.5 * std::exp(-0.3 * i));
    } else if (skew[0] == 'n') {  // node: whole first half heavy
      w[l] = jitter * (l < layers / 2 ? 2.0 : 0.6);
    } else {  // mixed: global decay (both levels imbalanced)
      w[l] = jitter *
             (0.3 + 3.0 * std::exp(-2.0 * static_cast<double>(l) /
                                   static_cast<double>(layers)));
    }
  }
  return w;
}

struct SeedStats {
  RunningStats inter_bytes;
  RunningStats migrate_s;
  RunningStats bottleneck;  ///< max/mean — what gates pipeline throughput
};

struct Scenario {
  int nodes = 0;
  const char* skew = "";
  SeedStats flat;
  SeedStats hier;
  int hier_bottleneck_wins = 0;  ///< seeds with hier bn <= flat bn
  int hier_strict_wins = 0;      ///< ... and strictly fewer inter bytes
};

/// DP×PP grid orientation sweep: the per-iteration gradient-allreduce
/// price each orientation pays on the same cluster (deterministic, no
/// seeds — the formulas are analytic).
struct GridScenario {
  int nodes = 0;
  int dp = 0;
  int pp = 0;
  double dp_inner_allreduce_s = 0.0;  ///< slowest stage group
  double pp_inner_allreduce_s = 0.0;
  double dp_inner_inter_bytes = 0.0;  ///< wire bytes over the fabric, all stages
  double pp_inner_inter_bytes = 0.0;
  double dp_inner_boundary_s = 0.0;   ///< summed pipeline boundary time
  double pp_inner_boundary_s = 0.0;
};

GridScenario run_grid_scenario(int nodes, int dp) {
  constexpr std::size_t kGradBytes = 256u << 20;  // per-stage gradients
  GridScenario row;
  row.nodes = nodes;
  row.dp = dp;
  row.pp = nodes * 8 / dp;
  for (const auto orientation : {cluster::GridOrientation::DpInner,
                                 cluster::GridOrientation::PpInner}) {
    const auto placement = cluster::place_grid(
        cluster::Topology::make_dgx_h100(nodes), dp, row.pp, orientation);
    const auto dep = cluster::Deployment::make_grid(
        cluster::Topology::make_dgx_h100(nodes), dp, placement.grid_to_rank);
    const auto net = dep.make_cost_model();
    double worst_s = 0.0;
    double inter = 0.0;
    for (int s = 0; s < row.pp; ++s) {
      const auto g = dep.dp_group(s);
      worst_s = std::max(worst_s, net.allreduce_time(g, kGradBytes));
      inter += comm::allreduce_bytes(g, kGradBytes).inter_node;
    }
    if (orientation == cluster::GridOrientation::DpInner) {
      row.dp_inner_allreduce_s = worst_s;
      row.dp_inner_inter_bytes = inter;
      row.dp_inner_boundary_s = placement.boundary_time_s;
    } else {
      row.pp_inner_allreduce_s = worst_s;
      row.pp_inner_inter_bytes = inter;
      row.pp_inner_boundary_s = placement.boundary_time_s;
    }
  }
  return row;
}

void write_json(const char* path, const std::vector<Scenario>& rows,
                const std::vector<GridScenario>& grid_rows,
                int bottleneck_wins, int strict_wins, int comparisons) {
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    std::exit(2);
  }
  std::fprintf(f, "{\n  \"bench\": \"topology_balance\",\n");
  std::fprintf(f, "  \"seeds_per_scenario\": %d,\n", kSeeds);
  std::fprintf(f, "  \"scenarios\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Scenario& r = rows[i];
    std::fprintf(
        f,
        "    {\"nodes\": %d, \"skew\": \"%s\",\n"
        "     \"flat_inter_bytes_mean\": %.6g, \"flat_inter_bytes_std\": "
        "%.6g,\n"
        "     \"hier_inter_bytes_mean\": %.6g, \"hier_inter_bytes_std\": "
        "%.6g,\n"
        "     \"flat_bottleneck_mean\": %.6g, \"flat_bottleneck_std\": "
        "%.6g,\n"
        "     \"hier_bottleneck_mean\": %.6g, \"hier_bottleneck_std\": "
        "%.6g,\n"
        "     \"flat_migrate_s_mean\": %.6g, \"hier_migrate_s_mean\": "
        "%.6g,\n"
        "     \"hier_bottleneck_wins\": %d, \"hier_strict_wins\": %d}%s\n",
        r.nodes, r.skew, r.flat.inter_bytes.mean(),
        r.flat.inter_bytes.stddev(), r.hier.inter_bytes.mean(),
        r.hier.inter_bytes.stddev(), r.flat.bottleneck.mean(),
        r.flat.bottleneck.stddev(), r.hier.bottleneck.mean(),
        r.hier.bottleneck.stddev(), r.flat.migrate_s.mean(),
        r.hier.migrate_s.mean(), r.hier_bottleneck_wins, r.hier_strict_wins,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"grid_scenarios\": [\n");
  for (std::size_t i = 0; i < grid_rows.size(); ++i) {
    const GridScenario& r = grid_rows[i];
    std::fprintf(
        f,
        "    {\"nodes\": %d, \"dp\": %d, \"pp\": %d,\n"
        "     \"dp_inner_allreduce_s\": %.6g, \"pp_inner_allreduce_s\": "
        "%.6g,\n"
        "     \"dp_inner_inter_bytes\": %.6g, \"pp_inner_inter_bytes\": "
        "%.6g,\n"
        "     \"dp_inner_boundary_s\": %.6g, \"pp_inner_boundary_s\": "
        "%.6g}%s\n",
        r.nodes, r.dp, r.pp, r.dp_inner_allreduce_s, r.pp_inner_allreduce_s,
        r.dp_inner_inter_bytes, r.pp_inner_inter_bytes,
        r.dp_inner_boundary_s, r.pp_inner_boundary_s,
        i + 1 < grid_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"summary\": {\"comparisons\": %d, "
               "\"hier_bottleneck_wins\": %d, \"hier_strict_wins\": %d}\n}\n",
               comparisons, bottleneck_wins, strict_wins);
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  std::printf("Flat vs hierarchical diffusion on n x DGX-H100 (8 GPU/node)\n");
  std::printf(
      "layer state: 1 GiB/layer; migration priced by deployment; "
      "%d seeds/scenario (mean +- std)\n\n",
      kSeeds);
  std::printf("%6s %6s %7s | %22s %14s | %22s %14s | %s\n", "nodes",
              "stages", "skew", "flat inter", "flat bn", "hier inter",
              "hier bn", "inter saved");

  std::vector<Scenario> rows;
  int bottleneck_wins = 0;  // hier bottleneck <= flat (per seed)
  int strict_wins = 0;      // ... and strictly fewer inter bytes
  int comparisons = 0;

  for (int nodes : {2, 4, 8, 16}) {
    const auto dep = cluster::Deployment::make_topology_aware(
        cluster::Topology::make_dgx_h100(nodes),
        /*num_stages=*/nodes * 8);
    const auto net = dep.make_cost_model();
    const int stages = dep.num_stages();
    const std::size_t layers = static_cast<std::size_t>(stages) * 6;

    for (const char* skew : {"intra", "node", "mixed"}) {
      Scenario row;
      row.nodes = nodes;
      row.skew = skew;

      for (int seed = 0; seed < kSeeds; ++seed) {
        Rng rng(hash_mix(0x70b0, static_cast<std::uint64_t>(seed) * 977 +
                                     static_cast<std::uint64_t>(nodes)));
        const auto w = make_weights(
            skew, layers, layers / static_cast<std::size_t>(nodes), rng);
        std::vector<double> state_bytes(layers, 1.0 * GiB);
        const auto start = pipeline::StageMap::uniform(layers, stages);

        balance::DiffusionRequest req;
        req.weights = w;

        const auto eval = [&](const pipeline::StageMap& result,
                              SeedStats& into) {
          const auto plan =
              balance::plan_migration(start, result, state_bytes);
          const auto split = cluster::classify_migration(
              plan, dep.topology(), dep.stage_to_rank());
          into.inter_bytes.add(split.inter_node_bytes);
          into.migrate_s.add(
              plan.estimated_time_s(net, dep.stage_to_rank()));
          into.bottleneck.add(max_over_mean(result.stage_loads(w)));
          return std::pair{split.inter_node_bytes,
                           max_over_mean(result.stage_loads(w))};
        };

        const auto [flat_inter, flat_bn] = eval(
            balance::DiffusionBalancer{}.balance(req, start).map, row.flat);
        const auto [hier_inter, hier_bn] =
            eval(cluster::HierarchicalBalancer(dep.topology())
                     .balance(req, start, dep.stage_to_rank())
                     .map,
                 row.hier);

        ++comparisons;
        if (hier_bn <= flat_bn + 1e-9) {
          ++row.hier_bottleneck_wins;
          ++bottleneck_wins;
          if (hier_inter < flat_inter) {
            ++row.hier_strict_wins;
            ++strict_wins;
          }
        }
      }

      std::printf(
          "%6d %6d %7s | %10s +- %-8s %6.3f +- %5.3f | %10s +- %-8s "
          "%6.3f +- %5.3f | %s\n",
          nodes, stages, skew, format_bytes(row.flat.inter_bytes.mean()).c_str(),
          format_bytes(row.flat.inter_bytes.stddev()).c_str(),
          row.flat.bottleneck.mean(), row.flat.bottleneck.stddev(),
          format_bytes(row.hier.inter_bytes.mean()).c_str(),
          format_bytes(row.hier.inter_bytes.stddev()).c_str(),
          row.hier.bottleneck.mean(), row.hier.bottleneck.stddev(),
          format_bytes(row.flat.inter_bytes.mean() -
                       row.hier.inter_bytes.mean())
              .c_str());
      rows.push_back(std::move(row));
    }
  }

  std::printf("\ninter-node migration bytes by skew class (mean over "
              "nodes+seeds):\n");
  for (const char* skew : {"intra", "node", "mixed"}) {
    RunningStats flat;
    RunningStats hier;
    for (const Scenario& r : rows) {
      if (std::strcmp(r.skew, skew) != 0) continue;
      flat.add(r.flat.inter_bytes.mean());
      hier.add(r.hier.inter_bytes.mean());
    }
    std::printf("  %-6s flat %10s   hier %10s\n", skew,
                format_bytes(flat.mean()).c_str(),
                format_bytes(hier.mean()).c_str());
  }
  std::printf(
      "\nwhen the skew lives inside nodes, the hierarchy pays zero "
      "InfiniBand traffic;\nwhen load must cross nodes, both move "
      "comparable bytes (the moves are forced).\n");
  std::printf(
      "hier bottleneck ratio (max/mean) <= flat in %d/%d seed runs\n",
      bottleneck_wins, comparisons);
  std::printf(
      "strictly fewer inter-node bytes at equal-or-better bottleneck: "
      "%d seed run(s)\n",
      strict_wins);

  // --- DP×PP grid orientations --------------------------------------------
  std::printf(
      "\nGrid orientations on n x DGX-H100 (256 MiB gradients/stage):\n");
  std::printf("%6s %4s %4s | %12s %12s | %12s %12s | %12s %12s\n", "nodes",
              "dp", "pp", "dpin ar", "ppin ar", "dpin fabric", "ppin fabric",
              "dpin bound", "ppin bound");
  std::vector<GridScenario> grid_rows;
  for (int nodes : {2, 4, 8}) {
    for (int dp : {2, 4, 8}) {
      const GridScenario row = run_grid_scenario(nodes, dp);
      std::printf(
          "%6d %4d %4d | %12s %12s | %12s %12s | %12s %12s\n", row.nodes,
          row.dp, row.pp,
          format_seconds(row.dp_inner_allreduce_s).c_str(),
          format_seconds(row.pp_inner_allreduce_s).c_str(),
          format_bytes(row.dp_inner_inter_bytes).c_str(),
          format_bytes(row.pp_inner_inter_bytes).c_str(),
          format_seconds(row.dp_inner_boundary_s).c_str(),
          format_seconds(row.pp_inner_boundary_s).c_str());
      grid_rows.push_back(row);
    }
  }
  std::printf(
      "DpInner keeps the gradient allreduce on NVLink (zero fabric bytes "
      "while dp fits in a node)\nbut pays the fabric on pipeline "
      "boundaries; PpInner is the mirror image.\n");

  if (json_path != nullptr) {
    write_json(json_path, rows, grid_rows, bottleneck_wins, strict_wins,
               comparisons);
  }
  return 0;
}
