// Flat vs. hierarchical diffusion on multi-node topologies.
//
// Sweeps 2–16 simulated DGX-H100 nodes under three skew patterns and
// compares balance::DiffusionBalancer (topology-blind) against
// cluster::HierarchicalBalancer (intra-node first, inter-node only when
// the node totals are out of balance).  Reported per scenario:
//   inter-node migration bytes (the expensive InfiniBand traffic),
//   migration wall-clock under topology pricing, and the final
//   imbalance ratio (max−min)/mean.  The hierarchical balancer should
//   issue strictly fewer inter-node bytes at equal-or-better imbalance.
#include <cinttypes>
#include <numeric>

#include "balance/diffusion.hpp"
#include "balance/migration.hpp"
#include "cluster/hier_balancer.hpp"
#include "cluster/placement.hpp"
#include "cluster/topology.hpp"
#include "core/rng.hpp"
#include "core/stats.hpp"
#include "core/units.hpp"
#include "pipeline/stage_map.hpp"

namespace {

using namespace dynmo;

std::vector<double> make_weights(const char* skew, std::size_t layers,
                                 std::size_t layers_per_node, Rng& rng) {
  std::vector<double> w(layers);
  for (std::size_t l = 0; l < layers; ++l) {
    const auto i = static_cast<double>(l % layers_per_node);
    const double jitter = rng.uniform(0.9, 1.1);
    if (skew[0] == 'i') {  // intra: heavy front inside every node
      w[l] = jitter * (0.4 + 2.5 * std::exp(-0.3 * i));
    } else if (skew[0] == 'n') {  // node: whole first half heavy
      w[l] = jitter * (l < layers / 2 ? 2.0 : 0.6);
    } else {  // mixed: global decay (both levels imbalanced)
      w[l] = jitter *
             (0.3 + 3.0 * std::exp(-2.0 * static_cast<double>(l) /
                                   static_cast<double>(layers)));
    }
  }
  return w;
}

struct Row {
  double inter_bytes = 0.0;
  double migrate_s = 0.0;
  double imbalance = 0.0;   ///< (max-min)/mean, paper Eq. (2)
  double bottleneck = 0.0;  ///< max/mean — what gates pipeline throughput
};

}  // namespace

int main() {
  std::printf("Flat vs hierarchical diffusion on n x DGX-H100 (8 GPU/node)\n");
  std::printf("layer state: 1 GiB/layer; migration priced by topology\n\n");
  std::printf("%6s %6s %7s | %12s %10s %6s %6s | %12s %10s %6s %6s | %s\n",
              "nodes", "stages", "skew", "flat inter", "flat mig", "imb",
              "bn", "hier inter", "hier mig", "imb", "bn",
              "inter-bytes saved");

  struct Totals {
    double flat_inter = 0.0;
    double hier_inter = 0.0;
  };
  Totals by_skew[3];
  const char* skew_names[3] = {"intra", "node", "mixed"};
  int hier_strict_wins = 0;  // strictly fewer inter bytes at <= imbalance
  int hier_imbalance_wins = 0;
  int scenarios = 0;

  Rng rng(0x70b0);
  for (int nodes : {2, 4, 8, 16}) {
    const auto topo = cluster::Topology::make_dgx_h100(nodes);
    const auto net = topo.make_cost_model();
    const int stages = topo.num_ranks();
    const std::size_t layers = static_cast<std::size_t>(stages) * 6;
    const auto placement = cluster::place_topology_aware(topo, stages);

    for (int skew_idx = 0; skew_idx < 3; ++skew_idx) {
      const char* skew = skew_names[skew_idx];
      const auto w =
          make_weights(skew, layers, layers / static_cast<std::size_t>(nodes),
                       rng);
      std::vector<double> state_bytes(layers, 1.0 * GiB);
      const auto start = pipeline::StageMap::uniform(layers, stages);

      balance::DiffusionRequest req;
      req.weights = w;

      const auto eval = [&](const pipeline::StageMap& result) {
        Row row;
        const auto plan = balance::plan_migration(start, result, state_bytes);
        const auto split =
            cluster::classify_migration(plan, topo, placement.stage_to_rank);
        row.inter_bytes = split.inter_node_bytes;
        row.migrate_s =
            plan.estimated_time_s(net, placement.stage_to_rank);
        row.imbalance = load_imbalance(result.stage_loads(w));
        row.bottleneck = max_over_mean(result.stage_loads(w));
        return row;
      };

      const auto flat =
          eval(balance::DiffusionBalancer{}.balance(req, start).map);
      const auto hier = eval(
          cluster::HierarchicalBalancer(topo)
              .balance(req, start, placement.stage_to_rank)
              .map);

      by_skew[skew_idx].flat_inter += flat.inter_bytes;
      by_skew[skew_idx].hier_inter += hier.inter_bytes;
      if (hier.bottleneck <= flat.bottleneck + 1e-9) {
        ++hier_imbalance_wins;
        if (hier.inter_bytes < flat.inter_bytes) ++hier_strict_wins;
      }
      ++scenarios;

      std::printf(
          "%6d %6d %7s | %12s %10s %6.3f %6.3f | %12s %10s %6.3f %6.3f | "
          "%s\n",
          nodes, stages, skew, format_bytes(flat.inter_bytes).c_str(),
          format_seconds(flat.migrate_s).c_str(), flat.imbalance,
          flat.bottleneck, format_bytes(hier.inter_bytes).c_str(),
          format_seconds(hier.migrate_s).c_str(), hier.imbalance,
          hier.bottleneck,
          format_bytes(flat.inter_bytes - hier.inter_bytes).c_str());
    }
  }

  std::printf("\ninter-node migration bytes by skew class:\n");
  for (int i = 0; i < 3; ++i) {
    std::printf("  %-6s flat %10s   hier %10s\n", skew_names[i],
                format_bytes(by_skew[i].flat_inter).c_str(),
                format_bytes(by_skew[i].hier_inter).c_str());
  }
  std::printf(
      "\nwhen the skew lives inside nodes, the hierarchy pays zero "
      "InfiniBand traffic;\nwhen load must cross nodes, both move "
      "comparable bytes (the moves are forced).\n");
  std::printf(
      "hier bottleneck ratio (max/mean, what gates pipeline throughput) "
      "<= flat in %d/%d scenarios\n",
      hier_imbalance_wins, scenarios);
  std::printf(
      "strictly fewer inter-node bytes at equal-or-better bottleneck: "
      "%d scenario(s)\n",
      hier_strict_wins);
  return 0;
}
