// Elastic lifecycle sweep (ISSUE 5 / docs/RUNTIME.md): a workload whose
// load concentrates during a lull and spikes back afterwards, run under
// checkpoint-coordinated shrink/expand with varying thresholds.
//
// The scenario is the acceptance story the paper only gestures at: the job
// releases GPUs to the (mock) ECK queue while the tail layers are idle,
// then re-claims them when the spike returns — and ends within a few
// percent of the never-shrunk pipeline's bottleneck while having saved
// GPU-hours.  The sweep shows the knobs' tradeoffs:
//
//   * shrink_tolerance × expand_min_gain — how eagerly the footprint
//     breathes (tight tolerance + low gain bar: both transitions fire;
//     a 25% gain bar refuses to expand and stays slow after the spike);
//   * payoff window — window 0 disables the gates (transitions always
//     fire); a sub-iteration window can never amortize the restart stall
//     and pins the footprint.
//
// `--smoke` shrinks the simulated horizon for CI; `--json PATH` records
// the sweep via bench::JsonRecorder with the lifecycle counters as extra
// per-row fields (gpu_hours_saved, expands, shrinks, restart_stall_s —
// all deterministic; see docs/BENCHMARKS.md).  `--trace-dir DIR` records
// one telemetry trace per configuration under DIR/<label> — the
// elastic_transitions table then holds every shrink/expand verdict with
// its restart-stall breakdown (docs/TELEMETRY.md).
#include <cstring>
#include <memory>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace dynmo;

/// Early-exit-style concentration during [lull_begin, lull_end): the tail
/// layers drop to 2% compute, then spike back to full depth.
class SpikeEngine : public dynamic::DynamismEngine {
 public:
  SpikeEngine(std::int64_t lull_begin, std::int64_t lull_end,
              std::size_t heavy_layers)
      : begin_(lull_begin), end_(lull_end), heavy_(heavy_layers) {}

  std::string name() const override { return "spike"; }
  bool is_dynamism_point(std::int64_t iter) const override {
    return iter == begin_ || iter == end_;
  }
  void step(std::int64_t iter,
            std::span<model::LayerState> states) override {
    const bool lull = iter >= begin_ && iter < end_;
    for (std::size_t l = heavy_; l < states.size(); ++l) {
      states[l].compute_scale = lull ? 0.02 : 1.0;
    }
  }
  std::int64_t recommended_rebalance_interval() const override {
    return 100;
  }

 private:
  std::int64_t begin_, end_;
  std::size_t heavy_;
};

struct Scenario {
  std::int64_t iterations;
  std::int64_t lull_begin;
  std::int64_t lull_end;
  std::int64_t elastic_interval;
};

runtime::SessionConfig base_config(const Scenario& sc) {
  runtime::SessionConfig cfg;
  cfg.pipeline_stages = 8;
  cfg.micro_batch = 2;
  cfg.num_microbatches = 16;
  cfg.iterations = sc.iterations;
  cfg.sim_stride = 10;
  cfg.rebalance_interval = 100;
  cfg.mode = runtime::BalancingMode::DynMo;
  cfg.algorithm = balance::Algorithm::Partition;
  cfg.balance_by = balance::BalanceBy::Time;
  return cfg;
}

/// Set via --trace-dir: every swept configuration records its telemetry
/// trace under <dir>/<label slug> (docs/TELEMETRY.md).
const char* g_trace_dir = nullptr;

runtime::SessionResult run_one(const model::ModelDesc& m, const Scenario& sc,
                               runtime::SessionConfig cfg,
                               const std::string& label) {
  if (g_trace_dir != nullptr) {
    cfg.telemetry.dir =
        std::string(g_trace_dir) + "/" + bench::trace_slug(label);
  }
  SpikeEngine engine(sc.lull_begin, sc.lull_end, /*heavy_layers=*/4);
  runtime::TrainingSession session(m, cfg, &engine);
  return session.run();
}

bench::Row make_row(std::string label, runtime::SessionResult r,
                    double baseline_final_time_s) {
  bench::Row row;
  row.label = std::move(label);
  // final_time_vs_baseline is the acceptance ratio: the last simulated
  // iteration's time against the never-shrunk pipeline's — ~1.0 when the
  // expand recovered the pre-shrink bottleneck (the committed baseline
  // proves it stays within 1.05).
  row.extra = {{"gpu_hours_saved", r.gpu_hours_saved},
               {"expands", static_cast<double>(r.expands)},
               {"shrinks", static_cast<double>(r.shrinks)},
               {"restart_stall_s", r.restart_stall_s},
               {"avg_workers", r.avg_active_workers},
               {"final_time_vs_baseline",
                r.samples.back().time_s / baseline_final_time_s}};
  row.result = std::move(r);
  return row;
}

void print_lifecycle(const std::vector<bench::Row>& rows) {
  std::printf("%-34s %9s %7s %7s %10s %10s\n", "configuration", "avg GPUs",
              "shrink", "expand", "stall s", "GPUh saved");
  for (const auto& r : rows) {
    std::printf("%-34s %9.2f %7d %7d %10.2f %10.4f\n", r.label.c_str(),
                r.result.avg_active_workers, r.result.shrinks,
                r.result.expands, r.result.restart_stall_s,
                r.result.gpu_hours_saved);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* json_path = bench::json_path_arg(argc, argv);
  g_trace_dir = bench::trace_dir_arg(argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  // elastic_interval must be a multiple of the rebalance cadence (100) and
  // sim_stride (10) — the session enforces it.
  const Scenario sc = smoke ? Scenario{1500, 500, 1000, 500}
                            : Scenario{3000, 1000, 2000, 500};
  const auto m = model::make_gpt({.num_blocks = 24,
                                  .include_embedding = false,
                                  .include_lm_head = false});
  std::printf("Elastic lifecycle: 24-layer GPT on 8 workers, load lull "
              "[%lld, %lld) then spike, horizon %lld iters%s\n\n",
              static_cast<long long>(sc.lull_begin),
              static_cast<long long>(sc.lull_end),
              static_cast<long long>(sc.iterations),
              smoke ? " (smoke)" : "");

  const auto elastic_config = [&](double tol, double gain, double window) {
    auto cfg = base_config(sc);
    cfg.elastic.enabled = true;
    cfg.elastic.interval = sc.elastic_interval;
    cfg.elastic.min_workers = 2;
    cfg.elastic.shrink_tolerance = tol;
    cfg.elastic.expand_min_gain = gain;
    cfg.elastic.payoff_window_iters = window;
    // Small-job restart path (sub-second respawn, 16 GiB/s shard I/O);
    // the config defaults model a paper-scale pod whose stall would need
    // a longer horizon to amortize.
    cfg.elastic.restart_alpha_s = 0.5;
    cfg.elastic.checkpoint_bw = 16.0 * 1024 * 1024 * 1024;
    return cfg;
  };

  const auto baseline = run_one(m, sc, base_config(sc), "never-shrunk");
  const double base_final = baseline.samples.back().time_s;
  bench::JsonRecorder recorder("elastic");

  // --- sweep 1: shrink/expand thresholds at a matched payoff window ------
  // The spike's reclaim gain is ~40% of the shrunk bottleneck: a 60% gain
  // bar refuses to expand and trades the post-spike throughput for more
  // saved GPU-hours (the shrink-only behavior `repack` used to be capped
  // at).
  {
    std::vector<bench::Row> rows;
    rows.push_back(make_row("never-shrunk", baseline, base_final));
    for (const double tol : {1.02, 1.05, 1.20}) {
      for (const double gain : {0.01, 0.05, 0.60}) {
        char label[64];
        std::snprintf(label, sizeof label, "tol %.2f / gain %.2f", tol,
                      gain);
        rows.push_back(
            make_row(label,
                     run_one(m, sc, elastic_config(tol, gain, 600.0),
                             label),
                     base_final));
      }
    }
    bench::print_table("shrink/expand thresholds (payoff window 600)", rows,
                       baseline.tokens_per_sec);
    std::printf("\n");
    print_lifecycle(rows);
    recorder.add_case("thresholds", rows, baseline.tokens_per_sec);
  }

  // --- sweep 2: the payoff window gating the restart stall ---------------
  {
    std::vector<bench::Row> rows;
    rows.push_back(make_row("never-shrunk", baseline, base_final));
    for (const double window : {0.0, 60.0, 600.0, 1e-3}) {
      char label[64];
      std::snprintf(label, sizeof label, "window %g", window);
      rows.push_back(make_row(label,
                              run_one(m, sc, elastic_config(1.05, 0.02,
                                                            window),
                                      label),
                              base_final));
    }
    bench::print_table("payoff window (tol 1.05, gain 0.02)", rows,
                       baseline.tokens_per_sec);
    std::printf("\n");
    print_lifecycle(rows);
    recorder.add_case("payoff_window", rows, baseline.tokens_per_sec);
  }

  if (json_path != nullptr) recorder.write(json_path);
  return 0;
}
