// Payoff-window acceptance vs. rebalance cadence (ROADMAP "Cost-aware map
// acceptance").
//
// MoE routing noise on a fabric-heavy deployment (8 nodes x 2 GPUs, 16
// pipeline stages) rebalanced at cadences from every iteration to every
// 100th.  For each cadence the sweep compares bottleneck-only hysteresis
// (window 0 — the pre-payoff behavior) against payoff windows from "must
// amortize before the next rebalance" up to generous multiples of the
// cadence.  The shape to observe at fast cadences: a window of ~10x the
// cadence rejects the barely-better maps that move GiBs of expert state,
// cutting migration traffic several-fold at equal-or-better throughput;
// tighter windows (2-5x) go further — near-zero fabric traffic — but
// also reject the structural rebalance and give back a few percent of
// throughput.  At slow cadences the window is inert because migrations
// amortize over hundreds of iterations anyway.
//
// `--smoke` shrinks the simulated window for CI; `--json PATH` records the
// sweep as a BENCH_*.json perf trajectory (see bench/record_bench.sh and
// docs/BENCHMARKS.md).  Bytes and counts are deterministic; tokens/sec is
// rounded to 4 significant digits so measured decide-time jitter cannot
// move the recorded numbers.  `--trace-dir DIR` records one telemetry
// trace per (cadence, window) point under DIR — query the
// rebalance_decisions table for each point's accept/reject ledger, or
// replay any point under a different window (docs/TELEMETRY.md).
#include <cstring>
#include <vector>

#include "bench_common.hpp"

namespace {

struct SweepRow {
  std::int64_t cadence = 0;
  double window = 0.0;
  double tokens_per_sec = 0.0;
  double migration_gib = 0.0;       ///< issued, intra + inter, all replicas
  double inter_node_gib = 0.0;      ///< issued across the fabric
  double avoided_gib = 0.0;         ///< rejected candidates' traffic
  int accepted = 0;
  int rejected_payoff = 0;
};

void write_json(const char* path, const std::vector<SweepRow>& rows) {
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    std::exit(2);
  }
  std::fprintf(f, "{\n  \"bench\": \"payoff_window\",\n  \"sweep\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& r = rows[i];
    std::fprintf(
        f,
        "    {\"cadence\": %lld, \"window\": %g, \"tokens_per_sec\": %.4g, "
        "\"migration_gib\": %.6g, \"inter_node_gib\": %.6g, "
        "\"avoided_gib\": %.6g, \"accepted\": %d, "
        "\"rejected_payoff\": %d}%s\n",
        static_cast<long long>(r.cadence), r.window, r.tokens_per_sec,
        r.migration_gib, r.inter_node_gib, r.avoided_gib, r.accepted,
        r.rejected_payoff, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dynmo;
  bool smoke = false;
  const char* json_path = bench::json_path_arg(argc, argv);
  const char* trace_dir = bench::trace_dir_arg(argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const auto model = model::make_moe(model::llama_moe_3_5b_config(), "m");
  Options base;
  base.session.pipeline_stages = 16;
  base.session.num_microbatches = 32;
  base.session.iterations = smoke ? 60 : 300;
  base.session.sim_stride = 10;
  base.moe.tokens_per_microbatch = 512;
  // A bottleneck-only bar a routing swing easily clears: the failure mode
  // the payoff window fixes (a 1%-better map that moves tens of GiB
  // passes any pure-bottleneck hysteresis).
  base.session.min_bottleneck_gain = 0.005;
  base.session.mode = runtime::BalancingMode::DynMo;
  base.session.algorithm = balance::Algorithm::Diffusion;
  base.session.deployment = cluster::Deployment::make_topology_aware(
      cluster::Topology::make_homogeneous(
          8, 2, hw::GpuSpec::h100_sxm5(),
          cluster::default_link(cluster::LinkType::NvLink),
          cluster::default_link(cluster::LinkType::InfiniBand)),
      16);

  std::printf(
      "Payoff-window acceptance: MoE on 8x2-GPU nodes, 16 stages, flat "
      "diffusion\n%s\n",
      smoke ? "(smoke mode: short window)" : "");
  std::printf("%8s %8s %12s %12s %12s %12s %9s %9s\n", "cadence", "window",
              "tokens/s", "moved GiB", "inter GiB", "avoided GiB", "accept",
              "rej-pay");

  constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;
  std::vector<SweepRow> rows;
  for (const std::int64_t cadence : {1, 10, 100}) {
    for (const double window_mult : {0.0, 2.0, 5.0, 10.0, 50.0}) {
      Options opt = base;
      opt.session.rebalance_interval = cadence;
      opt.session.payoff_window_iters =
          window_mult * static_cast<double>(cadence);
      if (trace_dir != nullptr) {
        char slug[64];
        std::snprintf(slug, sizeof slug, "cadence%lld_window%g",
                      static_cast<long long>(cadence),
                      opt.session.payoff_window_iters);
        opt.session.telemetry.dir = std::string(trace_dir) + "/" + slug;
      }
      Session s(model, UseCase::Moe, opt);
      const auto r = s.run();
      SweepRow row;
      row.cadence = cadence;
      row.window = opt.session.payoff_window_iters;
      row.tokens_per_sec = r.tokens_per_sec;
      row.migration_gib = (r.intra_node_migration_bytes +
                           r.inter_node_migration_bytes) /
                          kGiB;
      row.inter_node_gib = r.inter_node_migration_bytes / kGiB;
      row.avoided_gib = r.migration_bytes_avoided / kGiB;
      row.accepted = r.maps_accepted;
      row.rejected_payoff = r.maps_rejected_payoff;
      rows.push_back(row);
      std::printf("%8lld %8g %12.0f %12.2f %12.2f %12.2f %9d %9d\n",
                  static_cast<long long>(cadence), row.window,
                  row.tokens_per_sec, row.migration_gib, row.inter_node_gib,
                  row.avoided_gib, row.accepted, row.rejected_payoff);
    }
  }
  if (json_path != nullptr) write_json(json_path, rows);
  return 0;
}
