// Multi-tenant fleet arbiter vs. static equal-split (ISSUE 7 /
// docs/FLEET.md): 12 heterogeneous elastic jobs — batch, standard,
// interactive, urgent priority classes with different weights, footprints,
// arrivals, and horizons — compete for one 16-GPU pool under the
// fleet::Arbiter, against the scheduler the paper's elasticity displaces:
// a static partition of the pool into fixed equal slots, jobs queued FIFO
// onto the earliest-free slot, no elasticity.
//
// The arbiter wins on both axes the fleet cares about: utilization (the
// tail jobs expand over the idle slots a static partition strands) and
// aggregate tokens/sec (the same total work finishes inside a shorter
// makespan), while the preemption counter shows high-priority arrivals
// claiming their minimum through the checkpoint-coordinated shrink path.
// The sweep varies the arbiter's policy knobs:
//
//   * payoff window — 0 disables the fleet-pricing gates; a window
//     shorter than the restart stall (50 iterations at these ~20 ms
//     iterations) prices every transition unprofitable and freezes the
//     admission-time split in place;
//   * work conservation — off caps every job at its fair share, trading
//     utilization for strict isolation;
//   * preemption — off makes arrivals wait for capacity instead of
//     forcing running jobs to shrink.
//
// Everything is deterministic (fixed arrivals, seeds, analytic cost
// models); the recorded JSON rounds past the measured decide-time jitter.
// The bench exits non-zero if the headline configuration fails the
// acceptance bar (fleet utilization strictly above static at
// equal-or-better aggregate throughput, with at least one preemption
// somewhere in the sweep), so CI's --smoke run doubles as a regression
// gate.  `--json PATH` records the sweep (docs/BENCHMARKS.md).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "fleet/arbiter.hpp"

namespace {

using namespace dynmo;

struct JobDef {
  const char* name;
  int priority;
  double weight;
  int min_gpus;
  int max_gpus;
  double arrival_s;
  std::int64_t iterations;
  std::uint64_t seed;
};

// The fleet: four long batch jobs that soak the pool early, four standard
// jobs trickling in, two weighted interactive jobs, and two urgent jobs
// whose minimum footprint must be preempted out of a saturated pool.
// Every min_gpus fits the static arm's 4-GPU slots, so both schedulers
// can run every job and the comparison is apples to apples.
constexpr int kPoolGpus = 16;
constexpr int kStaticSlots = 4;  // 4 slots x 4 GPUs

const std::vector<JobDef>& fleet_jobs() {
  static const std::vector<JobDef> jobs = {
      {"batch-a", 0, 1.0, 2, 8, 0.0, 1200, 11},
      {"batch-b", 0, 1.0, 2, 8, 0.0, 1200, 12},
      {"batch-c", 0, 1.0, 2, 6, 2.0, 1000, 13},
      {"batch-d", 0, 1.0, 2, 6, 2.0, 1000, 14},
      {"std-a", 1, 1.0, 2, 6, 8.0, 800, 21},
      {"std-b", 1, 1.0, 2, 6, 10.0, 800, 22},
      {"std-c", 1, 1.0, 2, 4, 12.0, 600, 23},
      {"std-d", 1, 1.0, 2, 4, 14.0, 600, 24},
      {"inter-a", 3, 2.0, 4, 8, 6.0, 400, 31},
      {"inter-b", 3, 2.0, 4, 8, 16.0, 400, 32},
      {"urgent-a", 5, 2.0, 4, 4, 4.0, 200, 41},
      {"urgent-b", 5, 2.0, 4, 4, 18.0, 200, 42},
  };
  return jobs;
}

model::ModelDesc job_model(const JobDef& d) {
  return model::make_gpt(
      {.num_blocks = static_cast<std::size_t>(3 * d.max_gpus),
       .include_embedding = false,
       .include_lm_head = false});
}

runtime::SessionConfig job_session_config(const JobDef& d,
                                          std::int64_t iterations) {
  runtime::SessionConfig cfg;
  cfg.micro_batch = 2;
  cfg.num_microbatches = 8;
  cfg.iterations = iterations;
  cfg.sim_stride = 10;
  cfg.rebalance_interval = 50;
  cfg.mode = runtime::BalancingMode::DynMo;
  cfg.algorithm = balance::Algorithm::Partition;
  cfg.balance_by = balance::BalanceBy::Time;
  cfg.seed = d.seed;
  return cfg;
}

fleet::JobSpec make_spec(const JobDef& d, double time_scale) {
  const auto iterations = std::max<std::int64_t>(
      50, static_cast<std::int64_t>(d.iterations * time_scale));
  fleet::JobSpec spec;
  spec.name = d.name;
  spec.priority = d.priority;
  spec.weight = d.weight;
  spec.min_gpus = d.min_gpus;
  spec.max_gpus = d.max_gpus;
  spec.arrival_s = d.arrival_s * time_scale;
  spec.factory = [d, iterations, model = std::shared_ptr<model::ModelDesc>()](
                     int initial, repack::ControlPlane* cluster) mutable {
    model = std::make_shared<model::ModelDesc>(job_model(d));
    auto cfg = job_session_config(d, iterations);
    cfg.pipeline_stages = d.max_gpus;
    cfg.initial_active_workers = initial;
    cfg.elastic.enabled = true;
    cfg.elastic.interval = 100;
    cfg.elastic.min_workers = d.min_gpus;
    cfg.elastic.cluster = cluster;
    cfg.elastic.pod = d.name;
    cfg.elastic.restart_alpha_s = 0.5;
    cfg.elastic.checkpoint_bw = 16.0 * 1024 * 1024 * 1024;
    return std::make_unique<runtime::TrainingSession>(*model, cfg, nullptr);
  };
  return spec;
}

/// One scheduler outcome, fleet or static, on the common axes.
struct ArmResult {
  std::string label;
  double makespan_s = 0.0;
  double utilization = 0.0;
  double aggregate_tokens_per_sec = 0.0;
  double gpu_hours_saved = 0.0;
  int preemptions = 0;
  int grants = 0;
  int denies = 0;
};

/// The displaced scheduler: kStaticSlots fixed partitions of
/// kPoolGpus / kStaticSlots GPUs, jobs queued in arrival order onto the
/// earliest-free slot, each run non-elastically at exactly the slot width.
ArmResult run_static(double time_scale) {
  const int slot_gpus = kPoolGpus / kStaticSlots;
  std::vector<double> slot_free(kStaticSlots, 0.0);

  auto order = fleet_jobs();
  std::stable_sort(order.begin(), order.end(),
                   [](const JobDef& a, const JobDef& b) {
                     return a.arrival_s < b.arrival_s;
                   });

  ArmResult arm;
  arm.label = "static equal-split (4x4, no elastic)";
  double busy_gpu_s = 0.0;
  double total_tokens = 0.0;
  for (const JobDef& d : order) {
    const auto slot = static_cast<std::size_t>(
        std::min_element(slot_free.begin(), slot_free.end()) -
        slot_free.begin());
    const double start = std::max(d.arrival_s * time_scale, slot_free[slot]);

    const auto m = job_model(d);
    auto cfg = job_session_config(
        d, std::max<std::int64_t>(
               50, static_cast<std::int64_t>(d.iterations * time_scale)));
    cfg.pipeline_stages = slot_gpus;
    runtime::TrainingSession session(m, cfg, nullptr);
    const auto r = session.run();

    slot_free[slot] = start + r.total_time_s;
    busy_gpu_s += slot_gpus * r.total_time_s;
    total_tokens += r.tokens_per_sec * r.total_time_s;
    arm.makespan_s = std::max(arm.makespan_s, slot_free[slot]);
  }
  arm.utilization = busy_gpu_s / (kPoolGpus * arm.makespan_s);
  arm.aggregate_tokens_per_sec = total_tokens / arm.makespan_s;
  return arm;
}

ArmResult run_fleet(const std::string& label, double payoff_window,
                    bool work_conserving, bool allow_preemption,
                    double time_scale) {
  fleet::ArbiterConfig cfg;
  cfg.total_gpus = kPoolGpus;
  cfg.payoff_window_iters = payoff_window;
  cfg.work_conserving = work_conserving;
  cfg.allow_preemption = allow_preemption;
  fleet::Arbiter arbiter(cfg);
  for (const JobDef& d : fleet_jobs()) arbiter.submit(make_spec(d, time_scale));
  const auto r = arbiter.run();

  ArmResult arm;
  arm.label = label;
  arm.makespan_s = r.makespan_s;
  arm.utilization = r.utilization;
  arm.aggregate_tokens_per_sec = r.aggregate_tokens_per_sec;
  arm.gpu_hours_saved = r.gpu_hours_saved;
  arm.preemptions = r.preemptions;
  arm.grants = r.grants;
  arm.denies = r.denies;
  return arm;
}

void print_arms(const std::vector<ArmResult>& arms) {
  std::printf("%-42s %10s %7s %12s %8s %7s %7s\n", "scheduler", "makespan",
              "util%", "tokens/s", "preempt", "grant", "deny");
  for (const auto& a : arms) {
    std::printf("%-42s %9.1fs %6.1f%% %12.0f %8d %7d %7d\n", a.label.c_str(),
                a.makespan_s, 100.0 * a.utilization,
                a.aggregate_tokens_per_sec, a.preemptions, a.grants,
                a.denies);
  }
}

void write_json(const char* path, const std::vector<ArmResult>& arms,
                const ArmResult& st) {
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    std::exit(2);
  }
  std::fprintf(f, "{\n  \"bench\": \"fleet\",\n  \"cases\": [\n");
  std::fprintf(f, "    {\"case\": \"pool16_jobs12\", \"rows\": [\n");
  for (std::size_t i = 0; i < arms.size(); ++i) {
    const auto& a = arms[i];
    std::fprintf(
        f,
        "      {\"series\": \"%s\", \"utilization\": %.4g, "
        "\"aggregate_tokens_per_sec\": %.4g, \"makespan_s\": %.4g, "
        "\"preemptions\": %d, \"grants\": %d, \"denies\": %d, "
        "\"gpu_hours_saved\": %.4g, \"utilization_vs_static\": %.3g, "
        "\"throughput_vs_static\": %.3g}%s\n",
        a.label.c_str(), a.utilization, a.aggregate_tokens_per_sec,
        a.makespan_s, a.preemptions, a.grants, a.denies, a.gpu_hours_saved,
        a.utilization / st.utilization,
        a.aggregate_tokens_per_sec / st.aggregate_tokens_per_sec,
        i + 1 < arms.size() ? "," : "");
  }
  std::fprintf(f, "    ]}\n  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* json_path = bench::json_path_arg(argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  // --smoke runs the identical schedule: the fleet is simulated and the
  // whole sweep takes well under a second, and shortening the horizon
  // would distort the stall amortization the acceptance gate measures.
  const double time_scale = 1.0;

  (void)smoke;
  std::printf("Fleet arbiter: %zu heterogeneous jobs on a %d-GPU pool\n\n",
              fleet_jobs().size(), kPoolGpus);

  // The restart stall is ~1 s against ~20 ms iterations, so a window must
  // span a few hundred iterations before any checkpoint-coordinated move
  // can amortize — same calibration as bench_elastic.
  const auto st = run_static(time_scale);
  std::vector<ArmResult> arms;
  arms.push_back(st);
  arms.push_back(run_fleet("fleet (work-conserving, preemption, window 600)",
                           600.0, true, true, time_scale));
  arms.push_back(run_fleet("fleet (strict fair shares, window 600)", 600.0,
                           false, true, time_scale));
  arms.push_back(run_fleet("fleet (no preemption, window 600)", 600.0, true,
                           false, time_scale));
  arms.push_back(run_fleet("fleet (window 50: stall never amortizes)", 50.0,
                           true, true, time_scale));
  arms.push_back(run_fleet("fleet (pricing gates disabled)", 0.0, true, true,
                           time_scale));
  print_arms(arms);

  const auto& headline = arms[1];
  std::printf("\nheadline vs static: utilization %.1f%% -> %.1f%%, "
              "throughput %.2fx, %d preemption(s)\n",
              100.0 * st.utilization, 100.0 * headline.utilization,
              headline.aggregate_tokens_per_sec /
                  st.aggregate_tokens_per_sec,
              headline.preemptions);

  if (json_path != nullptr) write_json(json_path, arms, st);

  // Acceptance gate (ISSUE 7): strictly better utilization at
  // equal-or-better aggregate throughput, with the preemption path
  // actually exercised somewhere in the sweep.  The 0.999 factor absorbs
  // the measured decide-time jitter in the throughput ratio.
  int swept_preemptions = 0;
  for (const auto& a : arms) swept_preemptions += a.preemptions;
  if (headline.utilization <= st.utilization ||
      headline.aggregate_tokens_per_sec <
          0.999 * st.aggregate_tokens_per_sec ||
      swept_preemptions == 0) {
    std::fprintf(stderr,
                 "FAIL: fleet must beat static equal-split (util %.4f vs "
                 "%.4f, tokens/s %.0f vs %.0f) with preemptions > 0 "
                 "(swept: %d)\n",
                 headline.utilization, st.utilization,
                 headline.aggregate_tokens_per_sec,
                 st.aggregate_tokens_per_sec, swept_preemptions);
    return 1;
  }
  return 0;
}
