// Figure 4: re-packing the model onto fewer GPUs while the workload
// shrinks (gradual pruning / layer freezing / early exit), single node
// with an 8-GPU pipeline.
//
// Left panels: throughput (tokens/sec) and throughput-per-GPU when forcing
// the pipeline into 8 / 6 / 4 / 2 GPUs (8 = no re-packing baseline); cells
// that do not fit in GPU memory are OOM.  Bottom: the average GPU count
// over 10,000 iterations when DynMo re-packs automatically under the
// memory-first-fit policy.  Paper: throughput/GPU rises as GPUs shrink;
// pruning sustains training on ~5.8 GPUs on average.
//
// `--json PATH` additionally writes every cell as a BENCH_*.json perf
// trajectory (see bench/record_bench.sh); all arithmetic is deterministic,
// so the recorded numbers are machine-independent.
#include <cstring>
#include <vector>

#include "bench_common.hpp"

namespace {

// Single-node Fig.4 setup: models sized so memory pressure is real on an
// 8-GPU pipeline (the paper packs multi-billion-parameter GPT variants).
// `hidden` is a knob: 4096 for the forced 8/6/4/2 sweeps (OOM appears only
// at the smallest GPU counts, as in the paper), 8192 for the auto-repack
// trajectory (the unpruned model nearly fills all 8 GPUs, so GPUs are
// released progressively as pruning shrinks the state).
dynmo::model::ModelDesc fig4_model(std::size_t blocks,
                                   std::size_t hidden = 4096) {
  return dynmo::model::make_gpt({.num_blocks = blocks,
                                 .hidden = hidden,
                                 .seq_len = 2048,
                                 .heads = 32,
                                 .include_embedding = false,
                                 .include_lm_head = false});
}

dynmo::Options fig4_options(dynmo::UseCase uc) {
  dynmo::Options opt;
  opt.session.pipeline_stages = 8;
  opt.session.data_parallel = 1;
  opt.session.micro_batch = 1;
  opt.session.num_microbatches = 32;
  opt.session.iterations = 10000;
  opt.session.sim_stride = 100;
  opt.session.rebalance_interval = 500;
  opt.session.repack_interval = 500;
  if (uc == dynmo::UseCase::GradualPruning) {
    opt.session.rebalance_interval = 1000;
    opt.session.repack_interval = 1000;
  }
  return opt;
}

struct ForcedCell {
  const char* use_case = "";
  std::size_t layers = 0;
  int gpus = 0;
  bool oom = false;
  double tokens_per_sec = 0.0;
  double avg_active_workers = 0.0;
};

struct AutoRow {
  std::size_t layers = 0;
  double avg_gpus = 0.0;
  int repacks = 0;
  double tokens_per_sec = 0.0;
};

void write_json(const char* path, const std::vector<ForcedCell>& forced,
                const std::vector<AutoRow>& auto_rows) {
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    std::exit(2);
  }
  std::fprintf(f, "{\n  \"bench\": \"fig4_repack\",\n  \"forced\": [\n");
  for (std::size_t i = 0; i < forced.size(); ++i) {
    const ForcedCell& c = forced[i];
    std::fprintf(f,
                 "    {\"use_case\": \"%s\", \"layers\": %zu, \"gpus\": %d, "
                 "\"oom\": %s, \"tokens_per_sec\": %.6g, "
                 "\"tokens_per_gpu\": %.6g}%s\n",
                 c.use_case, c.layers, c.gpus, c.oom ? "true" : "false",
                 c.oom ? 0.0 : c.tokens_per_sec,
                 c.oom || c.avg_active_workers <= 0.0
                     ? 0.0
                     : c.tokens_per_sec / c.avg_active_workers,
                 i + 1 < forced.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"auto_repack\": [\n");
  for (std::size_t i = 0; i < auto_rows.size(); ++i) {
    const AutoRow& r = auto_rows[i];
    std::fprintf(f,
                 "    {\"layers\": %zu, \"avg_gpus\": %.6g, \"repacks\": %d, "
                 "\"tokens_per_sec\": %.6g}%s\n",
                 r.layers, r.avg_gpus, r.repacks, r.tokens_per_sec,
                 i + 1 < auto_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dynmo;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  std::vector<ForcedCell> forced;
  std::vector<AutoRow> auto_rows;
  std::printf("Figure 4 — re-packing to fewer GPUs (8-GPU pipeline, "
              "hidden 4096)\n");

  const UseCase cases[] = {UseCase::GradualPruning, UseCase::LayerFreezing,
                           UseCase::EarlyExit};
  for (UseCase uc : cases) {
    std::printf("\n== %s ==\n", to_string(uc));
    std::printf("%-10s", "layers");
    for (int g : {8, 6, 4, 2}) std::printf("   %7dGPU tok/s  per-GPU", g);
    std::printf("\n");
    for (std::size_t blocks : {24u, 32u, 40u, 48u}) {
      const auto model = fig4_model(blocks);
      std::printf("%-10zu", blocks);
      for (int gpus : {8, 6, 4, 2}) {
        auto opt = fig4_options(uc);
        opt.session.mode = runtime::BalancingMode::DynMo;
        opt.session.algorithm = balance::Algorithm::Partition;
        opt.session.repack = gpus != 8;
        opt.session.repack_policy =
            runtime::SessionConfig::RepackPolicy::MemoryFirstFit;
        opt.session.repack_target_workers = gpus == 8 ? 0 : gpus;
        // Forced packs engage once the dynamism has shrunk the model (the
        // paper re-packs "after a dynamism step"); for pruning that is the
        // end of the schedule.
        if (uc == UseCase::GradualPruning) {
          opt.session.repack_interval = 7000;
        } else {
          opt.session.repack_interval = 2000;
        }
        Session s(model, uc, opt);
        const auto r = s.run();
        forced.push_back({to_string(uc), blocks, gpus, r.oom,
                          r.tokens_per_sec, r.avg_active_workers});
        if (r.oom) {
          std::printf("   %18s %8s", "OOM", "-");
        } else {
          std::printf("   %11.0f tok/s %8.0f", r.tokens_per_sec,
                      r.tokens_per_sec / r.avg_active_workers);
        }
      }
      std::printf("\n");
    }
  }

  // Bottom of Fig. 4: average GPUs used with automatic memory-first-fit
  // re-packing under gradual pruning (hidden 8192: the dense model nearly
  // fills the 8 GPUs, so releases track the pruning schedule).
  std::printf("\nAverage GPUs over 10k iterations (auto re-pack, gradual "
              "pruning):\n");
  for (std::size_t blocks : {24u, 32u, 40u, 48u}) {
    const auto model = fig4_model(blocks, 8192);
    auto opt = fig4_options(UseCase::GradualPruning);
    opt.session.mode = runtime::BalancingMode::DynMo;
    opt.session.algorithm = balance::Algorithm::Partition;
    opt.session.repack = true;
    opt.session.repack_policy =
        runtime::SessionConfig::RepackPolicy::MemoryFirstFit;
    Session s(model, UseCase::GradualPruning, opt);
    const auto r = s.run();
    auto_rows.push_back(
        {blocks, r.avg_active_workers, r.repack_count, r.tokens_per_sec});
    std::printf("  %2zu layers: avg %.1f GPUs (%d repacks), %0.f tok/s\n",
                blocks, r.avg_active_workers, r.repack_count,
                r.tokens_per_sec);
  }
  if (json_path != nullptr) write_json(json_path, forced, auto_rows);
  return 0;
}
