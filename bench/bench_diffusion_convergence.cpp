// Section 3.3 / Lemma 2: convergence of the decentralized diffusion
// balancer.  Sweeps worker counts and load-skew patterns, reporting the
// rounds to gamma-convergence against the Lemma-2 bound
//   O(N^2 log(SN/gamma) log N)
// and the monotone decrease of the potential phi.
#include <cinttypes>
#include <numeric>

#include "balance/diffusion.hpp"
#include "bench_common.hpp"
#include "core/rng.hpp"

int main() {
  using namespace dynmo;
  std::printf("Diffusion balancer convergence (Lemma 2)\n\n");
  std::printf("%6s %8s %10s %12s %14s %12s\n", "stages", "layers",
              "skew", "rounds", "lemma2 bound", "phi end/start");

  Rng rng(42);
  for (int stages : {4, 8, 16, 32, 64}) {
    for (const char* skew : {"uniform", "zipf", "decay", "spike"}) {
      const std::size_t layers = static_cast<std::size_t>(stages) * 6;
      std::vector<double> w(layers);
      for (std::size_t i = 0; i < layers; ++i) {
        const double u = rng.uniform(0.5, 1.5);
        if (skew[0] == 'u') {
          w[i] = u;
        } else if (skew[0] == 'z') {
          w[i] = 1.0 / (1.0 + static_cast<double>(i % 16));
        } else if (skew[0] == 'd') {
          w[i] = std::exp(-3.0 * static_cast<double>(i) /
                          static_cast<double>(layers));
        } else {
          w[i] = (i % 24 == 0) ? 8.0 : 0.25;
        }
      }
      balance::DiffusionRequest req;
      req.weights = w;
      const double total = std::accumulate(w.begin(), w.end(), 0.0);
      req.gamma = 1e-3 * total;

      const auto start = pipeline::StageMap::uniform(layers, stages);
      const auto res = balance::DiffusionBalancer{}.balance(req, start);
      const int bound = balance::DiffusionBalancer::lemma2_round_bound(
          stages, total, req.gamma);
      std::printf("%6d %8zu %10s %12d %14d %12.4f\n", stages, layers, skew,
                  res.rounds, bound,
                  res.phi_history.back() / std::max(1e-12,
                                                    res.phi_history.front()));
    }
  }
  return 0;
}
