// Figure 3 (Mixture of Experts panel): continual training of Mixtral-8x7b
// (aux-loss routing) and LLaMA-MoE-3.5B (S-BASE routing) on 128 simulated
// H100s (16-way DP x 8-way PP).
//
// Baselines: static Megatron-LM, static DeepSpeed, and Tutel (adaptive MoE
// system that mitigates routing skew without moving layers).  DynMo
// rebalances every iteration during backprop.  Paper: 1.21x (Mixtral) /
// 1.23x (LLaMA-MoE) over the best static, 1.18x/1.21x over Tutel; bubble
// ratio 25% -> 8%.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dynmo;
  bench::JsonRecorder rec("fig3_moe");
  const char* json_path = bench::json_path_arg(argc, argv);
  std::printf("Figure 3 — Mixture of Experts: tokens/sec on 128 simulated "
              "H100s (16-way DP x 8-way PP)\n");

  struct MoeCase {
    const char* name;
    model::MoeConfig cfg;
    dynamic::MoeRouting routing;
  };
  const MoeCase cases[] = {
      {"Mixtral 8x7b (aux-loss routing)", model::mixtral_8x7b_config(),
       dynamic::MoeRouting::AuxLoss},
      {"LLaMA-MoE-3.5B (S-BASE routing)", model::llama_moe_3_5b_config(),
       dynamic::MoeRouting::SBase},
  };

  for (const auto& c : cases) {
    auto moe_cfg = c.cfg;
    const auto model = model::make_moe(moe_cfg, c.name);
    Options opt;
    opt.session = bench::moe_cluster_config();
    opt.session.rebalance_interval = 1;
    opt.session.iterations = 1000;
    opt.session.sim_stride = 20;
    opt.moe.routing = c.routing;
    // Token-level routing is simulated per (layer, microbatch); 1k sampled
    // tokens per draw keep the bench fast with the same skew statistics.
    opt.moe.tokens_per_microbatch = 1024;

    const auto megatron = bench::run_config(
        model, UseCase::Moe, opt, runtime::BalancingMode::StaticUniform,
        balance::Algorithm::Partition, balance::BalanceBy::Time);
    const auto deepspeed = bench::run_config(
        model, UseCase::Moe, opt, runtime::BalancingMode::StaticParam,
        balance::Algorithm::Partition, balance::BalanceBy::Time);
    const auto tutel = bench::run_config(
        model, UseCase::Moe, opt, runtime::BalancingMode::Tutel,
        balance::Algorithm::Partition, balance::BalanceBy::Time);
    const auto part = bench::run_dynmo_best(model, UseCase::Moe, opt,
                                            balance::Algorithm::Partition);
    const auto diff = bench::run_dynmo_best(model, UseCase::Moe, opt,
                                            balance::Algorithm::Diffusion);

    const double best_static =
        std::max(megatron.tokens_per_sec, deepspeed.tokens_per_sec);
    const std::vector<bench::Row> rows = {{"Static (Megatron-LM)", megatron},
                                          {"Static (DeepSpeed)", deepspeed},
                                          {"Tutel", tutel},
                                          {"DynMo (Partition)", part},
                                          {"DynMo (Diffusion)", diff}};
    bench::print_table(c.name, rows, best_static);
    rec.add_case(c.name, rows, best_static);
    std::printf("bubble ratio: static %.1f%% -> DynMo %.1f%%  |  "
                "DynMo vs Tutel: %.2fx\n",
                100.0 * megatron.avg_bubble_ratio,
                100.0 * std::min(part.avg_bubble_ratio,
                                 diff.avg_bubble_ratio),
                std::max(part.tokens_per_sec, diff.tokens_per_sec) /
                    tutel.tokens_per_sec);
  }
  if (json_path != nullptr) rec.write(json_path);
  return 0;
}
