// Figure 3 (Gradual Pruning panel): GPT models pruned to 90% sparsity on
// the Zhu-Gupta cubic schedule (prune steps at iterations 3000..7000 every
// 1000, sparsity 52%/79%/90%, §5.1), trained with unstructured global
// magnitude pruning on Sputnik-backed SpMM.
//
// Series: Static (Megatron-LM) and Static (DeepSpeed) run the *same pruned
// model* on a fixed placement; DynMo rebalances after every pruning step.
// Paper speedups: 2.32x-2.84x (up to 3.18x).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dynmo;
  bench::JsonRecorder rec("fig3_pruning");
  const char* json_path = bench::json_path_arg(argc, argv);
  std::printf(
      "Figure 3 — Gradual Pruning: tokens/sec on 720 simulated H100s\n"
      "schedule: prune at iters 3000..7000 every 1000, final sparsity 90%%\n");

  for (std::size_t blocks : {24u, 32u, 40u, 48u}) {
    const auto model = model::make_gpt({.num_blocks = blocks,
                                        .include_embedding = false,
                                        .include_lm_head = false});
    Options opt;
    opt.session = bench::gpt_cluster_config_deep_stages();
    opt.session.rebalance_interval = 1000;  // every pruning step

    const auto megatron = bench::run_config(
        model, UseCase::GradualPruning, opt,
        runtime::BalancingMode::StaticUniform, balance::Algorithm::Partition,
        balance::BalanceBy::Time);
    const auto deepspeed = bench::run_config(
        model, UseCase::GradualPruning, opt,
        runtime::BalancingMode::StaticParam, balance::Algorithm::Partition,
        balance::BalanceBy::Time);
    const auto part = bench::run_dynmo_best(model, UseCase::GradualPruning,
                                            opt, balance::Algorithm::Partition);
    const auto diff = bench::run_dynmo_best(model, UseCase::GradualPruning,
                                            opt, balance::Algorithm::Diffusion);
    const auto part_rp =
        bench::run_dynmo_best(model, UseCase::GradualPruning, opt,
                              balance::Algorithm::Partition, true);
    const auto diff_rp =
        bench::run_dynmo_best(model, UseCase::GradualPruning, opt,
                              balance::Algorithm::Diffusion, true);

    const double best_static =
        std::max(megatron.tokens_per_sec, deepspeed.tokens_per_sec);
    const std::vector<bench::Row> rows = {
        {"Static (Megatron-LM)", megatron},
        {"Static (DeepSpeed)", deepspeed},
        {"DynMo (Partition) w/o re-packing", part},
        {"DynMo (Diffusion) w/o re-packing", diff},
        {"DynMo (Partition) + re-packing", part_rp},
        {"DynMo (Diffusion) + re-packing", diff_rp}};
    const std::string title = std::to_string(blocks) + " layers";
    bench::print_table(title, rows, best_static);
    rec.add_case(title, rows, best_static);
  }
  if (json_path != nullptr) rec.write(json_path);
  return 0;
}
