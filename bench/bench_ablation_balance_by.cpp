// Ablation (paper §5.1): balancing by measured layer *time* vs by
// *parameter count*, across the six dynamic-model cases.  The paper
// observes that time-based balancing consistently outperforms
// parameter-count balancing at every scale — parameters are a poor proxy
// once dynamism decouples load from size (frozen layers keep their params;
// sparse-attention cost has nothing to do with params at all).
#include "bench_common.hpp"

int main() {
  using namespace dynmo;
  std::printf("Ablation — balance by time vs by params (48-layer GPT, "
              "DynMo Partition)\n\n");
  std::printf("%-22s %14s %14s %10s\n", "use case", "by-param tok/s",
              "by-time tok/s", "time/param");

  const auto model = model::make_gpt({.num_blocks = 48,
                                      .include_embedding = false,
                                      .include_lm_head = false});
  struct Case {
    UseCase uc;
    std::int64_t interval;
    std::int64_t iters;
    std::int64_t stride;
  };
  const Case cases[] = {
      {UseCase::GradualPruning, 1000, 10000, 100},
      {UseCase::LayerFreezing, 300, 10000, 100},
      {UseCase::SparseAttention, 1, 1000, 10},
      {UseCase::EarlyExit, 100, 10000, 100},
      {UseCase::MixtureOfDepths, 1, 1000, 10},
  };
  for (const auto& c : cases) {
    Options opt;
    opt.session = bench::gpt_cluster_config_deep_stages();
    opt.session.rebalance_interval = c.interval;
    opt.session.iterations = c.iters;
    opt.session.sim_stride = c.stride;
    const auto by_param = bench::run_config(
        model, c.uc, opt, runtime::BalancingMode::DynMo,
        balance::Algorithm::Partition, balance::BalanceBy::Param);
    const auto by_time = bench::run_config(
        model, c.uc, opt, runtime::BalancingMode::DynMo,
        balance::Algorithm::Partition, balance::BalanceBy::Time);
    std::printf("%-22s %14.0f %14.0f %9.2fx\n", to_string(c.uc),
                by_param.tokens_per_sec, by_time.tokens_per_sec,
                by_time.tokens_per_sec / by_param.tokens_per_sec);
  }

  // MoE on its own cluster.
  {
    const auto moe = model::make_moe(model::mixtral_8x7b_config(), "m");
    Options opt;
    opt.session = bench::moe_cluster_config();
    opt.session.rebalance_interval = 1;
    opt.session.iterations = 500;
    opt.session.sim_stride = 10;
    opt.moe.tokens_per_microbatch = 1024;
    const auto by_param = bench::run_config(
        moe, UseCase::Moe, opt, runtime::BalancingMode::DynMo,
        balance::Algorithm::Partition, balance::BalanceBy::Param);
    const auto by_time = bench::run_config(
        moe, UseCase::Moe, opt, runtime::BalancingMode::DynMo,
        balance::Algorithm::Partition, balance::BalanceBy::Time);
    std::printf("%-22s %14.0f %14.0f %9.2fx\n", "moe (mixtral)",
                by_param.tokens_per_sec, by_time.tokens_per_sec,
                by_time.tokens_per_sec / by_param.tokens_per_sec);
  }
  return 0;
}
