// Figure 3 (Early Exit panel): end-to-end training throughput of GPT
// models with CALM/ADP-C-style early exit, 24/32/40/48 layers.
//
// Series: "No Early Exit" baseline (static placement, full compute),
// DynMo (Partition) and DynMo (Diffusion), each with and without
// re-packing.  Paper speedups over the no-exit baseline: 2.39x-4.83x,
// growing with depth; static placement of the early-exit model captures
// almost none of the compute savings (its bubbles grow ~5x, Fig. 1).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dynmo;
  bench::JsonRecorder rec("fig3_early_exit");
  const char* json_path = bench::json_path_arg(argc, argv);
  std::printf("Figure 3 — Early Exit: tokens/sec on 720 simulated H100s\n");

  for (std::size_t blocks : {24u, 32u, 40u, 48u}) {
    const auto model = model::make_gpt({.num_blocks = blocks,
                                        .include_embedding = false,
                                        .include_lm_head = false});
    Options opt;
    opt.session = bench::gpt_cluster_config();
    opt.session.rebalance_interval = 100;

    const auto no_exit = bench::run_config(
        model, UseCase::Static, opt, runtime::BalancingMode::StaticUniform,
        balance::Algorithm::Partition, balance::BalanceBy::Time);
    const auto static_exit = bench::run_config(
        model, UseCase::EarlyExit, opt, runtime::BalancingMode::StaticUniform,
        balance::Algorithm::Partition, balance::BalanceBy::Time);
    const auto part = bench::run_dynmo_best(model, UseCase::EarlyExit, opt,
                                            balance::Algorithm::Partition);
    const auto diff = bench::run_dynmo_best(model, UseCase::EarlyExit, opt,
                                            balance::Algorithm::Diffusion);
    auto opt_repack = opt;
    opt_repack.session.repack_interval = 1000;
    const auto part_rp =
        bench::run_dynmo_best(model, UseCase::EarlyExit, opt_repack,
                              balance::Algorithm::Partition, true);
    const auto diff_rp =
        bench::run_dynmo_best(model, UseCase::EarlyExit, opt_repack,
                              balance::Algorithm::Diffusion, true);

    const std::vector<bench::Row> rows = {
        {"No Early Exit (static)", no_exit},
        {"Early exit, static placement", static_exit},
        {"DynMo (Partition) w/o re-packing", part},
        {"DynMo (Diffusion) w/o re-packing", diff},
        {"DynMo (Partition) + re-packing", part_rp},
        {"DynMo (Diffusion) + re-packing", diff_rp}};
    const std::string title = std::to_string(blocks) + " layers";
    bench::print_table(title, rows, no_exit.tokens_per_sec);
    rec.add_case(title, rows, no_exit.tokens_per_sec);
  }
  if (json_path != nullptr) rec.write(json_path);
  return 0;
}
