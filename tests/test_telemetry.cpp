// Telemetry round-trip: TraceWriter -> TraceReader, session traces, the
// bit-for-bit replay contract (docs/TELEMETRY.md), and the observer-effect
// guarantee that a disabled trace changes nothing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "balance/replay.hpp"
#include "comm/cost_model.hpp"
#include "core/error.hpp"
#include "dynamic/dynamism.hpp"
#include "dynmo/dynmo.hpp"
#include "model/layer.hpp"
#include "repack/elastic.hpp"
#include "runtime/session.hpp"
#include "runtime/threaded.hpp"
#include "telemetry/trace_reader.hpp"
#include "telemetry/trace_writer.hpp"

namespace dynmo {
namespace {

std::string trace_dir(const char* name) {
  return ::testing::TempDir() + "dynmo_trace_" + name;
}

// ------------------------------------------------------------ writer/reader

TEST(Telemetry, WriterReaderRoundTrip) {
  const auto dir = trace_dir("roundtrip");

  telemetry::RunInfo run;
  run.producer = "session";
  run.iterations = 100;
  run.sim_stride = 2;
  run.rebalance_interval = 1;
  run.pipeline_stages = 4;
  run.data_parallel = 2;
  run.seed = 0xfeedULL;
  run.mode = "DynMo";
  run.algorithm = "diffusion";
  run.balance_by = "time";
  run.mem_capacity = 80.0 * (1ull << 30);
  run.payoff_window_iters = 20.0;
  run.stage_to_rank = {0, 2, 4, 6};
  run.capacities = {1.0, 1.0, 0.5, 0.5};
  run.layer_params = {1e6, 2e6};

  telemetry::IterationRow it;
  it.iter = 42;
  it.time_s = 1.0 / 3.0;  // not exactly representable in short decimal
  it.event_s = 1e-17;
  it.bottleneck_s = 0.1;
  it.idleness = 0.25;
  it.bubble_ratio = 0.0625;
  it.active_workers = 4;
  it.compute_fraction = 0.9;
  it.rebalanced = true;
  it.stall_s = 6.02214076e23;

  telemetry::StageLoadRow sl;
  sl.iter = 42;
  sl.stage = 3;
  sl.rank = 6;
  sl.layer_begin = 5;
  sl.layer_end = 8;
  sl.load_s = 0.3;
  sl.mem_bytes = 1.5e9;
  sl.layer_s = {0.1, 1.0 / 7.0, -0.0};
  sl.layer_mem = {5e8, 5e8, 5e8};

  telemetry::RebalanceDecisionRow rd;
  rd.iter = 42;
  rd.trigger = "periodic";
  rd.algorithm = "diff\"usion\\n";  // exercises JSON string escaping
  rd.balance_by = "time";
  rd.decision = "accepted";
  rd.projected_gain_s = 0.02;
  rd.exposed_cost_s = 0.005;
  rd.candidate_bytes = 1e9;
  rd.migrated_bytes = 1e9;
  rd.migrated_layers = 2;
  rd.imbalance_before = 1.4;
  rd.imbalance_after = 1.05;
  rd.decide_s = 3.1e-4;

  telemetry::MigrationRow mg;
  mg.iter = 42;
  mg.trigger = "periodic";
  mg.layer = 7;
  mg.from_stage = 3;
  mg.to_stage = 2;
  mg.bytes = 5e8;

  telemetry::ElasticTransitionRow et;
  et.iter = 500;
  et.kind = "shrink";
  et.accepted = true;
  et.workers_before = 8;
  et.workers_after = 5;
  et.stall_s = 2.75;
  et.alpha_s = 0.5;
  et.bootstrap_s = 0.25;
  et.ckpt_write_s = 1.0;
  et.ckpt_read_s = 1.0;
  et.projected_gain_s = 30.0;
  et.migrated_bytes = 0.0;

  telemetry::FaultEventRow fe;
  fe.iter = 450;
  fe.kind = "worker_loss";
  fe.worker = 3;
  fe.multiplier = 1.0;
  fe.workers_before = 8;
  fe.workers_after = 7;
  fe.stall_s = 4.25;
  fe.alpha_s = 0.5;
  fe.bootstrap_s = 0.25;
  fe.ckpt_write_s = 1.0;
  fe.ckpt_read_s = 1.0;
  fe.lost_work_s = 1.5;
  fe.lost_iters = 50;

  telemetry::FleetDecisionRow fd;
  fd.time_s = 123.5;
  fd.job = "job-a";
  fd.kind = "preempt";
  fd.accepted = true;
  fd.priority = 2;
  fd.gpus_before = 8;
  fd.gpus_after = 5;
  fd.pool_free_before = 0;
  fd.pool_free_after = 3;
  fd.fair_share = 5.25;
  fd.projected_gain_gpu_s = 900.0;
  fd.exposed_cost_gpu_s = 120.0;
  fd.victim = "job-b";

  {
    telemetry::TelemetryConfig cfg;
    cfg.dir = dir;
    telemetry::TraceWriter writer(cfg, run);
    writer.write_iteration(it);
    writer.write_stage_load(sl);
    writer.write_rebalance_decision(rd);
    writer.write_migration(mg);
    writer.write_elastic_transition(et);
    writer.write_fault_event(fe);
    writer.write_fleet_decision(fd);
    EXPECT_EQ(writer.rows_written("iterations"), 1);
    EXPECT_EQ(writer.rows_written("elastic_transitions"), 1);
    EXPECT_EQ(writer.rows_written("fleet_decisions"), 1);
    writer.finalize();
  }

  telemetry::TraceReader reader(dir);
  EXPECT_EQ(reader.catalog().format, telemetry::kTraceFormat);
  EXPECT_EQ(reader.catalog().schema_version, telemetry::kSchemaVersion);
  EXPECT_EQ(reader.catalog().tables.size(), 7u);

  const auto& r = reader.run();
  EXPECT_EQ(r.producer, run.producer);
  EXPECT_EQ(r.iterations, run.iterations);
  EXPECT_EQ(r.sim_stride, run.sim_stride);
  EXPECT_EQ(r.seed, run.seed);
  EXPECT_EQ(r.mode, run.mode);
  EXPECT_EQ(r.stage_to_rank, run.stage_to_rank);
  EXPECT_EQ(r.capacities, run.capacities);
  EXPECT_EQ(r.layer_params, run.layer_params);
  EXPECT_EQ(r.mem_capacity, run.mem_capacity);
  EXPECT_EQ(r.payoff_window_iters, run.payoff_window_iters);

  // Typed rows survive the JSONL round trip exactly, doubles included.
  ASSERT_EQ(reader.iterations().size(), 1u);
  EXPECT_EQ(reader.iterations()[0], it);
  ASSERT_EQ(reader.stage_loads().size(), 1u);
  EXPECT_EQ(reader.stage_loads()[0], sl);
  ASSERT_EQ(reader.rebalance_decisions().size(), 1u);
  EXPECT_EQ(reader.rebalance_decisions()[0], rd);
  ASSERT_EQ(reader.migrations().size(), 1u);
  EXPECT_EQ(reader.migrations()[0], mg);
  ASSERT_EQ(reader.elastic_transitions().size(), 1u);
  EXPECT_EQ(reader.elastic_transitions()[0], et);
  ASSERT_EQ(reader.fault_events().size(), 1u);
  EXPECT_EQ(reader.fault_events()[0], fe);
  ASSERT_EQ(reader.fleet_decisions().size(), 1u);
  EXPECT_EQ(reader.fleet_decisions()[0], fd);
}

TEST(Telemetry, ReaderRejectsMissingDirectory) {
  EXPECT_THROW(telemetry::TraceReader("/nonexistent/dynmo_trace"), Error);
}

// ------------------------------------------------------------ session trace

Options traced_options(const std::string& dir) {
  Options opt;
  opt.session.pipeline_stages = 8;
  opt.session.micro_batch = 2;
  opt.session.num_microbatches = 16;
  opt.session.iterations = 400;
  opt.session.sim_stride = 10;
  opt.session.rebalance_interval = 1;
  opt.session.mode = runtime::BalancingMode::DynMo;
  opt.session.algorithm = balance::Algorithm::Diffusion;
  opt.session.payoff_window_iters = 20.0;
  opt.session.telemetry.dir = dir;
  return opt;
}

model::ModelDesc traced_model() {
  return model::make_gpt({.num_blocks = 16,
                          .include_embedding = false,
                          .include_lm_head = false});
}

TEST(Telemetry, SessionTraceMatchesCatalog) {
  const auto dir = trace_dir("session");
  const auto opt = traced_options(dir);
  Session session(traced_model(), UseCase::SparseAttention, opt);
  const auto result = session.run();
  EXPECT_GT(result.tokens_per_sec, 0.0);

  telemetry::TraceReader reader(dir);
  EXPECT_EQ(reader.run().producer, "session");
  EXPECT_EQ(reader.run().iterations, 400);
  EXPECT_EQ(reader.run().pipeline_stages, 8);
  EXPECT_EQ(reader.run().rebalance_interval, 1);

  // 400 iterations at stride 10 -> 40 simulated frames.
  const auto iterations = reader.iterations();
  const auto stage_loads = reader.stage_loads();
  ASSERT_EQ(iterations.size(), 40u);
  EXPECT_EQ(stage_loads.size(), 40u * 8u);

  // Catalog row counts agree with what the files actually hold.
  for (const auto& t : reader.catalog().tables) {
    if (t.name == "iterations") EXPECT_EQ(t.rows, 40);
    if (t.name == "stage_loads") EXPECT_EQ(t.rows, 40 * 8);
    if (t.name == "rebalance_decisions") {
      EXPECT_EQ(t.rows, static_cast<std::int64_t>(
                            reader.rebalance_decisions().size()));
    }
  }

  // Every frame's stage rows tile the layer range contiguously.
  for (std::size_t f = 0; f < 40; ++f) {
    std::int64_t next = 0;
    for (std::size_t s = 0; s < 8; ++s) {
      const auto& row = stage_loads[f * 8 + s];
      EXPECT_EQ(row.iter, iterations[f].iter);
      EXPECT_EQ(row.stage, static_cast<std::int64_t>(s));
      EXPECT_EQ(row.layer_begin, next);
      next = row.layer_end;
      EXPECT_EQ(row.layer_s.size(),
                static_cast<std::size_t>(row.layer_end - row.layer_begin));
    }
    EXPECT_EQ(next, 16);  // all layers covered
  }

  // Every-iteration cadence: each simulated frame is a rebalance point.
  for (const auto& row : iterations) EXPECT_TRUE(row.rebalanced);
  EXPECT_EQ(static_cast<int>(reader.rebalance_decisions().size()),
            result.rebalance_count);
}

TEST(Telemetry, ReplayReproducesSessionBitForBit) {
  const auto dir = trace_dir("replay");
  Session session(traced_model(), UseCase::SparseAttention,
                  traced_options(dir));
  const auto recorded = session.run();

  telemetry::TraceReader reader(dir);
  const comm::CostModel net{};
  const auto loads = reader.replayed_loads();
  const auto replayed = balance::replay(loads, reader.replay_config(), net);

  const auto iterations = reader.iterations();
  ASSERT_EQ(replayed.bottleneck_s.size(), iterations.size());
  for (std::size_t i = 0; i < iterations.size(); ++i) {
    // Exact double equality: the determinism contract extended to traces.
    EXPECT_EQ(replayed.bottleneck_s[i], iterations[i].bottleneck_s)
        << "frame " << i << " (iter " << iterations[i].iter << ")";
  }
  EXPECT_EQ(replayed.maps_accepted, recorded.maps_accepted);
  EXPECT_EQ(replayed.maps_rejected_payoff, recorded.maps_rejected_payoff);
}

TEST(Telemetry, DifferentConfigReplayAnswersWhatIf) {
  const auto dir = trace_dir("whatif");
  Session session(traced_model(), UseCase::SparseAttention,
                  traced_options(dir));
  (void)session.run();

  telemetry::TraceReader reader(dir);
  const comm::CostModel net{};
  const auto loads = reader.replayed_loads();
  const auto base = balance::replay(loads, reader.replay_config(), net);

  // Static-map counterfactual: same history, never rebalance.
  auto static_cfg = reader.replay_config();
  static_cfg.rebalance_interval = 0;
  const auto static_run = balance::replay(loads, static_cfg, net);
  EXPECT_EQ(static_run.rebalance_count, 0);
  EXPECT_EQ(static_run.maps_accepted, 0);
  EXPECT_EQ(static_run.migration_bytes, 0.0);
  ASSERT_EQ(static_run.bottleneck_s.size(), base.bottleneck_s.size());
  if (base.maps_accepted > 0) {
    // The recorded run moved layers for a reason: trajectories diverge.
    EXPECT_NE(static_run.total_bottleneck_s, base.total_bottleneck_s);
  }

  // Partition counterfactual on the same history stays well-formed.
  auto part_cfg = reader.replay_config();
  part_cfg.rebalance.algorithm = balance::Algorithm::Partition;
  const auto part = balance::replay(loads, part_cfg, net);
  EXPECT_EQ(part.bottleneck_s.size(), base.bottleneck_s.size());
  EXPECT_GT(part.total_bottleneck_s, 0.0);
  EXPECT_GT(part.rebalance_count, 0);
}

TEST(Telemetry, DisabledTelemetryDoesNotPerturbResults) {
  const auto dir = trace_dir("observer");
  auto on = traced_options(dir);
  auto off = on;
  off.session.telemetry.dir.clear();

  Session with_trace(traced_model(), UseCase::SparseAttention, on);
  const auto a = with_trace.run();
  Session without_trace(traced_model(), UseCase::SparseAttention, off);
  const auto b = without_trace.run();

  // Identical decision ledger either way: recording is pure observation.
  // (Time totals carry the *measured* decide wall-clock — jittery between
  // any two runs, telemetry or not — so the modeled remainder is compared
  // after subtracting it.)
  EXPECT_EQ(a.rebalance_count, b.rebalance_count);
  EXPECT_EQ(a.maps_accepted, b.maps_accepted);
  EXPECT_EQ(a.maps_rejected_payoff, b.maps_rejected_payoff);
  EXPECT_EQ(a.intra_node_migration_bytes, b.intra_node_migration_bytes);
  EXPECT_EQ(a.inter_node_migration_bytes, b.inter_node_migration_bytes);
  EXPECT_EQ(a.final_map.boundaries(), b.final_map.boundaries());
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i].idleness, b.samples[i].idleness);
    EXPECT_EQ(a.samples[i].rebalanced, b.samples[i].rebalanced);
  }
  const double a_modeled = a.total_time_s - a.overhead.decide_s;
  const double b_modeled = b.total_time_s - b.overhead.decide_s;
  EXPECT_NEAR(a_modeled, b_modeled, 1e-9 * b_modeled);
}

TEST(Telemetry, PerLayerOffReplayThrows) {
  const auto dir = trace_dir("nolayers");
  auto opt = traced_options(dir);
  opt.session.telemetry.per_layer = false;
  opt.session.iterations = 100;
  Session session(traced_model(), UseCase::SparseAttention, opt);
  (void)session.run();

  telemetry::TraceReader reader(dir);
  // Stage totals are still there...
  EXPECT_FALSE(reader.stage_loads().empty());
  EXPECT_TRUE(reader.stage_loads()[0].layer_s.empty());
  // ...but replay needs the per-layer arrays.
  EXPECT_THROW((void)reader.replayed_loads(), Error);
}

// ----------------------------------------------------------- threaded trace

TEST(Telemetry, ThreadedRuntimeRecordsTrace) {
  const auto dir = trace_dir("threaded");
  runtime::ThreadedConfig cfg;
  cfg.workers = 4;
  cfg.num_layers = 8;
  cfg.hidden = 16;
  cfg.batch_rows = 3;
  cfg.microbatches = 4;
  cfg.telemetry.dir = dir;

  runtime::PlanPhase p1, p2;
  p1.map = pipeline::StageMap::uniform(8, 4);  // {0,2,4,6,8}
  p1.iterations = 3;
  p2.map = pipeline::StageMap::from_boundaries({0, 3, 5, 6, 8});
  p2.iterations = 2;

  runtime::ThreadedPipeline pipe(cfg);
  const auto report = pipe.run({p1, p2});
  EXPECT_EQ(report.iterations_run, 5);

  telemetry::TraceReader reader(dir);
  EXPECT_EQ(reader.run().producer, "threaded");
  EXPECT_EQ(reader.run().iterations, 5);
  EXPECT_EQ(reader.run().pipeline_stages, 4);

  const auto iterations = reader.iterations();
  ASSERT_EQ(iterations.size(), 5u);
  for (const auto& row : iterations) {
    EXPECT_GT(row.time_s, 0.0);  // measured wall-clock
    EXPECT_EQ(row.active_workers, 4);
  }

  // uniform{0,2,4,6,8} -> {0,3,5,6,8} re-homes layers 2 and 4 only.
  const auto migrations = reader.migrations();
  ASSERT_EQ(migrations.size(), 2u);
  std::vector<std::int64_t> moved;  // senders race: order is thread order
  for (const auto& m : migrations) {
    EXPECT_EQ(m.trigger, "phase");
    EXPECT_GT(m.bytes, 0.0);
    EXPECT_NE(m.from_stage, m.to_stage);
    moved.push_back(m.layer);
  }
  std::sort(moved.begin(), moved.end());
  EXPECT_EQ(moved, (std::vector<std::int64_t>{2, 4}));
}

// ------------------------------------------------------- elastic transitions

/// Same spike shape as tests/test_elastic.cpp: full depth, a concentrated
/// lull, full depth again — drives one shrink and one expand.
class TelemetrySpikeEngine : public dynamic::DynamismEngine {
 public:
  TelemetrySpikeEngine(std::int64_t lull_begin, std::int64_t lull_end,
                       std::size_t heavy_layers)
      : begin_(lull_begin), end_(lull_end), heavy_(heavy_layers) {}

  std::string name() const override { return "telemetry-spike"; }
  bool is_dynamism_point(std::int64_t iter) const override {
    return iter == begin_ || iter == end_;
  }
  void step(std::int64_t iter,
            std::span<model::LayerState> states) override {
    const bool lull = iter >= begin_ && iter < end_;
    for (std::size_t l = heavy_; l < states.size(); ++l) {
      states[l].compute_scale = lull ? 0.02 : 1.0;
    }
  }
  std::int64_t recommended_rebalance_interval() const override { return 100; }

 private:
  std::int64_t begin_, end_;
  std::size_t heavy_;
};

TEST(Telemetry, ElasticSessionRecordsTransitions) {
  const auto dir = trace_dir("elastic");
  runtime::SessionConfig cfg;
  cfg.pipeline_stages = 8;
  cfg.micro_batch = 2;
  cfg.num_microbatches = 16;
  cfg.iterations = 3000;
  cfg.sim_stride = 10;
  cfg.rebalance_interval = 100;
  cfg.mode = runtime::BalancingMode::DynMo;
  cfg.algorithm = balance::Algorithm::Partition;
  cfg.balance_by = balance::BalanceBy::Time;
  cfg.elastic.enabled = true;
  cfg.elastic.interval = 500;
  cfg.elastic.min_workers = 2;
  cfg.elastic.payoff_window_iters = 600.0;
  cfg.elastic.restart_alpha_s = 0.5;
  cfg.elastic.checkpoint_bw = 16.0 * 1024 * 1024 * 1024;
  repack::MockEckCluster eck(8);
  cfg.elastic.cluster = &eck;
  cfg.telemetry.dir = dir;

  const auto m = model::make_gpt({.num_blocks = 24,
                                  .include_embedding = false,
                                  .include_lm_head = false});
  TelemetrySpikeEngine engine(1000, 2000, 4);
  runtime::TrainingSession session(m, cfg, &engine);
  const auto r = session.run();
  ASSERT_GE(r.shrinks, 1);
  ASSERT_GE(r.expands, 1);

  telemetry::TraceReader reader(dir);
  const auto transitions = reader.elastic_transitions();
  int shrinks = 0, expands = 0;
  double stall_total = 0.0;
  for (const auto& t : transitions) {
    if (!t.accepted) continue;
    if (t.kind == "shrink") {
      ++shrinks;
      EXPECT_LT(t.workers_after, t.workers_before);
    }
    if (t.kind == "expand") {
      ++expands;
      EXPECT_GT(t.workers_after, t.workers_before);
    }
    if (t.kind == "shrink" || t.kind == "expand") {
      // The itemized breakdown sums to the charged stall.
      EXPECT_DOUBLE_EQ(
          t.stall_s,
          t.alpha_s + t.bootstrap_s + t.ckpt_write_s + t.ckpt_read_s);
      stall_total += t.stall_s;
    }
  }
  EXPECT_EQ(shrinks, r.shrinks);
  EXPECT_EQ(expands, r.expands);
  EXPECT_DOUBLE_EQ(stall_total, r.restart_stall_s);

  // The per-iteration ledger mirrors the transitions: the stall shows up
  // on the samples (and trace rows) of the iterations that restarted.
  double sample_stall = 0.0;
  for (const auto& s : r.samples) sample_stall += s.stall_s;
  EXPECT_GE(sample_stall, stall_total);
  double row_stall = 0.0;
  for (const auto& row : reader.iterations()) row_stall += row.stall_s;
  EXPECT_DOUBLE_EQ(row_stall, r.restart_stall_s);
}

}  // namespace
}  // namespace dynmo
