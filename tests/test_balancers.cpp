// Unit and property tests for the Partition and Diffusion balancers —
// including the Lemma-1/Lemma-2 claims: the partition balancer achieves the
// optimal contiguous bottleneck (exhaustively verified on small instances),
// and the diffusion balancer's potential is monotone non-increasing and
// converges within the Lemma-2 round bound.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/error.hpp"

#include "balance/diffusion.hpp"
#include "balance/partition.hpp"
#include "core/rng.hpp"
#include "core/stats.hpp"

namespace dynmo::balance {
namespace {

/// Brute-force optimal contiguous bottleneck for small instances.
double brute_force_bottleneck(std::span<const double> w, int stages) {
  const std::size_t n = w.size();
  if (stages == 1) return std::accumulate(w.begin(), w.end(), 0.0);
  double best = std::numeric_limits<double>::infinity();
  // Enumerate first-stage cut and recurse.
  std::vector<double> prefix(n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + w[i];
  // DP over (position, stages left).
  std::vector<std::vector<double>> dp(
      n + 1, std::vector<double>(static_cast<std::size_t>(stages) + 1,
                                 std::numeric_limits<double>::infinity()));
  dp[n][0] = 0.0;
  for (int k = 1; k <= stages; ++k) {
    for (std::size_t i = 0; i <= n; ++i) {
      for (std::size_t j = i; j <= n; ++j) {
        const double stage = prefix[j] - prefix[i];
        const double rest = dp[j][static_cast<std::size_t>(k - 1)];
        dp[i][static_cast<std::size_t>(k)] =
            std::min(dp[i][static_cast<std::size_t>(k)],
                     std::max(stage, rest));
      }
    }
  }
  best = dp[0][static_cast<std::size_t>(stages)];
  return best;
}

std::vector<double> random_weights(Rng& rng, std::size_t n, int pattern) {
  std::vector<double> w(n);
  for (std::size_t i = 0; i < n; ++i) {
    switch (pattern) {
      case 0: w[i] = rng.uniform(0.1, 2.0); break;
      case 1: w[i] = std::exp(-3.0 * static_cast<double>(i) / n); break;
      case 2: w[i] = (i % 5 == 0) ? 5.0 : 0.2; break;
      default: w[i] = 1.0; break;
    }
  }
  return w;
}

class PartitionOptimality
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(PartitionOptimality, MatchesBruteForce) {
  const auto [n, stages, pattern] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n * 7 + stages * 3 + pattern));
  const auto w = random_weights(rng, static_cast<std::size_t>(n), pattern);

  PartitionRequest req;
  req.weights = w;
  req.num_stages = stages;
  const auto res = PartitionBalancer{}.balance(req);

  const double optimal = brute_force_bottleneck(w, stages);
  EXPECT_NEAR(res.bottleneck, optimal, 1e-9 + 1e-9 * optimal)
      << "n=" << n << " stages=" << stages << " pattern=" << pattern;
  EXPECT_NEAR(PartitionBalancer::optimal_bottleneck(w, stages), optimal,
              1e-9 + 1e-9 * optimal);
  // Structural sanity.
  EXPECT_EQ(res.map.num_layers(), w.size());
  EXPECT_EQ(res.map.num_stages(), stages);
  EXPECT_TRUE(res.memory_feasible);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PartitionOptimality,
    ::testing::Combine(::testing::Values(1, 3, 8, 13, 20),
                       ::testing::Values(1, 2, 4, 6),
                       ::testing::Values(0, 1, 2, 3)));

TEST(Partition, RespectsMemoryCapacity) {
  PartitionRequest req;
  req.weights = {1, 1, 1, 1, 1, 1};
  req.memory_bytes = {10, 10, 10, 10, 10, 10};
  req.mem_capacity = 25;  // at most 2 layers per stage
  req.num_stages = 3;
  const auto res = PartitionBalancer{}.balance(req);
  EXPECT_TRUE(res.memory_feasible);
  const auto mem = res.map.stage_loads(req.memory_bytes);
  for (double m : mem) EXPECT_LE(m, 25.0);
}

TEST(Partition, FlagsInfeasibleMemory) {
  PartitionRequest req;
  req.weights = {1, 1};
  req.memory_bytes = {30, 30};  // single layer exceeds capacity
  req.mem_capacity = 25;
  req.num_stages = 2;
  const auto res = PartitionBalancer{}.balance(req);
  EXPECT_FALSE(res.memory_feasible);
}

TEST(Partition, RejectsEmptyInput) {
  PartitionRequest req;
  req.num_stages = 2;
  EXPECT_THROW((void)PartitionBalancer{}.balance(req), Error);
}

TEST(Diffusion, PotentialDefinition) {
  // phi = sum over all pairs |x_u - x_v|.
  EXPECT_DOUBLE_EQ(DiffusionBalancer::potential(std::vector<double>{1, 3}),
                   2.0);
  EXPECT_DOUBLE_EQ(
      DiffusionBalancer::potential(std::vector<double>{1, 2, 4}),
      1 + 3 + 2);
  EXPECT_DOUBLE_EQ(DiffusionBalancer::potential(std::vector<double>{5, 5}),
                   0.0);
}

class DiffusionConvergence
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DiffusionConvergence, PhiMonotoneAndNearOptimal) {
  const auto [stages, pattern] = GetParam();
  Rng rng(static_cast<std::uint64_t>(stages * 31 + pattern));
  const auto n = static_cast<std::size_t>(stages) * 5;
  const auto w = random_weights(rng, n, pattern);

  DiffusionRequest req;
  req.weights = w;
  const auto start = pipeline::StageMap::uniform(n, stages);
  const auto res = DiffusionBalancer{}.balance(req, start);

  // Reported potential history is monotone non-increasing (Lemma 2).
  for (std::size_t i = 1; i < res.phi_history.size(); ++i) {
    EXPECT_LE(res.phi_history[i], res.phi_history[i - 1] + 1e-9);
  }
  // Round count within the Lemma-2 bound.
  const double total = std::accumulate(w.begin(), w.end(), 0.0);
  const double gamma = 1e-3 * total;
  EXPECT_LE(res.rounds,
            DiffusionBalancer::lemma2_round_bound(stages, total, gamma));

  // Final bottleneck within one max layer weight of the partition optimum
  // (whole-layer granularity bound).
  const double opt = PartitionBalancer::optimal_bottleneck(w, stages);
  const double max_w = *std::max_element(w.begin(), w.end());
  const auto loads = res.map.stage_loads(w);
  const double bottleneck = *std::max_element(loads.begin(), loads.end());
  EXPECT_LE(bottleneck, opt + max_w + 1e-9);
  // Never worse than the uniform start.
  const auto start_loads = start.stage_loads(w);
  EXPECT_LE(bottleneck,
            *std::max_element(start_loads.begin(), start_loads.end()) + 1e-9);
  // Map structural sanity.
  EXPECT_EQ(res.map.num_layers(), n);
  EXPECT_EQ(res.map.num_stages(), stages);
}

INSTANTIATE_TEST_SUITE_P(Grid, DiffusionConvergence,
                         ::testing::Combine(::testing::Values(2, 4, 8, 16),
                                            ::testing::Values(0, 1, 2, 3)));

TEST(Diffusion, ConvergesOnAlreadyBalanced) {
  DiffusionRequest req;
  req.weights = std::vector<double>(12, 1.0);
  const auto start = pipeline::StageMap::uniform(12, 4);
  const auto res = DiffusionBalancer{}.balance(req, start);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.map, start);
  EXPECT_EQ(res.layer_moves, 0);
}

TEST(Diffusion, RespectsMemoryCapacity) {
  DiffusionRequest req;
  req.weights = {4, 1, 1, 1};          // heavy first layer
  req.memory_bytes = {10, 10, 10, 10};
  req.mem_capacity = 20;               // max two layers anywhere
  const auto start = pipeline::StageMap::uniform(4, 2);
  const auto res = DiffusionBalancer{}.balance(req, start);
  const auto mem = res.map.stage_loads(req.memory_bytes);
  for (double m : mem) EXPECT_LE(m, 20.0);
}

TEST(Diffusion, EscapesGapGreedyLocalOptimum) {
  // Smoothly decaying loads: naive pairwise gap-greedy exchange stalls at
  // the uniform split; flow-based diffusion must do better.
  std::vector<double> w(32);
  for (std::size_t i = 0; i < w.size(); ++i) {
    w[i] = std::exp(-2.5 * static_cast<double>(i) / w.size());
  }
  DiffusionRequest req;
  req.weights = w;
  const auto start = pipeline::StageMap::uniform(w.size(), 8);
  const auto res = DiffusionBalancer{}.balance(req, start);
  const auto start_loads = start.stage_loads(w);
  const auto end_loads = res.map.stage_loads(w);
  EXPECT_LT(load_imbalance(end_loads), 0.5 * load_imbalance(start_loads));
}

TEST(Diffusion, Lemma2BoundGrowsWithN) {
  const int b4 = DiffusionBalancer::lemma2_round_bound(4, 100.0, 0.1);
  const int b16 = DiffusionBalancer::lemma2_round_bound(16, 100.0, 0.1);
  EXPECT_GT(b16, b4);
  EXPECT_GT(b4, 0);
}

}  // namespace
}  // namespace dynmo::balance
