// Unit and property tests for the pipeline-schedule simulator.
#include <gtest/gtest.h>

#include <numeric>

#include "core/rng.hpp"
#include "pipeline/schedule.hpp"

namespace dynmo::pipeline {
namespace {

StageCosts uniform_costs(int stages, int microbatches, double fwd,
                         double bwd_in, double bwd_w, double send = 0.0) {
  StageCosts c(stages, microbatches);
  for (int s = 0; s < stages; ++s) c.set_stage(s, fwd, bwd_in, bwd_w);
  for (int s = 0; s + 1 < stages; ++s) c.send(s) = send;
  return c;
}

TEST(Schedule, SingleStageIsSumOfWork) {
  const auto c = uniform_costs(1, 4, 1.0, 1.0, 1.0);
  for (auto kind : {ScheduleKind::GPipe, ScheduleKind::OneFOneB,
                    ScheduleKind::ZbH1}) {
    const auto r = simulate(kind, c);
    EXPECT_DOUBLE_EQ(r.makespan_s, 12.0) << to_string(kind);
    EXPECT_DOUBLE_EQ(r.busy_s[0], 12.0);
    EXPECT_DOUBLE_EQ(r.avg_idleness(), 0.0);
  }
}

TEST(Schedule, BusyEqualsTotalWork) {
  Rng rng(5);
  StageCosts c(4, 8);
  for (int s = 0; s < 4; ++s) {
    for (int mb = 0; mb < 8; ++mb) {
      c.fwd(s, mb) = rng.uniform(0.5, 2.0);
      c.bwd_input(s, mb) = rng.uniform(0.5, 2.0);
      c.bwd_weight(s, mb) = rng.uniform(0.5, 2.0);
    }
  }
  for (auto kind : {ScheduleKind::GPipe, ScheduleKind::OneFOneB,
                    ScheduleKind::ZbH1}) {
    const auto r = simulate(kind, c);
    const double busy =
        std::accumulate(r.busy_s.begin(), r.busy_s.end(), 0.0);
    EXPECT_NEAR(busy, c.total_work(), 1e-9) << to_string(kind);
    EXPECT_GE(r.makespan_s, c.total_work() / 4.0);
  }
}

TEST(Schedule, BubbleOrderingGPipeWorst) {
  // Balanced stages, m = S: GPipe >= 1F1B >= ZB-H1 in bubble ratio.
  const auto c = uniform_costs(8, 8, 1.0, 1.0, 1.0, 0.0);
  const auto gpipe = simulate(ScheduleKind::GPipe, c);
  const auto f1b1 = simulate(ScheduleKind::OneFOneB, c);
  const auto zb = simulate(ScheduleKind::ZbH1, c);
  EXPECT_GE(gpipe.bubble_ratio(), f1b1.bubble_ratio() - 1e-9);
  EXPECT_GE(f1b1.bubble_ratio(), zb.bubble_ratio() - 1e-9);
  EXPECT_GT(zb.bubble_ratio(), 0.0);  // wind-up can never fully vanish
}

TEST(Schedule, ManyMicrobatchesShrinkBubble) {
  const auto small = simulate(ScheduleKind::OneFOneB,
                              uniform_costs(4, 4, 1, 1, 1));
  const auto large = simulate(ScheduleKind::OneFOneB,
                              uniform_costs(4, 64, 1, 1, 1));
  EXPECT_LT(large.bubble_ratio(), small.bubble_ratio());
  EXPECT_LT(large.bubble_ratio(), 0.10);
}

TEST(Schedule, ZeroBubbleFillsWithWeightGrad) {
  // With wgrad split out, ZB-H1 strictly beats 1F1B on the same costs.
  const auto c = uniform_costs(8, 16, 1.0, 1.0, 1.0);
  const auto f1b1 = simulate(ScheduleKind::OneFOneB, c);
  const auto zb = simulate(ScheduleKind::ZbH1, c);
  EXPECT_LT(zb.bubble_ratio(), f1b1.bubble_ratio());
}

TEST(Schedule, ImbalanceCreatesIdleness) {
  StageCosts c(4, 16);
  for (int s = 0; s < 4; ++s) c.set_stage(s, 1.0, 1.0, 1.0);
  c.set_stage(2, 3.0, 3.0, 3.0);  // hot stage
  const auto r = simulate(ScheduleKind::ZbH1, c);
  EXPECT_GT(r.avg_idleness(), 0.3);
  // The hot stage itself is the least idle.
  EXPECT_LT(r.idle_s[2], r.idle_s[0]);
  EXPECT_LT(r.idle_s[2], r.idle_s[3]);
}

TEST(Schedule, MakespanTracksBottleneck) {
  // With m >> S, makespan ≈ m * bottleneck stage time.
  StageCosts c(4, 128);
  for (int s = 0; s < 4; ++s) c.set_stage(s, 0.5, 0.5, 0.0);
  c.set_stage(1, 1.0, 1.0, 0.0);
  const auto r = simulate(ScheduleKind::OneFOneB, c);
  EXPECT_NEAR(r.makespan_s, 128.0 * 2.0, 0.1 * 128.0 * 2.0);
}

TEST(Schedule, CommDelayAddsToMakespan) {
  const auto base =
      simulate(ScheduleKind::OneFOneB, uniform_costs(4, 8, 1, 1, 1, 0.0));
  const auto slow =
      simulate(ScheduleKind::OneFOneB, uniform_costs(4, 8, 1, 1, 1, 0.5));
  EXPECT_GT(slow.makespan_s, base.makespan_s);
}

TEST(Schedule, EmptyStagePassesThrough) {
  StageCosts c(3, 4);
  c.set_stage(0, 1, 1, 1);
  c.set_stage(1, 0, 0, 0);  // re-packed-away worker
  c.set_stage(2, 1, 1, 1);
  const auto r = simulate(ScheduleKind::OneFOneB, c);
  EXPECT_DOUBLE_EQ(r.busy_s[1], 0.0);
  // Work must still complete on the other stages.
  EXPECT_NEAR(r.busy_s[0], 4 * 3.0, 1e-9);
  EXPECT_NEAR(r.busy_s[2], 4 * 3.0, 1e-9);
}

TEST(Schedule, PerMicrobatchVariationHandled) {
  StageCosts c(2, 4);
  for (int mb = 0; mb < 4; ++mb) {
    c.fwd(0, mb) = 1.0 + mb;
    c.bwd_input(0, mb) = 1.0;
    c.fwd(1, mb) = 1.0;
    c.bwd_input(1, mb) = 1.0 + mb;
  }
  const auto r = simulate(ScheduleKind::OneFOneB, c);
  EXPECT_NEAR(std::accumulate(r.busy_s.begin(), r.busy_s.end(), 0.0),
              c.total_work(), 1e-9);
}

class ScheduleSweep
    : public ::testing::TestWithParam<std::tuple<ScheduleKind, int, int>> {};

TEST_P(ScheduleSweep, NoDeadlockAndSaneAccounting) {
  const auto [kind, stages, microbatches] = GetParam();
  Rng rng(static_cast<std::uint64_t>(stages * 100 + microbatches));
  StageCosts c(stages, microbatches);
  for (int s = 0; s < stages; ++s) {
    for (int mb = 0; mb < microbatches; ++mb) {
      c.fwd(s, mb) = rng.uniform(0.1, 1.0);
      c.bwd_input(s, mb) = rng.uniform(0.1, 1.0);
      c.bwd_weight(s, mb) = rng.uniform(0.1, 1.0);
    }
  }
  for (int s = 0; s + 1 < stages; ++s) c.send(s) = rng.uniform(0.0, 0.05);
  const auto r = simulate(kind, c);
  EXPECT_GT(r.makespan_s, 0.0);
  EXPECT_EQ(static_cast<int>(r.busy_s.size()), stages);
  const double busy = std::accumulate(r.busy_s.begin(), r.busy_s.end(), 0.0);
  EXPECT_NEAR(busy, c.total_work(), 1e-6);
  for (int s = 0; s < stages; ++s) {
    EXPECT_GE(r.idle_s[static_cast<std::size_t>(s)], -1e-9);
    EXPECT_LE(r.busy_s[static_cast<std::size_t>(s)], r.makespan_s + 1e-9);
  }
  EXPECT_GE(r.bubble_ratio(), -1e-9);
  EXPECT_LT(r.bubble_ratio(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ScheduleSweep,
    ::testing::Combine(::testing::Values(ScheduleKind::GPipe,
                                         ScheduleKind::OneFOneB,
                                         ScheduleKind::ZbH1),
                       ::testing::Values(1, 2, 3, 8, 16),
                       ::testing::Values(1, 2, 8, 32)));

}  // namespace
}  // namespace dynmo::pipeline
