// Reusable lockstep differential harness for the incremental decision
// path (tests/test_incremental_cost.cpp, docs/COST_MODEL.md "Incremental
// recomputation").
//
// The equivalence contract says every incremental surface is *bit-
// identical* to its full-rescan twin, so the natural test shape is a
// seeded perturbation stream driven through both implementations in
// lockstep, comparing after every step.  This header packages that shape:
//
//   auto r = dynmo::testing::diff_check(
//       seed, steps,
//       [&](std::mt19937_64& rng, int step) { /* perturb BOTH paths */ },
//       [&](int step) -> std::optional<std::string> {
//         /* return divergence description, or nullopt when equal */
//       },
//       [&] { return /* full state dump for the failure report */; });
//   EXPECT_TRUE(r.ok) << r.report;
//
// On the first diverging step the harness stops and assembles a report
// carrying the step index, the seed (so the exact stream replays under a
// debugger), the caller's divergence description, and the caller's full
// state dump.  The compare callback also runs once before any
// perturbation (step -1) so a broken initial state is caught as such
// rather than blamed on the first perturbation.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <random>
#include <sstream>
#include <string>

namespace dynmo::testing {

struct DiffCheckResult {
  bool ok = true;
  /// First diverging step (-1 = the initial states already disagreed;
  /// only meaningful when !ok).
  int first_divergence = 0;
  /// Human-readable failure report: step, seed, divergence, state dump.
  std::string report;
};

/// Drive `steps` perturbations from a deterministic seeded stream through
/// both implementations in lockstep.  `perturb(rng, step)` must apply the
/// same mutation to the incremental and the reference path (drawing all
/// randomness from `rng`); `compare(step)` returns a description of any
/// divergence or std::nullopt when the paths agree exactly; `dump_state()`
/// is only invoked on failure.
inline DiffCheckResult diff_check(
    std::uint64_t seed, int steps,
    const std::function<void(std::mt19937_64&, int)>& perturb,
    const std::function<std::optional<std::string>(int)>& compare,
    const std::function<std::string()>& dump_state) {
  const auto fail = [&](int step, const std::string& what) {
    std::ostringstream os;
    os << "lockstep divergence at step " << step << " of " << steps
       << " (seed 0x" << std::hex << seed << std::dec << "):\n  " << what
       << "\nfull state dump:\n" << dump_state();
    return DiffCheckResult{false, step, os.str()};
  };
  if (auto d = compare(-1)) {
    return fail(-1, "initial states disagree before any perturbation: " + *d);
  }
  std::mt19937_64 rng(seed);
  for (int i = 0; i < steps; ++i) {
    perturb(rng, i);
    if (auto d = compare(i)) return fail(i, *d);
  }
  return {};
}

}  // namespace dynmo::testing
