// Elastic lifecycle (docs/RUNTIME.md): checkpoint-coordinated shrink *and*
// expand.  Covers the ElasticController decision rules (throughput-
// preserving shrink, payoff-gated expand, restart-stall pricing, control-
// plane races), Deployment::prefix, and the session-level acceptance
// criterion: a load spike after an elastic shrink expands back via
// checkpoint-restart and ends within 5% of the never-shrunk bottleneck
// while gpu_hours_saved > 0.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <thread>

#include "cluster/deployment.hpp"
#include "cluster/topology.hpp"
#include "core/error.hpp"
#include "dynamic/dynamism.hpp"
#include "model/layer.hpp"
#include "runtime/elastic.hpp"
#include "runtime/session.hpp"
#include "telemetry/trace_reader.hpp"

namespace dynmo {
namespace {

using runtime::ElasticAction;
using runtime::ElasticConfig;
using runtime::ElasticController;

comm::LinkParams test_link(int /*workers*/) {
  return {5e-6, 25.0 * 1024 * 1024 * 1024};  // NDR-ish InfiniBand
}

/// 4 heavy leading layers + 20 near-idle tail layers: the concentration
/// pattern (early exit, freezing) that lets fewer workers match the
/// full-count bottleneck.
std::vector<double> lull_loads() {
  std::vector<double> t(24, 0.0002);
  std::fill_n(t.begin(), 4, 0.01);
  return t;
}

std::vector<double> full_loads() { return std::vector<double>(24, 0.01); }

std::vector<double> small_state() {
  return std::vector<double>(24, 64.0 * 1024 * 1024);
}

ElasticConfig fast_cfg() {
  ElasticConfig cfg;
  cfg.enabled = true;
  cfg.min_workers = 2;
  cfg.payoff_window_iters = 0.0;  // gates off unless a test sets them
  return cfg;
}

TEST(ElasticController, ShrinksWhenLoadConcentratesAndReleasesGpus) {
  ElasticController ctl(fast_cfg(), 8, test_link);
  const auto map = pipeline::StageMap::uniform(24, 8);
  const auto d = ctl.decide(map, lull_loads(), small_state(),
                            /*mem_capacity=*/1e12, /*active=*/8);
  EXPECT_EQ(d.action, ElasticAction::Shrink);
  // 4 heavy contiguous layers + the tail: 5 workers already match the
  // 8-worker optimum within tolerance, 4 cannot (a heavy layer would have
  // to share a stage with the whole tail).
  EXPECT_EQ(d.target_workers, 5);
  EXPECT_GT(d.restart_stall_s, 0.0);
  EXPECT_FALSE(d.rejected_by_payoff);

  EXPECT_TRUE(ctl.commit(d));
  EXPECT_EQ(ctl.claimed_workers(), 5);
  EXPECT_EQ(ctl.cluster().free_gpus(), 3);
}

TEST(ElasticController, ExpandsBackWhenLoadSpikes) {
  ElasticController ctl(fast_cfg(), 8, test_link);
  const auto shrink = ctl.decide(pipeline::StageMap::uniform(24, 8),
                                 lull_loads(), small_state(), 1e12, 8);
  ASSERT_EQ(shrink.action, ElasticAction::Shrink);
  ASSERT_TRUE(ctl.commit(shrink));

  // Spike: full-depth load on the shrunk pipeline.  The freed GPUs are
  // still in the queue, and reclaiming them cuts the bottleneck.
  const auto map5 = pipeline::StageMap::uniform(24, 5);
  const auto d = ctl.decide(map5, full_loads(), small_state(), 1e12, 5);
  EXPECT_EQ(d.action, ElasticAction::Expand);
  EXPECT_EQ(d.target_workers, 8);
  EXPECT_GT(d.projected_gain_s, 0.0);
  EXPECT_TRUE(ctl.commit(d));
  EXPECT_EQ(ctl.claimed_workers(), 8);
  EXPECT_EQ(ctl.cluster().free_gpus(), 0);
}

TEST(ElasticController, PayoffWindowGatesShrink) {
  auto cfg = fast_cfg();
  cfg.payoff_window_iters = 1e-3;  // sub-iteration: nothing can amortize
  ElasticController ctl(cfg, 8, test_link);
  const auto shrink = ctl.decide(pipeline::StageMap::uniform(24, 8),
                                 lull_loads(), small_state(), 1e12, 8);
  EXPECT_EQ(shrink.action, ElasticAction::Hold);
  EXPECT_TRUE(shrink.rejected_by_payoff);
  EXPECT_GT(shrink.restart_stall_s, 0.0);
}

TEST(ElasticController, PayoffWindowGatesExpand) {
  // A job that starts at 5 workers below its 8-worker ceiling, with 3 GPUs
  // another job already freed sitting in the queue.
  repack::MockEckCluster eck(8);
  repack::JobManagerClient other(&eck, "other-job", 8);
  ASSERT_TRUE(other.resize_gpu_claim(5));
  ASSERT_EQ(eck.free_gpus(), 3);

  auto tight = fast_cfg();
  tight.cluster = &eck;
  tight.max_workers = 8;
  tight.payoff_window_iters = 1e-3;
  ElasticController gated(tight, 5, test_link);
  const auto blocked = gated.decide(pipeline::StageMap::uniform(24, 5),
                                    full_loads(), small_state(), 1e12, 5);
  EXPECT_EQ(blocked.action, ElasticAction::Hold);
  EXPECT_TRUE(blocked.rejected_by_payoff);
  EXPECT_EQ(eck.free_gpus(), 3);  // decide() never PATCHes

  // The same situation under a generous window claims the capacity.
  auto open = tight;
  open.payoff_window_iters = 1e9;
  ElasticController ctl(open, 5, test_link);
  const auto d = ctl.decide(pipeline::StageMap::uniform(24, 5), full_loads(),
                            small_state(), 1e12, 5);
  ASSERT_EQ(d.action, ElasticAction::Expand);
  EXPECT_EQ(d.target_workers, 8);
  EXPECT_TRUE(ctl.commit(d));
  EXPECT_EQ(eck.free_gpus(), 0);
}

TEST(ElasticController, ExpandHysteresisHoldsOnMarginalGain) {
  auto cfg = fast_cfg();
  cfg.expand_min_gain = 0.5;  // demand a 50% bottleneck cut
  ElasticController ctl(cfg, 8, test_link);
  ASSERT_TRUE(ctl.commit(ctl.decide(pipeline::StageMap::uniform(24, 8),
                                    lull_loads(), small_state(), 1e12, 8)));
  // Full load back on 5 workers: the expand would cut the bottleneck by
  // ~37% (5w → 3w per-stage layers) — below the 50% bar.
  const auto d = ctl.decide(pipeline::StageMap::uniform(24, 5), full_loads(),
                            small_state(), 1e12, 5);
  EXPECT_EQ(d.action, ElasticAction::Hold);
  EXPECT_FALSE(d.rejected_by_payoff);
}

TEST(ElasticController, PendingJobShrinksTheExpandTarget) {
  repack::MockEckCluster eck(8);
  auto cfg = fast_cfg();
  cfg.cluster = &eck;
  ElasticController ctl(cfg, 8, test_link);
  ASSERT_TRUE(ctl.commit(ctl.decide(pipeline::StageMap::uniform(24, 8),
                                    lull_loads(), small_state(), 1e12, 8)));
  ASSERT_EQ(eck.free_gpus(), 3);
  // Another job grabs two of the freed GPUs; only one remains claimable.
  EXPECT_EQ(eck.schedule_pending_job(2), 2);
  const auto d = ctl.decide(pipeline::StageMap::uniform(24, 5), full_loads(),
                            small_state(), 1e12, 5);
  EXPECT_EQ(d.action, ElasticAction::Expand);
  EXPECT_EQ(d.target_workers, 6);
  EXPECT_TRUE(ctl.commit(d));
  EXPECT_EQ(eck.free_gpus(), 0);
}

TEST(ElasticController, CommitFailsWhenRacedToTheCapacity) {
  repack::MockEckCluster eck(8);
  auto cfg = fast_cfg();
  cfg.cluster = &eck;
  ElasticController ctl(cfg, 8, test_link);
  ASSERT_TRUE(ctl.commit(ctl.decide(pipeline::StageMap::uniform(24, 8),
                                    lull_loads(), small_state(), 1e12, 8)));
  const auto d = ctl.decide(pipeline::StageMap::uniform(24, 5), full_loads(),
                            small_state(), 1e12, 5);
  ASSERT_EQ(d.action, ElasticAction::Expand);
  // The freed capacity vanishes between decide() and commit().
  ASSERT_EQ(eck.schedule_pending_job(3), 3);
  EXPECT_FALSE(ctl.commit(d));
  EXPECT_EQ(ctl.claimed_workers(), 5);
}

TEST(ElasticController, RestartStallScalesWithStateAndFloorsAtAlpha) {
  auto cfg = fast_cfg();
  ElasticController ctl(cfg, 8, test_link);
  const auto before = pipeline::StageMap::uniform(24, 8);
  const auto after = pipeline::StageMap::uniform(24, 5);
  const auto light = ctl.restart_stall_s(before, after, small_state());
  std::vector<double> heavy(24, 10.0 * 1024 * 1024 * 1024);
  const auto heavy_s = ctl.restart_stall_s(before, after, heavy);
  EXPECT_GT(light, cfg.restart_alpha_s);
  EXPECT_GT(heavy_s, light);
}

// The over-grant regression (ISSUE 7): the control plane used to track a
// single shared allocation counter, so a second pod's baseline PATCH
// corrupted the first pod's accounting and faked free capacity.  With
// per-pod claims, grow grants can never sum past what was actually free.
TEST(MockEck, TwoClientsCannotGrowPastTheFreeCapacity) {
  repack::MockEckCluster eck(8);
  repack::JobManagerClient a(&eck, "pod-a", 8);
  ASSERT_TRUE(a.resize_gpu_claim(5));  // releases 3
  ASSERT_EQ(eck.free_gpus(), 3);

  // A second pod's baseline claim is trusted but must not disturb pod-a's
  // accounting or the free pool (the old single-counter bug did both).
  repack::JobManagerClient b(&eck, "pod-b", 2);
  EXPECT_EQ(eck.free_gpus(), 3);

  // pod-a reclaims its release in full; pod-b's grow then finds nothing.
  EXPECT_TRUE(a.resize_gpu_claim(8));
  EXPECT_EQ(eck.free_gpus(), 0);
  EXPECT_FALSE(b.resize_gpu_claim(4));
  EXPECT_EQ(b.claimed_gpus(), 2);
  EXPECT_EQ(eck.free_gpus(), 0);
}

TEST(MockEck, ConcurrentGrowsNeverOversubscribe) {
  repack::MockEckCluster eck(16);
  repack::JobManagerClient releaser(&eck, "releaser", 8);
  ASSERT_TRUE(releaser.resize_gpu_claim(0));
  ASSERT_EQ(eck.free_gpus(), 8);

  // Two clients race one-GPU-at-a-time grows until the API refuses.
  repack::JobManagerClient a(&eck, "racer-a", 0);
  repack::JobManagerClient b(&eck, "racer-b", 0);
  const auto race = [](repack::JobManagerClient& c) {
    while (c.resize_gpu_claim(c.claimed_gpus() + 1)) {
    }
  };
  std::thread ta(race, std::ref(a));
  std::thread tb(race, std::ref(b));
  ta.join();
  tb.join();

  // Atomic grants: however the race interleaved, exactly the free
  // capacity was handed out — never more.
  EXPECT_EQ(a.claimed_gpus() + b.claimed_gpus(), 8);
  EXPECT_EQ(eck.free_gpus(), 0);
  EXPECT_GE(a.claimed_gpus(), 0);
  EXPECT_GE(b.claimed_gpus(), 0);
}

TEST(Deployment, PrefixKeepsLeadingRanksAndDpWidth) {
  const auto topo = cluster::Topology::make_homogeneous(
      4, 4, hw::GpuSpec::h100_sxm5(),
      cluster::default_link(cluster::LinkType::NvLink),
      cluster::default_link(cluster::LinkType::InfiniBand));
  const auto grid = cluster::Deployment::make_grid_topology_aware(
      topo, /*dp=*/2, /*pp=*/8, cluster::GridOrientation::PpInner);
  const auto pre = grid.prefix(5);
  EXPECT_EQ(pre.num_stages(), 5);
  EXPECT_EQ(pre.data_parallel(), 2);
  for (int d = 0; d < 2; ++d) {
    for (int s = 0; s < 5; ++s) {
      EXPECT_EQ(pre.rank(d, s), grid.rank(d, s));
    }
  }
  // Full prefix is the identity; out-of-range prefixes throw.
  EXPECT_EQ(grid.prefix(8).grid_to_rank().size(), grid.grid_to_rank().size());
  EXPECT_THROW((void)grid.prefix(0), Error);
  EXPECT_THROW((void)grid.prefix(9), Error);
}

// ----------------------------------------------------------- session level

/// Early-exit-style concentration during a lull window, full depth before
/// and after: [0, lull_begin) full, [lull_begin, lull_end) concentrated,
/// [lull_end, ...) full again (the spike that should trigger re-expansion).
class SpikeEngine : public dynamic::DynamismEngine {
 public:
  SpikeEngine(std::int64_t lull_begin, std::int64_t lull_end,
              std::size_t heavy_layers)
      : begin_(lull_begin), end_(lull_end), heavy_(heavy_layers) {}

  std::string name() const override { return "spike"; }
  bool is_dynamism_point(std::int64_t iter) const override {
    return iter == begin_ || iter == end_;
  }
  void step(std::int64_t iter,
            std::span<model::LayerState> states) override {
    const bool lull = iter >= begin_ && iter < end_;
    for (std::size_t l = heavy_; l < states.size(); ++l) {
      states[l].compute_scale = lull ? 0.02 : 1.0;
    }
  }
  std::int64_t recommended_rebalance_interval() const override {
    return 100;
  }

 private:
  std::int64_t begin_, end_;
  std::size_t heavy_;
};

runtime::SessionConfig spike_session_config() {
  runtime::SessionConfig cfg;
  cfg.pipeline_stages = 8;
  cfg.micro_batch = 2;
  cfg.num_microbatches = 16;
  cfg.iterations = 3000;
  cfg.sim_stride = 10;
  cfg.rebalance_interval = 100;
  cfg.mode = runtime::BalancingMode::DynMo;
  cfg.algorithm = balance::Algorithm::Partition;
  cfg.balance_by = balance::BalanceBy::Time;
  return cfg;
}

model::ModelDesc spike_model() {
  return model::make_gpt({.num_blocks = 24,
                          .include_embedding = false,
                          .include_lm_head = false});
}

// The acceptance-criterion test (ISSUE 5): a session with a load spike
// after an elastic shrink expands back via checkpoint-restart and ends
// within 5% of the never-shrunk bottleneck, with gpu_hours_saved > 0.
TEST(SessionElastic, SpikeAfterShrinkExpandsBackAndRecoversThroughput) {
  const auto m = spike_model();

  auto cfg = spike_session_config();
  cfg.elastic.enabled = true;
  cfg.elastic.interval = 500;
  cfg.elastic.min_workers = 2;
  cfg.elastic.payoff_window_iters = 600.0;
  // Restart path of a small job on a decent parallel FS: sub-second
  // respawn, 16 GiB/s shard I/O.  (The defaults model a paper-scale pod,
  // whose multi-second stall would need a window beyond this short run.)
  cfg.elastic.restart_alpha_s = 0.5;
  cfg.elastic.checkpoint_bw = 16.0 * 1024 * 1024 * 1024;
  repack::MockEckCluster eck(8);
  cfg.elastic.cluster = &eck;

  SpikeEngine engine(/*lull_begin=*/1000, /*lull_end=*/2000, /*heavy=*/4);
  runtime::TrainingSession session(m, cfg, &engine);
  const auto r = session.run();

  // The footprint breathed: released during the lull, re-claimed at the
  // spike, everything accounted.
  EXPECT_GE(r.shrinks, 1);
  EXPECT_GE(r.expands, 1);
  EXPECT_GT(r.restart_stall_s, 0.0);
  EXPECT_GT(r.gpu_hours_saved, 0.0);
  EXPECT_EQ(eck.free_gpus(), 0);  // fully expanded back
  EXPECT_EQ(r.final_map.num_stages(), 8);

  // Reference: the same workload never allowed to shrink.
  auto ref_cfg = spike_session_config();
  SpikeEngine ref_engine(1000, 2000, 4);
  runtime::TrainingSession ref_session(m, ref_cfg, &ref_engine);
  const auto ref = ref_session.run();
  ASSERT_FALSE(r.samples.empty());
  ASSERT_FALSE(ref.samples.empty());
  // Post-expand steady state: the last simulated iteration must be within
  // 5% of the never-shrunk pipeline's.
  const double elastic_final = r.samples.back().time_s;
  const double ref_final = ref.samples.back().time_s;
  EXPECT_LE(elastic_final, 1.05 * ref_final);
  EXPECT_EQ(ref.shrinks, 0);
  EXPECT_EQ(ref.expands, 0);
  EXPECT_DOUBLE_EQ(ref.gpu_hours_saved, 0.0);
}

TEST(SessionElastic, TightWindowHoldsTheFootprint) {
  const auto m = spike_model();
  auto cfg = spike_session_config();
  cfg.elastic.enabled = true;
  cfg.elastic.interval = 500;
  cfg.elastic.payoff_window_iters = 1e-3;  // nothing amortizes

  SpikeEngine engine(1000, 2000, 4);
  runtime::TrainingSession session(m, cfg, &engine);
  const auto r = session.run();
  EXPECT_EQ(r.shrinks, 0);
  EXPECT_EQ(r.expands, 0);
  EXPECT_GT(r.maps_rejected_payoff, 0);  // wanted but unaffordable
  EXPECT_DOUBLE_EQ(r.restart_stall_s, 0.0);
}

TEST(SessionElastic, ElasticAndRepackAreMutuallyExclusive) {
  const auto m = spike_model();
  auto cfg = spike_session_config();
  cfg.elastic.enabled = true;
  cfg.repack = true;
  SpikeEngine engine(1000, 2000, 4);
  EXPECT_THROW((void)runtime::TrainingSession(m, cfg, &engine), Error);
}

// Satellite 3 (ISSUE 7): an externally-initiated shrink — the fleet
// arbiter's preemption hook — takes the same checkpoint-coordinated path
// a voluntary shrink does (restart stall with a full breakdown, a
// "preempt" elastic_transitions row, the shrink PATCH against the control
// plane), and the modeled outcome is identical across identical runs.
TEST(SessionElastic, ForcedShrinkTakesTheCheckpointPathDeterministically) {
  const auto m = spike_model();

  const auto run_once = [&m](const std::string& trace_dir) {
    auto cfg = spike_session_config();
    cfg.iterations = 1000;
    cfg.elastic.enabled = true;
    cfg.elastic.interval = 500;
    cfg.elastic.min_workers = 2;
    // A window too tight for any voluntary transition to amortize: every
    // footprint change observed below must be the forced one.
    cfg.elastic.payoff_window_iters = 1e-3;
    cfg.elastic.restart_alpha_s = 0.5;
    cfg.elastic.checkpoint_bw = 16.0 * 1024 * 1024 * 1024;
    cfg.telemetry.dir = trace_dir;
    repack::MockEckCluster eck(8);
    cfg.elastic.cluster = &eck;

    runtime::TrainingSession session(m, cfg, nullptr);
    session.start();
    // A few windows at full depth, then the "arbiter" preempts the job
    // down to 5 workers mid-run.
    for (int i = 0; i < 10; ++i) (void)session.step();
    session.request_shrink(5);
    (void)session.step();
    EXPECT_EQ(session.active_workers(), 5);
    EXPECT_EQ(eck.free_gpus(), 3);  // the shrink PATCH landed
    while (!session.done()) (void)session.step();
    return session.finish();
  };

  const auto base =
      std::filesystem::path(testing::TempDir()) / "forced_shrink_trace";
  std::filesystem::remove_all(base);
  const auto a = run_once((base / "a").string());

  EXPECT_EQ(a.forced_shrinks, 1);
  EXPECT_EQ(a.shrinks, 0);   // nothing voluntary happened
  EXPECT_EQ(a.expands, 0);   // the tight window held the smaller footprint
  EXPECT_GT(a.restart_stall_s, 0.0);
  EXPECT_GT(a.gpu_hours_saved, 0.0);
  EXPECT_EQ(a.final_map.num_stages(), 5);

  // The trace shows the checkpoint path: one accepted "preempt" row whose
  // stall carries the full restart breakdown (respawn + bootstrap +
  // busiest-shard checkpoint write/read) — not a zero-cost reassignment.
  telemetry::TraceReader reader((base / "a").string());
  std::vector<telemetry::ElasticTransitionRow> preempts;
  for (const auto& row : reader.elastic_transitions()) {
    if (row.kind == "preempt") preempts.push_back(row);
  }
  ASSERT_EQ(preempts.size(), 1u);
  EXPECT_TRUE(preempts[0].accepted);
  EXPECT_EQ(preempts[0].workers_before, 8);
  EXPECT_EQ(preempts[0].workers_after, 5);
  EXPECT_DOUBLE_EQ(preempts[0].stall_s, a.restart_stall_s);
  EXPECT_GT(preempts[0].alpha_s, 0.0);
  EXPECT_GT(preempts[0].ckpt_write_s, 0.0);
  EXPECT_GT(preempts[0].ckpt_read_s, 0.0);

  // Determinism: the identical run, preempted at the identical window,
  // reproduces every modeled quantity exactly.  (Wall-clock totals carry
  // measured balancer-decision overhead and are not compared bit-for-bit —
  // see docs/RUNTIME.md.)
  const auto b = run_once((base / "b").string());
  EXPECT_EQ(b.forced_shrinks, a.forced_shrinks);
  EXPECT_DOUBLE_EQ(b.restart_stall_s, a.restart_stall_s);
  EXPECT_DOUBLE_EQ(b.avg_idleness, a.avg_idleness);
  EXPECT_DOUBLE_EQ(b.avg_bubble_ratio, a.avg_bubble_ratio);
  EXPECT_DOUBLE_EQ(b.avg_active_workers, a.avg_active_workers);
  EXPECT_DOUBLE_EQ(b.peak_stage_memory, a.peak_stage_memory);
  ASSERT_EQ(b.samples.size(), a.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(b.samples[i].iter, a.samples[i].iter);
    EXPECT_EQ(b.samples[i].active_workers, a.samples[i].active_workers);
    EXPECT_DOUBLE_EQ(b.samples[i].idleness, a.samples[i].idleness);
  }
  ASSERT_EQ(b.final_map.num_stages(), a.final_map.num_stages());
  for (int s = 0; s < a.final_map.num_stages(); ++s) {
    EXPECT_EQ(b.final_map.stage_begin(s), a.final_map.stage_begin(s));
    EXPECT_EQ(b.final_map.stage_end(s), a.final_map.stage_end(s));
  }
  std::filesystem::remove_all(base);
}

}  // namespace
}  // namespace dynmo
